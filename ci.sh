#!/usr/bin/env bash
# CI gate: formatting, lints, tier-1 tests, and a perf smoke run.
#
# Usage: ./ci.sh          # full gate (fmt, clippy, tests, perf smoke)
#        SKIP_PERF=1 ./ci.sh   # skip the perf smoke (e.g. on loaded CI boxes)
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

# Doc gate runs BEFORE the test suite so doc rot fails fast: every public
# item of the first-party crates must document cleanly (broken intra-doc
# links, bad code fences and missing docs are hard errors).
echo "==> cargo doc (deny rustdoc warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps \
    -p bbrdom-core -p bbrdom-netsim -p bbrdom-cca -p bbrdom-fluid \
    -p bbrdom-experiments -p bbrdom-bench

echo "==> tier-1 tests (workspace, release)"
cargo test --release --workspace

# Re-run the suite with the runtime invariant auditor armed: every
# simulation in every test now verifies packet conservation, queue
# bounds and report finiteness at runtime (see crates/netsim/src/audit.rs).
echo "==> audited test pass (BBRDOM_AUDIT=1)"
BBRDOM_AUDIT=1 cargo test --release --workspace -q

# Fault-injection smoke: drive the impairment sweep (wire loss, outage,
# delay spike) end to end through the repro binary's fail-soft path.
echo "==> fault smoke sweep (repro ext-faults --smoke)"
cargo run --release -p bbrdom-experiments --bin repro -- ext-faults --smoke \
    --out "${TMPDIR:-/tmp}/bbrdom-ci-faults"

# Churn smoke: the open-loop workload engine end to end — flow spawn,
# teardown, slot recycling, FCT percentiles, NE-under-churn — through
# the repro binary.
echo "==> churn smoke (repro ext-churn --smoke)"
cargo run --release -p bbrdom-experiments --bin repro -- ext-churn --smoke \
    --out "${TMPDIR:-/tmp}/bbrdom-ci-churn"

# Parking-lot smoke: the multi-bottleneck topology end to end — chain
# lowering, per-hop routing with cross traffic, payoff assembly over the
# long flows only — through the repro binary.
echo "==> parking-lot smoke (repro ext-parkinglot --smoke)"
cargo run --release -p bbrdom-experiments --bin repro -- ext-parkinglot --smoke \
    --out "${TMPDIR:-/tmp}/bbrdom-ci-parkinglot"

# Parallel-engine smoke: the NE pipeline (fig 9) run serial/uncached,
# then parallel with a cold disk cache, then again warm. All three CSV
# sets must be byte-identical — parallelism and caching are only
# legitimate if they are invisible in the output.
echo "==> parallel NE smoke (repro 9: serial vs --jobs 2 vs warm cache)"
ne_out="${TMPDIR:-/tmp}/bbrdom-ci-ne"
rm -rf "$ne_out"
cargo run --release -p bbrdom-experiments --bin repro -- 9 --smoke \
    --jobs 1 --no-cache --out "$ne_out/serial"
cargo run --release -p bbrdom-experiments --bin repro -- 9 --smoke \
    --jobs 2 --cache-dir "$ne_out/cache" --out "$ne_out/parallel"
diff -r "$ne_out/serial" "$ne_out/parallel"
cargo run --release -p bbrdom-experiments --bin repro -- 9 --smoke \
    --jobs 2 --cache-dir "$ne_out/cache" --out "$ne_out/warm"
diff -r "$ne_out/serial" "$ne_out/warm"

# Dumbbell-as-topology smoke: the same NE pipeline with every payoff
# cell's dumbbell spelled as an explicit 4-node topology. The multi-hop
# engine path must reproduce the legacy figures byte for byte (distinct
# cache keys, so --no-cache keeps the comparison honest).
echo "==> dumbbell-as-topology smoke (repro 9 --dumbbell-as-topology vs legacy)"
cargo run --release -p bbrdom-experiments --bin repro -- 9 --smoke \
    --jobs 1 --no-cache --dumbbell-as-topology --out "$ne_out/topo"
diff -r "$ne_out/serial" "$ne_out/topo"

# Supervised sweep smoke: the same NE pipeline sharded across two
# crash-isolated worker processes, with one worker SIGKILLed shortly
# after launch. The supervisor must absorb the kill (retry the
# forfeited leases on the survivor / a replacement) and the figures
# must still be byte-identical to the serial run; a second supervised
# run resumes warm from the shared cache and must match too.
echo "==> supervised sweep smoke (repro 9 --supervise 2, one worker SIGKILLed)"
sv_out="${TMPDIR:-/tmp}/bbrdom-ci-supervised"
rm -rf "$sv_out"
(
    # Kill the first worker that appears (pid files live under the
    # supervisor's work dir). Give up quietly after 60 polls — the
    # smoke batch may finish before a kill lands, which is fine: the
    # assertion is output identity either way.
    for _ in $(seq 60); do
        pidfile=$(find "$sv_out/cache/supervise" -name 'worker-*.pid' 2>/dev/null | head -1)
        if [[ -n "$pidfile" ]]; then
            kill -9 "$(cat "$pidfile")" 2>/dev/null || true
            exit 0
        fi
        sleep 0.1
    done
) &
killer=$!
cargo run --release -p bbrdom-experiments --bin repro -- 9 --smoke \
    --supervise 2 --jobs 1 --watchdog 10 \
    --cache-dir "$sv_out/cache" --out "$sv_out/supervised"
wait "$killer" || true
diff -r --exclude=cache "$ne_out/serial" "$sv_out/supervised"
cargo run --release -p bbrdom-experiments --bin repro -- 9 --smoke \
    --supervise 2 --jobs 1 --watchdog 10 \
    --cache-dir "$sv_out/cache" --out "$sv_out/resumed"
diff -r --exclude=cache "$ne_out/serial" "$sv_out/resumed"

# Adaptive NE smoke: the model-guided search with early termination must
# land every observed NE within one grid step of the dense grid's, per
# row of every fig 9 panel (an empty adaptive set against a non-empty
# dense set also fails).
echo "==> adaptive NE smoke (repro 9 --adaptive --early-stop vs dense)"
cargo run --release -p bbrdom-experiments --bin repro -- 9 --smoke \
    --jobs 1 --no-cache --adaptive --early-stop --out "$ne_out/adaptive"
for f in "$ne_out/serial"/fig09_*.csv; do
    base="$(basename "$f")"
    paste -d, "$f" "$ne_out/adaptive/$base" | awk -F, 'NR > 1 {
        nd = split($4, dense, ";"); na = split($8, adaptive, ";");
        if ((na == 0) != (nd == 0)) {
            print "row " NR ": NE sets disagree (dense \"" $4 "\" vs adaptive \"" $8 "\")"
            exit 1
        }
        for (i = 1; i <= na; i++) {
            best = 1e9
            for (j = 1; j <= nd; j++) {
                d = adaptive[i] - dense[j]; if (d < 0) d = -d
                if (d < best) best = d
            }
            if (best > 1) {
                print "row " NR ": adaptive NE " adaptive[i] " not within 1 of dense (" $4 ")"
                exit 1
            }
        }
    }' || { echo "adaptive-vs-dense NE mismatch in $base"; exit 1; }
done

# Fluid-vs-DES smoke diff: one fig 9 panel on each backend. The fluid
# backend must run the panel end to end through the same repro CLI and
# produce structurally identical CSV (same files, same header, same row
# count) — numeric columns legitimately differ between the two models.
echo "==> fluid backend smoke (repro 9 --backend fluid vs des, one panel)"
fl_out="${TMPDIR:-/tmp}/bbrdom-ci-fluid"
rm -rf "$fl_out"
cargo run --release -p bbrdom-experiments --bin repro -- 9 --smoke \
    --jobs 1 --no-cache --backend fluid --out "$fl_out/fluid"
for f in "$ne_out/serial"/fig09_*.csv; do
    base="$(basename "$f")"
    [[ -f "$fl_out/fluid/$base" ]] || { echo "fluid run missing $base"; exit 1; }
    if ! cmp -s <(head -1 "$f") <(head -1 "$fl_out/fluid/$base"); then
        echo "fluid CSV header differs in $base"; exit 1
    fi
    if [[ "$(wc -l < "$f")" != "$(wc -l < "$fl_out/fluid/$base")" ]]; then
        echo "fluid CSV row count differs in $base"; exit 1
    fi
done

# Result-store smoke: wipe the NE smoke cache's index, rebuild it from
# the cache entries alone, then re-assemble fig 9 entirely from store
# hits — the engine summary on stderr must report zero simulations AND
# zero full-report parses — and exercise `repro query` / `repro cache
# stats` over the same index.
echo "==> result store smoke (index rebuild -> store-served fig 9 -> query/stats)"
st_out="${TMPDIR:-/tmp}/bbrdom-ci-store"
rm -rf "$st_out"
mkdir -p "$st_out"
rm -f "$ne_out/cache/index.jsonl"
cargo run --release -p bbrdom-experiments --bin repro -- index rebuild \
    --cache-dir "$ne_out/cache"
cargo run --release -p bbrdom-experiments --bin repro -- 9 --smoke \
    --jobs 2 --cache-dir "$ne_out/cache" --out "$st_out/warm" \
    2> "$st_out/warm.log" || { cat "$st_out/warm.log"; exit 1; }
cat "$st_out/warm.log"
diff -r "$ne_out/serial" "$st_out/warm"
grep -F "(0 simulated (0 events)" "$st_out/warm.log" >/dev/null \
    || { echo "store-served fig 9 still simulated something"; exit 1; }
grep -F ", 0 disk-parse," "$st_out/warm.log" >/dev/null \
    || { echo "store-served fig 9 still parsed full reports"; exit 1; }
hits=$(cargo run --release -p bbrdom-experiments --bin repro -- query \
    --cache-dir "$ne_out/cache" --cca bbr --ok --count)
[[ "$hits" -gt 0 ]] || { echo "repro query found no BBR cells in the rebuilt index"; exit 1; }
cargo run --release -p bbrdom-experiments --bin repro -- cache stats \
    --cache-dir "$ne_out/cache"

if [[ "${SKIP_PERF:-0}" != "1" ]]; then
    # Perf smoke: a short netsim_perf run (few samples) to catch gross
    # regressions and keep BENCH_netsim.json generation exercised. The
    # 1-second cases are report-only — wall-clock thresholds don't
    # travel across machines; compare BENCH_netsim.json runs by hand.
    # The 10s/12k-flow open-loop churn case IS gated: the bench asserts
    # >= 10k cumulative workload flows and fails if events/s drops below
    # its pinned floor (a deliberately low bar that only structural
    # regressions — leaked timers, unrecycled slots — can miss; export
    # BENCH_NO_FLOOR=1 to report without gating).
    echo "==> perf smoke (netsim_perf incl. 12k-flow churn floor, BENCH_SAMPLES=5)"
    BENCH_SAMPLES=5 cargo bench -p bbrdom-bench --bench netsim_perf

    # Payoff-engine smoke: serial vs parallel vs warm-cache timings for
    # the payoff workload, recorded in BENCH_payoff.json (with the core
    # count — speedup is machine-relative). Also asserts serial/parallel
    # bit-identity internally.
    echo "==> payoff engine smoke (payoff_perf)"
    cargo bench -p bbrdom-bench --bench payoff_perf

    # Sweep-scale smoke: adaptive + early-stop must simulate >= 3x fewer
    # events than the dense grid and land within one NE grid step on the
    # pinned case (asserted inside the bench; BENCH_sweep.json records
    # the numbers).
    echo "==> sweep perf smoke (sweep_perf)"
    cargo bench -p bbrdom-bench --bench sweep_perf

    # Result-store perf smoke: store-hit figure assembly vs warm
    # full-report parse on a reduced grid. The >= 10x floor is asserted
    # inside the bench; BENCH_store.json records the numbers (the full
    # default grid is 1000 cells — BENCH_STORE_CELLS shrinks the cold
    # populate for CI).
    echo "==> store perf smoke (store_perf, BENCH_STORE_CELLS=200)"
    BENCH_STORE_CELLS=200 cargo bench -p bbrdom-bench --bench store_perf

    # Fluid perf smoke: the two-tier pipeline's pinned claims — the fluid
    # payoff grid >= 100x faster than the DES grid on a fig 9 panel, and
    # the fluid-located/DES-certified NE within one grid step of dense
    # (asserted inside the bench; BENCH_fluid.json records the numbers).
    echo "==> fluid perf smoke (fluid_perf)"
    cargo bench -p bbrdom-bench --bench fluid_perf
fi

echo "==> CI OK"
