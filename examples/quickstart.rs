//! Quickstart: predict a CUBIC-vs-BBR split with the model, then check
//! it against the packet-level simulator.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use bbrdom::cca::CcaKind;
use bbrdom::experiments::Scenario;
use bbrdom::model::TwoFlowModel;

fn main() {
    // A 50 Mbps bottleneck, 40 ms base RTT, 8×BDP drop-tail buffer —
    // the kind of path the paper's Fig. 3 sweeps.
    let (mbps, rtt_ms, buffer_bdp) = (50.0, 40.0, 8.0);

    // 1. Ask the model (Eqs. (18)–(20) of the paper).
    let model = TwoFlowModel::from_paper_units(mbps, rtt_ms, buffer_bdp);
    let pred = model.solve().expect("valid configuration");
    println!(
        "model: BBR {:.1} Mbps / CUBIC {:.1} Mbps",
        pred.bbr_mbps(),
        pred.cubic_mbps()
    );

    // 2. Run the real thing: one CUBIC and one BBR flow through the
    //    discrete-event simulator for 60 simulated seconds.
    let scenario = Scenario::versus(mbps, rtt_ms, buffer_bdp, 1, CcaKind::Bbr, 1, 60.0, 42);
    let result = scenario.run();
    let bbr = result.mean_throughput_of("bbr").unwrap();
    let cubic = result.mean_throughput_of("cubic").unwrap();
    println!("sim:   BBR {bbr:.1} Mbps / CUBIC {cubic:.1} Mbps");
    println!(
        "       queuing delay {:.1} ms, utilization {:.0}%, {} drops",
        result.avg_queuing_delay_ms,
        result.utilization * 100.0,
        result.dropped_packets
    );

    let err = (pred.bbr_mbps() - bbr).abs() / bbr.max(1e-9);
    println!("model vs sim error: {:.1}%", err * 100.0);
}
