//! Trace-level analysis: the evidence behind two of the paper's claims.
//!
//! 1. **Fig. 12's regimes** — BBR is cwnd-limited in shallow/moderate
//!    buffers but stops being cwnd-limited in ultra-deep ones (which is
//!    where the model starts over-estimating BBR). We measure the
//!    fraction of time BBR's in-flight data sits at its window.
//! 2. **§3.2's synchronization check** — "we checked the traces and
//!    verified the CUBIC flows were indeed generally not synchronized":
//!    we compute the loss-synchronization index from back-off times.
//!
//! ```text
//! cargo run --release --example trace_analysis
//! ```

use bbrdom::cca::{Bbr, Cubic};
use bbrdom::experiments::sync::synchronization_index;
use bbrdom::netsim::{FlowConfig, Rate, SimConfig, SimDuration, Simulator, MSS};

fn main() {
    println!("BBR cwnd-limited fraction vs buffer depth (1 CUBIC vs 1 BBR, 30 Mbps, 40 ms):\n");
    println!(
        "{:>12}  {:>18}  {:>14}",
        "buffer (BDP)", "cwnd-limited (%)", "BBR share (%)"
    );
    for bdp in [2.0, 8.0, 30.0, 80.0, 150.0] {
        let rate = Rate::from_mbps(30.0);
        let rtt = SimDuration::from_millis(40);
        let buf = bbrdom::netsim::units::buffer_bytes(rate, rtt, bdp);
        let cfg = SimConfig::new(rate, buf, SimDuration::from_secs_f64(40.0))
            .with_trace(SimDuration::from_millis(100));
        let mut sim = Simulator::new(cfg);
        sim.add_flow(FlowConfig::new(Box::new(Cubic::new()), rtt));
        sim.add_flow(FlowConfig::new(Box::new(Bbr::new(0)), rtt));
        let report = sim.run();
        let limited = report
            .trace
            .cwnd_limited_fraction(1, MSS)
            .unwrap_or(f64::NAN);
        let share = report.flows[1].throughput_mbps() / 30.0;
        println!(
            "{bdp:>12.0}  {:>18.0}  {:>14.0}",
            limited * 100.0,
            share * 100.0
        );
    }
    println!(
        "\nThe paper reports kernel BBR *losing* its cwnd-limitation in very deep\n\
         buffers (the regime where its model over-estimates BBR). Our simulated\n\
         BBR stays cwnd-limited — the substrate difference DESIGN.md and\n\
         EXPERIMENTS.md document as the source of the mid/deep-buffer gap; the\n\
         trace machinery shown here is how that regime is measured either way.\n"
    );

    // Part 2: CUBIC synchronization with and without BBR present.
    println!("CUBIC loss-synchronization index (5 CUBIC flows, 50 Mbps, 3 BDP):");
    for with_bbr in [false, true] {
        let rate = Rate::from_mbps(50.0);
        let rtt = SimDuration::from_millis(40);
        let buf = bbrdom::netsim::units::buffer_bytes(rate, rtt, 3.0);
        let mut sim = Simulator::new(SimConfig::new(rate, buf, SimDuration::from_secs_f64(60.0)));
        for _ in 0..5 {
            sim.add_flow(FlowConfig::new(Box::new(Cubic::new()), rtt));
        }
        if with_bbr {
            for i in 0..5 {
                sim.add_flow(FlowConfig::new(Box::new(Bbr::new(i)), rtt));
            }
        }
        let report = sim.run();
        let backoffs: Vec<Vec<f64>> = report
            .flows
            .iter()
            .filter(|f| f.cc_name == "cubic")
            .map(|f| f.backoff_times_secs.clone())
            .collect();
        let idx = synchronization_index(&backoffs, 0.04).unwrap_or(f64::NAN);
        println!(
            "  {} BBR competition: index = {idx:.2}  (1.0 = fully synchronized, 0.2 = independent)",
            if with_bbr { "with" } else { "without" }
        );
    }
    println!(
        "\nThe paper (§5) conjectures BBR's coordinated ProbeRTT exits *force*\n\
         CUBIC synchronization — compare the two indices above."
    );
}
