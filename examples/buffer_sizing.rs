//! Buffer-sizing study: what mixed CUBIC/BBR traffic means for router
//! buffers (the paper's §5 "Implications on Internet Buffer Sizing").
//!
//! Classic rules size buffers at BDP/√N assuming loss-based flows. BBR
//! keeps ~2×BDP in flight regardless, so in shallow buffers CUBIC can
//! starve; in deep buffers CUBIC dominates and delay balloons. This
//! example sweeps the buffer and reports the split, delay, and loss —
//! the data an operator would want before shrinking buffers on a mixed
//! link.
//!
//! ```text
//! cargo run --release --example buffer_sizing
//! ```

use bbrdom::cca::CcaKind;
use bbrdom::experiments::Scenario;
use bbrdom::model::multi_flow::SyncMode;
use bbrdom::model::nash::NashPredictor;

fn main() {
    let (mbps, rtt_ms, n) = (100.0, 40.0, 10u32);
    println!("{n} flows (half CUBIC, half BBR), {mbps} Mbps, {rtt_ms} ms\n");
    println!(
        "{:>8}  {:>12}  {:>12}  {:>10}  {:>8}  {:>16}",
        "buffer", "CUBIC Mbps", "BBR Mbps", "delay ms", "loss %", "#CUBIC at NE"
    );
    for bdp in [0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0] {
        let s = Scenario::versus(mbps, rtt_ms, bdp, n / 2, CcaKind::Bbr, n / 2, 30.0, 11);
        let r = s.run();
        let cubic = r.mean_throughput_of("cubic").unwrap_or(0.0);
        let bbr = r.mean_throughput_of("bbr").unwrap_or(0.0);
        let sent: u64 = r.dropped_packets; // drops at the bottleneck
        let loss_pct =
            100.0 * sent as f64 / (sent as f64 + r.total_throughput() * 1e6 / 8.0 * 30.0 / 1500.0);
        let ne = NashPredictor::from_paper_units(mbps, rtt_ms, bdp, n)
            .predict(SyncMode::Synchronized)
            .map(|p| format!("{:.1}", p.n_cubic))
            .unwrap_or_else(|_| "model n/a".into());
        println!(
            "{bdp:>7.1}x  {cubic:>12.1}  {bbr:>12.1}  {:>10.1}  {loss_pct:>8.2}  {ne:>16}",
            r.avg_queuing_delay_ms
        );
    }
    println!(
        "\nShallow buffers starve CUBIC (BBR's 2×BDP cap dominates); deep buffers\n\
         hand the link to CUBIC and bloat delay. A mixed Internet pins buffer\n\
         sizing between two regimes that classic √N rules don't model."
    );
}
