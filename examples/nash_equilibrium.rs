//! Predict the Nash-equilibrium CUBIC/BBR mix across buffer sizes — the
//! paper's headline analysis — and show the best-response path the
//! Internet would take toward it.
//!
//! ```text
//! cargo run --release --example nash_equilibrium
//! ```

use bbrdom::game::dynamics::best_response_dynamics;
use bbrdom::game::symmetric::SymmetricGame;
use bbrdom::model::multi_flow::SyncMode;
use bbrdom::model::nash::NashPredictor;

fn main() {
    let (mbps, rtt_ms, n) = (100.0, 40.0, 50u32);
    println!("Nash equilibria for {n} same-RTT flows at {mbps} Mbps / {rtt_ms} ms\n");
    println!(
        "{:>10}  {:>18}  {:>18}",
        "buffer", "#CUBIC at NE", "(range over CUBIC"
    );
    println!(
        "{:>10}  {:>18}  {:>18}",
        "(BDP)", "sync … desync", "synchronization)"
    );

    for bdp in [1.5, 2.0, 3.0, 5.0, 8.0, 12.0, 20.0, 30.0, 50.0] {
        let p = NashPredictor::from_paper_units(mbps, rtt_ms, bdp, n);
        let (sync, desync) = p.predict_region().expect("valid configuration");
        println!(
            "{bdp:>10.1}  {:>8.1} … {:<8.1}",
            sync.n_cubic, desync.n_cubic
        );
    }

    // Walk the best-response dynamics at one setting, using the model's
    // per-distribution payoff curves as the game.
    let bdp = 8.0;
    let p = NashPredictor::from_paper_units(mbps, rtt_ms, bdp, n);
    let fair = p.fair_share();
    let mut bbr_curve = vec![0.0];
    let mut cubic_curve = Vec::with_capacity(n as usize + 1);
    for k in 0..=n {
        if k > 0 {
            bbr_curve.push(p.bbr_per_flow(k as f64, SyncMode::Synchronized).unwrap());
        }
        if k < n {
            // CUBIC per-flow at state k: (C − λ̂_b)/N_c.
            let bbr_total = if k == 0 {
                0.0
            } else {
                p.bbr_per_flow(k as f64, SyncMode::Synchronized).unwrap() * k as f64
            };
            cubic_curve.push((mbps * 1e6 / 8.0 - bbr_total) / (n - k) as f64);
        } else {
            cubic_curve.push(0.0);
        }
    }
    let game = SymmetricGame::new(n, bbr_curve, cubic_curve).with_epsilon(0.001 * fair);
    let trace = best_response_dynamics(&game, 0, 200);
    println!(
        "\nBest-response path at {bdp} BDP, starting from an all-CUBIC Internet:\n  {:?}\n  outcome: {:?} at {} BBR / {} CUBIC flows",
        trace.states,
        trace.outcome,
        trace.final_state(),
        n - trace.final_state()
    );
    println!(
        "\nThe equilibrium is mixed: BBR adoption stalls once its per-flow\n\
         advantage is competed away — the paper's core prediction."
    );
}
