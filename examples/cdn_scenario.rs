//! A CDN edge scenario: competing video origins choosing their
//! congestion control.
//!
//! The paper argues its same-RTT assumption is realistic because most
//! traffic is served from CDNs, so flows at a local bottleneck share
//! similar (short) RTTs. Here 12 origins behind one 200 Mbps access
//! bottleneck iteratively pick whichever algorithm measured better for
//! the *previous* round's mix — an empirical best-response process using
//! the real simulator, not the model.
//!
//! ```text
//! cargo run --release --example cdn_scenario
//! ```

use bbrdom::cca::CcaKind;
use bbrdom::experiments::Scenario;

const MBPS: f64 = 200.0;
const RTT_MS: f64 = 20.0; // CDN edge: short RTT
const BUFFER_BDP: f64 = 4.0;
const N: u32 = 12;
const ROUNDS: usize = 12;

fn measure(n_bbr: u32, seed: u64) -> (Option<f64>, Option<f64>) {
    let s = Scenario::versus(
        MBPS,
        RTT_MS,
        BUFFER_BDP,
        N - n_bbr,
        CcaKind::Bbr,
        n_bbr,
        20.0,
        seed,
    );
    let r = s.run();
    (r.mean_throughput_of("bbr"), r.mean_throughput_of("cubic"))
}

fn main() {
    println!("CDN edge: {N} origins, {MBPS} Mbps, {RTT_MS} ms, {BUFFER_BDP} BDP buffer");
    println!("fair share = {:.1} Mbps per origin\n", MBPS / N as f64);

    let mut n_bbr = 0u32; // everyone starts on CUBIC
    println!(
        "{:>5}  {:>6}  {:>10}  {:>10}  action",
        "round", "#BBR", "BBR Mbps", "CUBIC Mbps"
    );
    for round in 0..ROUNDS {
        let (bbr, cubic) = measure(n_bbr, 0xCD_0000 + round as u64);
        // Would a switch help? Probe the neighbouring mixes.
        let try_up = if n_bbr < N {
            measure(n_bbr + 1, 0xCD_1000 + round as u64).0
        } else {
            None
        };
        let try_down = if n_bbr > 0 {
            measure(n_bbr - 1, 0xCD_2000 + round as u64).1
        } else {
            None
        };
        let stay_cubic = cubic.unwrap_or(0.0);
        let stay_bbr = bbr.unwrap_or(0.0);
        let action;
        if let Some(up) = try_up {
            if n_bbr < N && up > stay_cubic * 1.02 {
                n_bbr += 1;
                action = format!("a CUBIC origin adopts BBR ({up:.1} > {stay_cubic:.1})");
                print_row(round, n_bbr, bbr, cubic, &action);
                continue;
            }
        }
        if let Some(down) = try_down {
            if n_bbr > 0 && down > stay_bbr * 1.02 {
                n_bbr -= 1;
                action = format!("a BBR origin reverts to CUBIC ({down:.1} > {stay_bbr:.1})");
                print_row(round, n_bbr, bbr, cubic, &action);
                continue;
            }
        }
        action = "no origin benefits from switching — equilibrium".to_string();
        print_row(round, n_bbr, bbr, cubic, &action);
        break;
    }
    println!(
        "\nThe market settles on a mixed CUBIC/BBR deployment ({n_bbr} of {N} on BBR): \
         exactly the paper's prediction that BBR will not fully displace CUBIC."
    );
}

fn print_row(round: usize, n_bbr: u32, bbr: Option<f64>, cubic: Option<f64>, action: &str) {
    println!(
        "{round:>5}  {n_bbr:>6}  {:>10}  {:>10}  {action}",
        bbr.map(|v| format!("{v:.1}")).unwrap_or_else(|| "-".into()),
        cubic
            .map(|v| format!("{v:.1}"))
            .unwrap_or_else(|| "-".into()),
    );
}
