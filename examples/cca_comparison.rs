//! Head-to-head: every implemented congestion-control algorithm against
//! CUBIC at the same bottleneck (a miniature of the paper's Fig. 7).
//!
//! ```text
//! cargo run --release --example cca_comparison
//! ```

use bbrdom::cca::CcaKind;
use bbrdom::experiments::Scenario;

fn main() {
    let (mbps, rtt_ms, buffer_bdp, secs) = (100.0, 40.0, 2.0, 45.0);
    let fair = mbps / 2.0;
    println!("1 challenger vs 1 CUBIC, {mbps} Mbps, {rtt_ms} ms, {buffer_bdp} BDP, {secs} s\n");
    println!(
        "{:>10}  {:>12}  {:>12}  {:>8}  {:>8}  verdict",
        "algorithm", "X Mbps", "CUBIC Mbps", "delay ms", "drops"
    );
    for x in [
        CcaKind::Bbr,
        CcaKind::BbrV2,
        CcaKind::Vivace,
        CcaKind::Copa,
        CcaKind::NewReno,
    ] {
        let s = Scenario::versus(mbps, rtt_ms, buffer_bdp, 1, x, 1, secs, 7);
        let r = s.run();
        let xt = r.mean_throughput_of(x.name()).unwrap_or(0.0);
        let ct = r.mean_throughput_of("cubic").unwrap_or(0.0);
        let verdict = if xt > fair * 1.1 {
            "takes more than its share"
        } else if xt < fair * 0.9 {
            "yields to CUBIC"
        } else {
            "roughly fair"
        };
        println!(
            "{:>10}  {xt:>12.1}  {ct:>12.1}  {:>8.1}  {:>8}  {verdict}",
            x.name(),
            r.avg_queuing_delay_ms,
            r.dropped_packets
        );
    }
    println!(
        "\nBBRv1 grabs far more than its share head-to-head; BBRv2, Vivace and\n\
         Copa concede to a single CUBIC at this 1-vs-1 scale (the paper's\n\
         Fig. 7 advantage for BBRv2/Vivace appears once several CUBIC flows\n\
         share the link — run `repro 7` for that sweep)."
    );
}
