//! Mixed workloads: short transfers riding over a long-flow Internet
//! whose congestion-control mix is shifting from CUBIC to BBR.
//!
//! The paper's Nash analysis scores long flows by throughput; this
//! example asks what the bystanders experience — ad-sized and page-sized
//! transfers — as the long-flow population adopts BBR (§5's "more
//! diverse workloads" future work, built on the `ext-shortflows`
//! machinery).
//!
//! ```text
//! cargo run --release --example workload_mix
//! ```

use bbrdom::experiments::ext::shortflows;

fn main() {
    let n_long = 6u32;
    println!(
        "{} long flows at 50 Mbps / 8 BDP; 8 short CUBIC transfers ride along\n",
        n_long
    );
    println!(
        "{:>10}  {:>14}  {:>14}",
        "#BBR long", "30 kB FCT (ms)", "300 kB FCT (ms)"
    );
    for n_bbr in 0..=n_long {
        let mut fcts = Vec::new();
        for &size in &shortflows::SHORT_SIZES {
            let s = shortflows::scenario(n_long, n_bbr, size, 30.0, 0xE0 + n_bbr as u64);
            let r = s.run();
            fcts.push(shortflows::mean_fct(&r).map(|f| f * 1e3));
        }
        println!(
            "{n_bbr:>10}  {:>14}  {:>14}",
            fcts[0]
                .map(|f| format!("{f:.0}"))
                .unwrap_or_else(|| "-".into()),
            fcts[1]
                .map(|f| format!("{f:.0}"))
                .unwrap_or_else(|| "-".into()),
        );
    }
    println!(
        "\nShort-flow latency tracks the standing queue the long flows maintain:\n\
         the congestion-control market's equilibrium is an externality for\n\
         everyone else's page loads."
    );
}
