//! Fluid ↔ DES cross-validation: the documented tolerance contract.
//!
//! The fluid backend's job is to *rank and bracket* — locate the NE band
//! and reproduce steady-state share structure — not to match the DES
//! per-packet. These tests pin the tolerances EXPERIMENTS.md documents
//! ("Fluid backend — cross-validation tolerances"): inside the validity
//! envelope (drop-tail, clean path, backlogged CUBIC/NewReno/BBR/BBRv2,
//! buffers 0.5–8 BDP, ≤ 8 flows, ≥ 20 s horizons) the fluid model's
//!
//! * **BBR aggregate share** stays within `SHARE_TOL` (absolute) of the
//!   DES's window-averaged share, and
//! * **link utilization** stays within `UTIL_TOL` (absolute),
//!
//! where both sides are averaged over `SEEDS` independent seeds (the
//! DES itself spreads ±0.1 in share across seeds at multi-flow mid
//! buffers, so single-seed comparisons would mostly measure DES noise).
//!
//! The envelope is where a continuum model is *valid*: per-flow windows
//! ≳ 10 MSS (C·RTT ≈ 80–170 MSS here) and horizons long enough for the
//! DES's window average to reach steady state (≥ 1000 RTTs). Outside it
//! agreement degrades for known, documented reasons (DESIGN.md): tiny
//! windows break the continuum assumption; large-BDP deep buffers make
//! a fixed 30 s DES window a transient measurement while the fluid
//! model reports steady state. Tolerances were calibrated with
//! `examples/tune_fluid.rs` (worst seed-averaged share delta 0.16,
//! worst utilization delta 0.02 at `BW_SAMPLE_HEADROOM = 1.2`) and are
//! deliberately loose: the two-tier pipeline (fluid locates, DES
//! certifies) only needs the fluid NE band to usually contain the true
//! NE — `crates/experiments/src/adaptive.rs` retries with the Eq. (25)
//! band and then the dense grid when it does not.

use bbrdom_cca::CcaKind;
use bbrdom_experiments::{scenario_hash, BackendSpec, Scenario};
use proptest::prelude::*;

/// Absolute tolerance on the seed-averaged BBR throughput share.
const SHARE_TOL: f64 = 0.25;
/// Absolute tolerance on the seed-averaged link utilization.
const UTIL_TOL: f64 = 0.05;
/// Seeds averaged per comparison (DES share spreads ±0.1 across seeds).
const SEEDS: u64 = 3;

/// BBR aggregate share and utilization of one scenario on one backend.
fn measure(s: &Scenario) -> (f64, f64) {
    let r = s.run();
    let bbr = r.total_throughput_of("bbr") + r.total_throughput_of("bbrv2");
    let total = r.total_throughput();
    (bbr / total.max(1e-12), r.utilization)
}

fn check_agreement(mbps: f64, rtt_ms: f64, buffer_bdp: f64, n_cubic: u32, n_bbr: u32, seed: u64) {
    let (mut des_share, mut des_util, mut fluid_share, mut fluid_util) = (0.0, 0.0, 0.0, 0.0);
    for i in 0..SEEDS {
        let des = Scenario::versus(
            mbps,
            rtt_ms,
            buffer_bdp,
            n_cubic,
            CcaKind::Bbr,
            n_bbr,
            30.0,
            seed.wrapping_add(i * 101),
        );
        let fluid = des.clone().with_backend(BackendSpec::Fluid);
        let (ds, du) = measure(&des);
        let (fs, fu) = measure(&fluid);
        let w = 1.0 / SEEDS as f64;
        des_share += w * ds;
        des_util += w * du;
        fluid_share += w * fs;
        fluid_util += w * fu;
    }
    println!(
        "C={mbps} rtt={rtt_ms} buf={buffer_bdp} {n_cubic}c/{n_bbr}b: \
         share des={des_share:.3} fluid={fluid_share:.3} (Δ{:+.3}) \
         util des={des_util:.3} fluid={fluid_util:.3} (Δ{:+.3})",
        fluid_share - des_share,
        fluid_util - des_util,
    );
    assert!(
        (fluid_share - des_share).abs() <= SHARE_TOL,
        "BBR share disagreement beyond ±{SHARE_TOL}: \
         des={des_share:.3} fluid={fluid_share:.3} \
         (C={mbps} rtt={rtt_ms} buf={buffer_bdp} {n_cubic}c/{n_bbr}b seed={seed})"
    );
    assert!(
        (fluid_util - des_util).abs() <= UTIL_TOL,
        "utilization disagreement beyond ±{UTIL_TOL}: \
         des={des_util:.3} fluid={fluid_util:.3} \
         (C={mbps} rtt={rtt_ms} buf={buffer_bdp} {n_cubic}c/{n_bbr}b seed={seed})"
    );
}

/// The golden cross-validation suite: the paper's canonical operating
/// points (fig 5's 1-vs-1 sweep corners, fig 9's panel parameters).
#[test]
fn fluid_matches_des_on_golden_scenarios() {
    // (mbps, rtt_ms, buffer_bdp, n_cubic, n_bbr) — inside the
    // agreement envelope (see module docs); 1-vs-1 rows only at the
    // 50 Mbps/20 ms operating point where the DES converges fast.
    let suite = [
        (50.0, 20.0, 0.5, 1, 1),
        (50.0, 20.0, 2.0, 1, 1),
        (50.0, 20.0, 8.0, 1, 1),
        (50.0, 20.0, 2.0, 3, 3),
        (50.0, 20.0, 4.0, 2, 4),
        (100.0, 20.0, 1.0, 2, 2),
        (100.0, 20.0, 4.0, 2, 2),
        (100.0, 20.0, 8.0, 3, 3),
    ];
    for (i, &(mbps, rtt, buf, nc, nb)) in suite.iter().enumerate() {
        check_agreement(mbps, rtt, buf, nc, nb, 0x60D + i as u64);
    }
}

/// The qualitative contract the NE search leans on: both backends agree
/// on the *direction* of the buffer asymmetry (the paper's core claim).
#[test]
fn both_backends_agree_bbr_share_falls_with_buffer_depth() {
    for backend in [BackendSpec::Des, BackendSpec::Fluid] {
        let share = |buf: f64| {
            let s = Scenario::versus(50.0, 20.0, buf, 1, CcaKind::Bbr, 1, 30.0, 11)
                .with_backend(backend);
            measure(&s).0
        };
        let shallow = share(0.5);
        let deep = share(8.0);
        assert!(
            shallow > deep,
            "{}: BBR share must fall with buffer depth (0.5 BDP: {shallow:.3}, 8 BDP: {deep:.3})",
            backend.name()
        );
    }
}

proptest! {
    // DES runs are seconds each; a handful of random configs per CI run
    // keeps the property honest without dominating the suite.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Randomized envelope sweep: share/utilization agreement holds
    /// across (C, buffer, N) draws inside the agreement envelope, not
    /// just the pinned suite. Flow counts start at 2-per-side (≥ 4
    /// total) — the NE-search regime the fluid oracle actually serves.
    #[test]
    fn fluid_tracks_des_across_random_configs(
        mbps_i in 0usize..2,
        buffer_bdp in 0.5f64..8.0,
        n_cubic in 2u32..4,
        n_bbr in 2u32..4,
        seed in 1u64..1000,
    ) {
        let mbps = [50.0, 100.0][mbps_i];
        check_agreement(mbps, 20.0, buffer_bdp, n_cubic, n_bbr, seed);
    }
}

/// Same scenario, different backend → different cache key (the
/// stable-hash domain separation the engine's cache depends on), and the
/// key is insensitive to which backend ran first.
#[test]
fn backend_changes_the_cache_key() {
    let des = Scenario::versus(50.0, 20.0, 2.0, 2, CcaKind::Bbr, 2, 10.0, 9);
    let fluid = des.clone().with_backend(BackendSpec::Fluid);
    assert_ne!(scenario_hash(&des), scenario_hash(&fluid));
    // Round-tripping through JSON preserves the domain.
    let back = Scenario::from_json(&fluid.to_json()).unwrap();
    assert_eq!(scenario_hash(&back), scenario_hash(&fluid));
    let back_des = Scenario::from_json(&des.to_json()).unwrap();
    assert_eq!(scenario_hash(&back_des), scenario_hash(&des));
}

/// The fluid backend is bit-deterministic per (scenario, seed) and
/// decorrelated across seeds, like the DES.
#[test]
fn fluid_backend_is_deterministic_and_seed_sensitive() {
    let s = |seed| {
        Scenario::versus(50.0, 20.0, 2.0, 2, CcaKind::Bbr, 2, 15.0, seed)
            .with_backend(BackendSpec::Fluid)
    };
    let a = s(1).run();
    let b = s(1).run();
    assert_eq!(a.throughput_mbps, b.throughput_mbps);
    let c = s(2).run();
    assert_ne!(a.throughput_mbps, c.throughput_mbps);
}
