//! Golden-seed regression harness for the simulator engine.
//!
//! The discrete-event engine (event queue, sender scoreboard, dispatch
//! loop) may be rebuilt for speed, but never at the cost of changing
//! results: a given scenario + seed must stay **bit-identical** across
//! engine rewrites. This harness runs a matrix of CCAs × buffer sizes ×
//! seeds, reduces every [`bbrdom_netsim::SimReport`] to an FNV-1a
//! fingerprint over the exact bit patterns of all its fields, and
//! compares against the checked-in goldens captured from the original
//! `BinaryHeap`/`BTreeMap` engine.
//!
//! The matrix and fingerprint live in `tests/common/mod.rs`, shared
//! with the `topology_equivalence` suite.
//!
//! If an intentional behavior change invalidates the goldens (this
//! should be rare and deliberate), regenerate with:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test --release --test golden_simreports
//! ```
//!
//! and explain the change in the commit message.

mod common;

use bbrdom_experiments::scenario::Scenario;
use bbrdom_netsim::json::{self, Value};
use common::{fingerprint, matrix, run_report};
use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/simreports.json")
}

#[test]
fn simreports_match_goldens() {
    let mut current = Value::object();
    for (key, scenario) in matrix() {
        let fp = fingerprint(&run_report(&scenario));
        current.set(&key, Value::Str(format!("{fp:016x}")));
    }

    if std::env::var("GOLDEN_REGEN").is_ok() {
        std::fs::create_dir_all(golden_path().parent().unwrap()).unwrap();
        std::fs::write(golden_path(), current.to_json() + "\n").unwrap();
        eprintln!("regenerated {}", golden_path().display());
        return;
    }

    let text = std::fs::read_to_string(golden_path()).unwrap_or_else(|e| {
        panic!(
            "missing goldens at {} ({e}); generate with GOLDEN_REGEN=1",
            golden_path().display()
        )
    });
    let golden = json::parse(&text).expect("goldens parse");
    let mut mismatches = Vec::new();
    for (key, scenario) in matrix() {
        let fp = format!("{:016x}", fingerprint(&run_report(&scenario)));
        match golden.get(&key).and_then(Value::as_str) {
            Some(want) if want == fp => {}
            Some(want) => mismatches.push(format!("{key}: golden {want}, got {fp}")),
            None => mismatches.push(format!("{key}: missing from goldens")),
        }
    }
    assert!(
        mismatches.is_empty(),
        "engine output diverged from the golden seed runs:\n{}",
        mismatches.join("\n")
    );
}

#[test]
fn fingerprint_is_sensitive_to_results() {
    // Sanity: two different seeds must fingerprint differently, and the
    // same run twice must fingerprint identically.
    let a = Scenario::versus(10.0, 20.0, 1.0, 1, bbrdom_cca::CcaKind::Bbr, 1, 3.0, 1);
    let b = Scenario::versus(10.0, 20.0, 1.0, 1, bbrdom_cca::CcaKind::Bbr, 1, 3.0, 2);
    assert_eq!(fingerprint(&run_report(&a)), fingerprint(&run_report(&a)));
    assert_ne!(fingerprint(&run_report(&a)), fingerprint(&run_report(&b)));
}
