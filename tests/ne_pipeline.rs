//! End-to-end Nash-equilibrium pipeline: simulate all distributions,
//! build the empirical game, find equilibria, compare with the model —
//! the §4.4 methodology at test scale.

use bbrdom::cca::CcaKind;
use bbrdom::experiments::payoff::{default_epsilon_mbps, measure_payoffs};
use bbrdom::experiments::Profile;
use bbrdom::game::dynamics::{best_response_dynamics, BestResponseOutcome};
use bbrdom::model::multi_flow::SyncMode;
use bbrdom::model::nash::NashPredictor;

const MBPS: f64 = 40.0;
const RTT_MS: f64 = 30.0;
const N: u32 = 6;

fn profile() -> Profile {
    let mut p = Profile::smoke();
    p.duration_secs = 20.0;
    p.ne_trials = 1;
    p
}

#[test]
fn empirical_ne_exists_and_is_mixed_in_shallow_buffer() {
    let m = measure_payoffs(MBPS, RTT_MS, 2.0, N, CcaKind::Bbr, &profile(), 0xAA);
    let eps = default_epsilon_mbps(MBPS, N);
    let ne = m.observed_ne_cubic_counts(eps);
    assert!(!ne.is_empty(), "an NE must exist (finite symmetric game)");
    // At a 2 BDP buffer BBR is strong but not unstoppable: the NE should
    // not be the all-CUBIC corner.
    assert!(
        ne.iter().any(|&c| c < N),
        "expected some BBR flows at the NE, got all-CUBIC: {ne:?}"
    );
}

#[test]
fn empirical_ne_not_far_from_model_region() {
    let buffer = 5.0;
    let m = measure_payoffs(MBPS, RTT_MS, buffer, N, CcaKind::Bbr, &profile(), 0xBB);
    let eps = default_epsilon_mbps(MBPS, N);
    let ne = m.observed_ne_cubic_counts(eps);
    assert!(!ne.is_empty());
    let predictor = NashPredictor::from_paper_units(MBPS, RTT_MS, buffer, N);
    let (sync, desync) = predictor.predict_region().unwrap();
    let lo = desync.n_cubic.min(sync.n_cubic) - 2.0;
    let hi = desync.n_cubic.max(sync.n_cubic) + 2.0;
    // At least one observed NE within the (slack-extended) region.
    assert!(
        ne.iter().any(|&c| (c as f64) >= lo && (c as f64) <= hi),
        "no observed NE {ne:?} within model region [{lo:.1}, {hi:.1}]"
    );
}

#[test]
fn best_response_dynamics_converge_on_measured_game() {
    let m = measure_payoffs(MBPS, RTT_MS, 3.0, N, CcaKind::Bbr, &profile(), 0xCC);
    let eps = default_epsilon_mbps(MBPS, N);
    let game = m.mean_curves().to_game(eps);
    for start in [0, N / 2, N] {
        let trace = best_response_dynamics(&game, start, 200);
        assert_ne!(
            trace.outcome,
            BestResponseOutcome::Exhausted,
            "dynamics should settle from start={start}"
        );
        if trace.outcome == BestResponseOutcome::Converged {
            assert!(game.is_nash(trace.final_state()));
        }
    }
}

#[test]
fn model_region_bdp_invariance_matches_game_reduction() {
    // The model's region is a pure function of buffer-in-BDP — verify at
    // two (C, RTT) pairs sharing a BDP multiple (no simulation needed).
    let a = NashPredictor::from_paper_units(40.0, 30.0, 6.0, N)
        .predict(SyncMode::Synchronized)
        .unwrap();
    let b = NashPredictor::from_paper_units(80.0, 60.0, 6.0, N)
        .predict(SyncMode::Synchronized)
        .unwrap();
    assert!((a.n_cubic - b.n_cubic).abs() < 1e-9);
}
