//! Consistency between the analytical model and the game machinery:
//! feeding the model's own payoff curves into the empirical-NE machinery
//! must find equilibria at the model's predicted crossing (pure math —
//! no simulation — so it runs everywhere instantly).

use bbrdom::game::symmetric::SymmetricGame;
use bbrdom::model::multi_flow::SyncMode;
use bbrdom::model::nash::NashPredictor;

/// Build the symmetric game whose payoffs are the model's predictions.
fn model_game(mbps: f64, rtt_ms: f64, buffer_bdp: f64, n: u32, mode: SyncMode) -> SymmetricGame {
    let p = NashPredictor::from_paper_units(mbps, rtt_ms, buffer_bdp, n);
    let c = mbps * 1e6 / 8.0;
    let mut bbr = vec![0.0];
    let mut cubic = Vec::with_capacity(n as usize + 1);
    for k in 0..=n {
        if k > 0 {
            bbr.push(p.bbr_per_flow(k as f64, mode).unwrap());
        }
        if k < n {
            let bbr_total = if k == 0 {
                0.0
            } else {
                p.bbr_per_flow(k as f64, mode).unwrap() * k as f64
            };
            cubic.push((c - bbr_total) / (n - k) as f64);
        } else {
            cubic.push(0.0);
        }
    }
    SymmetricGame::new(n, bbr, cubic).with_epsilon(1e-4 * c)
}

#[test]
fn game_on_model_payoffs_finds_the_model_crossing() {
    for buffer_bdp in [2.0, 5.0, 10.0, 25.0] {
        let n = 20u32;
        let p = NashPredictor::from_paper_units(100.0, 40.0, buffer_bdp, n);
        let predicted = p.predict(SyncMode::Synchronized).unwrap();
        let game = model_game(100.0, 40.0, buffer_bdp, n, SyncMode::Synchronized);
        let nes = game.nash_equilibria();
        assert!(!nes.is_empty(), "model-payoff game must have an NE");
        // At least one game NE within one flow of the continuous crossing.
        let ok = nes
            .iter()
            .any(|e| (e.n_bbr as f64 - predicted.n_bbr).abs() <= 1.0 + 1e-9);
        assert!(
            ok,
            "at {buffer_bdp} BDP: game NEs {:?} vs model crossing {:.2}",
            nes.iter().map(|e| e.n_bbr).collect::<Vec<_>>(),
            predicted.n_bbr
        );
    }
}

#[test]
fn best_response_on_model_payoffs_converges_to_the_crossing() {
    use bbrdom::game::dynamics::{best_response_dynamics, BestResponseOutcome};
    let n = 30u32;
    let game = model_game(50.0, 20.0, 6.0, n, SyncMode::Synchronized);
    for start in [0, n] {
        let trace = best_response_dynamics(&game, start, 1000);
        assert_eq!(trace.outcome, BestResponseOutcome::Converged);
        assert!(game.is_nash(trace.final_state()));
    }
}

#[test]
fn desync_mode_moves_the_crossing_toward_more_bbr() {
    let n = 20u32;
    let p = NashPredictor::from_paper_units(100.0, 40.0, 8.0, n);
    let sync = p.predict(SyncMode::Synchronized).unwrap();
    let desync = p.predict(SyncMode::DeSynchronized).unwrap();
    assert!(desync.n_bbr >= sync.n_bbr - 1e-9);
}
