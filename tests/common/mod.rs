//! Shared fixtures for the workspace-level regression suites: the
//! golden-seed scenario matrix, the bit-exact report fingerprint, and
//! the raw-report runner. Used by `golden_simreports.rs` (pins the
//! matrix against checked-in goldens) and `topology_equivalence.rs`
//! (re-runs the same matrix with the dumbbell spelled as an explicit
//! topology and demands bit-identical reports).
#![allow(dead_code)]

use bbrdom_experiments::scenario::{DisciplineSpec, FaultSpec, Scenario};
use bbrdom_netsim::SimReport;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// FNV-1a over a byte stream.
pub struct Fnv(pub u64);

impl Fnv {
    pub fn new() -> Self {
        Fnv(0xcbf29ce484222325)
    }
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }
    pub fn u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
    pub fn opt_f64(&mut self, v: Option<f64>) {
        match v {
            None => self.u64(u64::MAX - 1),
            Some(x) => self.f64(x),
        }
    }
}

/// Every field of the report, bit-exact, folded into one u64.
pub fn fingerprint(report: &SimReport) -> u64 {
    let mut h = Fnv::new();
    h.f64(report.duration_secs);
    h.u64(report.events_processed);
    for f in &report.flows {
        h.write(f.cc_name.as_bytes());
        h.f64(f.throughput_bytes_per_sec);
        h.u64(f.goodput_bytes);
        h.u64(f.sent_bytes);
        h.u64(f.retransmits);
        h.u64(f.lost_packets);
        h.u64(f.congestion_events);
        h.u64(f.rtos);
        h.f64(f.avg_queue_occupancy_bytes);
        h.opt_f64(f.min_rtt_secs);
        h.opt_f64(f.mean_rtt_secs);
        h.f64(f.avg_cwnd_bytes);
        h.u64(f.max_cwnd_bytes);
        h.opt_f64(f.completion_time_secs);
        h.u64(f.backoff_times_secs.len() as u64);
        for &t in &f.backoff_times_secs {
            h.f64(t);
        }
    }
    let q = &report.queue;
    h.f64(q.avg_occupancy_bytes);
    h.f64(q.avg_queuing_delay_secs);
    h.u64(q.peak_occupancy_bytes);
    h.u64(q.capacity_bytes);
    h.u64(q.dropped_packets);
    h.u64(q.aqm_drops);
    h.u64(q.enqueued_packets);
    h.f64(q.utilization);
    h.u64(q.drops.len() as u64);
    for &(t, flow) in &q.drops {
        h.f64(t);
        h.u64(flow.0 as u64);
    }
    h.0
}

/// The regression matrix: every CCA the paper studies, shallow and deep
/// buffers, two seeds — plus a many-flow case and an AQM case so the
/// queue disciplines and larger event populations are covered too.
pub fn matrix() -> Vec<(String, Scenario)> {
    use bbrdom_cca::CcaKind::*;
    let mut cases = Vec::new();
    for cca in [Cubic, NewReno, Bbr, BbrV2, Copa, Vivace, Vegas] {
        for buffer_bdp in [0.5, 2.0] {
            for seed in [1u64, 2] {
                let s = Scenario::versus(10.0, 20.0, buffer_bdp, 1, cca, 1, 5.0, seed);
                cases.push((
                    format!("{}_b{buffer_bdp}_s{seed}", s.flows[1].cca.name()),
                    s,
                ));
            }
        }
    }
    // 8 flows, mixed algorithms, deeper buffer: bigger event population.
    let mixed = Scenario::versus(40.0, 30.0, 3.0, 4, Bbr, 4, 5.0, 7);
    cases.push(("mixed8_b3_s7".to_string(), mixed));
    // AQM paths (RED drops on arrival, CoDel at dequeue).
    for (name, d) in [
        ("red", DisciplineSpec::Red),
        ("codel", DisciplineSpec::Codel),
    ] {
        let s = Scenario::versus(20.0, 20.0, 2.0, 1, Bbr, 1, 5.0, 3).with_discipline(d);
        cases.push((format!("{name}_b2_s3"), s));
    }
    // Seeded fault schedules: wire loss, outage + capacity step, and a
    // delay spike, so the fault RNG and schedule plumbing are pinned too.
    let mut lossy = Scenario::versus(10.0, 20.0, 2.0, 1, Cubic, 1, 5.0, 11);
    lossy.faults = FaultSpec {
        loss_fwd: 0.01,
        loss_ack: 0.005,
        ..FaultSpec::default()
    };
    cases.push(("faults_loss_s11".to_string(), lossy));
    let mut outage = Scenario::versus(20.0, 40.0, 1.0, 2, Bbr, 2, 6.0, 12);
    outage.faults = FaultSpec {
        outages: vec![(2.0, 0.5)],
        rate_steps: vec![(4.0, 10.0)],
        ..FaultSpec::default()
    };
    cases.push(("faults_outage_rate_s12".to_string(), outage));
    let mut spike = Scenario::versus(15.0, 30.0, 2.0, 1, BbrV2, 1, 5.0, 13);
    spike.faults = FaultSpec {
        loss_fwd: 0.002,
        delay_spikes: vec![(1.5, 0.5, 30.0)],
        ..FaultSpec::default()
    };
    cases.push(("faults_spike_s13".to_string(), spike));
    // Randomized configs from a pinned RNG: broad coverage of the config
    // space (rates, RTTs, buffers, splits, disciplines, faults) without
    // hand-picking. The draw sequence is part of the golden contract.
    let mut rng = StdRng::seed_from_u64(0x601d_5eed);
    let ccas = [Cubic, NewReno, Bbr, BbrV2, Copa, Vivace, Vegas];
    for i in 0..10 {
        let mbps = [8.0, 16.0, 32.0][rng.gen_range(0usize..3)];
        let rtt_ms = [10.0, 20.0, 40.0][rng.gen_range(0usize..3)];
        let buffer_bdp = [0.5, 1.0, 2.0, 4.0][rng.gen_range(0usize..4)];
        let n_each: u32 = rng.gen_range(1u32..4);
        let incumbent = ccas[rng.gen_range(0..ccas.len())];
        let challenger = ccas[rng.gen_range(0..ccas.len())];
        let seed = rng.gen_range(1..1_000_000u64);
        let mut s = Scenario::versus(
            mbps, rtt_ms, buffer_bdp, n_each, challenger, n_each, 4.0, seed,
        );
        s.flows[..n_each as usize]
            .iter_mut()
            .for_each(|f| f.cca = incumbent.into());
        if rng.gen_bool(0.5) {
            s.faults.loss_fwd = [0.001, 0.005][rng.gen_range(0usize..2)];
        }
        if rng.gen_bool(0.3) {
            s.faults.outages.push((1.0, 0.25));
        }
        cases.push((format!("rand{i:02}"), s));
    }
    cases
}

/// Scenario::run returns a TrialResult; the harnesses need the raw
/// SimReport, so rebuild the simulator the same way Scenario does.
pub fn run_report(s: &Scenario) -> SimReport {
    s.build_simulator().run()
}
