//! Every figure module runs end-to-end at smoke scale and produces
//! non-empty, well-formed output — the cheapest full-pipeline guarantee
//! that `repro all` cannot bit-rot.
//!
//! These are real simulations (seconds each); heavier figures are marked
//! `#[ignore]` for the default test run and exercised by `repro`/benches.

use bbrdom::experiments::figs::{run_figure, ALL_FIGURES};
use bbrdom::experiments::Profile;

fn smoke() -> Profile {
    Profile::smoke()
}

fn check(id: &str) {
    let result = run_figure(id, &smoke()).unwrap_or_else(|| panic!("unknown figure {id}"));
    assert_eq!(result.id, id);
    assert!(!result.tables.is_empty(), "{id}: no tables");
    for t in &result.tables {
        assert!(!t.rows.is_empty(), "{id}: empty table '{}'", t.title);
        assert!(!t.columns.is_empty());
        // Render paths must not panic and must contain the title.
        assert!(t.render().contains('#'));
        assert!(t.to_csv().contains(','));
    }
}

#[test]
fn fig01_smoke() {
    check("fig01");
}

#[test]
fn fig03_smoke() {
    check("fig03");
}

#[test]
fn fig04_smoke() {
    check("fig04");
}

#[test]
fn fig05_smoke() {
    check("fig05");
}

#[test]
fn fig06_smoke() {
    check("fig06");
}

#[test]
fn fig07_smoke() {
    check("fig07");
}

#[test]
fn fig08_smoke() {
    check("fig08");
}

#[test]
#[ignore = "heavier: 6 panels × (n+1) splits; covered by repro/benches"]
fn fig09_smoke() {
    check("fig09");
}

#[test]
#[ignore = "heavier: (g+1)^3 states; covered by repro and tests/multi_rtt.rs"]
fn fig10_smoke() {
    check("fig10");
}

#[test]
#[ignore = "heavier: 6 panels × (n+1) splits with BBRv2; covered by repro"]
fn fig11_smoke() {
    check("fig11");
}

#[test]
fn fig12_smoke() {
    check("fig12");
}

#[test]
fn unknown_figure_rejected() {
    assert!(run_figure("fig02", &smoke()).is_none());
    assert_eq!(ALL_FIGURES.len(), 11);
}
