//! Topology-equivalence suite: the dumbbell-as-topology contract.
//!
//! The topology layer's core promise is that generality is free: a
//! scenario whose physics are the legacy implicit dumbbell, re-spelled
//! as an explicit 4-node / 3-link [`bbrdom_experiments::TopologySpec`],
//! must produce a **bit-identical** [`bbrdom_netsim::SimReport`] — same
//! event count, same float bits, same serialized JSON. This suite runs
//! the entire golden-seed matrix (every CCA, shallow/deep buffers, AQM
//! disciplines, seeded fault schedules, randomized configs) both ways
//! and diffs the full reports, plus workload and audited variants.
//!
//! If this suite fails, the multi-hop engine path has drifted from the
//! legacy fast path — that is a correctness bug, never a golden to
//! regenerate.

mod common;

use bbrdom_cca::CcaKind;
use bbrdom_experiments::{Scenario, WorkloadSpec};
use bbrdom_netsim::cc::FixedWindow;
use bbrdom_netsim::{
    FaultSchedule, FlowConfig, Rate, SimConfig, SimDuration, SimTime, Simulator, Topology,
};
use common::{fingerprint, matrix, run_report};

/// Full-report JSON, the strictest practical equality (shortest
/// round-trip float formatting pins every bit).
fn report_json(s: &Scenario) -> String {
    run_report(s).to_json_value().to_json()
}

/// Every golden-matrix scenario — all CCAs, buffer depths, disciplines,
/// and fault schedules — must be bit-identical when the dumbbell is
/// spelled as an explicit topology.
#[test]
fn golden_matrix_is_bit_identical_as_topology() {
    let mut mismatches = Vec::new();
    for (key, legacy) in matrix() {
        let topo = legacy.clone().with_equivalent_topology();
        topo.validate()
            .unwrap_or_else(|e| panic!("{key}: equivalent topology must validate: {e}"));
        let l = run_report(&legacy);
        let t = run_report(&topo);
        assert!(
            t.hops.is_empty(),
            "{key}: single-bottleneck topology must not grow per-hop reports"
        );
        if l.to_json_value().to_json() != t.to_json_value().to_json() {
            mismatches.push(format!(
                "{key}: legacy fingerprint {:016x}, topology {:016x}",
                fingerprint(&l),
                fingerprint(&t)
            ));
        }
    }
    assert!(
        mismatches.is_empty(),
        "dumbbell-as-topology diverged from the legacy engine path:\n{}",
        mismatches.join("\n")
    );
}

/// Open-loop workload runs route their short flows over the topology's
/// `workload_route` and must stay bit-identical too.
#[test]
fn workload_scenario_is_bit_identical_as_topology() {
    let legacy = Scenario::versus(20.0, 20.0, 2.0, 1, CcaKind::Bbr, 1, 5.0, 17)
        .with_workload(Some(WorkloadSpec::web(CcaKind::Cubic, 40.0, 15.0)));
    assert_eq!(
        report_json(&legacy),
        report_json(&legacy.clone().with_equivalent_topology())
    );
}

/// With the conservation auditor enabled and a seeded fault schedule
/// active, both engine paths must still agree bit for bit (the auditor
/// itself must not perturb either path).
#[test]
fn audited_faulted_run_is_bit_identical_as_topology() {
    let run = |with_topo: bool| {
        let rate = Rate::from_mbps(12.0);
        let rtt = SimDuration::from_millis(30);
        let buffer = bbrdom_netsim::units::buffer_bytes(rate, rtt, 2.0);
        let mut cfg = SimConfig::new(rate, buffer, SimDuration::from_secs_f64(6.0))
            .with_faults(FaultSchedule {
                loss_fwd: 0.01,
                outages: vec![(SimTime::from_secs_f64(2.0), SimDuration::from_secs_f64(0.3))],
                ..FaultSchedule::default()
            })
            .with_audit(true);
        if with_topo {
            cfg.topology = Some(Topology::dumbbell(rate, buffer));
        }
        let bdp = rate.bdp_bytes(rtt);
        let mut sim = Simulator::try_new(cfg).unwrap();
        sim.add_flow(FlowConfig::new(Box::new(FixedWindow::new(3 * bdp)), rtt));
        sim.add_flow(FlowConfig::new(Box::new(FixedWindow::new(2 * bdp)), rtt));
        sim.try_run().expect("audited faulted run")
    };
    assert_eq!(
        run(false).to_json_value().to_json(),
        run(true).to_json_value().to_json()
    );
}
