//! Multi-RTT integration (paper §4.5 / Fig. 10, at test scale): NE
//! existence with heterogeneous RTTs and the CUBIC-prefers-short-RTT
//! ordering.

use bbrdom::experiments::figs::fig10;
use bbrdom::experiments::Profile;

fn tiny_profile() -> Profile {
    let mut p = Profile::smoke();
    p.duration_secs = 12.0;
    p.ne_flows = 12; // → groups of 2 flows per RTT class
    p
}

#[test]
fn multi_rtt_equilibria_exist() {
    let (nes, g) = fig10::find_equilibria(4.0, &tiny_profile());
    assert!(g >= 2);
    assert!(
        !nes.is_empty(),
        "expected at least one multi-RTT Nash equilibrium"
    );
    for ne in &nes {
        assert_eq!(ne.len(), 3);
        for &k in ne {
            assert!(k <= g);
        }
    }
}

#[test]
fn rtt_fairness_direction_in_simulation() {
    // The mechanism behind the paper's Fig. 10 ordering, checked
    // directly: with CUBIC on all flows, the short-RTT flow wins; with
    // BBR on all flows, the long-RTT flow is not starved (BBR favours
    // long RTTs because its in-flight cap is proportional to RTT).
    use bbrdom::cca::CcaKind;
    use bbrdom::experiments::{FlowSpec, Scenario};

    let make = |cca: CcaKind| {
        let flows = vec![FlowSpec::long(cca, 10.0), FlowSpec::long(cca, 50.0)];
        Scenario {
            mbps: 30.0,
            buffer_bdp: 6.0,
            reference_rtt_ms: 10.0,
            flows,
            duration_secs: 60.0,
            seed: 99,
            discipline: Default::default(),
            faults: Default::default(),
            early_stop: None,
            backend: Default::default(),
            workload: None,
            topology: None,
        }
        .run()
    };

    let cubic = make(CcaKind::Cubic);
    assert!(
        cubic.throughput_mbps[0] > cubic.throughput_mbps[1],
        "CUBIC should favour the short-RTT flow: {:?}",
        cubic.throughput_mbps
    );

    let bbr = make(CcaKind::Bbr);
    let ratio = bbr.throughput_mbps[1] / bbr.throughput_mbps[0].max(1e-9);
    assert!(
        ratio > 0.5,
        "BBR long-RTT flow should hold its own (ratio {ratio:.2}): {:?}",
        bbr.throughput_mbps
    );
}
