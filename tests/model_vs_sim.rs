//! Cross-crate integration: the analytical model against the simulator.
//!
//! These are the repository's headline checks — the paper's §3 claims at
//! reduced (test-sized) scale. Shapes and orderings must hold; exact
//! percentages are asserted loosely because the quick durations add
//! noise.

use bbrdom::cca::CcaKind;
use bbrdom::experiments::Scenario;
use bbrdom::model::multi_flow::{MultiFlowModel, SyncMode};
use bbrdom::model::two_flow::TwoFlowModel;
use bbrdom::model::ware::WareModel;
use bbrdom::model::LinkParams;

const MBPS: f64 = 30.0;
const RTT_MS: f64 = 40.0;
// The paper measures 2-minute flows; shorter runs under-measure CUBIC
// in moderate/deep buffers because one cubic epoch (time to re-reach
// W_max) is already ~7-12 s at these BDPs.
const SECS: f64 = 120.0;

fn measured_bbr(buffer_bdp: f64, seed: u64) -> f64 {
    let s = Scenario::versus(MBPS, RTT_MS, buffer_bdp, 1, CcaKind::Bbr, 1, SECS, seed);
    s.run().mean_throughput_of("bbr").unwrap()
}

#[test]
fn model_tracks_simulation_across_buffers() {
    // §3.1: the model should follow the BBR-share-vs-buffer curve.
    // We allow a generous ±35% band per point at test scale (the paper's
    // 5% claim is for 2-minute testbed averages); the *shape* — strictly
    // decreasing share — must hold exactly.
    // ≤ 12 BDP: beyond that, a 2-minute average still under-samples
    // CUBIC's epochs at this small link scale (the paper's Fig. 3 sweeps
    // to 30 BDP at 50-100 Mbps where epochs are shorter relative to the
    // run); the deep-buffer trend is covered by the last assertion.
    let buffers = [2.0, 5.0, 10.0, 12.0];
    let mut previous = f64::INFINITY;
    for &b in &buffers {
        let actual = measured_bbr(b, 1000 + b as u64);
        let predicted = TwoFlowModel::from_paper_units(MBPS, RTT_MS, b)
            .solve()
            .unwrap()
            .bbr_mbps();
        let rel = (predicted - actual).abs() / actual;
        assert!(
            rel < 0.35,
            "model off by {:.0}% at {b} BDP (pred {predicted:.1}, actual {actual:.1})",
            rel * 100.0
        );
        assert!(
            actual < previous + 2.0,
            "BBR share should trend down with buffer depth"
        );
        previous = actual;
    }
}

#[test]
fn our_model_beats_ware_in_moderate_buffers() {
    // §3.1's comparison, at 2–10 BDP where Ware's always-full-buffer
    // assumption hurts most. Individual points are noisy at this small
    // link scale, so compare mean absolute error across the sweep.
    let mut our_total = 0.0;
    let mut ware_total = 0.0;
    for b in [2.0, 3.0, 5.0, 10.0] {
        let actual = measured_bbr(b, 2000 + b as u64);
        let ours = TwoFlowModel::from_paper_units(MBPS, RTT_MS, b)
            .solve()
            .unwrap()
            .bbr_mbps();
        let ware = WareModel::new(LinkParams::from_paper_units(MBPS, RTT_MS, b), 1, SECS)
            .predict()
            .unwrap()
            .bbr_mbps();
        our_total += (ours - actual).abs();
        ware_total += (ware - actual).abs();
    }
    assert!(
        our_total < ware_total,
        "mean |error|: ours {our_total:.1} vs ware {ware_total:.1}"
    );
}

#[test]
fn multi_flow_measurement_falls_in_predicted_region() {
    // §3.2 at 3v3 scale: measured BBR per-flow within [sync, desync]
    // bounds with slack.
    let (nc, nb, b) = (3u32, 3u32, 5.0);
    let s = Scenario::versus(MBPS, RTT_MS, b, nc, CcaKind::Bbr, nb, SECS, 77);
    let measured = s.run().mean_throughput_of("bbr").unwrap();
    let m = MultiFlowModel::from_paper_units(MBPS, RTT_MS, b, nc, nb);
    let sync = m.solve(SyncMode::Synchronized).unwrap().bbr_per_flow_mbps();
    let desync = m
        .solve(SyncMode::DeSynchronized)
        .unwrap()
        .bbr_per_flow_mbps();
    let lo = sync.min(desync) * 0.7;
    let hi = sync.max(desync) * 1.3;
    assert!(
        measured >= lo && measured <= hi,
        "measured {measured:.2} outside [{lo:.2}, {hi:.2}]"
    );
}

#[test]
fn diminishing_returns_for_bbr() {
    // §3.3: more BBR flows → lower BBR per-flow throughput.
    let n = 6u32;
    let few = Scenario::versus(MBPS, RTT_MS, 3.0, n - 1, CcaKind::Bbr, 1, SECS, 31)
        .run()
        .mean_throughput_of("bbr")
        .unwrap();
    let many = Scenario::versus(MBPS, RTT_MS, 3.0, 1, CcaKind::Bbr, n - 1, SECS, 32)
        .run()
        .mean_throughput_of("bbr")
        .unwrap();
    assert!(
        few > many,
        "1 BBR flow should beat the per-flow average of {} ({few:.1} vs {many:.1})",
        n - 1
    );
}

#[test]
fn single_bbr_flow_above_fair_share_in_shallow_buffer() {
    // The premise of the whole game (§4.1 point A): a lone BBR flow gets
    // a disproportionately large share in a shallow buffer.
    let n = 6u32;
    let fair = MBPS / n as f64;
    let bbr = Scenario::versus(MBPS, RTT_MS, 2.0, n - 1, CcaKind::Bbr, 1, SECS, 55)
        .run()
        .mean_throughput_of("bbr")
        .unwrap();
    assert!(
        bbr > 1.3 * fair,
        "lone BBR should exceed fair share: {bbr:.1} vs fair {fair:.1}"
    );
}
