//! Integration tests for the extension experiments (the paper's open
//! questions — see `experiments::ext`).

use bbrdom::cca::CcaKind;
use bbrdom::experiments::ext::{run_extension, ALL_EXTENSIONS};
use bbrdom::experiments::{DisciplineSpec, Profile, Scenario};

fn smoke() -> Profile {
    Profile::smoke()
}

#[test]
fn aqm_disciplines_change_the_split() {
    // The same 1v1 contest under drop-tail vs CoDel: CoDel curbs the
    // standing queue, which must show up as materially lower queuing
    // delay at the same buffer.
    let base = Scenario::versus(20.0, 40.0, 16.0, 1, CcaKind::Bbr, 1, 20.0, 9);
    let droptail = base.clone().run();
    let codel = base.with_discipline(DisciplineSpec::Codel).run();
    assert!(
        codel.avg_queuing_delay_ms < droptail.avg_queuing_delay_ms,
        "codel {} vs droptail {}",
        codel.avg_queuing_delay_ms,
        droptail.avg_queuing_delay_ms
    );
}

#[test]
fn red_produces_early_drops() {
    let s = Scenario::versus(20.0, 40.0, 8.0, 2, CcaKind::Cubic, 0, 20.0, 9)
        .with_discipline(DisciplineSpec::Red);
    let r = s.run();
    assert!(r.aqm_drops > 0, "RED should early-drop under CUBIC load");
    assert!(r.utilization > 0.8);
}

#[test]
fn ternary_game_measures_and_enumerates() {
    let mut p = smoke();
    p.duration_secs = 6.0;
    let (game, states) = bbrdom::experiments::ext::ternary::measure_game(4, &p);
    assert_eq!(states.len(), 15);
    // The oracle answers for every state; NE enumeration runs.
    let _ = game.nash_equilibria();
}

#[test]
fn utility_extension_reports_ne_for_every_weight() {
    let r = run_extension("ext-utility", &smoke()).unwrap();
    assert_eq!(r.id, "ext-utility");
    for row in &r.tables[0].rows {
        assert!(
            !row[1].is_empty(),
            "every delay weight must report an NE set (guaranteed for \
             two-strategy symmetric games)"
        );
    }
}

#[test]
#[ignore = "heavier: full extension suite; run via `repro ext`"]
fn all_extensions_run_end_to_end() {
    for id in ALL_EXTENSIONS {
        let r = run_extension(id, &smoke()).unwrap_or_else(|| panic!("{id} missing"));
        assert!(!r.tables.is_empty(), "{id}: no tables");
    }
}
