//! # bbrdom-fluid — fluid/ODE fast simulation backend
//!
//! The paper's NE analysis (Eq. (25), the Fig. 9/11 grids) only consumes
//! *steady-state throughput shares*, yet every grid cell costs a full
//! packet-level discrete-event run. Following the fluid-model line of
//! work on BBR/CUBIC competition (Scherrer et al., *"Model-Based Insights
//! on the Performance, Fairness, and Stability of BBR"* and *"A
//! Control-Theoretic Perspective on BBR/CUBIC Competition"*), this crate
//! integrates a small deterministic ODE system — per-flow CUBIC window /
//! loss-epoch dynamics and per-flow BBR btlbw / min-RTT / inflight-cap
//! dynamics coupled through one shared bottleneck queue — and emits the
//! **same [`SimReport`]** the DES produces, in microseconds instead of
//! seconds.
//!
//! ## State variables (per integration step `dt`)
//!
//! * **Queue** `q(t)` ∈ `[0, B]` bytes: `dq/dt = Σᵢ aᵢ − C` while
//!   positive, where `aᵢ` is flow *i*'s arrival rate and `C` the link
//!   rate. Overflow beyond `B` is dropped, attributed to flows in
//!   proportion to their arrival rates.
//! * **Round-trip time** `R(t) = τᵢ + q(t)/C` (base propagation + queuing).
//! * **CUBIC flows**: window `w(t) = W_max + 0.4·(t_e − K)³` (MSS units,
//!   `K = ∛(0.3·W_max/0.4)`), with the RFC 8312 TCP-friendly AIMD floor;
//!   slow start doubles `w` per RTT until the first loss; a sampled loss
//!   (Poisson-thinned from the flow's share of overflow drops, at most
//!   once per RTT) multiplies `w` by β = 0.7 and restarts the epoch.
//!   NewReno is the same skeleton with linear growth and β = 0.5.
//! * **BBR flows**: delivery-rate max filter over the last 10 rounds
//!   feeds `btlbw`; `rtprop` is the windowed (10 s) minimum of `R(t)`
//!   with a 200 ms ProbeRTT drain when stale; sending rate
//!   `aᵢ = min(g·btlbw, cwnd/R)` with the ProbeBW pacing-gain cycle
//!   `g ∈ {1.25, 0.75, 1, …}` and the v1 inflight cap
//!   `cwnd = 2·btlbw·rtprop`. BBRv2 reuses the skeleton with a 0.85
//!   headroom on the cap and a 0.7 multiplicative cut of the cap on
//!   sampled loss (recovering ~5%/round) — a coarser model, validated
//!   only qualitatively.
//!
//! Integration is explicit Euler with `dt = min RTT / 24` (clamped to
//! `[20 µs, 2 ms]`); [`SimReport::events_processed`] records the step
//! count so event budgets and perf accounting stay meaningful.
//!
//! ## Validity envelope
//!
//! The fluid backend deliberately rejects — with a typed
//! [`FluidError`] — everything outside the regime where the aggregate
//! approximation is trusted: only CUBIC / NewReno / BBR / BBRv2 flows,
//! drop-tail queues, clean paths (no fault injection), backlogged flows
//! (no byte limits), and fixed horizons (no early-stop policy). Within
//! the envelope, steady-state shares track the DES within the tolerances
//! documented in `EXPERIMENTS.md` (cross-validation suite in
//! `tests/fluid_vs_des.rs`); transients, per-packet loss patterns and
//! queue-delay microstructure are *not* faithful, which is why the
//! two-tier pipeline always certifies equilibria with DES cells.
//!
//! ```
//! use bbrdom_fluid::{simulate, FluidCca, FluidConfig, FluidFlowSpec};
//!
//! let cfg = FluidConfig {
//!     capacity_bytes_per_sec: 50e6 / 8.0, // 50 Mbps
//!     buffer_bytes: 250_000.0,            // ~2 BDP at 20 ms
//!     duration_secs: 10.0,
//!     seed: 1,
//!     flows: vec![
//!         FluidFlowSpec { cca: FluidCca::Cubic, rtt_secs: 0.02, start_secs: 0.0 },
//!         FluidFlowSpec { cca: FluidCca::Bbr, rtt_secs: 0.02, start_secs: 0.0 },
//!     ],
//! };
//! let report = simulate(&cfg).unwrap();
//! assert_eq!(report.flows.len(), 2);
//! let total: f64 = report.flows.iter().map(|f| f.throughput_bytes_per_sec).sum();
//! assert!(total > 0.5 * cfg.capacity_bytes_per_sec); // link well used
//! ```

use bbrdom_netsim::packet::FlowId;
use bbrdom_netsim::{FlowReport, QueueReport, SimReport, Trace, MSS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// CUBIC multiplicative back-off factor (RFC 8312).
const CUBIC_BETA: f64 = 0.7;
/// CUBIC growth constant `C` (MSS/s³ units).
const CUBIC_C: f64 = 0.4;
/// NewReno back-off factor.
const RENO_BETA: f64 = 0.5;
/// BBR ProbeBW pacing-gain cycle (one entry per rtprop-long round).
const PROBE_GAINS: [f64; 8] = [1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0];
/// BBR Startup pacing/cwnd gain (2/ln 2).
const STARTUP_GAIN: f64 = 2.885;
/// Rounds of <25% btlbw growth before Startup is declared full.
const STARTUP_FULL_ROUNDS: u32 = 3;
/// Delivery-rate max-filter depth, in rounds (BBR's 10-RTT window).
const BW_FILTER_ROUNDS: usize = 10;
/// rtprop expiry window (seconds) and ProbeRTT drain length.
const RTPROP_WINDOW_SECS: f64 = 10.0;
const PROBE_RTT_SECS: f64 = 0.2;
/// BBRv2: inflight-cap headroom and loss-cut factor.
const V2_HEADROOM: f64 = 0.85;
const V2_LOSS_CUT: f64 = 0.7;
/// Optimism factor on the per-round bandwidth sample. The packet-level
/// max filter rides per-ACK delivery-rate spikes (ack clustering,
/// sub-round queue drains) that a fluid step averages away; competing
/// BBR flows are *known* to collectively overestimate btlbw for exactly
/// this reason. Calibrated against seed-averaged DES references on the
/// (50 Mbps/20 ms, 100 Mbps/20 ms) cross-validation grids with
/// `examples/tune_fluid.rs` (worst share delta 0.27 → 0.16); the
/// `FLUID_BW_HEADROOM` env var overrides it for recalibration sweeps.
const BW_SAMPLE_HEADROOM: f64 = 1.2;

/// Congestion-control algorithms the fluid model can integrate.
///
/// This is deliberately a subset of the DES's registry: Copa, Vivace and
/// Vegas have no validated aggregate fluid description here, so scenarios
/// using them must run on the DES backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FluidCca {
    Cubic,
    NewReno,
    Bbr,
    BbrV2,
}

impl FluidCca {
    /// Wire name, matching the DES registry's `CcaKind::name`.
    pub fn name(self) -> &'static str {
        match self {
            FluidCca::Cubic => "cubic",
            FluidCca::NewReno => "newreno",
            FluidCca::Bbr => "bbr",
            FluidCca::BbrV2 => "bbrv2",
        }
    }

    /// Inverse of [`FluidCca::name`]; `None` for algorithms outside the
    /// fluid envelope.
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "cubic" => FluidCca::Cubic,
            "newreno" => FluidCca::NewReno,
            "bbr" => FluidCca::Bbr,
            "bbrv2" => FluidCca::BbrV2,
            _ => return None,
        })
    }

    fn is_loss_based(self) -> bool {
        matches!(self, FluidCca::Cubic | FluidCca::NewReno)
    }
}

/// One flow of the fluid system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FluidFlowSpec {
    pub cca: FluidCca,
    /// Base (propagation) RTT, seconds.
    pub rtt_secs: f64,
    /// Time the flow starts sending, seconds.
    pub start_secs: f64,
}

/// A complete fluid-simulation configuration (one bottleneck).
#[derive(Debug, Clone, PartialEq)]
pub struct FluidConfig {
    /// Bottleneck capacity, bytes/second.
    pub capacity_bytes_per_sec: f64,
    /// Drop-tail buffer size, bytes.
    pub buffer_bytes: f64,
    /// Simulated horizon, seconds.
    pub duration_secs: f64,
    /// Decorrelation seed: staggers BBR gain-cycle phases and samples
    /// which flows a given overflow event hits, so trials with different
    /// seeds produce (deterministically) different reports, like the DES.
    pub seed: u64,
    pub flows: Vec<FluidFlowSpec>,
}

/// Why a configuration cannot run on the fluid backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FluidError {
    /// No flows configured.
    NoFlows,
    /// A numeric field was non-finite or non-positive.
    Invalid { field: &'static str },
    /// A feature outside the fluid validity envelope (see crate docs).
    Unsupported { feature: &'static str },
}

impl fmt::Display for FluidError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FluidError::NoFlows => write!(f, "fluid backend: no flows configured"),
            FluidError::Invalid { field } => {
                write!(f, "fluid backend: {field} must be positive and finite")
            }
            FluidError::Unsupported { feature } => {
                write!(
                    f,
                    "fluid backend does not support {feature} (use the DES backend)"
                )
            }
        }
    }
}

impl std::error::Error for FluidError {}

impl FluidConfig {
    /// Validate without running.
    pub fn validate(&self) -> Result<(), FluidError> {
        if self.flows.is_empty() {
            return Err(FluidError::NoFlows);
        }
        for (field, v) in [
            ("capacity_bytes_per_sec", self.capacity_bytes_per_sec),
            ("buffer_bytes", self.buffer_bytes),
            ("duration_secs", self.duration_secs),
        ] {
            if !v.is_finite() || v <= 0.0 {
                return Err(FluidError::Invalid { field });
            }
        }
        for f in &self.flows {
            if !f.rtt_secs.is_finite() || f.rtt_secs <= 0.0 {
                return Err(FluidError::Invalid {
                    field: "flow rtt_secs",
                });
            }
            if !f.start_secs.is_finite() || f.start_secs < 0.0 {
                return Err(FluidError::Invalid {
                    field: "flow start_secs",
                });
            }
        }
        Ok(())
    }
}

/// Per-flow loss-based (CUBIC / NewReno) window state.
struct LossState {
    /// Congestion window, bytes.
    w: f64,
    /// Window at the last back-off, MSS units (CUBIC's `W_max`).
    w_max_mss: f64,
    /// Seconds since the last back-off (CUBIC epoch clock).
    epoch: f64,
    /// CUBIC's `K` for the current `w_max_mss` — cached because `cbrt`
    /// in the per-step window evaluation dominates the loss-flow cost.
    k: f64,
    slow_start: bool,
    /// Last back-off time (one reaction per RTT, like TCP).
    last_backoff: f64,
}

/// Per-flow BBR (v1/v2) state.
struct BbrState {
    /// Output of the delivery-rate max filter, bytes/s.
    btlbw: f64,
    /// Ring of per-round delivery-rate samples feeding the max filter.
    bw_ring: Vec<f64>,
    bw_pos: usize,
    /// Windowed-minimum RTT estimate and its freshness stamp.
    rtprop: f64,
    rtprop_stamp: f64,
    /// Current round (one rtprop) bookkeeping. The bandwidth sample fed
    /// to the max filter is the *maximum instantaneous* delivered rate
    /// seen within the round (mirroring per-ACK delivery-rate sampling):
    /// this is what lets BBR's estimate ratchet upward during the brief
    /// queue drain after a competing CUBIC back-off — the inflight-cap
    /// domination mechanism (Ware et al., IMC '19) that decides shallow
    /// buffers. A round-average sample misses those spikes and
    /// systematically underestimates BBR's share.
    round_start: f64,
    round_max_rate: f64,
    /// ProbeBW gain-cycle index.
    phase: usize,
    startup: bool,
    drain: bool,
    full_bw: f64,
    full_rounds: u32,
    /// While `t < probe_rtt_until` the flow sits at 4 MSS of inflight.
    probe_rtt_until: f64,
    probe_rtt_min: f64,
    /// BBRv2 inflight-ceiling multiplier (1.0 for v1; cut on loss).
    hi_mult: f64,
    last_loss_cut: f64,
}

enum CcState {
    Loss(LossState),
    Bbr(BbrState),
}

/// Per-flow measurement accumulators (mirrors the DES's `FlowStats`).
#[derive(Default)]
struct FlowAcc {
    sent_bytes: f64,
    delivered_bytes: f64,
    dropped_bytes: f64,
    backoffs: Vec<f64>,
    occupancy_integral: f64,
    cwnd_integral: f64,
    max_cwnd: f64,
    rtt_integral: f64,
    active_secs: f64,
    congestion_events: u64,
}

fn cubic_k(w_max_mss: f64) -> f64 {
    (w_max_mss * (1.0 - CUBIC_BETA) / CUBIC_C).cbrt()
}

/// TCP-friendly AIMD slope, MSS per RTT (RFC 8312 §4.2).
const CUBIC_TCP_ALPHA: f64 = 3.0 * (1.0 - CUBIC_BETA) / (1.0 + CUBIC_BETA);

/// RFC 8312 window at `epoch` seconds after a back-off from `w_max_mss`
/// (`k` = [`cubic_k`]`(w_max_mss)`, cached by the caller), including the
/// TCP-friendly AIMD floor (MSS units).
fn cubic_window_mss(epoch: f64, w_max_mss: f64, k: f64, rtt: f64) -> f64 {
    let cubic = CUBIC_C * (epoch - k).powi(3) + w_max_mss;
    let tcp = w_max_mss * CUBIC_BETA + CUBIC_TCP_ALPHA * epoch / rtt;
    cubic.max(tcp)
}

/// Run the fluid model and package the result as the DES's report type.
///
/// Deterministic: the same config (including seed) produces a
/// bit-identical report. `events_processed` counts integration steps.
pub fn simulate(cfg: &FluidConfig) -> Result<SimReport, FluidError> {
    cfg.validate()?;
    let c = cfg.capacity_bytes_per_sec;
    let buffer = cfg.buffer_bytes;
    let mss = MSS as f64;
    let bw_headroom: f64 = std::env::var("FLUID_BW_HEADROOM")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(BW_SAMPLE_HEADROOM);
    let n = cfg.flows.len();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xf1u64.rotate_left(32));

    let min_rtt = cfg
        .flows
        .iter()
        .map(|f| f.rtt_secs)
        .fold(f64::INFINITY, f64::min);
    let dt = (min_rtt / 24.0)
        .clamp(2e-5, 2e-3)
        .min(cfg.duration_secs / 8.0);
    let steps = (cfg.duration_secs / dt).ceil() as u64;

    // Initial per-flow state. BBR phases and round clocks are staggered
    // by the seed so flows (and trials) decorrelate, mirroring the DES's
    // per-flow phase seeds.
    let mut states: Vec<CcState> = cfg
        .flows
        .iter()
        .map(|f| {
            if f.cca.is_loss_based() {
                CcState::Loss(LossState {
                    w: 10.0 * mss,
                    w_max_mss: 10.0,
                    epoch: 0.0,
                    k: cubic_k(10.0),
                    slow_start: true,
                    last_backoff: f64::NEG_INFINITY,
                })
            } else {
                CcState::Bbr(BbrState {
                    btlbw: 10.0 * mss / f.rtt_secs,
                    bw_ring: Vec::with_capacity(BW_FILTER_ROUNDS),
                    bw_pos: 0,
                    rtprop: f.rtt_secs,
                    rtprop_stamp: f.start_secs,
                    round_start: f.start_secs + rng.gen_range(0.0..f.rtt_secs),
                    round_max_rate: 0.0,
                    phase: rng.gen_range(0..PROBE_GAINS.len()),
                    startup: true,
                    drain: false,
                    full_bw: 0.0,
                    full_rounds: 0,
                    probe_rtt_until: f64::NEG_INFINITY,
                    probe_rtt_min: f64::INFINITY,
                    hi_mult: 1.0,
                    last_loss_cut: f64::NEG_INFINITY,
                })
            }
        })
        .collect();

    let mut acc: Vec<FlowAcc> = (0..n).map(|_| FlowAcc::default()).collect();
    let mut q = 0.0_f64;
    let mut q_integral = 0.0;
    let mut q_peak = 0.0_f64;
    let mut total_dropped = 0.0;
    let mut rates = vec![0.0_f64; n];
    let mut cwnds = vec![0.0_f64; n];

    let inv_c = 1.0 / c;
    for step in 0..steps {
        let t = step as f64 * dt;
        let mut total_rate = 0.0;
        let q_delay = q * inv_c;
        for (i, f) in cfg.flows.iter().enumerate() {
            if t < f.start_secs {
                rates[i] = 0.0;
                continue;
            }
            let r = f.rtt_secs + q_delay;
            let r_inv = 1.0 / r;
            let (rate, cwnd) = match &mut states[i] {
                CcState::Loss(s) => {
                    if s.slow_start {
                        // Doubling per RTT: dw/dt = w·ln2/R.
                        s.w += s.w * std::f64::consts::LN_2 * dt * r_inv;
                    } else {
                        s.epoch += dt;
                        let growth = match f.cca {
                            FluidCca::Cubic => cubic_window_mss(s.epoch, s.w_max_mss, s.k, r) * mss,
                            // NewReno: one MSS per RTT from the back-off point.
                            _ => s.w_max_mss * RENO_BETA * mss + mss * s.epoch * r_inv,
                        };
                        s.w = growth.max(2.0 * mss);
                    }
                    // Physical ceiling: a window beyond BDP + buffer only
                    // inflates drops the queue already accounts for.
                    s.w = s.w.min(2.0 * (c * r + buffer));
                    (s.w * r_inv, s.w)
                }
                CcState::Bbr(s) => {
                    // rtprop tracking and ProbeRTT.
                    if t < s.probe_rtt_until {
                        s.probe_rtt_min = s.probe_rtt_min.min(r);
                    } else if s.probe_rtt_min.is_finite() {
                        // Leaving ProbeRTT: adopt the drained floor.
                        s.rtprop = s.probe_rtt_min;
                        s.rtprop_stamp = t;
                        s.probe_rtt_min = f64::INFINITY;
                    } else if r <= s.rtprop {
                        s.rtprop = r;
                        s.rtprop_stamp = t;
                    } else if t - s.rtprop_stamp > RTPROP_WINDOW_SECS {
                        s.probe_rtt_until = t + PROBE_RTT_SECS;
                        s.probe_rtt_min = r;
                    }
                    // Round boundary: fold the round's delivery rate into
                    // the max filter, advance the gain cycle.
                    let round_len = (t - s.round_start).max(dt);
                    if round_len >= s.rtprop {
                        let sample = (s.round_max_rate * bw_headroom).min(c);
                        if s.bw_ring.len() < BW_FILTER_ROUNDS {
                            s.bw_ring.push(sample);
                        } else {
                            s.bw_ring[s.bw_pos] = sample;
                            s.bw_pos = (s.bw_pos + 1) % BW_FILTER_ROUNDS;
                        }
                        s.btlbw = s.bw_ring.iter().copied().fold(sample, f64::max);
                        s.round_start = t;
                        s.round_max_rate = 0.0;
                        s.phase = (s.phase + 1) % PROBE_GAINS.len();
                        if s.startup {
                            if s.btlbw > s.full_bw * 1.25 {
                                s.full_bw = s.btlbw;
                                s.full_rounds = 0;
                            } else {
                                s.full_rounds += 1;
                                if s.full_rounds >= STARTUP_FULL_ROUNDS {
                                    s.startup = false;
                                    s.drain = true;
                                }
                            }
                        } else if s.drain {
                            s.drain = false; // one drain round
                        }
                        // BBRv2 ceiling recovers a few percent per round.
                        s.hi_mult = (s.hi_mult * 1.05).min(1.0);
                    }
                    let in_probe_rtt = t < s.probe_rtt_until;
                    let (pacing_gain, cwnd_gain) = if s.startup {
                        (STARTUP_GAIN, STARTUP_GAIN)
                    } else if s.drain {
                        (1.0 / STARTUP_GAIN, 2.0)
                    } else {
                        (PROBE_GAINS[s.phase], 2.0)
                    };
                    let headroom = if f.cca == FluidCca::BbrV2 {
                        V2_HEADROOM
                    } else {
                        1.0
                    };
                    let cwnd = if in_probe_rtt {
                        4.0 * mss
                    } else {
                        (cwnd_gain * s.btlbw * s.rtprop * headroom * s.hi_mult).max(4.0 * mss)
                    };
                    let rate = (pacing_gain * s.btlbw).min(cwnd * r_inv).max(mss * r_inv);
                    (rate, cwnd)
                }
            };
            rates[i] = rate;
            cwnds[i] = cwnd;
            total_rate += rate;
            let a = &mut acc[i];
            a.active_secs += dt;
            a.rtt_integral += r * dt;
            a.cwnd_integral += cwnd * dt;
            a.max_cwnd = a.max_cwnd.max(cwnd);
        }

        // Shared-queue service: drain at link rate while backlogged.
        let depart = if q > 0.0 { c } else { total_rate.min(c) };
        let mut q_next = q + (total_rate - depart) * dt;
        let overflow = (q_next - buffer).max(0.0);
        q_next = q_next.clamp(0.0, buffer);
        total_dropped += overflow;

        let inv_total = 1.0 / total_rate.max(f64::MIN_POSITIVE);
        for i in 0..n {
            if rates[i] <= 0.0 {
                continue;
            }
            let share = rates[i] * inv_total;
            let a = &mut acc[i];
            a.sent_bytes += rates[i] * dt;
            a.delivered_bytes += depart * share * dt;
            a.occupancy_integral += q_next * share * dt;
            if overflow > 0.0 {
                let dropped_i = overflow * share;
                a.dropped_bytes += dropped_i;
                // Poisson thinning: the chance this flow saw at least one
                // of the event's dropped packets. Partial synchronization
                // — the regime the paper measures — emerges naturally:
                // small overflows hit few flows, deep ones hit all.
                let p_hit = 1.0 - (-dropped_i / mss).exp();
                let hit = rng.gen_bool(p_hit.clamp(0.0, 1.0));
                let f = &cfg.flows[i];
                let r = f.rtt_secs + q_next * inv_c;
                match &mut states[i] {
                    CcState::Loss(s) if hit && t - s.last_backoff > r => {
                        let w_mss = s.w / mss;
                        // CUBIC fast convergence: a shrinking flow
                        // remembers a slightly smaller W_max.
                        s.w_max_mss = if w_mss < s.w_max_mss {
                            w_mss * (2.0 - CUBIC_BETA) / 2.0
                        } else {
                            w_mss
                        };
                        let beta = if f.cca == FluidCca::Cubic {
                            CUBIC_BETA
                        } else {
                            RENO_BETA
                        };
                        s.k = cubic_k(s.w_max_mss);
                        s.w = (s.w * beta).max(2.0 * mss);
                        s.epoch = 0.0;
                        s.slow_start = false;
                        s.last_backoff = t;
                        a.backoffs.push(t);
                        a.congestion_events += 1;
                    }
                    CcState::Bbr(s)
                        if hit && f.cca == FluidCca::BbrV2 && t - s.last_loss_cut > r =>
                    {
                        s.hi_mult = (s.hi_mult * V2_LOSS_CUT).max(0.3);
                        s.last_loss_cut = t;
                        a.congestion_events += 1;
                    }
                    _ => {}
                }
            }
            if let CcState::Bbr(s) = &mut states[i] {
                s.round_max_rate = s.round_max_rate.max(depart * share);
            }
        }

        q = q_next;
        q_integral += q * dt;
        q_peak = q_peak.max(q);
    }

    let horizon = steps as f64 * dt;
    let flows = cfg
        .flows
        .iter()
        .enumerate()
        .map(|(i, f)| {
            let a = &acc[i];
            FlowReport {
                flow: FlowId(i as u32),
                cc_name: f.cca.name().to_string(),
                throughput_bytes_per_sec: a.delivered_bytes / horizon,
                goodput_bytes: a.delivered_bytes.round() as u64,
                sent_bytes: a.sent_bytes.round() as u64,
                retransmits: (a.dropped_bytes / mss).round() as u64,
                lost_packets: (a.dropped_bytes / mss).round() as u64,
                congestion_events: a.congestion_events,
                rtos: 0,
                wire_lost_fwd: 0,
                wire_lost_ack: 0,
                avg_queue_occupancy_bytes: a.occupancy_integral / horizon,
                min_rtt_secs: (a.active_secs > 0.0).then_some(f.rtt_secs),
                mean_rtt_secs: (a.active_secs > 0.0).then(|| a.rtt_integral / a.active_secs),
                avg_cwnd_bytes: if a.active_secs > 0.0 {
                    a.cwnd_integral / a.active_secs
                } else {
                    0.0
                },
                max_cwnd_bytes: a.max_cwnd.round() as u64,
                completion_time_secs: None,
                backoff_times_secs: a.backoffs.clone(),
            }
        })
        .collect::<Vec<_>>();
    let delivered_total: f64 = acc.iter().map(|a| a.delivered_bytes).sum();
    let sent_total: f64 = acc.iter().map(|a| a.sent_bytes).sum();
    let queue = QueueReport {
        avg_occupancy_bytes: q_integral / horizon,
        avg_queuing_delay_secs: q_integral / horizon / c,
        peak_occupancy_bytes: q_peak.round() as u64,
        capacity_bytes: buffer.round() as u64,
        dropped_packets: (total_dropped / mss).round() as u64,
        aqm_drops: 0,
        enqueued_packets: (sent_total / mss).round() as u64,
        utilization: delivered_total / (c * horizon),
        // Individual drop timestamps are a packet-level notion; the fluid
        // model only attributes aggregate drop volume (see crate docs).
        drops: Vec::new(),
    };
    Ok(SimReport {
        flows,
        queue,
        hops: Vec::new(),
        duration_secs: cfg.duration_secs,
        effective_duration_secs: cfg.duration_secs,
        early_stopped: false,
        events_processed: steps,
        trace: Trace::default(),
        workload_spawned: 0,
        workload_completed: 0,
        workload_fct: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_flow_cfg(seed: u64) -> FluidConfig {
        FluidConfig {
            capacity_bytes_per_sec: 50e6 / 8.0,
            buffer_bytes: 2.0 * (50e6 / 8.0) * 0.02,
            duration_secs: 15.0,
            seed,
            flows: vec![
                FluidFlowSpec {
                    cca: FluidCca::Cubic,
                    rtt_secs: 0.02,
                    start_secs: 0.0,
                },
                FluidFlowSpec {
                    cca: FluidCca::Bbr,
                    rtt_secs: 0.02,
                    start_secs: 0.0,
                },
            ],
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = simulate(&two_flow_cfg(7)).unwrap();
        let b = simulate(&two_flow_cfg(7)).unwrap();
        for (x, y) in a.flows.iter().zip(&b.flows) {
            assert_eq!(
                x.throughput_bytes_per_sec.to_bits(),
                y.throughput_bytes_per_sec.to_bits()
            );
        }
        let c = simulate(&two_flow_cfg(8)).unwrap();
        assert_ne!(
            a.flows[0].throughput_bytes_per_sec.to_bits(),
            c.flows[0].throughput_bytes_per_sec.to_bits(),
            "different seeds must decorrelate"
        );
    }

    #[test]
    fn link_is_fully_used_and_physical() {
        let r = simulate(&two_flow_cfg(1)).unwrap();
        let cap = 50e6 / 8.0;
        let total: f64 = r.flows.iter().map(|f| f.throughput_bytes_per_sec).sum();
        assert!(total > 0.85 * cap, "utilization too low: {}", total / cap);
        assert!(total <= 1.001 * cap, "throughput exceeds the link");
        assert!(r.queue.utilization > 0.85 && r.queue.utilization <= 1.001);
        assert!(r.queue.peak_occupancy_bytes <= r.queue.capacity_bytes);
    }

    #[test]
    fn bbr_beats_cubic_in_shallow_buffers_and_loses_in_deep() {
        // The paper's central asymmetry (Fig. 5): BBR's inflight cap
        // dominates in shallow buffers; CUBIC fills deep ones.
        let share = |bdp_mult: f64| {
            let mut cfg = two_flow_cfg(3);
            cfg.buffer_bytes = bdp_mult * (50e6 / 8.0) * 0.02;
            let r = simulate(&cfg).unwrap();
            let bbr = r.flows[1].throughput_bytes_per_sec;
            let total: f64 = r.flows.iter().map(|f| f.throughput_bytes_per_sec).sum();
            bbr / total
        };
        let shallow = share(0.5);
        let deep = share(16.0);
        assert!(shallow > 0.5, "shallow-buffer BBR share {shallow}");
        assert!(deep < 0.5, "deep-buffer BBR share {deep}");
        assert!(shallow > deep);
    }

    #[test]
    fn cubic_alone_fills_the_link_and_backs_off() {
        let mut cfg = two_flow_cfg(2);
        cfg.flows.truncate(1);
        let r = simulate(&cfg).unwrap();
        assert!(r.flows[0].throughput_bytes_per_sec > 0.8 * 50e6 / 8.0);
        assert!(
            !r.flows[0].backoff_times_secs.is_empty(),
            "a lone CUBIC flow must hit the buffer and back off"
        );
    }

    #[test]
    fn validation_rejects_degenerate_configs() {
        let mut cfg = two_flow_cfg(1);
        cfg.flows.clear();
        assert_eq!(simulate(&cfg).err(), Some(FluidError::NoFlows));
        let mut cfg = two_flow_cfg(1);
        cfg.capacity_bytes_per_sec = 0.0;
        assert!(matches!(
            simulate(&cfg),
            Err(FluidError::Invalid {
                field: "capacity_bytes_per_sec"
            })
        ));
        let mut cfg = two_flow_cfg(1);
        cfg.flows[0].rtt_secs = f64::NAN;
        assert!(simulate(&cfg).is_err());
    }

    #[test]
    fn events_processed_counts_steps() {
        let r = simulate(&two_flow_cfg(1)).unwrap();
        assert!(r.events_processed > 0);
        assert!(!r.early_stopped);
        assert_eq!(r.duration_secs, 15.0);
    }
}
