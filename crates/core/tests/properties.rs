//! Property-based tests for the analytical model and game theory.

use bbrdom_core::game::dynamics::{best_response_dynamics, BestResponseOutcome};
use bbrdom_core::game::symmetric::SymmetricGame;
use bbrdom_core::model::multi_flow::{MultiFlowModel, SyncMode};
use bbrdom_core::model::nash::NashPredictor;
use bbrdom_core::model::two_flow::solve_with_gamma;
use bbrdom_core::model::LinkParams;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The 2-flow solution is always physical and consistent: bandwidths
    /// non-negative and summing to capacity, buffer share within the
    /// buffer, and the Eq. (18) residual ≈ 0.
    #[test]
    fn two_flow_solution_is_physical(
        mbps in 1.0f64..2000.0,
        rtt_ms in 1.0f64..500.0,
        buffer_bdp in 1.0f64..300.0,
        gamma in 0.5f64..0.99,
    ) {
        let link = LinkParams::from_paper_units(mbps, rtt_ms, buffer_bdp);
        let pred = solve_with_gamma(&link, gamma).unwrap();
        prop_assert!(pred.bbr_bandwidth >= -1e-6);
        prop_assert!(pred.cubic_bandwidth >= -1e-6);
        prop_assert!((pred.bbr_bandwidth + pred.cubic_bandwidth - link.capacity).abs()
            < 1e-6 * link.capacity);
        prop_assert!(pred.bbr_buffer >= 0.0 && pred.bbr_buffer <= link.buffer * (1.0 + 1e-9));
        // Residual of Eq. (18).
        let d = link.bdp();
        let s = (link.buffer - d) / 2.0;
        if s > 1.0 {
            let lhs = s + s / (s + pred.bbr_buffer) * d;
            let rhs = gamma * (link.buffer - pred.bbr_buffer
                + (link.buffer - pred.bbr_buffer) / link.buffer * d);
            prop_assert!((lhs - rhs).abs() < 1e-6 * link.buffer,
                "residual {}", lhs - rhs);
        }
    }

    /// BDP scale invariance: the BBR *fraction* depends only on the
    /// buffer-to-BDP ratio and γ, not on capacity or RTT individually.
    #[test]
    fn two_flow_scale_invariance(
        mbps in 1.0f64..500.0,
        rtt_ms in 1.0f64..200.0,
        buffer_bdp in 1.0f64..100.0,
        scale in 0.1f64..10.0,
    ) {
        let a = solve_with_gamma(&LinkParams::from_paper_units(mbps, rtt_ms, buffer_bdp), 0.7).unwrap();
        let b = solve_with_gamma(
            &LinkParams::from_paper_units(mbps * scale, rtt_ms, buffer_bdp), 0.7).unwrap();
        let fa = a.bbr_bandwidth / LinkParams::from_paper_units(mbps, rtt_ms, buffer_bdp).capacity;
        let fb = b.bbr_bandwidth
            / LinkParams::from_paper_units(mbps * scale, rtt_ms, buffer_bdp).capacity;
        prop_assert!((fa - fb).abs() < 1e-9, "fraction {fa} vs {fb}");
    }

    /// BBR's model share decreases (weakly) with buffer depth.
    #[test]
    fn bbr_share_monotone_in_buffer(
        mbps in 5.0f64..200.0,
        rtt_ms in 5.0f64..100.0,
        b1 in 1.0f64..100.0,
        delta in 0.1f64..50.0,
    ) {
        let shallow = solve_with_gamma(
            &LinkParams::from_paper_units(mbps, rtt_ms, b1), 0.7).unwrap();
        let deep = solve_with_gamma(
            &LinkParams::from_paper_units(mbps, rtt_ms, b1 + delta), 0.7).unwrap();
        prop_assert!(deep.bbr_bandwidth <= shallow.bbr_bandwidth + 1e-6);
    }

    /// The multi-flow predicted region is a valid interval: the de-sync
    /// bound gives BBR at least as much as the sync bound.
    #[test]
    fn region_ordering(
        buffer_bdp in 1.0f64..60.0,
        n_cubic in 1u32..30,
        n_bbr in 1u32..30,
    ) {
        let m = MultiFlowModel::from_paper_units(100.0, 40.0, buffer_bdp, n_cubic, n_bbr);
        let (sync, desync) = m.predicted_region().unwrap();
        prop_assert!(desync.bbr_per_flow >= sync.bbr_per_flow - 1e-9);
        prop_assert!(sync.bbr_per_flow >= 0.0);
    }

    /// The Nash predictor always returns a distribution inside [0, N],
    /// with the sync bound retaining at least as many CUBIC flows.
    #[test]
    fn nash_prediction_in_range(
        buffer_bdp in 1.0f64..80.0,
        n in 2u32..100,
    ) {
        let p = NashPredictor::from_paper_units(100.0, 40.0, buffer_bdp, n);
        let (sync, desync) = p.predict_region().unwrap();
        for ne in [&sync, &desync] {
            prop_assert!(ne.n_cubic >= -1e-9 && ne.n_cubic <= n as f64 + 1e-9);
            prop_assert!((ne.n_cubic + ne.n_bbr - n as f64).abs() < 1e-6);
        }
        prop_assert!(sync.n_cubic >= desync.n_cubic - 1e-6);
    }

    /// Every finite symmetric two-strategy game has a pure NE (the
    /// single-crossing walk argument), and best-response dynamics always
    /// converge to one — never cycle.
    #[test]
    fn symmetric_game_always_has_pure_ne(
        n in 2u32..30,
        seed_curve in prop::collection::vec((0.0f64..100.0, 0.0f64..100.0), 31),
    ) {
        let bbr: Vec<f64> = (0..=n as usize).map(|k| seed_curve[k].0).collect();
        let cubic: Vec<f64> = (0..=n as usize).map(|k| seed_curve[k].1).collect();
        let game = SymmetricGame::new(n, bbr, cubic);
        let ne = game.nash_equilibria();
        prop_assert!(!ne.is_empty(), "finite symmetric game must have a pure NE");
        // Dynamics: from every start, convergence (no cycles possible —
        // an up-move at k and a later down-move from k+1 would need
        // f(k+1) > ε and f(k+1) < −ε simultaneously).
        for start in [0, n / 2, n] {
            let trace = best_response_dynamics(&game, start, (n as usize + 1) * (n as usize + 1));
            prop_assert_eq!(trace.outcome, BestResponseOutcome::Converged);
            prop_assert!(game.is_nash(trace.final_state()));
        }
    }

    /// Nash region is (weakly) monotone: deeper buffers keep at least as
    /// many CUBIC flows at the sync-bound equilibrium.
    #[test]
    fn nash_region_monotone_in_buffer(
        b1 in 1.0f64..40.0,
        delta in 0.5f64..40.0,
        n in 5u32..60,
    ) {
        let shallow = NashPredictor::from_paper_units(50.0, 40.0, b1, n)
            .predict(SyncMode::Synchronized).unwrap();
        let deep = NashPredictor::from_paper_units(50.0, 40.0, b1 + delta, n)
            .predict(SyncMode::Synchronized).unwrap();
        prop_assert!(deep.n_cubic >= shallow.n_cubic - 1e-6,
            "shallow {} deep {}", shallow.n_cubic, deep.n_cubic);
    }
}
