//! The Ware et al. model (IMC '19) — the prior state of the art the paper
//! compares against (its Eqs. (2)–(4)).
//!
//! The model predicts the *aggregate* BBR fraction of the bottleneck as
//!
//! ```text
//! BBR_frac  = (1 − p) · (d − Probe_time)/d                    (Eq. 2)
//! p         = 1/2 − 1/(2X) − 4N/q                             (Eq. 3)
//! Probe_time = (q/c + 0.2 + l) · (d/10)                        (Eq. 4)
//! ```
//!
//! where `p` is CUBIC's aggregate fraction, `X` the buffer in BDP, `N`
//! the number of BBR flows, `q` the buffer size (packets in Eq. 3, bytes
//! over `c` in Eq. 4), `l` the base RTT, and `d` the experiment duration.
//!
//! The paper (§2.2) identifies the assumptions that make this model
//! inaccurate in shallow-to-moderate buffers — the buffer is assumed
//! always full, and BBR's RTT inflation is driven by CUBIC's *average*
//! (in effect, maximum) occupancy rather than its minimum. We reproduce
//! the model faithfully, inaccuracies included, as the baseline curve in
//! Figs. 1, 3 and 4.

use super::{LinkParams, ModelError};

/// Packet size used to express the buffer in packets for Eq. (3).
const PACKET_BYTES: f64 = 1500.0;

/// The Ware et al. baseline model.
#[derive(Debug, Clone, Copy)]
pub struct WareModel {
    pub link: LinkParams,
    /// Number of competing BBR flows (`N`).
    pub n_bbr: u32,
    /// Flow duration `d`, seconds (the paper's experiments use 120 s).
    pub duration: f64,
}

/// Prediction from the Ware model.
#[derive(Debug, Clone, Copy)]
pub struct WarePrediction {
    /// Aggregate BBR throughput, bytes/s.
    pub bbr_aggregate: f64,
    /// Aggregate CUBIC throughput, bytes/s.
    pub cubic_aggregate: f64,
    /// The raw `p` of Eq. (3) before clamping.
    pub cubic_fraction_raw: f64,
}

impl WareModel {
    pub fn new(link: LinkParams, n_bbr: u32, duration: f64) -> Self {
        WareModel {
            link,
            n_bbr,
            duration,
        }
    }

    /// Evaluate Eqs. (2)–(4).
    pub fn predict(&self) -> Result<WarePrediction, ModelError> {
        self.link.validate()?;
        if self.n_bbr == 0 {
            return Err(ModelError::InvalidParameter("need at least one BBR flow"));
        }
        if !(self.duration.is_finite() && self.duration > 0.0) {
            return Err(ModelError::InvalidParameter("duration must be positive"));
        }
        let x = self.link.buffer_bdp();
        let q_packets = self.link.buffer / PACKET_BYTES;
        // Eq. (3)
        let p_raw = 0.5 - 1.0 / (2.0 * x) - 4.0 * self.n_bbr as f64 / q_packets;
        let p = p_raw.clamp(0.0, 1.0);
        // Eq. (4): q/c is the buffer drain time; 0.2 s is ProbeRTT;
        // l is the base RTT; one ProbeRTT every 10 s.
        let probe_time =
            (self.link.buffer / self.link.capacity + 0.2 + self.link.rtt) * (self.duration / 10.0);
        let active_fraction = ((self.duration - probe_time) / self.duration).clamp(0.0, 1.0);
        // Eq. (2)
        let bbr_frac = ((1.0 - p) * active_fraction).clamp(0.0, 1.0);
        Ok(WarePrediction {
            bbr_aggregate: bbr_frac * self.link.capacity,
            cubic_aggregate: (1.0 - bbr_frac) * self.link.capacity,
            cubic_fraction_raw: p_raw,
        })
    }
}

impl WarePrediction {
    /// Aggregate BBR throughput in Mbps (the paper's plotting unit).
    pub fn bbr_mbps(&self) -> f64 {
        self.bbr_aggregate * 8.0 / 1e6
    }

    pub fn cubic_mbps(&self) -> f64 {
        self.cubic_aggregate * 8.0 / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(buffer_bdp: f64) -> WareModel {
        WareModel::new(
            LinkParams::from_paper_units(50.0, 40.0, buffer_bdp),
            1,
            120.0,
        )
    }

    #[test]
    fn predicts_roughly_half_link_in_moderate_buffers() {
        // Ware's signature result: BBR pins ~(1-p) ≈ half the link,
        // regardless of the competition, less ProbeRTT time.
        let pred = model(10.0).predict().unwrap();
        let mbps = pred.bbr_mbps();
        assert!((20.0..35.0).contains(&mbps), "mbps={mbps}");
    }

    #[test]
    fn prediction_declines_with_deeper_buffers() {
        // Deeper buffer ⇒ longer ProbeRTT drain ⇒ smaller active fraction.
        let shallow = model(5.0).predict().unwrap().bbr_mbps();
        let deep = model(50.0).predict().unwrap().bbr_mbps();
        assert!(deep < shallow, "shallow={shallow} deep={deep}");
    }

    #[test]
    fn fractions_always_physical() {
        for bdp in [1.0, 2.0, 5.0, 10.0, 30.0, 100.0, 250.0] {
            let pred = model(bdp).predict().unwrap();
            assert!(pred.bbr_aggregate >= 0.0);
            assert!(pred.bbr_aggregate <= model(bdp).link.capacity * 1.0 + 1e-9);
        }
    }

    #[test]
    fn matches_hand_computation_at_10_bdp() {
        // 50 Mbps, 40 ms: BDP = 250 kB; B = 2.5 MB = 1666.7 pkts.
        // p = 0.5 − 0.05 − 4/1666.67 = 0.4476
        // Probe_time = (0.4 + 0.2 + 0.04)·12 = 7.68 s
        // frac = 0.5524 · (112.32/120) = 0.51705 → 25.85 Mbps
        let pred = model(10.0).predict().unwrap();
        assert!(
            (pred.bbr_mbps() - 25.85).abs() < 0.1,
            "got {}",
            pred.bbr_mbps()
        );
    }

    #[test]
    fn rejects_zero_bbr_flows() {
        let m = WareModel::new(LinkParams::from_paper_units(50.0, 40.0, 5.0), 0, 120.0);
        assert!(m.predict().is_err());
    }

    #[test]
    fn insensitive_to_number_of_cubic_flows_by_construction() {
        // The model has no N_cubic input at all — the paper's point (§2.2):
        // it predicts a fixed BBR share regardless of CUBIC competition.
        let a = model(10.0).predict().unwrap().bbr_mbps();
        // (same network, conceptually different #CUBIC) — identical result.
        let b = model(10.0).predict().unwrap().bbr_mbps();
        assert_eq!(a, b);
    }
}
