//! The paper's basic 2-flow model (§2.3, Eqs. (5)–(20)).
//!
//! One CUBIC flow and one BBR flow share a drop-tail bottleneck
//! `(C, B, RTT)`. The derivation chain implemented here:
//!
//! 1. BBR is cwnd-bound at `2 × BtlBw·RTT⁺` (Eq. (7)), where `RTT⁺` is
//!    inflated by CUBIC's *minimum* buffer occupancy `b_cmin` — the
//!    packets CUBIC leaves in the buffer during BBR's ProbeRTT (Eq. (9)).
//! 2. Combining (7) and (9): `b_b + b_c = 2·b_cmin + C·RTT` (Eq. (10));
//!    approximating the average occupancy by the full buffer
//!    (`b_b + b_c ≈ B`) gives `b_cmin = (B − C·RTT)/2`.
//! 3. `b_cmin` must also be consistent with CUBIC's back-off dynamics:
//!    CUBIC backs off to `0.7·W_max` (Eqs. (12)–(17)), producing one
//!    equation in the single unknown `b_b` (Eq. (18)):
//!
//!    ```text
//!    s + s/(s + b_b)·C·RTT = γ·(B − b_b + (B − b_b)/B·C·RTT),
//!        s = (B − C·RTT)/2,   γ = 0.7 for a single CUBIC flow
//!    ```
//!
//! 4. Eq. (18) is a quadratic in `b_b` — solved in closed form (and
//!    cross-checked by bisection in the tests). Eqs. (19)–(20) then give
//!    the bandwidth split.
//!
//! The γ parameter is exposed because the multi-flow model (§2.4) reuses
//! the identical equation with γ = (N_c − 0.3)/N_c for de-synchronized
//! CUBIC aggregates.
//!
//! **Validity domain** (§2.3 assumptions, §5 discussion): `B ≥ 1 BDP`
//! (below that the link is not kept full and BBR is not cwnd-bound) and
//! buffers ≲ 100 BDP (beyond that BBR stops being cwnd-limited and the
//! model over-estimates BBR — reproduced in Fig. 12).

use super::{LinkParams, ModelError};

/// CUBIC's multiplicative back-off factor (backs off *to* 0.7).
pub const CUBIC_BETA: f64 = 0.7;

/// The 2-flow CUBIC-vs-BBR model.
#[derive(Debug, Clone, Copy)]
pub struct TwoFlowModel {
    pub link: LinkParams,
}

/// Solution of the model.
#[derive(Debug, Clone, Copy)]
pub struct TwoFlowPrediction {
    /// BBR's bandwidth `λ_b`, bytes/s.
    pub bbr_bandwidth: f64,
    /// CUBIC's bandwidth `λ_c`, bytes/s.
    pub cubic_bandwidth: f64,
    /// BBR's average buffer occupancy `b_b`, bytes.
    pub bbr_buffer: f64,
    /// CUBIC's minimum buffer occupancy `b_cmin`, bytes.
    pub cubic_min_buffer: f64,
}

impl TwoFlowPrediction {
    pub fn bbr_mbps(&self) -> f64 {
        self.bbr_bandwidth * 8.0 / 1e6
    }

    pub fn cubic_mbps(&self) -> f64 {
        self.cubic_bandwidth * 8.0 / 1e6
    }

    /// BBR's fraction of the link capacity.
    pub fn bbr_fraction(&self, link: &LinkParams) -> f64 {
        self.bbr_bandwidth / link.capacity
    }
}

impl TwoFlowModel {
    pub fn new(link: LinkParams) -> Self {
        TwoFlowModel { link }
    }

    /// Construct from the paper's units: Mbps, milliseconds, buffer in
    /// BDP multiples.
    pub fn from_paper_units(mbps: f64, rtt_ms: f64, buffer_bdp: f64) -> Self {
        TwoFlowModel {
            link: LinkParams::from_paper_units(mbps, rtt_ms, buffer_bdp),
        }
    }

    /// Solve the model with γ = 0.7 (single CUBIC flow).
    pub fn solve(&self) -> Result<TwoFlowPrediction, ModelError> {
        solve_with_gamma(&self.link, CUBIC_BETA)
    }
}

/// Solve Eq. (18) generalized to an arbitrary back-off factor γ, then
/// apply Eqs. (19)–(20). Shared by the 2-flow and multi-flow models.
pub fn solve_with_gamma(link: &LinkParams, gamma: f64) -> Result<TwoFlowPrediction, ModelError> {
    solve_with_gamma_and_gain(link, gamma, 2.0)
}

/// The model with a parameterized BBR in-flight gain `g` (the paper
/// assumes `g = 2`, i.e. 2×BDP⁺ in flight; its §5 notes the true value
/// drifts between 1 and 2 because each ProbeBW phase restarts near
/// 1 BDP — this generalization is that suggested refinement).
///
/// Re-deriving Eqs. (7)–(10) with `cwnd = g·BtlBw·RTT⁺`:
///
/// ```text
/// RTT + Q_d = g·(RTT + b_cmin/C)
/// b_b + b_c = (g−1)·C·RTT + g·b_cmin          (generalized Eq. (10))
/// b_cmin    = (B − (g−1)·C·RTT)/g             (full-buffer approx.)
/// λ̂_c·((g−1)·RTT + g·b_cmin/C) = (g−1)·C·RTT + g·b_cmin − b_b
/// ```
///
/// which reduces to the paper's Eqs. (18)–(19) at `g = 2`. The CUBIC
/// side (Eq. (17)) is unchanged.
pub fn solve_with_gamma_and_gain(
    link: &LinkParams,
    gamma: f64,
    gain: f64,
) -> Result<TwoFlowPrediction, ModelError> {
    link.validate()?;
    if !(0.0 < gamma && gamma < 1.0) {
        return Err(ModelError::InvalidParameter("gamma must be in (0, 1)"));
    }
    if !(gain > 1.0 && gain.is_finite()) {
        return Err(ModelError::InvalidParameter(
            "cwnd gain must exceed 1 (BBR must overshoot its BDP)",
        ));
    }
    let c = link.capacity;
    let rtt = link.rtt;
    let b = link.buffer;
    let d = c * rtt; // BDP, bytes

    if b < (gain - 1.0) * d {
        // The in-flight overshoot alone exceeds the buffer: the model's
        // "link always full, BBR cwnd-bound" regime does not apply.
        return Err(ModelError::BufferTooShallow);
    }

    // Generalized Eq. (10) with the full-buffer approximation.
    let s = (b - (gain - 1.0) * d) / gain;

    // Degenerate edge: s = 0 ⇒ CUBIC keeps nothing in the buffer at
    // back-off; take the limit numerically with a tiny s instead of
    // special-casing the algebra.
    let bb = match if s <= f64::EPSILON {
        solve_quadratic(1.0, b, d, gamma)
    } else {
        solve_quadratic(s, b, d, gamma)
    } {
        Ok(root) => root,
        // No positive root means the consistency equation is infeasible
        // with any BBR buffer share — CUBIC's back-off floor already
        // fills the buffer (small gains / deep buffers). The physical
        // boundary solution is b_b = 0: BBR keeps no packets queued.
        Err(ModelError::NoSolution) => 0.0,
        Err(e) => return Err(e),
    };

    let s_eff = s.max(0.0);
    // Generalized Eq. (19).
    let lambda_c = (((gain - 1.0) * d + gain * s_eff - bb)
        / ((gain - 1.0) * rtt + gain * s_eff / c))
        .clamp(0.0, c);
    let lambda_b = c - lambda_c; // Eq. (20)

    Ok(TwoFlowPrediction {
        bbr_bandwidth: lambda_b,
        cubic_bandwidth: lambda_c,
        bbr_buffer: bb,
        cubic_min_buffer: s_eff,
    })
}

/// Closed-form root of the Eq.-(18) quadratic
/// `k·b² + (s(1+k) − kB)·b + (s² + sD − kBs) = 0`, `k = γ(1 + D/B)`,
/// picking the root in `[0, B]`.
fn solve_quadratic(s: f64, b: f64, d: f64, gamma: f64) -> Result<f64, ModelError> {
    let k = gamma * (1.0 + d / b);
    let a2 = k;
    let a1 = s * (1.0 + k) - k * b;
    let a0 = s * s + s * d - k * b * s;
    let disc = a1 * a1 - 4.0 * a2 * a0;
    if disc < 0.0 {
        return Err(ModelError::NoSolution);
    }
    let sqrt_disc = disc.sqrt();
    let r1 = (-a1 + sqrt_disc) / (2.0 * a2);
    let r2 = (-a1 - sqrt_disc) / (2.0 * a2);
    // Prefer the root inside (0, B]; Eq. (18)'s physical branch is the
    // larger root for all tested parameterizations, but select robustly.
    let mut best: Option<f64> = None;
    for r in [r1, r2] {
        if r.is_finite() && r > 0.0 && r <= b + 1e-9 {
            best = Some(match best {
                None => r,
                Some(prev) => prev.max(r),
            });
        }
    }
    best.ok_or(ModelError::NoSolution)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(mbps: f64, rtt_ms: f64, buffer_bdp: f64) -> LinkParams {
        LinkParams::from_paper_units(mbps, rtt_ms, buffer_bdp)
    }

    /// Residual of Eq. (18) for verification.
    fn eq18_residual(link: &LinkParams, gamma: f64, bb: f64) -> f64 {
        let d = link.bdp();
        let b = link.buffer;
        let s = (b - d) / 2.0;
        let lhs = s + s / (s + bb) * d;
        let rhs = gamma * (b - bb + (b - bb) / b * d);
        lhs - rhs
    }

    #[test]
    fn closed_form_satisfies_eq18() {
        for bdp in [1.5, 2.0, 3.0, 5.0, 10.0, 20.0, 30.0, 50.0] {
            let l = link(50.0, 40.0, bdp);
            let pred = solve_with_gamma(&l, 0.7).unwrap();
            let resid = eq18_residual(&l, 0.7, pred.bbr_buffer);
            assert!(
                resid.abs() < 1e-3 * l.buffer,
                "residual {resid} at {bdp} BDP"
            );
        }
    }

    #[test]
    fn closed_form_matches_bisection() {
        for bdp in [1.2, 2.0, 4.0, 8.0, 16.0, 32.0] {
            let l = link(100.0, 80.0, bdp);
            let pred = solve_with_gamma(&l, 0.7).unwrap();
            // Bisection on the residual.
            let (mut lo, mut hi) = (1.0, l.buffer);
            let f_lo = eq18_residual(&l, 0.7, lo);
            for _ in 0..200 {
                let mid = 0.5 * (lo + hi);
                let f_mid = eq18_residual(&l, 0.7, mid);
                if (f_mid > 0.0) == (f_lo > 0.0) {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            let bisected = 0.5 * (lo + hi);
            assert!(
                (pred.bbr_buffer - bisected).abs() < 1e-3 * l.buffer,
                "closed={} bisect={} at {bdp} BDP",
                pred.bbr_buffer,
                bisected
            );
        }
    }

    #[test]
    fn hand_computed_case_5bdp() {
        // From the derivation: 5 BDP buffer → b_b ≈ 2.028·BDP,
        // λ_c ≈ 0.594·C, λ_b ≈ 0.406·C.
        let l = link(50.0, 40.0, 5.0);
        let pred = solve_with_gamma(&l, 0.7).unwrap();
        assert!(
            (pred.bbr_buffer / l.bdp() - 2.028).abs() < 0.01,
            "b_b={} BDP",
            pred.bbr_buffer / l.bdp()
        );
        assert!((pred.bbr_fraction(&l) - 0.406).abs() < 0.01);
    }

    #[test]
    fn bbr_share_decreases_with_buffer_depth() {
        // The headline shape of Fig. 3.
        let mut prev = f64::INFINITY;
        for bdp in [1.5, 2.0, 3.0, 5.0, 8.0, 12.0, 20.0, 30.0] {
            let pred = solve_with_gamma(&link(50.0, 40.0, bdp), 0.7).unwrap();
            assert!(
                pred.bbr_bandwidth < prev,
                "share should fall monotonically (at {bdp} BDP)"
            );
            prev = pred.bbr_bandwidth;
        }
    }

    #[test]
    fn prediction_is_scale_invariant_in_bdp() {
        // §4.4 observation: normalized by BDP, predictions depend only on
        // the buffer-to-BDP ratio, not on C or RTT individually.
        let a = solve_with_gamma(&link(50.0, 40.0, 8.0), 0.7).unwrap();
        let b = solve_with_gamma(&link(100.0, 80.0, 8.0), 0.7).unwrap();
        let c = solve_with_gamma(&link(25.0, 20.0, 8.0), 0.7).unwrap();
        let fa = a.bbr_bandwidth / link(50.0, 40.0, 8.0).capacity;
        let fb = b.bbr_bandwidth / link(100.0, 80.0, 8.0).capacity;
        let fc = c.bbr_bandwidth / link(25.0, 20.0, 8.0).capacity;
        assert!((fa - fb).abs() < 1e-9);
        assert!((fa - fc).abs() < 1e-9);
    }

    #[test]
    fn shallow_buffer_rejected() {
        assert_eq!(
            solve_with_gamma(&link(50.0, 40.0, 0.5), 0.7).unwrap_err(),
            ModelError::BufferTooShallow
        );
    }

    #[test]
    fn bandwidths_are_physical_and_sum_to_capacity() {
        for bdp in [1.0, 1.5, 3.0, 10.0, 50.0, 100.0, 250.0] {
            let l = link(100.0, 40.0, bdp);
            let pred = solve_with_gamma(&l, 0.7).unwrap();
            assert!(pred.bbr_bandwidth >= 0.0);
            assert!(pred.cubic_bandwidth >= 0.0);
            assert!(
                (pred.bbr_bandwidth + pred.cubic_bandwidth - l.capacity).abs() < 1e-6 * l.capacity
            );
            assert!(pred.bbr_buffer >= 0.0 && pred.bbr_buffer <= l.buffer + 1e-6);
        }
    }

    #[test]
    fn gamma_closer_to_one_gives_bbr_more() {
        // Higher γ (de-synchronized CUBIC, shallower aggregate back-off)
        // means the buffer stays full through BBR's ProbeRTT: BBR's
        // min-RTT estimate is more inflated, its 2×BDP⁺ cap larger, and
        // Eq. (18)'s consistent solution assigns BBR a larger buffer
        // share — so BBR gains, CUBIC loses.
        let l = link(100.0, 40.0, 10.0);
        let sync = solve_with_gamma(&l, 0.7).unwrap();
        let desync = solve_with_gamma(&l, 0.97).unwrap();
        assert!(
            desync.bbr_bandwidth > sync.bbr_bandwidth,
            "desync should favour BBR: sync_bbr={} desync_bbr={}",
            sync.bbr_bandwidth,
            desync.bbr_bandwidth
        );
        assert!(desync.bbr_buffer > sync.bbr_buffer);
    }

    #[test]
    fn invalid_gamma_rejected() {
        let l = link(100.0, 40.0, 10.0);
        assert!(solve_with_gamma(&l, 0.0).is_err());
        assert!(solve_with_gamma(&l, 1.0).is_err());
        assert!(solve_with_gamma(&l, -0.5).is_err());
    }

    #[test]
    fn gain_two_reproduces_the_paper_model() {
        for bdp in [1.5, 3.0, 8.0, 30.0] {
            let l = link(50.0, 40.0, bdp);
            let paper = solve_with_gamma(&l, 0.7).unwrap();
            let gen = solve_with_gamma_and_gain(&l, 0.7, 2.0).unwrap();
            assert!((paper.bbr_bandwidth - gen.bbr_bandwidth).abs() < 1e-9);
            assert!((paper.bbr_buffer - gen.bbr_buffer).abs() < 1e-9);
        }
    }

    #[test]
    fn smaller_gain_gives_bbr_less() {
        // §5: the true in-flight drifts between 1 and 2 BDP; a smaller
        // effective gain means less in flight and a smaller BBR share.
        let l = link(50.0, 40.0, 10.0);
        let g20 = solve_with_gamma_and_gain(&l, 0.7, 2.0).unwrap();
        let g15 = solve_with_gamma_and_gain(&l, 0.7, 1.5).unwrap();
        let g12 = solve_with_gamma_and_gain(&l, 0.7, 1.2).unwrap();
        assert!(g15.bbr_bandwidth < g20.bbr_bandwidth);
        assert!(g12.bbr_bandwidth < g15.bbr_bandwidth);
    }

    #[test]
    fn invalid_gain_rejected() {
        let l = link(50.0, 40.0, 10.0);
        assert!(solve_with_gamma_and_gain(&l, 0.7, 1.0).is_err());
        assert!(solve_with_gamma_and_gain(&l, 0.7, 0.5).is_err());
        assert!(solve_with_gamma_and_gain(&l, 0.7, f64::INFINITY).is_err());
    }

    #[test]
    fn constructor_from_paper_units_equals_manual() {
        let m = TwoFlowModel::from_paper_units(50.0, 40.0, 8.0);
        let l = link(50.0, 40.0, 8.0);
        assert!((m.link.capacity - l.capacity).abs() < 1e-6);
        assert!((m.link.buffer - l.buffer).abs() < 1e-3);
        let a = m.solve().unwrap();
        let b = solve_with_gamma(&l, 0.7).unwrap();
        assert!((a.bbr_bandwidth - b.bbr_bandwidth).abs() < 1e-6);
    }
}
