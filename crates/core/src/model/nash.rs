//! Nash-equilibrium prediction (§4.1, Eq. (25)).
//!
//! For `N` same-RTT flows, a distribution with `N_b` BBR flows is the
//! Nash Equilibrium when BBR's per-flow bandwidth equals the fair share:
//!
//! ```text
//! λ̂_b / N_b  =  C / N                                        (Eq. 25)
//! ```
//!
//! Below the crossing (fewer BBR flows) BBR is above fair share, so some
//! CUBIC flow gains by switching to BBR; above it the reverse holds —
//! the crossing is stable (the paper's point C in Fig. 6).
//!
//! Each CUBIC-synchronization bound of the multi-flow model yields its
//! own crossing; together they delimit the "Nash region" plotted in
//! Fig. 9. A key property (asserted in the tests, observed in §4.4):
//! expressed in BDP-normalized buffer units, the region depends on
//! *neither* `C` nor `RTT` individually — only on `B/BDP`.

use super::multi_flow::{MultiFlowModel, SyncMode};
use super::two_flow::{solve_with_gamma, CUBIC_BETA};
use super::{LinkParams, ModelError};

/// Predicts the Nash-equilibrium distribution for `n_total` same-RTT flows.
#[derive(Debug, Clone, Copy)]
pub struct NashPredictor {
    pub link: LinkParams,
    pub n_total: u32,
}

/// The predicted equilibrium for one synchronization bound.
#[derive(Debug, Clone, Copy)]
pub struct NashPrediction {
    pub mode: SyncMode,
    /// Continuous solution of Eq. (25): number of BBR flows at the NE.
    pub n_bbr: f64,
    /// Continuous number of CUBIC flows at the NE (`N − n_bbr`).
    pub n_cubic: f64,
}

impl NashPrediction {
    /// Integer distributions adjacent to the continuous crossing —
    /// the NE candidates an empirical search should find.
    ///
    /// A non-finite crossing (which a hand-built prediction can carry)
    /// yields no candidates rather than a silent `NaN as u32 == 0`.
    pub fn integer_candidates(&self, n_total: u32) -> Vec<u32> {
        if !self.n_cubic.is_finite() {
            return Vec::new();
        }
        let lo = self.n_cubic.floor().clamp(0.0, n_total as f64) as u32;
        let hi = self.n_cubic.ceil().clamp(0.0, n_total as f64) as u32;
        if lo == hi {
            vec![lo]
        } else {
            vec![lo, hi]
        }
    }
}

/// The Nash region across a buffer sweep: for each buffer size, the
/// number of CUBIC flows at the NE under each bound (Fig. 9's shaded
/// region boundaries).
#[derive(Debug, Clone)]
pub struct NashRegion {
    /// `(buffer_bdp, #CUBIC at NE [sync bound], #CUBIC at NE [de-sync bound])`.
    pub points: Vec<(f64, f64, f64)>,
    pub n_total: u32,
}

impl NashPredictor {
    pub fn new(link: LinkParams, n_total: u32) -> Self {
        NashPredictor { link, n_total }
    }

    pub fn from_paper_units(mbps: f64, rtt_ms: f64, buffer_bdp: f64, n_total: u32) -> Self {
        NashPredictor::new(
            LinkParams::from_paper_units(mbps, rtt_ms, buffer_bdp),
            n_total,
        )
    }

    /// BBR per-flow bandwidth (bytes/s) at a (possibly fractional)
    /// distribution with `n_bbr` BBR flows, under `mode`.
    ///
    /// Uses the continuous extension of the aggregate back-off factor
    /// (γ(N_c) = (N_c − 0.3)/N_c with real-valued `N_c`), which the
    /// integer model interpolates.
    pub fn bbr_per_flow(&self, n_bbr: f64, mode: SyncMode) -> Result<f64, ModelError> {
        self.link.validate()?;
        let n = self.n_total as f64;
        if !(0.0 < n_bbr && n_bbr <= n) {
            return Err(ModelError::InvalidParameter("n_bbr out of range"));
        }
        let n_cubic = n - n_bbr;
        if n_cubic < 1e-9 {
            return Ok(self.link.capacity / n);
        }
        let gamma = match mode {
            SyncMode::Synchronized => CUBIC_BETA,
            // Continuous extension: below one CUBIC flow the de-sync
            // formula degenerates (a single flow is trivially
            // "synchronized with itself"), so clamp N_c to 1 — which
            // makes γ = 0.7 there, matching the synchronized bound.
            SyncMode::DeSynchronized => {
                let nc = n_cubic.max(1.0);
                (nc - (1.0 - CUBIC_BETA)) / nc
            }
        };
        let pred = solve_with_gamma(&self.link, gamma)?;
        let per_flow = pred.bbr_bandwidth / n_bbr;
        if !per_flow.is_finite() {
            return Err(ModelError::NoSolution);
        }
        Ok(per_flow)
    }

    /// Solve Eq. (25) for one bound: the `n_bbr` where BBR's per-flow
    /// bandwidth crosses the fair share `C/N`.
    pub fn predict(&self, mode: SyncMode) -> Result<NashPrediction, ModelError> {
        self.link.validate()?;
        if self.n_total < 2 {
            return Err(ModelError::InvalidParameter("need at least two flows"));
        }
        let n = self.n_total as f64;
        let fair = self.link.capacity / n;
        let f = |nb: f64| -> Result<f64, ModelError> { Ok(self.bbr_per_flow(nb, mode)? - fair) };
        // At n_bbr = N the curve touches fair share exactly; the interior
        // crossing (if any) is where f changes sign. Scan coarsely, then
        // bisect.
        let steps = 512usize;
        let lo0 = 1e-3;
        let mut prev_x = lo0;
        let mut prev_f = f(prev_x)?;
        if prev_f <= 0.0 {
            // Even a vanishing BBR presence is below fair share: the NE
            // is "no BBR flows" (possible in ultra-deep buffers).
            return Ok(NashPrediction {
                mode,
                n_bbr: 0.0,
                n_cubic: n,
            });
        }
        for i in 1..=steps {
            let x = lo0 + (n - lo0) * i as f64 / steps as f64;
            let fx = f(x)?;
            if fx <= 0.0 {
                // Bisect in [prev_x, x].
                let (mut a, mut b) = (prev_x, x);
                for _ in 0..100 {
                    let m = 0.5 * (a + b);
                    if f(m)? > 0.0 {
                        a = m;
                    } else {
                        b = m;
                    }
                }
                let nb = 0.5 * (a + b);
                return Ok(NashPrediction {
                    mode,
                    n_bbr: nb,
                    n_cubic: n - nb,
                });
            }
            prev_x = x;
            prev_f = fx;
        }
        let _ = prev_f;
        // Above fair share everywhere: all flows switch to BBR (Case 1).
        Ok(NashPrediction {
            mode,
            n_bbr: n,
            n_cubic: 0.0,
        })
    }

    /// Both bounds at once — the edges of the Nash region at this buffer.
    pub fn predict_region(&self) -> Result<(NashPrediction, NashPrediction), ModelError> {
        Ok((
            self.predict(SyncMode::Synchronized)?,
            self.predict(SyncMode::DeSynchronized)?,
        ))
    }

    /// Inclusive integer bracket `[lo, hi]` (in BBR-flow counts) that
    /// covers every integer NE candidate Eq. (25) admits under either
    /// synchronization bound — the seed bracket a model-guided empirical
    /// NE search refines with simulations.
    pub fn ne_band(&self) -> Result<(u32, u32), ModelError> {
        let (sync, desync) = self.predict_region()?;
        let mut lo = u32::MAX;
        let mut hi = 0u32;
        for p in [sync, desync] {
            for n_cubic in p.integer_candidates(self.n_total) {
                let k = self.n_total - n_cubic;
                lo = lo.min(k);
                hi = hi.max(k);
            }
        }
        if lo > hi {
            // Both predictions carried non-finite crossings.
            return Err(ModelError::NoSolution);
        }
        Ok((lo, hi))
    }

    /// The full per-distribution curve (Fig. 6): BBR per-flow bandwidth
    /// for every integer `N_b ∈ [1, N]`, plus the fair-share line.
    pub fn distribution_curve(&self, mode: SyncMode) -> Result<Vec<(u32, f64)>, ModelError> {
        let mut out = Vec::with_capacity(self.n_total as usize);
        for nb in 1..=self.n_total {
            let m = MultiFlowModel::new(self.link, self.n_total - nb, nb);
            let p = m.solve(mode)?;
            out.push((nb, p.bbr_per_flow));
        }
        Ok(out)
    }

    /// Fair-share bandwidth `C/N`, bytes/s.
    pub fn fair_share(&self) -> f64 {
        self.link.capacity / self.n_total as f64
    }
}

/// Sweep buffer sizes and compute the Nash region (Fig. 9's predicted
/// band) for a fixed flow count.
pub fn nash_region_over_buffers(
    mbps: f64,
    rtt_ms: f64,
    buffer_bdps: &[f64],
    n_total: u32,
) -> Result<NashRegion, ModelError> {
    let mut points = Vec::with_capacity(buffer_bdps.len());
    for &bdp in buffer_bdps {
        let p = NashPredictor::from_paper_units(mbps, rtt_ms, bdp, n_total);
        let (sync, desync) = p.predict_region()?;
        points.push((bdp, sync.n_cubic, desync.n_cubic));
    }
    Ok(NashRegion { points, n_total })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn predictor(buffer_bdp: f64, n: u32) -> NashPredictor {
        NashPredictor::from_paper_units(100.0, 40.0, buffer_bdp, n)
    }

    #[test]
    fn ne_is_interior_for_moderate_buffers() {
        let p = predictor(10.0, 50);
        let (sync, desync) = p.predict_region().unwrap();
        for ne in [sync, desync] {
            assert!(
                ne.n_cubic > 0.0 && ne.n_cubic < 50.0,
                "NE should be a mixed distribution, got n_cubic={}",
                ne.n_cubic
            );
        }
    }

    #[test]
    fn deeper_buffers_mean_more_cubic_at_ne() {
        // Fig. 9's dominant trend.
        let shallow = predictor(2.0, 50).predict(SyncMode::Synchronized).unwrap();
        let deep = predictor(30.0, 50).predict(SyncMode::Synchronized).unwrap();
        assert!(
            deep.n_cubic > shallow.n_cubic,
            "shallow={} deep={}",
            shallow.n_cubic,
            deep.n_cubic
        );
    }

    #[test]
    fn region_depends_only_on_bdp_normalized_buffer() {
        // §4.4: the predicted region is identical across (C, RTT) when the
        // buffer is expressed in BDP.
        for mode in SyncMode::BOTH {
            let a = NashPredictor::from_paper_units(50.0, 20.0, 8.0, 50)
                .predict(mode)
                .unwrap();
            let b = NashPredictor::from_paper_units(100.0, 80.0, 8.0, 50)
                .predict(mode)
                .unwrap();
            assert!(
                (a.n_cubic - b.n_cubic).abs() < 1e-6,
                "mode {:?}: {} vs {}",
                mode,
                a.n_cubic,
                b.n_cubic
            );
        }
    }

    #[test]
    fn crossing_satisfies_eq25() {
        let p = predictor(10.0, 50);
        let ne = p.predict(SyncMode::Synchronized).unwrap();
        let per_flow = p.bbr_per_flow(ne.n_bbr, SyncMode::Synchronized).unwrap();
        let fair = p.fair_share();
        assert!(
            (per_flow - fair).abs() < 1e-6 * fair,
            "per_flow={per_flow} fair={fair}"
        );
    }

    #[test]
    fn distribution_curve_is_decreasing_and_ends_at_fair_share() {
        let p = predictor(3.0, 10);
        let curve = p.distribution_curve(SyncMode::Synchronized).unwrap();
        assert_eq!(curve.len(), 10);
        // Interior states (some CUBIC present): per-flow BBR bandwidth is
        // the fixed aggregate divided by N_b, hence strictly decreasing.
        for w in curve[..curve.len() - 1].windows(2) {
            assert!(
                w[0].1 >= w[1].1 - 1e-9,
                "interior curve must be non-increasing"
            );
        }
        // The all-BBR endpoint is exactly the fair share (point B in
        // Fig. 6). Note the aggregate model is discontinuous here: with
        // one CUBIC flow left, the model still gives the CUBIC
        // *aggregate* its two-aggregate share, so the curve may jump up
        // to fair share at the end — the NE crossing analysis only uses
        // states with at least one CUBIC flow.
        let last = curve.last().unwrap();
        assert!((last.1 - p.fair_share()).abs() < 1e-9);
    }

    #[test]
    fn integer_candidates_bracket_continuous_value() {
        let p = predictor(10.0, 50);
        let ne = p.predict(SyncMode::Synchronized).unwrap();
        let cands = ne.integer_candidates(50);
        assert!(!cands.is_empty() && cands.len() <= 2);
        for c in &cands {
            assert!((*c as f64 - ne.n_cubic).abs() < 1.0 + 1e-9);
        }
    }

    #[test]
    fn region_over_buffers_is_monotone_in_buffer() {
        let region =
            nash_region_over_buffers(100.0, 40.0, &[2.0, 5.0, 10.0, 20.0, 40.0], 50).unwrap();
        for w in region.points.windows(2) {
            assert!(
                w[1].1 >= w[0].1 - 1e-6,
                "sync bound should add CUBIC with depth"
            );
        }
    }

    #[test]
    fn two_flows_minimum() {
        assert!(predictor(5.0, 1).predict(SyncMode::Synchronized).is_err());
        assert!(predictor(5.0, 2).predict(SyncMode::Synchronized).is_ok());
    }

    #[test]
    fn degenerate_links_are_rejected_not_propagated() {
        // NaN, zero, and infinite capacity must all surface as typed
        // errors from every solver entry point — never as NaN results.
        for capacity in [f64::NAN, 0.0, -5.0, f64::INFINITY] {
            let mut p = predictor(10.0, 50);
            p.link.capacity = capacity;
            assert!(
                p.predict(SyncMode::Synchronized).is_err(),
                "capacity={capacity} must be rejected by predict()"
            );
            assert!(
                p.bbr_per_flow(10.0, SyncMode::Synchronized).is_err(),
                "capacity={capacity} must be rejected by bbr_per_flow()"
            );
        }
        let mut p = predictor(10.0, 50);
        p.link.rtt = f64::NAN;
        assert!(p.predict_region().is_err());
    }

    #[test]
    fn nan_buffer_in_region_sweep_is_an_error() {
        // A single degenerate buffer point poisons from_paper_units with
        // a NaN buffer; the sweep must fail loudly, not emit NaN rows.
        let err = nash_region_over_buffers(100.0, 40.0, &[2.0, f64::NAN, 10.0], 50);
        assert!(err.is_err());
        let err = nash_region_over_buffers(100.0, 40.0, &[2.0, 0.0], 50);
        assert!(err.is_err());
    }

    #[test]
    fn integer_candidates_of_non_finite_crossing_are_empty() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let ne = NashPrediction {
                mode: SyncMode::Synchronized,
                n_bbr: 50.0 - bad,
                n_cubic: bad,
            };
            assert!(
                ne.integer_candidates(50).is_empty(),
                "n_cubic={bad} must yield no candidates"
            );
        }
    }

    #[test]
    fn ne_band_brackets_both_bounds_crossings() {
        for bdp in [2.0, 5.0, 10.0, 25.0] {
            let p = predictor(bdp, 50);
            let (lo, hi) = p.ne_band().unwrap();
            assert!(lo <= hi && hi <= 50, "bdp={bdp}: band ({lo}, {hi})");
            let (sync, desync) = p.predict_region().unwrap();
            for ne in [sync, desync] {
                let k_bbr = 50.0 - ne.n_cubic;
                assert!(
                    lo as f64 <= k_bbr + 1.0 + 1e-9 && k_bbr - 1.0 - 1e-9 <= hi as f64,
                    "bdp={bdp}: crossing k_bbr={k_bbr} outside band ({lo}, {hi})"
                );
            }
        }
    }

    #[test]
    fn sync_bound_has_at_least_as_much_cubic_as_desync() {
        // Under the synchronized bound BBR is weakest, so its per-flow
        // curve crosses fair share at a smaller N_b — i.e. the NE keeps
        // MORE CUBIC flows than under the de-synchronized bound.
        for bdp in [2.0, 5.0, 10.0, 25.0] {
            let (sync, desync) = predictor(bdp, 50).predict_region().unwrap();
            assert!(
                sync.n_cubic >= desync.n_cubic - 1e-6,
                "bdp={bdp}: sync={} desync={}",
                sync.n_cubic,
                desync.n_cubic
            );
        }
    }
}
