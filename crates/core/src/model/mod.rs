//! Throughput models for competing CUBIC and BBR flows.
//!
//! All models share [`LinkParams`]: bottleneck capacity `C` (bytes/s),
//! base RTT (s), and buffer size `B` (bytes). The paper normalizes buffer
//! sizes by the bandwidth-delay product (BDP = `C·RTT`); constructors
//! accept BDP multiples directly.

pub mod multi_flow;
pub mod nash;
pub mod two_flow;
pub mod ware;

pub use multi_flow::{MultiFlowModel, MultiFlowPrediction, SyncMode};
pub use nash::{NashPrediction, NashPredictor, NashRegion};
pub use two_flow::{TwoFlowModel, TwoFlowPrediction};
pub use ware::{WareModel, WarePrediction};

use std::fmt;

/// Shared bottleneck parameters (Table 1 of the paper: `C`, `B`, `RTT`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkParams {
    /// Bottleneck capacity, bytes per second.
    pub capacity: f64,
    /// Base (propagation) RTT, seconds.
    pub rtt: f64,
    /// Bottleneck buffer size, bytes.
    pub buffer: f64,
}

impl LinkParams {
    /// Construct from the paper's units: Mbps, milliseconds, and buffer
    /// in BDP multiples.
    pub fn from_paper_units(mbps: f64, rtt_ms: f64, buffer_bdp: f64) -> Self {
        let capacity = mbps * 1e6 / 8.0;
        let rtt = rtt_ms / 1e3;
        LinkParams {
            capacity,
            rtt,
            buffer: capacity * rtt * buffer_bdp,
        }
    }

    /// Bandwidth-delay product, bytes.
    pub fn bdp(&self) -> f64 {
        self.capacity * self.rtt
    }

    /// Buffer size normalized to BDP multiples.
    pub fn buffer_bdp(&self) -> f64 {
        self.buffer / self.bdp()
    }

    /// Validate the basic sanity constraints shared by all models.
    pub fn validate(&self) -> Result<(), ModelError> {
        if !(self.capacity.is_finite() && self.capacity > 0.0) {
            return Err(ModelError::InvalidParameter("capacity must be positive"));
        }
        if !(self.rtt.is_finite() && self.rtt > 0.0) {
            return Err(ModelError::InvalidParameter("rtt must be positive"));
        }
        if !(self.buffer.is_finite() && self.buffer > 0.0) {
            return Err(ModelError::InvalidParameter("buffer must be positive"));
        }
        Ok(())
    }
}

/// Why a model could not produce a prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelError {
    /// A parameter is non-positive or non-finite.
    InvalidParameter(&'static str),
    /// The model's validity domain requires `B ≥ 1 BDP` (assumptions 1–2
    /// of §2.3: link always full and BBR cwnd-bound).
    BufferTooShallow,
    /// The solver found no root in `(0, B)` — outside the model's domain.
    NoSolution,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            ModelError::BufferTooShallow => {
                write!(f, "model requires a buffer of at least 1 BDP")
            }
            ModelError::NoSolution => write!(f, "no physical solution in (0, B)"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_units_conversion() {
        let p = LinkParams::from_paper_units(100.0, 40.0, 3.0);
        assert!((p.capacity - 12.5e6).abs() < 1.0);
        assert!((p.rtt - 0.04).abs() < 1e-12);
        assert!((p.bdp() - 500_000.0).abs() < 1.0);
        assert!((p.buffer - 1_500_000.0).abs() < 1.0);
        assert!((p.buffer_bdp() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn validation_rejects_nonsense() {
        let mut p = LinkParams::from_paper_units(100.0, 40.0, 3.0);
        assert!(p.validate().is_ok());
        p.capacity = -1.0;
        assert!(p.validate().is_err());
        let mut p = LinkParams::from_paper_units(100.0, 40.0, 3.0);
        p.rtt = f64::NAN;
        assert!(p.validate().is_err());
    }
}
