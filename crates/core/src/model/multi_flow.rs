//! The multi-flow model (§2.4, Eqs. (21)–(24)).
//!
//! `N_c` CUBIC flows and `N_b` BBR flows (same base RTT) are modelled as
//! two aggregates. The 2-flow machinery applies unchanged except for the
//! aggregate CUBIC minimum buffer occupancy, which depends on how
//! synchronized the CUBIC back-offs are:
//!
//! * **Synchronized** (Eq. (21)): every CUBIC flow backs off together —
//!   the aggregate behaves like one big CUBIC flow, back-off factor 0.7.
//!   For the same observed post-back-off occupancy this implies a larger
//!   aggregate `Ŵ_max`, i.e. a *stronger* CUBIC aggregate: this bound
//!   gives BBR its **lower** throughput edge.
//! * **De-synchronized** (Eq. (22)): only one of `N_c` flows backs off
//!   at a time — aggregate back-off factor `(N_c − 0.3)/N_c` (→ 1 for
//!   many flows). The buffer never drains far during BBR's ProbeRTT, so
//!   BBR's min-RTT estimate stays inflated, its 2×BDP⁺ cap is larger,
//!   and BBR gets its **upper** throughput edge.
//!
//! Together the two bounds delimit the paper's shaded "predicted region"
//! (Figs. 4, 5, 9). Per-flow averages come from Eqs. (23)–(24).

use super::two_flow::{solve_with_gamma, TwoFlowPrediction, CUBIC_BETA};
use super::{LinkParams, ModelError};

/// Which CUBIC synchronization regime to assume.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyncMode {
    /// All CUBIC flows back off together (Eq. (21)) — aggregate γ = 0.7.
    Synchronized,
    /// One CUBIC flow backs off at a time (Eq. (22)) —
    /// aggregate γ = (N_c − 0.3)/N_c.
    DeSynchronized,
}

impl SyncMode {
    pub const BOTH: [SyncMode; 2] = [SyncMode::Synchronized, SyncMode::DeSynchronized];

    /// The effective aggregate back-off factor γ for `n_cubic` flows.
    pub fn gamma(self, n_cubic: u32) -> f64 {
        match self {
            SyncMode::Synchronized => CUBIC_BETA,
            SyncMode::DeSynchronized => {
                let nc = n_cubic as f64;
                (nc - (1.0 - CUBIC_BETA)) / nc
            }
        }
    }
}

/// The multi-flow CUBIC-vs-BBR model.
#[derive(Debug, Clone, Copy)]
pub struct MultiFlowModel {
    pub link: LinkParams,
    pub n_cubic: u32,
    pub n_bbr: u32,
}

/// Per-flow and aggregate predictions for one synchronization bound.
#[derive(Debug, Clone, Copy)]
pub struct MultiFlowPrediction {
    pub mode: SyncMode,
    /// Aggregate BBR bandwidth `λ̂_b`, bytes/s.
    pub bbr_aggregate: f64,
    /// Aggregate CUBIC bandwidth `λ̂_c`, bytes/s.
    pub cubic_aggregate: f64,
    /// Per-flow averages (Eqs. (23)–(24)), bytes/s.
    pub bbr_per_flow: f64,
    pub cubic_per_flow: f64,
    /// Aggregate BBR buffer occupancy, bytes.
    pub bbr_buffer: f64,
}

impl MultiFlowPrediction {
    pub fn bbr_per_flow_mbps(&self) -> f64 {
        self.bbr_per_flow * 8.0 / 1e6
    }

    pub fn cubic_per_flow_mbps(&self) -> f64 {
        self.cubic_per_flow * 8.0 / 1e6
    }
}

impl MultiFlowModel {
    pub fn new(link: LinkParams, n_cubic: u32, n_bbr: u32) -> Self {
        MultiFlowModel {
            link,
            n_cubic,
            n_bbr,
        }
    }

    pub fn from_paper_units(
        mbps: f64,
        rtt_ms: f64,
        buffer_bdp: f64,
        n_cubic: u32,
        n_bbr: u32,
    ) -> Self {
        MultiFlowModel::new(
            LinkParams::from_paper_units(mbps, rtt_ms, buffer_bdp),
            n_cubic,
            n_bbr,
        )
    }

    /// Total number of flows.
    pub fn n_total(&self) -> u32 {
        self.n_cubic + self.n_bbr
    }

    /// Solve for one synchronization bound.
    pub fn solve(&self, mode: SyncMode) -> Result<MultiFlowPrediction, ModelError> {
        if self.n_bbr == 0 {
            return Err(ModelError::InvalidParameter("need at least one BBR flow"));
        }
        if self.n_cubic == 0 {
            // All-BBR network: the aggregate takes the whole link
            // (the paper's point B in Fig. 6).
            self.link.validate()?;
            return Ok(MultiFlowPrediction {
                mode,
                bbr_aggregate: self.link.capacity,
                cubic_aggregate: 0.0,
                bbr_per_flow: self.link.capacity / self.n_bbr as f64,
                cubic_per_flow: 0.0,
                bbr_buffer: self.link.buffer.min(self.link.bdp()),
            });
        }
        let gamma = mode.gamma(self.n_cubic);
        let two: TwoFlowPrediction = solve_with_gamma(&self.link, gamma)?;
        Ok(MultiFlowPrediction {
            mode,
            bbr_aggregate: two.bbr_bandwidth,
            cubic_aggregate: two.cubic_bandwidth,
            bbr_per_flow: two.bbr_bandwidth / self.n_bbr as f64,
            cubic_per_flow: two.cubic_bandwidth / self.n_cubic as f64,
            bbr_buffer: two.bbr_buffer,
        })
    }

    /// Solve both bounds, returning `(synchronized, de_synchronized)` —
    /// the edges of the paper's predicted region.
    pub fn predicted_region(
        &self,
    ) -> Result<(MultiFlowPrediction, MultiFlowPrediction), ModelError> {
        Ok((
            self.solve(SyncMode::Synchronized)?,
            self.solve(SyncMode::DeSynchronized)?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(buffer_bdp: f64, n_cubic: u32, n_bbr: u32) -> MultiFlowModel {
        MultiFlowModel::from_paper_units(100.0, 40.0, buffer_bdp, n_cubic, n_bbr)
    }

    #[test]
    fn gamma_values_match_paper() {
        assert!((SyncMode::Synchronized.gamma(5) - 0.7).abs() < 1e-12);
        assert!((SyncMode::DeSynchronized.gamma(5) - 4.7 / 5.0).abs() < 1e-12);
        assert!((SyncMode::DeSynchronized.gamma(10) - 9.7 / 10.0).abs() < 1e-12);
        // One CUBIC flow de-synchronized with itself = synchronized.
        assert!((SyncMode::DeSynchronized.gamma(1) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn desync_bound_gives_bbr_more_than_sync() {
        // De-synchronized CUBIC keeps the buffer from draining during
        // BBR's ProbeRTT, inflating BBR's min-RTT estimate and hence its
        // 2×BDP⁺ cap ⇒ the de-synch bound is BBR's upper edge (§3.2: the
        // measured points sat near it in the 5v5/10v10 runs).
        let m = model(10.0, 5, 5);
        let (sync, desync) = m.predicted_region().unwrap();
        assert!(
            desync.bbr_per_flow > sync.bbr_per_flow,
            "sync={} desync={}",
            sync.bbr_per_flow_mbps(),
            desync.bbr_per_flow_mbps()
        );
    }

    #[test]
    fn per_flow_bandwidth_is_aggregate_divided_by_count() {
        let m = model(5.0, 5, 5);
        let p = m.solve(SyncMode::Synchronized).unwrap();
        assert!((p.bbr_per_flow * 5.0 - p.bbr_aggregate).abs() < 1e-6);
        assert!((p.cubic_per_flow * 5.0 - p.cubic_aggregate).abs() < 1e-6);
    }

    #[test]
    fn aggregates_sum_to_capacity() {
        for (nc, nb) in [(1, 1), (5, 5), (10, 10), (45, 5), (3, 17)] {
            let m = model(8.0, nc, nb);
            for mode in SyncMode::BOTH {
                let p = m.solve(mode).unwrap();
                let c = m.link.capacity;
                assert!((p.bbr_aggregate + p.cubic_aggregate - c).abs() < 1e-6 * c);
            }
        }
    }

    #[test]
    fn bbr_per_flow_falls_as_bbr_count_rises() {
        // The paper's diminishing-returns result (Fig. 5): with N fixed,
        // increasing N_b lowers BBR's per-flow share.
        let n = 10u32;
        let mut prev = f64::INFINITY;
        for nb in 1..n {
            let m = model(3.0, n - nb, nb);
            let p = m.solve(SyncMode::Synchronized).unwrap();
            assert!(
                p.bbr_per_flow < prev,
                "per-flow BBR should fall with more BBR flows (nb={nb})"
            );
            prev = p.bbr_per_flow;
        }
    }

    #[test]
    fn all_bbr_network_gets_fair_share() {
        let m = model(3.0, 0, 10);
        let p = m.solve(SyncMode::Synchronized).unwrap();
        assert!((p.bbr_aggregate - m.link.capacity).abs() < 1e-9);
        assert!((p.bbr_per_flow - m.link.capacity / 10.0).abs() < 1e-9);
    }

    #[test]
    fn zero_bbr_flows_rejected() {
        assert!(model(3.0, 10, 0).solve(SyncMode::Synchronized).is_err());
    }

    #[test]
    fn region_is_nonempty_interval() {
        for bdp in [2.0, 3.0, 10.0, 30.0] {
            let m = model(bdp, 10, 10);
            let (sync, desync) = m.predicted_region().unwrap();
            assert!(desync.bbr_per_flow >= sync.bbr_per_flow - 1e-9);
        }
    }
}
