//! # bbrdom-core — the paper's contribution
//!
//! Analytical machinery from *"Are we heading towards a BBR-dominant
//! Internet?"* (Mishra, Tiu & Leong, IMC '22):
//!
//! * [`model`] — throughput models for CUBIC/BBR competition:
//!   * [`model::ware`] — the prior state of the art (Ware et al., IMC '19,
//!     Eqs. (2)–(4) of the paper), reimplemented as the baseline;
//!   * [`model::two_flow`] — the paper's 2-flow model (Eqs. (5)–(20));
//!   * [`model::multi_flow`] — the multi-flow extension with the
//!     CUBIC-synchronized / de-synchronized bounds (Eqs. (21)–(24));
//!   * [`model::nash`] — the Nash-equilibrium prediction (Eq. (25)).
//! * [`game`] — game-theoretic machinery: normal-form games, the
//!   symmetric two-strategy reduction used in §4.1, best-response
//!   dynamics, and the multi-group generalization used for the
//!   multi-RTT experiments (§4.5).
//!
//! Everything here is pure, deterministic arithmetic — no simulation.
//! The `bbrdom-experiments` crate compares these predictions against the
//! packet-level simulator.

pub mod game;
pub mod model;

pub use model::multi_flow::{MultiFlowModel, MultiFlowPrediction, SyncMode};
pub use model::nash::{NashPrediction, NashRegion};
pub use model::two_flow::{TwoFlowModel, TwoFlowPrediction};
pub use model::ware::WareModel;
pub use model::{LinkParams, ModelError};
