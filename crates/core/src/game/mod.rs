//! Game-theoretic machinery for congestion-control adoption (§4).
//!
//! The paper models websites as players choosing a congestion-control
//! algorithm (strategy) to maximize throughput (utility). Because all
//! flows share one bottleneck and (in the core analysis) one RTT, the
//! game is *symmetric*: payoffs depend only on how many players chose
//! each strategy, not on who. That reduction is what makes 50-flow NE
//! search exact and cheap — `n + 1` states instead of `2^n` profiles.
//!
//! * [`normal`] — small generic normal-form games (pure-strategy NE by
//!   enumeration), used for exposition and cross-checking.
//! * [`symmetric`] — the two-strategy symmetric game of §4.1 with payoff
//!   curves indexed by the BBR count.
//! * [`dynamics`] — best-response dynamics over the symmetric game
//!   (how the Internet "moves along the AB line" in Fig. 6).
//! * [`multigroup`] — symmetric-within-groups games for the multi-RTT
//!   experiments of §4.5 (states `(k₁,…,k_g)`, one `k` per RTT group).
//! * [`multistrategy`] — symmetric games over ≥3 strategies (the §4.2
//!   future work: more than two CCAs at one bottleneck).

pub mod dynamics;
pub mod multigroup;
pub mod multistrategy;
pub mod normal;
pub mod symmetric;

pub use dynamics::{BestResponseOutcome, BestResponseTrace};
pub use multigroup::{GroupState, MultiGroupGame};
pub use multistrategy::{Composition, MultiStrategyGame};
pub use normal::NormalFormGame;
pub use symmetric::{SymmetricGame, SymmetricNe};
