//! Best-response dynamics over the symmetric game.
//!
//! The paper's narrative of Internet evolution — "as more flows switch
//! from CUBIC to BBR we move along the AB line until …" (Fig. 6) — is a
//! best-response process: at each step one flow with a profitable
//! deviation switches. This module runs that process and records the
//! trajectory; for the games this repository produces (single-crossing
//! payoff curves) it converges to a Nash equilibrium.

use super::symmetric::SymmetricGame;

/// How a best-response run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BestResponseOutcome {
    /// Reached a state where no flow wants to switch.
    Converged,
    /// Revisited a state: the dynamics cycle (possible with non-monotone
    /// payoff curves; never for single-crossing ones).
    Cycled,
    /// Hit the iteration budget.
    Exhausted,
}

/// The trajectory of a best-response run.
#[derive(Debug, Clone)]
pub struct BestResponseTrace {
    /// Visited states (BBR counts), starting state first.
    pub states: Vec<u32>,
    pub outcome: BestResponseOutcome,
}

impl BestResponseTrace {
    /// The final state of the run.
    pub fn final_state(&self) -> u32 {
        *self.states.last().expect("trace is never empty")
    }
}

/// Run best-response dynamics from `start` (a BBR count) until
/// convergence, a cycle, or `max_steps`.
pub fn best_response_dynamics(
    game: &SymmetricGame,
    start: u32,
    max_steps: usize,
) -> BestResponseTrace {
    assert!(start <= game.n());
    let mut states = vec![start];
    let mut seen = vec![false; game.n() as usize + 1];
    seen[start as usize] = true;
    let mut current = start;
    for _ in 0..max_steps {
        match game.best_response_step(current) {
            None => {
                return BestResponseTrace {
                    states,
                    outcome: BestResponseOutcome::Converged,
                }
            }
            Some(next) => {
                states.push(next);
                if seen[next as usize] {
                    return BestResponseTrace {
                        states,
                        outcome: BestResponseOutcome::Cycled,
                    };
                }
                seen[next as usize] = true;
                current = next;
            }
        }
    }
    BestResponseTrace {
        states,
        outcome: BestResponseOutcome::Exhausted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::game::symmetric::SymmetricGame;

    fn crossing_game() -> SymmetricGame {
        let n = 10u32;
        let bbr: Vec<f64> = (0..=n).map(|k| 20.0 - 2.0 * k as f64).collect();
        let cubic: Vec<f64> = (0..=n).map(|k| 5.0 + 1.0 * k as f64).collect();
        SymmetricGame::new(n, bbr, cubic)
    }

    #[test]
    fn converges_from_all_cubic() {
        let g = crossing_game();
        let trace = best_response_dynamics(&g, 0, 100);
        assert_eq!(trace.outcome, BestResponseOutcome::Converged);
        assert!(g.is_nash(trace.final_state()));
    }

    #[test]
    fn converges_from_all_bbr() {
        let g = crossing_game();
        let trace = best_response_dynamics(&g, 10, 100);
        assert_eq!(trace.outcome, BestResponseOutcome::Converged);
        assert!(g.is_nash(trace.final_state()));
    }

    #[test]
    fn trajectory_is_monotone_for_single_crossing_curves() {
        let g = crossing_game();
        let trace = best_response_dynamics(&g, 0, 100);
        for w in trace.states.windows(2) {
            assert_eq!(w[1], w[0] + 1, "from all-CUBIC the walk only ascends");
        }
    }

    #[test]
    fn zero_budget_reports_exhausted_unless_already_ne() {
        let g = crossing_game();
        let at_ne = best_response_dynamics(&g, 5, 0);
        // With zero steps we cannot even check... the loop body never runs,
        // so the outcome is Exhausted; the state list is just the start.
        assert_eq!(at_ne.outcome, BestResponseOutcome::Exhausted);
        assert_eq!(at_ne.states, vec![5]);
    }

    #[test]
    fn dominant_strategy_walks_to_the_corner() {
        let n = 5u32;
        let g = SymmetricGame::new(n, vec![10.0; 6], vec![1.0; 6]);
        let trace = best_response_dynamics(&g, 0, 100);
        assert_eq!(trace.outcome, BestResponseOutcome::Converged);
        assert_eq!(trace.final_state(), n);
        assert_eq!(trace.states, vec![0, 1, 2, 3, 4, 5]);
    }
}
