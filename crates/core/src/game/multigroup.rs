//! Symmetric-within-groups games for the multi-RTT setting (§4.5).
//!
//! The paper's Fig. 10 experiment has 30 flows in three RTT groups
//! (10 ms, 30 ms, 50 ms). Flows within a group are interchangeable, so a
//! state is the vector `(k₁, …, k_g)` of per-group BBR counts —
//! `∏(nᵢ + 1)` states (11³ = 1331) instead of `2³⁰` profiles.
//!
//! Payoffs come from a caller-supplied oracle (the analytical model or
//! simulator measurements): for a state it returns, per group, the
//! per-flow utility of a BBR flow and of a CUBIC flow in that group.

/// Per-group BBR counts describing one state of the game.
pub type GroupState = Vec<u32>;

/// Per-group payoffs in one state: `bbr[g]` is the payoff of a BBR flow
/// in group `g` (meaningful when the state has one), `cubic[g]` likewise.
#[derive(Debug, Clone)]
pub struct GroupPayoffs {
    pub bbr: Vec<f64>,
    pub cubic: Vec<f64>,
}

/// A game over RTT groups with a payoff oracle.
pub struct MultiGroupGame<F>
where
    F: Fn(&[u32]) -> GroupPayoffs,
{
    group_sizes: Vec<u32>,
    payoff: F,
    epsilon: f64,
}

impl<F> MultiGroupGame<F>
where
    F: Fn(&[u32]) -> GroupPayoffs,
{
    pub fn new(group_sizes: Vec<u32>, payoff: F) -> Self {
        assert!(!group_sizes.is_empty());
        assert!(group_sizes.iter().all(|&s| s >= 1));
        MultiGroupGame {
            group_sizes,
            payoff,
            epsilon: 0.0,
        }
    }

    pub fn with_epsilon(mut self, eps: f64) -> Self {
        assert!(eps >= 0.0);
        self.epsilon = eps;
        self
    }

    pub fn n_groups(&self) -> usize {
        self.group_sizes.len()
    }

    pub fn group_sizes(&self) -> &[u32] {
        &self.group_sizes
    }

    /// Total number of states.
    pub fn n_states(&self) -> usize {
        self.group_sizes.iter().map(|&s| s as usize + 1).product()
    }

    /// Iterate every state `(k₁, …, k_g)`.
    pub fn states(&self) -> impl Iterator<Item = GroupState> + '_ {
        let sizes = self.group_sizes.clone();
        let total = self.n_states();
        (0..total).map(move |mut ix| {
            let mut state = Vec::with_capacity(sizes.len());
            for &s in &sizes {
                let base = s as usize + 1;
                state.push((ix % base) as u32);
                ix /= base;
            }
            state
        })
    }

    /// Is `state` a Nash equilibrium? Checks, for every group, whether a
    /// CUBIC flow there would gain by switching to BBR (moving the state
    /// up in that group) or a BBR flow by switching to CUBIC.
    pub fn is_nash(&self, state: &[u32]) -> bool {
        assert_eq!(state.len(), self.n_groups());
        let here = (self.payoff)(state);
        let mut trial = state.to_vec();
        for g in 0..self.n_groups() {
            // CUBIC → BBR in group g.
            if state[g] < self.group_sizes[g] {
                trial[g] = state[g] + 1;
                let there = (self.payoff)(&trial);
                if there.bbr[g] > here.cubic[g] + self.epsilon {
                    return false;
                }
                trial[g] = state[g];
            }
            // BBR → CUBIC in group g.
            if state[g] > 0 {
                trial[g] = state[g] - 1;
                let there = (self.payoff)(&trial);
                if there.cubic[g] > here.bbr[g] + self.epsilon {
                    return false;
                }
                trial[g] = state[g];
            }
        }
        true
    }

    /// Enumerate all Nash equilibrium states.
    pub fn nash_equilibria(&self) -> Vec<GroupState> {
        self.states().filter(|s| self.is_nash(s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A stylized multi-RTT payoff: BBR's advantage grows with the
    /// group's RTT (mirroring the paper's observation that long-RTT flows
    /// benefit most from BBR), and decreases with the total BBR count.
    fn rtt_game() -> MultiGroupGame<impl Fn(&[u32]) -> GroupPayoffs> {
        let rtts = [10.0, 30.0, 50.0];
        MultiGroupGame::new(vec![4, 4, 4], move |state: &[u32]| {
            let total_bbr: u32 = state.iter().sum();
            let bbr: Vec<f64> = rtts
                .iter()
                .map(|rtt| 10.0 + rtt / 10.0 - 1.5 * total_bbr as f64)
                .collect();
            let cubic: Vec<f64> = rtts
                .iter()
                .map(|rtt| 10.0 - rtt / 25.0 + 0.5 * total_bbr as f64)
                .collect();
            GroupPayoffs { bbr, cubic }
        })
    }

    #[test]
    fn state_enumeration_covers_product_space() {
        let g = rtt_game();
        assert_eq!(g.n_states(), 125);
        assert_eq!(g.states().count(), 125);
    }

    #[test]
    fn equilibria_exist_and_prefer_long_rtt_bbr() {
        let g = rtt_game();
        let ne = g.nash_equilibria();
        assert!(!ne.is_empty(), "expected at least one NE");
        // The paper's §4.5 ordering: in every NE, CUBIC concentrates in
        // the short-RTT group — i.e. the BBR count is non-decreasing in
        // group RTT.
        for state in &ne {
            assert!(
                state[0] <= state[1] && state[1] <= state[2],
                "NE {state:?} violates the RTT ordering"
            );
        }
    }

    #[test]
    fn single_group_reduces_to_symmetric_game() {
        use crate::game::symmetric::SymmetricGame;
        let n = 6u32;
        let bbr: Vec<f64> = (0..=n).map(|k| 15.0 - 2.0 * k as f64).collect();
        let cubic: Vec<f64> = (0..=n).map(|k| 3.0 + k as f64).collect();
        let bbr2 = bbr.clone();
        let cubic2 = cubic.clone();
        let mg = MultiGroupGame::new(vec![n], move |state: &[u32]| GroupPayoffs {
            bbr: vec![bbr2[state[0] as usize]],
            cubic: vec![cubic2[state[0] as usize]],
        });
        let mg_ne: Vec<u32> = mg.nash_equilibria().iter().map(|s| s[0]).collect();
        let sym = SymmetricGame::new(n, bbr, cubic);
        let sym_ne: Vec<u32> = sym.nash_equilibria().iter().map(|e| e.n_bbr).collect();
        assert_eq!(mg_ne, sym_ne);
    }

    #[test]
    fn epsilon_tolerance_applies_per_deviation() {
        let g = MultiGroupGame::new(vec![2], |state: &[u32]| GroupPayoffs {
            bbr: vec![1.0 + 0.001 * state[0] as f64],
            cubic: vec![1.0],
        })
        .with_epsilon(0.01);
        // All states are ε-equilibria: gains are below tolerance.
        assert_eq!(g.nash_equilibria().len(), 3);
    }
}
