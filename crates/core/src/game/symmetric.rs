//! The symmetric two-strategy game of §4.1.
//!
//! `n` identical flows each choose CUBIC or BBR. Since flows are
//! symmetric, the state space is the BBR count `k ∈ {0, …, n}` and a
//! state is described by two payoff curves:
//!
//! * `bbr_payoff[k]` — per-flow utility of a BBR flow when `k` flows run
//!   BBR (defined for `k ≥ 1`),
//! * `cubic_payoff[k]` — per-flow utility of a CUBIC flow in the same
//!   state (defined for `k ≤ n − 1`).
//!
//! State `k` is a (pure, symmetric) Nash equilibrium iff
//!
//! * no CUBIC flow gains by switching: `cubic[k] ≥ bbr[k+1] − ε`
//!   (a switcher lands in state `k+1` *as a BBR flow*), and
//! * no BBR flow gains by switching: `bbr[k] ≥ cubic[k−1] − ε`.
//!
//! This is exactly the check the paper's §4.4 methodology performs on
//! measured throughputs, so the same code consumes model predictions and
//! simulator measurements.

/// Payoff curves for the symmetric CUBIC-vs-BBR game.
#[derive(Debug, Clone)]
pub struct SymmetricGame {
    n: u32,
    /// `bbr[k]`: payoff of each BBR flow in state `k`; `bbr[0]` unused.
    bbr: Vec<f64>,
    /// `cubic[k]`: payoff of each CUBIC flow in state `k`; `cubic[n]` unused.
    cubic: Vec<f64>,
    /// Improvement tolerance ε.
    epsilon: f64,
}

/// A Nash equilibrium state of the symmetric game.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SymmetricNe {
    /// Number of BBR flows at the equilibrium.
    pub n_bbr: u32,
    /// Number of CUBIC flows at the equilibrium.
    pub n_cubic: u32,
    /// BBR per-flow payoff at the equilibrium (`None` when `n_bbr = 0`).
    pub bbr_payoff: Option<f64>,
    /// CUBIC per-flow payoff at the equilibrium (`None` when `n_cubic = 0`).
    pub cubic_payoff: Option<f64>,
}

impl SymmetricGame {
    /// Build from payoff curves. Both vectors must have length `n + 1`;
    /// `bbr[0]` and `cubic[n]` are ignored (no such flow exists).
    pub fn new(n: u32, bbr: Vec<f64>, cubic: Vec<f64>) -> Self {
        assert_eq!(bbr.len(), n as usize + 1, "bbr curve must have n+1 entries");
        assert_eq!(
            cubic.len(),
            n as usize + 1,
            "cubic curve must have n+1 entries"
        );
        SymmetricGame {
            n,
            bbr,
            cubic,
            epsilon: 0.0,
        }
    }

    /// Set the improvement tolerance ε: a switch must improve by *more*
    /// than ε to destabilize a state. The paper's empirical search uses
    /// this to absorb measurement noise near the crossing.
    pub fn with_epsilon(mut self, eps: f64) -> Self {
        assert!(eps >= 0.0);
        self.epsilon = eps;
        self
    }

    pub fn n(&self) -> u32 {
        self.n
    }

    /// BBR per-flow payoff in state `k` (k ≥ 1).
    pub fn bbr_payoff(&self, k: u32) -> Option<f64> {
        if k >= 1 && k <= self.n {
            Some(self.bbr[k as usize])
        } else {
            None
        }
    }

    /// CUBIC per-flow payoff in state `k` (k ≤ n − 1).
    pub fn cubic_payoff(&self, k: u32) -> Option<f64> {
        if k < self.n {
            Some(self.cubic[k as usize])
        } else {
            None
        }
    }

    /// Is state `k` (k BBR flows) a Nash equilibrium?
    pub fn is_nash(&self, k: u32) -> bool {
        assert!(k <= self.n);
        // CUBIC → BBR deviation.
        if k < self.n {
            let stay = self.cubic[k as usize];
            let switch = self.bbr[(k + 1) as usize];
            if switch > stay + self.epsilon {
                return false;
            }
        }
        // BBR → CUBIC deviation.
        if k > 0 {
            let stay = self.bbr[k as usize];
            let switch = self.cubic[(k - 1) as usize];
            if switch > stay + self.epsilon {
                return false;
            }
        }
        true
    }

    /// All Nash equilibrium states.
    pub fn nash_equilibria(&self) -> Vec<SymmetricNe> {
        (0..=self.n)
            .filter(|&k| self.is_nash(k))
            .map(|k| SymmetricNe {
                n_bbr: k,
                n_cubic: self.n - k,
                bbr_payoff: self.bbr_payoff(k),
                cubic_payoff: if k < self.n {
                    Some(self.cubic[k as usize])
                } else {
                    None
                },
            })
            .collect()
    }

    /// The state a best-responding flow would move to from state `k`,
    /// if any single flow has a profitable deviation.
    pub fn best_response_step(&self, k: u32) -> Option<u32> {
        let mut best: Option<(f64, u32)> = None;
        if k < self.n {
            let gain = self.bbr[(k + 1) as usize] - self.cubic[k as usize];
            if gain > self.epsilon {
                best = Some((gain, k + 1));
            }
        }
        if k > 0 {
            let gain = self.cubic[(k - 1) as usize] - self.bbr[k as usize];
            if gain > self.epsilon && best.is_none_or(|(g, _)| gain > g) {
                best = Some((gain, k - 1));
            }
        }
        best.map(|(_, next)| next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A textbook crossing: BBR payoff falls with k, CUBIC payoff rises;
    /// they cross between k=3 and k=4 for n=10.
    fn crossing_game() -> SymmetricGame {
        let n = 10u32;
        let bbr: Vec<f64> = (0..=n).map(|k| 20.0 - 2.0 * k as f64).collect();
        let cubic: Vec<f64> = (0..=n).map(|k| 5.0 + 1.0 * k as f64).collect();
        SymmetricGame::new(n, bbr, cubic)
    }

    #[test]
    fn crossing_yields_interior_ne() {
        let g = crossing_game();
        let ne = g.nash_equilibria();
        assert!(!ne.is_empty());
        for e in &ne {
            assert!(e.n_bbr >= 1 && e.n_bbr <= 5, "unexpected NE at {}", e.n_bbr);
        }
    }

    #[test]
    fn ne_condition_matches_manual_check() {
        let g = crossing_game();
        // State 4: cubic[4]=9, bbr[5]=10 → a CUBIC flow WOULD switch
        // (10 > 9), so 4 is not an NE.
        assert!(!g.is_nash(4));
        // State 5: cubic[5]=10, bbr[6]=8 → no CUBIC switch;
        // bbr[5]=10, cubic[4]=9 → no BBR switch. NE.
        assert!(g.is_nash(5));
    }

    #[test]
    fn always_dominant_strategy_pushes_to_all_bbr() {
        // BBR strictly better everywhere → unique NE at k = n (Case 1 in
        // §4.1: the AB line stays above the fair-share line).
        let n = 6u32;
        let bbr = vec![10.0; n as usize + 1];
        let cubic = vec![1.0; n as usize + 1];
        let g = SymmetricGame::new(n, bbr, cubic);
        let ne = g.nash_equilibria();
        assert_eq!(ne.len(), 1);
        assert_eq!(ne[0].n_bbr, n);
    }

    #[test]
    fn epsilon_widens_the_equilibrium_set() {
        let g = crossing_game();
        let strict = g.nash_equilibria().len();
        let loose = crossing_game().with_epsilon(3.0).nash_equilibria().len();
        assert!(loose > strict, "strict={strict} loose={loose}");
    }

    #[test]
    fn best_response_moves_toward_ne() {
        let g = crossing_game();
        // From state 0, a CUBIC flow switches (bbr[1]=18 > cubic[0]=5).
        assert_eq!(g.best_response_step(0), Some(1));
        // From all-BBR, a BBR flow leaves (cubic[9]=14 > bbr[10]=0).
        assert_eq!(g.best_response_step(10), Some(9));
        // At the NE, no move.
        assert_eq!(g.best_response_step(5), None);
    }

    #[test]
    fn curves_consumed_symmetrically() {
        let g = crossing_game();
        assert_eq!(g.bbr_payoff(0), None);
        assert_eq!(g.cubic_payoff(10), None);
        assert_eq!(g.bbr_payoff(1), Some(18.0));
        assert_eq!(g.cubic_payoff(0), Some(5.0));
    }

    #[test]
    #[should_panic]
    fn wrong_curve_length_panics() {
        SymmetricGame::new(5, vec![0.0; 5], vec![0.0; 6]);
    }

    /// Cross-check against the generic normal-form machinery for small n.
    #[test]
    fn matches_normal_form_enumeration() {
        use crate::game::normal::NormalFormGame;
        let n = 4u32;
        let bbr: Vec<f64> = (0..=n).map(|k| 12.0 - 3.0 * k as f64).collect();
        let cubic: Vec<f64> = (0..=n).map(|k| 2.0 + 1.5 * k as f64).collect();
        let sym = SymmetricGame::new(n, bbr.clone(), cubic.clone());
        let sym_ne: Vec<u32> = sym.nash_equilibria().iter().map(|e| e.n_bbr).collect();

        // Full normal-form: strategy 1 = BBR.
        let payoff = move |profile: &[usize], player: usize| -> f64 {
            let k: usize = profile.iter().sum();
            if profile[player] == 1 {
                bbr[k]
            } else {
                cubic[k]
            }
        };
        let game = NormalFormGame::new(vec![2; n as usize], payoff);
        let mut normal_ne: Vec<u32> = game
            .pure_nash_equilibria()
            .iter()
            .map(|p| p.iter().sum::<usize>() as u32)
            .collect();
        normal_ne.sort_unstable();
        normal_ne.dedup();
        assert_eq!(sym_ne, normal_ne);
    }
}
