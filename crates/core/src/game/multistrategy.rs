//! Symmetric games with **more than two** strategies — the paper's
//! §4.2 future work ("scenarios where more than two CC algorithms
//! compete at a common bottleneck remain future work").
//!
//! With `s` interchangeable strategies and `n` symmetric players, a
//! state is a *composition* `(k₁, …, k_s)` with `Σkᵢ = n` — there are
//! `C(n+s−1, s−1)` of them, e.g. 231 for 20 flows over 3 algorithms
//! instead of `3²⁰` profiles. A state is a Nash equilibrium when no
//! flow running strategy `i` would gain by unilaterally switching to
//! strategy `j` (which moves the state one step in the composition
//! lattice).
//!
//! Unlike the two-strategy case, pure equilibria are **not** guaranteed
//! here, and best-response dynamics can cycle — both facts surface in
//! the tests.

/// A state: number of players on each strategy (sums to `n`).
pub type Composition = Vec<u32>;

/// A symmetric game over `s ≥ 2` strategies with a payoff oracle.
///
/// `payoff(state)[i]` is the per-flow payoff of strategy `i` in `state`
/// (meaningful when `state[i] > 0`; oracles may return anything for
/// unused strategies).
pub struct MultiStrategyGame<F>
where
    F: Fn(&[u32]) -> Vec<f64>,
{
    n: u32,
    s: usize,
    payoff: F,
    epsilon: f64,
}

impl<F> MultiStrategyGame<F>
where
    F: Fn(&[u32]) -> Vec<f64>,
{
    pub fn new(n: u32, s: usize, payoff: F) -> Self {
        assert!(n >= 1, "need at least one player");
        assert!(s >= 2, "need at least two strategies");
        MultiStrategyGame {
            n,
            s,
            payoff,
            epsilon: 0.0,
        }
    }

    /// Improvement tolerance (see the two-strategy game).
    pub fn with_epsilon(mut self, eps: f64) -> Self {
        assert!(eps >= 0.0);
        self.epsilon = eps;
        self
    }

    pub fn n_players(&self) -> u32 {
        self.n
    }

    pub fn n_strategies(&self) -> usize {
        self.s
    }

    /// Number of states: `C(n+s−1, s−1)`.
    pub fn n_states(&self) -> u64 {
        let n = self.n as u64;
        let s = self.s as u64;
        // Compute the binomial iteratively (small arguments here).
        let (mut num, mut den) = (1u64, 1u64);
        for i in 0..(s - 1) {
            num *= n + s - 1 - i;
            den *= i + 1;
        }
        num / den
    }

    /// Iterate every composition of `n` into `s` parts.
    pub fn states(&self) -> Vec<Composition> {
        let mut out = Vec::new();
        let mut current = vec![0u32; self.s];
        Self::compositions(self.n, 0, &mut current, &mut out);
        out
    }

    fn compositions(rest: u32, idx: usize, current: &mut Composition, out: &mut Vec<Composition>) {
        let s = current.len();
        if idx == s - 1 {
            current[idx] = rest;
            out.push(current.clone());
            return;
        }
        for k in 0..=rest {
            current[idx] = k;
            Self::compositions(rest - k, idx + 1, current, out);
        }
    }

    /// Is `state` a Nash equilibrium?
    pub fn is_nash(&self, state: &[u32]) -> bool {
        assert_eq!(state.len(), self.s);
        debug_assert_eq!(state.iter().sum::<u32>(), self.n);
        let here = (self.payoff)(state);
        let mut trial = state.to_vec();
        for i in 0..self.s {
            if state[i] == 0 {
                continue;
            }
            for j in 0..self.s {
                if j == i {
                    continue;
                }
                trial[i] -= 1;
                trial[j] += 1;
                let there = (self.payoff)(&trial);
                let gain = there[j] - here[i];
                trial[i] += 1;
                trial[j] -= 1;
                if gain > self.epsilon {
                    return false;
                }
            }
        }
        true
    }

    /// All pure Nash equilibria (may be empty for s ≥ 3).
    pub fn nash_equilibria(&self) -> Vec<Composition> {
        self.states()
            .into_iter()
            .filter(|st| self.is_nash(st))
            .collect()
    }

    /// One step of best-response dynamics: the single switch with the
    /// largest gain, or `None` at an equilibrium.
    pub fn best_response_step(&self, state: &[u32]) -> Option<Composition> {
        let here = (self.payoff)(state);
        let mut best: Option<(f64, Composition)> = None;
        let mut trial = state.to_vec();
        for i in 0..self.s {
            if state[i] == 0 {
                continue;
            }
            for j in 0..self.s {
                if j == i {
                    continue;
                }
                trial[i] -= 1;
                trial[j] += 1;
                let there = (self.payoff)(&trial);
                let gain = there[j] - here[i];
                if gain > self.epsilon && best.as_ref().is_none_or(|(g, _)| gain > *g) {
                    best = Some((gain, trial.clone()));
                }
                trial[i] += 1;
                trial[j] -= 1;
            }
        }
        best.map(|(_, st)| st)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three CCAs with a congestion-externality payoff: each strategy's
    /// payoff falls in its own count but algorithms differ in
    /// aggressiveness — a stylized CUBIC/BBR/BBRv2 triangle.
    fn triangle(n: u32) -> MultiStrategyGame<impl Fn(&[u32]) -> Vec<f64>> {
        MultiStrategyGame::new(n, 3, move |st: &[u32]| {
            let total: u32 = st.iter().sum();
            let base = [8.0, 12.0, 10.0];
            (0..3)
                .map(|i| base[i] - 1.5 * st[i] as f64 - 0.2 * total as f64)
                .collect()
        })
    }

    #[test]
    fn state_count_matches_binomial() {
        let g = triangle(6);
        assert_eq!(g.n_states(), 28); // C(8,2)
        assert_eq!(g.states().len(), 28);
        for st in g.states() {
            assert_eq!(st.iter().sum::<u32>(), 6);
        }
    }

    #[test]
    fn equilibria_exist_for_congestion_payoffs() {
        let g = triangle(6);
        let ne = g.nash_equilibria();
        assert!(!ne.is_empty());
        // With strictly-own-count-decreasing payoffs the NE is unique-ish
        // and mixed across all three strategies.
        for st in &ne {
            assert!(st.iter().all(|&k| k > 0), "NE {st:?} should be mixed");
        }
    }

    #[test]
    fn two_strategy_case_matches_symmetric_game() {
        use crate::game::symmetric::SymmetricGame;
        let n = 8u32;
        let bbr: Vec<f64> = (0..=n).map(|k| 16.0 - 2.0 * k as f64).collect();
        let cubic: Vec<f64> = (0..=n).map(|k| 4.0 + k as f64).collect();
        let (b2, c2) = (bbr.clone(), cubic.clone());
        // Strategy 0 = CUBIC, 1 = BBR; state[1] is the BBR count.
        let ms = MultiStrategyGame::new(n, 2, move |st: &[u32]| {
            vec![c2[st[1] as usize], b2[st[1] as usize]]
        });
        let ms_ne: Vec<u32> = ms.nash_equilibria().iter().map(|st| st[1]).collect();
        let sym = SymmetricGame::new(n, bbr, cubic);
        let sym_ne: Vec<u32> = sym.nash_equilibria().iter().map(|e| e.n_bbr).collect();
        assert_eq!(ms_ne, sym_ne);
    }

    #[test]
    fn rock_paper_scissors_has_no_pure_ne() {
        // 3 players, 3 strategies, cyclic dominance: strategy i beats
        // i−1. Payoff: +1 per player you beat, −1 per player beating you.
        let g = MultiStrategyGame::new(3, 3, |st: &[u32]| {
            (0..3)
                .map(|i| {
                    let beats = st[(i + 2) % 3] as f64;
                    let beaten = st[(i + 1) % 3] as f64;
                    beats - beaten
                })
                .collect()
        });
        assert!(
            g.nash_equilibria().is_empty(),
            "cyclic-dominance games have no pure NE"
        );
        // And best-response dynamics must keep moving forever.
        let mut state = vec![3, 0, 0];
        for _ in 0..10 {
            state = g.best_response_step(&state).expect("never settles");
        }
    }

    #[test]
    fn best_response_reaches_an_equilibrium_when_one_exists() {
        let g = triangle(6);
        let mut state = vec![6, 0, 0];
        for _ in 0..100 {
            match g.best_response_step(&state) {
                Some(next) => state = next,
                None => break,
            }
        }
        assert!(
            g.is_nash(&state),
            "dynamics should settle at an NE, got {state:?}"
        );
    }

    #[test]
    fn epsilon_tolerance() {
        let g = MultiStrategyGame::new(4, 3, |st: &[u32]| {
            (0..3).map(|i| st[i] as f64 * 0.001).collect()
        })
        .with_epsilon(1.0);
        // All gains below ε: everything is an equilibrium.
        assert_eq!(g.nash_equilibria().len() as u64, g.n_states());
    }
}
