//! Generic finite normal-form games with pure-strategy NE enumeration.
//!
//! Small and exact: profiles are enumerated, so this is for games with a
//! handful of players (it cross-checks the symmetric reduction in tests
//! and supports exposition in the examples). The symmetric machinery in
//! [`crate::game::symmetric`] is what scales to 50 flows.

/// A finite normal-form game.
///
/// `payoff(profile, player)` returns the utility of `player` under the
/// pure-strategy `profile` (`profile[i]` is player `i`'s strategy index).
pub struct NormalFormGame<F>
where
    F: Fn(&[usize], usize) -> f64,
{
    /// Number of strategies available to each player.
    strategy_counts: Vec<usize>,
    payoff: F,
    /// Tolerance for "strictly better" comparisons.
    epsilon: f64,
}

impl<F> NormalFormGame<F>
where
    F: Fn(&[usize], usize) -> f64,
{
    pub fn new(strategy_counts: Vec<usize>, payoff: F) -> Self {
        assert!(!strategy_counts.is_empty(), "need at least one player");
        assert!(
            strategy_counts.iter().all(|&c| c >= 1),
            "every player needs a strategy"
        );
        NormalFormGame {
            strategy_counts,
            payoff,
            epsilon: 1e-9,
        }
    }

    /// Set the improvement tolerance: a deviation must improve the payoff
    /// by more than `eps` to invalidate an equilibrium (the paper's
    /// empirical NE search uses the same idea to absorb noise).
    pub fn with_epsilon(mut self, eps: f64) -> Self {
        self.epsilon = eps;
        self
    }

    pub fn n_players(&self) -> usize {
        self.strategy_counts.len()
    }

    /// Total number of pure profiles (∏ strategy counts).
    pub fn n_profiles(&self) -> usize {
        self.strategy_counts.iter().product()
    }

    fn profiles(&self) -> impl Iterator<Item = Vec<usize>> + '_ {
        let counts = self.strategy_counts.clone();
        let total: usize = counts.iter().product();
        (0..total).map(move |mut ix| {
            let mut profile = Vec::with_capacity(counts.len());
            for &c in &counts {
                profile.push(ix % c);
                ix /= c;
            }
            profile
        })
    }

    /// Is `profile` a pure-strategy Nash equilibrium?
    pub fn is_nash(&self, profile: &[usize]) -> bool {
        assert_eq!(profile.len(), self.n_players());
        let mut trial = profile.to_vec();
        for (i, &cur) in profile.iter().enumerate() {
            let base = (self.payoff)(profile, i);
            for alt in 0..self.strategy_counts[i] {
                if alt == cur {
                    continue;
                }
                trial[i] = alt;
                if (self.payoff)(&trial, i) > base + self.epsilon {
                    return false;
                }
            }
            trial[i] = cur;
        }
        true
    }

    /// Enumerate all pure-strategy Nash equilibria.
    pub fn pure_nash_equilibria(&self) -> Vec<Vec<usize>> {
        self.profiles().filter(|p| self.is_nash(p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Prisoner's dilemma: defect (1) dominates; unique NE (1, 1).
    #[test]
    fn prisoners_dilemma() {
        let payoff = |profile: &[usize], player: usize| -> f64 {
            let me = profile[player];
            let other = profile[1 - player];
            match (me, other) {
                (0, 0) => 3.0, // both cooperate
                (0, 1) => 0.0, // I cooperate, sucker's payoff
                (1, 0) => 5.0, // I defect on a cooperator
                (1, 1) => 1.0, // both defect
                _ => unreachable!(),
            }
        };
        let game = NormalFormGame::new(vec![2, 2], payoff);
        let ne = game.pure_nash_equilibria();
        assert_eq!(ne, vec![vec![1, 1]]);
    }

    /// Pure coordination: both (0,0) and (1,1) are NE.
    #[test]
    fn coordination_game_has_two_equilibria() {
        let payoff = |profile: &[usize], _player: usize| -> f64 {
            if profile[0] == profile[1] {
                1.0
            } else {
                0.0
            }
        };
        let game = NormalFormGame::new(vec![2, 2], payoff);
        let ne = game.pure_nash_equilibria();
        assert_eq!(ne.len(), 2);
        assert!(ne.contains(&vec![0, 0]));
        assert!(ne.contains(&vec![1, 1]));
    }

    /// Matching pennies has no pure NE.
    #[test]
    fn matching_pennies_has_no_pure_ne() {
        let payoff = |profile: &[usize], player: usize| -> f64 {
            let matched = profile[0] == profile[1];
            match (player, matched) {
                (0, true) => 1.0,
                (0, false) => -1.0,
                (1, true) => -1.0,
                (1, false) => 1.0,
                _ => unreachable!(),
            }
        };
        let game = NormalFormGame::new(vec![2, 2], payoff);
        assert!(game.pure_nash_equilibria().is_empty());
    }

    #[test]
    fn epsilon_absorbs_marginal_deviations() {
        // A tiny improvement below epsilon does not break the NE.
        let payoff = |profile: &[usize], player: usize| -> f64 {
            if profile[player] == 1 {
                1.0 + 1e-6
            } else {
                1.0
            }
        };
        let strict = NormalFormGame::new(vec![2], payoff);
        assert!(!strict.is_nash(&[0]));
        let tolerant = NormalFormGame::new(vec![2], payoff).with_epsilon(1e-3);
        assert!(tolerant.is_nash(&[0]));
    }

    #[test]
    fn three_player_profile_enumeration() {
        let game = NormalFormGame::new(vec![2, 3, 2], |_, _| 0.0);
        assert_eq!(game.n_profiles(), 12);
        // Everything is an NE when payoffs are constant.
        assert_eq!(game.pure_nash_equilibria().len(), 12);
    }
}
