//! Active queue management disciplines for the bottleneck.
//!
//! The paper's introduction and §5 argue that a mixed CUBIC/BBR Internet
//! forces a rethink of in-network machinery — buffer sizing rules and
//! AQMs were derived for loss-based flows. This module supplies the two
//! canonical AQMs so the repository can *test* that claim (see the
//! `ext-aqm` experiment): how the CUBIC/BBR split and the Nash mix move
//! when the drop-tail FIFO is replaced by RED or CoDel.
//!
//! * **RED** (Floyd & Jacobson '93): probabilistic early drop on an
//!   EWMA of the queue length. We use the *deterministic* count-based
//!   variant (drop every ⌈1/p_b⌉-th eligible packet), keeping the
//!   simulator bit-reproducible without an RNG in the data path; this
//!   is the same inter-drop spacing RED's `count` mechanism targets in
//!   expectation.
//! * **CoDel** (RFC 8289): sojourn-time-based head drop with the
//!   square-root control law.

use crate::time::{SimDuration, SimTime};

/// Queue discipline configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueueDiscipline {
    /// Plain drop-tail FIFO (the paper's setting).
    DropTail,
    /// Random Early Detection with byte-based EWMA thresholds.
    Red(RedConfig),
    /// CoDel head-drop AQM.
    Codel(CodelConfig),
}

impl QueueDiscipline {
    /// The discipline's short name (for tables/CSV).
    pub fn name(&self) -> &'static str {
        match self {
            QueueDiscipline::DropTail => "droptail",
            QueueDiscipline::Red(_) => "red",
            QueueDiscipline::Codel(_) => "codel",
        }
    }
}

/// RED parameters (byte units).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RedConfig {
    /// EWMA low threshold: below this, never drop.
    pub min_thresh_bytes: f64,
    /// EWMA high threshold: above this, always drop.
    pub max_thresh_bytes: f64,
    /// Drop probability at the high threshold.
    pub max_p: f64,
    /// EWMA weight per arrival.
    pub weight: f64,
}

impl RedConfig {
    /// The classic parameterization for a buffer of `capacity` bytes:
    /// thresholds at 25% / 75%, `max_p` = 0.1, weight 0.002.
    pub fn for_capacity(capacity_bytes: u64) -> Self {
        RedConfig {
            min_thresh_bytes: capacity_bytes as f64 * 0.25,
            max_thresh_bytes: capacity_bytes as f64 * 0.75,
            max_p: 0.1,
            weight: 0.002,
        }
    }
}

/// CoDel parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodelConfig {
    /// Target sojourn time (RFC 8289 default: 5 ms).
    pub target: SimDuration,
    /// Sliding window over which the target must be exceeded
    /// (RFC 8289 default: 100 ms).
    pub interval: SimDuration,
}

impl Default for CodelConfig {
    fn default() -> Self {
        CodelConfig {
            target: SimDuration::from_millis(5),
            interval: SimDuration::from_millis(100),
        }
    }
}

/// RED runtime state (deterministic count-based variant).
#[derive(Debug, Clone, Default)]
pub struct RedState {
    avg: f64,
    /// Packets since the last early drop.
    count_since_drop: u64,
}

impl RedState {
    /// Update the EWMA with the instantaneous queue length and decide
    /// whether this arriving packet should be early-dropped.
    pub fn on_arrival(&mut self, cfg: &RedConfig, queue_bytes: u64) -> bool {
        self.avg = (1.0 - cfg.weight) * self.avg + cfg.weight * queue_bytes as f64;
        if self.avg < cfg.min_thresh_bytes {
            self.count_since_drop = 0;
            return false;
        }
        if self.avg >= cfg.max_thresh_bytes {
            self.count_since_drop = 0;
            return true;
        }
        let p = cfg.max_p * (self.avg - cfg.min_thresh_bytes)
            / (cfg.max_thresh_bytes - cfg.min_thresh_bytes);
        debug_assert!((0.0..=1.0).contains(&p));
        self.count_since_drop += 1;
        if p > 0.0 && self.count_since_drop as f64 >= 1.0 / p {
            self.count_since_drop = 0;
            return true;
        }
        false
    }

    /// Current EWMA of the queue length, bytes.
    pub fn avg(&self) -> f64 {
        self.avg
    }
}

/// CoDel runtime state (RFC 8289 control law).
#[derive(Debug, Clone, Default)]
pub struct CodelState {
    /// When the sojourn time first went above target, if it is above.
    first_above: Option<SimTime>,
    /// Next scheduled drop while in the dropping state.
    drop_next: SimTime,
    /// Drops in the current dropping episode.
    count: u32,
    dropping: bool,
}

impl CodelState {
    /// Decide whether the head packet (with the given sojourn time)
    /// should be dropped at dequeue time `now`.
    pub fn on_dequeue(&mut self, cfg: &CodelConfig, now: SimTime, sojourn: SimDuration) -> bool {
        let ok_to_drop = if sojourn < cfg.target {
            self.first_above = None;
            false
        } else {
            match self.first_above {
                None => {
                    self.first_above = Some(now + cfg.interval);
                    false
                }
                Some(t) => now >= t,
            }
        };

        if self.dropping {
            if sojourn < cfg.target {
                self.dropping = false;
                false
            } else if now >= self.drop_next {
                self.count += 1;
                self.drop_next += Self::backoff(cfg.interval, self.count);
                true
            } else {
                false
            }
        } else if ok_to_drop {
            self.dropping = true;
            // RFC 8289: resume from a recent episode's count to converge
            // faster; we restart at the prior count minus 2 if recent.
            self.count = if self.count > 2
                && now.saturating_since(self.drop_next) < SimDuration(cfg.interval.0 * 16)
            {
                self.count - 2
            } else {
                1
            };
            self.drop_next = now + Self::backoff(cfg.interval, self.count);
            true
        } else {
            false
        }
    }

    /// `interval / sqrt(count)`.
    fn backoff(interval: SimDuration, count: u32) -> SimDuration {
        SimDuration((interval.0 as f64 / (count.max(1) as f64).sqrt()) as u64)
    }

    pub fn is_dropping(&self) -> bool {
        self.dropping
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn red_never_drops_below_min_threshold() {
        let cfg = RedConfig::for_capacity(100_000);
        let mut red = RedState::default();
        for _ in 0..1000 {
            assert!(!red.on_arrival(&cfg, 10_000)); // 10% << 25% min
        }
    }

    #[test]
    fn red_always_drops_when_ewma_above_max() {
        let cfg = RedConfig {
            min_thresh_bytes: 1000.0,
            max_thresh_bytes: 2000.0,
            max_p: 0.1,
            weight: 1.0, // instant EWMA for the test
        };
        let mut red = RedState::default();
        assert!(red.on_arrival(&cfg, 5000));
    }

    #[test]
    fn red_drop_spacing_matches_probability() {
        // With the EWMA pinned midway, p = max_p/2 = 0.05 → one drop
        // every 20 packets.
        let cfg = RedConfig {
            min_thresh_bytes: 0.0,
            max_thresh_bytes: 2000.0,
            max_p: 0.1,
            weight: 0.0, // frozen EWMA
        };
        let mut red = RedState {
            avg: 1000.0,
            count_since_drop: 0,
        };
        let drops: usize = (0..200).filter(|_| red.on_arrival(&cfg, 1000)).count();
        assert_eq!(drops, 10, "expected 1-in-20 drop spacing");
    }

    #[test]
    fn codel_stays_quiet_below_target() {
        let cfg = CodelConfig::default();
        let mut codel = CodelState::default();
        for i in 0..100 {
            let now = SimTime::from_secs_f64(i as f64 * 0.01);
            assert!(!codel.on_dequeue(&cfg, now, SimDuration::from_millis(2)));
        }
        assert!(!codel.is_dropping());
    }

    #[test]
    fn codel_enters_dropping_after_sustained_excess() {
        let cfg = CodelConfig::default();
        let mut codel = CodelState::default();
        let mut dropped = 0;
        // 300 ms of 20 ms sojourn at 1 ms spacing.
        for i in 0..300 {
            let now = SimTime::from_secs_f64(i as f64 * 0.001);
            if codel.on_dequeue(&cfg, now, SimDuration::from_millis(20)) {
                dropped += 1;
            }
        }
        assert!(dropped >= 2, "expected several CoDel drops, got {dropped}");
        assert!(codel.is_dropping());
    }

    #[test]
    fn codel_exits_dropping_when_queue_drains() {
        let cfg = CodelConfig::default();
        let mut codel = CodelState::default();
        for i in 0..300 {
            let now = SimTime::from_secs_f64(i as f64 * 0.001);
            codel.on_dequeue(&cfg, now, SimDuration::from_millis(20));
        }
        assert!(codel.is_dropping());
        assert!(!codel.on_dequeue(
            &cfg,
            SimTime::from_secs_f64(1.0),
            SimDuration::from_millis(1)
        ));
        assert!(!codel.is_dropping());
    }

    #[test]
    fn discipline_names() {
        assert_eq!(QueueDiscipline::DropTail.name(), "droptail");
        assert_eq!(
            QueueDiscipline::Red(RedConfig::for_capacity(1000)).name(),
            "red"
        );
        assert_eq!(
            QueueDiscipline::Codel(CodelConfig::default()).name(),
            "codel"
        );
    }
}
