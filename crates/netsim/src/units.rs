//! Bandwidth and buffer units.
//!
//! The paper specifies links in Mbps, RTTs in milliseconds, and buffers in
//! multiples of the bandwidth-delay product (BDP). This module provides the
//! conversions so experiment code reads like the paper.

use crate::time::SimDuration;

/// Maximum segment size used throughout the simulator, in bytes.
///
/// The paper's testbed used standard Ethernet framing; we use the classic
/// 1500-byte MTU payload as the unit of data.
pub const MSS: u64 = 1500;

/// A data rate in bytes per second.
///
/// Stored as `f64` because rates are the one place where fractional values
/// are natural (serialization times, pacing intervals); all byte *counts*
/// stay integral.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Rate(f64);

impl Rate {
    /// Construct from megabits per second (the paper's unit).
    pub fn from_mbps(mbps: f64) -> Self {
        assert!(mbps > 0.0, "link rate must be positive");
        Rate(mbps * 1e6 / 8.0)
    }

    /// Construct from bytes per second.
    pub fn from_bytes_per_sec(bps: f64) -> Self {
        assert!(bps > 0.0, "link rate must be positive");
        Rate(bps)
    }

    /// The rate in bytes per second.
    pub fn bytes_per_sec(self) -> f64 {
        self.0
    }

    /// The rate in megabits per second.
    pub fn as_mbps(self) -> f64 {
        self.0 * 8.0 / 1e6
    }

    /// Time to serialize `bytes` at this rate.
    pub fn serialization_time(self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.0)
    }

    /// Bandwidth-delay product for a given base RTT, in bytes.
    pub fn bdp_bytes(self, rtt: SimDuration) -> u64 {
        (self.0 * rtt.as_secs_f64()).round() as u64
    }
}

/// Convert a buffer size expressed in BDP multiples into bytes, with a
/// floor of one packet so a queue always exists.
pub fn buffer_bytes(rate: Rate, rtt: SimDuration, bdp_multiple: f64) -> u64 {
    assert!(bdp_multiple > 0.0, "buffer must be positive");
    ((rate.bdp_bytes(rtt) as f64 * bdp_multiple).round() as u64).max(MSS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mbps_roundtrip() {
        let r = Rate::from_mbps(50.0);
        assert!((r.as_mbps() - 50.0).abs() < 1e-9);
        assert!((r.bytes_per_sec() - 6_250_000.0).abs() < 1e-6);
    }

    #[test]
    fn serialization_time_of_one_mss() {
        // 1500 B at 12 Mbps = 1500*8/12e6 s = 1 ms.
        let r = Rate::from_mbps(12.0);
        assert_eq!(r.serialization_time(MSS), SimDuration::from_millis(1));
    }

    #[test]
    fn bdp_computation() {
        // 100 Mbps * 40 ms = 12.5e6 B/s * 0.04 s = 500_000 B.
        let r = Rate::from_mbps(100.0);
        assert_eq!(r.bdp_bytes(SimDuration::from_millis(40)), 500_000);
    }

    #[test]
    fn buffer_floor_is_one_packet() {
        let r = Rate::from_mbps(1.0);
        let b = buffer_bytes(r, SimDuration::from_micros(10), 0.1);
        assert_eq!(b, MSS);
    }

    #[test]
    fn buffer_in_bdp_multiples() {
        let r = Rate::from_mbps(100.0);
        let rtt = SimDuration::from_millis(40);
        assert_eq!(buffer_bytes(r, rtt, 3.0), 1_500_000);
    }
}
