//! Open-loop workload generation: finite flows arriving during the run.
//!
//! The paper's NE analysis uses N backlogged flows; its future-work
//! section asks whether the equilibrium survives realistic churn. This
//! module supplies the traffic side of that question: a
//! [`WorkloadConfig`] describes an arrival process (Poisson or
//! deterministic) and a flow-size distribution (fixed or bounded
//! Pareto — the classic heavy-tailed model of web transfer sizes), and
//! the simulator spawns one finite flow per arrival, open-loop: arrivals
//! do not wait for earlier flows to finish, exactly like independent
//! users behind a shared bottleneck.
//!
//! The workload has its own RNG stream (seeded by [`WorkloadConfig::seed`]),
//! so enabling it never perturbs the ACK-jitter or fault-loss draw
//! sequences of the underlying run. All draws happen in arrival order in
//! the event loop, which keeps runs bit-for-bit deterministic.
//!
//! Completed workload flows are torn down (see [`crate::flow::Flow`])
//! and their slots recycled via a free list once quiescent, so tens of
//! thousands of cumulative flows need only peak-concurrency state.

use crate::error::ConfigError;
use crate::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::Rng;

/// When new flows arrive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at `rate_per_sec` flows per second
    /// (exponential inter-arrival gaps).
    Poisson { rate_per_sec: f64 },
    /// One arrival every `interval`, exactly.
    Deterministic { interval: SimDuration },
}

impl ArrivalProcess {
    /// Draw the gap to the next arrival.
    pub(crate) fn sample_gap(&self, rng: &mut StdRng) -> SimDuration {
        match *self {
            ArrivalProcess::Poisson { rate_per_sec } => {
                // Inverse CDF of Exp(rate): -ln(1-U)/rate, U in [0, 1).
                let u = rng.gen_range(0.0f64..1.0);
                SimDuration::from_secs_f64(-(1.0 - u).ln() / rate_per_sec)
            }
            ArrivalProcess::Deterministic { interval } => interval,
        }
    }

    fn validate(&self) -> Result<(), ConfigError> {
        match *self {
            ArrivalProcess::Poisson { rate_per_sec } => {
                if !rate_per_sec.is_finite() {
                    return Err(ConfigError::NonFinite {
                        field: "workload arrival rate",
                    });
                }
                if rate_per_sec <= 0.0 {
                    return Err(ConfigError::NonPositive {
                        field: "workload arrival rate",
                    });
                }
            }
            ArrivalProcess::Deterministic { interval } => {
                if interval == SimDuration::ZERO {
                    return Err(ConfigError::NonPositive {
                        field: "workload arrival interval",
                    });
                }
            }
        }
        Ok(())
    }
}

/// How large each arriving flow is.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SizeDist {
    /// Every flow transfers exactly `bytes`.
    Fixed { bytes: u64 },
    /// Bounded Pareto on `[min_bytes, max_bytes]` with tail index
    /// `alpha` — heavy-tailed below `alpha ≈ 2`, the regime measured for
    /// web and datacenter flow sizes.
    BoundedPareto {
        alpha: f64,
        min_bytes: u64,
        max_bytes: u64,
    },
}

impl SizeDist {
    /// Draw one flow size in bytes (≥ 1).
    pub(crate) fn sample(&self, rng: &mut StdRng) -> u64 {
        match *self {
            SizeDist::Fixed { bytes } => bytes,
            SizeDist::BoundedPareto {
                alpha,
                min_bytes,
                max_bytes,
            } => {
                // Inverse CDF of the bounded Pareto:
                //   x = L / (1 - U·(1 - (L/H)^α))^(1/α)
                let l = min_bytes as f64;
                let h = max_bytes as f64;
                let u = rng.gen_range(0.0f64..1.0);
                let x = l / (1.0 - u * (1.0 - (l / h).powf(alpha))).powf(1.0 / alpha);
                (x as u64).clamp(min_bytes, max_bytes).max(1)
            }
        }
    }

    fn validate(&self) -> Result<(), ConfigError> {
        match *self {
            SizeDist::Fixed { bytes } => {
                if bytes == 0 {
                    return Err(ConfigError::NonPositive {
                        field: "workload flow size",
                    });
                }
            }
            SizeDist::BoundedPareto {
                alpha,
                min_bytes,
                max_bytes,
            } => {
                if !alpha.is_finite() {
                    return Err(ConfigError::NonFinite {
                        field: "workload Pareto alpha",
                    });
                }
                if alpha <= 0.0 {
                    return Err(ConfigError::NonPositive {
                        field: "workload Pareto alpha",
                    });
                }
                if min_bytes == 0 {
                    return Err(ConfigError::NonPositive {
                        field: "workload Pareto min size",
                    });
                }
                if max_bytes < min_bytes {
                    return Err(ConfigError::NonPositive {
                        field: "workload Pareto size range",
                    });
                }
            }
        }
        Ok(())
    }
}

/// An open-loop workload attached to a run via
/// [`crate::SimConfig::with_workload`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadConfig {
    /// Arrival process for new flows.
    pub arrivals: ArrivalProcess,
    /// Flow-size distribution.
    pub sizes: SizeDist,
    /// Base (propagation) RTT of every spawned flow's path.
    pub base_rtt: SimDuration,
    /// Seed of the workload's private RNG stream (arrival gaps and flow
    /// sizes). Independent of the jitter and fault streams.
    pub seed: u64,
    /// When the arrival process starts (the first arrival lands one gap
    /// after this).
    pub start: SimTime,
}

impl WorkloadConfig {
    /// A workload starting at t=0 with the given arrivals and sizes.
    pub fn new(
        arrivals: ArrivalProcess,
        sizes: SizeDist,
        base_rtt: SimDuration,
        seed: u64,
    ) -> Self {
        WorkloadConfig {
            arrivals,
            sizes,
            base_rtt,
            seed,
            start: SimTime::ZERO,
        }
    }

    /// Validate the workload parameters.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.arrivals.validate()?;
        self.sizes.validate()?;
        if self.base_rtt == SimDuration::ZERO {
            return Err(ConfigError::NonPositive {
                field: "workload base RTT",
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn poisson_gaps_have_roughly_the_right_mean() {
        let p = ArrivalProcess::Poisson { rate_per_sec: 50.0 };
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| p.sample_gap(&mut rng).as_secs_f64()).sum();
        let mean = total / n as f64;
        assert!(
            (mean - 0.02).abs() < 0.001,
            "mean inter-arrival {mean} should be ≈ 1/50"
        );
    }

    #[test]
    fn deterministic_gaps_are_exact() {
        let p = ArrivalProcess::Deterministic {
            interval: SimDuration::from_millis(10),
        };
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(p.sample_gap(&mut rng), SimDuration::from_millis(10));
    }

    #[test]
    fn bounded_pareto_respects_bounds_and_is_heavy_tailed() {
        let d = SizeDist::BoundedPareto {
            alpha: 1.2,
            min_bytes: 10_000,
            max_bytes: 10_000_000,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let samples: Vec<u64> = (0..20_000).map(|_| d.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&s| (10_000..=10_000_000).contains(&s)));
        // Median hugs the minimum while the mean is pulled up by the
        // tail — the signature of a heavy-tailed distribution.
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2] as f64;
        let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        assert!(median < 2.5 * 10_000.0, "median={median}");
        assert!(mean > 2.0 * median, "mean={mean} median={median}");
    }

    #[test]
    fn degenerate_workloads_are_rejected() {
        let ok = WorkloadConfig::new(
            ArrivalProcess::Poisson { rate_per_sec: 10.0 },
            SizeDist::Fixed { bytes: 30_000 },
            SimDuration::from_millis(40),
            1,
        );
        assert!(ok.validate().is_ok());
        let mut bad = ok;
        bad.arrivals = ArrivalProcess::Poisson { rate_per_sec: 0.0 };
        assert!(bad.validate().is_err());
        let mut bad = ok;
        bad.arrivals = ArrivalProcess::Deterministic {
            interval: SimDuration::ZERO,
        };
        assert!(bad.validate().is_err());
        let mut bad = ok;
        bad.sizes = SizeDist::Fixed { bytes: 0 };
        assert!(bad.validate().is_err());
        let mut bad = ok;
        bad.sizes = SizeDist::BoundedPareto {
            alpha: 1.2,
            min_bytes: 1000,
            max_bytes: 999,
        };
        assert!(bad.validate().is_err());
        let mut bad = ok;
        bad.base_rtt = SimDuration::ZERO;
        assert!(bad.validate().is_err());
    }
}
