//! Time-series tracing: periodic samples of queue occupancy, per-flow
//! congestion windows, in-flight data, and cumulative delivery.
//!
//! The paper repeatedly reasons from traces ("we checked the traces of
//! our experiments and verified that the CUBIC flows were indeed not
//! synchronized", §3.2; the cwnd-limited regimes of Fig. 12). Enabling
//! a sample interval on [`crate::sim::SimConfig`] records the same
//! evidence here: per-interval throughput, cwnd sawtooths, and queue
//! dynamics, cheap enough to keep on for every experiment.

use crate::json::{self, Value};
use crate::time::SimTime;

/// One periodic sample of global and per-flow state.
#[derive(Debug, Clone)]
pub struct Sample {
    pub time: SimTime,
    /// Bottleneck queue occupancy, bytes.
    pub queue_bytes: u64,
    /// Per-flow congestion window, bytes (flow order = flow id).
    pub cwnd_bytes: Vec<u64>,
    /// Per-flow bytes in flight.
    pub inflight_bytes: Vec<u64>,
    /// Per-flow cumulative unique bytes delivered to the receiver.
    pub delivered_bytes: Vec<u64>,
}

/// Sampling controls for long runs: with `sample_interval` alone a
/// 60-second simulation accumulates an unbounded `Trace::samples` Vec
/// (and bloats disk-cache entries). A stride records only every Nth
/// interval and a cap stops sampling outright. The default (stride 1,
/// no cap) preserves the historical behavior bit-exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Record every `stride`-th sample interval (1 = every interval).
    pub stride: u32,
    /// Stop sampling after this many samples (`None` = unbounded).
    pub max_samples: Option<u64>,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            stride: 1,
            max_samples: None,
        }
    }
}

impl TraceConfig {
    /// True for the default config (which must not perturb the content
    /// hash of existing configurations — see `hash.rs`).
    pub fn is_default(&self) -> bool {
        *self == TraceConfig::default()
    }
}

/// A full trace: samples at a fixed interval.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    pub samples: Vec<Sample>,
}

impl Trace {
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Per-flow throughput between consecutive samples, bytes/sec:
    /// `(time of right sample, rates per flow)`.
    pub fn throughput_series(&self) -> Vec<(SimTime, Vec<f64>)> {
        self.samples
            .windows(2)
            .map(|w| {
                let dt = w[1].time.saturating_since(w[0].time).as_secs_f64();
                let rates = w[1]
                    .delivered_bytes
                    .iter()
                    .zip(&w[0].delivered_bytes)
                    .map(|(b, a)| {
                        if dt > 0.0 {
                            b.saturating_sub(*a) as f64 / dt
                        } else {
                            0.0
                        }
                    })
                    .collect();
                (w[1].time, rates)
            })
            .collect()
    }

    /// The queue-occupancy series `(time, bytes)`.
    pub fn queue_series(&self) -> Vec<(SimTime, u64)> {
        self.samples
            .iter()
            .map(|s| (s.time, s.queue_bytes))
            .collect()
    }

    /// The cwnd series of one flow `(time, bytes)`.
    pub fn cwnd_series(&self, flow: usize) -> Vec<(SimTime, u64)> {
        self.samples
            .iter()
            .map(|s| (s.time, s.cwnd_bytes[flow]))
            .collect()
    }

    /// Fraction of samples in which `flow` was cwnd-limited, i.e. its
    /// in-flight volume was within one MSS of its window (the regime
    /// annotation of the paper's Fig. 12).
    pub fn cwnd_limited_fraction(&self, flow: usize, mss: u64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let limited = self
            .samples
            .iter()
            .filter(|s| s.inflight_bytes[flow] + mss >= s.cwnd_bytes[flow])
            .count();
        Some(limited as f64 / self.samples.len() as f64)
    }
}

impl Sample {
    /// Serialize for the on-disk scenario result cache (inverse of
    /// [`Sample::from_json_value`]).
    pub fn to_json_value(&self) -> Value {
        let mut v = Value::object();
        v.set("time_ns", Value::U64(self.time.as_nanos()))
            .set("queue_bytes", Value::U64(self.queue_bytes))
            .set("cwnd_bytes", json::u64_array(&self.cwnd_bytes))
            .set("inflight_bytes", json::u64_array(&self.inflight_bytes))
            .set("delivered_bytes", json::u64_array(&self.delivered_bytes));
        v
    }

    /// Parse a sample serialized with [`Sample::to_json_value`].
    pub fn from_json_value(v: &Value) -> Result<Self, String> {
        Ok(Sample {
            time: SimTime(json::req_u64(v, "time_ns")?),
            queue_bytes: json::req_u64(v, "queue_bytes")?,
            cwnd_bytes: json::req_u64s(v, "cwnd_bytes")?,
            inflight_bytes: json::req_u64s(v, "inflight_bytes")?,
            delivered_bytes: json::req_u64s(v, "delivered_bytes")?,
        })
    }
}

impl Trace {
    /// Serialize the whole trace as a JSON array of samples.
    pub fn to_json_value(&self) -> Value {
        Value::Array(self.samples.iter().map(Sample::to_json_value).collect())
    }

    /// Parse a trace serialized with [`Trace::to_json_value`].
    pub fn from_json_value(v: &Value) -> Result<Self, String> {
        Ok(Trace {
            samples: v
                .as_array()
                .ok_or("trace must be an array")?
                .iter()
                .map(Sample::from_json_value)
                .collect::<Result<_, _>>()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn sample(t_s: f64, delivered: Vec<u64>, cwnd: Vec<u64>, inflight: Vec<u64>) -> Sample {
        Sample {
            time: SimTime::from_secs_f64(t_s),
            queue_bytes: 0,
            cwnd_bytes: cwnd,
            inflight_bytes: inflight,
            delivered_bytes: delivered,
        }
    }

    #[test]
    fn throughput_series_differentiates_delivery() {
        let trace = Trace {
            samples: vec![
                sample(0.0, vec![0], vec![10], vec![10]),
                sample(1.0, vec![1_000_000], vec![10], vec![10]),
                sample(2.0, vec![1_500_000], vec![10], vec![10]),
            ],
        };
        let ts = trace.throughput_series();
        assert_eq!(ts.len(), 2);
        assert!((ts[0].1[0] - 1e6).abs() < 1e-6);
        assert!((ts[1].1[0] - 5e5).abs() < 1e-6);
    }

    #[test]
    fn cwnd_limited_fraction_counts_binding_samples() {
        let trace = Trace {
            samples: vec![
                sample(0.0, vec![0], vec![3000], vec![3000]), // limited
                sample(1.0, vec![0], vec![3000], vec![1000]), // not
                sample(2.0, vec![0], vec![3000], vec![1600]), // within 1 MSS
            ],
        };
        let f = trace.cwnd_limited_fraction(0, 1500).unwrap();
        assert!((f - 2.0 / 3.0).abs() < 1e-12);
        assert!(Trace::default().cwnd_limited_fraction(0, 1500).is_none());
    }

    #[test]
    fn zero_dt_yields_zero_rate() {
        let t = SimTime::ZERO + SimDuration::from_millis(5);
        let trace = Trace {
            samples: vec![
                Sample {
                    time: t,
                    queue_bytes: 0,
                    cwnd_bytes: vec![1],
                    inflight_bytes: vec![0],
                    delivered_bytes: vec![0],
                },
                Sample {
                    time: t,
                    queue_bytes: 0,
                    cwnd_bytes: vec![1],
                    inflight_bytes: vec![0],
                    delivered_bytes: vec![100],
                },
            ],
        };
        assert_eq!(trace.throughput_series()[0].1[0], 0.0);
    }
}
