//! Fault injection: scheduled and seeded-random path impairments.
//!
//! The paper validates its model on a clean drop-tail path; related work
//! (Sarpkaya et al., Scherrer et al.) shows BBR's sharing behavior shifts
//! materially on impaired paths. A [`FaultSchedule`] attached to
//! [`crate::SimConfig`] lets every experiment run under non-ideal
//! conditions:
//!
//! * **random wire loss** on the forward (data) and/or reverse (ACK)
//!   path, applied *after* the bottleneck so it composes with queue
//!   drops the way real last-mile loss does;
//! * **link outages** ("flaps"): the bottleneck stops serving for a
//!   configured interval — packets keep queueing (and tail-dropping);
//! * **capacity steps/ramps**: the link rate changes mid-run;
//! * **delay spikes**: extra one-way delay on the forward path for a
//!   configured interval (also shifts the ACK).
//!
//! Scheduled items are compiled into `Event::Fault` entries on the
//! normal event queue; random losses draw from a dedicated RNG seeded by
//! [`FaultSchedule::seed`], so enabling faults never perturbs the
//! ACK-jitter stream and runs stay bit-for-bit reproducible.

use crate::error::ConfigError;
use crate::time::{SimDuration, SimTime};
use crate::units::Rate;

/// One compiled impairment, fired through the event queue.
#[derive(Debug, Clone, Copy)]
pub enum FaultAction {
    /// The bottleneck link stops serving packets.
    LinkDown,
    /// The bottleneck link resumes service.
    LinkUp,
    /// The bottleneck capacity changes to the given rate.
    SetRate(Rate),
    /// Extra forward-path delay begins.
    DelayStart(SimDuration),
    /// Extra forward-path delay ends.
    DelayEnd(SimDuration),
}

/// Declarative description of the path impairments for one run.
///
/// The default schedule is a no-op (clean path); builders add
/// impairments. Attach with [`crate::SimConfig::with_faults`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultSchedule {
    /// Probability each packet leaving the bottleneck is lost before the
    /// receiver (`[0, 1]`).
    pub loss_fwd: f64,
    /// Probability each ACK is lost on the reverse path (`[0, 1]`).
    pub loss_ack: f64,
    /// Seed for the loss RNG (independent of the ACK-jitter seed).
    pub seed: u64,
    /// Link outages: `(start, down_for)`.
    pub outages: Vec<(SimTime, SimDuration)>,
    /// Capacity steps: `(at, new_rate)`.
    pub rate_changes: Vec<(SimTime, Rate)>,
    /// Delay spikes: `(start, length, extra_one_way_delay)`.
    pub delay_spikes: Vec<(SimTime, SimDuration, SimDuration)>,
}

impl FaultSchedule {
    /// A clean path: no impairments.
    pub fn none() -> Self {
        Self::default()
    }

    /// Set the forward-path (data) random loss probability.
    pub fn with_loss(mut self, p: f64) -> Self {
        self.loss_fwd = p;
        self
    }

    /// Set the reverse-path (ACK) random loss probability.
    pub fn with_ack_loss(mut self, p: f64) -> Self {
        self.loss_ack = p;
        self
    }

    /// Set the loss-RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Add a link outage: the bottleneck serves nothing during
    /// `[at, at + down_for)`.
    pub fn with_outage(mut self, at: SimTime, down_for: SimDuration) -> Self {
        self.outages.push((at, down_for));
        self
    }

    /// Add a capacity step: the link rate becomes `rate` at `at`.
    pub fn with_rate_step(mut self, at: SimTime, rate: Rate) -> Self {
        self.rate_changes.push((at, rate));
        self
    }

    /// Add a linear capacity ramp from `from` to `to` over
    /// `[start, start + length)`, discretized into `steps` rate steps.
    pub fn with_rate_ramp(
        mut self,
        start: SimTime,
        length: SimDuration,
        steps: u32,
        from: Rate,
        to: Rate,
    ) -> Self {
        let steps = steps.max(1);
        for i in 0..steps {
            let frac = (i + 1) as f64 / steps as f64;
            let mbps = from.as_mbps() + (to.as_mbps() - from.as_mbps()) * frac;
            let at = start + length.mul_f64(i as f64 / steps as f64);
            self.rate_changes.push((at, Rate::from_mbps(mbps)));
        }
        self
    }

    /// Add a delay spike: `extra` one-way forward delay during
    /// `[at, at + length)`.
    pub fn with_delay_spike(
        mut self,
        at: SimTime,
        length: SimDuration,
        extra: SimDuration,
    ) -> Self {
        self.delay_spikes.push((at, length, extra));
        self
    }

    /// Whether this schedule changes nothing (the hot path skips all
    /// fault bookkeeping when true).
    pub fn is_noop(&self) -> bool {
        self.loss_fwd == 0.0
            && self.loss_ack == 0.0
            && self.outages.is_empty()
            && self.rate_changes.is_empty()
            && self.delay_spikes.is_empty()
    }

    /// Validate probabilities and intervals.
    pub fn validate(&self) -> Result<(), ConfigError> {
        for (path, p) in [("forward", self.loss_fwd), ("ack", self.loss_ack)] {
            if !(0.0..=1.0).contains(&p) {
                return Err(ConfigError::LossOutOfRange { path, value: p });
            }
        }
        for &(at, down) in &self.outages {
            if down == SimDuration::ZERO {
                return Err(ConfigError::EmptyFaultInterval { kind: "outage", at });
            }
        }
        for &(at, len, _) in &self.delay_spikes {
            if len == SimDuration::ZERO {
                return Err(ConfigError::EmptyFaultInterval {
                    kind: "delay spike",
                    at,
                });
            }
        }
        Ok(())
    }

    /// Compile into a time-sorted action list. Interval impairments
    /// become paired start/end actions; overlapping intervals compose
    /// (outages nest via a pause depth counter, delay spikes add).
    pub fn compile(&self) -> Vec<(SimTime, FaultAction)> {
        let mut timeline = Vec::with_capacity(
            2 * self.outages.len() + self.rate_changes.len() + 2 * self.delay_spikes.len(),
        );
        for &(at, down) in &self.outages {
            timeline.push((at, FaultAction::LinkDown));
            timeline.push((at + down, FaultAction::LinkUp));
        }
        for &(at, rate) in &self.rate_changes {
            timeline.push((at, FaultAction::SetRate(rate)));
        }
        for &(at, len, extra) in &self.delay_spikes {
            timeline.push((at, FaultAction::DelayStart(extra)));
            timeline.push((at + len, FaultAction::DelayEnd(extra)));
        }
        // Stable sort: simultaneous actions keep insertion order, so the
        // compiled timeline (and thus the run) is deterministic.
        timeline.sort_by_key(|(t, _)| *t);
        timeline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_noop_and_valid() {
        let f = FaultSchedule::none();
        assert!(f.is_noop());
        assert!(f.validate().is_ok());
        assert!(f.compile().is_empty());
    }

    #[test]
    fn loss_probability_bounds_are_enforced() {
        assert!(FaultSchedule::none().with_loss(0.0).validate().is_ok());
        assert!(FaultSchedule::none().with_loss(1.0).validate().is_ok());
        assert!(FaultSchedule::none().with_loss(1.5).validate().is_err());
        assert!(FaultSchedule::none().with_loss(-0.1).validate().is_err());
        assert!(FaultSchedule::none()
            .with_loss(f64::NAN)
            .validate()
            .is_err());
        assert!(FaultSchedule::none().with_ack_loss(2.0).validate().is_err());
    }

    #[test]
    fn zero_length_intervals_are_rejected() {
        let f = FaultSchedule::none().with_outage(SimTime::from_secs_f64(1.0), SimDuration::ZERO);
        assert!(f.validate().is_err());
        let f = FaultSchedule::none().with_delay_spike(
            SimTime::from_secs_f64(1.0),
            SimDuration::ZERO,
            SimDuration::from_millis(10),
        );
        assert!(f.validate().is_err());
    }

    #[test]
    fn compile_sorts_and_pairs_interval_actions() {
        let f = FaultSchedule::none()
            .with_outage(SimTime::from_secs_f64(2.0), SimDuration::from_secs_f64(1.0))
            .with_rate_step(SimTime::from_secs_f64(0.5), Rate::from_mbps(5.0))
            .with_delay_spike(
                SimTime::from_secs_f64(1.0),
                SimDuration::from_secs_f64(0.25),
                SimDuration::from_millis(20),
            );
        let t = f.compile();
        assert_eq!(t.len(), 5);
        let times: Vec<f64> = t.iter().map(|(at, _)| at.as_secs_f64()).collect();
        assert_eq!(times, vec![0.5, 1.0, 1.25, 2.0, 3.0]);
        assert!(matches!(t[0].1, FaultAction::SetRate(_)));
        assert!(matches!(t[1].1, FaultAction::DelayStart(_)));
        assert!(matches!(t[2].1, FaultAction::DelayEnd(_)));
        assert!(matches!(t[3].1, FaultAction::LinkDown));
        assert!(matches!(t[4].1, FaultAction::LinkUp));
    }

    #[test]
    fn rate_ramp_discretizes_linearly() {
        let f = FaultSchedule::none().with_rate_ramp(
            SimTime::from_secs_f64(10.0),
            SimDuration::from_secs_f64(4.0),
            4,
            Rate::from_mbps(40.0),
            Rate::from_mbps(20.0),
        );
        assert_eq!(f.rate_changes.len(), 4);
        let (at0, r0) = f.rate_changes[0];
        assert_eq!(at0, SimTime::from_secs_f64(10.0));
        assert!((r0.as_mbps() - 35.0).abs() < 1e-9);
        let (at3, r3) = f.rate_changes[3];
        assert_eq!(at3, SimTime::from_secs_f64(13.0));
        assert!((r3.as_mbps() - 20.0).abs() < 1e-9);
    }
}
