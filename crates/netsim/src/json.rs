//! Minimal JSON support: a value tree, a writer, and a strict parser.
//!
//! The build environment has no crates.io access, so instead of serde
//! the workspace uses this small hand-rolled module for everything that
//! reads or writes JSON: scenario round-trips in `bbrdom-experiments`
//! and the benchmark trajectory file (`BENCH_netsim.json`) emitted by
//! `bbrdom-bench`.
//!
//! Numbers keep their integer-ness: `u64`/`i64` values round-trip
//! bit-exactly (a plain `f64` representation would corrupt 64-bit
//! seeds), and floats are written with Rust's shortest-round-trip
//! formatting.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer (preferred for whole numbers).
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object. Keys are sorted (BTreeMap) so output is canonical.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Build an empty object.
    pub fn object() -> Value {
        Value::Object(BTreeMap::new())
    }

    /// Insert `key: value` (panics if `self` is not an object).
    pub fn set(&mut self, key: &str, value: Value) -> &mut Self {
        match self {
            Value::Object(map) => {
                map.insert(key.to_string(), value);
            }
            other => panic!("Value::set on non-object {other:?}"),
        }
        self
    }

    /// Member lookup; `None` for absent keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value as `f64` (integers coerce).
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(n) => Some(n as f64),
            Value::I64(n) => Some(n as f64),
            Value::F64(n) => Some(n),
            _ => None,
        }
    }

    /// Numeric value as `u64` (exact only).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(n) => Some(n),
            Value::I64(n) if n >= 0 => Some(n as u64),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Serialize to a compact JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::U64(n) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
            }
            Value::I64(n) => {
                let _ = fmt::Write::write_fmt(out, format_args!("{n}"));
            }
            Value::F64(n) => {
                if n.is_finite() {
                    // Rust's Display for f64 is shortest-round-trip; add a
                    // ".0" so integral floats stay floats on re-parse.
                    let s = format!("{n}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    // JSON has no NaN/Inf; null is the conventional stand-in.
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

/// Serialize a slice of floats as a JSON array.
pub fn f64_array(xs: &[f64]) -> Value {
    Value::Array(xs.iter().map(|&x| Value::F64(x)).collect())
}

/// Serialize a slice of unsigned integers as a JSON array.
pub fn u64_array(xs: &[u64]) -> Value {
    Value::Array(xs.iter().map(|&x| Value::U64(x)).collect())
}

/// Serialize an optional float (`None` → `null`).
pub fn opt_f64(x: Option<f64>) -> Value {
    match x {
        Some(v) => Value::F64(v),
        None => Value::Null,
    }
}

/// Required object member, with a useful error.
pub fn req<'a>(v: &'a Value, key: &str) -> Result<&'a Value, String> {
    v.get(key).ok_or_else(|| format!("missing '{key}'"))
}

/// Required numeric member.
pub fn req_f64(v: &Value, key: &str) -> Result<f64, String> {
    req(v, key)?
        .as_f64()
        .ok_or_else(|| format!("non-numeric '{key}'"))
}

/// Required unsigned-integer member.
pub fn req_u64(v: &Value, key: &str) -> Result<u64, String> {
    req(v, key)?
        .as_u64()
        .ok_or_else(|| format!("non-integer '{key}'"))
}

/// Required array-of-floats member.
pub fn req_f64s(v: &Value, key: &str) -> Result<Vec<f64>, String> {
    req(v, key)?
        .as_array()
        .ok_or_else(|| format!("'{key}' must be an array"))?
        .iter()
        .map(|x| x.as_f64().ok_or_else(|| format!("non-numeric '{key}'")))
        .collect()
}

/// Required array-of-unsigned-integers member.
pub fn req_u64s(v: &Value, key: &str) -> Result<Vec<u64>, String> {
    req(v, key)?
        .as_array()
        .ok_or_else(|| format!("'{key}' must be an array"))?
        .iter()
        .map(|x| x.as_u64().ok_or_else(|| format!("non-integer '{key}'")))
        .collect()
}

/// Optional numeric member: absent or `null` parses as `None` (the
/// writer side emits `null` for NaN/Inf too, so this is also the
/// tolerant reader for float fields).
pub fn opt_f64_member(v: &Value, key: &str) -> Result<Option<f64>, String> {
    match v.get(key) {
        None => Ok(None),
        Some(Value::Null) => Ok(None),
        Some(x) => x
            .as_f64()
            .map(Some)
            .ok_or_else(|| format!("non-numeric '{key}'")),
    }
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.error(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.error("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by anything this
                            // repo writes; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.error("unsupported \\u escape"))?;
                            out.push(c);
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is valid UTF-8).
                    let s = &self.bytes[self.pos..];
                    let ch_len = match s[0] {
                        b if b < 0x80 => 1,
                        b if b >= 0xF0 => 4,
                        b if b >= 0xE0 => 3,
                        _ => 2,
                    };
                    let chunk = std::str::from_utf8(&s[..ch_len])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    out.push_str(chunk);
                    self.pos += ch_len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>().map(Value::F64).map_err(|_| ParseError {
            offset: start,
            message: format!("invalid number '{text}'"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        for src in ["null", "true", "false", "0", "42", "-7", "\"hi\""] {
            let v = parse(src).unwrap();
            assert_eq!(v.to_json(), src);
        }
    }

    #[test]
    fn u64_seed_roundtrips_exactly() {
        let seed = u64::MAX - 3;
        let v = parse(&Value::U64(seed).to_json()).unwrap();
        assert_eq!(v.as_u64(), Some(seed));
    }

    #[test]
    fn float_roundtrips_bit_exactly() {
        for f in [0.1, 1.0 / 3.0, 1e-300, 123456.789, 2.0] {
            let v = parse(&Value::F64(f).to_json()).unwrap();
            assert_eq!(v.as_f64().unwrap().to_bits(), f.to_bits());
        }
    }

    #[test]
    fn object_and_array_roundtrip() {
        let mut v = Value::object();
        v.set("name", "bbr".into())
            .set("rtts", vec![10.0, 20.0].into())
            .set("seed", 7u64.into())
            .set("limit", Value::Null);
        let text = v.to_json();
        let back = parse(&text).unwrap();
        assert_eq!(back, v);
        assert_eq!(back.get("name").unwrap().as_str(), Some("bbr"));
        assert_eq!(back.get("rtts").unwrap().as_array().unwrap().len(), 2);
        assert!(back.get("limit").unwrap().is_null());
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "line1\nline\"2\"\\tab\there";
        let v = Value::Str(s.to_string());
        assert_eq!(parse(&v.to_json()).unwrap().as_str(), Some(s));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn whitespace_tolerated() {
        let v = parse(" { \"a\" : [ 1 , 2 ] , \"b\" : null } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
    }
}
