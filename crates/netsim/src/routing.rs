//! Lowering a validated [`Topology`] into the flat form the hot loop
//! consumes.
//!
//! The event loop never walks the topology graph. [`compile`] enumerates
//! the rated links into dense *queue slots* (one [`crate::queue::DropTailQueue`]
//! each) and flattens every route into a [`CompiledPath`]: the slot
//! sequence plus the propagation delay before, between and after the
//! serializing hops. Delay-only links contribute only to those delays —
//! they cost zero events. A flow whose path is `None` (the legacy
//! single-bottleneck configuration) takes the original one-queue fast
//! path untouched.

use std::sync::Arc;

use crate::error::ConfigError;
use crate::time::SimDuration;
use crate::topo::Topology;
use crate::units::Rate;

/// One route, flattened for the event loop.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledPath {
    /// Queue slots of the route's rated links, in traversal order.
    /// Never empty (validation requires a rated link per route).
    pub ser: Vec<u32>,
    /// Propagation accumulated before the first rated link (leading
    /// delay-only wires).
    pub pre_delay: SimDuration,
    /// `gaps[k]`: propagation between completing service at `ser[k]`
    /// and arriving at `ser[k + 1]`'s queue (the rated link's own delay
    /// plus any delay-only wires in between). Length `ser.len() - 1`.
    pub gaps: Vec<SimDuration>,
    /// Propagation after the last rated link completes service (its own
    /// delay plus trailing delay-only wires).
    pub post_delay: SimDuration,
    /// Total one-way route propagation (`pre + gaps + post`); the
    /// reverse (ACK) path is modeled as symmetric propagation with no
    /// serialization, matching the legacy reverse path.
    pub rev_delay: SimDuration,
}

impl CompiledPath {
    /// The slot whose queue this path's packets enter first.
    pub fn ingress_slot(&self) -> u32 {
        self.ser[0]
    }

    /// The slot that delivers to the receiver.
    pub fn last_slot(&self) -> u32 {
        *self.ser.last().expect("compiled path has a rated link")
    }

    /// Position of `slot` along this path (routes are ≤ a handful of
    /// hops, so a linear scan beats any map).
    pub fn hop_of(&self, slot: u32) -> usize {
        self.ser
            .iter()
            .position(|&s| s == slot)
            .expect("dequeue slot not on the flow's path")
    }
}

/// A fully lowered topology, ready to instantiate queues from.
#[derive(Debug, Clone)]
pub struct CompiledTopology {
    /// Per-slot `(rate, buffer_bytes)` for queue construction, indexed
    /// by queue slot (rated links in link order).
    pub queues: Vec<(Rate, u64)>,
    /// Link index → queue slot (`None` for delay-only links).
    pub link_slot: Vec<Option<u32>>,
    /// One compiled path per route, shared by the flows on it.
    pub paths: Vec<Arc<CompiledPath>>,
    /// Slot targeted by link-level faults (outage / capacity change).
    pub fault_slot: u32,
    /// Path index for open-loop workload flows, if routed.
    pub workload_path: Option<usize>,
}

/// Validate and lower `topo`. The only error source is
/// [`Topology::validate`]; a validated spec always compiles.
pub fn compile(topo: &Topology) -> Result<CompiledTopology, ConfigError> {
    topo.validate()?;
    let mut queues = Vec::new();
    let mut link_slot = Vec::with_capacity(topo.links.len());
    for l in &topo.links {
        link_slot.push(l.rate.map(|rate| {
            queues.push((rate, l.buffer_bytes));
            (queues.len() - 1) as u32
        }));
    }
    let paths = topo
        .routes
        .iter()
        .map(|route| {
            let mut ser = Vec::new();
            // segs[k] = propagation between rated hop k-1 and rated hop
            // k (segs[0] = before the first; the last = after the last).
            let mut segs = vec![SimDuration::ZERO];
            let mut rev_delay = SimDuration::ZERO;
            for &l in route {
                let link = &topo.links[l as usize];
                rev_delay = rev_delay + link.delay;
                match link_slot[l as usize] {
                    Some(slot) => {
                        ser.push(slot);
                        segs.push(link.delay);
                    }
                    None => {
                        let last = segs.last_mut().expect("segs never empty");
                        *last = *last + link.delay;
                    }
                }
            }
            let pre_delay = segs[0];
            let post_delay = segs[ser.len()];
            let gaps = segs[1..ser.len()].to_vec();
            Arc::new(CompiledPath {
                ser,
                pre_delay,
                gaps,
                post_delay,
                rev_delay,
            })
        })
        .collect();
    let fault_slot = match topo.fault_link {
        Some(l) => link_slot[l as usize].expect("validated fault link is rated"),
        None => {
            let l = topo
                .first_rated_link(0)
                .expect("validated route 0 has a rated link");
            link_slot[l as usize].expect("first rated link has a slot")
        }
    };
    Ok(CompiledTopology {
        queues,
        link_slot,
        paths,
        fault_slot,
        workload_path: topo.workload_route.map(|r| r as usize),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topo::LinkSpec;

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }

    #[test]
    fn dumbbell_compiles_to_one_slot_with_zero_delays() {
        let t = Topology::dumbbell(Rate::from_mbps(10.0), 30_000);
        let c = compile(&t).unwrap();
        assert_eq!(c.queues.len(), 1);
        assert_eq!(c.queues[0].1, 30_000);
        assert_eq!(c.link_slot, vec![None, Some(0), None]);
        assert_eq!(c.fault_slot, 0);
        assert_eq!(c.workload_path, Some(0));
        let p = &c.paths[0];
        assert_eq!(p.ser, vec![0]);
        assert!(p.gaps.is_empty());
        assert_eq!(p.pre_delay, SimDuration::ZERO);
        assert_eq!(p.post_delay, SimDuration::ZERO);
        assert_eq!(p.rev_delay, SimDuration::ZERO);
    }

    #[test]
    fn segment_delays_split_around_rated_hops() {
        // 0 -2ms-> 1 =3ms=> 2 -1ms-> 3 =4ms=> 4   (= rated, - wire)
        let t = Topology {
            n_nodes: 5,
            links: vec![
                LinkSpec::wire(0, 1, ms(2)),
                LinkSpec::rated(1, 2, Rate::from_mbps(10.0), ms(3), 30_000),
                LinkSpec::wire(2, 3, ms(1)),
                LinkSpec::rated(3, 4, Rate::from_mbps(5.0), ms(4), 30_000),
            ],
            routes: vec![vec![0, 1, 2, 3]],
            flow_routes: Vec::new(),
            workload_route: None,
            fault_link: None,
        };
        let c = compile(&t).unwrap();
        let p = &c.paths[0];
        assert_eq!(p.ser, vec![0, 1]);
        assert_eq!(p.pre_delay, ms(2));
        assert_eq!(p.gaps, vec![ms(4)]); // link 1's 3ms + wire 2's 1ms
        assert_eq!(p.post_delay, ms(4));
        assert_eq!(p.rev_delay, ms(10));
        assert_eq!(p.ingress_slot(), 0);
        assert_eq!(p.last_slot(), 1);
        assert_eq!(p.hop_of(1), 1);
        // Default fault target: first rated link of route 0.
        assert_eq!(c.fault_slot, 0);
    }

    #[test]
    fn parking_lot_routes_share_slots() {
        let t = Topology::parking_lot(3, Rate::from_mbps(10.0), ms(2), 30_000);
        let c = compile(&t).unwrap();
        assert_eq!(c.queues.len(), 3);
        assert_eq!(c.paths[0].ser, vec![0, 1, 2]);
        assert_eq!(c.paths[0].gaps, vec![ms(2), ms(2)]);
        assert_eq!(c.paths[0].rev_delay, ms(6));
        for h in 0..3u32 {
            let p = &c.paths[1 + h as usize];
            assert_eq!(p.ser, vec![h]);
            assert_eq!(p.rev_delay, ms(2));
        }
    }

    #[test]
    fn explicit_fault_link_selects_its_slot() {
        let mut t = Topology::parking_lot(3, Rate::from_mbps(10.0), ms(2), 30_000);
        t.fault_link = Some(2);
        let c = compile(&t).unwrap();
        assert_eq!(c.fault_slot, 2);
    }

    #[test]
    fn invalid_topology_fails_compile_with_typed_error() {
        let mut t = Topology::dumbbell(Rate::from_mbps(10.0), 30_000);
        t.routes[0] = vec![0, 5];
        match compile(&t) {
            Err(ConfigError::InvalidTopology { reason }) => {
                assert!(reason.contains("missing link"), "{reason}")
            }
            other => panic!("expected InvalidTopology, got {other:?}"),
        }
    }
}
