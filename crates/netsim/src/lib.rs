//! # bbrdom-netsim — packet-level discrete-event network simulator
//!
//! This crate is the experimental substrate for the IMC '22 reproduction
//! *"Are we heading towards a BBR-dominant Internet?"*. The paper ran its
//! experiments on a Linux testbed; we substitute a deterministic, seeded,
//! packet-level discrete-event simulator of the same dumbbell topology:
//!
//! ```text
//!  sender 1 ──┐
//!  sender 2 ──┤                ┌────────────┐
//!     ...     ├──► drop-tail ──►  bottleneck ├──► receivers ──► ACKs back
//!  sender N ──┘     queue B    │  link  C    │      (prop. delay per flow)
//!                              └────────────┘
//! ```
//!
//! Everything the paper's model consumes — bottleneck capacity `C`, buffer
//! size `B`, base RTT, drop-tail losses, queuing delay, per-flow buffer
//! occupancy — is produced here from first principles: packets are enqueued,
//! serialized at link rate, delivered after a propagation delay, and ACKed
//! on a per-packet basis (SACK-like), with dup-threshold loss detection,
//! fast retransmit, and RTO fallback at the senders.
//!
//! Congestion control is pluggable via the [`cc::CongestionControl`] trait;
//! the algorithms themselves (CUBIC, BBR, BBRv2, Copa, Vivace, NewReno)
//! live in the `bbrdom-cca` crate.
//!
//! Design notes (following the session's networking guides):
//! * **Event-driven, synchronous.** The workload is CPU-bound; no async
//!   runtime is used. A calendar queue (see [`event`]) orders events by
//!   `(time, seq)`, making runs bit-for-bit deterministic for a given seed.
//! * **No hidden global state.** A [`sim::Simulator`] owns everything.
//! * **Simplicity over cleverness** (smoltcp's stated design goal): plain
//!   structs, explicit state machines, no macro tricks.

pub mod aqm;
pub mod audit;
pub mod cc;
pub mod error;
pub mod event;
pub mod fault;
pub mod flow;
pub mod hash;
pub mod json;
pub mod packet;
pub mod queue;
pub mod routing;
pub mod sim;
pub mod stats;
pub mod stop;
pub mod time;
pub mod topo;
pub mod trace;
pub mod units;
pub mod workload;

pub use aqm::{CodelConfig, QueueDiscipline, RedConfig};
pub use cc::{AckSample, CongestionControl, FlowView};
pub use error::{AuditViolation, ConfigError, SimError};
pub use fault::{FaultAction, FaultSchedule};
pub use hash::{stable_digest, StableHash, StableHasher};
pub use packet::FlowId;
pub use sim::{FlowConfig, SimConfig, SimReport, Simulator};
pub use stats::{FctPercentiles, FlowReport, QueueReport};
pub use stop::EarlyStop;
pub use time::{SimDuration, SimTime};
pub use topo::{LinkSpec, Topology};
pub use trace::{Sample, Trace, TraceConfig};
pub use units::{Rate, MSS};
pub use workload::{ArrivalProcess, SizeDist, WorkloadConfig};
