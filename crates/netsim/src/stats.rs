//! Per-flow and per-queue measurement reports.
//!
//! These are the quantities the paper plots: per-flow average throughput
//! (goodput), queuing delay, per-flow buffer occupancy (`b_b`, `b_c` in the
//! model), loss/back-off timing (for CUBIC synchronization analysis), and
//! link utilization.

use crate::packet::FlowId;
use crate::time::SimTime;

/// Mutable per-flow counters, accumulated while the simulation runs.
#[derive(Debug, Default, Clone)]
pub struct FlowStats {
    /// Unique payload bytes accepted by the receiver inside the
    /// measurement window.
    pub goodput_bytes: u64,
    /// All payload bytes accepted (including before the window).
    pub goodput_bytes_total: u64,
    /// Bytes handed to the bottleneck (including retransmissions).
    pub sent_bytes: u64,
    /// Packets retransmitted.
    pub retransmits: u64,
    /// Packets declared lost (dup-threshold or RTO).
    pub lost_packets: u64,
    /// Congestion events (≤ one per loss round).
    pub congestion_events: u64,
    /// Retransmission timeouts fired.
    pub rtos: u64,
    /// Packets lost to injected forward-path wire loss *after* the
    /// bottleneck (fault injection; excludes queue drops).
    pub wire_lost_fwd: u64,
    /// ACKs lost to injected reverse-path wire loss (fault injection).
    pub wire_lost_ack: u64,
    /// ACKs for sequence numbers with no outstanding scoreboard entry
    /// (spurious-RTO duplicates).
    pub spurious_acks: u64,
    /// Times of congestion events (CUBIC back-offs) — used by experiment
    /// code to measure cross-flow loss synchronization.
    pub backoff_times: Vec<SimTime>,
    /// Largest congestion window reported by the CC algorithm.
    pub max_cwnd_bytes: u64,
    /// ∫ cwnd dt, for average-cwnd reporting.
    pub cwnd_time_integral: f64,
    /// Value of `cwnd_time_integral` at the measurement-window start, so
    /// the reported average covers only the window.
    pub cwnd_integral_mark: f64,
    /// Time of the last cwnd integral update.
    pub last_cwnd_update: SimTime,
    /// Sum and count of RTT samples (for mean RTT).
    pub rtt_sum: f64,
    pub rtt_samples: u64,
}

/// Immutable per-flow results returned by [`crate::sim::Simulator::run`].
#[derive(Debug, Clone)]
pub struct FlowReport {
    pub flow: FlowId,
    pub cc_name: String,
    /// Average goodput over the measurement window, bytes/sec.
    pub throughput_bytes_per_sec: f64,
    pub goodput_bytes: u64,
    pub sent_bytes: u64,
    pub retransmits: u64,
    pub lost_packets: u64,
    pub congestion_events: u64,
    pub rtos: u64,
    /// Data packets lost to injected wire loss after the bottleneck.
    pub wire_lost_fwd: u64,
    /// ACKs lost to injected reverse-path wire loss.
    pub wire_lost_ack: u64,
    /// Time-weighted average of this flow's bottleneck-buffer occupancy,
    /// bytes (the model's `b_c` / `b_b`).
    pub avg_queue_occupancy_bytes: f64,
    /// Minimum RTT observed by the sender (s).
    pub min_rtt_secs: Option<f64>,
    /// Mean of all RTT samples (s).
    pub mean_rtt_secs: Option<f64>,
    /// Time-weighted average congestion window (bytes).
    pub avg_cwnd_bytes: f64,
    pub max_cwnd_bytes: u64,
    /// For finite transfers: flow completion time (seconds from the
    /// flow's start). `None` for backlogged flows or incomplete ones.
    pub completion_time_secs: Option<f64>,
    /// Congestion-event (back-off) timestamps, seconds.
    pub backoff_times_secs: Vec<f64>,
}

impl FlowReport {
    /// Throughput in the paper's unit (Mbps).
    pub fn throughput_mbps(&self) -> f64 {
        self.throughput_bytes_per_sec * 8.0 / 1e6
    }
}

/// Bottleneck-queue results.
#[derive(Debug, Clone)]
pub struct QueueReport {
    /// Time-weighted average occupancy (bytes).
    pub avg_occupancy_bytes: f64,
    /// Average queuing delay (s) = average occupancy / link rate.
    pub avg_queuing_delay_secs: f64,
    pub peak_occupancy_bytes: u64,
    pub capacity_bytes: u64,
    pub dropped_packets: u64,
    /// Drops made by the AQM (RED early / CoDel head drops); the rest of
    /// `dropped_packets` are plain tail drops.
    pub aqm_drops: u64,
    pub enqueued_packets: u64,
    /// Fraction of link capacity carried as goodput by all flows.
    pub utilization: f64,
    /// (time s, flow) for every tail drop.
    pub drops: Vec<(f64, FlowId)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_mbps_conversion() {
        let r = FlowReport {
            flow: FlowId(0),
            cc_name: "test".into(),
            throughput_bytes_per_sec: 1_250_000.0, // 10 Mbps
            goodput_bytes: 0,
            sent_bytes: 0,
            retransmits: 0,
            lost_packets: 0,
            congestion_events: 0,
            rtos: 0,
            wire_lost_fwd: 0,
            wire_lost_ack: 0,
            avg_queue_occupancy_bytes: 0.0,
            min_rtt_secs: None,
            mean_rtt_secs: None,
            avg_cwnd_bytes: 0.0,
            max_cwnd_bytes: 0,
            completion_time_secs: None,
            backoff_times_secs: vec![],
        };
        assert!((r.throughput_mbps() - 10.0).abs() < 1e-9);
    }
}
