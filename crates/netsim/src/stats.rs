//! Per-flow and per-queue measurement reports.
//!
//! These are the quantities the paper plots: per-flow average throughput
//! (goodput), queuing delay, per-flow buffer occupancy (`b_b`, `b_c` in the
//! model), loss/back-off timing (for CUBIC synchronization analysis), and
//! link utilization.

use crate::json::{self, Value};
use crate::packet::FlowId;
use crate::time::SimTime;

/// Mutable per-flow counters, accumulated while the simulation runs.
#[derive(Debug, Default, Clone)]
pub struct FlowStats {
    /// Unique payload bytes accepted by the receiver inside the
    /// measurement window.
    pub goodput_bytes: u64,
    /// All payload bytes accepted (including before the window).
    pub goodput_bytes_total: u64,
    /// Bytes handed to the bottleneck (including retransmissions).
    pub sent_bytes: u64,
    /// Packets retransmitted.
    pub retransmits: u64,
    /// Packets declared lost (dup-threshold or RTO).
    pub lost_packets: u64,
    /// Congestion events (≤ one per loss round).
    pub congestion_events: u64,
    /// Retransmission timeouts fired.
    pub rtos: u64,
    /// Packets lost to injected forward-path wire loss *after* the
    /// bottleneck (fault injection; excludes queue drops).
    pub wire_lost_fwd: u64,
    /// ACKs lost to injected reverse-path wire loss (fault injection).
    pub wire_lost_ack: u64,
    /// ACKs for sequence numbers with no outstanding scoreboard entry
    /// (spurious-RTO duplicates).
    pub spurious_acks: u64,
    /// Times of congestion events (CUBIC back-offs) — used by experiment
    /// code to measure cross-flow loss synchronization.
    pub backoff_times: Vec<SimTime>,
    /// Largest congestion window reported by the CC algorithm.
    pub max_cwnd_bytes: u64,
    /// ∫ cwnd dt, for average-cwnd reporting.
    pub cwnd_time_integral: f64,
    /// Value of `cwnd_time_integral` at the measurement-window start, so
    /// the reported average covers only the window.
    pub cwnd_integral_mark: f64,
    /// Time of the last cwnd integral update.
    pub last_cwnd_update: SimTime,
    /// Sum and count of RTT samples (for mean RTT).
    pub rtt_sum: f64,
    pub rtt_samples: u64,
}

/// Immutable per-flow results returned by [`crate::sim::Simulator::run`].
#[derive(Debug, Clone)]
pub struct FlowReport {
    pub flow: FlowId,
    pub cc_name: String,
    /// Average goodput over the measurement window, bytes/sec.
    pub throughput_bytes_per_sec: f64,
    pub goodput_bytes: u64,
    pub sent_bytes: u64,
    pub retransmits: u64,
    pub lost_packets: u64,
    pub congestion_events: u64,
    pub rtos: u64,
    /// Data packets lost to injected wire loss after the bottleneck.
    pub wire_lost_fwd: u64,
    /// ACKs lost to injected reverse-path wire loss.
    pub wire_lost_ack: u64,
    /// Time-weighted average of this flow's bottleneck-buffer occupancy,
    /// bytes (the model's `b_c` / `b_b`).
    pub avg_queue_occupancy_bytes: f64,
    /// Minimum RTT observed by the sender (s).
    pub min_rtt_secs: Option<f64>,
    /// Mean of all RTT samples (s).
    pub mean_rtt_secs: Option<f64>,
    /// Time-weighted average congestion window (bytes).
    pub avg_cwnd_bytes: f64,
    pub max_cwnd_bytes: u64,
    /// For finite transfers: flow completion time (seconds from the
    /// flow's start). `None` for backlogged flows or incomplete ones.
    pub completion_time_secs: Option<f64>,
    /// Congestion-event (back-off) timestamps, seconds.
    pub backoff_times_secs: Vec<f64>,
}

impl FlowReport {
    /// Throughput in the paper's unit (Mbps).
    pub fn throughput_mbps(&self) -> f64 {
        self.throughput_bytes_per_sec * 8.0 / 1e6
    }
}

/// Flow-completion-time percentiles for one CCA's workload flows.
///
/// Produced per congestion-control algorithm when an open-loop
/// [`crate::workload::WorkloadConfig`] runs; percentiles use the
/// nearest-rank method on the completed-flow FCT samples.
#[derive(Debug, Clone, PartialEq)]
pub struct FctPercentiles {
    /// CC algorithm name (e.g. "cubic", "bbr").
    pub cc_name: String,
    /// Completed workload flows contributing samples.
    pub count: u64,
    pub p50_secs: f64,
    pub p95_secs: f64,
    pub p99_secs: f64,
}

impl FctPercentiles {
    /// Nearest-rank percentiles from an ascending-sorted FCT sample list.
    /// Returns `None` for an empty list.
    pub fn from_sorted(cc_name: &str, sorted_secs: &[f64]) -> Option<Self> {
        if sorted_secs.is_empty() {
            return None;
        }
        let rank = |p: f64| {
            // Nearest rank: smallest index i with (i+1)/n >= p/100.
            let n = sorted_secs.len();
            let i = ((p / 100.0 * n as f64).ceil() as usize).clamp(1, n);
            sorted_secs[i - 1]
        };
        Some(FctPercentiles {
            cc_name: cc_name.to_string(),
            count: sorted_secs.len() as u64,
            p50_secs: rank(50.0),
            p95_secs: rank(95.0),
            p99_secs: rank(99.0),
        })
    }

    /// Serialize for the on-disk scenario result cache (inverse of
    /// [`FctPercentiles::from_json_value`]).
    pub fn to_json_value(&self) -> Value {
        let mut v = Value::object();
        v.set("cc_name", self.cc_name.as_str().into())
            .set("count", Value::U64(self.count))
            .set("p50_secs", self.p50_secs.into())
            .set("p95_secs", self.p95_secs.into())
            .set("p99_secs", self.p99_secs.into());
        v
    }

    /// Parse a value serialized with [`FctPercentiles::to_json_value`].
    pub fn from_json_value(v: &Value) -> Result<Self, String> {
        Ok(FctPercentiles {
            cc_name: json::req(v, "cc_name")?
                .as_str()
                .ok_or("non-string 'cc_name'")?
                .to_string(),
            count: json::req_u64(v, "count")?,
            p50_secs: json::req_f64(v, "p50_secs")?,
            p95_secs: json::req_f64(v, "p95_secs")?,
            p99_secs: json::req_f64(v, "p99_secs")?,
        })
    }
}

/// Bottleneck-queue results.
#[derive(Debug, Clone)]
pub struct QueueReport {
    /// Time-weighted average occupancy (bytes).
    pub avg_occupancy_bytes: f64,
    /// Average queuing delay (s) = average occupancy / link rate.
    pub avg_queuing_delay_secs: f64,
    pub peak_occupancy_bytes: u64,
    pub capacity_bytes: u64,
    pub dropped_packets: u64,
    /// Drops made by the AQM (RED early / CoDel head drops); the rest of
    /// `dropped_packets` are plain tail drops.
    pub aqm_drops: u64,
    pub enqueued_packets: u64,
    /// Fraction of link capacity carried as goodput by all flows.
    pub utilization: f64,
    /// (time s, flow) for every tail drop.
    pub drops: Vec<(f64, FlowId)>,
}

impl FlowReport {
    /// Serialize for the on-disk scenario result cache (inverse of
    /// [`FlowReport::from_json_value`]). Floats round-trip bit-exactly.
    pub fn to_json_value(&self) -> Value {
        let mut v = Value::object();
        v.set("flow", Value::U64(self.flow.0 as u64))
            .set("cc_name", self.cc_name.as_str().into())
            .set(
                "throughput_bytes_per_sec",
                self.throughput_bytes_per_sec.into(),
            )
            .set("goodput_bytes", Value::U64(self.goodput_bytes))
            .set("sent_bytes", Value::U64(self.sent_bytes))
            .set("retransmits", Value::U64(self.retransmits))
            .set("lost_packets", Value::U64(self.lost_packets))
            .set("congestion_events", Value::U64(self.congestion_events))
            .set("rtos", Value::U64(self.rtos))
            .set("wire_lost_fwd", Value::U64(self.wire_lost_fwd))
            .set("wire_lost_ack", Value::U64(self.wire_lost_ack))
            .set(
                "avg_queue_occupancy_bytes",
                self.avg_queue_occupancy_bytes.into(),
            )
            .set("min_rtt_secs", json::opt_f64(self.min_rtt_secs))
            .set("mean_rtt_secs", json::opt_f64(self.mean_rtt_secs))
            .set("avg_cwnd_bytes", self.avg_cwnd_bytes.into())
            .set("max_cwnd_bytes", Value::U64(self.max_cwnd_bytes))
            .set(
                "completion_time_secs",
                json::opt_f64(self.completion_time_secs),
            )
            .set(
                "backoff_times_secs",
                json::f64_array(&self.backoff_times_secs),
            );
        v
    }

    /// Parse a report serialized with [`FlowReport::to_json_value`].
    pub fn from_json_value(v: &Value) -> Result<Self, String> {
        Ok(FlowReport {
            flow: FlowId(u32::try_from(json::req_u64(v, "flow")?).map_err(|_| "flow id overflow")?),
            cc_name: json::req(v, "cc_name")?
                .as_str()
                .ok_or("non-string 'cc_name'")?
                .to_string(),
            throughput_bytes_per_sec: json::req_f64(v, "throughput_bytes_per_sec")?,
            goodput_bytes: json::req_u64(v, "goodput_bytes")?,
            sent_bytes: json::req_u64(v, "sent_bytes")?,
            retransmits: json::req_u64(v, "retransmits")?,
            lost_packets: json::req_u64(v, "lost_packets")?,
            congestion_events: json::req_u64(v, "congestion_events")?,
            rtos: json::req_u64(v, "rtos")?,
            wire_lost_fwd: json::req_u64(v, "wire_lost_fwd")?,
            wire_lost_ack: json::req_u64(v, "wire_lost_ack")?,
            avg_queue_occupancy_bytes: json::req_f64(v, "avg_queue_occupancy_bytes")?,
            min_rtt_secs: json::opt_f64_member(v, "min_rtt_secs")?,
            mean_rtt_secs: json::opt_f64_member(v, "mean_rtt_secs")?,
            avg_cwnd_bytes: json::req_f64(v, "avg_cwnd_bytes")?,
            max_cwnd_bytes: json::req_u64(v, "max_cwnd_bytes")?,
            completion_time_secs: json::opt_f64_member(v, "completion_time_secs")?,
            backoff_times_secs: json::req_f64s(v, "backoff_times_secs")?,
        })
    }
}

impl QueueReport {
    /// Serialize for the on-disk scenario result cache (inverse of
    /// [`QueueReport::from_json_value`]).
    pub fn to_json_value(&self) -> Value {
        let mut v = Value::object();
        v.set("avg_occupancy_bytes", self.avg_occupancy_bytes.into())
            .set("avg_queuing_delay_secs", self.avg_queuing_delay_secs.into())
            .set(
                "peak_occupancy_bytes",
                Value::U64(self.peak_occupancy_bytes),
            )
            .set("capacity_bytes", Value::U64(self.capacity_bytes))
            .set("dropped_packets", Value::U64(self.dropped_packets))
            .set("aqm_drops", Value::U64(self.aqm_drops))
            .set("enqueued_packets", Value::U64(self.enqueued_packets))
            .set("utilization", self.utilization.into())
            .set(
                "drops",
                Value::Array(
                    self.drops
                        .iter()
                        .map(|&(t, flow)| {
                            Value::Array(vec![Value::F64(t), Value::U64(flow.0 as u64)])
                        })
                        .collect(),
                ),
            );
        v
    }

    /// Parse a report serialized with [`QueueReport::to_json_value`].
    pub fn from_json_value(v: &Value) -> Result<Self, String> {
        let drops = json::req(v, "drops")?
            .as_array()
            .ok_or("'drops' must be an array")?
            .iter()
            .map(|pair| {
                let pair = pair
                    .as_array()
                    .filter(|p| p.len() == 2)
                    .ok_or("each drop must be a [time, flow] pair")?;
                let t = pair[0].as_f64().ok_or("non-numeric drop time")?;
                let id = pair[1].as_u64().ok_or("non-integer drop flow")?;
                Ok((
                    t,
                    FlowId(u32::try_from(id).map_err(|_| "drop flow id overflow")?),
                ))
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(QueueReport {
            avg_occupancy_bytes: json::req_f64(v, "avg_occupancy_bytes")?,
            avg_queuing_delay_secs: json::req_f64(v, "avg_queuing_delay_secs")?,
            peak_occupancy_bytes: json::req_u64(v, "peak_occupancy_bytes")?,
            capacity_bytes: json::req_u64(v, "capacity_bytes")?,
            dropped_packets: json::req_u64(v, "dropped_packets")?,
            aqm_drops: json::req_u64(v, "aqm_drops")?,
            enqueued_packets: json::req_u64(v, "enqueued_packets")?,
            utilization: json::req_f64(v, "utilization")?,
            drops,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_mbps_conversion() {
        let r = FlowReport {
            flow: FlowId(0),
            cc_name: "test".into(),
            throughput_bytes_per_sec: 1_250_000.0, // 10 Mbps
            goodput_bytes: 0,
            sent_bytes: 0,
            retransmits: 0,
            lost_packets: 0,
            congestion_events: 0,
            rtos: 0,
            wire_lost_fwd: 0,
            wire_lost_ack: 0,
            avg_queue_occupancy_bytes: 0.0,
            min_rtt_secs: None,
            mean_rtt_secs: None,
            avg_cwnd_bytes: 0.0,
            max_cwnd_bytes: 0,
            completion_time_secs: None,
            backoff_times_secs: vec![],
        };
        assert!((r.throughput_mbps() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn fct_percentiles_use_nearest_rank() {
        let sorted: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let p = FctPercentiles::from_sorted("cubic", &sorted).unwrap();
        assert_eq!(p.count, 100);
        assert_eq!(p.p50_secs, 50.0);
        assert_eq!(p.p95_secs, 95.0);
        assert_eq!(p.p99_secs, 99.0);
        // Tiny sample: every percentile is the single element.
        let one = FctPercentiles::from_sorted("bbr", &[0.25]).unwrap();
        assert_eq!(
            (one.p50_secs, one.p95_secs, one.p99_secs),
            (0.25, 0.25, 0.25)
        );
        assert!(FctPercentiles::from_sorted("bbr", &[]).is_none());
    }

    #[test]
    fn fct_percentiles_round_trip_through_json() {
        let p = FctPercentiles {
            cc_name: "bbr".into(),
            count: 42,
            p50_secs: 0.031_25,
            p95_secs: 0.75,
            p99_secs: 1.625,
        };
        let back = FctPercentiles::from_json_value(&p.to_json_value()).unwrap();
        assert_eq!(back, p);
    }
}
