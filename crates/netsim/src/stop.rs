//! Convergence-aware early termination.
//!
//! NE sweeps run hundreds of fixed-horizon simulations whose interesting
//! question — the steady-state goodput split — is usually settled long
//! before the horizon. An opt-in [`EarlyStop`] policy watches per-flow
//! goodput over sliding windows and ends the run once every flow's
//! window-to-window relative delta has stayed under `epsilon` for
//! `dwell` consecutive windows. The report then carries the *effective*
//! horizon ([`crate::sim::SimReport::effective_duration_secs`]) so all
//! window-averaged quantities are normalized by the time actually
//! simulated.
//!
//! The policy is part of the run's identity: `hash.rs` folds it into the
//! [`crate::sim::SimConfig`] content hash (only when set, so existing
//! fixed-horizon digests are unchanged), which keeps early-stopped and
//! fixed-horizon results from ever aliasing in the scenario cache.

use crate::error::ConfigError;
use crate::time::SimDuration;

/// An opt-in steady-state stop policy (see module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EarlyStop {
    /// Width of each goodput measurement window.
    pub window: SimDuration,
    /// Maximum relative window-to-window goodput delta that still counts
    /// as "steady" for a flow.
    pub epsilon: f64,
    /// Number of consecutive steady windows (across *all* flows) required
    /// before the run stops.
    pub dwell: u32,
    /// Never stop before this much simulated time, regardless of how
    /// steady the flows look (slow-start transients can be flat).
    pub min_time: SimDuration,
}

impl EarlyStop {
    /// Policy with the given threshold and dwell, a 1-second window, and
    /// a 3-second minimum horizon.
    pub fn new(epsilon: f64, dwell: u32) -> Self {
        EarlyStop {
            window: SimDuration::from_secs_f64(1.0),
            epsilon,
            dwell,
            min_time: SimDuration::from_secs_f64(3.0),
        }
    }

    pub fn with_window(mut self, window: SimDuration) -> Self {
        self.window = window;
        self
    }

    pub fn with_min_time(mut self, min_time: SimDuration) -> Self {
        self.min_time = min_time;
        self
    }

    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.window == SimDuration::ZERO {
            return Err(ConfigError::NonPositive {
                field: "early-stop window",
            });
        }
        // `NaN` fails both arms, so a degenerate tolerance is rejected.
        if self.epsilon.is_nan() || self.epsilon <= 0.0 {
            return Err(ConfigError::NonPositive {
                field: "early-stop epsilon",
            });
        }
        if self.dwell == 0 {
            return Err(ConfigError::NonPositive {
                field: "early-stop dwell",
            });
        }
        Ok(())
    }
}

/// Live state of the steady-state detector during one run.
#[derive(Debug)]
pub(crate) struct ConvergenceDetector {
    /// `goodput_bytes_total` per flow at the previous check.
    prev_totals: Vec<u64>,
    /// Windowed goodput rate per flow at the previous check (bytes/sec);
    /// `None` until two windows have elapsed.
    prev_rates: Option<Vec<f64>>,
    /// Consecutive steady windows so far.
    streak: u32,
    /// Rate floor (bytes/sec) below which two windows compare equal — one
    /// MSS per window, so idle or barely-active flows don't flap the
    /// relative delta between 0 and 1.
    floor: f64,
}

impl ConvergenceDetector {
    pub(crate) fn new(n_flows: usize, mss: u64, window: SimDuration) -> Self {
        let window_secs = window.as_secs_f64().max(f64::MIN_POSITIVE);
        ConvergenceDetector {
            prev_totals: vec![0; n_flows],
            prev_rates: None,
            streak: 0,
            floor: mss as f64 / window_secs,
        }
    }

    /// Feed the per-flow cumulative goodput counters at a window boundary.
    /// Returns `true` once `dwell` consecutive windows were steady.
    pub(crate) fn observe(
        &mut self,
        totals: Vec<u64>,
        window_secs: f64,
        policy: &EarlyStop,
    ) -> bool {
        let rates: Vec<f64> = totals
            .iter()
            .zip(&self.prev_totals)
            .map(|(&cur, &prev)| cur.saturating_sub(prev) as f64 / window_secs)
            .collect();
        let steady = match &self.prev_rates {
            None => false,
            Some(prev) => rates.iter().zip(prev).all(|(&cur, &old)| {
                let scale = cur.max(old).max(self.floor);
                (cur - old).abs() / scale <= policy.epsilon
            }),
        };
        self.streak = if steady { self.streak + 1 } else { 0 };
        self.prev_totals = totals;
        self.prev_rates = Some(rates);
        self.streak >= policy.dwell
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(epsilon: f64, dwell: u32) -> EarlyStop {
        EarlyStop::new(epsilon, dwell)
    }

    #[test]
    fn validate_rejects_degenerate_policies() {
        assert!(policy(0.05, 3).validate().is_ok());
        assert!(policy(0.0, 3).validate().is_err());
        assert!(policy(0.05, 0).validate().is_err());
        assert!(policy(0.05, 3)
            .with_window(SimDuration::ZERO)
            .validate()
            .is_err());
    }

    #[test]
    fn detector_requires_dwell_consecutive_steady_windows() {
        let p = policy(0.05, 2);
        let mut d = ConvergenceDetector::new(1, 1500, p.window);
        // Window 1: first rate, nothing to compare against yet.
        assert!(!d.observe(vec![1_000_000u64], 1.0, &p));
        // Window 2: steady (same rate) → streak 1 of 2.
        assert!(!d.observe(vec![2_000_000u64], 1.0, &p));
        // Window 3: steady again → streak 2 → converged.
        assert!(d.observe(vec![3_000_000u64], 1.0, &p));
    }

    #[test]
    fn a_rate_jump_resets_the_streak() {
        let p = policy(0.05, 2);
        let mut d = ConvergenceDetector::new(1, 1500, p.window);
        assert!(!d.observe(vec![1_000_000u64], 1.0, &p));
        assert!(!d.observe(vec![2_000_000u64], 1.0, &p));
        // 50% jump: not steady, streak resets.
        assert!(!d.observe(vec![3_500_000u64], 1.0, &p));
        assert!(!d.observe(vec![5_000_000u64], 1.0, &p));
        assert!(d.observe(vec![6_500_000u64], 1.0, &p));
    }

    #[test]
    fn idle_flows_compare_steady_via_the_floor() {
        let p = policy(0.05, 1);
        let mut d = ConvergenceDetector::new(2, 1500, p.window);
        assert!(!d.observe(vec![0u64, 1_000_000], 1.0, &p));
        // Flow 0 stays idle: 0-vs-0 must not divide by zero or flap.
        assert!(d.observe(vec![0u64, 2_000_000], 1.0, &p));
    }

    #[test]
    fn any_single_flow_breaks_convergence() {
        let p = policy(0.05, 1);
        let mut d = ConvergenceDetector::new(2, 1500, p.window);
        assert!(!d.observe(vec![1_000_000u64, 1_000_000], 1.0, &p));
        // Flow 1 doubles its rate while flow 0 is steady.
        assert!(!d.observe(vec![2_000_000u64, 3_000_000], 1.0, &p));
    }
}
