//! The bottleneck: a byte-capacity drop-tail FIFO queue feeding a
//! fixed-rate link.
//!
//! Besides forwarding packets, the queue keeps the measurements the
//! paper's model is validated against: time-weighted average occupancy
//! (total and per flow — the model's `b_b` and `b_c`), drop counts, and a
//! log of drop timestamps used to detect CUBIC loss synchronization.

use crate::aqm::{CodelState, QueueDiscipline, RedState};
use crate::packet::{FlowId, Packet};
use crate::time::{SimDuration, SimTime};
use crate::units::{Rate, MSS};
use std::collections::VecDeque;

/// A recorded tail-drop event.
#[derive(Debug, Clone, Copy)]
pub struct DropRecord {
    pub time: SimTime,
    pub flow: FlowId,
}

/// Drop-tail FIFO with byte-granularity capacity accounting.
#[derive(Debug)]
pub struct DropTailQueue {
    /// Link rate draining this queue.
    rate: Rate,
    /// Maximum queued bytes (excludes the packet in service on the link).
    capacity_bytes: u64,
    queue: VecDeque<Packet>,
    /// Enqueue timestamps, parallel to `queue`. Only maintained when the
    /// discipline needs sojourn times (CoDel); empty otherwise.
    enqueue_times: VecDeque<SimTime>,
    /// Whether `enqueue_times` is maintained.
    track_sojourn: bool,
    queued_bytes: u64,
    /// Per-flow queued bytes (indexed by `FlowId`).
    per_flow_bytes: Vec<u64>,
    /// `per_flow_bytes` shadowed as f64 (always exact: packet-size sums
    /// stay far below 2^53), so the integral loop is pure float math the
    /// compiler can vectorize.
    per_flow_bytes_f64: Vec<f64>,
    /// The packet currently being serialized on the link, if any.
    in_service: Option<Packet>,
    /// Cached serialization time of one MSS at `rate`.
    ser_mss: SimDuration,
    /// Outage depth: while > 0 the link starts no new service (fault
    /// injection; overlapping outages nest). The packet already in
    /// service finishes serializing.
    paused: u32,
    /// Queue discipline and AQM state.
    discipline: QueueDiscipline,
    red: RedState,
    codel: CodelState,
    /// Drops made by the AQM (subset of `dropped_packets`).
    aqm_drops: u64,

    // --- statistics ---
    last_change: SimTime,
    /// ∫ queue_bytes dt (total), for time-weighted average occupancy.
    byte_time_integral: f64,
    /// ∫ queue_bytes dt per flow.
    per_flow_integral: Vec<f64>,
    /// Integral snapshots at the measurement-window start (zero unless
    /// [`DropTailQueue::mark_measure_start`] was called), so averages can
    /// cover only the window.
    measure_mark_total: f64,
    measure_mark_per_flow: Vec<f64>,
    /// Peak queued bytes observed.
    peak_bytes: u64,
    drops: Vec<DropRecord>,
    enqueued_packets: u64,
    dropped_packets: u64,
    /// Per-flow packet counters for the conservation audit: every packet
    /// offered ends up exactly once in dropped, serviced, still-queued,
    /// or in-service (see [`crate::audit`]).
    per_flow_offered: Vec<u64>,
    per_flow_dropped: Vec<u64>,
    per_flow_serviced: Vec<u64>,
    /// Bytes that completed serialization on this link (total, and the
    /// snapshot at the measurement-window start) — the per-hop
    /// utilization numerator for multi-hop topologies.
    serviced_bytes: u64,
    serviced_bytes_mark: u64,
}

impl DropTailQueue {
    pub fn new(rate: Rate, capacity_bytes: u64, n_flows: usize) -> Self {
        Self::with_discipline(rate, capacity_bytes, n_flows, QueueDiscipline::DropTail)
    }

    pub fn with_discipline(
        rate: Rate,
        capacity_bytes: u64,
        n_flows: usize,
        discipline: QueueDiscipline,
    ) -> Self {
        assert!(capacity_bytes > 0, "queue capacity must be positive");
        DropTailQueue {
            rate,
            capacity_bytes,
            discipline,
            red: RedState::default(),
            codel: CodelState::default(),
            aqm_drops: 0,
            queue: VecDeque::new(),
            enqueue_times: VecDeque::new(),
            track_sojourn: matches!(discipline, QueueDiscipline::Codel(_)),
            queued_bytes: 0,
            per_flow_bytes: vec![0; n_flows],
            per_flow_bytes_f64: vec![0.0; n_flows],
            in_service: None,
            ser_mss: rate.serialization_time(MSS),
            paused: 0,
            last_change: SimTime::ZERO,
            byte_time_integral: 0.0,
            per_flow_integral: vec![0.0; n_flows],
            measure_mark_total: 0.0,
            measure_mark_per_flow: vec![0.0; n_flows],
            peak_bytes: 0,
            drops: Vec::new(),
            enqueued_packets: 0,
            dropped_packets: 0,
            per_flow_offered: vec![0; n_flows],
            per_flow_dropped: vec![0; n_flows],
            per_flow_serviced: vec![0; n_flows],
            serviced_bytes: 0,
            serviced_bytes_mark: 0,
        }
    }

    /// Link rate.
    pub fn rate(&self) -> Rate {
        self.rate
    }

    /// Serialization time of `bytes` on this link. Memoized for the
    /// common MSS-sized packet (one f64 divide per dequeue otherwise);
    /// other sizes fall through to the identical [`Rate`] computation.
    #[inline]
    pub fn serialization_time(&self, bytes: u64) -> SimDuration {
        if bytes == MSS {
            self.ser_mss
        } else {
            self.rate.serialization_time(bytes)
        }
    }

    /// Configured capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Bytes currently queued (not counting the packet in service).
    pub fn queued_bytes(&self) -> u64 {
        self.queued_bytes
    }

    /// Bytes currently queued belonging to `flow`.
    pub fn queued_bytes_of(&self, flow: FlowId) -> u64 {
        self.per_flow_bytes[flow.index()]
    }

    /// Whether the link is serializing a packet right now.
    pub fn link_busy(&self) -> bool {
        self.in_service.is_some()
    }

    fn advance_integrals(&mut self, now: SimTime) {
        // Integer zero-check first: skipping the ns→secs division on
        // same-instant calls is exact (dt > 0 iff the ns delta is > 0).
        let elapsed = now.saturating_since(self.last_change);
        if elapsed.as_nanos() == 0 {
            return;
        }
        let dt = elapsed.as_secs_f64();
        self.last_change = now;
        // Empty queue: every term would be `x + 0.0`, which reproduces
        // `x` bit-for-bit for these non-negative integrals, so the idle
        // case is O(1) instead of O(flows).
        if self.queued_bytes == 0 {
            return;
        }
        self.byte_time_integral += self.queued_bytes as f64 * dt;
        for (acc, b) in self
            .per_flow_integral
            .iter_mut()
            .zip(self.per_flow_bytes_f64.iter())
        {
            *acc += *b * dt;
        }
    }

    /// Offer a packet to the bottleneck at time `now`.
    ///
    /// Returns [`Offer::StartService`] if the link was idle — the packet
    /// goes straight into service and the caller must schedule a
    /// `LinkDequeue` event one serialization time later. Otherwise the
    /// packet is queued, or dropped if the queue is full.
    pub fn offer(&mut self, now: SimTime, pkt: Packet) -> Offer {
        self.advance_integrals(now);
        self.per_flow_offered[pkt.flow.index()] += 1;
        if self.paused == 0 && self.in_service.is_none() {
            self.in_service = Some(pkt);
            return Offer::StartService;
        }
        // RED: early-drop decision on arrival, before tail-drop.
        if let QueueDiscipline::Red(cfg) = self.discipline {
            if self.red.on_arrival(&cfg, self.queued_bytes) {
                self.dropped_packets += 1;
                self.aqm_drops += 1;
                self.per_flow_dropped[pkt.flow.index()] += 1;
                self.drops.push(DropRecord {
                    time: now,
                    flow: pkt.flow,
                });
                return Offer::Dropped;
            }
        }
        if self.queued_bytes + pkt.size <= self.capacity_bytes {
            self.queued_bytes += pkt.size;
            self.per_flow_bytes[pkt.flow.index()] += pkt.size;
            self.per_flow_bytes_f64[pkt.flow.index()] += pkt.size as f64;
            self.peak_bytes = self.peak_bytes.max(self.queued_bytes);
            self.enqueued_packets += 1;
            self.queue.push_back(pkt);
            if self.track_sojourn {
                self.enqueue_times.push_back(now);
            }
            Offer::Queued
        } else {
            self.dropped_packets += 1;
            self.per_flow_dropped[pkt.flow.index()] += 1;
            self.drops.push(DropRecord {
                time: now,
                flow: pkt.flow,
            });
            Offer::Dropped
        }
    }

    /// The link finished serializing the packet in service.
    ///
    /// Returns the finished packet plus the size of the next packet now
    /// entering service (`None` if the link goes idle) so the caller can
    /// schedule the next `LinkDequeue`.
    pub fn service_complete(&mut self, now: SimTime) -> (Packet, Option<u64>) {
        let finished = self
            .in_service
            .take()
            .expect("service_complete on an idle link");
        self.advance_integrals(now);
        self.per_flow_serviced[finished.flow.index()] += 1;
        self.serviced_bytes += finished.size;
        if self.paused > 0 {
            // Link is down: the packet already on the wire finishes, but
            // nothing new enters service until `resume`.
            return (finished, None);
        }
        let next = self.start_next(now);
        (finished, next)
    }

    /// Pull the next packet (skipping CoDel head drops) into service.
    /// Requires an idle, unpaused link; returns the new in-service
    /// packet's size so the caller can schedule its `LinkDequeue`.
    fn start_next(&mut self, now: SimTime) -> Option<u64> {
        debug_assert!(self.in_service.is_none() && self.paused == 0);
        loop {
            match self.queue.pop_front() {
                Some(pkt) => {
                    self.queued_bytes -= pkt.size;
                    self.per_flow_bytes[pkt.flow.index()] -= pkt.size;
                    self.per_flow_bytes_f64[pkt.flow.index()] -= pkt.size as f64;
                    // CoDel: head-drop decision at dequeue time.
                    if let QueueDiscipline::Codel(cfg) = self.discipline {
                        let enqueued_at = self
                            .enqueue_times
                            .pop_front()
                            .expect("enqueue_times in sync with queue");
                        let sojourn = now.saturating_since(enqueued_at);
                        if self.codel.on_dequeue(&cfg, now, sojourn) {
                            self.dropped_packets += 1;
                            self.aqm_drops += 1;
                            self.per_flow_dropped[pkt.flow.index()] += 1;
                            self.drops.push(DropRecord {
                                time: now,
                                flow: pkt.flow,
                            });
                            continue;
                        }
                    }
                    let size = pkt.size;
                    self.in_service = Some(pkt);
                    return Some(size);
                }
                None => return None,
            }
        }
    }

    /// Fault injection: the link goes down. Nested calls stack; the
    /// packet currently being serialized (if any) still completes.
    pub fn pause(&mut self, now: SimTime) {
        self.advance_integrals(now);
        self.paused += 1;
    }

    /// Fault injection: one `pause` level ends. When the last level
    /// clears and the link is idle, the head-of-line packet enters
    /// service; its size is returned so the caller schedules the
    /// corresponding `LinkDequeue`.
    pub fn resume(&mut self, now: SimTime) -> Option<u64> {
        debug_assert!(self.paused > 0, "resume without matching pause");
        self.paused = self.paused.saturating_sub(1);
        if self.paused == 0 && self.in_service.is_none() {
            self.advance_integrals(now);
            self.start_next(now)
        } else {
            None
        }
    }

    /// Whether the link is currently paused by an outage.
    pub fn is_paused(&self) -> bool {
        self.paused > 0
    }

    /// Fault injection: change the link capacity. The packet currently
    /// in service finishes at the old rate (its `LinkDequeue` is already
    /// scheduled); subsequent packets serialize at the new rate.
    pub fn set_rate(&mut self, rate: Rate) {
        self.rate = rate;
        self.ser_mss = rate.serialization_time(MSS);
    }

    /// Drops made by the AQM (RED early drops + CoDel head drops),
    /// excluded from which are plain tail drops.
    pub fn aqm_drops(&self) -> u64 {
        self.aqm_drops
    }

    /// The configured discipline.
    pub fn discipline(&self) -> QueueDiscipline {
        self.discipline
    }

    /// Finalize integrals at simulation end.
    pub fn finalize(&mut self, now: SimTime) {
        self.advance_integrals(now);
    }

    /// Snapshot the occupancy integrals at the measurement-window start.
    /// After this, the `avg_occupancy*` accessors average over
    /// `[mark, finalize]` instead of `[0, finalize]`.
    pub fn mark_measure_start(&mut self, t: SimTime) {
        self.advance_integrals(t);
        self.measure_mark_total = self.byte_time_integral;
        self.measure_mark_per_flow
            .copy_from_slice(&self.per_flow_integral);
        self.serviced_bytes_mark = self.serviced_bytes;
    }

    /// Bytes this link finished serializing inside the measurement
    /// window (`[mark, now]`, or since t=0 if no mark was set).
    pub fn serviced_bytes_in_window(&self) -> u64 {
        self.serviced_bytes - self.serviced_bytes_mark
    }

    /// Time-weighted average queue occupancy in bytes over the
    /// measurement window (caller provides the window length used for
    /// normalization; the window is `[0, finalize]` unless
    /// [`Self::mark_measure_start`] moved its start).
    pub fn avg_occupancy_bytes(&self, window_secs: f64) -> f64 {
        if window_secs <= 0.0 {
            return 0.0;
        }
        (self.byte_time_integral - self.measure_mark_total) / window_secs
    }

    /// Time-weighted average occupancy of one flow over the measurement
    /// window, in bytes.
    pub fn avg_occupancy_bytes_of(&self, flow: FlowId, window_secs: f64) -> f64 {
        if window_secs <= 0.0 {
            return 0.0;
        }
        (self.per_flow_integral[flow.index()] - self.measure_mark_per_flow[flow.index()])
            / window_secs
    }

    pub fn peak_bytes(&self) -> u64 {
        self.peak_bytes
    }

    pub fn drops(&self) -> &[DropRecord] {
        &self.drops
    }

    pub fn dropped_packets(&self) -> u64 {
        self.dropped_packets
    }

    pub fn enqueued_packets(&self) -> u64 {
        self.enqueued_packets
    }

    /// Packets `flow` has offered to the bottleneck.
    pub fn offered_packets_of(&self, flow: FlowId) -> u64 {
        self.per_flow_offered[flow.index()]
    }

    /// Packets of `flow` dropped at the bottleneck (tail + AQM).
    pub fn dropped_packets_of(&self, flow: FlowId) -> u64 {
        self.per_flow_dropped[flow.index()]
    }

    /// Packets of `flow` that completed serialization on the link.
    pub fn serviced_packets_of(&self, flow: FlowId) -> u64 {
        self.per_flow_serviced[flow.index()]
    }

    /// The flow whose packet is currently being serialized, if any.
    pub fn in_service_flow(&self) -> Option<FlowId> {
        self.in_service.as_ref().map(|p| p.flow)
    }

    /// Extend the per-flow accounting arrays to cover `n_flows` flows.
    /// Used by the open-loop workload when a spawned flow outgrows the
    /// slot table; existing counters and integrals are untouched.
    pub(crate) fn grow_to(&mut self, n_flows: usize) {
        if n_flows <= self.per_flow_bytes.len() {
            return;
        }
        self.per_flow_bytes.resize(n_flows, 0);
        self.per_flow_bytes_f64.resize(n_flows, 0.0);
        self.per_flow_integral.resize(n_flows, 0.0);
        self.measure_mark_per_flow.resize(n_flows, 0.0);
        self.per_flow_offered.resize(n_flows, 0);
        self.per_flow_dropped.resize(n_flows, 0);
        self.per_flow_serviced.resize(n_flows, 0);
    }

    /// Reset the conservation counters of a quiescent recycled slot so
    /// the next workload flow reusing it starts from a clean ledger. The
    /// occupancy integrals are deliberately kept: they are cumulative
    /// per-slot queue history and are not reported for workload flows.
    pub(crate) fn reset_flow_slot(&mut self, flow: FlowId) {
        debug_assert_eq!(
            self.per_flow_bytes[flow.index()],
            0,
            "recycling a slot with queued bytes"
        );
        self.per_flow_offered[flow.index()] = 0;
        self.per_flow_dropped[flow.index()] = 0;
        self.per_flow_serviced[flow.index()] = 0;
    }

    /// Test hook: corrupt a per-flow conservation counter so the audit's
    /// detection of a seeded accounting bug can itself be tested.
    #[cfg(test)]
    pub(crate) fn test_corrupt_serviced_counter(&mut self, flow: FlowId) {
        self.per_flow_serviced[flow.index()] += 1;
    }
}

/// Result of offering a packet to the bottleneck.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Offer {
    /// Link was idle; packet went straight into service.
    StartService,
    /// Packet joined the queue.
    Queued,
    /// Queue full; packet dropped.
    Dropped,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use crate::units::MSS;

    fn pkt(flow: u32, seq: u64) -> Packet {
        Packet {
            flow: FlowId(flow),
            seq,
            size: MSS,
        }
    }

    fn queue(capacity_pkts: u64) -> DropTailQueue {
        DropTailQueue::new(Rate::from_mbps(12.0), capacity_pkts * MSS, 2)
    }

    #[test]
    fn idle_link_starts_service_immediately() {
        let mut q = queue(2);
        assert_eq!(q.offer(SimTime::ZERO, pkt(0, 0)), Offer::StartService);
        assert_eq!(q.queued_bytes(), 0);
        assert!(q.link_busy());
    }

    #[test]
    fn busy_link_queues_then_drops() {
        let mut q = queue(2);
        let t = SimTime::ZERO;
        assert_eq!(q.offer(t, pkt(0, 0)), Offer::StartService);
        assert_eq!(q.offer(t, pkt(0, 1)), Offer::Queued);
        assert_eq!(q.offer(t, pkt(1, 2)), Offer::Queued);
        // Queue now holds 2 packets = capacity; next must drop.
        assert_eq!(q.offer(t, pkt(1, 3)), Offer::Dropped);
        assert_eq!(q.dropped_packets(), 1);
        assert_eq!(q.drops()[0].flow, FlowId(1));
        assert_eq!(q.queued_bytes(), 2 * MSS);
        assert_eq!(q.queued_bytes_of(FlowId(0)), MSS);
        assert_eq!(q.queued_bytes_of(FlowId(1)), MSS);
    }

    #[test]
    fn fifo_order_preserved() {
        let mut q = queue(10);
        let t = SimTime::ZERO;
        assert_eq!(q.offer(t, pkt(0, 0)), Offer::StartService);
        for s in 1..5 {
            assert_eq!(q.offer(t, pkt(0, s)), Offer::Queued);
        }
        for s in 0..4 {
            let (finished, next) = q.service_complete(t);
            assert_eq!(finished.seq, s);
            assert_eq!(next, Some(MSS));
        }
        let (finished, next) = q.service_complete(t);
        assert_eq!(finished.seq, 4);
        assert_eq!(next, None);
        assert!(!q.link_busy());
    }

    #[test]
    fn occupancy_integral_is_time_weighted() {
        let mut q = queue(10);
        let t0 = SimTime::ZERO;
        assert_eq!(q.offer(t0, pkt(0, 0)), Offer::StartService);
        assert_eq!(q.offer(t0, pkt(0, 1)), Offer::Queued);
        // One MSS queued for 1 second.
        let t1 = t0 + SimDuration::from_secs_f64(1.0);
        q.finalize(t1);
        let avg = q.avg_occupancy_bytes(1.0);
        assert!((avg - MSS as f64).abs() < 1e-6, "avg={avg}");
        let avg0 = q.avg_occupancy_bytes_of(FlowId(0), 1.0);
        assert!((avg0 - MSS as f64).abs() < 1e-6);
        let avg1 = q.avg_occupancy_bytes_of(FlowId(1), 1.0);
        assert!(avg1.abs() < 1e-9);
    }

    #[test]
    fn peak_tracks_maximum() {
        let mut q = queue(5);
        let t = SimTime::ZERO;
        assert_eq!(q.offer(t, pkt(0, 0)), Offer::StartService);
        for s in 1..=5 {
            assert_eq!(q.offer(t, pkt(0, s)), Offer::Queued);
        }
        assert_eq!(q.peak_bytes(), 5 * MSS);
    }

    #[test]
    #[should_panic]
    fn service_complete_on_idle_link_panics() {
        let mut q = queue(1);
        let _ = q.service_complete(SimTime::ZERO);
    }
}
