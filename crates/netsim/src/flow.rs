//! Flow endpoints: a backlogged sender with SACK-style loss detection,
//! fast retransmit, RTO fallback, optional pacing — plus the (trivial)
//! receiver, folded into the same struct.
//!
//! The transport is deliberately a *minimal faithful* TCP data path:
//!
//! * per-packet ACKs (equivalent to SACK with no ACK compression),
//! * dup-threshold (3) loss marking — exact in this topology because the
//!   bottleneck is FIFO, so per-flow delivery is in order and a gap in the
//!   ACK stream can only mean a drop,
//! * at most one congestion event per round trip (fast-recovery
//!   semantics: losses of packets sent before the last back-off do not
//!   back off again),
//! * RTO (`srtt + 4·rttvar`, floored) as the deadlock-free fallback when
//!   an entire window is lost.

use std::collections::{BTreeMap, BTreeSet};

use crate::cc::{AckSample, CongestionControl, FlowView};
use crate::event::{Event, EventQueue};
use crate::packet::{FlowId, Packet};
use crate::queue::{DropTailQueue, Offer};
use crate::stats::FlowStats;
use crate::time::{SimDuration, SimTime};

/// Minimum retransmission timeout. Linux uses 200 ms; we keep that floor.
const MIN_RTO: SimDuration = SimDuration(200_000_000);
/// Maximum retransmission timeout.
const MAX_RTO: SimDuration = SimDuration(60_000_000_000);
/// Dup-ACK threshold for loss marking.
const DUP_THRESH: u8 = 3;

/// Scoreboard entry for one outstanding sequence number.
#[derive(Debug, Clone, Copy)]
struct SentPacket {
    size: u64,
    sent_time: SimTime,
    /// Monotonic per-flow transmission counter. Dup-ACK loss marking is
    /// RACK-like: an ACK only bumps the dup counter of packets that were
    /// transmitted *before* the ACKed packet, so a retransmission is never
    /// spuriously re-marked by ACKs of data sent before it.
    txid: u64,
    is_retransmit: bool,
    delivered_at_send: u64,
    delivered_time_at_send: SimTime,
    /// Number of later-sequence packets ACKed since this was sent.
    dup_count: u8,
    /// Declared lost, awaiting (or undergoing) retransmission.
    marked_lost: bool,
}

/// One flow: sender state machine plus receiver bookkeeping.
pub struct Flow {
    pub id: FlowId,
    mss: u64,
    cc: Box<dyn CongestionControl>,
    /// One-way propagation delay, bottleneck → receiver.
    pub prop_fwd: SimDuration,
    /// One-way propagation delay, receiver → sender (ACK path).
    pub prop_rev: SimDuration,
    pub start_time: SimTime,
    started: bool,
    /// Stop after this many payload bytes (None = backlogged forever).
    byte_limit: Option<u64>,
    /// When the last payload byte was delivered (finite flows only).
    completion_time: Option<SimTime>,

    // --- sender scoreboard ---
    next_seq: u64,
    next_txid: u64,
    unacked: BTreeMap<u64, SentPacket>,
    rtx_queue: BTreeSet<u64>,
    inflight_bytes: u64,
    delivered_bytes: u64,
    delivered_time: SimTime,
    /// Sequence number that must be exceeded by a loss to start a new
    /// congestion event (the `next_seq` at the previous event).
    recovery_end: u64,
    in_recovery: bool,

    // --- RTT estimation ---
    srtt: Option<f64>,
    rttvar: f64,
    min_rtt: Option<SimDuration>,

    // --- timers ---
    rto_deadline: SimTime,
    rto_backoff: u32,
    next_rto_check: SimTime,
    pacing_release: SimTime,
    pacing_event_pending: bool,

    // --- receiver ---
    rcv_next: u64,
    rcv_ooo: BTreeSet<u64>,

    pub stats: FlowStats,
}

impl Flow {
    pub fn new(
        id: FlowId,
        cc: Box<dyn CongestionControl>,
        mss: u64,
        prop_fwd: SimDuration,
        prop_rev: SimDuration,
        start_time: SimTime,
    ) -> Self {
        Flow {
            id,
            mss,
            cc,
            prop_fwd,
            prop_rev,
            start_time,
            started: false,
            byte_limit: None,
            completion_time: None,
            next_seq: 0,
            next_txid: 0,
            unacked: BTreeMap::new(),
            rtx_queue: BTreeSet::new(),
            inflight_bytes: 0,
            delivered_bytes: 0,
            delivered_time: SimTime::ZERO,
            recovery_end: 0,
            in_recovery: false,
            srtt: None,
            rttvar: 0.0,
            min_rtt: None,
            rto_deadline: SimTime::FAR_FUTURE,
            rto_backoff: 0,
            next_rto_check: SimTime::FAR_FUTURE,
            pacing_release: SimTime::ZERO,
            pacing_event_pending: false,
            rcv_next: 0,
            rcv_ooo: BTreeSet::new(),
            stats: FlowStats::default(),
        }
    }

    /// The flow's base RTT (propagation only).
    pub fn base_rtt(&self) -> SimDuration {
        self.prop_fwd + self.prop_rev
    }

    /// Limit the flow to `bytes` of payload (a finite transfer). The
    /// limit is rounded up to whole segments.
    pub fn set_byte_limit(&mut self, bytes: u64) {
        self.byte_limit = Some(bytes);
    }

    /// When the flow finished delivering its byte limit, if it has.
    pub fn completion_time(&self) -> Option<SimTime> {
        self.completion_time
    }

    /// True when a finite flow has delivered everything.
    pub fn is_complete(&self) -> bool {
        self.completion_time.is_some()
    }

    /// Whether new (never-sent) data remains.
    fn has_new_data(&self) -> bool {
        match self.byte_limit {
            None => true,
            Some(limit) => self.next_seq * self.mss < limit,
        }
    }

    pub fn cc_name(&self) -> &'static str {
        self.cc.name()
    }

    pub fn cc(&self) -> &dyn CongestionControl {
        &*self.cc
    }

    pub fn inflight_bytes(&self) -> u64 {
        self.inflight_bytes
    }

    pub fn min_rtt(&self) -> Option<SimDuration> {
        self.min_rtt
    }

    pub fn srtt_secs(&self) -> Option<f64> {
        self.srtt
    }

    fn view(&self) -> FlowView {
        FlowView {
            mss: self.mss,
            srtt: self.srtt.map(SimDuration::from_secs_f64),
            min_rtt: self.min_rtt,
            inflight_bytes: self.inflight_bytes,
            delivered_bytes: self.delivered_bytes,
            in_recovery: self.in_recovery,
        }
    }

    fn integrate_cwnd(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.stats.last_cwnd_update).as_secs_f64();
        if dt > 0.0 {
            let cwnd = self.cc.cwnd_bytes();
            self.stats.cwnd_time_integral += cwnd as f64 * dt;
            self.stats.max_cwnd_bytes = self.stats.max_cwnd_bytes.max(cwnd);
            self.stats.last_cwnd_update = now;
        }
    }

    /// Handle the flow-start event.
    pub fn on_start(&mut self, now: SimTime, queue: &mut DropTailQueue, events: &mut EventQueue) {
        self.started = true;
        self.stats.last_cwnd_update = now;
        self.try_send(now, queue, events);
    }

    /// Handle the pacing-timer event.
    pub fn on_pacing(&mut self, now: SimTime, queue: &mut DropTailQueue, events: &mut EventQueue) {
        self.pacing_event_pending = false;
        self.try_send(now, queue, events);
    }

    /// Receiver-side bookkeeping for a delivered packet. Returns the number
    /// of *new* (non-duplicate) payload bytes, for goodput accounting.
    pub fn receiver_on_data(&mut self, seq: u64, size: u64) -> u64 {
        if seq < self.rcv_next || self.rcv_ooo.contains(&seq) {
            return 0; // duplicate
        }
        if seq == self.rcv_next {
            self.rcv_next += 1;
            while self.rcv_ooo.remove(&self.rcv_next) {
                self.rcv_next += 1;
            }
        } else {
            self.rcv_ooo.insert(seq);
        }
        size
    }

    fn rto_interval(&self) -> SimDuration {
        let base = match self.srtt {
            Some(srtt) => SimDuration::from_secs_f64(srtt + 4.0 * self.rttvar),
            None => SimDuration::from_secs_f64(1.0),
        };
        let scaled = SimDuration(
            base.0
                .max(MIN_RTO.0)
                .saturating_mul(1u64 << self.rto_backoff.min(6)),
        );
        scaled.min(MAX_RTO)
    }

    fn arm_rto(&mut self, now: SimTime, events: &mut EventQueue) {
        if self.unacked.is_empty() {
            self.rto_deadline = SimTime::FAR_FUTURE;
            return;
        }
        self.rto_deadline = now + self.rto_interval();
        if self.rto_deadline < self.next_rto_check {
            self.next_rto_check = self.rto_deadline;
            events.schedule(self.rto_deadline, Event::RtoCheck(self.id));
        }
    }

    /// Handle the (lazy-cancelled) RTO check event.
    pub fn on_rto_check(
        &mut self,
        now: SimTime,
        queue: &mut DropTailQueue,
        events: &mut EventQueue,
    ) {
        if now >= self.next_rto_check {
            self.next_rto_check = SimTime::FAR_FUTURE;
        }
        if self.unacked.is_empty() {
            return;
        }
        if now < self.rto_deadline {
            // Deadline moved later since this check was scheduled.
            if self.rto_deadline < self.next_rto_check {
                self.next_rto_check = self.rto_deadline;
                events.schedule(self.rto_deadline, Event::RtoCheck(self.id));
            }
            return;
        }
        // Genuine timeout: every outstanding packet is presumed lost.
        self.stats.rtos += 1;
        self.rto_backoff += 1;
        let seqs: Vec<u64> = self
            .unacked
            .iter()
            .filter(|(_, p)| !p.marked_lost)
            .map(|(s, _)| *s)
            .collect();
        for s in seqs {
            let p = self.unacked.get_mut(&s).unwrap();
            p.marked_lost = true;
            self.inflight_bytes = self.inflight_bytes.saturating_sub(p.size);
            self.rtx_queue.insert(s);
            self.stats.lost_packets += 1;
        }
        self.in_recovery = true;
        self.recovery_end = self.next_seq;
        self.integrate_cwnd(now);
        let view = self.view();
        self.cc.on_rto(now, &view);
        self.arm_rto(now, events);
        self.try_send(now, queue, events);
    }

    /// Handle an arriving ACK for `pkt`.
    pub fn on_ack(
        &mut self,
        now: SimTime,
        pkt: &Packet,
        queue: &mut DropTailQueue,
        events: &mut EventQueue,
    ) {
        let entry = match self.unacked.remove(&pkt.seq) {
            Some(e) => e,
            None => {
                // ACK for a sequence we no longer track (e.g. both the
                // original and a spurious retransmission were delivered).
                self.stats.spurious_acks += 1;
                return;
            }
        };
        if entry.marked_lost {
            // Presumed lost but actually delivered (spurious RTO): it was
            // already removed from flight; cancel the pending retransmit.
            self.rtx_queue.remove(&pkt.seq);
        } else {
            self.inflight_bytes = self.inflight_bytes.saturating_sub(entry.size);
        }
        self.rto_backoff = 0;

        // RTT sample (Karn's rule: skip retransmitted packets).
        let mut rtt_sample = None;
        if !entry.is_retransmit {
            let rtt = now - entry.sent_time;
            rtt_sample = Some(rtt);
            let r = rtt.as_secs_f64();
            match self.srtt {
                None => {
                    self.srtt = Some(r);
                    self.rttvar = r / 2.0;
                }
                Some(srtt) => {
                    self.rttvar = 0.75 * self.rttvar + 0.25 * (srtt - r).abs();
                    self.srtt = Some(0.875 * srtt + 0.125 * r);
                }
            }
            self.min_rtt = Some(match self.min_rtt {
                None => rtt,
                Some(m) => m.min(rtt),
            });
            self.stats.rtt_sum += r;
            self.stats.rtt_samples += 1;
        }

        // Delivery-rate sample (skip retransmits).
        let mut delivery_rate = None;
        if !entry.is_retransmit {
            let delta = self.delivered_bytes + entry.size - entry.delivered_at_send;
            let interval = now.saturating_since(entry.delivered_time_at_send).as_secs_f64();
            if interval > 0.0 {
                delivery_rate = Some(delta as f64 / interval);
            }
        }
        self.delivered_bytes += entry.size;
        self.delivered_time = now;

        // Dup-threshold loss marking: every still-outstanding packet below
        // this sequence that was sent earlier has now been "passed" by one
        // more ACK. (The range below an arriving ACK contains only loss
        // holes, so this loop is short.)
        let acked_txid = entry.txid;
        let mut newly_lost = 0u64;
        let mut max_lost_seq = None;
        let mut to_mark: Vec<u64> = Vec::new();
        for (&s, p) in self.unacked.range_mut(..pkt.seq) {
            if p.marked_lost || p.txid >= acked_txid {
                continue;
            }
            p.dup_count = p.dup_count.saturating_add(1);
            if p.dup_count >= DUP_THRESH {
                to_mark.push(s);
            }
        }
        for s in to_mark {
            let p = self.unacked.get_mut(&s).unwrap();
            p.marked_lost = true;
            self.inflight_bytes = self.inflight_bytes.saturating_sub(p.size);
            self.rtx_queue.insert(s);
            self.stats.lost_packets += 1;
            newly_lost += p.size;
            max_lost_seq = Some(max_lost_seq.map_or(s, |m: u64| m.max(s)));
        }

        // Congestion event: first loss beyond the previous recovery point.
        if let Some(lost) = max_lost_seq {
            if lost >= self.recovery_end {
                self.in_recovery = true;
                self.recovery_end = self.next_seq;
                self.stats.congestion_events += 1;
                self.stats.backoff_times.push(now);
                self.integrate_cwnd(now);
                let view = self.view();
                self.cc.on_congestion_event(now, &view);
            }
        }

        // Exit recovery once nothing below the recovery point is
        // outstanding.
        if self.in_recovery && self.unacked.range(..self.recovery_end).next().is_none() {
            self.in_recovery = false;
        }

        self.integrate_cwnd(now);
        let view = self.view();
        let sample = AckSample {
            now,
            acked_bytes: entry.size,
            rtt: rtt_sample,
            delivery_rate,
            delivered_total: self.delivered_bytes,
            packet_delivered_at_send: entry.delivered_at_send,
            inflight_bytes: self.inflight_bytes,
            newly_lost_bytes: newly_lost,
        };
        self.cc.on_ack(&sample, &view);

        if let Some(limit) = self.byte_limit {
            if self.completion_time.is_none() && self.delivered_bytes >= limit {
                self.completion_time = Some(now);
            }
        }
        self.arm_rto(now, events);
        self.try_send(now, queue, events);
    }

    /// Send as much as window and pacing allow.
    pub fn try_send(&mut self, now: SimTime, queue: &mut DropTailQueue, events: &mut EventQueue) {
        if !self.started || now < self.start_time {
            return;
        }
        loop {
            if self.inflight_bytes + self.mss > self.cc.cwnd_bytes() {
                break;
            }
            if let Some(rate) = self.cc.pacing_rate() {
                debug_assert!(rate > 0.0);
                if now < self.pacing_release {
                    if !self.pacing_event_pending {
                        self.pacing_event_pending = true;
                        events.schedule(self.pacing_release, Event::Pacing(self.id));
                    }
                    break;
                }
                // Space the *next* packet.
                let gap = SimDuration::from_secs_f64(self.mss as f64 / rate);
                let base = if self.pacing_release > now {
                    self.pacing_release
                } else {
                    now
                };
                self.pacing_release = base + gap;
            }

            // Retransmissions take priority over new data.
            let (seq, is_retransmit) = match self.rtx_queue.pop_first() {
                Some(s) => (s, true),
                None => {
                    if !self.has_new_data() {
                        break; // finite flow: everything has been sent
                    }
                    let s = self.next_seq;
                    self.next_seq += 1;
                    (s, false)
                }
            };
            let pkt = Packet {
                flow: self.id,
                seq,
                size: self.mss,
                sent_time: now,
                is_retransmit,
                delivered_at_send: self.delivered_bytes,
                delivered_time_at_send: if self.delivered_time == SimTime::ZERO {
                    now
                } else {
                    self.delivered_time
                },
            };
            let txid = self.next_txid;
            self.next_txid += 1;
            let entry = SentPacket {
                size: self.mss,
                sent_time: now,
                txid,
                is_retransmit,
                delivered_at_send: self.delivered_bytes,
                delivered_time_at_send: pkt.delivered_time_at_send,
                dup_count: 0,
                marked_lost: false,
            };
            let was_empty = self.unacked.is_empty();
            self.unacked.insert(seq, entry);
            self.inflight_bytes += self.mss;
            self.stats.sent_bytes += self.mss;
            if is_retransmit {
                self.stats.retransmits += 1;
            }
            self.integrate_cwnd(now);
            let view = self.view();
            self.cc.on_packet_sent(now, self.mss, &view);

            let size = pkt.size;
            match queue.offer(now, pkt) {
                Offer::StartService => {
                    let done = now + queue.rate().serialization_time(size);
                    events.schedule(done, Event::LinkDequeue);
                }
                Offer::Queued => {}
                Offer::Dropped => {
                    // Tail drop: discovered later via dup-ACKs or RTO.
                }
            }
            if was_empty {
                self.arm_rto(now, events);
            }
        }
    }

    /// Mean of all RTT samples, in seconds.
    pub fn mean_rtt_secs(&self) -> Option<f64> {
        if self.stats.rtt_samples == 0 {
            None
        } else {
            Some(self.stats.rtt_sum / self.stats.rtt_samples as f64)
        }
    }

    /// Final cwnd-integral update at simulation end.
    pub fn finalize(&mut self, now: SimTime) {
        self.integrate_cwnd(now);
    }
}
