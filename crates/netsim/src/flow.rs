//! Flow endpoints: a backlogged sender with SACK-style loss detection,
//! fast retransmit, RTO fallback, optional pacing — plus the (trivial)
//! receiver, folded into the same struct.
//!
//! The transport is deliberately a *minimal faithful* TCP data path:
//!
//! * per-packet ACKs (equivalent to SACK with no ACK compression),
//! * dup-threshold (3) loss marking — exact in this topology because the
//!   bottleneck is FIFO, so per-flow delivery is in order and a gap in the
//!   ACK stream can only mean a drop,
//! * at most one congestion event per round trip (fast-recovery
//!   semantics: losses of packets sent before the last back-off do not
//!   back off again),
//! * RTO (`srtt + 4·rttvar`, floored) as the deadlock-free fallback when
//!   an entire window is lost.
//!
//! Sequence numbers are dense (0, 1, 2, …), so the sender's scoreboard is
//! a `Scoreboard` ring buffer indexed by `seq - head_seq` rather than a
//! search tree: insert, remove and the common in-order ACK are O(1), and
//! the dup-marking scan below an arriving ACK touches a contiguous slice.
//! The retransmission queue is a sorted `VecDeque` (loss bursts are small
//! and nearly sorted), and the receiver's out-of-order set is a window
//! bitmap offset by `rcv_next`.

use std::collections::VecDeque;
use std::sync::Arc;

use crate::cc::{AckSample, CongestionControl, FlowView};
use crate::event::{Event, EventQueue};
use crate::packet::{FlowId, Packet};
use crate::queue::{DropTailQueue, Offer};
use crate::routing::CompiledPath;
use crate::stats::FlowStats;
use crate::time::{SimDuration, SimTime};

/// Minimum retransmission timeout. Linux uses 200 ms; we keep that floor.
const MIN_RTO: SimDuration = SimDuration(200_000_000);
/// Maximum retransmission timeout.
const MAX_RTO: SimDuration = SimDuration(60_000_000_000);
/// Dup-ACK threshold for loss marking.
const DUP_THRESH: u8 = 3;

/// Scoreboard entry for one outstanding sequence number.
#[derive(Debug, Clone, Copy)]
struct SentPacket {
    size: u64,
    sent_time: SimTime,
    /// Monotonic per-flow transmission counter. Dup-ACK loss marking is
    /// RACK-like: an ACK only bumps the dup counter of packets that were
    /// transmitted *before* the ACKed packet, so a retransmission is never
    /// spuriously re-marked by ACKs of data sent before it.
    txid: u64,
    is_retransmit: bool,
    delivered_at_send: u64,
    delivered_time_at_send: SimTime,
    /// Number of later-sequence packets ACKed since this was sent.
    dup_count: u8,
    /// Declared lost, awaiting (or undergoing) retransmission.
    marked_lost: bool,
}

/// The sender's outstanding-packet table, as a ring buffer over the
/// contiguous sequence range `[head_seq, head_seq + slots.len())`.
///
/// Invariant: when non-empty, the front slot is occupied (`head_seq` is
/// the lowest outstanding sequence), so "anything outstanding below X?"
/// is a single comparison.
#[derive(Debug, Default)]
struct Scoreboard {
    head_seq: u64,
    slots: VecDeque<Option<SentPacket>>,
    outstanding: usize,
}

impl Scoreboard {
    fn is_empty(&self) -> bool {
        self.outstanding == 0
    }

    /// Lowest outstanding sequence number (meaningless when empty).
    fn head_seq(&self) -> u64 {
        self.head_seq
    }

    /// Insert `seq`: either the next new sequence (appended) or a
    /// retransmission replacing its marked-lost entry in place.
    fn insert(&mut self, seq: u64, p: SentPacket) {
        if self.slots.is_empty() {
            self.head_seq = seq;
            self.slots.push_back(Some(p));
            self.outstanding += 1;
            return;
        }
        debug_assert!(seq >= self.head_seq, "sequence below scoreboard head");
        let idx = (seq - self.head_seq) as usize;
        if idx == self.slots.len() {
            self.slots.push_back(Some(p));
            self.outstanding += 1;
        } else {
            let slot = &mut self.slots[idx];
            debug_assert!(slot.is_some(), "retransmit must replace a live entry");
            if slot.is_none() {
                self.outstanding += 1;
            }
            *slot = Some(p);
        }
    }

    /// Remove and return the entry for `seq`, advancing the head past any
    /// leading hole it opens.
    fn remove(&mut self, seq: u64) -> Option<SentPacket> {
        if seq < self.head_seq {
            return None;
        }
        let idx = (seq - self.head_seq) as usize;
        if idx >= self.slots.len() {
            return None;
        }
        let taken = self.slots[idx].take();
        if taken.is_some() {
            self.outstanding -= 1;
            while let Some(None) = self.slots.front() {
                self.slots.pop_front();
                self.head_seq += 1;
            }
        }
        taken
    }
}

/// Snapshot of the RTO-computation inputs at a deferred [`Flow::arm_rto`].
#[derive(Debug, Clone, Copy)]
struct RtoArm {
    at: SimTime,
    srtt: Option<f64>,
    rttvar: f64,
    backoff: u32,
}

/// One flow: sender state machine plus receiver bookkeeping.
pub struct Flow {
    pub id: FlowId,
    mss: u64,
    cc: Box<dyn CongestionControl>,
    /// Cached [`CongestionControl::is_open_loop`]: skip assembling the
    /// per-ACK sample/view when the CC ignores feedback entirely.
    cc_open_loop: bool,
    /// One-way propagation delay, bottleneck → receiver.
    pub prop_fwd: SimDuration,
    /// One-way propagation delay, receiver → sender (ACK path).
    pub prop_rev: SimDuration,
    pub start_time: SimTime,
    started: bool,
    /// Stop after this many payload bytes (None = backlogged forever).
    byte_limit: Option<u64>,
    /// When the last payload byte was delivered (finite flows only).
    completion_time: Option<SimTime>,
    /// Dismantled after delivering its byte limit (see [`Flow::teardown`]):
    /// pending events become no-ops and stats are frozen.
    torn_down: bool,
    /// Completion edge not yet observed by the simulator's event loop
    /// (consumed by [`Flow::take_just_completed`]).
    just_completed: bool,
    /// `RtoCheck` events scheduled but not yet fired for this flow.
    rto_checks_pending: u32,
    /// `AckArrive` events scheduled but not yet fired (maintained by the
    /// simulator's event loop via [`Flow::note_ack_scheduled`]).
    acks_inflight: u32,
    /// Multi-hop route through a compiled [`crate::topo::Topology`].
    /// `None` is the legacy single-bottleneck configuration: queue slot
    /// 0, zero extra propagation — the original fast path, untouched.
    path: Option<Arc<CompiledPath>>,
    /// `HopArrive` events in flight for this flow (packets propagating
    /// between hops); part of the quiescence test for slot recycling.
    hops_in_flight: u32,
    /// Test hook: keep the pre-fix behavior (completed flows stay live)
    /// so the event-count regression test has a baseline to compare to.
    #[cfg(test)]
    pub(crate) teardown_disabled: bool,

    // --- sender scoreboard ---
    next_seq: u64,
    next_txid: u64,
    unacked: Scoreboard,
    /// Lost sequences awaiting retransmission, ascending.
    rtx_queue: VecDeque<u64>,
    inflight_bytes: u64,
    delivered_bytes: u64,
    delivered_time: SimTime,
    /// Sequence number that must be exceeded by a loss to start a new
    /// congestion event (the `next_seq` at the previous event).
    recovery_end: u64,
    in_recovery: bool,

    // --- RTT estimation ---
    srtt: Option<f64>,
    /// `srtt` pre-converted to a [`SimDuration`] (kept in lockstep), so
    /// building a [`FlowView`] per CC callback does no float→ns rounding.
    srtt_dur: Option<SimDuration>,
    rttvar: f64,
    min_rtt: Option<SimDuration>,

    // --- timers ---
    rto_deadline: SimTime,
    /// A deferred re-arm whose deadline has not been computed yet; when
    /// set it supersedes `rto_deadline` (see [`Flow::arm_rto`]).
    rto_lazy: Option<RtoArm>,
    rto_backoff: u32,
    next_rto_check: SimTime,
    pacing_release: SimTime,
    pacing_event_pending: bool,

    // --- receiver ---
    rcv_next: u64,
    /// Window bitmap: `rcv_ooo[i]` ⇔ sequence `rcv_next + i` received
    /// out of order. Index 0 is always false (else `rcv_next` advances).
    rcv_ooo: VecDeque<bool>,

    pub stats: FlowStats,
}

impl Flow {
    pub fn new(
        id: FlowId,
        cc: Box<dyn CongestionControl>,
        mss: u64,
        prop_fwd: SimDuration,
        prop_rev: SimDuration,
        start_time: SimTime,
    ) -> Self {
        let cc_open_loop = cc.is_open_loop();
        Flow {
            id,
            mss,
            cc,
            cc_open_loop,
            prop_fwd,
            prop_rev,
            start_time,
            started: false,
            byte_limit: None,
            completion_time: None,
            torn_down: false,
            just_completed: false,
            rto_checks_pending: 0,
            acks_inflight: 0,
            path: None,
            hops_in_flight: 0,
            #[cfg(test)]
            teardown_disabled: false,
            next_seq: 0,
            next_txid: 0,
            unacked: Scoreboard::default(),
            rtx_queue: VecDeque::new(),
            inflight_bytes: 0,
            delivered_bytes: 0,
            delivered_time: SimTime::ZERO,
            recovery_end: 0,
            in_recovery: false,
            srtt: None,
            srtt_dur: None,
            rttvar: 0.0,
            min_rtt: None,
            rto_deadline: SimTime::FAR_FUTURE,
            rto_lazy: None,
            rto_backoff: 0,
            next_rto_check: SimTime::FAR_FUTURE,
            pacing_release: SimTime::ZERO,
            pacing_event_pending: false,
            rcv_next: 0,
            rcv_ooo: VecDeque::new(),
            stats: FlowStats::default(),
        }
    }

    /// The flow's base RTT (propagation only).
    pub fn base_rtt(&self) -> SimDuration {
        self.prop_fwd + self.prop_rev
    }

    /// Limit the flow to `bytes` of payload (a finite transfer). The
    /// limit is rounded up to whole segments.
    pub fn set_byte_limit(&mut self, bytes: u64) {
        self.byte_limit = Some(bytes);
    }

    /// When the flow finished delivering its byte limit, if it has.
    pub fn completion_time(&self) -> Option<SimTime> {
        self.completion_time
    }

    /// True when a finite flow has delivered everything.
    pub fn is_complete(&self) -> bool {
        self.completion_time.is_some()
    }

    /// True once `teardown` has dismantled this completed flow.
    pub fn is_torn_down(&self) -> bool {
        self.torn_down
    }

    /// Dismantle a completed flow: drop the scoreboard, retransmission
    /// queue and receiver bitmap, zero the flight, and neutralize the
    /// timer state so any still-scheduled `RtoCheck`/`Pacing` events for
    /// this flow fire as no-ops. Stats (including the cwnd integral) are
    /// frozen as of `now`. The CC instance and `rcv_next` stay alive so
    /// auditing and duplicate detection on draining in-flight packets
    /// keep working.
    fn teardown(&mut self, now: SimTime) {
        self.integrate_cwnd(now);
        self.torn_down = true;
        self.unacked = Scoreboard::default();
        self.rtx_queue = VecDeque::new();
        self.rcv_ooo = VecDeque::new();
        self.inflight_bytes = 0;
        self.rto_deadline = SimTime::FAR_FUTURE;
        self.rto_lazy = None;
        self.next_rto_check = SimTime::FAR_FUTURE;
    }

    /// Whether any event referencing this flow is still scheduled. Used
    /// (with the queue's per-flow occupancy) to decide when a torn-down
    /// flow's slot is quiescent and safe to recycle.
    pub(crate) fn has_pending_events(&self) -> bool {
        self.pacing_event_pending
            || self.rto_checks_pending > 0
            || self.acks_inflight > 0
            || self.hops_in_flight > 0
    }

    /// Assign this flow's multi-hop route (`None` = legacy bottleneck).
    pub(crate) fn set_path(&mut self, path: Option<Arc<CompiledPath>>) {
        self.path = path;
    }

    /// The flow's compiled route, if it runs over a topology.
    pub(crate) fn path(&self) -> Option<&Arc<CompiledPath>> {
        self.path.as_ref()
    }

    /// The queue slot this flow's packets enter first.
    pub(crate) fn ingress_slot(&self) -> u32 {
        match &self.path {
            Some(p) => p.ingress_slot(),
            None => 0,
        }
    }

    /// A `HopArrive` for this flow was consumed (packet reached a queue).
    pub(crate) fn note_hop_arrived(&mut self) {
        self.hops_in_flight = self.hops_in_flight.saturating_sub(1);
    }

    /// A `HopArrive` for this flow was scheduled (packet left a hop).
    pub(crate) fn note_hop_scheduled(&mut self) {
        self.hops_in_flight += 1;
    }

    /// Packets currently propagating between hops (audit bookkeeping).
    pub(crate) fn hops_in_flight(&self) -> u32 {
        self.hops_in_flight
    }

    /// The simulator scheduled an `AckArrive` for this flow.
    pub(crate) fn note_ack_scheduled(&mut self) {
        self.acks_inflight += 1;
    }

    /// An `AckArrive` for this flow fired.
    pub(crate) fn note_ack_fired(&mut self) {
        self.acks_inflight = self.acks_inflight.saturating_sub(1);
    }

    /// Consume the completion edge (true exactly once, right after the
    /// byte limit is reached).
    pub(crate) fn take_just_completed(&mut self) -> bool {
        std::mem::take(&mut self.just_completed)
    }

    /// Whether new (never-sent) data remains.
    fn has_new_data(&self) -> bool {
        match self.byte_limit {
            None => true,
            Some(limit) => self.next_seq * self.mss < limit,
        }
    }

    pub fn cc_name(&self) -> &'static str {
        self.cc.name()
    }

    pub fn cc(&self) -> &dyn CongestionControl {
        &*self.cc
    }

    /// Segment size this flow sends with (audit: packet-count = bytes/mss).
    pub(crate) fn mss(&self) -> u64 {
        self.mss
    }

    pub fn inflight_bytes(&self) -> u64 {
        self.inflight_bytes
    }

    pub fn min_rtt(&self) -> Option<SimDuration> {
        self.min_rtt
    }

    pub fn srtt_secs(&self) -> Option<f64> {
        self.srtt
    }

    fn view(&self) -> FlowView {
        FlowView {
            mss: self.mss,
            srtt: self.srtt_dur,
            min_rtt: self.min_rtt,
            inflight_bytes: self.inflight_bytes,
            delivered_bytes: self.delivered_bytes,
            in_recovery: self.in_recovery,
        }
    }

    fn integrate_cwnd(&mut self, now: SimTime) {
        // A torn-down flow's cwnd integral is frozen at completion time.
        if self.torn_down {
            return;
        }
        // Integer zero-check first: skipping the ns→secs division on
        // same-instant calls is exact (dt > 0 iff the ns delta is > 0).
        let elapsed = now.saturating_since(self.stats.last_cwnd_update);
        if elapsed.as_nanos() == 0 {
            return;
        }
        let dt = elapsed.as_secs_f64();
        let cwnd = self.cc.cwnd_bytes();
        self.stats.cwnd_time_integral += cwnd as f64 * dt;
        self.stats.max_cwnd_bytes = self.stats.max_cwnd_bytes.max(cwnd);
        self.stats.last_cwnd_update = now;
    }

    /// Queue `seq` for retransmission, keeping the queue sorted.
    fn rtx_push(&mut self, seq: u64) {
        match self.rtx_queue.back() {
            // Loss marking walks sequences in ascending order, so the
            // common case is a plain append.
            Some(&last) if last < seq => self.rtx_queue.push_back(seq),
            None => self.rtx_queue.push_back(seq),
            _ => match self.rtx_queue.binary_search(&seq) {
                Ok(_) => debug_assert!(false, "sequence queued for rtx twice"),
                Err(pos) => self.rtx_queue.insert(pos, seq),
            },
        }
    }

    /// Drop `seq` from the retransmission queue if present.
    fn rtx_cancel(&mut self, seq: u64) {
        if let Ok(pos) = self.rtx_queue.binary_search(&seq) {
            self.rtx_queue.remove(pos);
        }
    }

    /// Handle the flow-start event.
    pub fn on_start(&mut self, now: SimTime, queue: &mut DropTailQueue, events: &mut EventQueue) {
        self.started = true;
        self.stats.last_cwnd_update = now;
        self.try_send(now, queue, events);
    }

    /// Handle the pacing-timer event.
    pub fn on_pacing(&mut self, now: SimTime, queue: &mut DropTailQueue, events: &mut EventQueue) {
        self.pacing_event_pending = false;
        if self.torn_down {
            return;
        }
        self.try_send(now, queue, events);
    }

    /// Receiver-side bookkeeping for a delivered packet. Returns the number
    /// of *new* (non-duplicate) payload bytes, for goodput accounting.
    pub fn receiver_on_data(&mut self, seq: u64, size: u64) -> u64 {
        if seq < self.rcv_next {
            return 0; // duplicate
        }
        if seq == self.rcv_next {
            self.rcv_next += 1;
            if let Some(flag) = self.rcv_ooo.pop_front() {
                debug_assert!(!flag, "in-order slot marked out-of-order");
            }
            while self.rcv_ooo.front() == Some(&true) {
                self.rcv_ooo.pop_front();
                self.rcv_next += 1;
            }
        } else {
            let idx = (seq - self.rcv_next) as usize;
            if idx < self.rcv_ooo.len() && self.rcv_ooo[idx] {
                return 0; // duplicate
            }
            if idx >= self.rcv_ooo.len() {
                self.rcv_ooo.resize(idx + 1, false);
            }
            self.rcv_ooo[idx] = true;
        }
        size
    }

    fn rto_interval_from(srtt: Option<f64>, rttvar: f64, backoff: u32) -> SimDuration {
        let base = match srtt {
            Some(srtt) => SimDuration::from_secs_f64(srtt + 4.0 * rttvar),
            None => SimDuration::from_secs_f64(1.0),
        };
        let scaled = SimDuration(base.0.max(MIN_RTO.0).saturating_mul(1u64 << backoff.min(6)));
        scaled.min(MAX_RTO)
    }

    fn rto_interval(&self) -> SimDuration {
        Self::rto_interval_from(self.srtt, self.rttvar, self.rto_backoff)
    }

    fn arm_rto(&mut self, now: SimTime, events: &mut EventQueue) {
        if self.unacked.is_empty() {
            self.rto_deadline = SimTime::FAR_FUTURE;
            self.rto_lazy = None;
            return;
        }
        // The interval is clamped to ≥ MIN_RTO, so when the pending check
        // fires no later than `now + MIN_RTO` the new deadline cannot
        // precede it and nothing needs scheduling yet. Snapshot the
        // inputs and defer the float clamp chain to the check — the
        // common per-ACK case.
        if self.next_rto_check <= now + MIN_RTO {
            self.rto_lazy = Some(RtoArm {
                at: now,
                srtt: self.srtt,
                rttvar: self.rttvar,
                backoff: self.rto_backoff,
            });
            return;
        }
        self.rto_lazy = None;
        self.rto_deadline = now + self.rto_interval();
        if self.rto_deadline < self.next_rto_check {
            self.next_rto_check = self.rto_deadline;
            self.rto_checks_pending += 1;
            events.schedule(self.rto_deadline, Event::RtoCheck(self.id));
        }
    }

    /// Handle the (lazy-cancelled) RTO check event.
    pub fn on_rto_check(
        &mut self,
        now: SimTime,
        queue: &mut DropTailQueue,
        events: &mut EventQueue,
    ) {
        self.rto_checks_pending = self.rto_checks_pending.saturating_sub(1);
        if self.torn_down {
            return;
        }
        // Materialize a deferred re-arm before reading the deadline.
        if let Some(arm) = self.rto_lazy.take() {
            self.rto_deadline = arm.at + Self::rto_interval_from(arm.srtt, arm.rttvar, arm.backoff);
        }
        if now >= self.next_rto_check {
            self.next_rto_check = SimTime::FAR_FUTURE;
        }
        if self.unacked.is_empty() {
            return;
        }
        if now < self.rto_deadline {
            // Deadline moved later since this check was scheduled.
            if self.rto_deadline < self.next_rto_check {
                self.next_rto_check = self.rto_deadline;
                self.rto_checks_pending += 1;
                events.schedule(self.rto_deadline, Event::RtoCheck(self.id));
            }
            return;
        }
        // Genuine timeout: every outstanding packet is presumed lost.
        self.stats.rtos += 1;
        self.rto_backoff += 1;
        for idx in 0..self.unacked.slots.len() {
            let seq = self.unacked.head_seq + idx as u64;
            if let Some(p) = self.unacked.slots[idx].as_mut() {
                if p.marked_lost {
                    continue;
                }
                p.marked_lost = true;
                let size = p.size;
                self.inflight_bytes = self.inflight_bytes.saturating_sub(size);
                self.rtx_push(seq);
                self.stats.lost_packets += 1;
            }
        }
        self.in_recovery = true;
        self.recovery_end = self.next_seq;
        self.integrate_cwnd(now);
        if !self.cc_open_loop {
            let view = self.view();
            self.cc.on_rto(now, &view);
        }
        self.arm_rto(now, events);
        self.try_send(now, queue, events);
    }

    /// Handle an arriving ACK for sequence `seq`.
    pub fn on_ack(
        &mut self,
        now: SimTime,
        seq: u64,
        queue: &mut DropTailQueue,
        events: &mut EventQueue,
    ) {
        // Stats (including `spurious_acks`) are frozen after teardown;
        // late ACKs of draining retransmissions are simply ignored.
        if self.torn_down {
            return;
        }
        let entry = match self.unacked.remove(seq) {
            Some(e) => e,
            None => {
                // ACK for a sequence we no longer track (e.g. both the
                // original and a spurious retransmission were delivered).
                self.stats.spurious_acks += 1;
                return;
            }
        };
        if entry.marked_lost {
            // Presumed lost but actually delivered (spurious RTO): it was
            // already removed from flight; cancel the pending retransmit.
            self.rtx_cancel(seq);
        } else {
            self.inflight_bytes = self.inflight_bytes.saturating_sub(entry.size);
        }
        self.rto_backoff = 0;

        // RTT sample (Karn's rule: skip retransmitted packets).
        let mut rtt_sample = None;
        if !entry.is_retransmit {
            let rtt = now - entry.sent_time;
            rtt_sample = Some(rtt);
            let r = rtt.as_secs_f64();
            match self.srtt {
                None => {
                    self.srtt = Some(r);
                    self.rttvar = r / 2.0;
                }
                Some(srtt) => {
                    self.rttvar = 0.75 * self.rttvar + 0.25 * (srtt - r).abs();
                    self.srtt = Some(0.875 * srtt + 0.125 * r);
                }
            }
            self.srtt_dur = self.srtt.map(SimDuration::from_secs_f64);
            self.min_rtt = Some(match self.min_rtt {
                None => rtt,
                Some(m) => m.min(rtt),
            });
            self.stats.rtt_sum += r;
            self.stats.rtt_samples += 1;
        }

        // Delivery-rate sample (skip retransmits).
        let mut delivery_rate = None;
        if !entry.is_retransmit {
            let delta = self.delivered_bytes + entry.size - entry.delivered_at_send;
            let interval = now
                .saturating_since(entry.delivered_time_at_send)
                .as_secs_f64();
            if interval > 0.0 {
                delivery_rate = Some(delta as f64 / interval);
            }
        }
        self.delivered_bytes += entry.size;
        self.delivered_time = now;

        // Dup-threshold loss marking: every still-outstanding packet below
        // this sequence that was sent earlier has now been "passed" by one
        // more ACK. (The slice below an arriving ACK contains only loss
        // holes, so this scan is short.)
        let acked_txid = entry.txid;
        let mut newly_lost = 0u64;
        let mut max_lost_seq = None;
        let upto =
            (seq.saturating_sub(self.unacked.head_seq) as usize).min(self.unacked.slots.len());
        for idx in 0..upto {
            if let Some(p) = self.unacked.slots[idx].as_mut() {
                if p.marked_lost || p.txid >= acked_txid {
                    continue;
                }
                p.dup_count = p.dup_count.saturating_add(1);
                if p.dup_count >= DUP_THRESH {
                    p.marked_lost = true;
                    let size = p.size;
                    let s = self.unacked.head_seq + idx as u64;
                    self.inflight_bytes = self.inflight_bytes.saturating_sub(size);
                    self.rtx_push(s);
                    self.stats.lost_packets += 1;
                    newly_lost += size;
                    max_lost_seq = Some(s);
                }
            }
        }

        // Congestion event: first loss beyond the previous recovery point.
        if let Some(lost) = max_lost_seq {
            if lost >= self.recovery_end {
                self.in_recovery = true;
                self.recovery_end = self.next_seq;
                self.stats.congestion_events += 1;
                self.stats.backoff_times.push(now);
                self.integrate_cwnd(now);
                if !self.cc_open_loop {
                    let view = self.view();
                    self.cc.on_congestion_event(now, &view);
                }
            }
        }

        // Exit recovery once nothing below the recovery point is
        // outstanding.
        if self.in_recovery
            && (self.unacked.is_empty() || self.unacked.head_seq() >= self.recovery_end)
        {
            self.in_recovery = false;
        }

        self.integrate_cwnd(now);
        if !self.cc_open_loop {
            let view = self.view();
            let sample = AckSample {
                now,
                acked_bytes: entry.size,
                rtt: rtt_sample,
                delivery_rate,
                delivered_total: self.delivered_bytes,
                packet_delivered_at_send: entry.delivered_at_send,
                inflight_bytes: self.inflight_bytes,
                newly_lost_bytes: newly_lost,
            };
            self.cc.on_ack(&sample, &view);
        }

        if let Some(limit) = self.byte_limit {
            if self.completion_time.is_none() && self.delivered_bytes >= limit {
                self.completion_time = Some(now);
                self.just_completed = true;
                #[cfg(test)]
                let keep_alive = self.teardown_disabled;
                #[cfg(not(test))]
                let keep_alive = false;
                if !keep_alive {
                    // Returning before arm_rto/try_send is what actually
                    // deschedules the flow: the completion ACK no longer
                    // plants a pacing event, and no new RTO check is armed.
                    self.teardown(now);
                    return;
                }
            }
        }
        self.arm_rto(now, events);
        self.try_send(now, queue, events);
    }

    /// Send as much as window and pacing allow.
    pub fn try_send(&mut self, now: SimTime, queue: &mut DropTailQueue, events: &mut EventQueue) {
        if !self.started || now < self.start_time {
            return;
        }
        loop {
            if self.inflight_bytes + self.mss > self.cc.cwnd_bytes() {
                break;
            }
            if let Some(rate) = self.cc.pacing_rate() {
                debug_assert!(rate > 0.0);
                if now < self.pacing_release {
                    if !self.pacing_event_pending {
                        self.pacing_event_pending = true;
                        events.schedule(self.pacing_release, Event::Pacing(self.id));
                    }
                    break;
                }
                // Space the *next* packet.
                let gap = SimDuration::from_secs_f64(self.mss as f64 / rate);
                let base = if self.pacing_release > now {
                    self.pacing_release
                } else {
                    now
                };
                self.pacing_release = base + gap;
            }

            // Retransmissions take priority over new data.
            let (seq, is_retransmit) = match self.rtx_queue.pop_front() {
                Some(s) => (s, true),
                None => {
                    if !self.has_new_data() {
                        break; // finite flow: everything has been sent
                    }
                    let s = self.next_seq;
                    self.next_seq += 1;
                    (s, false)
                }
            };
            let txid = self.next_txid;
            self.next_txid += 1;
            let entry = SentPacket {
                size: self.mss,
                sent_time: now,
                txid,
                is_retransmit,
                delivered_at_send: self.delivered_bytes,
                delivered_time_at_send: if self.delivered_time == SimTime::ZERO {
                    now
                } else {
                    self.delivered_time
                },
                dup_count: 0,
                marked_lost: false,
            };
            let was_empty = self.unacked.is_empty();
            self.unacked.insert(seq, entry);
            self.inflight_bytes += self.mss;
            self.stats.sent_bytes += self.mss;
            if is_retransmit {
                self.stats.retransmits += 1;
            }
            self.integrate_cwnd(now);
            if !self.cc_open_loop {
                let view = self.view();
                self.cc.on_packet_sent(now, self.mss, &view);
            }

            let pkt = Packet {
                flow: self.id,
                seq,
                size: self.mss,
            };
            let (ingress, pre_delay) = match &self.path {
                Some(p) => (p.ingress_slot(), p.pre_delay),
                None => (0, SimDuration::ZERO),
            };
            if pre_delay.as_nanos() > 0 {
                // Sender-side propagation before the first rated hop:
                // the packet crosses the leading wires as one event.
                self.hops_in_flight += 1;
                events.schedule_hop(now + pre_delay, ingress, pkt);
            } else {
                match queue.offer(now, pkt) {
                    Offer::StartService => {
                        let done = now + queue.serialization_time(pkt.size);
                        events.schedule(done, Event::LinkDequeue(ingress));
                    }
                    Offer::Queued => {}
                    Offer::Dropped => {
                        // Tail drop: discovered later via dup-ACKs or RTO.
                    }
                }
            }
            if was_empty {
                self.arm_rto(now, events);
            }
        }
    }

    /// Mean of all RTT samples, in seconds.
    pub fn mean_rtt_secs(&self) -> Option<f64> {
        if self.stats.rtt_samples == 0 {
            None
        } else {
            Some(self.stats.rtt_sum / self.stats.rtt_samples as f64)
        }
    }

    /// Final cwnd-integral update at simulation end.
    pub fn finalize(&mut self, now: SimTime) {
        self.integrate_cwnd(now);
    }

    /// Snapshot the cwnd integral at the measurement-window start, so the
    /// reported average cwnd covers only the window.
    pub fn mark_measure_start(&mut self, t: SimTime) {
        // Before on_start the integral clock hasn't begun; integrating
        // here would credit phantom pre-start cwnd time.
        if self.started {
            self.integrate_cwnd(t);
        }
        self.stats.cwnd_integral_mark = self.stats.cwnd_time_integral;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(txid: u64) -> SentPacket {
        SentPacket {
            size: 1500,
            sent_time: SimTime::ZERO,
            txid,
            is_retransmit: false,
            delivered_at_send: 0,
            delivered_time_at_send: SimTime::ZERO,
            dup_count: 0,
            marked_lost: false,
        }
    }

    #[test]
    fn scoreboard_inserts_removes_and_tracks_head() {
        let mut sb = Scoreboard::default();
        assert!(sb.is_empty());
        for seq in 0..5 {
            sb.insert(seq, entry(seq));
        }
        assert_eq!(sb.head_seq(), 0);
        // Remove from the middle: head unchanged, hole opens.
        assert!(sb.remove(2).is_some());
        assert_eq!(sb.head_seq(), 0);
        assert!(sb.remove(2).is_none(), "double remove yields None");
        // Remove the head: advances past the hole at 2? No — 1 is live.
        assert!(sb.remove(0).is_some());
        assert_eq!(sb.head_seq(), 1);
        // Removing 1 skips the hole at 2 and lands on 3.
        assert!(sb.remove(1).is_some());
        assert_eq!(sb.head_seq(), 3);
        assert!(sb.remove(3).is_some());
        assert!(sb.remove(4).is_some());
        assert!(sb.is_empty());
        // After draining, appending the next sequence restarts cleanly.
        sb.insert(5, entry(5));
        assert_eq!(sb.head_seq(), 5);
        assert!(!sb.is_empty());
    }

    #[test]
    fn scoreboard_retransmit_replaces_in_place() {
        let mut sb = Scoreboard::default();
        sb.insert(0, entry(0));
        sb.insert(1, entry(1));
        let replacement = SentPacket {
            txid: 9,
            is_retransmit: true,
            ..entry(0)
        };
        sb.insert(0, replacement);
        assert_eq!(sb.outstanding, 2);
        let got = sb.remove(0).unwrap();
        assert_eq!(got.txid, 9);
        assert!(got.is_retransmit);
    }

    #[test]
    fn receiver_window_bitmap_matches_set_semantics() {
        let mut f = Flow::new(
            FlowId(0),
            Box::new(crate::cc::FixedWindow::new(10_000)),
            1500,
            SimDuration::from_millis(5),
            SimDuration::from_millis(5),
            SimTime::ZERO,
        );
        // In-order delivery.
        assert_eq!(f.receiver_on_data(0, 1500), 1500);
        assert_eq!(f.rcv_next, 1);
        // Gap: 2 and 4 arrive before 1.
        assert_eq!(f.receiver_on_data(2, 1500), 1500);
        assert_eq!(f.receiver_on_data(4, 1500), 1500);
        assert_eq!(f.rcv_next, 1);
        // Duplicates of buffered and already-delivered data count zero.
        assert_eq!(f.receiver_on_data(2, 1500), 0);
        assert_eq!(f.receiver_on_data(0, 1500), 0);
        // Filling the hole advances through the buffered run.
        assert_eq!(f.receiver_on_data(1, 1500), 1500);
        assert_eq!(f.rcv_next, 3);
        assert_eq!(f.receiver_on_data(3, 1500), 1500);
        assert_eq!(f.rcv_next, 5);
    }

    #[test]
    fn rtx_queue_stays_sorted_under_out_of_order_marking() {
        let mut f = Flow::new(
            FlowId(0),
            Box::new(crate::cc::FixedWindow::new(10_000)),
            1500,
            SimDuration::from_millis(5),
            SimDuration::from_millis(5),
            SimTime::ZERO,
        );
        for s in [5u64, 7, 3, 9, 4] {
            f.rtx_push(s);
        }
        f.rtx_cancel(7);
        let drained: Vec<u64> = std::iter::from_fn(|| f.rtx_queue.pop_front()).collect();
        assert_eq!(drained, vec![3, 4, 5, 9]);
    }
}
