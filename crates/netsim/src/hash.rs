//! Stable, process-independent hashing for simulation configurations.
//!
//! The scenario result cache (`bbrdom-experiments`) and the sweep
//! journal key cached/resumable results by the *content* of a run's
//! configuration. `std::hash` is unsuitable for that: `Hasher` output
//! is only guaranteed stable within one process and one std version.
//! This module provides a fixed algorithm — FNV-1a with a 128-bit state
//! — whose output is pinned by golden tests, so an on-disk cache entry
//! written today is still addressable by a build from next year.
//!
//! Composite values hash their fields in declared order; enums hash a
//! discriminant byte before their payload; sequences and strings are
//! length-prefixed. `f64` hashes its raw bit pattern, so two configs
//! hash alike exactly when their floats are bit-identical — the same
//! criterion the simulator's determinism guarantee uses.

use crate::aqm::{CodelConfig, QueueDiscipline, RedConfig};
use crate::fault::FaultSchedule;
use crate::sim::SimConfig;
use crate::stop::EarlyStop;
use crate::time::{SimDuration, SimTime};
use crate::topo::{LinkSpec, Topology};
use crate::trace::TraceConfig;
use crate::units::Rate;
use crate::workload::{ArrivalProcess, SizeDist, WorkloadConfig};

const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// A 128-bit FNV-1a hasher with process-independent output.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u128,
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl StableHasher {
    pub fn new() -> Self {
        StableHasher {
            state: FNV128_OFFSET,
        }
    }

    /// Absorb raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u128;
            self.state = self.state.wrapping_mul(FNV128_PRIME);
        }
    }

    /// The 128-bit digest of everything absorbed so far.
    pub fn finish(&self) -> u128 {
        self.state
    }

    /// The digest as a fixed-width lowercase hex string (32 chars) —
    /// the format cache filenames and journal keys use.
    pub fn finish_hex(&self) -> String {
        format!("{:032x}", self.state)
    }
}

/// Values that contribute to a stable configuration digest.
pub trait StableHash {
    fn stable_hash(&self, h: &mut StableHasher);
}

macro_rules! int_stable_hash {
    ($($t:ty),*) => {$(
        impl StableHash for $t {
            fn stable_hash(&self, h: &mut StableHasher) {
                h.write_bytes(&self.to_le_bytes());
            }
        }
    )*};
}
int_stable_hash!(u8, u16, u32, u64, u128, i8, i16, i32, i64);

impl StableHash for bool {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_bytes(&[*self as u8]);
    }
}

impl StableHash for f64 {
    fn stable_hash(&self, h: &mut StableHasher) {
        h.write_bytes(&self.to_bits().to_le_bytes());
    }
}

impl StableHash for str {
    fn stable_hash(&self, h: &mut StableHasher) {
        (self.len() as u64).stable_hash(h);
        h.write_bytes(self.as_bytes());
    }
}

impl StableHash for String {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.as_str().stable_hash(h);
    }
}

impl<T: StableHash> StableHash for Option<T> {
    fn stable_hash(&self, h: &mut StableHasher) {
        match self {
            None => h.write_bytes(&[0]),
            Some(v) => {
                h.write_bytes(&[1]);
                v.stable_hash(h);
            }
        }
    }
}

impl<T: StableHash> StableHash for [T] {
    fn stable_hash(&self, h: &mut StableHasher) {
        (self.len() as u64).stable_hash(h);
        for item in self {
            item.stable_hash(h);
        }
    }
}

impl<T: StableHash> StableHash for Vec<T> {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.as_slice().stable_hash(h);
    }
}

impl<A: StableHash, B: StableHash> StableHash for (A, B) {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.0.stable_hash(h);
        self.1.stable_hash(h);
    }
}

impl<A: StableHash, B: StableHash, C: StableHash> StableHash for (A, B, C) {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.0.stable_hash(h);
        self.1.stable_hash(h);
        self.2.stable_hash(h);
    }
}

impl StableHash for SimTime {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.0.stable_hash(h);
    }
}

impl StableHash for SimDuration {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.0.stable_hash(h);
    }
}

impl StableHash for Rate {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.bytes_per_sec().stable_hash(h);
    }
}

impl StableHash for std::time::Duration {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.as_nanos().stable_hash(h);
    }
}

impl StableHash for RedConfig {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.min_thresh_bytes.stable_hash(h);
        self.max_thresh_bytes.stable_hash(h);
        self.max_p.stable_hash(h);
        self.weight.stable_hash(h);
    }
}

impl StableHash for CodelConfig {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.target.stable_hash(h);
        self.interval.stable_hash(h);
    }
}

impl StableHash for QueueDiscipline {
    fn stable_hash(&self, h: &mut StableHasher) {
        match self {
            QueueDiscipline::DropTail => h.write_bytes(&[0]),
            QueueDiscipline::Red(cfg) => {
                h.write_bytes(&[1]);
                cfg.stable_hash(h);
            }
            QueueDiscipline::Codel(cfg) => {
                h.write_bytes(&[2]);
                cfg.stable_hash(h);
            }
        }
    }
}

impl StableHash for FaultSchedule {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.loss_fwd.stable_hash(h);
        self.loss_ack.stable_hash(h);
        self.seed.stable_hash(h);
        self.outages.stable_hash(h);
        self.rate_changes.stable_hash(h);
        self.delay_spikes.stable_hash(h);
    }
}

impl StableHash for EarlyStop {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.window.stable_hash(h);
        self.epsilon.stable_hash(h);
        self.dwell.stable_hash(h);
        self.min_time.stable_hash(h);
    }
}

impl StableHash for TraceConfig {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.stride.stable_hash(h);
        self.max_samples.stable_hash(h);
    }
}

impl StableHash for ArrivalProcess {
    fn stable_hash(&self, h: &mut StableHasher) {
        match self {
            ArrivalProcess::Poisson { rate_per_sec } => {
                h.write_bytes(&[0]);
                rate_per_sec.stable_hash(h);
            }
            ArrivalProcess::Deterministic { interval } => {
                h.write_bytes(&[1]);
                interval.stable_hash(h);
            }
        }
    }
}

impl StableHash for SizeDist {
    fn stable_hash(&self, h: &mut StableHasher) {
        match self {
            SizeDist::Fixed { bytes } => {
                h.write_bytes(&[0]);
                bytes.stable_hash(h);
            }
            SizeDist::BoundedPareto {
                alpha,
                min_bytes,
                max_bytes,
            } => {
                h.write_bytes(&[1]);
                alpha.stable_hash(h);
                min_bytes.stable_hash(h);
                max_bytes.stable_hash(h);
            }
        }
    }
}

impl StableHash for WorkloadConfig {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.arrivals.stable_hash(h);
        self.sizes.stable_hash(h);
        self.base_rtt.stable_hash(h);
        self.seed.stable_hash(h);
        self.start.stable_hash(h);
    }
}

impl StableHash for LinkSpec {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.from.stable_hash(h);
        self.to.stable_hash(h);
        self.rate.stable_hash(h);
        self.delay.stable_hash(h);
        self.buffer_bytes.stable_hash(h);
    }
}

impl StableHash for Topology {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.n_nodes.stable_hash(h);
        self.links.stable_hash(h);
        self.routes.stable_hash(h);
        self.flow_routes.stable_hash(h);
        self.workload_route.stable_hash(h);
        self.fault_link.stable_hash(h);
    }
}

impl StableHash for SimConfig {
    fn stable_hash(&self, h: &mut StableHasher) {
        self.rate.stable_hash(h);
        self.buffer_bytes.stable_hash(h);
        self.duration.stable_hash(h);
        self.measure_start.stable_hash(h);
        self.mss.stable_hash(h);
        self.sample_interval.stable_hash(h);
        self.discipline.stable_hash(h);
        self.ack_jitter.stable_hash(h);
        self.seed.stable_hash(h);
        self.faults.stable_hash(h);
        self.audit.stable_hash(h);
        self.max_events.stable_hash(h);
        self.max_wall_clock.stable_hash(h);
        // Fields added after the cache format was pinned are folded in
        // only when they differ from their defaults, behind a distinct
        // marker string. Default-configured runs keep their historical
        // digest (the golden digest below), and because the byte stream
        // is strictly extended — never reinterpreted — a policy-bearing
        // config can never alias a default one.
        if let Some(stop) = &self.stop {
            h.write_bytes(b"early_stop");
            stop.stable_hash(h);
        }
        if !self.trace_config.is_default() {
            h.write_bytes(b"trace_cfg");
            self.trace_config.stable_hash(h);
        }
        if let Some(wl) = &self.workload {
            h.write_bytes(b"workload");
            wl.stable_hash(h);
        }
        if let Some(t) = &self.topology {
            h.write_bytes(b"topology");
            t.stable_hash(h);
        }
    }
}

/// Digest a single value with a fresh hasher.
pub fn stable_digest<T: StableHash + ?Sized>(value: &T) -> u128 {
    let mut h = StableHasher::new();
    value.stable_hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// FNV-1a 128 test vectors (empty input = offset basis; "a" is the
    /// classic reference vector). Pins the algorithm across versions.
    #[test]
    fn fnv128_reference_vectors() {
        assert_eq!(StableHasher::new().finish(), FNV128_OFFSET);
        let mut h = StableHasher::new();
        h.write_bytes(b"a");
        assert_eq!(h.finish(), 0xd228_cb69_6f1a_8caf_7891_2b70_4e4a_8964);
    }

    fn base_config() -> SimConfig {
        SimConfig::new(
            Rate::from_mbps(10.0),
            64_000,
            SimDuration::from_secs_f64(5.0),
        )
    }

    /// Every public `SimConfig` field must feed the digest: a config
    /// differing in any one field must hash differently, or the result
    /// cache could alias two distinct simulations.
    #[test]
    fn every_sim_config_field_changes_the_hash() {
        let base = stable_digest(&base_config());
        let mutations: Vec<(&str, SimConfig)> = vec![
            ("rate", {
                let mut c = base_config();
                c.rate = Rate::from_mbps(11.0);
                c
            }),
            ("buffer_bytes", {
                let mut c = base_config();
                c.buffer_bytes += 1;
                c
            }),
            ("duration", {
                let mut c = base_config();
                c.duration = SimDuration::from_secs_f64(6.0);
                c
            }),
            ("measure_start", {
                let mut c = base_config();
                c.measure_start = SimTime::from_secs_f64(1.0);
                c
            }),
            ("mss", {
                let mut c = base_config();
                c.mss += 8;
                c
            }),
            ("sample_interval", {
                let mut c = base_config();
                c.sample_interval = Some(SimDuration::from_millis(100));
                c
            }),
            ("discipline", {
                let mut c = base_config();
                c.discipline = QueueDiscipline::Codel(CodelConfig::default());
                c
            }),
            ("ack_jitter", {
                let mut c = base_config();
                c.ack_jitter = SimDuration::from_micros(100);
                c
            }),
            ("seed", {
                let mut c = base_config();
                c.seed = 7;
                c
            }),
            ("faults", {
                let mut c = base_config();
                c.faults = FaultSchedule::none().with_loss(0.01);
                c
            }),
            ("audit", {
                let mut c = base_config();
                c.audit = true;
                c
            }),
            ("max_events", {
                let mut c = base_config();
                c.max_events = Some(1_000_000);
                c
            }),
            ("max_wall_clock", {
                let mut c = base_config();
                c.max_wall_clock = Some(std::time::Duration::from_secs(60));
                c
            }),
            ("stop", {
                let mut c = base_config();
                c.stop = Some(EarlyStop::new(0.05, 3));
                c
            }),
            ("trace_config.stride", {
                let mut c = base_config();
                c.trace_config.stride = 4;
                c
            }),
            ("trace_config.max_samples", {
                let mut c = base_config();
                c.trace_config.max_samples = Some(1_000);
                c
            }),
            ("workload", {
                let mut c = base_config();
                c.workload = Some(base_workload());
                c
            }),
            ("topology", {
                let mut c = base_config();
                c.topology = Some(base_topology());
                c
            }),
        ];
        for (field, mutated) in mutations {
            assert_ne!(
                stable_digest(&mutated),
                base,
                "mutating SimConfig::{field} did not change the stable hash"
            );
        }
    }

    /// Every `FaultSchedule` field feeds the digest too (the schedule is
    /// a nested struct of `SimConfig`, so aliasing here would also alias
    /// whole configs).
    #[test]
    fn every_fault_schedule_field_changes_the_hash() {
        let base = stable_digest(&FaultSchedule::none());
        let muts: Vec<(&str, FaultSchedule)> = vec![
            ("loss_fwd", FaultSchedule::none().with_loss(0.01)),
            ("loss_ack", FaultSchedule::none().with_ack_loss(0.01)),
            ("seed", FaultSchedule::none().with_seed(3)),
            (
                "outages",
                FaultSchedule::none()
                    .with_outage(SimTime::from_secs_f64(1.0), SimDuration::from_millis(100)),
            ),
            (
                "rate_changes",
                FaultSchedule::none()
                    .with_rate_step(SimTime::from_secs_f64(1.0), Rate::from_mbps(5.0)),
            ),
            (
                "delay_spikes",
                FaultSchedule::none().with_delay_spike(
                    SimTime::from_secs_f64(1.0),
                    SimDuration::from_millis(100),
                    SimDuration::from_millis(10),
                ),
            ),
        ];
        for (field, mutated) in muts {
            assert_ne!(
                stable_digest(&mutated),
                base,
                "mutating FaultSchedule::{field} did not change the stable hash"
            );
        }
    }

    /// Every `EarlyStop` field must feed the digest once a policy is
    /// set — two different stop policies must never share cache entries.
    #[test]
    fn every_early_stop_field_changes_the_hash() {
        let stopped = |f: fn(&mut EarlyStop)| {
            let mut c = base_config();
            let mut stop = EarlyStop::new(0.05, 3);
            f(&mut stop);
            c.stop = Some(stop);
            c
        };
        let base = stable_digest(&stopped(|_| {}));
        let muts: Vec<(&str, SimConfig)> = vec![
            (
                "window",
                stopped(|s| s.window = SimDuration::from_millis(500)),
            ),
            ("epsilon", stopped(|s| s.epsilon = 0.01)),
            ("dwell", stopped(|s| s.dwell = 5)),
            (
                "min_time",
                stopped(|s| s.min_time = SimDuration::from_secs_f64(1.0)),
            ),
        ];
        for (field, mutated) in muts {
            assert_ne!(
                stable_digest(&mutated),
                base,
                "mutating EarlyStop::{field} did not change the stable hash"
            );
        }
        // And a fixed-horizon config never aliases an early-stopped one.
        assert_ne!(stable_digest(&base_config()), base);
    }

    fn base_workload() -> crate::workload::WorkloadConfig {
        use crate::workload::{ArrivalProcess, SizeDist, WorkloadConfig};
        WorkloadConfig::new(
            ArrivalProcess::Poisson { rate_per_sec: 50.0 },
            SizeDist::Fixed { bytes: 30_000 },
            SimDuration::from_millis(40),
            1,
        )
    }

    /// Every `WorkloadConfig` field (and both payloads of each enum
    /// variant) must feed the digest once a workload is attached.
    #[test]
    fn every_workload_field_changes_the_hash() {
        use crate::workload::{ArrivalProcess, SizeDist};
        let with = |f: fn(&mut crate::workload::WorkloadConfig)| {
            let mut c = base_config();
            let mut wl = base_workload();
            f(&mut wl);
            c.workload = Some(wl);
            c
        };
        let base = stable_digest(&with(|_| {}));
        let muts: Vec<(&str, SimConfig)> = vec![
            (
                "arrivals.rate",
                with(|w| w.arrivals = ArrivalProcess::Poisson { rate_per_sec: 51.0 }),
            ),
            (
                "arrivals.variant",
                with(|w| {
                    w.arrivals = ArrivalProcess::Deterministic {
                        interval: SimDuration::from_millis(20),
                    }
                }),
            ),
            (
                "sizes.bytes",
                with(|w| w.sizes = SizeDist::Fixed { bytes: 30_001 }),
            ),
            (
                "sizes.variant",
                with(|w| {
                    w.sizes = SizeDist::BoundedPareto {
                        alpha: 1.2,
                        min_bytes: 10_000,
                        max_bytes: 1_000_000,
                    }
                }),
            ),
            (
                "base_rtt",
                with(|w| w.base_rtt = SimDuration::from_millis(41)),
            ),
            ("seed", with(|w| w.seed = 2)),
            ("start", with(|w| w.start = SimTime::from_secs_f64(1.0))),
        ];
        for (field, mutated) in muts {
            assert_ne!(
                stable_digest(&mutated),
                base,
                "mutating WorkloadConfig::{field} did not change the stable hash"
            );
        }
        // A workload-free config never aliases a workload-bearing one.
        assert_ne!(stable_digest(&base_config()), base);
    }

    fn base_topology() -> Topology {
        Topology::parking_lot(
            2,
            Rate::from_mbps(10.0),
            SimDuration::from_millis(2),
            30_000,
        )
    }

    /// Every `Topology` field — including every `LinkSpec` field — must
    /// feed the digest once a topology is attached; two different
    /// topologies must never share cache entries.
    #[test]
    fn every_topology_field_changes_the_hash() {
        let with = |f: fn(&mut Topology)| {
            let mut c = base_config();
            let mut t = base_topology();
            f(&mut t);
            c.topology = Some(t);
            c
        };
        let base = stable_digest(&with(|_| {}));
        let muts: Vec<(&str, SimConfig)> = vec![
            ("n_nodes", with(|t| t.n_nodes += 1)),
            ("links.from", with(|t| t.links[0].from = 2)),
            ("links.to", with(|t| t.links[0].to = 2)),
            ("links.rate", with(|t| t.links[0].rate = None)),
            (
                "links.rate value",
                with(|t| t.links[0].rate = Some(Rate::from_mbps(11.0))),
            ),
            (
                "links.delay",
                with(|t| t.links[0].delay = SimDuration::from_millis(3)),
            ),
            ("links.buffer_bytes", with(|t| t.links[0].buffer_bytes += 1)),
            ("routes", with(|t| t.routes.push(vec![0]))),
            ("routes entry", with(|t| t.routes[0] = vec![1])),
            ("flow_routes", with(|t| t.flow_routes = vec![0, 1])),
            ("workload_route", with(|t| t.workload_route = None)),
            ("fault_link", with(|t| t.fault_link = Some(1))),
        ];
        for (field, mutated) in muts {
            assert_ne!(
                stable_digest(&mutated),
                base,
                "mutating Topology::{field} did not change the stable hash"
            );
        }
        // A topology-free config never aliases a topology-bearing one.
        assert_ne!(stable_digest(&base_config()), base);
    }

    /// Sequences are length-prefixed: `["ab"]` and `["a", "b"]` (and
    /// nested splits generally) must not collide.
    #[test]
    fn length_prefixing_separates_sequence_splits() {
        let one: Vec<String> = vec!["ab".into()];
        let two: Vec<String> = vec!["a".into(), "b".into()];
        assert_ne!(stable_digest(&one), stable_digest(&two));
        assert_ne!(stable_digest(&Some(0u64)), stable_digest(&None::<u64>));
    }

    /// The digest of a fixed config is pinned — if this test ever fails,
    /// the on-disk cache format version must be bumped (see
    /// `bbrdom-experiments::engine`).
    #[test]
    fn golden_config_digest_is_stable() {
        let digest = stable_digest(&base_config());
        assert_eq!(
            format!("{digest:032x}"),
            "43bc15c273a02e3455f28c347ec1f4b6",
            "stable hash of the golden SimConfig changed — bump the cache \
             format version before shipping this"
        );
    }
}
