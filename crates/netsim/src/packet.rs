//! Packet and flow identity types.

/// Identifies a flow within one simulation. Indexes into the simulator's
/// flow table; stable for the lifetime of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u32);

impl FlowId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A data packet in flight. Sequence numbers count packets (not bytes);
/// each packet carries `size` payload bytes (normally one MSS).
///
/// Only identity and size travel on the wire: send-time metadata
/// (transmit timestamps, delivery-rate snapshots) stays on the sender's
/// scoreboard, keyed by `seq` — mirroring Linux's `tcp_rate.c`, where
/// `tcp_skb_cb` state never leaves the host. This keeps the structs the
/// bottleneck queue and event ring shuffle around small.
#[derive(Debug, Clone, Copy)]
pub struct Packet {
    pub flow: FlowId,
    pub seq: u64,
    pub size: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_id_index() {
        assert_eq!(FlowId(7).index(), 7);
    }
}
