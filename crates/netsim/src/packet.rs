//! Packet and flow identity types.

/// Identifies a flow within one simulation. Indexes into the simulator's
/// flow table; stable for the lifetime of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u32);

impl FlowId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A data packet in flight. Sequence numbers count packets (not bytes);
/// each packet carries `size` payload bytes (normally one MSS).
///
/// The fields `delivered_at_send` / `delivered_time_at_send` snapshot the
/// sender's delivery counter when the packet was (re)transmitted; they feed
/// BBR-style delivery-rate samples on the returning ACK, mirroring Linux's
/// `tcp_rate.c` mechanism in simplified form.
#[derive(Debug, Clone, Copy)]
pub struct Packet {
    pub flow: FlowId,
    pub seq: u64,
    pub size: u64,
    /// When this copy of the packet left the sender.
    pub sent_time: crate::time::SimTime,
    /// True if this is a retransmission (excluded from RTT/rate samples).
    pub is_retransmit: bool,
    /// Sender's delivered-bytes counter at (re)transmit time.
    pub delivered_at_send: u64,
    /// Sender's delivered-time at (re)transmit time.
    pub delivered_time_at_send: crate::time::SimTime,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_id_index() {
        assert_eq!(FlowId(7).index(), 7);
    }
}
