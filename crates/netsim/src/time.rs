//! Simulation clock: nanosecond-resolution virtual time.
//!
//! All simulator timestamps are [`SimTime`] (nanoseconds since simulation
//! start) and all intervals are [`SimDuration`]. Using integer nanoseconds
//! keeps event ordering exact and runs reproducible; floating point is used
//! only at the edges (rates, seconds for human-facing config).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

pub const NANOS_PER_SEC: u64 = 1_000_000_000;

impl SimTime {
    /// Time zero (simulation start).
    pub const ZERO: SimTime = SimTime(0);
    /// A sentinel far in the future (used for "no deadline").
    pub const FAR_FUTURE: SimTime = SimTime(u64::MAX);

    /// Construct from (possibly fractional) seconds. Panics on negative input.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs >= 0.0, "SimTime cannot be negative: {secs}");
        SimTime((secs * NANOS_PER_SEC as f64).round() as u64)
    }

    /// This instant expressed in seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Nanoseconds since simulation start.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Elapsed time since `earlier`; saturates to zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from (possibly fractional) seconds. Panics on negative input.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs >= 0.0, "SimDuration cannot be negative: {secs}");
        SimDuration((secs * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Construct from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// This duration expressed in seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Nanoseconds in this duration.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Scale by a non-negative factor (used for gain-cycle phase lengths).
    pub fn mul_f64(self, f: f64) -> Self {
        assert!(f >= 0.0, "cannot scale a duration by a negative factor");
        SimDuration((self.0 as f64 * f).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics if `rhs` is later than `self` (a logic error in the caller).
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_secs() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn add_duration() {
        let t = SimTime::from_secs_f64(1.0) + SimDuration::from_millis(250);
        assert_eq!(t, SimTime::from_secs_f64(1.25));
    }

    #[test]
    fn subtraction_gives_duration() {
        let a = SimTime::from_secs_f64(2.0);
        let b = SimTime::from_secs_f64(0.5);
        assert_eq!(a - b, SimDuration::from_secs_f64(1.5));
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_secs_f64(1.0);
        let b = SimTime::from_secs_f64(3.0);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs_f64(2.0));
    }

    #[test]
    #[should_panic]
    fn subtraction_underflow_panics() {
        let _ = SimTime::from_secs_f64(1.0) - SimTime::from_secs_f64(2.0);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_millis(100).mul_f64(2.5);
        assert_eq!(d, SimDuration::from_millis(250));
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [
            SimTime::from_secs_f64(3.0),
            SimTime::ZERO,
            SimTime::from_secs_f64(1.0),
        ];
        v.sort();
        assert_eq!(v[0], SimTime::ZERO);
        assert_eq!(v[2], SimTime::from_secs_f64(3.0));
    }
}
