//! Opt-in runtime invariant auditor.
//!
//! When enabled — `BBRDOM_AUDIT=1` in the environment or
//! [`crate::SimConfig::with_audit`] — the simulator weaves a checker into
//! its event loop that verifies, as the run progresses:
//!
//! * **monotonic event time**: the clock never goes backwards;
//! * **queue bounds**: queued bytes never exceed the configured buffer,
//!   and the per-flow occupancy breakdown sums to the total;
//! * **packet conservation** (per flow): every sent packet is accounted
//!   for exactly once across in-flight-between-hops / dropped /
//!   still-queued / in-service on each queue of its route / serviced at
//!   the last hop, every last-hop-serviced packet was either delivered
//!   or lost on the wire, and every delivered packet either produced an
//!   ACK event or lost its ACK;
//! * **sane control state**: cwnd stays positive, pacing rates stay
//!   finite and positive;
//! * **report finiteness** at drain: no NaN/∞ reaches the CSVs.
//!
//! A violation aborts the run with an [`AuditViolation`] carrying the
//! flow and simulated time, instead of letting corrupt numbers flow
//! silently into `results/*.csv`.
//!
//! Cost model: the cheap checks (time, queue bounds) run on every event;
//! the O(flows) conservation sweep runs every [`DEEP_CHECK_INTERVAL`]
//! events and once at drain. With auditing off the simulator pays one
//! branch per event, keeping `netsim_perf` within its budget.

use crate::error::AuditViolation;
use crate::flow::Flow;
use crate::packet::FlowId;
use crate::queue::DropTailQueue;
use crate::stats::{FlowReport, QueueReport};
use crate::time::SimTime;
use std::sync::OnceLock;

/// How many events between full conservation sweeps.
pub const DEEP_CHECK_INTERVAL: u64 = 256;

/// Whether `BBRDOM_AUDIT` requests auditing (cached after first read).
pub fn env_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| {
        std::env::var("BBRDOM_AUDIT")
            .map(|v| !(v.is_empty() || v == "0"))
            .unwrap_or(false)
    })
}

/// Per-run audit state, owned by the simulator's event loop.
#[derive(Debug)]
pub(crate) struct Auditor {
    last_now: SimTime,
    events_seen: u64,
    /// Packets handed to each flow's receiver.
    delivered: Vec<u64>,
    /// ACK events scheduled (delivered minus ACK-path wire losses).
    acks_scheduled: Vec<u64>,
    /// ACK events that have fired.
    acks_fired: Vec<u64>,
}

fn violation(
    time: SimTime,
    flow: Option<FlowId>,
    check: &'static str,
    detail: String,
) -> AuditViolation {
    AuditViolation {
        time,
        flow,
        check,
        detail,
    }
}

impl Auditor {
    pub(crate) fn new(n_flows: usize) -> Self {
        Auditor {
            last_now: SimTime::ZERO,
            events_seen: 0,
            delivered: vec![0; n_flows],
            acks_scheduled: vec![0; n_flows],
            acks_fired: vec![0; n_flows],
        }
    }

    /// Extend the per-flow ledgers to cover `n_flows` flows (open-loop
    /// workload growth).
    pub(crate) fn grow_to(&mut self, n_flows: usize) {
        if n_flows <= self.delivered.len() {
            return;
        }
        self.delivered.resize(n_flows, 0);
        self.acks_scheduled.resize(n_flows, 0);
        self.acks_fired.resize(n_flows, 0);
    }

    /// Zero the ledgers of a quiescent recycled slot, in lockstep with
    /// [`crate::queue::DropTailQueue::reset_flow_slot`], so conservation
    /// holds (0 = 0) for the slot's next occupant.
    pub(crate) fn reset_flow_slot(&mut self, flow: FlowId) {
        self.delivered[flow.index()] = 0;
        self.acks_scheduled[flow.index()] = 0;
        self.acks_fired[flow.index()] = 0;
    }

    pub(crate) fn on_delivered(&mut self, flow: FlowId) {
        self.delivered[flow.index()] += 1;
    }

    pub(crate) fn on_ack_scheduled(&mut self, flow: FlowId) {
        self.acks_scheduled[flow.index()] += 1;
    }

    pub(crate) fn on_ack_fired(&mut self, flow: FlowId) {
        self.acks_fired[flow.index()] += 1;
    }

    /// Run after every dispatched event.
    pub(crate) fn after_event(
        &mut self,
        now: SimTime,
        queues: &[DropTailQueue],
        flows: &[Flow],
    ) -> Result<(), AuditViolation> {
        if now < self.last_now {
            return Err(violation(
                now,
                None,
                "monotonic-time",
                format!("event at {now} after {}", self.last_now),
            ));
        }
        self.last_now = now;
        for queue in queues {
            if queue.queued_bytes() > queue.capacity_bytes() {
                return Err(violation(
                    now,
                    None,
                    "queue-bound",
                    format!(
                        "queued {} bytes > capacity {}",
                        queue.queued_bytes(),
                        queue.capacity_bytes()
                    ),
                ));
            }
        }
        self.events_seen += 1;
        if self.events_seen.is_multiple_of(DEEP_CHECK_INTERVAL) {
            self.deep_check(now, queues, flows)?;
        }
        Ok(())
    }

    /// The O(flows × hops) conservation sweep.
    ///
    /// On a multi-hop path the per-flow identity telescopes along the
    /// route: every sent packet is in flight between hops, held by some
    /// queue on the path (dropped / queued / in service), or was
    /// serviced by the *last* hop — which is the only place delivery
    /// and wire loss happen. Legacy flows (no path) reduce to the
    /// single-queue identity with zero hops in flight.
    pub(crate) fn deep_check(
        &self,
        now: SimTime,
        queues: &[DropTailQueue],
        flows: &[Flow],
    ) -> Result<(), AuditViolation> {
        let mut per_flow_queued_total = vec![0u64; queues.len()];
        for flow in flows {
            let id = flow.id;
            let mss = flow.mss().max(1);
            let legacy_path = [0u32];
            let path: &[u32] = flow.path().map_or(&legacy_path, |p| &p.ser);
            let mut held = 0u64; // dropped + queued + in-service over the path
            for (hop, &slot) in path.iter().enumerate() {
                let queue = &queues[slot as usize];
                let offered = queue.offered_packets_of(id);
                let dropped = queue.dropped_packets_of(id);
                let serviced = queue.serviced_packets_of(id);
                let queued_pkts = queue.queued_bytes_of(id) / mss;
                let in_service = (queue.in_service_flow() == Some(id)) as u64;
                let accounted = dropped + serviced + queued_pkts + in_service;
                if offered != accounted {
                    return Err(violation(
                        now,
                        Some(id),
                        "packet-conservation",
                        format!(
                            "hop {hop}: offered={offered} != dropped={dropped} + \
                             serviced={serviced} + queued={queued_pkts} + \
                             in_service={in_service}"
                        ),
                    ));
                }
                held += dropped + queued_pkts + in_service;
            }
            for (slot, total) in per_flow_queued_total.iter_mut().enumerate() {
                *total += queues[slot].queued_bytes_of(id);
            }
            let last = &queues[*path.last().expect("paths are non-empty") as usize];
            let serviced = last.serviced_packets_of(id);
            let sent_pkts = flow.stats.sent_bytes / mss;
            let in_flight = flow.hops_in_flight() as u64;
            if sent_pkts != in_flight + held + serviced {
                return Err(violation(
                    now,
                    Some(id),
                    "packet-conservation",
                    format!(
                        "sent={sent_pkts} != hops_in_flight={in_flight} + \
                         held_in_queues={held} + serviced_at_last_hop={serviced}"
                    ),
                ));
            }
            let idx = id.index();
            let wire_lost_fwd = flow.stats.wire_lost_fwd;
            let wire_lost_ack = flow.stats.wire_lost_ack;
            if serviced != self.delivered[idx] + wire_lost_fwd {
                return Err(violation(
                    now,
                    Some(id),
                    "packet-conservation",
                    format!(
                        "serviced={serviced} != delivered={} + wire_lost_fwd={wire_lost_fwd}",
                        self.delivered[idx]
                    ),
                ));
            }
            if self.delivered[idx] != self.acks_scheduled[idx] + wire_lost_ack {
                return Err(violation(
                    now,
                    Some(id),
                    "packet-conservation",
                    format!(
                        "delivered={} != acks_scheduled={} + wire_lost_ack={wire_lost_ack}",
                        self.delivered[idx], self.acks_scheduled[idx]
                    ),
                ));
            }
            if self.acks_fired[idx] > self.acks_scheduled[idx] {
                return Err(violation(
                    now,
                    Some(id),
                    "packet-conservation",
                    format!(
                        "acks fired {} > scheduled {}",
                        self.acks_fired[idx], self.acks_scheduled[idx]
                    ),
                ));
            }

            let cwnd = flow.cc().cwnd_bytes();
            if cwnd == 0 {
                return Err(violation(
                    now,
                    Some(id),
                    "positive-cwnd",
                    "cwnd is 0".into(),
                ));
            }
            if let Some(rate) = flow.cc().pacing_rate() {
                if !rate.is_finite() || rate <= 0.0 {
                    return Err(violation(
                        now,
                        Some(id),
                        "finite-pacing-rate",
                        format!("pacing rate {rate}"),
                    ));
                }
            }
        }
        for (slot, &total) in per_flow_queued_total.iter().enumerate() {
            if total != queues[slot].queued_bytes() {
                return Err(violation(
                    now,
                    None,
                    "queue-bound",
                    format!(
                        "queue {slot}: per-flow occupancy sums to {total} but total is {}",
                        queues[slot].queued_bytes()
                    ),
                ));
            }
        }
        Ok(())
    }

    /// Report-field finiteness at drain: nothing non-finite may reach the
    /// figures.
    pub(crate) fn check_report(
        &self,
        end: SimTime,
        flows: &[FlowReport],
        queue: &QueueReport,
    ) -> Result<(), AuditViolation> {
        for f in flows {
            let fields = [
                ("throughput_bytes_per_sec", f.throughput_bytes_per_sec),
                ("avg_queue_occupancy_bytes", f.avg_queue_occupancy_bytes),
                ("avg_cwnd_bytes", f.avg_cwnd_bytes),
                ("min_rtt_secs", f.min_rtt_secs.unwrap_or(0.0)),
                ("mean_rtt_secs", f.mean_rtt_secs.unwrap_or(0.0)),
                (
                    "completion_time_secs",
                    f.completion_time_secs.unwrap_or(0.0),
                ),
            ];
            for (name, v) in fields {
                if !v.is_finite() {
                    return Err(violation(
                        end,
                        Some(f.flow),
                        "finite-report",
                        format!("{name} = {v}"),
                    ));
                }
            }
        }
        for (name, v) in [
            ("avg_occupancy_bytes", queue.avg_occupancy_bytes),
            ("avg_queuing_delay_secs", queue.avg_queuing_delay_secs),
            ("utilization", queue.utilization),
        ] {
            if !v.is_finite() {
                return Err(violation(
                    end,
                    None,
                    "finite-report",
                    format!("queue {name} = {v}"),
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::FixedWindow;
    use crate::packet::Packet;
    use crate::time::SimDuration;
    use crate::units::{Rate, MSS};

    fn flow(id: u32) -> Flow {
        Flow::new(
            FlowId(id),
            Box::new(FixedWindow::new(4 * MSS)),
            MSS,
            SimDuration::from_millis(5),
            SimDuration::from_millis(5),
            SimTime::ZERO,
        )
    }

    /// Drive a queue and matching flow-stats by hand; the deep check must
    /// accept the consistent state and reject a corrupted counter.
    #[test]
    fn deep_check_accepts_consistent_state_and_catches_corruption() {
        let mut q = DropTailQueue::new(Rate::from_mbps(10.0), 4 * MSS, 1);
        let mut f = flow(0);
        let t = SimTime::ZERO;
        // Two packets: one enters service, one queues.
        for seq in 0..2 {
            let pkt = Packet {
                flow: FlowId(0),
                seq,
                size: MSS,
            };
            q.offer(t, pkt);
            f.stats.sent_bytes += MSS;
        }
        let aud = Auditor::new(1);
        let flows = [f];
        aud.deep_check(t, std::slice::from_ref(&q), &flows)
            .expect("consistent state");

        // Seeded conservation bug: a serviced count with no matching
        // delivery. The auditor must flag it with flow context.
        q.test_corrupt_serviced_counter(FlowId(0));
        let err = aud
            .deep_check(t, std::slice::from_ref(&q), &flows)
            .expect_err("corruption must be caught");
        assert_eq!(err.check, "packet-conservation");
        assert_eq!(err.flow, Some(FlowId(0)));
    }

    #[test]
    fn monotonic_time_violation_is_reported() {
        let q = DropTailQueue::new(Rate::from_mbps(10.0), 4 * MSS, 1);
        let flows = [flow(0)];
        let mut aud = Auditor::new(1);
        aud.after_event(
            SimTime::from_secs_f64(2.0),
            std::slice::from_ref(&q),
            &flows,
        )
        .unwrap();
        let err = aud
            .after_event(
                SimTime::from_secs_f64(1.0),
                std::slice::from_ref(&q),
                &flows,
            )
            .expect_err("time went backwards");
        assert_eq!(err.check, "monotonic-time");
    }

    #[test]
    fn report_finiteness_is_enforced() {
        let aud = Auditor::new(1);
        let queue_report = QueueReport {
            avg_occupancy_bytes: 0.0,
            avg_queuing_delay_secs: 0.0,
            peak_occupancy_bytes: 0,
            capacity_bytes: 1,
            dropped_packets: 0,
            aqm_drops: 0,
            enqueued_packets: 0,
            utilization: f64::NAN,
            drops: vec![],
        };
        let err = aud
            .check_report(SimTime::ZERO, &[], &queue_report)
            .expect_err("NaN utilization must be caught");
        assert_eq!(err.check, "finite-report");
    }
}
