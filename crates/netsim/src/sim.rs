//! The dumbbell simulator: configuration, event loop, and reporting.
//!
//! A [`Simulator`] wires N flows (each with its own congestion-control
//! algorithm and base RTT) through one drop-tail bottleneck, runs the
//! event loop until the configured duration, and returns a [`SimReport`]
//! with per-flow throughput and queue measurements — the raw material for
//! every figure in the paper.
//!
//! [`SimConfig::with_topology`] generalizes the single bottleneck to a
//! multi-hop [`Topology`] (e.g. a parking-lot chain): each rated link
//! owns a queue, and packets enqueue → serialize → propagate hop by hop
//! along each flow's route. Without a topology, the legacy one-queue
//! fast path runs unchanged, bit for bit.
//!
//! # Example
//!
//! ```
//! use bbrdom_netsim::{FlowConfig, SimConfig, Simulator, Rate, SimDuration};
//! use bbrdom_netsim::cc::FixedWindow;
//!
//! let rate = Rate::from_mbps(10.0);
//! let rtt = SimDuration::from_millis(40);
//! let cfg = SimConfig::new(rate, rate.bdp_bytes(rtt), SimDuration::from_secs_f64(5.0));
//! let mut sim = Simulator::new(cfg);
//! // A fixed 2*BDP window saturates the link.
//! sim.add_flow(FlowConfig::new(Box::new(FixedWindow::new(2 * rate.bdp_bytes(rtt))), rtt));
//! let report = sim.run();
//! assert!(report.queue.utilization > 0.9);
//! ```

use crate::aqm::QueueDiscipline;
use crate::audit::Auditor;
use crate::cc::CongestionControl;
use crate::error::{ConfigError, SimError};
use crate::event::{Event, EventQueue};
use crate::fault::{FaultAction, FaultSchedule};
use crate::flow::Flow;
use crate::packet::FlowId;
use crate::queue::{DropTailQueue, Offer};
use crate::stats::{FctPercentiles, FlowReport, QueueReport};
use crate::stop::{ConvergenceDetector, EarlyStop};
use crate::time::{SimDuration, SimTime};
use crate::topo::Topology;
use crate::trace::{Sample, Trace, TraceConfig};
use crate::units::{Rate, MSS};
use crate::workload::WorkloadConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Bottleneck and run-length configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Bottleneck link capacity.
    pub rate: Rate,
    /// Bottleneck buffer size in bytes.
    pub buffer_bytes: u64,
    /// Total simulated time.
    pub duration: SimDuration,
    /// All window-averaged report quantities — throughput, utilization,
    /// average queue occupancy, and average cwnd — cover
    /// `[measure_start, duration]`. The paper measures from flow start;
    /// keep `ZERO` to match.
    pub measure_start: SimTime,
    /// Maximum segment size.
    pub mss: u64,
    /// If set, record a [`Trace`] sample every interval.
    pub sample_interval: Option<SimDuration>,
    /// Sampling stride / cap for long runs (default: every interval,
    /// unbounded — bit-identical to the historical behavior).
    pub trace_config: TraceConfig,
    /// Bottleneck queue discipline (default: drop-tail, as in the paper).
    pub discipline: QueueDiscipline,
    /// Uniform random extra delay on the ACK path, `[0, ack_jitter)`.
    ///
    /// Real hosts and routers have µs-scale timing noise; a perfectly
    /// deterministic simulator phase-locks the ACK clocks so the only
    /// packet ever dropped at a full queue is the *growing* flow's own
    /// marginal packet — which systematically punishes short-RTT flows
    /// (they grow more often per second) and inverts TCP's real RTT
    /// bias. A small jitter dithers the phases so drops land across
    /// bursts, as in real networks. Zero disables it.
    pub ack_jitter: SimDuration,
    /// Seed for the jitter RNG (simulations stay reproducible).
    pub seed: u64,
    /// Path impairments for this run (default: none — a clean path).
    pub faults: FaultSchedule,
    /// Force the runtime invariant auditor on for this run (it is also
    /// enabled globally by `BBRDOM_AUDIT=1`; see [`crate::audit`]).
    pub audit: bool,
    /// Abort the run with [`SimError::EventBudgetExceeded`] after this
    /// many events (livelock guard; `None` = unlimited).
    pub max_events: Option<u64>,
    /// Abort the run with [`SimError::WallClockExceeded`] after this much
    /// real time (`None` = unlimited; checked every 65 536 events).
    pub max_wall_clock: Option<std::time::Duration>,
    /// Opt-in convergence-aware early termination (see [`crate::stop`]).
    /// `None` (the default) runs the full fixed horizon.
    pub stop: Option<EarlyStop>,
    /// Open-loop workload: finite flows arriving during the run (see
    /// [`crate::workload`]). `None` (the default) simulates only the
    /// statically added flows.
    pub workload: Option<WorkloadConfig>,
    /// Multi-hop topology (see [`crate::topo`]). `None` (the default)
    /// keeps the legacy single-bottleneck dumbbell built from `rate` and
    /// `buffer_bytes`. When set, queues come from the topology's rated
    /// links and each flow follows its assigned route; `rate` remains
    /// the reference capacity the top-level queue report is normalized
    /// against.
    pub topology: Option<Topology>,
}

impl SimConfig {
    pub fn new(rate: Rate, buffer_bytes: u64, duration: SimDuration) -> Self {
        SimConfig {
            rate,
            buffer_bytes,
            duration,
            measure_start: SimTime::ZERO,
            mss: MSS,
            sample_interval: None,
            trace_config: TraceConfig::default(),
            discipline: QueueDiscipline::DropTail,
            ack_jitter: SimDuration::ZERO,
            seed: 0,
            faults: FaultSchedule::none(),
            audit: false,
            max_events: None,
            max_wall_clock: None,
            stop: None,
            workload: None,
            topology: None,
        }
    }

    /// Validate the configuration without constructing a simulator.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.buffer_bytes == 0 {
            return Err(ConfigError::NonPositive { field: "buffer" });
        }
        if self.duration == SimDuration::ZERO {
            return Err(ConfigError::NonPositive { field: "duration" });
        }
        if self.mss == 0 {
            return Err(ConfigError::NonPositive { field: "mss" });
        }
        if self.sample_interval == Some(SimDuration::ZERO) {
            return Err(ConfigError::NonPositive {
                field: "trace sample interval",
            });
        }
        if self.trace_config.stride == 0 {
            return Err(ConfigError::NonPositive {
                field: "trace stride",
            });
        }
        if self.trace_config.max_samples == Some(0) {
            return Err(ConfigError::NonPositive {
                field: "trace sample cap",
            });
        }
        if let Some(stop) = &self.stop {
            stop.validate()?;
        }
        if let Some(wl) = &self.workload {
            wl.validate()?;
            // The convergence detector assumes a fixed flow population;
            // open-loop arrivals never settle in that sense.
            if self.stop.is_some() {
                return Err(ConfigError::Unsupported {
                    backend: "open-loop workload",
                    feature: "convergence early-stop",
                });
            }
        }
        if let Some(t) = &self.topology {
            t.validate()?;
            // The convergence detector's goodput window assumes the
            // single shared bottleneck; per-route capacities would need
            // per-route convergence targets.
            if self.stop.is_some() {
                return Err(ConfigError::Unsupported {
                    backend: "multi-hop topology",
                    feature: "convergence early-stop",
                });
            }
            if self.workload.is_some() && t.workload_route.is_none() {
                return Err(ConfigError::InvalidTopology {
                    reason: "an open-loop workload needs workload_route".into(),
                });
            }
        }
        self.faults.validate()
    }

    /// Set a measurement warm-up: all window-averaged report quantities
    /// ignore `[0, start)`.
    pub fn with_measure_start(mut self, start: SimTime) -> Self {
        self.measure_start = start;
        self
    }

    /// Enable time-series tracing at the given sample interval.
    pub fn with_trace(mut self, interval: SimDuration) -> Self {
        assert!(interval > SimDuration::ZERO);
        self.sample_interval = Some(interval);
        self
    }

    /// Replace the drop-tail FIFO with an AQM (RED or CoDel).
    pub fn with_discipline(mut self, discipline: QueueDiscipline) -> Self {
        self.discipline = discipline;
        self
    }

    /// Enable ACK-path timing jitter (see [`SimConfig::ack_jitter`]).
    pub fn with_ack_jitter(mut self, jitter: SimDuration, seed: u64) -> Self {
        self.ack_jitter = jitter;
        self.seed = seed;
        self
    }

    /// Attach a fault schedule (wire loss, outages, rate changes, delay
    /// spikes) to this run.
    pub fn with_faults(mut self, faults: FaultSchedule) -> Self {
        self.faults = faults;
        self
    }

    /// Force the runtime invariant auditor on for this run.
    pub fn with_audit(mut self, audit: bool) -> Self {
        self.audit = audit;
        self
    }

    /// Abort the run after `max_events` dispatched events (livelock guard).
    pub fn with_event_budget(mut self, max_events: u64) -> Self {
        self.max_events = Some(max_events);
        self
    }

    /// Abort the run after `budget` of real (wall-clock) time.
    pub fn with_wall_clock_budget(mut self, budget: std::time::Duration) -> Self {
        self.max_wall_clock = Some(budget);
        self
    }

    /// Thin or cap trace sampling (see [`TraceConfig`]).
    pub fn with_trace_config(mut self, tc: TraceConfig) -> Self {
        self.trace_config = tc;
        self
    }

    /// Enable convergence-aware early termination (see [`crate::stop`]).
    pub fn with_early_stop(mut self, stop: EarlyStop) -> Self {
        self.stop = Some(stop);
        self
    }

    /// Attach an open-loop workload (finite flows arriving during the
    /// run). The congestion-control factory for spawned flows is set via
    /// [`Simulator::set_workload_cc`].
    pub fn with_workload(mut self, wl: WorkloadConfig) -> Self {
        self.workload = Some(wl);
        self
    }

    /// Replace the single built-in bottleneck with a multi-hop
    /// [`Topology`]. Flow routes default to route `0`; set
    /// [`Topology::flow_routes`] (one entry per added flow) to split
    /// them across routes.
    pub fn with_topology(mut self, t: Topology) -> Self {
        self.topology = Some(t);
        self
    }
}

/// Per-flow configuration.
pub struct FlowConfig {
    /// The congestion-control algorithm instance for this flow.
    pub cc: Box<dyn CongestionControl>,
    /// Base (propagation) RTT of the flow's path.
    pub base_rtt: SimDuration,
    /// When the application starts sending.
    pub start_time: SimTime,
    /// Payload size for a finite transfer (None = backlogged).
    pub byte_limit: Option<u64>,
}

impl FlowConfig {
    pub fn new(cc: Box<dyn CongestionControl>, base_rtt: SimDuration) -> Self {
        FlowConfig {
            cc,
            base_rtt,
            start_time: SimTime::ZERO,
            byte_limit: None,
        }
    }

    /// Validate the flow configuration.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.base_rtt == SimDuration::ZERO {
            return Err(ConfigError::NonPositive { field: "base RTT" });
        }
        if self.byte_limit == Some(0) {
            return Err(ConfigError::NonPositive {
                field: "byte limit",
            });
        }
        Ok(())
    }

    pub fn starting_at(mut self, t: SimTime) -> Self {
        self.start_time = t;
        self
    }

    /// Make this a finite transfer of `bytes` payload bytes (e.g. a
    /// short web/ad flow). Its completion time is reported as the FCT.
    pub fn with_byte_limit(mut self, bytes: u64) -> Self {
        assert!(bytes > 0);
        self.byte_limit = Some(bytes);
        self
    }
}

/// Results of one simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    pub flows: Vec<FlowReport>,
    pub queue: QueueReport,
    /// Per-hop queue reports for multi-hop topology runs, one per queue
    /// slot in slot order. Empty on legacy single-bottleneck runs (then
    /// `queue` is the whole story), so pre-existing reports serialize
    /// byte-identically.
    pub hops: Vec<QueueReport>,
    /// Configured horizon in seconds (what the run was asked to simulate).
    pub duration_secs: f64,
    /// Horizon actually simulated: equals `duration_secs` unless the
    /// early-stop policy ended the run sooner. All window averages in
    /// this report are normalized over `[measure_start, effective]`.
    pub effective_duration_secs: f64,
    /// True when the convergence detector ended the run before the
    /// configured horizon.
    pub early_stopped: bool,
    /// Discrete events dispatched by the run — the denominator for
    /// events/sec throughput measurements (`crates/bench/benches/netsim_perf.rs`).
    pub events_processed: u64,
    /// Time-series trace (empty unless `SimConfig::with_trace` was set).
    pub trace: Trace,
    /// Flows spawned by the open-loop workload (0 unless
    /// [`SimConfig::with_workload`] was set). Workload flows are not
    /// listed in `flows`; they are summarized by `workload_fct`.
    pub workload_spawned: u64,
    /// Workload flows that delivered their full size before the horizon.
    pub workload_completed: u64,
    /// Per-CCA flow-completion-time percentiles of the completed
    /// workload flows, sorted by CC name.
    pub workload_fct: Vec<FctPercentiles>,
}

impl SimReport {
    /// Serialize the full report (inverse of
    /// [`SimReport::from_json_value`]). Floats round-trip bit-exactly,
    /// so a cached report reproduces a live run's numbers verbatim —
    /// the property the scenario result cache in `bbrdom-experiments`
    /// depends on.
    pub fn to_json_value(&self) -> crate::json::Value {
        use crate::json::Value;
        let mut v = Value::object();
        v.set(
            "flows",
            Value::Array(self.flows.iter().map(|f| f.to_json_value()).collect()),
        )
        .set("queue", self.queue.to_json_value())
        .set("duration_secs", self.duration_secs.into())
        .set("events_processed", Value::U64(self.events_processed));
        // Emitted only for early-stopped runs so fixed-horizon reports
        // keep their historical byte-exact serialization (the disk cache
        // and CSV diff smokes depend on that).
        if self.early_stopped {
            v.set(
                "effective_duration_secs",
                self.effective_duration_secs.into(),
            )
            .set("early_stopped", Value::Bool(true));
        }
        if !self.trace.is_empty() {
            v.set("trace", self.trace.to_json_value());
        }
        // Per-hop queue reports exist only on multi-hop topology runs.
        if !self.hops.is_empty() {
            v.set(
                "hops",
                Value::Array(self.hops.iter().map(|q| q.to_json_value()).collect()),
            );
        }
        // Workload fields appear only on workload runs, keeping every
        // pre-existing report byte-identical.
        if self.workload_spawned > 0 {
            v.set("workload_spawned", Value::U64(self.workload_spawned))
                .set("workload_completed", Value::U64(self.workload_completed))
                .set(
                    "workload_fct",
                    Value::Array(
                        self.workload_fct
                            .iter()
                            .map(|p| p.to_json_value())
                            .collect(),
                    ),
                );
        }
        v
    }

    /// Parse a report serialized with [`SimReport::to_json_value`].
    pub fn from_json_value(v: &crate::json::Value) -> Result<Self, String> {
        use crate::json;
        Ok(SimReport {
            flows: json::req(v, "flows")?
                .as_array()
                .ok_or("'flows' must be an array")?
                .iter()
                .map(crate::stats::FlowReport::from_json_value)
                .collect::<Result<_, _>>()?,
            queue: crate::stats::QueueReport::from_json_value(json::req(v, "queue")?)?,
            hops: match v.get("hops") {
                None => Vec::new(),
                Some(a) => a
                    .as_array()
                    .ok_or("'hops' must be an array")?
                    .iter()
                    .map(crate::stats::QueueReport::from_json_value)
                    .collect::<Result<_, _>>()?,
            },
            duration_secs: json::req_f64(v, "duration_secs")?,
            effective_duration_secs: match v.get("effective_duration_secs") {
                Some(x) => x
                    .as_f64()
                    .ok_or("'effective_duration_secs' must be a number")?,
                None => json::req_f64(v, "duration_secs")?,
            },
            early_stopped: v
                .get("early_stopped")
                .and_then(crate::json::Value::as_bool)
                .unwrap_or(false),
            events_processed: json::req_u64(v, "events_processed")?,
            trace: match v.get("trace") {
                None => Trace::default(),
                Some(t) => Trace::from_json_value(t)?,
            },
            workload_spawned: v
                .get("workload_spawned")
                .map(|x| x.as_u64().ok_or("non-integer 'workload_spawned'"))
                .transpose()?
                .unwrap_or(0),
            workload_completed: v
                .get("workload_completed")
                .map(|x| x.as_u64().ok_or("non-integer 'workload_completed'"))
                .transpose()?
                .unwrap_or(0),
            workload_fct: match v.get("workload_fct") {
                None => Vec::new(),
                Some(a) => a
                    .as_array()
                    .ok_or("'workload_fct' must be an array")?
                    .iter()
                    .map(FctPercentiles::from_json_value)
                    .collect::<Result<_, _>>()?,
            },
        })
    }

    /// Sum of per-flow throughputs (bytes/sec).
    pub fn total_throughput_bytes_per_sec(&self) -> f64 {
        self.flows.iter().map(|f| f.throughput_bytes_per_sec).sum()
    }

    /// Mean per-flow throughput (Mbps) over flows whose CC name matches.
    pub fn mean_throughput_mbps_of(&self, cc_name: &str) -> Option<f64> {
        let v: Vec<f64> = self
            .flows
            .iter()
            .filter(|f| f.cc_name == cc_name)
            .map(|f| f.throughput_mbps())
            .collect();
        if v.is_empty() {
            None
        } else {
            Some(v.iter().sum::<f64>() / v.len() as f64)
        }
    }
}

/// Factory building the CC instance for the `n`-th spawned workload
/// flow (see [`Simulator::set_workload_cc`]).
pub type WorkloadCcFactory = Box<dyn FnMut(u64) -> Box<dyn CongestionControl> + Send>;

/// The discrete-event dumbbell simulator.
pub struct Simulator {
    config: SimConfig,
    flows: Vec<Flow>,
    events: EventQueue,
    queue: Option<DropTailQueue>,
    /// Builds the CC instance for the `n`-th spawned workload flow.
    workload_cc: Option<WorkloadCcFactory>,
    /// Deliberately corrupt a queue counter after this many events, so
    /// tests can prove the auditor catches a mid-run conservation bug.
    #[cfg(test)]
    corrupt_at_event: Option<u64>,
    /// Keep completed finite flows alive (the pre-teardown behavior), so
    /// tests can A/B the events that teardown deschedules.
    #[cfg(test)]
    teardown_disabled: bool,
}

impl Simulator {
    /// Construct a simulator, panicking on invalid configuration (the
    /// legacy interface; see [`Self::try_new`] for the fallible one).
    pub fn new(config: SimConfig) -> Self {
        Self::try_new(config).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Construct a simulator, rejecting invalid configuration.
    pub fn try_new(config: SimConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        Ok(Simulator {
            config,
            flows: Vec::new(),
            events: EventQueue::new(),
            queue: None,
            workload_cc: None,
            #[cfg(test)]
            corrupt_at_event: None,
            #[cfg(test)]
            teardown_disabled: false,
        })
    }

    /// Set the factory building each spawned workload flow's CC instance
    /// (argument: the 0-based spawn index). Required before running a
    /// config that carries a [`WorkloadConfig`].
    pub fn set_workload_cc(&mut self, factory: WorkloadCcFactory) {
        self.workload_cc = Some(factory);
    }

    /// Add a flow; returns its id. Must be called before [`Self::run`].
    /// Panics on an invalid flow config (the legacy interface; see
    /// [`Self::try_add_flow`]).
    pub fn add_flow(&mut self, fc: FlowConfig) -> FlowId {
        self.try_add_flow(fc).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Add a flow, rejecting invalid flow configuration.
    pub fn try_add_flow(&mut self, fc: FlowConfig) -> Result<FlowId, ConfigError> {
        assert!(self.queue.is_none(), "cannot add flows after run()");
        fc.validate()?;
        let id = FlowId(self.flows.len() as u32);
        // Split the base RTT between the forward (data) and reverse (ACK)
        // paths; the split is arbitrary as long as the sum is the base RTT.
        let half = SimDuration(fc.base_rtt.0 / 2);
        let other_half = SimDuration(fc.base_rtt.0 - half.0);
        let mut flow = Flow::new(id, fc.cc, self.config.mss, half, other_half, fc.start_time);
        if let Some(limit) = fc.byte_limit {
            flow.set_byte_limit(limit);
        }
        self.flows.push(flow);
        Ok(id)
    }

    /// Number of flows added so far.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Run the simulation to completion and produce the report, panicking
    /// on any [`SimError`] (the legacy interface; see [`Self::try_run`]).
    pub fn run(&mut self) -> SimReport {
        self.try_run().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Run the simulation to completion and produce the report.
    ///
    /// Fails with a structured [`SimError`] instead of panicking when the
    /// configuration is invalid, an event/wall-clock budget is exceeded,
    /// or (with auditing on) a runtime invariant is violated.
    pub fn try_run(&mut self) -> Result<SimReport, SimError> {
        // A workload-only run legitimately starts with zero static flows.
        if self.flows.is_empty() && self.config.workload.is_none() {
            return Err(ConfigError::NoFlows.into());
        }
        #[cfg(test)]
        if self.teardown_disabled {
            for f in &mut self.flows {
                f.teardown_disabled = true;
            }
        }
        // Lower the optional topology into queue slots and per-route
        // paths; `None` keeps the legacy single-bottleneck layout (one
        // queue, every flow at slot 0 with no path delays).
        let compiled = match &self.config.topology {
            Some(t) => Some(crate::routing::compile(t)?),
            None => None,
        };
        if let Some(c) = &compiled {
            let t = self
                .config
                .topology
                .as_ref()
                .expect("compiled implies a topology");
            if !t.flow_routes.is_empty() && t.flow_routes.len() != self.flows.len() {
                return Err(ConfigError::InvalidTopology {
                    reason: format!(
                        "flow_routes has {} entries for {} flows",
                        t.flow_routes.len(),
                        self.flows.len()
                    ),
                }
                .into());
            }
            for (i, f) in self.flows.iter_mut().enumerate() {
                let r = t.flow_routes.get(i).map_or(0, |&r| r as usize);
                f.set_path(Some(Arc::clone(&c.paths[r])));
            }
        }
        let mut queues: Vec<DropTailQueue> = match &compiled {
            Some(c) => c
                .queues
                .iter()
                .map(|&(rate, buffer)| {
                    DropTailQueue::with_discipline(
                        rate,
                        buffer,
                        self.flows.len(),
                        self.config.discipline,
                    )
                })
                .collect(),
            None => vec![DropTailQueue::with_discipline(
                self.config.rate,
                self.config.buffer_bytes,
                self.flows.len(),
                self.config.discipline,
            )],
        };
        // Link-level faults act on one queue: the compiled fault slot,
        // or the single legacy bottleneck.
        let fault_slot = compiled.as_ref().map_or(0, |c| c.fault_slot as usize);
        let end = SimTime::ZERO + self.config.duration;
        let mut trace = Trace::default();
        let mut jitter_rng = StdRng::seed_from_u64(self.config.seed);
        let jitter_ns = self.config.ack_jitter.as_nanos();

        // Fault machinery: the compiled timeline is scheduled up front as
        // ordinary events; the random-loss draws use their own RNG stream
        // so enabling loss does not perturb the ACK-jitter sequence.
        let mut faults = if self.config.faults.is_noop() {
            None
        } else {
            let timeline = self.config.faults.compile();
            for (i, (t, _)) in timeline.iter().enumerate() {
                self.events.schedule(*t, Event::Fault(i as u32));
            }
            Some(FaultRuntime {
                timeline,
                rng: StdRng::seed_from_u64(self.config.faults.seed),
                loss_fwd: self.config.faults.loss_fwd,
                loss_ack: self.config.faults.loss_ack,
                extra_delay: SimDuration::ZERO,
            })
        };
        let mut auditor = if self.config.audit || crate::audit::env_enabled() {
            Some(Auditor::new(self.flows.len()))
        } else {
            None
        };
        // Open-loop workload: schedule the first arrival; everything
        // after that is driven by the WorkloadArrival handler. The
        // workload draws from its own RNG stream so attaching one never
        // perturbs the jitter or fault sequences.
        let mut workload = match self.config.workload {
            Some(wl) => {
                if self.workload_cc.is_none() {
                    return Err(ConfigError::Unsupported {
                        backend: "open-loop workload",
                        feature: "runs without a CC factory (call set_workload_cc)",
                    }
                    .into());
                }
                let mut rng = StdRng::seed_from_u64(wl.seed);
                let first = wl.start + wl.arrivals.sample_gap(&mut rng);
                if first <= SimTime::ZERO + self.config.duration {
                    self.events.schedule(first, Event::WorkloadArrival);
                }
                Some(WorkloadRuntime {
                    rng,
                    spawned: 0,
                    completed: 0,
                    fct: BTreeMap::new(),
                    free: Vec::new(),
                    n_static: self.flows.len(),
                    recycled_goodput: 0,
                })
            }
            None => None,
        };
        let max_events = self.config.max_events.unwrap_or(u64::MAX);
        let wall = self
            .config
            .max_wall_clock
            .map(|limit| (std::time::Instant::now(), limit));

        // Schedule the first trace sample at t=0 (before any FlowStart) so
        // traces carry the true baseline: empty queue, initial cwnd, zero
        // delivered bytes.
        if self.config.sample_interval.is_some() {
            self.events.schedule(SimTime::ZERO, Event::StatsSample);
        }
        for f in &self.flows {
            self.events.schedule(f.start_time, Event::FlowStart(f.id));
        }
        let stop_policy = self.config.stop;
        let mut detector = stop_policy.map(|stop| {
            self.events
                .schedule(SimTime::ZERO + stop.window, Event::ConvergenceCheck);
            ConvergenceDetector::new(self.flows.len(), self.config.mss, stop.window)
        });

        let measure_start = self.config.measure_start.min(end);
        let mut window_marked = false;
        let mut events_processed: u64 = 0;
        let mut stopped_at: Option<SimTime> = None;

        while let Some((now, event)) = self.events.pop() {
            if now > end {
                break;
            }
            if events_processed >= max_events {
                return Err(SimError::EventBudgetExceeded {
                    events: events_processed,
                    sim_time: now,
                });
            }
            if events_processed & 0xFFFF == 0 {
                if let Some((started, limit)) = wall {
                    let elapsed = started.elapsed();
                    if elapsed > limit {
                        return Err(SimError::WallClockExceeded {
                            elapsed_secs: elapsed.as_secs_f64(),
                            sim_time: now,
                        });
                    }
                }
            }
            events_processed += 1;
            // Snapshot all time integrals the first time simulated time
            // reaches the measurement window, so every window-averaged
            // quantity (throughput, queue occupancy, cwnd) shares the same
            // `[measure_start, end]` window. Events are processed in time
            // order and no integral has advanced past `measure_start` yet,
            // so marking here is exact.
            if !window_marked && now >= measure_start {
                for q in &mut queues {
                    q.mark_measure_start(measure_start);
                }
                for f in &mut self.flows {
                    f.mark_measure_start(measure_start);
                }
                window_marked = true;
            }
            match event {
                Event::FlowStart(id) => {
                    let q = self.flows[id.index()].ingress_slot() as usize;
                    self.flows[id.index()].on_start(now, &mut queues[q], &mut self.events);
                }
                Event::Pacing(id) => {
                    let q = self.flows[id.index()].ingress_slot() as usize;
                    self.flows[id.index()].on_pacing(now, &mut queues[q], &mut self.events);
                }
                Event::LinkDequeue(slot) => {
                    let (finished, next_size) = queues[slot as usize].service_complete(now);
                    if let Some(size) = next_size {
                        let done = now + queues[slot as usize].serialization_time(size);
                        self.events.schedule(done, Event::LinkDequeue(slot));
                    }
                    // A mid-path hop hands the packet to the next queue
                    // after the inter-hop propagation; delivery, wire
                    // impairments, and the ACK path act at the last hop
                    // only (so the fault RNG draw order is unchanged on
                    // single-hop paths).
                    let next_hop = self.flows[finished.flow.index()].path().and_then(|p| {
                        let hop = p.hop_of(slot);
                        (hop + 1 < p.ser.len()).then(|| (p.ser[hop + 1], p.gaps[hop]))
                    });
                    if let Some((next_slot, gap)) = next_hop {
                        self.flows[finished.flow.index()].note_hop_scheduled();
                        self.events.schedule_hop(now + gap, next_slot, finished);
                    } else {
                        // Injected wire impairments act after the bottleneck:
                        // forward loss drops the data packet, a delay spike
                        // stretches the forward path, ACK loss drops the ACK.
                        let (fwd_lost, spike) = match faults.as_mut() {
                            Some(f) => (
                                f.loss_fwd > 0.0 && f.rng.gen_bool(f.loss_fwd),
                                f.extra_delay,
                            ),
                            None => (false, SimDuration::ZERO),
                        };
                        let flow = &mut self.flows[finished.flow.index()];
                        // Propagation after the last serializing hop and
                        // along the reverse route (both zero on the
                        // legacy path, keeping its arithmetic bit-exact).
                        let (post_delay, rev_delay) = match flow.path() {
                            Some(p) => (p.post_delay, p.rev_delay),
                            None => (SimDuration::ZERO, SimDuration::ZERO),
                        };
                        if fwd_lost {
                            flow.stats.wire_lost_fwd += 1;
                        } else {
                            let delivery_time = now + post_delay + flow.prop_fwd + spike;
                            // Receiver bookkeeping happens at delivery time.
                            let new_bytes = flow.receiver_on_data(finished.seq, finished.size);
                            flow.stats.goodput_bytes_total += new_bytes;
                            if delivery_time >= self.config.measure_start && delivery_time <= end {
                                flow.stats.goodput_bytes += new_bytes;
                            }
                            if let Some(aud) = auditor.as_mut() {
                                aud.on_delivered(finished.flow);
                            }
                            let ack_lost = match faults.as_mut() {
                                Some(f) => f.loss_ack > 0.0 && f.rng.gen_bool(f.loss_ack),
                                None => false,
                            };
                            if ack_lost {
                                flow.stats.wire_lost_ack += 1;
                            } else {
                                let mut ack_time = delivery_time + rev_delay + flow.prop_rev;
                                if jitter_ns > 0 {
                                    ack_time += crate::time::SimDuration(
                                        jitter_rng.gen_range(0..jitter_ns),
                                    );
                                }
                                if let Some(aud) = auditor.as_mut() {
                                    aud.on_ack_scheduled(finished.flow);
                                }
                                flow.note_ack_scheduled();
                                self.events.schedule(
                                    ack_time,
                                    Event::AckArrive {
                                        flow: finished.flow,
                                        seq: finished.seq,
                                    },
                                );
                            }
                        }
                    }
                }
                Event::HopArrive { link, pkt } => {
                    let pkt = self.events.claim_hop(pkt);
                    self.flows[pkt.flow.index()].note_hop_arrived();
                    let q = &mut queues[link as usize];
                    match q.offer(now, pkt) {
                        Offer::StartService => {
                            let done = now + q.serialization_time(pkt.size);
                            self.events.schedule(done, Event::LinkDequeue(link));
                        }
                        Offer::Queued => {}
                        Offer::Dropped => {
                            // Mid-path tail drop: discovered by the sender
                            // later via dup-ACKs or RTO, like any drop.
                        }
                    }
                }
                Event::AckArrive { flow, seq } => {
                    if let Some(aud) = auditor.as_mut() {
                        aud.on_ack_fired(flow);
                    }
                    self.flows[flow.index()].note_ack_fired();
                    let q = self.flows[flow.index()].ingress_slot() as usize;
                    self.flows[flow.index()].on_ack(now, seq, &mut queues[q], &mut self.events);
                    // Harvest workload completions at the completing ACK:
                    // record the FCT and queue the slot for recycling.
                    if let Some(rt) = workload.as_mut() {
                        let idx = flow.index();
                        if idx >= rt.n_static && self.flows[idx].take_just_completed() {
                            let f = &self.flows[idx];
                            debug_assert!(
                                f.is_complete(),
                                "completion edge without a completion time"
                            );
                            let fct = now.as_secs_f64() - f.start_time.as_secs_f64();
                            rt.fct.entry(f.cc_name().to_string()).or_default().push(fct);
                            rt.completed += 1;
                            rt.free.push(idx);
                        }
                    }
                }
                Event::RtoCheck(id) => {
                    let q = self.flows[id.index()].ingress_slot() as usize;
                    self.flows[id.index()].on_rto_check(now, &mut queues[q], &mut self.events);
                }
                Event::StatsSample => {
                    let at_cap = self
                        .config
                        .trace_config
                        .max_samples
                        .is_some_and(|cap| trace.samples.len() as u64 >= cap);
                    if !at_cap {
                        trace.samples.push(Sample {
                            time: now,
                            queue_bytes: queues[0].queued_bytes(),
                            cwnd_bytes: self.flows.iter().map(|f| f.cc().cwnd_bytes()).collect(),
                            inflight_bytes: self.flows.iter().map(|f| f.inflight_bytes()).collect(),
                            delivered_bytes: self
                                .flows
                                .iter()
                                .map(|f| f.stats.goodput_bytes_total)
                                .collect(),
                        });
                    }
                    // Once the cap is hit, stop rescheduling: the cap
                    // saves the events too, not just the memory.
                    let capped = self
                        .config
                        .trace_config
                        .max_samples
                        .is_some_and(|cap| trace.samples.len() as u64 >= cap);
                    if let Some(interval) = self.config.sample_interval {
                        if !capped {
                            let stride = self.config.trace_config.stride as u64;
                            let next = now + SimDuration(interval.0.saturating_mul(stride));
                            if next <= end {
                                self.events.schedule(next, Event::StatsSample);
                            }
                        }
                    }
                }
                Event::ConvergenceCheck => {
                    if let (Some(stop), Some(det)) = (&stop_policy, detector.as_mut()) {
                        let window_secs = stop.window.as_secs_f64();
                        let totals = self
                            .flows
                            .iter()
                            .map(|f| f.stats.goodput_bytes_total)
                            .collect();
                        let converged = det.observe(totals, window_secs, stop);
                        // Stop only once the measurement window is open and
                        // the minimum horizon has passed, so window averages
                        // stay well-defined (`effective > measure_start`).
                        if converged && now >= SimTime::ZERO + stop.min_time && now > measure_start
                        {
                            stopped_at = Some(now);
                        } else {
                            let next = now + stop.window;
                            if next < end {
                                self.events.schedule(next, Event::ConvergenceCheck);
                            }
                        }
                    }
                }
                Event::Fault(idx) => {
                    if let Some(f) = faults.as_mut() {
                        match f.timeline[idx as usize].1 {
                            FaultAction::LinkDown => queues[fault_slot].pause(now),
                            FaultAction::LinkUp => {
                                // Resume pulls the head-of-line packet into
                                // service if the link went fully up and idle.
                                if let Some(size) = queues[fault_slot].resume(now) {
                                    let done = now + queues[fault_slot].serialization_time(size);
                                    self.events
                                        .schedule(done, Event::LinkDequeue(fault_slot as u32));
                                }
                            }
                            FaultAction::SetRate(rate) => queues[fault_slot].set_rate(rate),
                            FaultAction::DelayStart(d) => {
                                f.extra_delay = f.extra_delay + d;
                            }
                            FaultAction::DelayEnd(d) => {
                                f.extra_delay = SimDuration(f.extra_delay.0.saturating_sub(d.0));
                            }
                        }
                    }
                }
                Event::WorkloadArrival => {
                    if let Some(rt) = workload.as_mut() {
                        let wl = self
                            .config
                            .workload
                            .expect("workload runtime implies config");
                        // Fixed draw order (size, then next gap) keeps
                        // runs reproducible.
                        let size = wl.sizes.sample(&mut rt.rng);
                        let next = now + wl.arrivals.sample_gap(&mut rt.rng);
                        if next <= end {
                            self.events.schedule(next, Event::WorkloadArrival);
                        }
                        let cc = (self
                            .workload_cc
                            .as_mut()
                            .expect("factory verified before the loop"))(
                            rt.spawned
                        );
                        rt.spawned += 1;
                        // Recycle a quiescent completed slot — torn down,
                        // no pending timer/ACK events, nothing left in
                        // the bottleneck — so cumulative flows cost only
                        // peak-concurrency state; grow otherwise.
                        let slot = rt.free.iter().position(|&i| {
                            let f = &self.flows[i];
                            f.is_torn_down()
                                && !f.has_pending_events()
                                && queues.iter().all(|q| {
                                    q.queued_bytes_of(f.id) == 0
                                        && q.in_service_flow() != Some(f.id)
                                })
                        });
                        let idx = match slot {
                            Some(k) => {
                                let i = rt.free.remove(k);
                                let id = self.flows[i].id;
                                rt.recycled_goodput += self.flows[i].stats.goodput_bytes;
                                for q in &mut queues {
                                    q.reset_flow_slot(id);
                                }
                                if let Some(aud) = auditor.as_mut() {
                                    aud.reset_flow_slot(id);
                                }
                                i
                            }
                            None => {
                                let i = self.flows.len();
                                for q in &mut queues {
                                    q.grow_to(i + 1);
                                }
                                if let Some(aud) = auditor.as_mut() {
                                    aud.grow_to(i + 1);
                                }
                                i
                            }
                        };
                        let id = FlowId(idx as u32);
                        let half = SimDuration(wl.base_rtt.0 / 2);
                        let other_half = SimDuration(wl.base_rtt.0 - half.0);
                        let mut flow = Flow::new(id, cc, self.config.mss, half, other_half, now);
                        flow.set_byte_limit(size);
                        if let Some(c) = &compiled {
                            let r = c.workload_path.expect("validated: workload has a route");
                            flow.set_path(Some(Arc::clone(&c.paths[r])));
                        }
                        #[cfg(test)]
                        {
                            flow.teardown_disabled = self.teardown_disabled;
                        }
                        if idx == self.flows.len() {
                            self.flows.push(flow);
                        } else {
                            self.flows[idx] = flow;
                        }
                        let q = self.flows[idx].ingress_slot() as usize;
                        self.flows[idx].on_start(now, &mut queues[q], &mut self.events);
                    }
                }
            }
            #[cfg(test)]
            if Some(events_processed) == self.corrupt_at_event {
                queues[0].test_corrupt_serviced_counter(FlowId(0));
            }
            if let Some(aud) = auditor.as_mut() {
                aud.after_event(now, &queues, &self.flows)?;
            }
            if stopped_at.is_some() {
                break;
            }
        }

        // The horizon the run actually covered: the convergence stop time
        // when the detector fired, else the configured duration.
        let effective_end = stopped_at.unwrap_or(end);

        // If every event fired before the window opened, mark now so the
        // window averages cover `[measure_start, end]` of (idle) time.
        if !window_marked {
            for q in &mut queues {
                q.mark_measure_start(measure_start);
            }
            for f in &mut self.flows {
                f.mark_measure_start(measure_start);
            }
        }
        // Drain-time conservation sweep: every packet must be accounted
        // for before the counters are folded into reports.
        if let Some(aud) = auditor.as_ref() {
            aud.deep_check(effective_end, &queues, &self.flows)?;
        }
        for q in &mut queues {
            q.finalize(effective_end);
        }
        for f in &mut self.flows {
            f.finalize(effective_end);
        }

        let measure_secs = (effective_end - measure_start).as_secs_f64();
        // Workload flows are reported in aggregate (FCT percentiles), not
        // as individual FlowReports — a 10k-flow run would drown the CSVs.
        let n_report = workload.as_ref().map_or(self.flows.len(), |rt| rt.n_static);
        let flow_reports: Vec<FlowReport> = self.flows[..n_report]
            .iter()
            .map(|f| FlowReport {
                flow: f.id,
                cc_name: f.cc_name().to_string(),
                throughput_bytes_per_sec: if measure_secs > 0.0 {
                    f.stats.goodput_bytes as f64 / measure_secs
                } else {
                    0.0
                },
                goodput_bytes: f.stats.goodput_bytes,
                sent_bytes: f.stats.sent_bytes,
                retransmits: f.stats.retransmits,
                lost_packets: f.stats.lost_packets,
                congestion_events: f.stats.congestion_events,
                rtos: f.stats.rtos,
                wire_lost_fwd: f.stats.wire_lost_fwd,
                wire_lost_ack: f.stats.wire_lost_ack,
                avg_queue_occupancy_bytes: match f.path() {
                    // Multi-hop flows report the occupancy they hold
                    // summed across every queue on their route.
                    Some(p) => p
                        .ser
                        .iter()
                        .map(|&s| queues[s as usize].avg_occupancy_bytes_of(f.id, measure_secs))
                        .sum(),
                    None => queues[0].avg_occupancy_bytes_of(f.id, measure_secs),
                },
                min_rtt_secs: f.min_rtt().map(|d| d.as_secs_f64()),
                mean_rtt_secs: f.mean_rtt_secs(),
                avg_cwnd_bytes: if measure_secs > 0.0 {
                    (f.stats.cwnd_time_integral - f.stats.cwnd_integral_mark) / measure_secs
                } else {
                    0.0
                },
                max_cwnd_bytes: f.stats.max_cwnd_bytes,
                completion_time_secs: f
                    .completion_time()
                    .map(|t| t.as_secs_f64() - f.start_time.as_secs_f64()),
                backoff_times_secs: f
                    .stats
                    .backoff_times
                    .iter()
                    .map(|t| t.as_secs_f64())
                    .collect(),
            })
            .collect();

        // Utilization counts every flow's window goodput — including live
        // workload flows and the recycled slots' accumulated deliveries.
        // Without a workload this sums the same values as the reports.
        let total_goodput: u64 = self
            .flows
            .iter()
            .map(|f| f.stats.goodput_bytes)
            .sum::<u64>()
            + workload.as_ref().map_or(0, |rt| rt.recycled_goodput);
        let capacity_bytes_in_window = self.config.rate.bytes_per_sec() * measure_secs;
        let avg_occ = queues[0].avg_occupancy_bytes(measure_secs);
        let queue_report = QueueReport {
            avg_occupancy_bytes: avg_occ,
            avg_queuing_delay_secs: avg_occ / self.config.rate.bytes_per_sec(),
            peak_occupancy_bytes: queues[0].peak_bytes(),
            capacity_bytes: queues[0].capacity_bytes(),
            dropped_packets: queues[0].dropped_packets(),
            aqm_drops: queues[0].aqm_drops(),
            enqueued_packets: queues[0].enqueued_packets(),
            utilization: if capacity_bytes_in_window > 0.0 {
                total_goodput as f64 / capacity_bytes_in_window
            } else {
                0.0
            },
            drops: queues[0]
                .drops()
                .iter()
                .map(|d| (d.time.as_secs_f64(), d.flow))
                .collect(),
        };
        // On multi-hop runs, every queue slot also gets its own report;
        // hop utilization is bytes the hop actually serialized in the
        // window against its own (possibly fault-adjusted) rate.
        let hops: Vec<QueueReport> = if queues.len() > 1 {
            queues
                .iter()
                .map(|q| {
                    let avg_occ = q.avg_occupancy_bytes(measure_secs);
                    let cap_window = q.rate().bytes_per_sec() * measure_secs;
                    QueueReport {
                        avg_occupancy_bytes: avg_occ,
                        avg_queuing_delay_secs: avg_occ / q.rate().bytes_per_sec(),
                        peak_occupancy_bytes: q.peak_bytes(),
                        capacity_bytes: q.capacity_bytes(),
                        dropped_packets: q.dropped_packets(),
                        aqm_drops: q.aqm_drops(),
                        enqueued_packets: q.enqueued_packets(),
                        utilization: if cap_window > 0.0 {
                            q.serviced_bytes_in_window() as f64 / cap_window
                        } else {
                            0.0
                        },
                        drops: q
                            .drops()
                            .iter()
                            .map(|d| (d.time.as_secs_f64(), d.flow))
                            .collect(),
                    }
                })
                .collect()
        } else {
            Vec::new()
        };
        self.queue = queues.into_iter().next();

        if let Some(aud) = auditor.as_ref() {
            aud.check_report(effective_end, &flow_reports, &queue_report)?;
        }

        let (workload_spawned, workload_completed, workload_fct) = match workload.as_ref() {
            Some(rt) => {
                let mut fct = Vec::new();
                for (cc_name, samples) in &rt.fct {
                    let mut sorted = samples.clone();
                    sorted.sort_by(|a, b| a.partial_cmp(b).expect("FCTs are finite"));
                    if let Some(p) = FctPercentiles::from_sorted(cc_name, &sorted) {
                        fct.push(p);
                    }
                }
                (rt.spawned, rt.completed, fct)
            }
            None => (0, 0, Vec::new()),
        };

        Ok(SimReport {
            flows: flow_reports,
            queue: queue_report,
            hops,
            duration_secs: self.config.duration.as_secs_f64(),
            effective_duration_secs: effective_end.as_secs_f64(),
            early_stopped: stopped_at.is_some(),
            events_processed,
            trace,
            workload_spawned,
            workload_completed,
            workload_fct,
        })
    }

    /// Deliberately corrupt a queue counter mid-run (test-only), proving
    /// the auditor fails fast on a seeded conservation bug.
    #[cfg(test)]
    pub(crate) fn set_corrupt_at_event(&mut self, n: u64) {
        self.corrupt_at_event = Some(n);
    }

    /// Revert to the pre-teardown lifecycle (test-only): completed finite
    /// flows keep their timers and scoreboards, as before the fix. Lets
    /// tests measure exactly how many events teardown deschedules.
    #[cfg(test)]
    pub(crate) fn set_teardown_disabled(&mut self) {
        self.teardown_disabled = true;
    }
}

/// Live fault state during one run: the compiled action timeline, the
/// loss-draw RNG, and the currently active extra forward delay.
struct FaultRuntime {
    timeline: Vec<(SimTime, FaultAction)>,
    rng: StdRng,
    loss_fwd: f64,
    loss_ack: f64,
    extra_delay: SimDuration,
}

/// Live open-loop workload state during one run.
struct WorkloadRuntime {
    /// Private draw stream for arrival gaps and flow sizes.
    rng: StdRng,
    spawned: u64,
    completed: u64,
    /// Completed-flow FCT samples (seconds) keyed by CC name; the
    /// BTreeMap keeps report ordering deterministic.
    fct: BTreeMap<String, Vec<f64>>,
    /// Completed slot indices awaiting recycling (not necessarily
    /// quiescent yet — in-flight duplicates may still be draining).
    free: Vec<usize>,
    /// Statically configured flows; they keep their individual reports,
    /// workload flows occupy slots at or above this index.
    n_static: usize,
    /// Measurement-window goodput of recycled slots, folded back into
    /// link utilization.
    recycled_goodput: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::FixedWindow;

    fn base_config(mbps: f64, rtt_ms: u64, buffer_bdp: f64, secs: f64) -> (SimConfig, SimDuration) {
        let rate = Rate::from_mbps(mbps);
        let rtt = SimDuration::from_millis(rtt_ms);
        let buf = crate::units::buffer_bytes(rate, rtt, buffer_bdp);
        (
            SimConfig::new(rate, buf, SimDuration::from_secs_f64(secs)),
            rtt,
        )
    }

    #[test]
    fn single_fixed_window_flow_saturates_link() {
        let (cfg, rtt) = base_config(10.0, 40, 2.0, 10.0);
        let bdp = cfg.rate.bdp_bytes(rtt);
        let mut sim = Simulator::new(cfg);
        sim.add_flow(FlowConfig::new(Box::new(FixedWindow::new(2 * bdp)), rtt));
        let report = sim.run();
        // 2*BDP window into a 2*BDP buffer: no loss, full utilization.
        assert_eq!(report.queue.dropped_packets, 0);
        assert!(
            report.queue.utilization > 0.95,
            "utilization={}",
            report.queue.utilization
        );
        let tp = report.flows[0].throughput_mbps();
        assert!((tp - 10.0).abs() < 0.5, "throughput={tp}");
    }

    #[test]
    fn undersized_window_is_rtt_limited() {
        // cwnd = BDP/2 → throughput ≈ rate/2 and empty queue.
        let (cfg, rtt) = base_config(10.0, 40, 2.0, 10.0);
        let bdp = cfg.rate.bdp_bytes(rtt);
        let mut sim = Simulator::new(cfg);
        sim.add_flow(FlowConfig::new(Box::new(FixedWindow::new(bdp / 2)), rtt));
        let report = sim.run();
        let tp = report.flows[0].throughput_mbps();
        assert!((tp - 5.0).abs() < 0.5, "throughput={tp}");
        assert!(report.queue.avg_occupancy_bytes < 2.0 * MSS as f64);
    }

    #[test]
    fn two_equal_fixed_flows_share_evenly() {
        let (cfg, rtt) = base_config(10.0, 40, 4.0, 20.0);
        let bdp = cfg.rate.bdp_bytes(rtt);
        let mut sim = Simulator::new(cfg);
        sim.add_flow(FlowConfig::new(Box::new(FixedWindow::new(2 * bdp)), rtt));
        sim.add_flow(FlowConfig::new(Box::new(FixedWindow::new(2 * bdp)), rtt));
        let report = sim.run();
        let t0 = report.flows[0].throughput_mbps();
        let t1 = report.flows[1].throughput_mbps();
        assert!((t0 - t1).abs() < 1.0, "t0={t0} t1={t1}");
        assert!((t0 + t1 - 10.0).abs() < 0.5);
    }

    #[test]
    fn oversized_windows_cause_loss_and_recovery_keeps_link_full() {
        // Two flows with windows larger than buffer+BDP: drops must occur,
        // retransmissions must recover them, link stays fully utilized.
        let (cfg, rtt) = base_config(10.0, 40, 1.0, 20.0);
        let bdp = cfg.rate.bdp_bytes(rtt);
        let mut sim = Simulator::new(cfg);
        sim.add_flow(FlowConfig::new(Box::new(FixedWindow::new(3 * bdp)), rtt));
        sim.add_flow(FlowConfig::new(Box::new(FixedWindow::new(3 * bdp)), rtt));
        let report = sim.run();
        assert!(report.queue.dropped_packets > 0);
        let total: f64 = report.flows.iter().map(|f| f.throughput_mbps()).sum();
        assert!(total > 9.0, "total={total}");
        // Retransmissions happened and goodput only counts unique bytes.
        assert!(report.flows.iter().any(|f| f.retransmits > 0));
    }

    #[test]
    fn conservation_of_bytes() {
        // goodput + still-queued + in-flight + drops accounts for all sends.
        let (cfg, rtt) = base_config(20.0, 20, 1.0, 5.0);
        let bdp = cfg.rate.bdp_bytes(rtt);
        let mut sim = Simulator::new(cfg);
        sim.add_flow(FlowConfig::new(Box::new(FixedWindow::new(4 * bdp)), rtt));
        let report = sim.run();
        let f = &report.flows[0];
        let sent_pkts = f.sent_bytes / MSS;
        let delivered_pkts = f.goodput_bytes / MSS;
        let dropped = report.queue.dropped_packets;
        // delivered (unique) + dropped <= sent; duplicates possible.
        assert!(delivered_pkts + dropped <= sent_pkts);
        // Nothing is silently created.
        assert!(delivered_pkts > 0);
    }

    #[test]
    fn staggered_start_flow_gets_share() {
        let (cfg, rtt) = base_config(10.0, 40, 4.0, 20.0);
        let bdp = cfg.rate.bdp_bytes(rtt);
        let mut sim = Simulator::new(cfg);
        sim.add_flow(FlowConfig::new(Box::new(FixedWindow::new(2 * bdp)), rtt));
        sim.add_flow(
            FlowConfig::new(Box::new(FixedWindow::new(2 * bdp)), rtt)
                .starting_at(SimTime::from_secs_f64(5.0)),
        );
        let report = sim.run();
        assert!(report.flows[1].throughput_mbps() > 1.0);
    }

    #[test]
    #[should_panic]
    fn run_without_flows_panics() {
        let (cfg, _) = base_config(10.0, 40, 2.0, 1.0);
        Simulator::new(cfg).run();
    }

    #[test]
    fn measure_window_consistent_across_report_fields() {
        // A flow that starts at t=5s in a 10s run, measured over [5s, 10s].
        // Every window-averaged quantity must be normalized by the 5s
        // window, not the 10s elapsed time (the old bug halved the queue
        // and cwnd averages).
        let rate = Rate::from_mbps(10.0);
        let rtt = SimDuration::from_millis(40);
        let bdp = rate.bdp_bytes(rtt);
        let buf = crate::units::buffer_bytes(rate, rtt, 8.0);
        let window = 2 * bdp;
        let start = SimTime::from_secs_f64(5.0);
        let cfg =
            SimConfig::new(rate, buf, SimDuration::from_secs_f64(10.0)).with_measure_start(start);
        let mut sim = Simulator::new(cfg);
        sim.add_flow(FlowConfig::new(Box::new(FixedWindow::new(window)), rtt).starting_at(start));
        let report = sim.run();
        let f = &report.flows[0];

        // Steady state inside the window: cwnd pinned at 2*BDP, of which
        // one BDP is in flight and one BDP sits in the buffer.
        let cwnd = window as f64;
        let queued = (window - bdp) as f64;
        assert!(
            (f.avg_cwnd_bytes - cwnd).abs() / cwnd < 0.15,
            "avg_cwnd={} want≈{cwnd}",
            f.avg_cwnd_bytes
        );
        assert!(
            (f.avg_queue_occupancy_bytes - queued).abs() / queued < 0.15,
            "avg_queue_occ={} want≈{queued}",
            f.avg_queue_occupancy_bytes
        );
        assert!(
            (report.queue.avg_occupancy_bytes - queued).abs() / queued < 0.15,
            "queue avg_occ={} want≈{queued}",
            report.queue.avg_occupancy_bytes
        );
        // Throughput over the window saturates the link.
        let tp = f.throughput_mbps();
        assert!((tp - 10.0).abs() < 0.5, "throughput={tp}");
        assert!(report.queue.utilization > 0.9);
    }

    #[test]
    fn try_run_without_flows_returns_config_error() {
        let (cfg, _) = base_config(10.0, 40, 2.0, 1.0);
        let err = Simulator::try_new(cfg).unwrap().try_run().unwrap_err();
        assert!(matches!(err, SimError::Config(ConfigError::NoFlows)));
    }

    #[test]
    fn try_new_rejects_zero_buffer() {
        let cfg = SimConfig::new(Rate::from_mbps(10.0), 0, SimDuration::from_secs_f64(1.0));
        let err = Simulator::try_new(cfg).err().expect("zero buffer rejected");
        assert_eq!(err.to_string(), "buffer must be positive");
    }

    #[test]
    fn try_add_flow_rejects_degenerate_flow_config() {
        let (cfg, rtt) = base_config(10.0, 40, 2.0, 1.0);
        let mut sim = Simulator::try_new(cfg).unwrap();
        let zero_rtt = FlowConfig::new(Box::new(FixedWindow::new(1500)), SimDuration::ZERO);
        let err = sim.try_add_flow(zero_rtt).unwrap_err();
        assert_eq!(err.to_string(), "base RTT must be positive");
        let mut zero_limit = FlowConfig::new(Box::new(FixedWindow::new(1500)), rtt);
        zero_limit.byte_limit = Some(0);
        let err = sim.try_add_flow(zero_limit).unwrap_err();
        assert_eq!(err.to_string(), "byte limit must be positive");
        assert_eq!(sim.flow_count(), 0);
    }

    #[test]
    fn audited_clean_run_succeeds() {
        let (cfg, rtt) = base_config(10.0, 40, 1.0, 10.0);
        let bdp = cfg.rate.bdp_bytes(rtt);
        let mut sim = Simulator::try_new(cfg.with_audit(true)).unwrap();
        sim.add_flow(FlowConfig::new(Box::new(FixedWindow::new(3 * bdp)), rtt));
        sim.add_flow(FlowConfig::new(Box::new(FixedWindow::new(3 * bdp)), rtt));
        let report = sim.try_run().expect("audited run must pass");
        assert!(report.queue.utilization > 0.9);
    }

    #[test]
    fn auditor_catches_seeded_conservation_bug() {
        let (cfg, rtt) = base_config(10.0, 40, 2.0, 10.0);
        let bdp = cfg.rate.bdp_bytes(rtt);
        let mut sim = Simulator::try_new(cfg.with_audit(true)).unwrap();
        sim.add_flow(FlowConfig::new(Box::new(FixedWindow::new(2 * bdp)), rtt));
        sim.set_corrupt_at_event(500);
        match sim.try_run() {
            Err(SimError::Audit(v)) => {
                assert_eq!(v.check, "packet-conservation");
                assert_eq!(v.flow, Some(FlowId(0)));
            }
            other => panic!("expected audit violation, got {other:?}"),
        }
    }

    #[test]
    fn event_budget_aborts_livelocked_run() {
        let (cfg, rtt) = base_config(10.0, 40, 2.0, 10.0);
        let bdp = cfg.rate.bdp_bytes(rtt);
        let mut sim = Simulator::try_new(cfg.with_event_budget(1_000)).unwrap();
        sim.add_flow(FlowConfig::new(Box::new(FixedWindow::new(2 * bdp)), rtt));
        match sim.try_run() {
            Err(SimError::EventBudgetExceeded { events, .. }) => assert_eq!(events, 1_000),
            other => panic!("expected event budget error, got {other:?}"),
        }
    }

    #[test]
    fn wall_clock_budget_aborts_run() {
        let (cfg, rtt) = base_config(1000.0, 40, 2.0, 3600.0);
        let bdp = cfg.rate.bdp_bytes(rtt);
        let mut sim =
            Simulator::try_new(cfg.with_wall_clock_budget(std::time::Duration::ZERO)).unwrap();
        sim.add_flow(FlowConfig::new(Box::new(FixedWindow::new(2 * bdp)), rtt));
        assert!(matches!(
            sim.try_run(),
            Err(SimError::WallClockExceeded { .. })
        ));
    }

    #[test]
    fn forward_wire_loss_is_counted_and_audited() {
        use crate::fault::FaultSchedule;
        let (cfg, rtt) = base_config(10.0, 40, 2.0, 20.0);
        let bdp = cfg.rate.bdp_bytes(rtt);
        let cfg = cfg
            .with_faults(FaultSchedule::none().with_loss(0.01).with_seed(7))
            .with_audit(true);
        let mut sim = Simulator::try_new(cfg).unwrap();
        sim.add_flow(FlowConfig::new(Box::new(FixedWindow::new(2 * bdp)), rtt));
        let report = sim
            .try_run()
            .expect("lossy audited run must stay consistent");
        let f = &report.flows[0];
        assert!(f.wire_lost_fwd > 0, "1% loss over 20s must hit packets");
        // Losses force retransmissions; goodput only counts unique bytes.
        assert!(f.retransmits > 0);
    }

    #[test]
    fn ack_wire_loss_is_counted_and_audited() {
        use crate::fault::FaultSchedule;
        let (cfg, rtt) = base_config(10.0, 40, 2.0, 20.0);
        let bdp = cfg.rate.bdp_bytes(rtt);
        let cfg = cfg
            .with_faults(FaultSchedule::none().with_ack_loss(0.01).with_seed(7))
            .with_audit(true);
        let mut sim = Simulator::try_new(cfg).unwrap();
        sim.add_flow(FlowConfig::new(Box::new(FixedWindow::new(2 * bdp)), rtt));
        let report = sim.try_run().expect("ACK-lossy audited run");
        assert!(report.flows[0].wire_lost_ack > 0);
        // Per-packet SACK-like ACKs tolerate sparse ACK loss well.
        assert!(report.queue.utilization > 0.8);
    }

    #[test]
    fn link_outage_stalls_then_recovers() {
        use crate::fault::FaultSchedule;
        let (cfg, rtt) = base_config(10.0, 40, 2.0, 20.0);
        let bdp = cfg.rate.bdp_bytes(rtt);
        // 2s outage in a 20s run: ~10% of capacity is lost while the
        // flow's RTO keeps it alive across the gap.
        let faults = FaultSchedule::none()
            .with_outage(SimTime::from_secs_f64(5.0), SimDuration::from_secs_f64(2.0));
        let clean = {
            let (cfg, _) = base_config(10.0, 40, 2.0, 20.0);
            let mut sim = Simulator::try_new(cfg.with_audit(true)).unwrap();
            sim.add_flow(FlowConfig::new(Box::new(FixedWindow::new(2 * bdp)), rtt));
            sim.try_run().unwrap().flows[0].throughput_mbps()
        };
        let mut sim = Simulator::try_new(cfg.with_faults(faults).with_audit(true)).unwrap();
        sim.add_flow(FlowConfig::new(Box::new(FixedWindow::new(2 * bdp)), rtt));
        let report = sim.try_run().expect("outage run must stay consistent");
        let faulted = report.flows[0].throughput_mbps();
        assert!(
            faulted < clean - 0.5,
            "outage must cost throughput: clean={clean} faulted={faulted}"
        );
        assert!(
            faulted > clean * 0.5,
            "flow must recover after the outage: clean={clean} faulted={faulted}"
        );
    }

    #[test]
    fn rate_step_halves_throughput() {
        use crate::fault::FaultSchedule;
        let (cfg, rtt) = base_config(10.0, 40, 2.0, 20.0);
        let bdp = cfg.rate.bdp_bytes(rtt);
        // Halve the link rate at t=0: reported throughput tracks the
        // degraded capacity (the queue simply serializes slower).
        let faults = FaultSchedule::none().with_rate_step(SimTime::ZERO, Rate::from_mbps(5.0));
        let mut sim = Simulator::try_new(cfg.with_faults(faults).with_audit(true)).unwrap();
        sim.add_flow(FlowConfig::new(Box::new(FixedWindow::new(2 * bdp)), rtt));
        let report = sim.try_run().expect("rate-step run");
        let tp = report.flows[0].throughput_mbps();
        assert!((tp - 5.0).abs() < 0.5, "throughput={tp}");
    }

    #[test]
    fn delay_spike_is_survived() {
        use crate::fault::FaultSchedule;
        let (cfg, rtt) = base_config(10.0, 40, 2.0, 20.0);
        let bdp = cfg.rate.bdp_bytes(rtt);
        let faults = FaultSchedule::none().with_delay_spike(
            SimTime::from_secs_f64(5.0),
            SimDuration::from_secs_f64(1.0),
            SimDuration::from_millis(80),
        );
        let mut sim = Simulator::try_new(cfg.with_faults(faults).with_audit(true)).unwrap();
        sim.add_flow(FlowConfig::new(Box::new(FixedWindow::new(2 * bdp)), rtt));
        let report = sim.try_run().expect("delay-spike run must stay consistent");
        assert!(report.queue.utilization > 0.7);
    }

    #[test]
    fn faulted_runs_are_deterministic() {
        use crate::fault::FaultSchedule;
        let run_once = || {
            let (cfg, rtt) = base_config(10.0, 40, 1.0, 10.0);
            let bdp = cfg.rate.bdp_bytes(rtt);
            let faults = FaultSchedule::none()
                .with_loss(0.005)
                .with_ack_loss(0.005)
                .with_seed(42)
                .with_outage(SimTime::from_secs_f64(3.0), SimDuration::from_secs_f64(0.5));
            let mut sim = Simulator::try_new(cfg.with_faults(faults).with_audit(true)).unwrap();
            sim.add_flow(FlowConfig::new(Box::new(FixedWindow::new(3 * bdp)), rtt));
            sim.add_flow(FlowConfig::new(Box::new(FixedWindow::new(3 * bdp)), rtt));
            let r = sim.try_run().unwrap();
            (
                r.flows[0].goodput_bytes,
                r.flows[1].goodput_bytes,
                r.flows[0].wire_lost_fwd,
                r.flows[1].wire_lost_ack,
                r.queue.dropped_packets,
            )
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    fn early_stop_ends_a_steady_run_before_the_horizon() {
        // A fixed-window flow reaches steady state within a couple of
        // RTTs; a 60s horizon is almost all wasted events.
        let (cfg, rtt) = base_config(10.0, 40, 2.0, 60.0);
        let bdp = cfg.rate.bdp_bytes(rtt);
        let full = {
            let (cfg, _) = base_config(10.0, 40, 2.0, 60.0);
            let mut sim = Simulator::new(cfg);
            sim.add_flow(FlowConfig::new(Box::new(FixedWindow::new(2 * bdp)), rtt));
            sim.run()
        };
        let mut sim = Simulator::new(cfg.with_early_stop(EarlyStop::new(0.05, 3)));
        sim.add_flow(FlowConfig::new(Box::new(FixedWindow::new(2 * bdp)), rtt));
        let report = sim.run();
        assert!(report.early_stopped);
        assert!(
            report.effective_duration_secs < 10.0,
            "steady flow must stop within a few windows, got {}s",
            report.effective_duration_secs
        );
        assert_eq!(report.duration_secs, 60.0, "configured horizon is kept");
        assert!(
            report.events_processed * 3 < full.events_processed,
            "early stop must save most of the events: {} vs {}",
            report.events_processed,
            full.events_processed
        );
        // Throughput is normalized by the effective window, so the
        // number still reflects the steady state, not the truncation.
        let tp = report.flows[0].throughput_mbps();
        assert!((tp - 10.0).abs() < 0.5, "throughput={tp}");
    }

    #[test]
    fn unfired_early_stop_leaves_results_bit_identical() {
        // With an epsilon no real run can meet, the detector never fires:
        // apart from the ConvergenceCheck events themselves, the run must
        // be indistinguishable from a fixed-horizon one.
        let run = |stop: Option<EarlyStop>| {
            let (mut cfg, rtt) = base_config(10.0, 40, 1.0, 10.0);
            cfg.stop = stop;
            let bdp = cfg.rate.bdp_bytes(rtt);
            let mut sim = Simulator::new(cfg);
            sim.add_flow(FlowConfig::new(Box::new(FixedWindow::new(3 * bdp)), rtt));
            sim.add_flow(FlowConfig::new(Box::new(FixedWindow::new(3 * bdp)), rtt));
            sim.run()
        };
        let plain = run(None);
        let armed = run(Some(EarlyStop::new(1e-300, 3)));
        assert!(!armed.early_stopped);
        assert_eq!(armed.effective_duration_secs, armed.duration_secs);
        for (a, b) in plain.flows.iter().zip(&armed.flows) {
            assert_eq!(
                a.to_json_value().to_json(),
                b.to_json_value().to_json(),
                "flow results must not depend on an unfired early stop"
            );
        }
        assert_eq!(
            plain.queue.to_json_value().to_json(),
            armed.queue.to_json_value().to_json()
        );
    }

    #[test]
    fn early_stop_respects_min_time() {
        let (cfg, rtt) = base_config(10.0, 40, 2.0, 60.0);
        let bdp = cfg.rate.bdp_bytes(rtt);
        let stop = EarlyStop::new(0.05, 2).with_min_time(SimDuration::from_secs_f64(20.0));
        let mut sim = Simulator::new(cfg.with_early_stop(stop));
        sim.add_flow(FlowConfig::new(Box::new(FixedWindow::new(2 * bdp)), rtt));
        let report = sim.run();
        assert!(report.early_stopped);
        assert!(
            report.effective_duration_secs >= 20.0,
            "stop at {}s violates the 20s floor",
            report.effective_duration_secs
        );
    }

    #[test]
    fn early_stopped_audited_run_stays_consistent() {
        let (cfg, rtt) = base_config(10.0, 40, 4.0, 60.0);
        let bdp = cfg.rate.bdp_bytes(rtt);
        // Two phase-locked fixed-window flows trade ~10% of goodput back
        // and forth between windows; the epsilon must cover that swing.
        let cfg = cfg
            .with_early_stop(EarlyStop::new(0.15, 3))
            .with_audit(true);
        let mut sim = Simulator::try_new(cfg).unwrap();
        sim.add_flow(FlowConfig::new(Box::new(FixedWindow::new(2 * bdp)), rtt));
        sim.add_flow(FlowConfig::new(Box::new(FixedWindow::new(2 * bdp)), rtt));
        let report = sim.try_run().expect("audited early-stopped run");
        assert!(report.early_stopped);
        assert!(report.queue.utilization > 0.9);
    }

    #[test]
    fn trace_stride_thins_and_cap_bounds_samples() {
        use crate::trace::TraceConfig;
        let sampled = |tc: TraceConfig| {
            let (cfg, rtt) = base_config(10.0, 40, 2.0, 10.0);
            let bdp = cfg.rate.bdp_bytes(rtt);
            let cfg = cfg
                .with_trace(SimDuration::from_millis(100))
                .with_trace_config(tc);
            let mut sim = Simulator::new(cfg);
            sim.add_flow(FlowConfig::new(Box::new(FixedWindow::new(2 * bdp)), rtt));
            sim.run()
        };
        let dense = sampled(TraceConfig::default());
        assert_eq!(dense.trace.len(), 101); // t=0 .. t=10s inclusive
        let strided = sampled(TraceConfig {
            stride: 4,
            max_samples: None,
        });
        assert_eq!(strided.trace.len(), 26); // every 400ms
                                             // Strided samples are a subset of the dense schedule, at the
                                             // stride spacing.
        assert_eq!(strided.trace.samples[1].time.as_secs_f64(), 0.4);
        let capped = sampled(TraceConfig {
            stride: 1,
            max_samples: Some(7),
        });
        assert_eq!(capped.trace.len(), 7);
        // Hitting the cap also stops scheduling sample events.
        assert!(capped.events_processed < dense.events_processed);
    }

    #[test]
    fn degenerate_early_stop_and_trace_configs_are_rejected() {
        use crate::trace::TraceConfig;
        let (cfg, _) = base_config(10.0, 40, 2.0, 10.0);
        let bad_eps = cfg.clone().with_early_stop(EarlyStop::new(0.0, 3));
        assert!(Simulator::try_new(bad_eps).is_err());
        let bad_dwell = cfg.clone().with_early_stop(EarlyStop::new(0.05, 0));
        assert!(Simulator::try_new(bad_dwell).is_err());
        let bad_stride = cfg.clone().with_trace_config(TraceConfig {
            stride: 0,
            max_samples: None,
        });
        assert!(Simulator::try_new(bad_stride).is_err());
        let bad_cap = cfg.with_trace_config(TraceConfig {
            stride: 1,
            max_samples: Some(0),
        });
        assert!(Simulator::try_new(bad_cap).is_err());
    }

    /// One paced finite flow plus a backlogged competitor. With teardown
    /// the completing ACK no longer re-enters `try_send`, so the pacing
    /// events of the completed flow's ACK-drain tail are descheduled;
    /// the observable results must not change.
    #[test]
    fn teardown_deschedules_events_without_changing_results() {
        use crate::cc::FixedRate;
        let run = |disable_teardown: bool| {
            let (cfg, rtt) = base_config(10.0, 40, 2.0, 20.0);
            let bdp = cfg.rate.bdp_bytes(rtt);
            let mut sim = Simulator::new(cfg);
            if disable_teardown {
                sim.set_teardown_disabled();
            }
            // 2 Mbps paced finite transfer: done after ~2s of a 20s run.
            sim.add_flow(
                FlowConfig::new(Box::new(FixedRate::new(250_000.0)), rtt).with_byte_limit(500_000),
            );
            sim.add_flow(FlowConfig::new(Box::new(FixedWindow::new(2 * bdp)), rtt));
            sim.run()
        };
        let with_teardown = run(false);
        let without = run(true);
        assert!(
            with_teardown.events_processed < without.events_processed,
            "teardown must deschedule events: {} vs {}",
            with_teardown.events_processed,
            without.events_processed
        );
        // The fix is pure lifecycle bookkeeping: completion time, goodput,
        // and the competitor's results are identical either way.
        assert_eq!(
            with_teardown.flows[0].completion_time_secs,
            without.flows[0].completion_time_secs
        );
        assert!(with_teardown.flows[0].completion_time_secs.is_some());
        assert_eq!(
            with_teardown.flows[0].goodput_bytes,
            without.flows[0].goodput_bytes
        );
        assert_eq!(
            with_teardown.flows[1].goodput_bytes,
            without.flows[1].goodput_bytes
        );
    }

    /// Teardown under audit: finite flows complete while duplicates and
    /// retransmissions are still draining through the bottleneck; the
    /// conservation ledgers must stay consistent through and after it.
    #[test]
    fn audited_run_stays_consistent_through_teardown() {
        let (cfg, rtt) = base_config(10.0, 40, 0.5, 10.0);
        let bdp = cfg.rate.bdp_bytes(rtt);
        let mut sim = Simulator::try_new(cfg.with_audit(true)).unwrap();
        // Oversized windows against a small buffer force losses, so the
        // finite flows complete amid retransmissions and dup ACKs.
        sim.add_flow(
            FlowConfig::new(Box::new(FixedWindow::new(3 * bdp)), rtt).with_byte_limit(400_000),
        );
        sim.add_flow(
            FlowConfig::new(Box::new(FixedWindow::new(3 * bdp)), rtt).with_byte_limit(400_000),
        );
        sim.add_flow(FlowConfig::new(Box::new(FixedWindow::new(3 * bdp)), rtt));
        let report = sim.try_run().expect("audited teardown run");
        assert!(report.flows[0].completion_time_secs.is_some());
        assert!(report.flows[1].completion_time_secs.is_some());
        // Goodput-based utilization: lossy run, so well below 1 but busy.
        assert!(report.queue.utilization > 0.5);
    }

    fn workload_sim(secs: f64, rate_per_sec: f64, audit: bool) -> Simulator {
        let (cfg, rtt) = base_config(50.0, 20, 2.0, secs);
        let cfg = cfg
            .with_workload(crate::workload::WorkloadConfig::new(
                crate::workload::ArrivalProcess::Poisson { rate_per_sec },
                crate::workload::SizeDist::Fixed { bytes: 15_000 },
                rtt,
                11,
            ))
            .with_audit(audit);
        let mut sim = Simulator::try_new(cfg).unwrap();
        sim.set_workload_cc(Box::new(|_| Box::new(FixedWindow::new(8 * MSS))));
        sim
    }

    #[test]
    fn workload_spawns_completes_and_recycles_slots() {
        let mut sim = workload_sim(5.0, 200.0, false);
        let report = sim.try_run().expect("workload run");
        assert!(
            report.workload_spawned > 800,
            "Poisson(200/s) over 5s spawned only {}",
            report.workload_spawned
        );
        assert!(
            report.workload_completed > report.workload_spawned * 8 / 10,
            "most short flows must finish: {}/{}",
            report.workload_completed,
            report.workload_spawned
        );
        // No static flows: individual reports stay empty, the workload
        // reports in aggregate.
        assert!(report.flows.is_empty());
        let fct = &report.workload_fct;
        assert_eq!(fct.len(), 1, "one CCA in the mix");
        assert_eq!(fct[0].cc_name, "fixed");
        assert_eq!(
            fct[0].count, report.workload_completed,
            "every completion contributes an FCT sample"
        );
        assert!(fct[0].p50_secs > 0.0 && fct[0].p50_secs <= fct[0].p99_secs);
        // Slot recycling keeps the flow table near peak concurrency, far
        // below the cumulative spawn count.
        assert!(
            (sim.flow_count() as u64) < report.workload_spawned / 4,
            "slots {} vs spawned {}",
            sim.flow_count(),
            report.workload_spawned
        );
        // The open-loop load is ~2.4 Mbps on a 50 Mbps link.
        assert!(report.queue.utilization > 0.02);
    }

    #[test]
    fn audited_workload_run_stays_consistent() {
        let mut sim = workload_sim(3.0, 150.0, true);
        let report = sim.try_run().expect("audited workload run");
        assert!(report.workload_spawned > 200);
        assert!(report.workload_completed > 0);
    }

    #[test]
    fn workload_runs_are_deterministic() {
        let run = || {
            let mut sim = workload_sim(3.0, 150.0, false);
            let r = sim.try_run().unwrap();
            (
                r.workload_spawned,
                r.workload_completed,
                r.events_processed,
                r.workload_fct[0].p50_secs.to_bits(),
                r.workload_fct[0].p99_secs.to_bits(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn workload_report_roundtrips_through_json() {
        let mut sim = workload_sim(2.0, 100.0, false);
        let report = sim.try_run().unwrap();
        assert!(report.workload_spawned > 0);
        let text = report.to_json_value().to_json();
        let parsed = SimReport::from_json_value(&crate::json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed.to_json_value().to_json(), text);
        assert_eq!(parsed.workload_spawned, report.workload_spawned);
        assert_eq!(parsed.workload_fct, report.workload_fct);
    }

    #[test]
    fn workload_without_cc_factory_is_rejected() {
        let (cfg, rtt) = base_config(50.0, 20, 2.0, 1.0);
        let cfg = cfg.with_workload(crate::workload::WorkloadConfig::new(
            crate::workload::ArrivalProcess::Poisson { rate_per_sec: 10.0 },
            crate::workload::SizeDist::Fixed { bytes: 15_000 },
            rtt,
            1,
        ));
        let mut sim = Simulator::try_new(cfg).unwrap();
        assert!(matches!(
            sim.try_run(),
            Err(SimError::Config(ConfigError::Unsupported { .. }))
        ));
    }

    #[test]
    fn workload_with_early_stop_is_rejected() {
        let (cfg, rtt) = base_config(50.0, 20, 2.0, 1.0);
        let cfg = cfg
            .with_workload(crate::workload::WorkloadConfig::new(
                crate::workload::ArrivalProcess::Poisson { rate_per_sec: 10.0 },
                crate::workload::SizeDist::Fixed { bytes: 15_000 },
                rtt,
                1,
            ))
            .with_early_stop(EarlyStop::new(0.05, 3));
        assert!(matches!(
            Simulator::try_new(cfg),
            Err(ConfigError::Unsupported { .. })
        ));
    }

    #[test]
    fn determinism_same_config_same_result() {
        let run_once = || {
            let (cfg, rtt) = base_config(10.0, 40, 1.0, 10.0);
            let bdp = cfg.rate.bdp_bytes(rtt);
            let mut sim = Simulator::new(cfg);
            sim.add_flow(FlowConfig::new(Box::new(FixedWindow::new(3 * bdp)), rtt));
            sim.add_flow(FlowConfig::new(Box::new(FixedWindow::new(3 * bdp)), rtt));
            let r = sim.run();
            (
                r.flows[0].goodput_bytes,
                r.flows[1].goodput_bytes,
                r.queue.dropped_packets,
            )
        };
        assert_eq!(run_once(), run_once());
    }

    /// The legacy dumbbell expressed as an explicit 4-node topology must
    /// reproduce the legacy fast path bit for bit: same event count,
    /// same serialized report.
    #[test]
    fn dumbbell_as_topology_is_bit_identical_to_legacy() {
        let run = |with_topo: bool| {
            let (mut cfg, rtt) = base_config(10.0, 40, 2.0, 10.0);
            if with_topo {
                cfg.topology = Some(crate::topo::Topology::dumbbell(cfg.rate, cfg.buffer_bytes));
            }
            let bdp = cfg.rate.bdp_bytes(rtt);
            let mut sim = Simulator::try_new(cfg.with_audit(true)).unwrap();
            sim.add_flow(FlowConfig::new(Box::new(FixedWindow::new(3 * bdp)), rtt));
            sim.add_flow(FlowConfig::new(Box::new(FixedWindow::new(2 * bdp)), rtt));
            sim.try_run().unwrap()
        };
        let legacy = run(false);
        let topo = run(true);
        assert_eq!(legacy.events_processed, topo.events_processed);
        assert!(topo.hops.is_empty(), "one slot: no per-hop reports");
        assert_eq!(
            legacy.to_json_value().to_json(),
            topo.to_json_value().to_json()
        );
    }

    /// An audited two-hop parking-lot run: the long flow crosses both
    /// queues, each cross flow only its own; conservation holds across
    /// hops and the per-hop reports appear.
    #[test]
    fn audited_parking_lot_run_stays_consistent() {
        let rate = Rate::from_mbps(10.0);
        let rtt = SimDuration::from_millis(40);
        let bdp = rate.bdp_bytes(rtt);
        let mut topo =
            crate::topo::Topology::parking_lot(2, rate, SimDuration::from_millis(2), 2 * bdp);
        topo.flow_routes = vec![0, 1, 2];
        let cfg = SimConfig::new(rate, 2 * bdp, SimDuration::from_secs_f64(10.0))
            .with_topology(topo)
            .with_audit(true);
        let mut sim = Simulator::try_new(cfg).unwrap();
        for _ in 0..3 {
            sim.add_flow(FlowConfig::new(Box::new(FixedWindow::new(2 * bdp)), rtt));
        }
        let report = sim.try_run().expect("audited multi-hop run");
        assert_eq!(report.hops.len(), 2, "one report per rated link");
        // Both hops carry the long flow plus one cross flow; each must
        // be busy and every flow must move bytes.
        for hop in &report.hops {
            assert!(hop.utilization > 0.8, "hop utilization {}", hop.utilization);
        }
        for f in &report.flows {
            assert!(f.goodput_bytes > 0);
        }
        // The long flow's min RTT includes both per-hop propagation
        // delays on top of its configured base RTT (fwd + rev: 2 × 2ms
        // × 2 hops = 8ms).
        let long_rtt = report.flows[0].min_rtt_secs.unwrap();
        assert!(long_rtt >= 0.048, "long-path RTT {long_rtt}");
        let report_json = report.to_json_value().to_json();
        let parsed =
            SimReport::from_json_value(&crate::json::parse(&report_json).unwrap()).unwrap();
        assert_eq!(parsed.to_json_value().to_json(), report_json);
    }

    #[test]
    fn flow_routes_length_mismatch_is_typed() {
        let rate = Rate::from_mbps(10.0);
        let rtt = SimDuration::from_millis(40);
        let bdp = rate.bdp_bytes(rtt);
        let mut topo =
            crate::topo::Topology::parking_lot(2, rate, SimDuration::from_millis(2), 2 * bdp);
        topo.flow_routes = vec![0, 1]; // two entries, one flow
        let cfg =
            SimConfig::new(rate, 2 * bdp, SimDuration::from_secs_f64(1.0)).with_topology(topo);
        let mut sim = Simulator::try_new(cfg).unwrap();
        sim.add_flow(FlowConfig::new(Box::new(FixedWindow::new(2 * bdp)), rtt));
        match sim.try_run() {
            Err(SimError::Config(ConfigError::InvalidTopology { reason })) => {
                assert!(reason.contains("flow_routes"), "{reason}")
            }
            other => panic!("expected InvalidTopology, got {other:?}"),
        }
    }

    #[test]
    fn topology_with_early_stop_is_rejected() {
        let (cfg, _) = base_config(10.0, 40, 2.0, 10.0);
        let cfg = cfg
            .with_topology(crate::topo::Topology::dumbbell(
                Rate::from_mbps(10.0),
                30_000,
            ))
            .with_early_stop(EarlyStop::new(0.05, 3));
        assert!(matches!(
            Simulator::try_new(cfg),
            Err(ConfigError::Unsupported { .. })
        ));
    }

    #[test]
    fn topology_workload_needs_a_route() {
        let (cfg, rtt) = base_config(50.0, 20, 2.0, 2.0);
        let mut topo = crate::topo::Topology::dumbbell(Rate::from_mbps(50.0), 100_000);
        topo.workload_route = None;
        let cfg = cfg
            .with_workload(crate::workload::WorkloadConfig::new(
                crate::workload::ArrivalProcess::Poisson { rate_per_sec: 50.0 },
                crate::workload::SizeDist::Fixed { bytes: 15_000 },
                rtt,
                3,
            ))
            .with_topology(topo);
        assert!(matches!(
            Simulator::try_new(cfg),
            Err(ConfigError::InvalidTopology { .. })
        ));
    }

    /// An audited workload routed over a multi-hop chain: spawned flows
    /// take the workload route, recycle across all queues, and conserve.
    #[test]
    fn audited_workload_over_parking_lot_runs() {
        let rate = Rate::from_mbps(50.0);
        let rtt = SimDuration::from_millis(20);
        let bdp = rate.bdp_bytes(rtt);
        let topo =
            crate::topo::Topology::parking_lot(2, rate, SimDuration::from_millis(1), 2 * bdp);
        let cfg = SimConfig::new(rate, 2 * bdp, SimDuration::from_secs_f64(3.0))
            .with_workload(crate::workload::WorkloadConfig::new(
                crate::workload::ArrivalProcess::Poisson {
                    rate_per_sec: 100.0,
                },
                crate::workload::SizeDist::Fixed { bytes: 15_000 },
                rtt,
                5,
            ))
            .with_topology(topo)
            .with_audit(true);
        let mut sim = Simulator::try_new(cfg).unwrap();
        sim.set_workload_cc(Box::new(|_| Box::new(FixedWindow::new(8 * MSS))));
        let report = sim.try_run().expect("audited multi-hop workload run");
        assert!(report.workload_spawned > 100);
        assert!(report.workload_completed > report.workload_spawned / 2);
    }
}
