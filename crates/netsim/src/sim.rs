//! The dumbbell simulator: configuration, event loop, and reporting.
//!
//! A [`Simulator`] wires N flows (each with its own congestion-control
//! algorithm and base RTT) through one drop-tail bottleneck, runs the
//! event loop until the configured duration, and returns a [`SimReport`]
//! with per-flow throughput and queue measurements — the raw material for
//! every figure in the paper.
//!
//! # Example
//!
//! ```
//! use bbrdom_netsim::{FlowConfig, SimConfig, Simulator, Rate, SimDuration};
//! use bbrdom_netsim::cc::FixedWindow;
//!
//! let rate = Rate::from_mbps(10.0);
//! let rtt = SimDuration::from_millis(40);
//! let cfg = SimConfig::new(rate, rate.bdp_bytes(rtt), SimDuration::from_secs_f64(5.0));
//! let mut sim = Simulator::new(cfg);
//! // A fixed 2*BDP window saturates the link.
//! sim.add_flow(FlowConfig::new(Box::new(FixedWindow::new(2 * rate.bdp_bytes(rtt))), rtt));
//! let report = sim.run();
//! assert!(report.queue.utilization > 0.9);
//! ```

use crate::aqm::QueueDiscipline;
use crate::cc::CongestionControl;
use crate::event::{Event, EventQueue};
use crate::flow::Flow;
use crate::packet::FlowId;
use crate::queue::DropTailQueue;
use crate::stats::{FlowReport, QueueReport};
use crate::time::{SimDuration, SimTime};
use crate::trace::{Sample, Trace};
use crate::units::{Rate, MSS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Bottleneck and run-length configuration.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Bottleneck link capacity.
    pub rate: Rate,
    /// Bottleneck buffer size in bytes.
    pub buffer_bytes: u64,
    /// Total simulated time.
    pub duration: SimDuration,
    /// All window-averaged report quantities — throughput, utilization,
    /// average queue occupancy, and average cwnd — cover
    /// `[measure_start, duration]`. The paper measures from flow start;
    /// keep `ZERO` to match.
    pub measure_start: SimTime,
    /// Maximum segment size.
    pub mss: u64,
    /// If set, record a [`Trace`] sample every interval.
    pub sample_interval: Option<SimDuration>,
    /// Bottleneck queue discipline (default: drop-tail, as in the paper).
    pub discipline: QueueDiscipline,
    /// Uniform random extra delay on the ACK path, `[0, ack_jitter)`.
    ///
    /// Real hosts and routers have µs-scale timing noise; a perfectly
    /// deterministic simulator phase-locks the ACK clocks so the only
    /// packet ever dropped at a full queue is the *growing* flow's own
    /// marginal packet — which systematically punishes short-RTT flows
    /// (they grow more often per second) and inverts TCP's real RTT
    /// bias. A small jitter dithers the phases so drops land across
    /// bursts, as in real networks. Zero disables it.
    pub ack_jitter: SimDuration,
    /// Seed for the jitter RNG (simulations stay reproducible).
    pub seed: u64,
}

impl SimConfig {
    pub fn new(rate: Rate, buffer_bytes: u64, duration: SimDuration) -> Self {
        SimConfig {
            rate,
            buffer_bytes,
            duration,
            measure_start: SimTime::ZERO,
            mss: MSS,
            sample_interval: None,
            discipline: QueueDiscipline::DropTail,
            ack_jitter: SimDuration::ZERO,
            seed: 0,
        }
    }

    /// Set a measurement warm-up: all window-averaged report quantities
    /// ignore `[0, start)`.
    pub fn with_measure_start(mut self, start: SimTime) -> Self {
        self.measure_start = start;
        self
    }

    /// Enable time-series tracing at the given sample interval.
    pub fn with_trace(mut self, interval: SimDuration) -> Self {
        assert!(interval > SimDuration::ZERO);
        self.sample_interval = Some(interval);
        self
    }

    /// Replace the drop-tail FIFO with an AQM (RED or CoDel).
    pub fn with_discipline(mut self, discipline: QueueDiscipline) -> Self {
        self.discipline = discipline;
        self
    }

    /// Enable ACK-path timing jitter (see [`SimConfig::ack_jitter`]).
    pub fn with_ack_jitter(mut self, jitter: SimDuration, seed: u64) -> Self {
        self.ack_jitter = jitter;
        self.seed = seed;
        self
    }
}

/// Per-flow configuration.
pub struct FlowConfig {
    /// The congestion-control algorithm instance for this flow.
    pub cc: Box<dyn CongestionControl>,
    /// Base (propagation) RTT of the flow's path.
    pub base_rtt: SimDuration,
    /// When the application starts sending.
    pub start_time: SimTime,
    /// Payload size for a finite transfer (None = backlogged).
    pub byte_limit: Option<u64>,
}

impl FlowConfig {
    pub fn new(cc: Box<dyn CongestionControl>, base_rtt: SimDuration) -> Self {
        FlowConfig {
            cc,
            base_rtt,
            start_time: SimTime::ZERO,
            byte_limit: None,
        }
    }

    pub fn starting_at(mut self, t: SimTime) -> Self {
        self.start_time = t;
        self
    }

    /// Make this a finite transfer of `bytes` payload bytes (e.g. a
    /// short web/ad flow). Its completion time is reported as the FCT.
    pub fn with_byte_limit(mut self, bytes: u64) -> Self {
        assert!(bytes > 0);
        self.byte_limit = Some(bytes);
        self
    }
}

/// Results of one simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    pub flows: Vec<FlowReport>,
    pub queue: QueueReport,
    /// Simulated duration in seconds.
    pub duration_secs: f64,
    /// Discrete events dispatched by the run — the denominator for
    /// events/sec throughput measurements (`crates/bench/benches/netsim_perf.rs`).
    pub events_processed: u64,
    /// Time-series trace (empty unless `SimConfig::with_trace` was set).
    pub trace: Trace,
}

impl SimReport {
    /// Sum of per-flow throughputs (bytes/sec).
    pub fn total_throughput_bytes_per_sec(&self) -> f64 {
        self.flows.iter().map(|f| f.throughput_bytes_per_sec).sum()
    }

    /// Mean per-flow throughput (Mbps) over flows whose CC name matches.
    pub fn mean_throughput_mbps_of(&self, cc_name: &str) -> Option<f64> {
        let v: Vec<f64> = self
            .flows
            .iter()
            .filter(|f| f.cc_name == cc_name)
            .map(|f| f.throughput_mbps())
            .collect();
        if v.is_empty() {
            None
        } else {
            Some(v.iter().sum::<f64>() / v.len() as f64)
        }
    }
}

/// The discrete-event dumbbell simulator.
pub struct Simulator {
    config: SimConfig,
    flows: Vec<Flow>,
    events: EventQueue,
    queue: Option<DropTailQueue>,
}

impl Simulator {
    pub fn new(config: SimConfig) -> Self {
        assert!(config.buffer_bytes > 0, "buffer must be positive");
        assert!(
            config.duration > SimDuration::ZERO,
            "duration must be positive"
        );
        Simulator {
            config,
            flows: Vec::new(),
            events: EventQueue::new(),
            queue: None,
        }
    }

    /// Add a flow; returns its id. Must be called before [`Self::run`].
    pub fn add_flow(&mut self, fc: FlowConfig) -> FlowId {
        assert!(self.queue.is_none(), "cannot add flows after run()");
        let id = FlowId(self.flows.len() as u32);
        // Split the base RTT between the forward (data) and reverse (ACK)
        // paths; the split is arbitrary as long as the sum is the base RTT.
        let half = SimDuration(fc.base_rtt.0 / 2);
        let other_half = SimDuration(fc.base_rtt.0 - half.0);
        let mut flow = Flow::new(id, fc.cc, self.config.mss, half, other_half, fc.start_time);
        if let Some(limit) = fc.byte_limit {
            flow.set_byte_limit(limit);
        }
        self.flows.push(flow);
        id
    }

    /// Number of flows added so far.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Run the simulation to completion and produce the report.
    pub fn run(&mut self) -> SimReport {
        assert!(!self.flows.is_empty(), "no flows configured");
        let mut queue = DropTailQueue::with_discipline(
            self.config.rate,
            self.config.buffer_bytes,
            self.flows.len(),
            self.config.discipline,
        );
        let end = SimTime::ZERO + self.config.duration;
        let mut trace = Trace::default();
        let mut jitter_rng = StdRng::seed_from_u64(self.config.seed);
        let jitter_ns = self.config.ack_jitter.as_nanos();

        // Schedule the first trace sample at t=0 (before any FlowStart) so
        // traces carry the true baseline: empty queue, initial cwnd, zero
        // delivered bytes.
        if self.config.sample_interval.is_some() {
            self.events.schedule(SimTime::ZERO, Event::StatsSample);
        }
        for f in &self.flows {
            self.events.schedule(f.start_time, Event::FlowStart(f.id));
        }

        let measure_start = self.config.measure_start.min(end);
        let mut window_marked = false;
        let mut events_processed: u64 = 0;

        while let Some((now, event)) = self.events.pop() {
            if now > end {
                break;
            }
            events_processed += 1;
            // Snapshot all time integrals the first time simulated time
            // reaches the measurement window, so every window-averaged
            // quantity (throughput, queue occupancy, cwnd) shares the same
            // `[measure_start, end]` window. Events are processed in time
            // order and no integral has advanced past `measure_start` yet,
            // so marking here is exact.
            if !window_marked && now >= measure_start {
                queue.mark_measure_start(measure_start);
                for f in &mut self.flows {
                    f.mark_measure_start(measure_start);
                }
                window_marked = true;
            }
            match event {
                Event::FlowStart(id) => {
                    self.flows[id.index()].on_start(now, &mut queue, &mut self.events);
                }
                Event::Pacing(id) => {
                    self.flows[id.index()].on_pacing(now, &mut queue, &mut self.events);
                }
                Event::LinkDequeue => {
                    let (finished, next_size) = queue.service_complete(now);
                    if let Some(size) = next_size {
                        let done = now + queue.serialization_time(size);
                        self.events.schedule(done, Event::LinkDequeue);
                    }
                    let flow = &mut self.flows[finished.flow.index()];
                    let delivery_time = now + flow.prop_fwd;
                    // Receiver bookkeeping happens at delivery time.
                    let new_bytes = flow.receiver_on_data(finished.seq, finished.size);
                    flow.stats.goodput_bytes_total += new_bytes;
                    if delivery_time >= self.config.measure_start && delivery_time <= end {
                        flow.stats.goodput_bytes += new_bytes;
                    }
                    let mut ack_time = delivery_time + flow.prop_rev;
                    if jitter_ns > 0 {
                        ack_time += crate::time::SimDuration(jitter_rng.gen_range(0..jitter_ns));
                    }
                    self.events.schedule(
                        ack_time,
                        Event::AckArrive {
                            flow: finished.flow,
                            seq: finished.seq,
                        },
                    );
                }
                Event::AckArrive { flow, seq } => {
                    self.flows[flow.index()].on_ack(now, seq, &mut queue, &mut self.events);
                }
                Event::RtoCheck(id) => {
                    self.flows[id.index()].on_rto_check(now, &mut queue, &mut self.events);
                }
                Event::StatsSample => {
                    trace.samples.push(Sample {
                        time: now,
                        queue_bytes: queue.queued_bytes(),
                        cwnd_bytes: self.flows.iter().map(|f| f.cc().cwnd_bytes()).collect(),
                        inflight_bytes: self.flows.iter().map(|f| f.inflight_bytes()).collect(),
                        delivered_bytes: self
                            .flows
                            .iter()
                            .map(|f| f.stats.goodput_bytes_total)
                            .collect(),
                    });
                    if let Some(interval) = self.config.sample_interval {
                        let next = now + interval;
                        if next <= end {
                            self.events.schedule(next, Event::StatsSample);
                        }
                    }
                }
            }
        }

        // If every event fired before the window opened, mark now so the
        // window averages cover `[measure_start, end]` of (idle) time.
        if !window_marked {
            queue.mark_measure_start(measure_start);
            for f in &mut self.flows {
                f.mark_measure_start(measure_start);
            }
        }
        queue.finalize(end);
        for f in &mut self.flows {
            f.finalize(end);
        }

        let measure_secs = (end - measure_start).as_secs_f64();
        let flow_reports: Vec<FlowReport> = self
            .flows
            .iter()
            .map(|f| FlowReport {
                flow: f.id,
                cc_name: f.cc_name().to_string(),
                throughput_bytes_per_sec: if measure_secs > 0.0 {
                    f.stats.goodput_bytes as f64 / measure_secs
                } else {
                    0.0
                },
                goodput_bytes: f.stats.goodput_bytes,
                sent_bytes: f.stats.sent_bytes,
                retransmits: f.stats.retransmits,
                lost_packets: f.stats.lost_packets,
                congestion_events: f.stats.congestion_events,
                rtos: f.stats.rtos,
                avg_queue_occupancy_bytes: queue.avg_occupancy_bytes_of(f.id, measure_secs),
                min_rtt_secs: f.min_rtt().map(|d| d.as_secs_f64()),
                mean_rtt_secs: f.mean_rtt_secs(),
                avg_cwnd_bytes: if measure_secs > 0.0 {
                    (f.stats.cwnd_time_integral - f.stats.cwnd_integral_mark) / measure_secs
                } else {
                    0.0
                },
                max_cwnd_bytes: f.stats.max_cwnd_bytes,
                completion_time_secs: f
                    .completion_time()
                    .map(|t| t.as_secs_f64() - f.start_time.as_secs_f64()),
                backoff_times_secs: f
                    .stats
                    .backoff_times
                    .iter()
                    .map(|t| t.as_secs_f64())
                    .collect(),
            })
            .collect();

        let total_goodput: u64 = flow_reports.iter().map(|f| f.goodput_bytes).sum();
        let capacity_bytes_in_window = self.config.rate.bytes_per_sec() * measure_secs;
        let avg_occ = queue.avg_occupancy_bytes(measure_secs);
        let queue_report = QueueReport {
            avg_occupancy_bytes: avg_occ,
            avg_queuing_delay_secs: avg_occ / self.config.rate.bytes_per_sec(),
            peak_occupancy_bytes: queue.peak_bytes(),
            capacity_bytes: queue.capacity_bytes(),
            dropped_packets: queue.dropped_packets(),
            aqm_drops: queue.aqm_drops(),
            enqueued_packets: queue.enqueued_packets(),
            utilization: if capacity_bytes_in_window > 0.0 {
                total_goodput as f64 / capacity_bytes_in_window
            } else {
                0.0
            },
            drops: queue
                .drops()
                .iter()
                .map(|d| (d.time.as_secs_f64(), d.flow))
                .collect(),
        };
        self.queue = Some(queue);

        SimReport {
            flows: flow_reports,
            queue: queue_report,
            duration_secs: self.config.duration.as_secs_f64(),
            events_processed,
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::FixedWindow;

    fn base_config(mbps: f64, rtt_ms: u64, buffer_bdp: f64, secs: f64) -> (SimConfig, SimDuration) {
        let rate = Rate::from_mbps(mbps);
        let rtt = SimDuration::from_millis(rtt_ms);
        let buf = crate::units::buffer_bytes(rate, rtt, buffer_bdp);
        (
            SimConfig::new(rate, buf, SimDuration::from_secs_f64(secs)),
            rtt,
        )
    }

    #[test]
    fn single_fixed_window_flow_saturates_link() {
        let (cfg, rtt) = base_config(10.0, 40, 2.0, 10.0);
        let bdp = cfg.rate.bdp_bytes(rtt);
        let mut sim = Simulator::new(cfg);
        sim.add_flow(FlowConfig::new(Box::new(FixedWindow::new(2 * bdp)), rtt));
        let report = sim.run();
        // 2*BDP window into a 2*BDP buffer: no loss, full utilization.
        assert_eq!(report.queue.dropped_packets, 0);
        assert!(
            report.queue.utilization > 0.95,
            "utilization={}",
            report.queue.utilization
        );
        let tp = report.flows[0].throughput_mbps();
        assert!((tp - 10.0).abs() < 0.5, "throughput={tp}");
    }

    #[test]
    fn undersized_window_is_rtt_limited() {
        // cwnd = BDP/2 → throughput ≈ rate/2 and empty queue.
        let (cfg, rtt) = base_config(10.0, 40, 2.0, 10.0);
        let bdp = cfg.rate.bdp_bytes(rtt);
        let mut sim = Simulator::new(cfg);
        sim.add_flow(FlowConfig::new(Box::new(FixedWindow::new(bdp / 2)), rtt));
        let report = sim.run();
        let tp = report.flows[0].throughput_mbps();
        assert!((tp - 5.0).abs() < 0.5, "throughput={tp}");
        assert!(report.queue.avg_occupancy_bytes < 2.0 * MSS as f64);
    }

    #[test]
    fn two_equal_fixed_flows_share_evenly() {
        let (cfg, rtt) = base_config(10.0, 40, 4.0, 20.0);
        let bdp = cfg.rate.bdp_bytes(rtt);
        let mut sim = Simulator::new(cfg);
        sim.add_flow(FlowConfig::new(Box::new(FixedWindow::new(2 * bdp)), rtt));
        sim.add_flow(FlowConfig::new(Box::new(FixedWindow::new(2 * bdp)), rtt));
        let report = sim.run();
        let t0 = report.flows[0].throughput_mbps();
        let t1 = report.flows[1].throughput_mbps();
        assert!((t0 - t1).abs() < 1.0, "t0={t0} t1={t1}");
        assert!((t0 + t1 - 10.0).abs() < 0.5);
    }

    #[test]
    fn oversized_windows_cause_loss_and_recovery_keeps_link_full() {
        // Two flows with windows larger than buffer+BDP: drops must occur,
        // retransmissions must recover them, link stays fully utilized.
        let (cfg, rtt) = base_config(10.0, 40, 1.0, 20.0);
        let bdp = cfg.rate.bdp_bytes(rtt);
        let mut sim = Simulator::new(cfg);
        sim.add_flow(FlowConfig::new(Box::new(FixedWindow::new(3 * bdp)), rtt));
        sim.add_flow(FlowConfig::new(Box::new(FixedWindow::new(3 * bdp)), rtt));
        let report = sim.run();
        assert!(report.queue.dropped_packets > 0);
        let total: f64 = report.flows.iter().map(|f| f.throughput_mbps()).sum();
        assert!(total > 9.0, "total={total}");
        // Retransmissions happened and goodput only counts unique bytes.
        assert!(report.flows.iter().any(|f| f.retransmits > 0));
    }

    #[test]
    fn conservation_of_bytes() {
        // goodput + still-queued + in-flight + drops accounts for all sends.
        let (cfg, rtt) = base_config(20.0, 20, 1.0, 5.0);
        let bdp = cfg.rate.bdp_bytes(rtt);
        let mut sim = Simulator::new(cfg);
        sim.add_flow(FlowConfig::new(Box::new(FixedWindow::new(4 * bdp)), rtt));
        let report = sim.run();
        let f = &report.flows[0];
        let sent_pkts = f.sent_bytes / MSS;
        let delivered_pkts = f.goodput_bytes / MSS;
        let dropped = report.queue.dropped_packets;
        // delivered (unique) + dropped <= sent; duplicates possible.
        assert!(delivered_pkts + dropped <= sent_pkts);
        // Nothing is silently created.
        assert!(delivered_pkts > 0);
    }

    #[test]
    fn staggered_start_flow_gets_share() {
        let (cfg, rtt) = base_config(10.0, 40, 4.0, 20.0);
        let bdp = cfg.rate.bdp_bytes(rtt);
        let mut sim = Simulator::new(cfg);
        sim.add_flow(FlowConfig::new(Box::new(FixedWindow::new(2 * bdp)), rtt));
        sim.add_flow(
            FlowConfig::new(Box::new(FixedWindow::new(2 * bdp)), rtt)
                .starting_at(SimTime::from_secs_f64(5.0)),
        );
        let report = sim.run();
        assert!(report.flows[1].throughput_mbps() > 1.0);
    }

    #[test]
    #[should_panic]
    fn run_without_flows_panics() {
        let (cfg, _) = base_config(10.0, 40, 2.0, 1.0);
        Simulator::new(cfg).run();
    }

    #[test]
    fn measure_window_consistent_across_report_fields() {
        // A flow that starts at t=5s in a 10s run, measured over [5s, 10s].
        // Every window-averaged quantity must be normalized by the 5s
        // window, not the 10s elapsed time (the old bug halved the queue
        // and cwnd averages).
        let rate = Rate::from_mbps(10.0);
        let rtt = SimDuration::from_millis(40);
        let bdp = rate.bdp_bytes(rtt);
        let buf = crate::units::buffer_bytes(rate, rtt, 8.0);
        let window = 2 * bdp;
        let start = SimTime::from_secs_f64(5.0);
        let cfg =
            SimConfig::new(rate, buf, SimDuration::from_secs_f64(10.0)).with_measure_start(start);
        let mut sim = Simulator::new(cfg);
        sim.add_flow(FlowConfig::new(Box::new(FixedWindow::new(window)), rtt).starting_at(start));
        let report = sim.run();
        let f = &report.flows[0];

        // Steady state inside the window: cwnd pinned at 2*BDP, of which
        // one BDP is in flight and one BDP sits in the buffer.
        let cwnd = window as f64;
        let queued = (window - bdp) as f64;
        assert!(
            (f.avg_cwnd_bytes - cwnd).abs() / cwnd < 0.15,
            "avg_cwnd={} want≈{cwnd}",
            f.avg_cwnd_bytes
        );
        assert!(
            (f.avg_queue_occupancy_bytes - queued).abs() / queued < 0.15,
            "avg_queue_occ={} want≈{queued}",
            f.avg_queue_occupancy_bytes
        );
        assert!(
            (report.queue.avg_occupancy_bytes - queued).abs() / queued < 0.15,
            "queue avg_occ={} want≈{queued}",
            report.queue.avg_occupancy_bytes
        );
        // Throughput over the window saturates the link.
        let tp = f.throughput_mbps();
        assert!((tp - 10.0).abs() < 0.5, "throughput={tp}");
        assert!(report.queue.utilization > 0.9);
    }

    #[test]
    fn determinism_same_config_same_result() {
        let run_once = || {
            let (cfg, rtt) = base_config(10.0, 40, 1.0, 10.0);
            let bdp = cfg.rate.bdp_bytes(rtt);
            let mut sim = Simulator::new(cfg);
            sim.add_flow(FlowConfig::new(Box::new(FixedWindow::new(3 * bdp)), rtt));
            sim.add_flow(FlowConfig::new(Box::new(FixedWindow::new(3 * bdp)), rtt));
            let r = sim.run();
            (
                r.flows[0].goodput_bytes,
                r.flows[1].goodput_bytes,
                r.queue.dropped_packets,
            )
        };
        assert_eq!(run_once(), run_once());
    }
}
