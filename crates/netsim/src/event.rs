//! The discrete-event engine: a time-ordered queue of simulation events.
//!
//! Events are ordered by `(time, insertion sequence)`, so simultaneous
//! events fire in insertion order and every run is deterministic.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::packet::{FlowId, Packet};
use crate::time::SimTime;

/// Everything that can happen in the simulator.
#[derive(Debug, Clone)]
pub enum Event {
    /// A flow's application starts sending.
    FlowStart(FlowId),
    /// A paced flow may release its next packet.
    Pacing(FlowId),
    /// The bottleneck link finished serializing the packet in service.
    LinkDequeue,
    /// An ACK for `packet` reaches its sender (receiver behaviour — ACK per
    /// packet, immediate — is folded into scheduling this event).
    AckArrive(Packet),
    /// A flow's retransmission timer may have expired (lazy-cancelled:
    /// the flow re-checks its actual deadline).
    RtoCheck(FlowId),
    /// Periodic statistics sample (queue time series).
    StatsSample,
}

#[derive(Debug)]
struct Scheduled {
    time: SimTime,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Deterministic min-heap of [`Event`]s keyed by time.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Scheduled>>,
    next_seq: u64,
}

impl EventQueue {
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `event` at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Scheduled {
            time: at,
            seq,
            event,
        }));
    }

    /// Pop the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.heap.pop().map(|Reverse(s)| (s.time, s.event))
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(s)| s.time)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs_f64(2.0), Event::LinkDequeue);
        q.schedule(SimTime::from_secs_f64(1.0), Event::FlowStart(FlowId(0)));
        q.schedule(SimTime::from_secs_f64(3.0), Event::StatsSample);
        let (t1, e1) = q.pop().unwrap();
        assert_eq!(t1, SimTime::from_secs_f64(1.0));
        assert!(matches!(e1, Event::FlowStart(FlowId(0))));
        let (t2, _) = q.pop().unwrap();
        assert_eq!(t2, SimTime::from_secs_f64(2.0));
        let (t3, _) = q.pop().unwrap();
        assert_eq!(t3, SimTime::from_secs_f64(3.0));
        assert!(q.pop().is_none());
    }

    #[test]
    fn simultaneous_events_fire_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs_f64(1.0);
        for i in 0..10 {
            q.schedule(t, Event::FlowStart(FlowId(i)));
        }
        for i in 0..10 {
            let (_, e) = q.pop().unwrap();
            match e {
                Event::FlowStart(f) => assert_eq!(f, FlowId(i)),
                other => panic!("unexpected event {other:?}"),
            }
        }
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut q = EventQueue::new();
        assert!(q.peek_time().is_none());
        q.schedule(SimTime::ZERO + SimDuration::from_millis(5), Event::StatsSample);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs_f64(0.005)));
    }
}
