//! The discrete-event engine: a time-ordered queue of simulation events.
//!
//! Events are ordered by `(time, insertion sequence)`, so simultaneous
//! events fire in insertion order and every run is deterministic.
//!
//! # Engine
//!
//! [`EventQueue`] is a calendar queue (a timer wheel with an overflow
//! level): simulated time is divided into ticks of `2^TICK_SHIFT`
//! nanoseconds, and a ring of `NUM_BUCKETS` buckets holds the pending
//! events of the next `NUM_BUCKETS` ticks. Scheduling within the ring is
//! an array index plus an inline-slot (or spill `Vec`) write; popping
//! jumps straight to the next occupied tick by scanning a one-bit-per-
//! bucket occupancy bitmap a word at a time. Events beyond the ring's
//! horizon (long RTO timers, flows starting seconds in) sit in an
//! overflow min-heap that is pulled in as the wheel advances.
//!
//! The events of the current tick live in a tiny binary heap (`active`)
//! so that ties within a tick still resolve by `(time, seq)`; because a
//! tick is ~66 µs, this heap holds a handful of events, not the whole
//! future. The result is O(1) amortized schedule/pop versus the O(log n)
//! of a global heap — and, more importantly at simulation scale, far
//! less pointer churn per event.
//!
//! [`BinaryHeapQueue`] is the original global-heap engine, kept as an
//! executable specification: property tests drive both engines with the
//! same schedule stream and assert identical pop sequences.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::packet::{FlowId, Packet};
use crate::time::SimTime;

/// Everything that can happen in the simulator.
#[derive(Debug, Clone)]
pub enum Event {
    /// A flow's application starts sending.
    FlowStart(FlowId),
    /// A paced flow may release its next packet.
    Pacing(FlowId),
    /// Link `0` (the single bottleneck, or queue slot `0` of a
    /// multi-hop [`crate::topo::Topology`]) finished serializing the
    /// packet in service. The payload names the queue slot; the legacy
    /// single-bottleneck path always schedules slot `0`.
    LinkDequeue(u32),
    /// A packet propagating between hops of a multi-hop route reaches
    /// queue slot `link`. The packet itself rides in the event queue's
    /// payload ledger under index `pkt` (see [`EventQueue::schedule_hop`]
    /// / [`EventQueue::claim_hop`]) so `Event` stays pointer-free and
    /// small; never scheduled on the legacy single-bottleneck path.
    HopArrive { link: u32, pkt: u32 },
    /// The ACK for `seq` reaches its sender (receiver behaviour — ACK per
    /// packet, immediate — is folded into scheduling this event). Only
    /// the identity travels with the event; everything else the sender
    /// needs is on its scoreboard.
    AckArrive { flow: FlowId, seq: u64 },
    /// A flow's retransmission timer may have expired (lazy-cancelled:
    /// the flow re-checks its actual deadline).
    RtoCheck(FlowId),
    /// Periodic statistics sample (queue time series).
    StatsSample,
    /// Periodic steady-state check for the opt-in early-stop policy
    /// ([`crate::stop::EarlyStop`]); scheduled only when one is set.
    ConvergenceCheck,
    /// A scheduled fault fires: index into the compiled
    /// [`crate::fault::FaultSchedule`] timeline for this run.
    Fault(u32),
    /// The open-loop workload spawns its next finite flow (scheduled only
    /// when a [`crate::workload::WorkloadConfig`] is set; the handler
    /// draws the flow size and the next inter-arrival gap).
    WorkloadArrival,
}

#[derive(Debug, Clone)]
struct Scheduled {
    time: SimTime,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Tick width: 2^16 ns ≈ 65.5 µs. Comparable to per-packet event spacing
/// at hundreds of Mbps, so buckets hold a handful of events each.
const TICK_SHIFT: u32 = 16;
/// Ring size (power of two). Horizon = `NUM_BUCKETS << TICK_SHIFT` ≈
/// 67 ms — wide enough that pacing, serialization and RTT-scale
/// deadlines schedule directly into the ring; RTO-scale timers take the
/// overflow heap.
const NUM_BUCKETS: usize = 1024;
const BUCKET_MASK: u64 = NUM_BUCKETS as u64 - 1;
/// Words in the bucket-occupancy bitmap.
const WORDS: usize = NUM_BUCKETS / 64;

/// One ring slot. The first event of a tick is stored inline so the
/// overwhelmingly common singleton bucket costs one cache line and no
/// heap traffic; simultaneous extras spill into `rest`.
#[derive(Debug, Default)]
struct Bucket {
    head: Option<Scheduled>,
    rest: Vec<Scheduled>,
}

fn tick_of(t: SimTime) -> u64 {
    t.0 >> TICK_SHIFT
}

/// Deterministic calendar queue of [`Event`]s keyed by time.
///
/// Pops in globally ascending `(time, insertion seq)` order — bit-for-bit
/// the same order as [`BinaryHeapQueue`].
#[derive(Debug)]
pub struct EventQueue {
    /// Tick currently being drained; all its events are in `active`.
    cur_tick: u64,
    /// Events of `cur_tick` (and any scheduled into the past), ordered.
    active: BinaryHeap<Reverse<Scheduled>>,
    /// `ring[tick & BUCKET_MASK]` holds the events of `tick`, for ticks
    /// in `(cur_tick, cur_tick + NUM_BUCKETS)`. Unsorted within a bucket.
    ring: Vec<Bucket>,
    /// Total events in `ring`.
    ring_len: usize,
    /// One bit per ring bucket, set iff the bucket is non-empty, so the
    /// wheel can jump to the next occupied tick with a word scan instead
    /// of probing every empty bucket.
    occupied: [u64; WORDS],
    /// Events at or beyond the ring horizon, min-heap by `(time, seq)`.
    /// (Tick is monotone in time, so the top is also the earliest tick.)
    overflow: BinaryHeap<Reverse<Scheduled>>,
    /// Cached tick of the overflow top (`u64::MAX` when empty), so the
    /// wheel walk's eligibility test is one compare.
    overflow_next_tick: u64,
    next_seq: u64,
    /// Payloads of pending [`Event::HopArrive`] events. Keeping the
    /// [`Packet`] here instead of inside the variant keeps `Event` at
    /// its legacy size; both `Vec`s stay empty (zero allocation) unless
    /// a multi-hop topology actually schedules hop propagation.
    hop_pkts: Vec<Packet>,
    hop_free: Vec<u32>,
}

impl Default for EventQueue {
    fn default() -> Self {
        EventQueue {
            cur_tick: 0,
            active: BinaryHeap::new(),
            ring: (0..NUM_BUCKETS).map(|_| Bucket::default()).collect(),
            ring_len: 0,
            occupied: [0; WORDS],
            overflow: BinaryHeap::new(),
            overflow_next_tick: u64::MAX,
            next_seq: 0,
            hop_pkts: Vec::new(),
            hop_free: Vec::new(),
        }
    }
}

impl EventQueue {
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `event` at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let s = Scheduled {
            time: at,
            seq,
            event,
        };
        let tick = tick_of(s.time);
        if tick <= self.cur_tick {
            // Current tick (or a time already in the past — the heap
            // engine accepted those too, and ordering still holds because
            // every earlier tick has been fully drained).
            self.active.push(Reverse(s));
        } else if tick - self.cur_tick < NUM_BUCKETS as u64 {
            self.ring_insert(tick, s);
        } else {
            self.overflow_next_tick = self.overflow_next_tick.min(tick);
            self.overflow.push(Reverse(s));
        }
    }

    fn ring_insert(&mut self, tick: u64, s: Scheduled) {
        let slot = (tick & BUCKET_MASK) as usize;
        let bucket = &mut self.ring[slot];
        if bucket.head.is_none() {
            bucket.head = Some(s);
            self.occupied[slot / 64] |= 1u64 << (slot % 64);
        } else {
            bucket.rest.push(s);
        }
        self.ring_len += 1;
    }

    /// The earliest tick after `cur_tick` with a non-empty ring bucket.
    /// Requires `ring_len > 0`.
    fn next_occupied_tick(&self) -> u64 {
        debug_assert!(self.ring_len > 0);
        let cur_slot = (self.cur_tick & BUCKET_MASK) as usize;
        // `cur_tick`'s own slot is always empty (its tick has drained and
        // tick `cur_tick + NUM_BUCKETS` lives in overflow), so scanning
        // from the next slot and wrapping a full circle is exhaustive.
        let start = (cur_slot + 1) & BUCKET_MASK as usize;
        let mut w = start / 64;
        let first = self.occupied[w] & (!0u64 << (start % 64));
        let slot = if first != 0 {
            w * 64 + first.trailing_zeros() as usize
        } else {
            loop {
                w = (w + 1) % WORDS;
                let word = self.occupied[w];
                if word != 0 {
                    break w * 64 + word.trailing_zeros() as usize;
                }
            }
        };
        let delta = ((slot + NUM_BUCKETS - cur_slot) & BUCKET_MASK as usize) as u64;
        self.cur_tick + delta
    }

    /// Move overflow events whose ticks have come inside the ring horizon
    /// into the ring (or straight to `active` after a jump landed on
    /// their tick). Restores the invariant `overflow ticks ≥ cur_tick +
    /// NUM_BUCKETS` … except transiently right after a horizon move,
    /// which is exactly when this is called.
    fn pull_overflow(&mut self) {
        while let Some(Reverse(s)) = self.overflow.peek() {
            let tick = tick_of(s.time);
            if tick >= self.cur_tick + NUM_BUCKETS as u64 {
                self.overflow_next_tick = tick;
                return;
            }
            let Reverse(s) = self.overflow.pop().unwrap();
            if tick <= self.cur_tick {
                self.active.push(Reverse(s));
            } else {
                self.ring_insert(tick, s);
            }
        }
        self.overflow_next_tick = u64::MAX;
    }

    /// Pop the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        loop {
            if let Some(Reverse(s)) = self.active.pop() {
                return Some((s.time, s.event));
            }
            if self.ring_len > 0 {
                // Jump the wheel straight to the next occupied bucket.
                // Any overflow event whose tick enters the horizon as the
                // cursor moves has a tick beyond every current ring event
                // (it was ≥ the old horizon), so pulling *after* the jump
                // still places it ahead of the cursor, never behind.
                self.cur_tick = self.next_occupied_tick();
                if self.overflow_next_tick < self.cur_tick + NUM_BUCKETS as u64 {
                    self.pull_overflow();
                }
                let slot = (self.cur_tick & BUCKET_MASK) as usize;
                self.occupied[slot / 64] &= !(1u64 << (slot % 64));
                let bucket = &mut self.ring[slot];
                let head = bucket.head.take().expect("occupied bit without head");
                self.ring_len -= 1 + bucket.rest.len();
                // `active` is empty here (its pop just failed) and every
                // other pending event is in a later tick, so a lone bucket
                // entry — the common case — is the global minimum; skip
                // the heap round-trip.
                if bucket.rest.is_empty() {
                    return Some((head.time, head.event));
                }
                self.active.push(Reverse(head));
                for s in bucket.rest.drain(..) {
                    self.active.push(Reverse(s));
                }
            } else if !self.overflow.is_empty() {
                // The wheel is empty: jump straight to the earliest
                // overflow tick and redistribute what now fits.
                self.cur_tick = self.overflow_next_tick;
                self.pull_overflow();
            } else {
                return None;
            }
        }
    }

    /// Time of the earliest pending event.
    ///
    /// O(ring scan) in the worst case — fine for assertions and tests;
    /// the hot loop only ever pops.
    pub fn peek_time(&self) -> Option<SimTime> {
        if let Some(Reverse(s)) = self.active.peek() {
            return Some(s.time);
        }
        if self.ring_len > 0 {
            for dt in 1..NUM_BUCKETS as u64 {
                let bucket = &self.ring[((self.cur_tick + dt) & BUCKET_MASK) as usize];
                let min = bucket
                    .head
                    .iter()
                    .chain(bucket.rest.iter())
                    .map(|s| (s.time, s.seq))
                    .min();
                if let Some(min) = min {
                    return Some(min.0);
                }
            }
        }
        self.overflow.peek().map(|Reverse(s)| s.time)
    }

    pub fn len(&self) -> usize {
        self.active.len() + self.ring_len + self.overflow.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedule a [`Event::HopArrive`] at `at` delivering `packet` to
    /// queue slot `link`, stashing the packet in the payload ledger.
    pub fn schedule_hop(&mut self, at: SimTime, link: u32, packet: Packet) {
        let pkt = match self.hop_free.pop() {
            Some(i) => {
                self.hop_pkts[i as usize] = packet;
                i
            }
            None => {
                self.hop_pkts.push(packet);
                (self.hop_pkts.len() - 1) as u32
            }
        };
        self.schedule(at, Event::HopArrive { link, pkt });
    }

    /// Retrieve (and release) the payload of a popped
    /// [`Event::HopArrive`]. Each ledger index must be claimed exactly
    /// once, by the handler of the event that owns it.
    pub fn claim_hop(&mut self, pkt: u32) -> Packet {
        self.hop_free.push(pkt);
        self.hop_pkts[pkt as usize]
    }
}

/// The original engine: one global min-heap keyed by `(time, seq)`.
///
/// Retained as the executable specification of event ordering; see the
/// `event_order` property tests, which check [`EventQueue`] pops exactly
/// the sequence this does.
#[derive(Debug, Default)]
pub struct BinaryHeapQueue {
    heap: BinaryHeap<Reverse<Scheduled>>,
    next_seq: u64,
}

impl BinaryHeapQueue {
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `event` at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Scheduled {
            time: at,
            seq,
            event,
        }));
    }

    /// Pop the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.heap.pop().map(|Reverse(s)| (s.time, s.event))
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(s)| s.time)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs_f64(2.0), Event::LinkDequeue(0));
        q.schedule(SimTime::from_secs_f64(1.0), Event::FlowStart(FlowId(0)));
        q.schedule(SimTime::from_secs_f64(3.0), Event::StatsSample);
        let (t1, e1) = q.pop().unwrap();
        assert_eq!(t1, SimTime::from_secs_f64(1.0));
        assert!(matches!(e1, Event::FlowStart(FlowId(0))));
        let (t2, _) = q.pop().unwrap();
        assert_eq!(t2, SimTime::from_secs_f64(2.0));
        let (t3, _) = q.pop().unwrap();
        assert_eq!(t3, SimTime::from_secs_f64(3.0));
        assert!(q.pop().is_none());
    }

    #[test]
    fn simultaneous_events_fire_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs_f64(1.0);
        for i in 0..10 {
            q.schedule(t, Event::FlowStart(FlowId(i)));
        }
        for i in 0..10 {
            let (_, e) = q.pop().unwrap();
            match e {
                Event::FlowStart(f) => assert_eq!(f, FlowId(i)),
                other => panic!("unexpected event {other:?}"),
            }
        }
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut q = EventQueue::new();
        assert!(q.peek_time().is_none());
        q.schedule(
            SimTime::ZERO + SimDuration::from_millis(5),
            Event::StatsSample,
        );
        assert_eq!(q.peek_time(), Some(SimTime::from_secs_f64(0.005)));
    }

    #[test]
    fn interleaves_ring_and_overflow_correctly() {
        // Events straddling the ring horizon (~268 ms) and inserts that
        // arrive while earlier events are being drained.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs_f64(10.0), Event::StatsSample); // overflow
        q.schedule(SimTime::from_secs_f64(0.001), Event::FlowStart(FlowId(0))); // ring
        q.schedule(SimTime::FAR_FUTURE, Event::RtoCheck(FlowId(1))); // overflow
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs_f64(0.001));
        // Insert behind the cursor's tick but ahead of remaining events.
        q.schedule(SimTime::from_secs_f64(0.002), Event::LinkDequeue(0));
        let (t, e) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs_f64(0.002));
        assert!(matches!(e, Event::LinkDequeue(0)));
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs_f64(10.0));
        let (t, e) = q.pop().unwrap();
        assert_eq!(t, SimTime::FAR_FUTURE);
        assert!(matches!(e, Event::RtoCheck(FlowId(1))));
        assert!(q.pop().is_none() && q.is_empty());
    }

    #[test]
    fn len_counts_all_levels() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, Event::StatsSample); // active tick
        q.schedule(SimTime::from_secs_f64(0.01), Event::StatsSample); // ring
        q.schedule(SimTime::from_secs_f64(100.0), Event::StatsSample); // overflow
        assert_eq!(q.len(), 3);
        q.pop();
        assert_eq!(q.len(), 2);
        q.pop();
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn hop_ledger_round_trips_and_reuses_slots() {
        let mut q = EventQueue::new();
        let a = Packet {
            flow: FlowId(1),
            seq: 7,
            size: 1500,
        };
        let b = Packet {
            flow: FlowId(2),
            seq: 9,
            size: 400,
        };
        q.schedule_hop(SimTime::from_secs_f64(1.0), 3, a);
        q.schedule_hop(SimTime::from_secs_f64(2.0), 1, b);
        let (_, e) = q.pop().unwrap();
        let Event::HopArrive { link, pkt } = e else {
            panic!("expected HopArrive, got {e:?}");
        };
        assert_eq!(link, 3);
        let got = q.claim_hop(pkt);
        assert_eq!((got.flow, got.seq, got.size), (a.flow, a.seq, a.size));
        // The freed ledger slot is reused by the next in-flight packet.
        let c = Packet {
            flow: FlowId(5),
            seq: 11,
            size: 1500,
        };
        q.schedule_hop(SimTime::from_secs_f64(3.0), 0, c);
        let (_, e) = q.pop().unwrap();
        let Event::HopArrive { pkt: pb, .. } = e else {
            panic!("expected HopArrive, got {e:?}");
        };
        assert_eq!(q.claim_hop(pb).seq, 9);
        let (_, e) = q.pop().unwrap();
        let Event::HopArrive { pkt: pc, .. } = e else {
            panic!("expected HopArrive, got {e:?}");
        };
        assert_eq!(pc, pkt, "freed ledger slot is recycled");
        assert_eq!(q.claim_hop(pc).seq, 11);
    }

    #[test]
    fn reference_heap_same_behavior() {
        let mut q = BinaryHeapQueue::new();
        assert!(q.peek_time().is_none());
        q.schedule(SimTime::from_secs_f64(2.0), Event::LinkDequeue(0));
        q.schedule(SimTime::from_secs_f64(1.0), Event::StatsSample);
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs_f64(1.0)));
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs_f64(1.0));
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs_f64(2.0));
        assert!(q.pop().is_none());
    }
}
