//! The pluggable congestion-control interface.
//!
//! A sender ([`crate::flow::Flow`]) owns a `Box<dyn CongestionControl>`
//! and consults it for its congestion window and (optional) pacing rate.
//! The sender feeds the algorithm per-ACK samples carrying the same
//! information Linux exposes to its CC modules: an RTT sample, a
//! delivery-rate sample (BBR-style), bytes newly acked, bytes newly lost,
//! and the current in-flight count.

use crate::time::{SimDuration, SimTime};

/// Information delivered to the CC algorithm on every ACK.
#[derive(Debug, Clone, Copy)]
pub struct AckSample {
    /// Current simulation time.
    pub now: SimTime,
    /// Bytes newly acknowledged by this ACK.
    pub acked_bytes: u64,
    /// RTT measured by this ACK (`None` if the ACK was for a
    /// retransmission — Karn's rule).
    pub rtt: Option<SimDuration>,
    /// Delivery-rate sample in bytes/sec (`None` if unavailable).
    pub delivery_rate: Option<f64>,
    /// Total bytes delivered (cumulatively acked) so far on this flow.
    pub delivered_total: u64,
    /// The flow's delivered-bytes counter at the moment the ACKed packet
    /// was sent. Used for Linux-style packet-timed round counting:
    /// a round trip ends when `packet_delivered_at_send` reaches the
    /// `delivered_total` recorded at the previous round end.
    pub packet_delivered_at_send: u64,
    /// Bytes in flight *after* processing this ACK.
    pub inflight_bytes: u64,
    /// Bytes newly declared lost while processing this ACK.
    pub newly_lost_bytes: u64,
}

/// A read-only view of the sender's transport state, passed alongside
/// every callback so algorithms need not duplicate bookkeeping.
#[derive(Debug, Clone, Copy)]
pub struct FlowView {
    /// Maximum segment size in bytes.
    pub mss: u64,
    /// Smoothed RTT, if at least one sample exists.
    pub srtt: Option<SimDuration>,
    /// Minimum RTT observed over the flow's lifetime.
    pub min_rtt: Option<SimDuration>,
    /// Bytes currently in flight.
    pub inflight_bytes: u64,
    /// Total bytes delivered so far.
    pub delivered_bytes: u64,
    /// Whether the sender is currently in fast-recovery.
    pub in_recovery: bool,
}

/// A congestion-control algorithm.
///
/// Implementations are pure state machines: they receive ACK/loss events
/// and expose a congestion window (bytes) and an optional pacing rate.
/// When `pacing_rate()` returns `None` the sender is purely ACK-clocked
/// (classic loss-based TCP); when `Some(rate)`, packet releases are spaced
/// at `size/rate` (BBR-family and rate-based schemes).
pub trait CongestionControl: Send {
    /// Short algorithm name, e.g. `"cubic"`.
    fn name(&self) -> &'static str;

    /// Called for every arriving ACK.
    fn on_ack(&mut self, ack: &AckSample, view: &FlowView);

    /// Called once per congestion event (at most once per round trip, on
    /// the first loss of a new loss round — standard fast-recovery
    /// semantics). Loss-agnostic algorithms may ignore this.
    fn on_congestion_event(&mut self, now: SimTime, view: &FlowView);

    /// Called when the retransmission timer fires (all feedback lost).
    fn on_rto(&mut self, now: SimTime, view: &FlowView);

    /// Called after each packet transmission.
    fn on_packet_sent(&mut self, _now: SimTime, _bytes: u64, _view: &FlowView) {}

    /// Current congestion window in bytes.
    fn cwnd_bytes(&self) -> u64;

    /// Current pacing rate in bytes/sec, or `None` for pure ACK clocking.
    fn pacing_rate(&self) -> Option<f64>;

    /// Whether this controller is open-loop: its `on_*` callbacks are
    /// no-ops and `cwnd_bytes`/`pacing_rate` never change. The sender
    /// skips assembling the per-ACK [`AckSample`]/[`FlowView`] for such
    /// algorithms — purely an optimization; behavior is unchanged.
    fn is_open_loop(&self) -> bool {
        false
    }
}

/// Factory used by experiment code to build one CC instance per flow.
pub type CcFactory = Box<dyn Fn() -> Box<dyn CongestionControl> + Send + Sync>;

/// A trivial fixed-window algorithm.
///
/// Keeps a constant congestion window regardless of losses. Used by the
/// simulator's own tests (it makes throughput exactly predictable) and as
/// the simplest possible example of the trait.
#[derive(Debug, Clone)]
pub struct FixedWindow {
    cwnd: u64,
}

impl FixedWindow {
    pub fn new(cwnd_bytes: u64) -> Self {
        assert!(cwnd_bytes > 0);
        FixedWindow { cwnd: cwnd_bytes }
    }
}

impl CongestionControl for FixedWindow {
    fn name(&self) -> &'static str {
        "fixed"
    }
    fn on_ack(&mut self, _ack: &AckSample, _view: &FlowView) {}
    fn on_congestion_event(&mut self, _now: SimTime, _view: &FlowView) {}
    fn on_rto(&mut self, _now: SimTime, _view: &FlowView) {}
    fn cwnd_bytes(&self) -> u64 {
        self.cwnd
    }
    fn pacing_rate(&self) -> Option<f64> {
        None
    }
    fn is_open_loop(&self) -> bool {
        true
    }
}

/// A trivial fixed-rate (paced) algorithm: sends at a constant rate with
/// a generous window. Exercises the simulator's pacing path and models
/// an open-loop CBR source (useful as a background-traffic generator).
#[derive(Debug, Clone)]
pub struct FixedRate {
    rate: f64,
    cwnd: u64,
}

impl FixedRate {
    /// `rate` in bytes/sec; the window is set to two seconds at that
    /// rate so pacing, not the window, is the limiter.
    pub fn new(rate_bytes_per_sec: f64) -> Self {
        assert!(rate_bytes_per_sec > 0.0);
        FixedRate {
            rate: rate_bytes_per_sec,
            cwnd: (2.0 * rate_bytes_per_sec) as u64 + 3000,
        }
    }
}

impl CongestionControl for FixedRate {
    fn name(&self) -> &'static str {
        "fixedrate"
    }
    fn on_ack(&mut self, _ack: &AckSample, _view: &FlowView) {}
    fn on_congestion_event(&mut self, _now: SimTime, _view: &FlowView) {}
    fn on_rto(&mut self, _now: SimTime, _view: &FlowView) {}
    fn cwnd_bytes(&self) -> u64 {
        self.cwnd
    }
    fn pacing_rate(&self) -> Option<f64> {
        Some(self.rate)
    }
    fn is_open_loop(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_window_is_constant() {
        let mut cc = FixedWindow::new(10_000);
        assert_eq!(cc.cwnd_bytes(), 10_000);
        let view = FlowView {
            mss: 1500,
            srtt: None,
            min_rtt: None,
            inflight_bytes: 0,
            delivered_bytes: 0,
            in_recovery: false,
        };
        cc.on_congestion_event(SimTime::ZERO, &view);
        cc.on_rto(SimTime::ZERO, &view);
        assert_eq!(cc.cwnd_bytes(), 10_000);
        assert!(cc.pacing_rate().is_none());
    }

    #[test]
    #[should_panic]
    fn zero_window_rejected() {
        let _ = FixedWindow::new(0);
    }
}
