//! Arbitrary-topology specification: nodes, directed links, static routes.
//!
//! The legacy simulator models exactly one bottleneck queue; a
//! [`Topology`] generalizes that to a directed graph of links — each
//! either *rated* (it owns a drop-tail/AQM queue and serializes packets
//! at a fixed rate) or *delay-only* (pure propagation, no queue, no
//! events) — plus static routes that flows follow hop by hop
//! (enqueue → serialize → propagate at every rated link).
//!
//! Everything is validated up front by [`Topology::validate`], which
//! returns a typed [`ConfigError::InvalidTopology`] naming the offending
//! element instead of panicking mid-run. The validated spec is lowered
//! by [`crate::routing::compile`] into flat per-flow paths the hot loop
//! consumes; a single-bottleneck dumbbell lowers to one queue slot with
//! zero extra delays and is bit-identical to the legacy fast path (see
//! the `topology_equivalence` suite).

use crate::error::ConfigError;
use crate::time::SimDuration;
use crate::units::Rate;

/// A directed link between two topology nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkSpec {
    /// Source node index (`< Topology::n_nodes`).
    pub from: u32,
    /// Destination node index.
    pub to: u32,
    /// `Some(rate)` makes this a *rated* link: it owns a queue and
    /// serializes packets. `None` makes it delay-only: packets cross it
    /// in exactly `delay` with no queueing and no events.
    pub rate: Option<Rate>,
    /// One-way propagation delay.
    pub delay: SimDuration,
    /// Queue capacity in bytes. Must be positive for rated links;
    /// ignored (conventionally zero) for delay-only links.
    pub buffer_bytes: u64,
}

impl LinkSpec {
    /// A rated (serializing) link.
    pub fn rated(from: u32, to: u32, rate: Rate, delay: SimDuration, buffer_bytes: u64) -> Self {
        LinkSpec {
            from,
            to,
            rate: Some(rate),
            delay,
            buffer_bytes,
        }
    }

    /// A delay-only (pure propagation) link.
    pub fn wire(from: u32, to: u32, delay: SimDuration) -> Self {
        LinkSpec {
            from,
            to,
            rate: None,
            delay,
            buffer_bytes: 0,
        }
    }
}

/// A network topology with static per-flow routing.
///
/// Units are the simulator's own ([`Rate`], [`SimDuration`], bytes);
/// the experiments layer owns the paper-unit (`mbps`/`ms`/BDP) spec and
/// lowers it to this.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    /// Number of nodes; link endpoints index into `0..n_nodes`.
    pub n_nodes: u32,
    /// The directed links.
    pub links: Vec<LinkSpec>,
    /// Routes, each an ordered list of link indices forming a connected
    /// forward path (link `i`'s head is link `i+1`'s tail).
    pub routes: Vec<Vec<u32>>,
    /// Route taken by configured flow `i` (`flow_routes[i]` indexes
    /// `routes`). Empty means every flow follows route `0`. When
    /// non-empty its length must equal the flow count (checked at run
    /// setup, where the flow count is known).
    pub flow_routes: Vec<u32>,
    /// Route taken by open-loop workload flows. `None` rejects workload
    /// configs with a typed error instead of guessing.
    pub workload_route: Option<u32>,
    /// Rated link targeted by link-level faults (outages and capacity
    /// changes). `None` targets the first rated link of route `0`.
    pub fault_link: Option<u32>,
}

impl Topology {
    /// The legacy single-bottleneck dumbbell as a 4-node / 3-link
    /// topology: a zero-delay access wire, the rated bottleneck, and a
    /// zero-delay egress wire. Compiles to one queue slot with zero
    /// extra delays and zero extra events, so it reproduces the legacy
    /// path bit for bit (per-flow RTT stays on the flows themselves).
    pub fn dumbbell(rate: Rate, buffer_bytes: u64) -> Self {
        Topology {
            n_nodes: 4,
            links: vec![
                LinkSpec::wire(0, 1, SimDuration::ZERO),
                LinkSpec::rated(1, 2, rate, SimDuration::ZERO, buffer_bytes),
                LinkSpec::wire(2, 3, SimDuration::ZERO),
            ],
            routes: vec![vec![0, 1, 2]],
            flow_routes: Vec::new(),
            workload_route: Some(0),
            fault_link: None,
        }
    }

    /// A parking-lot chain of `hops` rated links in series. Route `0`
    /// traverses the whole chain (the "long" path); route `1 + h` covers
    /// only hop `h`, for per-hop cross-traffic that shares just that
    /// bottleneck with the long flows.
    pub fn parking_lot(
        hops: u32,
        rate: Rate,
        per_hop_delay: SimDuration,
        buffer_bytes: u64,
    ) -> Self {
        let links = (0..hops)
            .map(|h| LinkSpec::rated(h, h + 1, rate, per_hop_delay, buffer_bytes))
            .collect();
        let mut routes = vec![(0..hops).collect::<Vec<u32>>()];
        routes.extend((0..hops).map(|h| vec![h]));
        Topology {
            n_nodes: hops + 1,
            links,
            routes,
            flow_routes: Vec::new(),
            workload_route: Some(0),
            fault_link: None,
        }
    }

    /// The first rated link on route `r`, if any.
    pub(crate) fn first_rated_link(&self, r: usize) -> Option<u32> {
        self.routes
            .get(r)?
            .iter()
            .copied()
            .find(|&l| self.links[l as usize].rate.is_some())
    }

    /// Structural validation. Every reachable misconfiguration returns a
    /// typed [`ConfigError::InvalidTopology`]; a `Topology` that passes
    /// compiles and runs without panicking.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let bad = |reason: String| Err(ConfigError::InvalidTopology { reason });
        if self.n_nodes < 2 {
            return bad(format!("need at least 2 nodes, got {}", self.n_nodes));
        }
        if self.links.is_empty() {
            return bad("no links".into());
        }
        for (i, l) in self.links.iter().enumerate() {
            if l.from >= self.n_nodes || l.to >= self.n_nodes {
                return bad(format!(
                    "link {i} endpoints {}->{} outside 0..{}",
                    l.from, l.to, self.n_nodes
                ));
            }
            if l.from == l.to {
                return bad(format!("link {i} is a self-loop at node {}", l.from));
            }
            if let Some(rate) = l.rate {
                if !rate.bytes_per_sec().is_finite() || rate.bytes_per_sec() <= 0.0 {
                    return bad(format!("link {i} rate must be positive and finite"));
                }
                if l.buffer_bytes == 0 {
                    return bad(format!("rated link {i} has a zero-byte buffer"));
                }
            }
        }
        if self.routes.is_empty() {
            return bad("no routes".into());
        }
        for (r, route) in self.routes.iter().enumerate() {
            if route.is_empty() {
                return bad(format!("route {r} is empty"));
            }
            let mut visited = vec![false; self.n_nodes as usize];
            for (pos, &l) in route.iter().enumerate() {
                let Some(link) = self.links.get(l as usize) else {
                    return bad(format!(
                        "route {r} references missing link {l} (only {} links)",
                        self.links.len()
                    ));
                };
                if pos == 0 {
                    visited[link.from as usize] = true;
                } else {
                    let prev = &self.links[route[pos - 1] as usize];
                    if prev.to != link.from {
                        return bad(format!(
                            "route {r} is disconnected at hop {pos}: link {} ends at node {} \
                             but link {l} starts at node {}",
                            route[pos - 1],
                            prev.to,
                            link.from
                        ));
                    }
                }
                if visited[link.to as usize] {
                    return bad(format!("route {r} revisits node {} (cycle)", link.to));
                }
                visited[link.to as usize] = true;
            }
            if self.first_rated_link(r).is_none() {
                return bad(format!(
                    "route {r} has no rated link; nothing bounds its throughput"
                ));
            }
        }
        for (i, &fr) in self.flow_routes.iter().enumerate() {
            if fr as usize >= self.routes.len() {
                return bad(format!(
                    "flow {i} assigned to missing route {fr} (only {} routes)",
                    self.routes.len()
                ));
            }
        }
        if let Some(wr) = self.workload_route {
            if wr as usize >= self.routes.len() {
                return bad(format!("workload route {wr} does not exist"));
            }
        }
        if let Some(fl) = self.fault_link {
            let Some(link) = self.links.get(fl as usize) else {
                return bad(format!("fault link {fl} does not exist"));
            };
            if link.rate.is_none() {
                return bad(format!(
                    "fault link {fl} is delay-only; faults need a queue"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rate() -> Rate {
        Rate::from_mbps(10.0)
    }

    fn reason(t: &Topology) -> String {
        match t.validate() {
            Err(ConfigError::InvalidTopology { reason }) => reason,
            other => panic!("expected InvalidTopology, got {other:?}"),
        }
    }

    #[test]
    fn dumbbell_and_parking_lot_builders_validate() {
        Topology::dumbbell(rate(), 30_000).validate().unwrap();
        for hops in 1..=4 {
            let t = Topology::parking_lot(hops, rate(), SimDuration::from_millis(2), 30_000);
            t.validate().unwrap();
            assert_eq!(t.routes.len(), 1 + hops as usize);
            assert_eq!(t.routes[0].len(), hops as usize);
        }
    }

    #[test]
    fn missing_link_reference_is_typed() {
        let mut t = Topology::dumbbell(rate(), 30_000);
        t.routes[0] = vec![0, 9, 2];
        assert!(reason(&t).contains("missing link 9"), "{}", reason(&t));
    }

    #[test]
    fn disconnected_route_is_typed() {
        let mut t = Topology::dumbbell(rate(), 30_000);
        t.routes[0] = vec![0, 2]; // skips the 1->2 bottleneck: 0->1 then 2->3
        assert!(reason(&t).contains("disconnected"), "{}", reason(&t));
    }

    #[test]
    fn cyclic_route_is_typed() {
        let mut t = Topology::dumbbell(rate(), 30_000);
        t.links.push(LinkSpec::wire(2, 1, SimDuration::ZERO));
        t.links
            .push(LinkSpec::rated(1, 2, rate(), SimDuration::ZERO, 30_000));
        t.routes[0] = vec![0, 1, 3, 4, 2]; // ... 1->2->1->2 ...
        assert!(reason(&t).contains("revisits node"), "{}", reason(&t));
    }

    #[test]
    fn self_loop_and_bad_endpoints_are_typed() {
        let mut t = Topology::dumbbell(rate(), 30_000);
        t.links[0].to = 0;
        assert!(reason(&t).contains("self-loop"), "{}", reason(&t));
        let mut t = Topology::dumbbell(rate(), 30_000);
        t.links[2].to = 40;
        assert!(reason(&t).contains("outside"), "{}", reason(&t));
    }

    #[test]
    fn unbuffered_rated_link_is_typed() {
        let mut t = Topology::dumbbell(rate(), 30_000);
        t.links[1].buffer_bytes = 0;
        assert!(reason(&t).contains("zero-byte buffer"), "{}", reason(&t));
    }

    #[test]
    fn route_with_no_rated_link_is_typed() {
        let mut t = Topology::dumbbell(rate(), 30_000);
        t.routes.push(vec![2]); // egress wire only
        assert!(reason(&t).contains("no rated link"), "{}", reason(&t));
    }

    #[test]
    fn dangling_flow_workload_and_fault_references_are_typed() {
        let mut t = Topology::dumbbell(rate(), 30_000);
        t.flow_routes = vec![0, 7];
        assert!(reason(&t).contains("missing route 7"), "{}", reason(&t));
        let mut t = Topology::dumbbell(rate(), 30_000);
        t.workload_route = Some(3);
        assert!(reason(&t).contains("workload route 3"), "{}", reason(&t));
        let mut t = Topology::dumbbell(rate(), 30_000);
        t.fault_link = Some(0); // the delay-only access wire
        assert!(reason(&t).contains("delay-only"), "{}", reason(&t));
        let mut t = Topology::dumbbell(rate(), 30_000);
        t.fault_link = Some(9);
        assert!(reason(&t).contains("does not exist"), "{}", reason(&t));
    }

    #[test]
    fn empty_collections_are_typed() {
        let mut t = Topology::dumbbell(rate(), 30_000);
        t.routes = vec![];
        assert!(reason(&t).contains("no routes"));
        let mut t = Topology::dumbbell(rate(), 30_000);
        t.routes[0] = vec![];
        assert!(reason(&t).contains("route 0 is empty"));
        let mut t = Topology::dumbbell(rate(), 30_000);
        t.links = vec![];
        assert!(reason(&t).contains("no links"));
        let t = Topology {
            n_nodes: 1,
            ..Topology::dumbbell(rate(), 30_000)
        };
        assert!(reason(&t).contains("at least 2 nodes"));
    }
}
