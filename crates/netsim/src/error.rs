//! Typed errors: configuration validation and runtime simulation failure.
//!
//! The simulator fails *fast* on internal corruption (audit violations)
//! and *softly* at the caller: [`crate::sim::Simulator::try_run`] returns
//! a [`SimError`] instead of panicking, so a sweep can record one bad
//! trial and keep going. The panicking constructors/`run()` remain as
//! thin wrappers over these typed paths.

use crate::packet::FlowId;
use crate::time::SimTime;
use std::fmt;

/// A configuration rejected at validation time.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// A field that must be strictly positive was zero (or negative).
    NonPositive { field: &'static str },
    /// A float field that must be finite was NaN or infinite.
    NonFinite { field: &'static str },
    /// The simulator was asked to run with no flows configured.
    NoFlows,
    /// A loss probability outside `[0, 1]` (or NaN).
    LossOutOfRange { path: &'static str, value: f64 },
    /// A scheduled fault interval (outage / delay spike) with zero length.
    EmptyFaultInterval { kind: &'static str, at: SimTime },
    /// The selected simulation backend cannot model a requested feature
    /// (e.g. the fluid backend asked to run an AQM or fault schedule).
    Unsupported {
        backend: &'static str,
        feature: &'static str,
    },
    /// A multi-hop [`crate::topo::Topology`] failed structural
    /// validation: bad link endpoints, a route referencing a missing
    /// link, a disconnected or cyclic route, a rated link with no
    /// buffer, or an out-of-range route/flow/fault reference.
    InvalidTopology {
        /// Human-readable description naming the offending element.
        reason: String,
    },
    /// A filesystem resource the run depends on (sweep journal,
    /// supervisor state dir) could not be opened or created.
    Io {
        /// What the path is for ("sweep journal", "supervisor state dir").
        what: &'static str,
        /// The offending path, as displayed.
        path: String,
        /// The underlying OS error text.
        reason: String,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NonPositive { field } => write!(f, "{field} must be positive"),
            ConfigError::NonFinite { field } => write!(f, "{field} must be finite"),
            ConfigError::NoFlows => write!(f, "no flows configured"),
            ConfigError::LossOutOfRange { path, value } => {
                write!(f, "{path} loss probability {value} outside [0, 1]")
            }
            ConfigError::EmptyFaultInterval { kind, at } => {
                write!(f, "{kind} at {at} has zero length")
            }
            ConfigError::Unsupported { backend, feature } => {
                write!(f, "{backend} backend does not support {feature}")
            }
            ConfigError::InvalidTopology { reason } => {
                write!(f, "invalid topology: {reason}")
            }
            ConfigError::Io { what, path, reason } => {
                write!(f, "cannot open {what} {path}: {reason}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// A runtime invariant violation detected by the auditor
/// (see [`crate::audit`]).
#[derive(Debug, Clone)]
pub struct AuditViolation {
    /// Simulated time of the failing check.
    pub time: SimTime,
    /// The flow the violated invariant belongs to, if per-flow.
    pub flow: Option<FlowId>,
    /// Which invariant failed (short identifier).
    pub check: &'static str,
    /// Human-readable detail with the numbers that disagreed.
    pub detail: String,
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invariant '{}' violated at t={}", self.check, self.time)?;
        if let Some(flow) = self.flow {
            write!(f, " (flow {})", flow.0)?;
        }
        write!(f, ": {}", self.detail)
    }
}

impl std::error::Error for AuditViolation {}

/// Why a simulation run failed.
#[derive(Debug, Clone)]
pub enum SimError {
    /// The configuration was invalid.
    Config(ConfigError),
    /// The runtime auditor caught an internal inconsistency.
    Audit(AuditViolation),
    /// The run exceeded its event-count budget (livelock guard).
    EventBudgetExceeded {
        /// Events dispatched when the budget tripped.
        events: u64,
        /// Simulated time reached.
        sim_time: SimTime,
    },
    /// The run exceeded its wall-clock budget (livelock guard).
    WallClockExceeded {
        /// Real elapsed seconds when the budget tripped.
        elapsed_secs: f64,
        /// Simulated time reached.
        sim_time: SimTime,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Config(e) => write!(f, "invalid configuration: {e}"),
            SimError::Audit(v) => write!(f, "audit failure: {v}"),
            SimError::EventBudgetExceeded { events, sim_time } => write!(
                f,
                "event budget exceeded after {events} events at t={sim_time}"
            ),
            SimError::WallClockExceeded {
                elapsed_secs,
                sim_time,
            } => write!(
                f,
                "wall-clock budget exceeded after {elapsed_secs:.2}s at t={sim_time}"
            ),
        }
    }
}

impl std::error::Error for SimError {}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::Config(e)
    }
}

impl From<AuditViolation> for SimError {
    fn from(v: AuditViolation) -> Self {
        SimError::Audit(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_keeps_legacy_assert_messages() {
        // `Simulator::new` used to assert with these exact phrases; the
        // panicking wrapper must keep them recognizable.
        let e = ConfigError::NonPositive { field: "buffer" };
        assert_eq!(e.to_string(), "buffer must be positive");
        let e = ConfigError::NonPositive { field: "duration" };
        assert_eq!(e.to_string(), "duration must be positive");
    }

    #[test]
    fn io_error_display_names_path_and_reason() {
        let e = ConfigError::Io {
            what: "sweep journal",
            path: "/nope/sweep.jsonl".into(),
            reason: "No such file or directory".into(),
        };
        let s = e.to_string();
        assert!(s.contains("sweep journal"), "{s}");
        assert!(s.contains("/nope/sweep.jsonl"), "{s}");
        assert!(s.contains("No such file"), "{s}");
    }

    #[test]
    fn sim_error_display_carries_context() {
        let v = AuditViolation {
            time: SimTime::from_secs_f64(1.5),
            flow: Some(FlowId(3)),
            check: "packet-conservation",
            detail: "offered=10 accounted=9".into(),
        };
        let s = SimError::Audit(v).to_string();
        assert!(s.contains("packet-conservation"), "{s}");
        assert!(s.contains("flow 3"), "{s}");
        assert!(s.contains("1.5"), "{s}");
    }
}
