//! Property tests for the multi-hop topology engine: conservation,
//! physical latency bounds, and determinism must hold for *every* small
//! chain topology, not just the hand-built ones in the unit tests.
//!
//! Every run executes with the conservation auditor enabled, so the
//! telescoping per-hop packet accounting (injected = delivered + lost +
//! in-flight, at every queue) is checked by the simulator itself on top
//! of the end-to-end assertions here.

use bbrdom_netsim::cc::FixedWindow;
use bbrdom_netsim::{
    FlowConfig, Rate, SimConfig, SimDuration, SimReport, Simulator, Topology, MSS,
};
use proptest::prelude::*;

/// Build and run a parking-lot chain: `windows_bdp[i]` sizes flow `i`'s
/// fixed window; `routes[i]` picks its route (0 = the full chain,
/// `1 + h` = hop `h` only). Audit is always on.
fn run_chain(
    hops: u32,
    mbps: f64,
    rtt_ms: u64,
    per_hop_delay_ms: u64,
    buffer_bdp: f64,
    flows: &[(f64, u32)],
    secs: f64,
) -> SimReport {
    let rate = Rate::from_mbps(mbps);
    let rtt = SimDuration::from_millis(rtt_ms);
    let buffer = bbrdom_netsim::units::buffer_bytes(rate, rtt, buffer_bdp);
    let mut topo = Topology::parking_lot(
        hops,
        rate,
        SimDuration::from_millis(per_hop_delay_ms),
        buffer,
    );
    topo.flow_routes = flows.iter().map(|&(_, r)| r % (hops + 1)).collect();
    let cfg = SimConfig::new(rate, buffer, SimDuration::from_secs_f64(secs))
        .with_topology(topo)
        .with_audit(true);
    let bdp = rate.bdp_bytes(rtt).max(MSS);
    let mut sim = Simulator::try_new(cfg).expect("valid chain config");
    for &(w, _) in flows {
        let cwnd = ((bdp as f64 * w) as u64).max(2 * MSS);
        sim.add_flow(FlowConfig::new(Box::new(FixedWindow::new(cwnd)), rtt));
    }
    sim.try_run().expect("audited multi-hop run")
}

proptest! {
    // Multi-hop sims are the most expensive substrate tests; a couple of
    // dozen randomized chains is plenty to catch a routing or
    // accounting bug.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// End-to-end conservation on arbitrary chains: no flow delivers
    /// more than it sent, and every queue's drop count is consistent
    /// with what it enqueued (the in-run auditor checks the per-hop
    /// telescoping sums; `try_run` fails the test if any hop leaks).
    #[test]
    fn chains_conserve_packets(
        hops in 1u32..4,
        mbps in 5.0f64..40.0,
        rtt_ms in 10u64..60,
        per_hop_delay_ms in 0u64..5,
        buffer_bdp in 0.5f64..4.0,
        flows in prop::collection::vec((0.3f64..4.0, 0u32..8), 1..5),
        secs in 2.0f64..5.0,
    ) {
        let report = run_chain(hops, mbps, rtt_ms, per_hop_delay_ms, buffer_bdp, &flows, secs);
        for f in &report.flows {
            prop_assert!(f.goodput_bytes <= f.sent_bytes);
        }
        for hop in &report.hops {
            prop_assert!(hop.dropped_packets <= hop.enqueued_packets);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&hop.utilization));
        }
        // Multi-hop chains surface per-hop reports, one per rated link.
        let expect_hops = if hops > 1 { hops as usize } else { 0 };
        prop_assert_eq!(report.hops.len(), expect_hops);
    }

    /// Physics: a flow's observed min RTT can never beat its base RTT
    /// plus twice the propagation delay of every link on its route
    /// (forward data + reverse ACK both cross the chain).
    #[test]
    fn min_rtt_respects_route_propagation(
        hops in 1u32..4,
        per_hop_delay_ms in 1u64..6,
        route in 0u32..8,
        window in 0.5f64..3.0,
    ) {
        let rtt_ms = 20u64;
        let report = run_chain(hops, 20.0, rtt_ms, per_hop_delay_ms, 2.0, &[(window, route)], 4.0);
        let links_on_route = if route % (hops + 1) == 0 { hops as u64 } else { 1 };
        let floor_secs =
            (rtt_ms as f64 + 2.0 * (links_on_route * per_hop_delay_ms) as f64) / 1e3;
        let min_rtt = report.flows[0].min_rtt_secs.expect("flow saw traffic");
        prop_assert!(
            min_rtt >= floor_secs - 1e-9,
            "min RTT {min_rtt} beats the propagation floor {floor_secs}"
        );
    }

    /// Determinism: the same chain run twice serializes identically,
    /// whatever the topology shape.
    #[test]
    fn chains_are_deterministic(
        hops in 1u32..4,
        per_hop_delay_ms in 0u64..5,
        flows in prop::collection::vec((0.3f64..3.0, 0u32..8), 1..4),
    ) {
        let go = || run_chain(hops, 15.0, 30, per_hop_delay_ms, 2.0, &flows, 3.0);
        prop_assert_eq!(
            go().to_json_value().to_json(),
            go().to_json_value().to_json()
        );
    }
}
