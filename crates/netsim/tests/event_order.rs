//! Differential property tests for the event queue engines.
//!
//! The calendar [`EventQueue`] is a performance rewrite of the original
//! [`BinaryHeapQueue`], which is kept in-tree as the executable
//! specification. Determinism of every simulation hinges on both popping
//! the exact same `(time, insertion-seq)` order, so these tests drive the
//! two engines through identical schedule/pop streams — same-tick bursts,
//! cross-bucket gaps, and far-future RTO-style deadlines that land in the
//! overflow level — and require identical output at every step.

use bbrdom_netsim::event::{BinaryHeapQueue, Event, EventQueue};
use bbrdom_netsim::{FlowId, SimTime};
use proptest::prelude::*;

/// Events are compared by an identifying tag smuggled through the `seq`
/// field of an [`Event::AckArrive`].
fn tagged(tag: u64) -> Event {
    Event::AckArrive {
        flow: FlowId(0),
        seq: tag,
    }
}

fn tag_of(e: &Event) -> u64 {
    match e {
        Event::AckArrive { seq, .. } => *seq,
        other => panic!("unexpected event popped: {other:?}"),
    }
}

/// One interaction with both queues: schedule a tagged event at `time`,
/// or (if `time` is `None`) pop once from each and compare.
enum Op {
    Schedule(SimTime),
    Pop,
}

/// Drive both engines through `ops`, asserting identical pops, lengths,
/// and peeked times throughout, then drain both to empty.
fn assert_engines_agree(ops: impl Iterator<Item = Op>) {
    let mut cal = EventQueue::new();
    let mut heap = BinaryHeapQueue::new();
    let mut tag = 0u64;
    let pop_both = |cal: &mut EventQueue, heap: &mut BinaryHeapQueue| -> bool {
        match (cal.pop(), heap.pop()) {
            (None, None) => false,
            (Some((tc, ec)), Some((th, eh))) => {
                assert_eq!(tc, th, "pop time diverged");
                assert_eq!(tag_of(&ec), tag_of(&eh), "pop order diverged at t={tc:?}");
                true
            }
            (c, h) => panic!("one engine ran dry early: calendar={c:?} heap={h:?}"),
        }
    };
    for op in ops {
        match op {
            Op::Schedule(t) => {
                cal.schedule(t, tagged(tag));
                heap.schedule(t, tagged(tag));
                tag += 1;
            }
            Op::Pop => {
                pop_both(&mut cal, &mut heap);
            }
        }
        assert_eq!(cal.len(), heap.len());
        assert_eq!(cal.peek_time(), heap.peek_time());
    }
    while pop_both(&mut cal, &mut heap) {
        assert_eq!(cal.peek_time(), heap.peek_time());
    }
    assert!(cal.is_empty() && heap.is_empty());
}

const TICK_NS: u64 = 1 << 16; // one calendar bucket tick
const HORIZON_NS: u64 = 4096 * TICK_NS; // the calendar ring's span

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fully mixed streams: schedule gaps drawn from four scales
    /// (same-instant, sub-tick, within the ring horizon, beyond it) with
    /// interleaved pops.
    #[test]
    fn mixed_horizon_streams_match_reference(
        ops in prop::collection::vec(
            (0u64..4, 0u64..2_000_000_000, prop::bool::weighted(0.4)),
            1..200,
        ),
    ) {
        let mut now = 0u64;
        let stream = ops.into_iter().map(|(kind, extra, pop)| {
            if pop {
                Op::Pop
            } else {
                let gap = match kind {
                    0 => 0,
                    1 => extra % TICK_NS,
                    2 => extra % HORIZON_NS,
                    _ => HORIZON_NS + extra,
                };
                // Advance the schedule cursor so later events usually land
                // later, as in a real simulation.
                now += gap / 4;
                Op::Schedule(SimTime(now + gap))
            }
        });
        assert_engines_agree(stream);
    }

    /// Heavy tie-breaking: every event lands on one of four fixed
    /// instants inside a single tick, so FIFO order among equal
    /// timestamps is the only thing distinguishing a correct pop order.
    #[test]
    fn same_tick_bursts_match_reference(
        ops in prop::collection::vec((0u64..4, prop::bool::weighted(0.3)), 1..150),
    ) {
        let stream = ops.into_iter().map(|(slot, pop)| {
            if pop {
                Op::Pop
            } else {
                Op::Schedule(SimTime(1_000_000 + slot * 7))
            }
        });
        assert_engines_agree(stream);
    }

    /// RTO-style load: a dense stream of near-term events with occasional
    /// deadlines ~1s out (far past the ring horizon, like the 1-second
    /// initial RTO check), so events must migrate overflow → ring →
    /// active exactly when the wheel reaches them.
    #[test]
    fn far_future_deadlines_match_reference(
        ops in prop::collection::vec(
            (0u64..500_000, prop::bool::weighted(0.1), prop::bool::weighted(0.5)),
            1..200,
        ),
    ) {
        let mut now = 0u64;
        let stream = ops.into_iter().flat_map(|(gap, far, pop)| {
            now += gap / 2;
            let t = if far {
                SimTime(now + 1_000_000_000 + gap)
            } else {
                SimTime(now + gap)
            };
            let mut step = vec![Op::Schedule(t)];
            if pop {
                step.push(Op::Pop);
            }
            step
        });
        assert_engines_agree(stream);
    }
}
