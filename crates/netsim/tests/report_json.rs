//! `SimReport` JSON round-trip: the scenario result cache persists full
//! simulator reports to disk, so serialize → parse → serialize must be
//! the identity (bit-exact floats included) for reports with every
//! optional feature exercised: traces, drops, wire loss, finite flows.

use bbrdom_netsim::cc::FixedWindow;
use bbrdom_netsim::json;
use bbrdom_netsim::{
    FaultSchedule, FlowConfig, Rate, SimConfig, SimDuration, SimReport, Simulator, MSS,
};

fn busy_report() -> SimReport {
    let rate = Rate::from_mbps(10.0);
    let rtt = SimDuration::from_millis(20);
    let buf = bbrdom_netsim::units::buffer_bytes(rate, rtt, 0.5);
    let cfg = SimConfig::new(rate, buf, SimDuration::from_secs_f64(3.0))
        .with_trace(SimDuration::from_millis(250))
        .with_faults(FaultSchedule::none().with_loss(0.01).with_seed(7));
    let mut sim = Simulator::new(cfg);
    // Oversized windows force drops; a finite flow exercises completion.
    let window = rate.bdp_bytes(rtt) * 4;
    sim.add_flow(FlowConfig::new(Box::new(FixedWindow::new(window)), rtt));
    sim.add_flow(FlowConfig::new(
        Box::new(FixedWindow::new(window.max(MSS))),
        rtt,
    ));
    sim.run()
}

/// A clean single finite flow, so `completion_time_secs` is `Some`.
fn finite_flow_report() -> SimReport {
    let rate = Rate::from_mbps(10.0);
    let rtt = SimDuration::from_millis(20);
    let buf = bbrdom_netsim::units::buffer_bytes(rate, rtt, 2.0);
    let mut sim = Simulator::new(SimConfig::new(rate, buf, SimDuration::from_secs_f64(3.0)));
    sim.add_flow(
        FlowConfig::new(Box::new(FixedWindow::new(rate.bdp_bytes(rtt))), rtt)
            .with_byte_limit(100_000),
    );
    sim.run()
}

#[test]
fn sim_report_roundtrips_bit_exactly() {
    let report = busy_report();
    // The run must exercise the interesting fields, or the round-trip
    // proves less than it claims.
    assert!(report.queue.dropped_packets > 0, "want drops in the report");
    assert!(!report.trace.is_empty(), "want trace samples");

    let text = report.to_json_value().to_json();
    let parsed = SimReport::from_json_value(&json::parse(&text).unwrap()).unwrap();

    // Serialize → parse → serialize is the identity on the JSON form,
    // which covers every field in both directions.
    assert_eq!(parsed.to_json_value().to_json(), text);

    // Spot-check bit-exactness of floats and structure of nested data.
    assert_eq!(
        parsed.flows[0].throughput_bytes_per_sec.to_bits(),
        report.flows[0].throughput_bytes_per_sec.to_bits()
    );
    assert_eq!(parsed.queue.drops, report.queue.drops);
    assert_eq!(parsed.events_processed, report.events_processed);
    assert_eq!(parsed.trace.len(), report.trace.len());
    assert_eq!(
        parsed.trace.samples[1].cwnd_bytes,
        report.trace.samples[1].cwnd_bytes
    );
}

#[test]
fn finite_flow_completion_time_roundtrips() {
    let report = finite_flow_report();
    assert!(
        report.flows[0].completion_time_secs.is_some(),
        "want a completed finite flow"
    );
    let text = report.to_json_value().to_json();
    let parsed = SimReport::from_json_value(&json::parse(&text).unwrap()).unwrap();
    assert_eq!(parsed.to_json_value().to_json(), text);
    assert_eq!(
        parsed.flows[0].completion_time_secs.unwrap().to_bits(),
        report.flows[0].completion_time_secs.unwrap().to_bits()
    );
}

/// A multi-hop run, so the optional `hops` array is populated.
fn multi_hop_report() -> SimReport {
    let rate = Rate::from_mbps(10.0);
    let rtt = SimDuration::from_millis(20);
    let buf = bbrdom_netsim::units::buffer_bytes(rate, rtt, 2.0);
    let mut topo = bbrdom_netsim::Topology::parking_lot(2, rate, SimDuration::from_millis(2), buf);
    topo.flow_routes = vec![0, 1];
    let cfg = SimConfig::new(rate, buf, SimDuration::from_secs_f64(3.0)).with_topology(topo);
    let mut sim = Simulator::try_new(cfg).unwrap();
    for _ in 0..2 {
        sim.add_flow(FlowConfig::new(
            Box::new(FixedWindow::new(2 * rate.bdp_bytes(rtt))),
            rtt,
        ));
    }
    sim.run()
}

#[test]
fn per_hop_reports_roundtrip_bit_exactly() {
    let report = multi_hop_report();
    assert_eq!(report.hops.len(), 2, "want per-hop reports");
    let text = report.to_json_value().to_json();
    assert!(text.contains("\"hops\""), "multi-hop reports carry the key");
    let parsed = SimReport::from_json_value(&json::parse(&text).unwrap()).unwrap();
    assert_eq!(parsed.to_json_value().to_json(), text);
    assert_eq!(
        parsed.hops[1].avg_queuing_delay_secs.to_bits(),
        report.hops[1].avg_queuing_delay_secs.to_bits()
    );
    // Single-bottleneck reports must NOT carry the key: pre-topology
    // cache entries and goldens stay byte-identical.
    let legacy = busy_report();
    assert!(legacy.hops.is_empty());
    assert!(!legacy.to_json_value().to_json().contains("\"hops\""));
}

#[test]
fn sim_report_parse_rejects_malformed_input() {
    let report = busy_report();
    let good = report.to_json_value();

    // Whole-value corruption.
    assert!(SimReport::from_json_value(&json::Value::Null).is_err());

    // Member-level corruption: drop a required field.
    let mut missing = good.clone();
    if let json::Value::Object(map) = &mut missing {
        map.remove("queue");
    }
    assert!(SimReport::from_json_value(&missing).is_err());
}
