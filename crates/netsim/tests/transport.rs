//! Transport-level integration tests: loss recovery, RTO fallback,
//! pacing, receiver dedup, and ACK-clocked RTT bias — behaviours that
//! unit tests of individual modules can't exercise end-to-end.

use bbrdom_netsim::cc::{FixedRate, FixedWindow};
use bbrdom_netsim::{FlowConfig, Rate, SimConfig, SimDuration, Simulator, MSS};

fn config(mbps: f64, rtt_ms: u64, buffer_bdp: f64, secs: f64) -> (SimConfig, SimDuration) {
    let rate = Rate::from_mbps(mbps);
    let rtt = SimDuration::from_millis(rtt_ms);
    let buffer = bbrdom_netsim::units::buffer_bytes(rate, rtt, buffer_bdp);
    (
        SimConfig::new(rate, buffer, SimDuration::from_secs_f64(secs)),
        rtt,
    )
}

#[test]
fn paced_flow_matches_its_rate() {
    // A CBR source paced at half the link must deliver exactly its rate
    // with an empty queue.
    let (cfg, rtt) = config(20.0, 40, 4.0, 10.0);
    let mut sim = Simulator::new(cfg);
    let rate_bytes = 20.0e6 / 8.0 / 2.0; // half the link
    sim.add_flow(FlowConfig::new(Box::new(FixedRate::new(rate_bytes)), rtt));
    let report = sim.run();
    let tp = report.flows[0].throughput_mbps();
    assert!((tp - 10.0).abs() < 0.5, "paced throughput {tp}");
    assert!(report.queue.avg_occupancy_bytes < 2.0 * MSS as f64);
    assert_eq!(report.queue.dropped_packets, 0);
}

#[test]
fn paced_overload_sheds_exactly_the_excess() {
    // Pacing at 2× the link: half the packets drop, goodput = link rate.
    let (cfg, rtt) = config(10.0, 40, 1.0, 10.0);
    let mut sim = Simulator::new(cfg);
    sim.add_flow(FlowConfig::new(
        Box::new(FixedRate::new(2.0 * 10.0e6 / 8.0)),
        rtt,
    ));
    let report = sim.run();
    let tp = report.flows[0].throughput_mbps();
    assert!(tp > 9.0 && tp < 10.5, "goodput {tp}");
    assert!(report.queue.dropped_packets > 1000);
}

#[test]
fn rto_recovers_after_total_loss_burst() {
    // A window far larger than pipe+buffer drops nearly a whole flight;
    // the flow must recover via dup-ACKs/RTO and keep delivering, and
    // the receiver must report only unique bytes.
    let (cfg, rtt) = config(5.0, 40, 0.5, 20.0);
    let mut sim = Simulator::new(cfg);
    let bdp = 5.0e6 / 8.0 * 0.04;
    sim.add_flow(FlowConfig::new(
        Box::new(FixedWindow::new((8.0 * bdp) as u64)),
        rtt,
    ));
    let report = sim.run();
    let f = &report.flows[0];
    assert!(f.lost_packets > 0);
    assert!(f.retransmits > 0);
    // Goodput only counts unique delivery: strictly less than wire bytes.
    assert!(f.goodput_bytes < f.sent_bytes);
    // And the link still ran at high utilization despite the chaos.
    assert!(
        report.queue.utilization > 0.8,
        "utilization {}",
        report.queue.utilization
    );
}

#[test]
fn short_rtt_ack_clocked_flow_wins() {
    // Two identical fixed-window flows, different RTTs: the shorter-RTT
    // flow cycles its window faster and takes the larger share.
    let rate = Rate::from_mbps(20.0);
    let buffer = bbrdom_netsim::units::buffer_bytes(rate, SimDuration::from_millis(20), 2.0);
    let mut sim = Simulator::new(SimConfig::new(
        rate,
        buffer,
        SimDuration::from_secs_f64(20.0),
    ));
    let w = (20.0e6 / 8.0 * 0.02) as u64; // 1 BDP at the short RTT
    sim.add_flow(FlowConfig::new(
        Box::new(FixedWindow::new(w)),
        SimDuration::from_millis(20),
    ));
    sim.add_flow(FlowConfig::new(
        Box::new(FixedWindow::new(w)),
        SimDuration::from_millis(80),
    ));
    let report = sim.run();
    assert!(
        report.flows[0].throughput_mbps() > report.flows[1].throughput_mbps(),
        "short-RTT flow should win: {:?}",
        report
            .flows
            .iter()
            .map(|f| f.throughput_mbps())
            .collect::<Vec<_>>()
    );
}

#[test]
fn queueing_delay_matches_littles_law() {
    // With a single over-buffered fixed window W > BDP, the standing
    // queue is W − BDP and the queuing delay is (W − BDP)/C.
    let (cfg, rtt) = config(10.0, 40, 8.0, 20.0);
    let rate_bytes = 10.0e6 / 8.0;
    let bdp = rate_bytes * 0.04;
    let w = 3.0 * bdp;
    let mut sim = Simulator::new(cfg);
    sim.add_flow(FlowConfig::new(Box::new(FixedWindow::new(w as u64)), rtt));
    let report = sim.run();
    let expected_delay = (w - bdp) / rate_bytes;
    let measured = report.queue.avg_queuing_delay_secs;
    assert!(
        (measured - expected_delay).abs() < 0.2 * expected_delay,
        "delay {measured:.4}s expected {expected_delay:.4}s"
    );
}

#[test]
fn mean_rtt_reflects_standing_queue() {
    let (cfg, rtt) = config(10.0, 40, 8.0, 20.0);
    let bdp = 10.0e6 / 8.0 * 0.04;
    let mut sim = Simulator::new(cfg);
    sim.add_flow(FlowConfig::new(
        Box::new(FixedWindow::new((2.0 * bdp) as u64)),
        rtt,
    ));
    let report = sim.run();
    let mean_rtt = report.flows[0].mean_rtt_secs.unwrap();
    // 2 BDP window → 1 BDP standing queue → RTT ≈ 2×base.
    assert!(
        (mean_rtt - 0.08).abs() < 0.012,
        "mean rtt {mean_rtt} expected ≈0.08"
    );
    assert!(report.flows[0].min_rtt_secs.unwrap() >= 0.04 - 1e-9);
}

#[test]
fn trace_records_samples_and_throughput() {
    let (cfg, rtt) = config(10.0, 40, 2.0, 10.0);
    let cfg = cfg.with_trace(SimDuration::from_millis(500));
    let mut sim = Simulator::new(cfg);
    let bdp = 10.0e6 / 8.0 * 0.04;
    sim.add_flow(FlowConfig::new(
        Box::new(FixedWindow::new((2.0 * bdp) as u64)),
        rtt,
    ));
    let report = sim.run();
    // Samples at 0, 0.5, …, 10.0 s: exactly 21, starting with the t=0
    // baseline (empty queue, nothing delivered yet).
    assert_eq!(report.trace.len(), 21);
    let first = &report.trace.samples[0];
    assert_eq!(first.time, bbrdom_netsim::SimTime::ZERO);
    assert_eq!(first.queue_bytes, 0);
    assert_eq!(first.delivered_bytes[0], 0);
    let ts = report.trace.throughput_series();
    // Steady state: per-interval throughput ≈ link rate.
    let late = &ts[ts.len() / 2..];
    for (_, rates) in late {
        assert!(
            (rates[0] * 8.0 / 1e6 - 10.0).abs() < 1.5,
            "rate {} Mbps",
            rates[0] * 8.0 / 1e6
        );
    }
    // The fixed-window flow is always cwnd-limited.
    let limited = report.trace.cwnd_limited_fraction(0, MSS).unwrap();
    assert!(limited > 0.9, "limited={limited}");
}

#[test]
fn ack_jitter_is_deterministic_and_bounded() {
    let run = |seed: u64| {
        let (cfg, rtt) = config(10.0, 40, 1.0, 10.0);
        let cfg = cfg.with_ack_jitter(SimDuration::from_micros(100), seed);
        let mut sim = Simulator::new(cfg);
        let bdp = 10.0e6 / 8.0 * 0.04;
        sim.add_flow(FlowConfig::new(
            Box::new(FixedWindow::new((3.0 * bdp) as u64)),
            rtt,
        ));
        let r = sim.run();
        (r.flows[0].goodput_bytes, r.flows[0].min_rtt_secs.unwrap())
    };
    let (a1, min_rtt) = run(1);
    let (a2, _) = run(1);
    assert_eq!(a1, a2, "same seed must be bit-identical");
    // (Different seeds are allowed to coincide in aggregate goodput —
    // the link is saturated either way — so no inequality is asserted.)
    // Jitter only ever adds delay: min RTT ≥ base.
    assert!(min_rtt >= 0.04 - 1e-9);
}

#[test]
fn finite_flow_completes_and_reports_fct() {
    let (cfg, rtt) = config(10.0, 40, 2.0, 20.0);
    let mut sim = Simulator::new(cfg);
    let bdp = 10.0e6 / 8.0 * 0.04;
    // Long background flow + a 150 kB transfer.
    sim.add_flow(FlowConfig::new(Box::new(FixedWindow::new(bdp as u64)), rtt));
    sim.add_flow(
        FlowConfig::new(Box::new(FixedWindow::new(bdp as u64)), rtt)
            .with_byte_limit(150_000)
            .starting_at(bbrdom_netsim::SimTime::from_secs_f64(5.0)),
    );
    let report = sim.run();
    let fct = report.flows[1].completion_time_secs.expect("must finish");
    // 150 kB = 100 packets at ≥ ~5 Mbps with a 40 ms RTT: well under 5 s,
    // and it cannot beat the bandwidth bound (150kB/10Mbps = 120 ms).
    assert!(fct > 0.1 && fct < 5.0, "fct={fct}");
    // The long flow has no completion time.
    assert!(report.flows[0].completion_time_secs.is_none());
    // Exactly 100 packets of payload delivered for the short flow.
    assert_eq!(report.flows[1].goodput_bytes, 150_000);
}
