//! Property-based tests for the fault-injection harness: for *every*
//! randomized schedule of wire loss, outages, rate changes, and delay
//! spikes, the audited simulator must preserve its conservation laws —
//! no packet is created, lost twice, or silently forgotten.

use bbrdom_netsim::cc::FixedWindow;
use bbrdom_netsim::{
    FaultSchedule, FlowConfig, Rate, SimConfig, SimDuration, SimTime, Simulator, MSS,
};
use proptest::prelude::*;

/// A randomized-but-valid fault schedule drawn from the proptest inputs.
fn schedule(
    loss_fwd: f64,
    loss_ack: f64,
    seed: u64,
    outage: Option<(f64, f64)>,
    rate_step: Option<(f64, f64)>,
    spike: Option<(f64, f64, f64)>,
) -> FaultSchedule {
    let mut faults = FaultSchedule::none()
        .with_loss(loss_fwd)
        .with_ack_loss(loss_ack)
        .with_seed(seed);
    if let Some((at, len)) = outage {
        faults = faults.with_outage(SimTime::from_secs_f64(at), SimDuration::from_secs_f64(len));
    }
    if let Some((at, mbps)) = rate_step {
        faults = faults.with_rate_step(SimTime::from_secs_f64(at), Rate::from_mbps(mbps));
    }
    if let Some((at, len, extra_ms)) = spike {
        faults = faults.with_delay_spike(
            SimTime::from_secs_f64(at),
            SimDuration::from_secs_f64(len),
            SimDuration::from_secs_f64(extra_ms / 1e3),
        );
    }
    faults
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every audited run under a random impairment schedule completes
    /// without a conservation violation, and the basic byte/utilization
    /// bounds still hold.
    #[test]
    fn audited_conservation_under_random_faults(
        mbps in 5.0f64..40.0,
        rtt_ms in 10u64..60,
        buffer_bdp in 0.5f64..4.0,
        n_flows in 1usize..4,
        loss_fwd in 0.0f64..0.05,
        loss_ack in 0.0f64..0.05,
        seed in 0u64..1000,
        outage in prop::option::of((1.0f64..4.0, 0.05f64..1.0)),
        rate_step in prop::option::of((1.0f64..4.0, 2.0f64..40.0)),
        spike in prop::option::of((1.0f64..4.0, 0.05f64..1.0, 1.0f64..100.0)),
    ) {
        let rate = Rate::from_mbps(mbps);
        let rtt = SimDuration::from_millis(rtt_ms);
        let buffer = bbrdom_netsim::units::buffer_bytes(rate, rtt, buffer_bdp);
        let faults = schedule(loss_fwd, loss_ack, seed, outage, rate_step, spike);
        prop_assert!(faults.validate().is_ok());
        let cfg = SimConfig::new(rate, buffer, SimDuration::from_secs_f64(5.0))
            .with_faults(faults)
            .with_audit(true);
        let mut sim = Simulator::try_new(cfg).expect("valid config");
        let bdp = rate.bdp_bytes(rtt).max(MSS);
        for _ in 0..n_flows {
            sim.add_flow(FlowConfig::new(Box::new(FixedWindow::new(2 * bdp)), rtt));
        }
        let report = sim.try_run().expect("audited faulted run must stay consistent");
        // `utilization` is normalized to the *configured* rate; a rate
        // step can raise the real capacity above it, so bound by the
        // largest rate the link ever ran at.
        let peak_mbps = rate_step.map_or(mbps, |(_, m)| m.max(mbps));
        prop_assert!(report.queue.utilization <= peak_mbps / mbps + 1e-6,
            "utilization {}", report.queue.utilization);
        for f in &report.flows {
            prop_assert!(f.goodput_bytes <= f.sent_bytes,
                "flow {:?}: delivered {} > sent {}", f.flow, f.goodput_bytes, f.sent_bytes);
            prop_assert!(f.wire_lost_fwd * MSS <= f.sent_bytes,
                "flow {:?}: more wire losses than packets sent", f.flow);
        }
    }

    /// Faulted runs stay bit-for-bit deterministic for a given seed.
    #[test]
    fn faulted_runs_deterministic(
        loss in 0.0f64..0.03,
        seed in 0u64..1000,
    ) {
        let run_once = || {
            let rate = Rate::from_mbps(10.0);
            let rtt = SimDuration::from_millis(40);
            let buffer = bbrdom_netsim::units::buffer_bytes(rate, rtt, 1.0);
            let faults = FaultSchedule::none()
                .with_loss(loss)
                .with_ack_loss(loss / 2.0)
                .with_seed(seed)
                .with_outage(SimTime::from_secs_f64(2.0), SimDuration::from_secs_f64(0.25));
            let cfg = SimConfig::new(rate, buffer, SimDuration::from_secs_f64(5.0))
                .with_faults(faults)
                .with_audit(true);
            let mut sim = Simulator::try_new(cfg).expect("valid config");
            let bdp = rate.bdp_bytes(rtt);
            sim.add_flow(FlowConfig::new(Box::new(FixedWindow::new(3 * bdp)), rtt));
            sim.add_flow(FlowConfig::new(Box::new(FixedWindow::new(3 * bdp)), rtt));
            let r = sim.try_run().expect("run");
            (
                r.flows[0].goodput_bytes,
                r.flows[1].goodput_bytes,
                r.flows[0].wire_lost_fwd,
                r.flows[1].wire_lost_ack,
                r.queue.dropped_packets,
                r.events_processed,
            )
        };
        prop_assert_eq!(run_once(), run_once());
    }
}
