//! Property-based tests for the simulator substrate: conservation laws
//! and determinism must hold for *every* configuration, not just the
//! hand-picked ones in the unit tests.

use bbrdom_netsim::cc::FixedWindow;
use bbrdom_netsim::{FlowConfig, Rate, SimConfig, SimDuration, SimReport, Simulator, MSS};
use proptest::prelude::*;

fn run_sim(mbps: f64, rtt_ms: u64, buffer_bdp: f64, windows_bdp: Vec<f64>, secs: f64) -> SimReport {
    let rate = Rate::from_mbps(mbps);
    let rtt = SimDuration::from_millis(rtt_ms);
    let buffer = bbrdom_netsim::units::buffer_bytes(rate, rtt, buffer_bdp);
    let mut sim = Simulator::new(SimConfig::new(
        rate,
        buffer,
        SimDuration::from_secs_f64(secs),
    ));
    let bdp = rate.bdp_bytes(rtt).max(MSS);
    for w in windows_bdp {
        let cwnd = ((bdp as f64 * w) as u64).max(2 * MSS);
        sim.add_flow(FlowConfig::new(Box::new(FixedWindow::new(cwnd)), rtt));
    }
    sim.run()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// No bytes are created: unique delivered bytes never exceed sent
    /// bytes, per flow.
    #[test]
    fn conservation_of_bytes(
        mbps in 5.0f64..60.0,
        rtt_ms in 10u64..80,
        buffer_bdp in 0.25f64..8.0,
        windows in prop::collection::vec(0.3f64..4.0, 1..5),
    ) {
        let report = run_sim(mbps, rtt_ms, buffer_bdp, windows, 5.0);
        for f in &report.flows {
            prop_assert!(f.goodput_bytes <= f.sent_bytes,
                "flow {:?}: delivered {} > sent {}", f.flow, f.goodput_bytes, f.sent_bytes);
        }
    }

    /// The link never carries more than its capacity.
    #[test]
    fn utilization_bounded_by_one(
        mbps in 5.0f64..60.0,
        rtt_ms in 10u64..80,
        buffer_bdp in 0.25f64..8.0,
        windows in prop::collection::vec(0.3f64..4.0, 1..5),
    ) {
        let report = run_sim(mbps, rtt_ms, buffer_bdp, windows, 5.0);
        prop_assert!(report.queue.utilization <= 1.0 + 1e-6,
            "utilization {}", report.queue.utilization);
        let total: f64 = report.flows.iter().map(|f| f.throughput_bytes_per_sec).sum();
        prop_assert!(total <= mbps * 1e6 / 8.0 * 1.000001);
    }

    /// The queue respects its configured capacity.
    #[test]
    fn queue_never_exceeds_capacity(
        mbps in 5.0f64..60.0,
        rtt_ms in 10u64..80,
        buffer_bdp in 0.25f64..8.0,
        windows in prop::collection::vec(0.5f64..6.0, 1..5),
    ) {
        let report = run_sim(mbps, rtt_ms, buffer_bdp, windows, 5.0);
        prop_assert!(report.queue.peak_occupancy_bytes <= report.queue.capacity_bytes,
            "peak {} > capacity {}", report.queue.peak_occupancy_bytes, report.queue.capacity_bytes);
        prop_assert!(report.queue.avg_occupancy_bytes <= report.queue.capacity_bytes as f64 + 1e-6);
    }

    /// A window larger than BDP+buffer must cause drops; at most one
    /// window's worth can be in flight or queued.
    #[test]
    fn overload_causes_drops(
        mbps in 10.0f64..40.0,
        rtt_ms in 20u64..60,
    ) {
        let report = run_sim(mbps, rtt_ms, 1.0, vec![4.0], 10.0);
        prop_assert!(report.queue.dropped_packets > 0);
        // And the flow must recover enough to keep the link mostly busy.
        prop_assert!(report.queue.utilization > 0.7,
            "utilization {}", report.queue.utilization);
    }

    /// Same configuration → bit-identical results.
    #[test]
    fn determinism(
        mbps in 5.0f64..40.0,
        rtt_ms in 10u64..60,
        buffer_bdp in 0.5f64..4.0,
        windows in prop::collection::vec(0.5f64..3.0, 1..4),
    ) {
        let a = run_sim(mbps, rtt_ms, buffer_bdp, windows.clone(), 3.0);
        let b = run_sim(mbps, rtt_ms, buffer_bdp, windows, 3.0);
        for (fa, fb) in a.flows.iter().zip(&b.flows) {
            prop_assert_eq!(fa.goodput_bytes, fb.goodput_bytes);
            prop_assert_eq!(fa.sent_bytes, fb.sent_bytes);
        }
        prop_assert_eq!(a.queue.dropped_packets, b.queue.dropped_packets);
    }

    /// RTT-limited flows: a half-BDP window yields about half the link,
    /// and the sender never observes an RTT below the configured base.
    #[test]
    fn min_rtt_never_below_base(
        mbps in 5.0f64..40.0,
        rtt_ms in 10u64..80,
    ) {
        let report = run_sim(mbps, rtt_ms, 2.0, vec![0.5], 5.0);
        let base = rtt_ms as f64 / 1e3;
        if let Some(min_rtt) = report.flows[0].min_rtt_secs {
            prop_assert!(min_rtt >= base - 1e-9,
                "min_rtt {} below base {}", min_rtt, base);
        }
    }
}
