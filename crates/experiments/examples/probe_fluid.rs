//! Offline calibration sweep: fluid vs DES share/utilization deltas
//! across the envelope grid. Used to set the tolerances documented in
//! EXPERIMENTS.md; not part of the test suite.
use bbrdom_cca::CcaKind;
use bbrdom_experiments::{BackendSpec, Scenario, TrialResult};

fn share(r: &TrialResult) -> f64 {
    r.total_throughput_of("bbr") / r.total_throughput()
}

fn main() {
    println!("mbps rtt buf nc/nb | des fluid delta | util_delta");
    let mut worst: (f64, String) = (0.0, String::new());
    for &(mbps, rtt) in &[(20.0, 10.0), (50.0, 20.0), (100.0, 20.0), (100.0, 40.0)] {
        for &buf in &[0.5, 1.0, 2.0, 4.0, 8.0] {
            for &(nc, nb) in &[(1u32, 1u32), (2, 2), (3, 3), (4, 2), (2, 4)] {
                let des = Scenario::versus(mbps, rtt, buf, nc, CcaKind::Bbr, nb, 30.0, 77);
                let fl = des.clone().with_backend(BackendSpec::Fluid);
                let (d, f) = (des.run(), fl.run());
                let (ds, fs) = (share(&d), share(&f));
                let du = (f.utilization - d.utilization).abs();
                let line = format!(
                    "{mbps:>5} {rtt:>4} {buf:>4} {nc}/{nb} | {ds:.3} {fs:.3} {:+.3} | {du:.3}",
                    fs - ds
                );
                println!("{line}");
                if (fs - ds).abs() > worst.0 {
                    worst = ((fs - ds).abs(), line);
                }
            }
        }
    }
    println!("\nworst share delta: {}", worst.1);
}
