use bbrdom_netsim::{FlowConfig, Rate, SimConfig, SimDuration, Simulator};
fn main() {
    for (mbps, bdp) in [(30.0, 2.0), (30.0, 3.0), (50.0, 2.0), (50.0, 5.0)] {
        let rate = Rate::from_mbps(mbps);
        let rtt = SimDuration::from_millis(40);
        let buf = bbrdom_netsim::units::buffer_bytes(rate, rtt, bdp);
        let mut sim = Simulator::new(SimConfig::new(rate, buf, SimDuration::from_secs_f64(40.0)));
        sim.add_flow(FlowConfig::new(Box::new(bbrdom_cca::Cubic::new()), rtt));
        sim.add_flow(FlowConfig::new(Box::new(bbrdom_cca::Bbr::new(0)), rtt));
        let r = sim.run();
        let c = &r.flows[0];
        let b = &r.flows[1];
        println!("{mbps}Mbps {bdp}BDP: cubic={:.1} (ce={} rtos={} lost={} avg_cwnd={:.0}pkt maxcwnd={:.0} meanrtt={:.0}ms) bbr={:.1} (lost={} avgcwnd={:.0}pkt)",
          c.throughput_mbps(), c.congestion_events, c.rtos, c.lost_packets, c.avg_cwnd_bytes/1500.0, c.max_cwnd_bytes as f64/1500.0, c.mean_rtt_secs.unwrap_or(0.0)*1e3,
          b.throughput_mbps(), b.lost_packets, b.avg_cwnd_bytes/1500.0);
    }
}
