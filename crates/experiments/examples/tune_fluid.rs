//! Headroom tuning probe: sweeps FLUID_BW_HEADROOM against seed-averaged
//! DES references on the agreement-envelope grid. Offline tool, not a test.
use bbrdom_cca::CcaKind;
use bbrdom_experiments::{BackendSpec, Scenario, TrialResult};

fn share(r: &TrialResult) -> f64 {
    r.total_throughput_of("bbr") / r.total_throughput()
}

fn main() {
    let seeds = [77u64, 178, 1552];
    let factors = [1.0f64, 1.1, 1.2, 1.3];
    let configs: Vec<(f64, f64, f64, u32, u32)> = vec![
        (50.0, 20.0, 0.5, 1, 1),
        (50.0, 20.0, 2.0, 1, 1),
        (50.0, 20.0, 8.0, 1, 1),
        (50.0, 20.0, 2.0, 3, 3),
        (50.0, 20.0, 4.0, 2, 4),
        (50.0, 20.0, 8.0, 4, 2),
        (100.0, 20.0, 1.0, 2, 2),
        (100.0, 20.0, 4.0, 2, 2),
        (100.0, 20.0, 8.0, 3, 3),
    ];
    println!("config | des(mean) | fluid share per factor {factors:?}");
    let mut worst = vec![0.0f64; factors.len()];
    for &(mbps, rtt, buf, nc, nb) in &configs {
        let mk = |seed| Scenario::versus(mbps, rtt, buf, nc, CcaKind::Bbr, nb, 30.0, seed);
        let des_mean = seeds.iter().map(|&s| share(&mk(s).run())).sum::<f64>() / seeds.len() as f64;
        let mut row = format!("{mbps:>5} {rtt:>4} {buf:>4} {nc}/{nb} | {des_mean:.3} |");
        for (fi, &f) in factors.iter().enumerate() {
            std::env::set_var("FLUID_BW_HEADROOM", format!("{f}"));
            let fl_mean = seeds
                .iter()
                .map(|&s| share(&mk(s).with_backend(BackendSpec::Fluid).run()))
                .sum::<f64>()
                / seeds.len() as f64;
            row += &format!(" {fl_mean:.3}({:+.3})", fl_mean - des_mean);
            worst[fi] = worst[fi].max((fl_mean - des_mean).abs());
        }
        println!("{row}");
    }
    std::env::remove_var("FLUID_BW_HEADROOM");
    for (fi, &f) in factors.iter().enumerate() {
        println!("factor {f}: worst |delta| = {:.3}", worst[fi]);
    }
}
