//! End-to-end tests for the indexed result store.
//!
//! The contract under test: a warm store serves whole batches with zero
//! simulations AND zero full-report parses, byte-identical to both the
//! simulated and the disk-parse paths; the index survives torn tails
//! and rebuilds from the cache alone; a supervised sweep produces a
//! byte-identical index to a serial one (the parent is the single
//! writer); and opening a store sweeps orphaned tmp files without
//! touching live writers or published entries.

use bbrdom_cca::CcaKind;
use bbrdom_experiments::engine::{scenario_hash, Engine, EngineConfig};
use bbrdom_experiments::runner::SweepConfig;
use bbrdom_experiments::store::{Store, INDEX_FILE};
use bbrdom_experiments::{Scenario, SupervisorConfig, TrialResult};
use std::path::{Path, PathBuf};
use std::time::Duration;

fn temp_dir(name: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("bbrdom-store-it-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    std::fs::create_dir_all(&p).expect("create scratch dir");
    p
}

/// Short scenarios with distinct cache keys (same shape as the
/// supervisor suite's batches).
fn batch(n: usize) -> Vec<Scenario> {
    (0..n)
        .map(|i| {
            Scenario::versus(
                10.0 + (i % 3) as f64 * 5.0,
                20.0,
                1.0,
                1,
                CcaKind::Bbr,
                1,
                0.4,
                7_000 + i as u64,
            )
        })
        .collect()
}

fn engine(cache: &Path, memory: bool, store: bool) -> Engine {
    Engine::new(EngineConfig {
        jobs: 2,
        disk_cache: Some(cache.to_path_buf()),
        memory_cache: memory,
        supervise: None,
        result_store: store,
    })
}

fn fingerprints(results: &[TrialResult]) -> Vec<String> {
    results
        .iter()
        .map(|r| r.to_json_value().to_json())
        .collect()
}

/// A miniature figure assembly: the goodput columns a fig 9/11-style
/// grid would emit, rendered to CSV bytes.
fn figure_csv(scenarios: &[Scenario], results: &[TrialResult]) -> String {
    let mut table = bbrdom_experiments::output::Table::new("store-vs-sim", &["mbps", "goodput"]);
    for (s, r) in scenarios.iter().zip(results) {
        let total: f64 = r.throughput_mbps.iter().sum();
        table.push_row(vec![format!("{}", s.mbps), format!("{total:.6}")]);
    }
    table.to_csv()
}

/// The pinned byte-identity contract: a warm store answers the whole
/// batch with zero simulations and zero full-report parses, and the
/// figure output it produces is byte-identical to the simulated path
/// AND the disk-parse path.
#[test]
fn warm_store_serves_batches_with_zero_sims_and_zero_parses() {
    let dir = temp_dir("identity");
    let cache = dir.join("cache");
    let scenarios = batch(6);

    // Cold: simulate everything, populating cache + index.
    let cold = engine(&cache, true, true);
    let simulated = cold.run_all(&scenarios);
    assert_eq!(cold.stats().simulated, 6);
    assert!(cache.join(INDEX_FILE).exists(), "index populated on write");

    // Warm store (no memory memo): every cell is a store hit.
    let store_engine = engine(&cache, false, true);
    let from_store = store_engine.run_all(&scenarios);
    let s = store_engine.stats();
    assert_eq!(s.simulated, 0, "warm store must simulate nothing");
    assert_eq!(s.disk_hits, 0, "warm store must parse no full reports");
    assert_eq!(s.store_hits, 6);

    // Warm disk cache with the store disabled: the old parse path.
    let parse_engine = engine(&cache, false, false);
    let from_parse = parse_engine.run_all(&scenarios);
    assert_eq!(parse_engine.stats().disk_hits, 6);
    assert_eq!(parse_engine.stats().store_hits, 0);

    assert_eq!(
        fingerprints(&simulated),
        fingerprints(&from_store),
        "store-served results must be bit-identical to fresh simulation"
    );
    assert_eq!(fingerprints(&from_store), fingerprints(&from_parse));
    assert_eq!(
        figure_csv(&scenarios, &simulated),
        figure_csv(&scenarios, &from_store),
        "store-served figure output must be byte-identical to the sim path"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A torn index tail (crash mid-append) is skipped on load and
/// truncated by the next append, exactly like the sweep journal.
#[test]
fn index_torn_tail_recovers_on_reopen() {
    let dir = temp_dir("torn");
    let cache = dir.join("cache");
    let scenarios = batch(4);
    engine(&cache, true, true).run_all(&scenarios);

    // Simulate a crash mid-append: garbage line, then a torn fragment
    // with no trailing newline.
    let index = cache.join(INDEX_FILE);
    let intact = std::fs::read_to_string(&index).expect("index exists");
    assert_eq!(intact.lines().count(), 4);
    let mut torn = intact.clone();
    torn.push_str("not json at all\n");
    torn.push_str("{\"v\":1,\"key\":\"torn-fragm");
    std::fs::write(&index, &torn).unwrap();

    // Load: the 4 good entries survive, the junk reads as misses.
    let store = Store::open(&cache);
    assert_eq!(store.len(), 4);
    for s in &scenarios {
        assert!(store.lookup(scenario_hash(s), None).is_some());
    }

    // Next write-mode open repairs the tail before appending: run one
    // new scenario through a store-backed engine and verify the file
    // ends up fully well-formed again.
    let mut extended = scenarios.clone();
    extended.push(Scenario::versus(
        40.0,
        20.0,
        1.0,
        1,
        CcaKind::Bbr,
        1,
        0.4,
        7_777,
    ));
    let e = engine(&cache, false, true);
    e.run_all(&extended);
    assert_eq!(e.stats().store_hits, 4);
    assert_eq!(e.stats().simulated, 1);
    let repaired = std::fs::read_to_string(&index).unwrap();
    assert_eq!(
        Store::open(&cache).len(),
        5,
        "all five entries load after repair"
    );
    assert!(
        !repaired.contains("torn-fragm"),
        "append-mode open must truncate the torn fragment"
    );
    // The garbage *complete* line is preserved as an ignored line (the
    // repair only owns the tail), but every reader treats it as a miss.
    let _ = std::fs::remove_dir_all(&dir);
}

/// Single-writer discipline across process boundaries: a supervised
/// sweep's index (written only by the parent, from worker-reported
/// results) is byte-identical to the serial run's.
#[test]
fn supervised_index_is_byte_identical_to_serial() {
    let dir = temp_dir("supervised");
    let scenarios = batch(6);

    let serial_cache = dir.join("serial-cache");
    engine(&serial_cache, true, true)
        .run_sweep(&scenarios, &SweepConfig::default())
        .expect("serial sweep runs");

    let sup_cache = dir.join("sup-cache");
    let mut sup = SupervisorConfig::new(2, dir.join("state"));
    sup.worker_exe = PathBuf::from(env!("CARGO_BIN_EXE_repro"));
    sup.backoff_base = Duration::from_millis(50);
    let supervised = Engine::new(EngineConfig {
        jobs: 2,
        disk_cache: Some(sup_cache.clone()),
        memory_cache: true,
        supervise: Some(sup),
        result_store: true,
    });
    supervised
        .run_sweep(&scenarios, &SweepConfig::default())
        .expect("supervised sweep runs");

    let serial_index = std::fs::read(serial_cache.join(INDEX_FILE)).expect("serial index");
    let sup_index = std::fs::read(sup_cache.join(INDEX_FILE)).expect("supervised index");
    assert_eq!(
        String::from_utf8_lossy(&serial_index),
        String::from_utf8_lossy(&sup_index),
        "supervised index must be byte-identical to the serial one"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Opening a store sweeps tmp files orphaned by SIGKILLed writers —
/// and only those: live writers' tmps and published entries survive.
#[test]
fn store_open_sweeps_orphan_tmps_without_touching_entries() {
    let dir = temp_dir("orphans");
    let cache = dir.join("cache");
    let scenarios = batch(2);
    engine(&cache, true, true).run_all(&scenarios);

    let entry_name = format!("{:032x}.json", scenario_hash(&scenarios[0]));
    assert!(cache.join(&entry_name).exists());

    // An orphan from a provably dead writer (spawn-and-reap `true`).
    let dead_pid = {
        let mut child = std::process::Command::new("true").spawn().expect("spawn");
        let pid = child.id();
        child.wait().expect("reap");
        pid
    };
    let orphan = cache.join(format!(".{:032x}.tmp.{dead_pid}.0", 3u128));
    std::fs::write(&orphan, "half-written entry").unwrap();
    // A live writer's tmp (this process).
    let live = cache.join(format!(".{:032x}.tmp.{}.0", 4u128, std::process::id()));
    std::fs::write(&live, "in flight").unwrap();

    let store = Store::open(&cache);
    if cfg!(target_os = "linux") {
        assert!(!orphan.exists(), "dead writer's tmp must be swept");
        assert_eq!(store.orphans_swept(), 1);
    }
    assert!(live.exists(), "live writer's tmp must survive");
    assert!(cache.join(&entry_name).exists(), "entries must survive");
    assert_eq!(store.len(), 2, "index must survive the sweep");
    let _ = std::fs::remove_dir_all(&dir);
}

/// `repro index rebuild`'s scanner: backfills the index from cache
/// entries alone, skipping corrupt or key-mismatched files as misses,
/// and the rebuilt index serves batches with zero parses.
#[test]
fn rebuild_backfills_from_cache_and_tolerates_corruption() {
    let dir = temp_dir("rebuild");
    let cache = dir.join("cache");
    let scenarios = batch(5);
    // Populate the cache with the store disabled: entries exist (with
    // embedded scenarios), but no index — the pre-store state.
    let cold = engine(&cache, true, false);
    let simulated = cold.run_all(&scenarios);
    assert!(!cache.join(INDEX_FILE).exists());

    // Sabotage: a garbled entry and a valid entry copied under the
    // wrong key (hash self-check must reject it).
    std::fs::write(cache.join(format!("{:032x}.json", 1u128)), "{garbled").unwrap();
    let donor = cache.join(format!("{:032x}.json", scenario_hash(&scenarios[0])));
    std::fs::copy(&donor, cache.join(format!("{:032x}.json", 2u128))).unwrap();

    let (store, stats) = Store::rebuild(&cache).expect("rebuild scans");
    assert_eq!(stats.scanned, 7);
    assert_eq!(stats.indexed, 5);
    assert_eq!(stats.corrupt, 2);
    assert_eq!(stats.no_scenario, 0);
    assert_eq!(store.len(), 5);

    // The rebuilt index serves the whole batch without re-parsing.
    let warm = engine(&cache, false, true);
    let from_store = warm.run_all(&scenarios);
    assert_eq!(warm.stats().store_hits, 5);
    assert_eq!(warm.stats().simulated, 0);
    assert_eq!(warm.stats().disk_hits, 0);
    assert_eq!(fingerprints(&simulated), fingerprints(&from_store));

    // Rebuild is idempotent: a second scan produces the same bytes.
    let first = std::fs::read(cache.join(INDEX_FILE)).unwrap();
    Store::rebuild(&cache).expect("rebuild again");
    let second = std::fs::read(cache.join(INDEX_FILE)).unwrap();
    assert_eq!(first, second);
    let _ = std::fs::remove_dir_all(&dir);
}
