//! End-to-end tests for the crash-safe sweep supervisor.
//!
//! The contract under test: a supervised sweep (`--supervise N`) is
//! bit-identical to a serial one — same outcome vector, byte-identical
//! journal — on every cell whose worker survives; a scenario that kills
//! its worker repeatedly is quarantined as a structured failure while
//! the rest of the batch completes; and killed or stalled workers are
//! replaced without losing or duplicating results.
//!
//! Sabotage is injected through the `BBRDOM_TEST_POISON_*` hooks,
//! delivered per-engine via `SupervisorConfig::worker_env` so parallel
//! tests never race on this process's environment.

use bbrdom_cca::CcaKind;
use bbrdom_experiments::engine::{scenario_hash_hex, Engine, EngineConfig};
use bbrdom_experiments::runner::{SweepConfig, TrialOutcome};
use bbrdom_experiments::{Scenario, SupervisorConfig};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// A fresh scratch dir per test (and per process, so `cargo test`
/// reruns never collide with a previous run's leftovers).
fn temp_dir(name: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("bbrdom-supervise-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    std::fs::create_dir_all(&p).expect("create scratch dir");
    p
}

/// Short but non-trivial scenarios: fractions of a simulated second,
/// varied enough that every index has a distinct cache key.
fn batch(n: usize) -> Vec<Scenario> {
    (0..n)
        .map(|i| {
            Scenario::versus(
                10.0 + (i % 3) as f64 * 5.0,
                20.0,
                1.0,
                1,
                CcaKind::Bbr,
                1,
                0.4,
                9_000 + i as u64,
            )
        })
        .collect()
}

/// The supervised engine under test: `workers` subprocesses re-execing
/// this suite's `repro` binary, sharing `dir/cache`, with fast-failure
/// tuning so sabotage tests finish in seconds.
fn supervised_engine(dir: &Path, workers: usize, env: Vec<(String, String)>) -> Engine {
    let mut sup = SupervisorConfig::new(workers, dir.join("state"));
    sup.worker_exe = PathBuf::from(env!("CARGO_BIN_EXE_repro"));
    sup.backoff_base = Duration::from_millis(50);
    sup.worker_env = env;
    Engine::new(EngineConfig {
        jobs: 2,
        disk_cache: Some(dir.join("cache")),
        memory_cache: true,
        supervise: Some(sup),
        result_store: false,
    })
}

/// A serial reference engine over the same (separate) disk cache layout.
fn serial_engine(dir: &Path) -> Engine {
    Engine::new(EngineConfig {
        jobs: 1,
        disk_cache: Some(dir.join("serial-cache")),
        memory_cache: true,
        supervise: None,
        result_store: false,
    })
}

/// Canonical comparable form of an outcome vector.
fn fingerprints(outcomes: &[TrialOutcome]) -> Vec<String> {
    outcomes
        .iter()
        .map(|o| match o {
            TrialOutcome::Ok(r) => r.to_json_value().to_json(),
            TrialOutcome::Failed(f) => format!("FAILED[{}]: {}", f.index, f.error),
        })
        .collect()
}

fn journal_sweep(journal: PathBuf) -> SweepConfig {
    SweepConfig {
        journal: Some(journal),
        ..SweepConfig::default()
    }
}

/// Healthy workers: the supervised sweep reproduces the serial sweep
/// bit-for-bit — same outcomes, byte-identical journal.
#[test]
fn supervised_sweep_is_bit_identical_to_serial() {
    let dir = temp_dir("identical");
    let scenarios = batch(8);

    let serial_journal = dir.join("serial.jsonl");
    let serial = serial_engine(&dir)
        .run_sweep(&scenarios, &journal_sweep(serial_journal.clone()))
        .expect("serial sweep runs");

    let sup_journal = dir.join("supervised.jsonl");
    let supervised = supervised_engine(&dir, 2, Vec::new())
        .run_sweep(&scenarios, &journal_sweep(sup_journal.clone()))
        .expect("supervised sweep runs");

    assert_eq!(fingerprints(&serial), fingerprints(&supervised));
    let serial_bytes = std::fs::read(&serial_journal).expect("serial journal exists");
    let sup_bytes = std::fs::read(&sup_journal).expect("supervised journal exists");
    assert_eq!(
        serial_bytes, sup_bytes,
        "supervised journal must be byte-identical to the serial one"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A scenario that aborts its worker on every claim is quarantined
/// after `max_strikes` deaths; every other cell still matches the
/// serial run, and a journal resume keeps the quarantine verdict
/// without re-running anything.
#[test]
fn poisoned_scenario_is_quarantined_and_the_rest_match_serial() {
    let dir = temp_dir("quarantine");
    let scenarios = batch(6);
    let poisoned = 2usize;
    let key = scenario_hash_hex(&scenarios[poisoned]);

    let serial = serial_engine(&dir)
        .run_sweep(&scenarios, &SweepConfig::default())
        .expect("serial sweep runs");

    let journal = dir.join("sweep.jsonl");
    let env = vec![("BBRDOM_TEST_POISON_HASH".to_string(), key)];
    let outcomes = supervised_engine(&dir, 2, env.clone())
        .run_sweep(&scenarios, &journal_sweep(journal.clone()))
        .expect("supervised sweep survives the poison");

    let serial_fp = fingerprints(&serial);
    let fp = fingerprints(&outcomes);
    for i in 0..scenarios.len() {
        if i == poisoned {
            let f = outcomes[i].failure().expect("poisoned cell must fail");
            assert_eq!(f.index, poisoned);
            assert!(
                f.error.contains("quarantined"),
                "expected a quarantine verdict, got: {}",
                f.error
            );
        } else {
            assert_eq!(fp[i], serial_fp[i], "healthy cell {i} must match serial");
        }
    }

    // Resume from the journal: the quarantine is a recorded failure with
    // matching (absent) budgets, so nothing re-runs — not even the
    // poisoned cell.
    let resumed_engine = supervised_engine(&dir, 2, env);
    let resumed = resumed_engine
        .run_sweep(&scenarios, &journal_sweep(journal))
        .expect("resume runs");
    assert_eq!(fingerprints(&resumed), fp, "resume must replay the journal");
    assert_eq!(
        resumed_engine.stats().simulated,
        0,
        "a full journal leaves nothing to simulate"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A worker SIGKILLed mid-sweep forfeits its leases; the survivors (or
/// a replacement) absorb them and the final outcomes match serial.
#[test]
fn sigkilled_worker_is_replaced_and_results_match_serial() {
    let dir = temp_dir("sigkill");
    let scenarios = batch(10);

    let serial = serial_engine(&dir)
        .run_sweep(&scenarios, &SweepConfig::default())
        .expect("serial sweep runs");

    // Hunt for worker pid files while the sweep runs and SIGKILL the
    // first worker we see. The pid files live under
    // `<state>/work-<parent-pid>-<batch-tag>/worker-<id>.pid`.
    let state = dir.join("state");
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let killer = {
        let state = state.clone();
        let stop = std::sync::Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let pid = std::fs::read_dir(&state)
                    .ok()
                    .into_iter()
                    .flatten()
                    .flatten()
                    .filter(|e| e.path().is_dir())
                    .filter_map(|e| std::fs::read_dir(e.path()).ok())
                    .flatten()
                    .flatten()
                    .find(|e| {
                        e.file_name().to_string_lossy().starts_with("worker-")
                            && e.path().extension().is_some_and(|x| x == "pid")
                    })
                    .and_then(|e| std::fs::read_to_string(e.path()).ok());
                if let Some(pid) = pid {
                    let _ = std::process::Command::new("kill")
                        .args(["-9", pid.trim()])
                        .status();
                    return;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        })
    };

    let outcomes = supervised_engine(&dir, 2, Vec::new())
        .run_sweep(&scenarios, &SweepConfig::default())
        .expect("supervised sweep survives a SIGKILL");
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    killer.join().expect("killer thread");

    // One SIGKILL is one strike — below the quarantine threshold — so
    // every cell must still complete and match the serial reference.
    assert_eq!(fingerprints(&serial), fingerprints(&outcomes));
    let _ = std::fs::remove_dir_all(&dir);
}

/// A scenario that kills its worker exactly once (flaky, not poisonous)
/// is retried on a fresh worker and ends up indistinguishable from a
/// clean serial run.
#[test]
fn single_crash_is_retried_to_success() {
    let dir = temp_dir("poison-once");
    let scenarios = batch(5);
    let flaky = 1usize;
    let key = scenario_hash_hex(&scenarios[flaky]);

    let serial = serial_engine(&dir)
        .run_sweep(&scenarios, &SweepConfig::default())
        .expect("serial sweep runs");

    let marker = dir.join("poisoned-once.marker");
    let env = vec![
        ("BBRDOM_TEST_POISON_HASH".to_string(), key),
        (
            "BBRDOM_TEST_POISON_ONCE".to_string(),
            marker.display().to_string(),
        ),
    ];
    let outcomes = supervised_engine(&dir, 2, env)
        .run_sweep(&scenarios, &SweepConfig::default())
        .expect("supervised sweep survives one crash");

    assert!(marker.exists(), "the sabotage hook must have fired");
    assert_eq!(
        fingerprints(&serial),
        fingerprints(&outcomes),
        "a single crash must be absorbed by retry, not surfaced"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A livelocked worker stops heartbeating, trips the watchdog, is
/// killed, and its scenario is retried to success elsewhere.
#[test]
fn stalled_worker_trips_the_watchdog_and_work_is_retried() {
    let dir = temp_dir("stall");
    let scenarios = batch(4);
    let stuck = 0usize;
    let key = scenario_hash_hex(&scenarios[stuck]);

    let serial = serial_engine(&dir)
        .run_sweep(&scenarios, &SweepConfig::default())
        .expect("serial sweep runs");

    let marker = dir.join("stalled-once.marker");
    let env = vec![
        ("BBRDOM_TEST_POISON_HASH".to_string(), key),
        ("BBRDOM_TEST_POISON_MODE".to_string(), "stall".to_string()),
        (
            "BBRDOM_TEST_POISON_ONCE".to_string(),
            marker.display().to_string(),
        ),
    ];
    // One single-threaded worker and a sub-second watchdog: the stalled
    // trial is the only thing in flight, so the heartbeat goes quiet at
    // watchdog/2 and the kill lands about a watchdog later.
    let mut sup = SupervisorConfig::new(1, dir.join("state"));
    sup.worker_exe = PathBuf::from(env!("CARGO_BIN_EXE_repro"));
    sup.watchdog = Duration::from_millis(800);
    sup.backoff_base = Duration::from_millis(50);
    sup.worker_env = env;
    let engine = Engine::new(EngineConfig {
        jobs: 1,
        disk_cache: Some(dir.join("cache")),
        memory_cache: true,
        supervise: Some(sup),
        result_store: false,
    });
    let started = std::time::Instant::now();
    let outcomes = engine
        .run_sweep(&scenarios, &SweepConfig::default())
        .expect("supervised sweep survives a stall");

    assert!(marker.exists(), "the stall hook must have fired");
    assert!(
        started.elapsed() > Duration::from_millis(800),
        "completion implies the watchdog actually waited out the stall"
    );
    assert_eq!(
        fingerprints(&serial),
        fingerprints(&outcomes),
        "a stalled-then-retried sweep must match serial"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
