//! The determinism test layer for the parallel scenario engine.
//!
//! The engine's contract is that parallelism and caching are *invisible*:
//! `--jobs 1` and `--jobs 8` produce byte-identical journals and
//! bit-identical result vectors, every scenario field is part of the
//! cache key, and a damaged cache entry degrades to re-simulation, never
//! to a wrong or missing result. These tests pin each clause.

use bbrdom_cca::CcaKind;
use bbrdom_experiments::engine::{scenario_hash, Engine, EngineConfig};
use bbrdom_experiments::runner::SweepConfig;
use bbrdom_experiments::{
    EarlyStopSpec, FaultSpec, FlowSpec, Scenario, TopoLinkSpec, TopologySpec,
};
use proptest::prelude::*;
use std::path::PathBuf;

/// A hermetic engine: no memo, no disk — every run truly simulates.
fn uncached() -> Engine {
    Engine::new(EngineConfig {
        jobs: 1,
        disk_cache: None,
        memory_cache: false,
        supervise: None,
        result_store: false,
    })
}

fn temp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("bbrdom-engine-{name}-{}", std::process::id()));
    p
}

fn temp_dir(name: &str) -> PathBuf {
    let p = temp_path(name);
    let _ = std::fs::remove_dir_all(&p);
    p
}

/// Short scenarios (fractions of a simulated second) so the property
/// test stays fast while still exercising multi-flow contention.
fn short_scenario(mbps: f64, buffer_bdp: f64, n_cubic: u32, n_bbr: u32, seed: u64) -> Scenario {
    Scenario::versus(
        mbps,
        20.0,
        buffer_bdp,
        n_cubic,
        CcaKind::Bbr,
        n_bbr,
        0.5,
        seed,
    )
}

/// Decode one random draw into a scenario: `shape` packs the discrete
/// choices (link rate, buffer depth, flow mix), `lossy` flips seeded
/// wire loss on — the fault RNG stream must also be independent of
/// worker scheduling.
fn decode_scenario(shape: u32, seed: u64, lossy: f64) -> Scenario {
    let mbps = if shape & 1 == 0 { 10.0 } else { 20.0 };
    let buf = if shape & 2 == 0 { 0.5 } else { 2.0 };
    let n_cubic = 1 + ((shape >> 2) & 1);
    let n_bbr = (shape >> 3) & 1;
    let s = short_scenario(mbps, buf, n_cubic, n_bbr, seed);
    if lossy < 0.5 {
        s
    } else {
        s.with_faults(FaultSpec {
            loss_fwd: 0.02,
            ..FaultSpec::default()
        })
    }
}

proptest! {
    // Simulations are costly; a handful of random batches is plenty to
    // catch a scheduling-dependent result or journal interleaving.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// `--jobs 1` and `--jobs 8` must produce bit-identical result
    /// vectors and byte-identical JSONL journals, faults included.
    #[test]
    fn parallelism_is_invisible(
        draws in prop::collection::vec((0u32..16, 0u64..u64::MAX, 0.0f64..1.0), 2..5),
        case in 0u32..1_000_000,
    ) {
        let scenarios: Vec<Scenario> = draws
            .iter()
            .map(|&(shape, seed, lossy)| decode_scenario(shape, seed, lossy))
            .collect();
        let serial_journal = temp_path(&format!("det-serial-{case}"));
        let parallel_journal = temp_path(&format!("det-parallel-{case}"));
        let _ = std::fs::remove_file(&serial_journal);
        let _ = std::fs::remove_file(&parallel_journal);

        let serial = uncached()
            .run_sweep(&scenarios, &SweepConfig {
                jobs: Some(1),
                journal: Some(serial_journal.clone()),
                ..SweepConfig::default()
            })
            .expect("serial sweep runs");
        let parallel = uncached()
            .run_sweep(&scenarios, &SweepConfig {
                jobs: Some(8),
                journal: Some(parallel_journal.clone()),
                ..SweepConfig::default()
            })
            .expect("parallel sweep runs");

        // Byte-identical journals: same lines, same order, same floats.
        let serial_bytes = std::fs::read(&serial_journal).unwrap();
        let parallel_bytes = std::fs::read(&parallel_journal).unwrap();
        prop_assert_eq!(serial_bytes, parallel_bytes);

        // Bit-identical result vectors (JSON text pins every float bit
        // thanks to shortest-round-trip formatting).
        prop_assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            prop_assert_eq!(
                s.ok().unwrap().to_json_value().to_json(),
                p.ok().unwrap().to_json_value().to_json()
            );
        }
        let _ = std::fs::remove_file(&serial_journal);
        let _ = std::fs::remove_file(&parallel_journal);
    }
}

/// A scenario with every field set to something non-default, so each
/// single-field mutation below is visible if (and only if) the field is
/// hashed.
fn rich_scenario() -> Scenario {
    let mut s = Scenario::versus(25.0, 30.0, 1.5, 2, CcaKind::Bbr, 1, 4.0, 42);
    s.flows[0].start_s = 0.25;
    s.flows[1].byte_limit = Some(500_000);
    s.faults = FaultSpec {
        loss_fwd: 0.01,
        loss_ack: 0.005,
        outages: vec![(1.0, 0.2)],
        rate_steps: vec![(2.0, 10.0)],
        delay_spikes: vec![(3.0, 0.5, 40.0)],
    };
    s.early_stop = Some(EarlyStopSpec::new(0.05, 3));
    s.workload = Some(bbrdom_experiments::WorkloadSpec::web(
        CcaKind::Cubic,
        50.0,
        25.0,
    ));
    // Every TopologySpec field non-default too (the hash must cover it
    // even though validate() would reject this topology+early-stop mix —
    // the cache key is a pure content hash).
    let mut topo = TopologySpec::parking_lot(2, 25.0, 2.0, 1.5);
    topo.flow_routes = vec![0, 0, 1];
    topo.fault_link = Some(1);
    s.topology = Some(topo);
    s
}

/// Cache-key completeness: mutating any public field of `Scenario` —
/// including per-flow and per-fault entries — must change the hash.
/// A field this test misses is a field the cache would silently alias.
type Mutation = (&'static str, Box<dyn Fn(&mut Scenario)>);

#[test]
fn every_scenario_field_changes_the_hash() {
    let base = scenario_hash(&rich_scenario());
    let mutations: Vec<Mutation> = vec![
        ("mbps", Box::new(|s| s.mbps = 26.0)),
        ("buffer_bdp", Box::new(|s| s.buffer_bdp = 2.5)),
        ("reference_rtt_ms", Box::new(|s| s.reference_rtt_ms = 35.0)),
        ("duration_secs", Box::new(|s| s.duration_secs = 5.0)),
        ("seed", Box::new(|s| s.seed = 43)),
        (
            "discipline",
            Box::new(|s| s.discipline = bbrdom_experiments::DisciplineSpec::Red),
        ),
        (
            "flows: added",
            Box::new(|s| s.flows.push(FlowSpec::long(CcaKind::Cubic, 30.0))),
        ),
        ("flows: removed", Box::new(|s| s.flows.truncate(2))),
        (
            "flow cca",
            Box::new(|s| s.flows[0].cca = CcaKind::NewReno.into()),
        ),
        ("flow rtt_ms", Box::new(|s| s.flows[0].rtt_ms = 31.0)),
        ("flow start_s", Box::new(|s| s.flows[0].start_s = 0.5)),
        (
            "flow byte_limit value",
            Box::new(|s| s.flows[1].byte_limit = Some(600_000)),
        ),
        (
            "flow byte_limit presence",
            Box::new(|s| s.flows[1].byte_limit = None),
        ),
        ("fault loss_fwd", Box::new(|s| s.faults.loss_fwd = 0.02)),
        ("fault loss_ack", Box::new(|s| s.faults.loss_ack = 0.01)),
        (
            "fault outage time",
            Box::new(|s| s.faults.outages[0].0 = 1.5),
        ),
        (
            "fault outage length",
            Box::new(|s| s.faults.outages[0].1 = 0.3),
        ),
        (
            "fault outage added",
            Box::new(|s| s.faults.outages.push((3.5, 0.1))),
        ),
        (
            "fault rate step",
            Box::new(|s| s.faults.rate_steps[0].1 = 12.0),
        ),
        (
            "fault delay spike",
            Box::new(|s| s.faults.delay_spikes[0].2 = 50.0),
        ),
        ("early_stop presence", Box::new(|s| s.early_stop = None)),
        (
            "early_stop epsilon",
            Box::new(|s| s.early_stop.as_mut().unwrap().epsilon = 0.1),
        ),
        (
            "early_stop dwell",
            Box::new(|s| s.early_stop.as_mut().unwrap().dwell = 5),
        ),
        (
            "early_stop window_secs",
            Box::new(|s| s.early_stop.as_mut().unwrap().window_secs = 0.5),
        ),
        (
            "early_stop min_secs",
            Box::new(|s| s.early_stop.as_mut().unwrap().min_secs = 6.0),
        ),
        (
            "backend",
            Box::new(|s| s.backend = bbrdom_experiments::BackendSpec::Fluid),
        ),
        ("workload presence", Box::new(|s| s.workload = None)),
        (
            "workload cca",
            Box::new(|s| s.workload.as_mut().unwrap().cca = CcaKind::Bbr.into()),
        ),
        (
            "workload arrival rate",
            Box::new(|s| {
                s.workload.as_mut().unwrap().arrival =
                    bbrdom_experiments::ArrivalSpec::Poisson { rate_per_sec: 60.0 }
            }),
        ),
        (
            "workload arrival variant",
            Box::new(|s| {
                s.workload.as_mut().unwrap().arrival =
                    bbrdom_experiments::ArrivalSpec::Deterministic { interval_s: 0.02 }
            }),
        ),
        (
            "workload size variant",
            Box::new(|s| {
                s.workload.as_mut().unwrap().size =
                    bbrdom_experiments::SizeSpec::Fixed { bytes: 30_000 }
            }),
        ),
        (
            "workload pareto alpha",
            Box::new(|s| {
                s.workload.as_mut().unwrap().size = bbrdom_experiments::SizeSpec::Pareto {
                    alpha: 1.5,
                    min_bytes: 10_000,
                    max_bytes: 1_000_000,
                }
            }),
        ),
        (
            "workload rtt_ms",
            Box::new(|s| s.workload.as_mut().unwrap().rtt_ms = 30.0),
        ),
        ("topology presence", Box::new(|s| s.topology = None)),
        (
            "topology node renamed",
            Box::new(|s| s.topology.as_mut().unwrap().nodes[0] = "renamed".into()),
        ),
        (
            "topology node added",
            Box::new(|s| s.topology.as_mut().unwrap().nodes.push("extra".into())),
        ),
        (
            "topology link added",
            Box::new(|s| {
                let l = TopoLinkSpec::wire("n2", "n0", 1.0);
                s.topology.as_mut().unwrap().links.push(l)
            }),
        ),
        (
            "topology link endpoint",
            Box::new(|s| s.topology.as_mut().unwrap().links[0].to = "n2".into()),
        ),
        (
            "topology link mbps value",
            Box::new(|s| s.topology.as_mut().unwrap().links[0].mbps = Some(30.0)),
        ),
        (
            "topology link mbps presence",
            Box::new(|s| s.topology.as_mut().unwrap().links[0].mbps = None),
        ),
        (
            "topology link delay_ms",
            Box::new(|s| s.topology.as_mut().unwrap().links[0].delay_ms = 5.0),
        ),
        (
            "topology link buffer_bdp",
            Box::new(|s| s.topology.as_mut().unwrap().links[0].buffer_bdp = 3.0),
        ),
        (
            "topology route entry",
            Box::new(|s| s.topology.as_mut().unwrap().routes[0] = vec![1]),
        ),
        (
            "topology route added",
            Box::new(|s| s.topology.as_mut().unwrap().routes.push(vec![0])),
        ),
        (
            "topology flow_routes entry",
            Box::new(|s| s.topology.as_mut().unwrap().flow_routes[2] = 2),
        ),
        (
            "topology flow_routes presence",
            Box::new(|s| s.topology.as_mut().unwrap().flow_routes.clear()),
        ),
        (
            "topology workload_route",
            Box::new(|s| s.topology.as_mut().unwrap().workload_route = None),
        ),
        (
            "topology fault_link",
            Box::new(|s| s.topology.as_mut().unwrap().fault_link = Some(0)),
        ),
    ];
    for (field, mutate) in mutations {
        let mut s = rich_scenario();
        mutate(&mut s);
        assert_ne!(
            scenario_hash(&s),
            base,
            "mutating {field} must change the scenario hash"
        );
    }
    // Sanity: the hash is a pure function of the scenario.
    assert_eq!(scenario_hash(&rich_scenario()), base);
}

/// Cache-key compatibility: a topology-free scenario must keep the hash
/// it had before the `topology` field existed (the `b"topology"` marker
/// is only appended when the field is set), so every historical disk
/// cache entry and journal key stays valid. The digest below was
/// computed with the pre-topology hasher; it must never change.
#[test]
fn topology_free_scenarios_keep_their_historical_hash() {
    let s = Scenario::versus(50.0, 40.0, 4.0, 2, CcaKind::Bbr, 2, 10.0, 7);
    assert_eq!(
        format!("{:032x}", scenario_hash(&s)),
        "d9deb813fa01bbf6cae133a7b45722e8",
        "topology-free cache keys must stay stable across releases"
    );
    // And spelling the same physics as an explicit topology is a
    // *different* cache entry, never an alias.
    assert_ne!(
        scenario_hash(&s.clone().with_equivalent_topology()),
        scenario_hash(&s)
    );
}

/// Flow-order matters for results (flow ids, jitter draws), so it must
/// matter for the hash too.
#[test]
fn flow_order_changes_the_hash() {
    let mut swapped = rich_scenario();
    swapped.flows.swap(0, 2);
    assert_ne!(scenario_hash(&swapped), scenario_hash(&rich_scenario()));
}

/// Backend domain separation end-to-end: the same scenario run on both
/// backends occupies two distinct disk-cache entries, each warm rerun
/// hits its own entry, and neither is ever served the other's numbers.
#[test]
fn fluid_and_des_results_never_alias_in_the_cache() {
    let dir = temp_dir("backend-domains");
    let des = short_scenario(10.0, 1.0, 1, 1, 33);
    let fluid = des
        .clone()
        .with_backend(bbrdom_experiments::BackendSpec::Fluid);
    assert_ne!(scenario_hash(&des), scenario_hash(&fluid));

    let warm = engine_with_disk(&dir);
    let first = warm.run_all(&[des.clone(), fluid.clone()]);
    assert_eq!(warm.stats().simulated, 2, "distinct hashes, two real runs");
    assert_ne!(
        first[0].to_json_value().to_json(),
        first[1].to_json_value().to_json(),
        "the two backends must not report identical results"
    );
    for s in [&des, &fluid] {
        assert!(
            dir.join(format!("{:032x}.json", scenario_hash(s))).exists(),
            "each backend gets its own cache entry"
        );
    }

    let cold = engine_with_disk(&dir);
    let again = cold.run_all(&[des, fluid]);
    assert_eq!(cold.stats().disk_hits, 2, "both entries must hit warm");
    assert_eq!(cold.stats().simulated, 0);
    for (a, b) in first.iter().zip(&again) {
        assert_eq!(
            a.to_json_value().to_json(),
            b.to_json_value().to_json(),
            "cached reports reproduce live runs bit-for-bit"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

fn engine_with_disk(dir: &std::path::Path) -> Engine {
    Engine::new(EngineConfig {
        jobs: 1,
        disk_cache: Some(dir.to_path_buf()),
        memory_cache: false,
        supervise: None,
        result_store: false,
    })
}

/// A corrupted, truncated, or wrong-format disk cache entry is a miss —
/// the engine re-simulates and still returns the right answer.
#[test]
fn corrupted_cache_entry_falls_back_to_simulation() {
    let dir = temp_dir("corrupt-cache");
    let scenario = short_scenario(10.0, 1.0, 1, 1, 9);
    let fresh = uncached().run_all(std::slice::from_ref(&scenario));

    // Seed the cache, then verify it actually hits.
    let writer = engine_with_disk(&dir);
    writer.run_all(std::slice::from_ref(&scenario));
    assert_eq!(writer.stats().simulated, 1);
    let reader = engine_with_disk(&dir);
    reader.run_all(std::slice::from_ref(&scenario));
    assert_eq!(reader.stats().disk_hits, 1, "want a warm disk hit");

    let entry = dir.join(format!("{:032x}.json", scenario_hash(&scenario)));
    for garbage in ["", "{", "not json", "{\"version\":999}", "[1,2,3]"] {
        std::fs::write(&entry, garbage).unwrap();
        let engine = engine_with_disk(&dir);
        let results = engine.run_all(std::slice::from_ref(&scenario));
        assert_eq!(engine.stats().disk_hits, 0, "corrupt entry must miss");
        assert_eq!(engine.stats().simulated, 1);
        assert_eq!(
            results[0].to_json_value().to_json(),
            fresh[0].to_json_value().to_json(),
            "fallback result must be bit-identical to a fresh run"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A cached success recorded without budgets must not flip a budgeted
/// rerun: the entry is only admitted when its event count fits.
#[test]
fn cache_respects_event_budgets() {
    let dir = temp_dir("budget-cache");
    let scenario = short_scenario(10.0, 1.0, 1, 1, 11);
    let warm = engine_with_disk(&dir);
    warm.run_all(std::slice::from_ref(&scenario));

    let budgeted = engine_with_disk(&dir);
    let outcomes = budgeted
        .run_sweep(
            std::slice::from_ref(&scenario),
            &SweepConfig {
                jobs: Some(1),
                event_budget: Some(100),
                ..SweepConfig::default()
            },
        )
        .expect("budgeted sweep runs");
    assert_eq!(budgeted.stats().disk_hits, 0, "over-budget entry admitted");
    let failure = outcomes[0].failure().expect("tiny budget must still trip");
    assert!(failure.error.contains("event budget"));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Regression (the journal staleness bug this PR fixes): a failure
/// recorded under one budget must be re-run — not resumed — when the
/// budget changes. Before hash+budget keying, raising the budget
/// resurrected the stale failure forever.
#[test]
fn journal_failures_rerun_when_budget_changes() {
    let path = temp_path("budget-rekey");
    let _ = std::fs::remove_file(&path);
    let scenario = short_scenario(10.0, 1.0, 1, 0, 5);

    let strangled = uncached()
        .run_sweep(
            std::slice::from_ref(&scenario),
            &SweepConfig {
                jobs: Some(1),
                event_budget: Some(100),
                journal: Some(path.clone()),
                ..SweepConfig::default()
            },
        )
        .expect("strangled sweep runs");
    assert!(strangled[0].failure().is_some(), "tiny budget must trip");

    // Same journal, generous budget: the journaled failure no longer
    // matches (different budget) and the trial re-runs to success.
    let engine = uncached();
    let recovered = engine
        .run_sweep(
            std::slice::from_ref(&scenario),
            &SweepConfig {
                jobs: Some(1),
                event_budget: Some(10_000_000),
                journal: Some(path.clone()),
                ..SweepConfig::default()
            },
        )
        .expect("recovered sweep runs");
    assert!(
        recovered[0].ok().is_some(),
        "raised budget must re-run the journaled failure, got {:?}",
        recovered[0].failure()
    );
    assert_eq!(engine.stats().simulated, 1);

    // And an identical rerun resumes the success without simulating.
    let resumed_engine = uncached();
    let resumed = resumed_engine
        .run_sweep(
            std::slice::from_ref(&scenario),
            &SweepConfig {
                jobs: Some(1),
                event_budget: Some(10_000_000),
                journal: Some(path.clone()),
                ..SweepConfig::default()
            },
        )
        .expect("resumed sweep runs");
    assert!(resumed[0].ok().is_some());
    assert_eq!(resumed_engine.stats().simulated, 0);
    let _ = std::fs::remove_file(&path);
}

/// Fail-soft under parallelism: with `jobs = 4` and an event budget that
/// only the long scenarios exceed, exactly those trials fail, and the
/// journal holds exactly one line per scenario — none lost to a race,
/// none duplicated.
#[test]
fn concurrent_budget_failures_are_exact() {
    let short = |seed| short_scenario(10.0, 1.0, 1, 1, seed);
    let long = |seed| {
        let mut s = short_scenario(10.0, 1.0, 1, 1, seed);
        s.duration_secs = 8.0;
        s
    };
    // Budget: double a short run's cost — plenty for 0.5 s, hopeless
    // for 8 s (event count scales with simulated time).
    let probe = short(0).try_report_with(None, None).unwrap();
    let budget = probe.events_processed * 2;

    let scenarios = vec![short(1), long(2), short(3), long(4), short(5), long(6)];
    let expect_failed = [1usize, 3, 5];

    let path = temp_path("concurrent-budget");
    let _ = std::fs::remove_file(&path);
    let outcomes = uncached()
        .run_sweep(
            &scenarios,
            &SweepConfig {
                jobs: Some(4),
                event_budget: Some(budget),
                journal: Some(path.clone()),
                ..SweepConfig::default()
            },
        )
        .expect("concurrent sweep runs");

    for (i, outcome) in outcomes.iter().enumerate() {
        if expect_failed.contains(&i) {
            let f = outcome
                .failure()
                .unwrap_or_else(|| panic!("scenario {i} should have tripped the event budget"));
            assert_eq!(f.index, i);
            assert!(f.error.contains("event budget"), "index {i}: {}", f.error);
        } else {
            assert!(outcome.ok().is_some(), "scenario {i} should have passed");
        }
    }

    // Exactly one journal line per scenario, indices 0..n in order.
    let text = std::fs::read_to_string(&path).unwrap();
    let indices: Vec<u64> = text
        .lines()
        .map(|l| {
            bbrdom_netsim::json::parse(l)
                .unwrap()
                .get("index")
                .and_then(bbrdom_netsim::json::Value::as_u64)
                .unwrap()
        })
        .collect();
    assert_eq!(indices, (0..scenarios.len() as u64).collect::<Vec<_>>());
    let _ = std::fs::remove_file(&path);
}

/// Intra-batch dedup: a payoff matrix evaluates identical cells; the
/// engine must simulate each distinct scenario once and fan the result
/// out bit-identically.
#[test]
fn identical_scenarios_simulate_once() {
    let s = short_scenario(10.0, 1.0, 1, 1, 21);
    let batch = vec![
        s.clone(),
        s.clone(),
        s.clone(),
        short_scenario(10.0, 1.0, 1, 1, 22),
    ];
    let engine = uncached();
    let results = engine.run_all_jobs(&batch, 4);
    assert_eq!(engine.stats().simulated, 2);
    assert_eq!(engine.stats().deduped, 2);
    assert_eq!(
        results[0].to_json_value().to_json(),
        results[2].to_json_value().to_json()
    );
    assert_ne!(
        results[0].to_json_value().to_json(),
        results[3].to_json_value().to_json()
    );
}
