//! # bbrdom-experiments — the paper's evaluation, reproduced
//!
//! One module per figure of *"Are we heading towards a BBR-dominant
//! Internet?"* (IMC '22), plus the shared machinery:
//!
//! * [`scenario`] — declarative experiment specs → simulator runs;
//! * [`engine`] — the parallel worker-pool engine with a
//!   content-addressed scenario result cache (`--jobs` / `BBRDOM_JOBS`);
//! * [`runner`] — the batch-execution façade over the engine;
//! * [`supervisor`] — crash-safe multi-process sharding
//!   (`repro --supervise N`): worker isolation, heartbeat watchdog,
//!   retry/backoff, and scenario quarantine;
//! * [`store`] — the indexed result store over the cache: content hash
//!   → scenario params + extracted metrics, so warm figure assembly and
//!   `repro query` skip both simulation and full-report parsing;
//! * [`payoff`] — empirical payoff curves over all `n + 1` CUBIC/X splits
//!   and the §4.4 Nash-equilibrium search;
//! * [`adaptive`] — the two-tier adaptive NE search (`--adaptive`):
//!   cheap oracles (the fluid backend, then Eq. (25)) each propose a NE
//!   bracket, DES certifies only inside it, and a dense-grid fallback
//!   runs only after every oracle's band has been tried and logged;
//! * [`fluid_backend`] — lowers a [`Scenario`] onto `bbrdom-fluid`'s
//!   ODE integrator and enforces its validity envelope;
//! * [`sync`] — CUBIC loss-synchronization measurement (used to decide
//!   which model bound a trial should sit near);
//! * [`output`] — CSV/table emission for every figure;
//! * [`figs`] — `fig01` … `fig12`, each regenerating one figure's data.
//!
//! The binary `repro` drives everything:
//!
//! ```text
//! repro 3 [--full] [--out results/]
//! repro all ext --quick
//! repro 9 --ne-flows 10 --duration 20      # per-knob overrides
//! ```
//!
//! **Quick vs. full**: the paper runs 2-minute flows and 10 trials per
//! point; `--full` replicates that, while the default "quick" profile
//! shortens flows (30 s) and thins the sweep grids so the entire
//! evaluation reruns in minutes on a laptop. EXPERIMENTS.md records the
//! profile used for the committed numbers.

pub mod adaptive;
pub mod engine;
pub mod ext;
pub mod figs;
pub mod fluid_backend;
pub mod output;
pub mod payoff;
pub mod profile;
pub mod runner;
pub mod scenario;
pub mod store;
pub mod supervisor;
pub mod sync;

pub use adaptive::{find_ne_adaptive, find_ne_adaptive_on, AdaptiveNe, NeOracle};
pub use engine::{scenario_hash, scenario_hash_hex, CacheStats, Engine, EngineConfig};
pub use profile::Profile;
pub use scenario::{
    ArrivalSpec, BackendSpec, DisciplineSpec, EarlyStopSpec, FaultSpec, FlowSpec, Scenario,
    SizeSpec, TopoLinkSpec, TopologySpec, TrialResult, WorkloadSpec,
};
pub use store::{CacheDirStats, RebuildStats, Store, StoreEntry, StoreOutcome};
pub use supervisor::SupervisorConfig;
