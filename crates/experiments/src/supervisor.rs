//! Crash-safe multi-process sweep supervision.
//!
//! The engine's thread pool survives trial *errors* (fail-soft budgets,
//! `catch_unwind`), but not trial *deaths*: a scenario that aborts the
//! process, exhausts memory, or livelocks past every budget takes the
//! whole sweep with it. This module adds a process boundary around the
//! blast radius. The parent partitions a batch across N `repro worker`
//! subprocesses sharing one content-addressed disk cache, leases
//! scenario indices to workers over stdin, and collects claim/result
//! lines over stdout. Liveness is tracked two ways:
//!
//! * **exit** — a worker that dies (non-zero exit, signal) forfeits its
//!   leased scenarios;
//! * **heartbeat** — each worker writes a counter file every few hundred
//!   milliseconds; the write is skipped while every in-flight trial has
//!   exceeded the stall limit, so a livelocked worker goes quiet and the
//!   parent's watchdog kills it.
//!
//! Forfeited scenarios that had been *claimed* (the worker announced it
//! was running them) earn a strike and are retried on surviving workers
//! with exponential backoff; at [`SupervisorConfig::max_strikes`]
//! strikes the scenario is **quarantined** — recorded as a structured
//! [`TrialOutcome::Failed`] so the sweep completes and the caller's
//! fail-soft contract (degraded figure, non-zero exit) takes over.
//! Assigned-but-unclaimed scenarios are requeued without blame.
//!
//! Determinism is preserved by construction: every result is slotted by
//! scenario index in the parent, which remains the journal's single
//! writer, so a supervised sweep is bit-identical to a serial one on
//! every non-quarantined cell (see `tests/supervisor.rs`).
//!
//! Test hooks: `BBRDOM_TEST_POISON_HASH` (comma-separated scenario
//! keys) makes a worker abort — or stall forever with
//! `BBRDOM_TEST_POISON_MODE=stall` — after claiming a matching
//! scenario; `BBRDOM_TEST_POISON_ONCE=<marker-path>` limits the
//! sabotage to the first encounter so retries succeed.

use crate::engine::{
    batch_tag, parse_journal_line, scenario_context, CacheStats, Engine, EngineConfig,
};
use crate::runner::{TrialFailure, TrialOutcome};
use crate::scenario::Scenario;
use bbrdom_netsim::json::{self, Value};
use bbrdom_netsim::ConfigError;
use std::collections::{HashMap, HashSet};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// How a supervised batch is sharded and policed.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Worker subprocesses to shard the batch across.
    pub workers: usize,
    /// Kill a worker whose heartbeat has not advanced for this long
    /// while it holds leased scenarios. Workers stop heartbeating once
    /// every in-flight trial has run longer than `watchdog / 2`, so the
    /// effective livelock detection latency is about `1.5 * watchdog`.
    pub watchdog: Duration,
    /// Worker deaths a single scenario may cause before it is
    /// quarantined as [`TrialOutcome::Failed`].
    pub max_strikes: u32,
    /// First retry delay after a strike; doubles per strike.
    pub backoff_base: Duration,
    /// The binary to spawn as `<worker_exe> worker --dir .. --id ..`
    /// (defaults to the current executable).
    pub worker_exe: PathBuf,
    /// Directory for batch manifests, heartbeat/pid files, and the
    /// auto-journal that makes supervised batches parent-crash safe.
    pub state_dir: PathBuf,
    /// Extra environment for workers (test hooks use this so parallel
    /// tests never race on the parent's own environment).
    pub worker_env: Vec<(String, String)>,
}

impl SupervisorConfig {
    /// Production defaults: 30 s watchdog, 2 strikes, 250 ms backoff,
    /// re-exec the current binary.
    pub fn new(workers: usize, state_dir: impl Into<PathBuf>) -> Self {
        SupervisorConfig {
            workers: workers.max(1),
            watchdog: Duration::from_secs(30),
            max_strikes: 2,
            backoff_base: Duration::from_millis(250),
            worker_exe: std::env::current_exe().unwrap_or_else(|_| PathBuf::from("repro")),
            state_dir: state_dir.into(),
            worker_env: Vec::new(),
        }
    }
}

/// Heartbeat cadence implied by a watchdog interval: frequent enough
/// that several beats fit in one watchdog window, bounded on both ends.
fn heartbeat_interval(watchdog: Duration) -> Duration {
    (watchdog / 8).clamp(Duration::from_millis(25), Duration::from_secs(1))
}

enum WorkerEvent {
    Line(u64, String),
    Eof,
}

struct WorkerSlot {
    id: u64,
    child: Child,
    stdin: Option<ChildStdin>,
    /// Indices sent over stdin and not yet resulted.
    assigned: HashSet<usize>,
    /// Subset of `assigned` the worker has announced it is running.
    claimed: HashSet<usize>,
    last_beat: String,
    beat_seen: Instant,
}

fn io_err(what: &'static str, path: &Path, e: &std::io::Error) -> ConfigError {
    ConfigError::Io {
        what,
        path: path.display().to_string(),
        reason: e.to_string(),
    }
}

fn spawn_worker(
    config: &SupervisorConfig,
    work_dir: &Path,
    id: u64,
    tx: &mpsc::Sender<WorkerEvent>,
) -> std::io::Result<WorkerSlot> {
    let mut cmd = Command::new(&config.worker_exe);
    cmd.arg("worker")
        .arg("--dir")
        .arg(work_dir)
        .arg("--id")
        .arg(id.to_string())
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit());
    for (k, v) in &config.worker_env {
        cmd.env(k, v);
    }
    let mut child = cmd.spawn()?;
    let _ = std::fs::write(
        work_dir.join(format!("worker-{id}.pid")),
        child.id().to_string(),
    );
    let stdin = child.stdin.take();
    let stdout = child.stdout.take().expect("worker stdout is piped");
    let tx = tx.clone();
    std::thread::spawn(move || {
        for line in BufReader::new(stdout).lines() {
            let Ok(line) = line else { break };
            if tx.send(WorkerEvent::Line(id, line)).is_err() {
                return;
            }
        }
        let _ = tx.send(WorkerEvent::Eof);
    });
    Ok(WorkerSlot {
        id,
        child,
        stdin,
        assigned: HashSet::new(),
        claimed: HashSet::new(),
        last_beat: String::new(),
        beat_seen: Instant::now(),
    })
}

/// Parse a worker's end-of-life cache-counter report, if `line` is one.
fn parse_stats_line(line: &str) -> Option<CacheStats> {
    let v = json::parse(line).ok()?;
    let s = v.get("stats")?;
    let g = |k: &str| s.get(k).and_then(Value::as_u64).unwrap_or(0);
    Some(CacheStats {
        memory_hits: g("memory_hits"),
        store_hits: g("store_hits"),
        disk_hits: g("disk_hits"),
        deduped: g("deduped"),
        simulated: g("simulated"),
        events_simulated: g("events_simulated"),
    })
}

fn add_stats(total: &mut CacheStats, part: &CacheStats) {
    total.memory_hits += part.memory_hits;
    total.store_hits += part.store_hits;
    total.disk_hits += part.disk_hits;
    total.deduped += part.deduped;
    total.simulated += part.simulated;
    total.events_simulated += part.events_simulated;
}

/// Run the `pending` indices of a batch across worker subprocesses.
/// Calls `on_result(index, outcome, events)` exactly once per pending
/// index, in completion order (the caller slots by index and owns the
/// journal and the result store — `events` is the worker-reported event
/// count feeding the latter). Returns the workers' aggregated cache
/// counters.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_supervised(
    config: &SupervisorConfig,
    scenarios: &[Scenario],
    keys: &[String],
    pending: &[usize],
    event_budget: Option<u64>,
    wall_budget_ns: Option<u64>,
    jobs_per_worker: usize,
    cache_dir: Option<&Path>,
    journal_hint: Option<&Path>,
    on_result: &mut dyn FnMut(usize, TrialOutcome, Option<u64>),
) -> Result<CacheStats, ConfigError> {
    let work_dir =
        config
            .state_dir
            .join(format!("work-{}-{}", std::process::id(), batch_tag(keys)));
    std::fs::create_dir_all(&work_dir)
        .map_err(|e| io_err("supervisor state dir", &work_dir, &e))?;

    // The worker-facing batch description: one scenario record per
    // pending index, plus a manifest with budgets and tuning.
    let mut records = String::new();
    for &i in pending {
        let mut v = Value::object();
        v.set("index", Value::U64(i as u64))
            .set("key", keys[i].as_str().into())
            .set("scenario", scenarios[i].to_json_value());
        records.push_str(&v.to_json());
        records.push('\n');
    }
    let scenarios_path = work_dir.join("scenarios.jsonl");
    std::fs::write(&scenarios_path, records)
        .map_err(|e| io_err("supervisor batch file", &scenarios_path, &e))?;

    let hb_interval = heartbeat_interval(config.watchdog);
    let stall_limit = config.watchdog / 2;
    let mut manifest = Value::object();
    manifest
        .set("version", Value::U64(1))
        .set("jobs", Value::U64(jobs_per_worker.max(1) as u64))
        .set("hb_interval_ms", Value::U64(hb_interval.as_millis() as u64))
        .set(
            "stall_limit_ms",
            Value::U64((stall_limit.as_millis() as u64).max(1)),
        );
    if let Some(b) = event_budget {
        manifest.set("event_budget", Value::U64(b));
    }
    if let Some(b) = wall_budget_ns {
        manifest.set("wall_budget_ns", Value::U64(b));
    }
    if let Some(dir) = cache_dir {
        manifest.set("cache_dir", dir.display().to_string().as_str().into());
    }
    let manifest_path = work_dir.join("manifest.json");
    std::fs::write(&manifest_path, manifest.to_json())
        .map_err(|e| io_err("supervisor manifest", &manifest_path, &e))?;

    let (tx, rx) = mpsc::channel::<WorkerEvent>();
    let mut workers: HashMap<u64, WorkerSlot> = HashMap::new();
    let mut next_id: u64 = 0;
    let mut spawned = 0usize;
    // Hard cap on lifetime spawns: crashes are bounded by quarantine, so
    // anything past this is a spawn loop bug, not recoverable load.
    let spawn_cap = config.workers * (config.max_strikes as usize + 2) + 8;
    let mut unresolved: HashSet<usize> = pending.iter().copied().collect();
    let mut queue: Vec<(Instant, usize)> = pending.iter().map(|&i| (Instant::now(), i)).collect();
    let mut strikes: HashMap<usize, u32> = HashMap::new();
    let mut stats = CacheStats::default();
    // Leases outstanding per worker: enough to keep its threads busy
    // while bounding how much work one death forfeits.
    let window = jobs_per_worker.max(1) * 2;

    let target = config.workers.min(pending.len()).max(1);
    for _ in 0..target {
        match spawn_worker(config, &work_dir, next_id, &tx) {
            Ok(w) => {
                workers.insert(w.id, w);
                next_id += 1;
                spawned += 1;
            }
            Err(e) => {
                if workers.is_empty() {
                    let _ = std::fs::remove_dir_all(&work_dir);
                    return Err(io_err("supervise worker", &config.worker_exe, &e));
                }
                eprintln!(
                    "warning: spawned only {} of {} supervise workers: {e}",
                    workers.len(),
                    target
                );
                break;
            }
        }
    }

    while !unresolved.is_empty() {
        if interrupted() {
            for w in workers.values_mut() {
                let _ = w.child.kill();
            }
            exit_interrupted(journal_hint);
        }

        // 1. Drain worker output (briefly block for the first event so
        // an idle supervisor doesn't spin).
        let mut events: Vec<WorkerEvent> = Vec::new();
        if let Ok(ev) = rx.recv_timeout(Duration::from_millis(20)) {
            events.push(ev);
        }
        while let Ok(ev) = rx.try_recv() {
            events.push(ev);
        }
        for ev in events {
            let WorkerEvent::Line(id, line) = ev else {
                continue; // EOF: the exit itself is handled by try_wait
            };
            if let Ok(v) = json::parse(&line) {
                if let Some(c) = v.get("claim").and_then(Value::as_u64) {
                    if let Some(w) = workers.get_mut(&id) {
                        w.claimed.insert(c as usize);
                    }
                    continue;
                }
            }
            if let Some(part) = parse_stats_line(&line) {
                add_stats(&mut stats, &part);
                continue;
            }
            let Some(entry) = parse_journal_line(&line) else {
                continue;
            };
            let i = entry.index;
            if i >= keys.len() || entry.key != keys[i] {
                continue;
            }
            if let Some(w) = workers.get_mut(&id) {
                w.assigned.remove(&i);
                w.claimed.remove(&i);
            }
            // A late result from a since-killed worker still counts —
            // but only once per index, and its retry lease is revoked.
            if unresolved.remove(&i) {
                strikes.remove(&i);
                queue.retain(|&(_, q)| q != i);
                on_result(i, entry.outcome, entry.events);
            }
        }

        // 2. Reap exited workers and kill stalled ones.
        let mut dead: Vec<(WorkerSlot, String)> = Vec::new();
        let ids: Vec<u64> = workers.keys().copied().collect();
        for id in ids {
            let Ok(Some(status)) = workers
                .get_mut(&id)
                .expect("worker id just listed")
                .child
                .try_wait()
            else {
                continue;
            };
            let w = workers.remove(&id).expect("worker id just listed");
            let _ = std::fs::remove_file(work_dir.join(format!("worker-{id}.pid")));
            if status.success() && w.assigned.is_empty() {
                continue; // clean exit with nothing leased
            }
            let fate = if status.success() {
                "exited before finishing its lease".to_string()
            } else {
                format!("died ({status})")
            };
            dead.push((w, fate));
        }
        let mut stalled: Vec<u64> = Vec::new();
        for (id, w) in workers.iter_mut() {
            if w.assigned.is_empty() {
                // Idle workers aren't watched (and shouldn't accumulate
                // staleness while waiting for backoff timers).
                w.beat_seen = Instant::now();
                continue;
            }
            let beat =
                std::fs::read_to_string(work_dir.join(format!("hb-{id}"))).unwrap_or_default();
            if beat != w.last_beat {
                w.last_beat = beat;
                w.beat_seen = Instant::now();
            } else if w.beat_seen.elapsed() > config.watchdog {
                let _ = w.child.kill();
                stalled.push(*id);
            }
        }
        for id in stalled {
            let w = workers.remove(&id).expect("stalled worker id just listed");
            let _ = std::fs::remove_file(work_dir.join(format!("worker-{id}.pid")));
            dead.push((
                w,
                format!(
                    "stalled (no heartbeat for {:.1}s)",
                    config.watchdog.as_secs_f64()
                ),
            ));
        }

        // 3. Strike claimed work from dead workers; requeue or quarantine.
        for (mut w, fate) in dead {
            let _ = w.child.wait();
            for &i in &w.claimed {
                if !unresolved.contains(&i) {
                    continue;
                }
                let s = strikes.entry(i).or_insert(0);
                *s += 1;
                if *s >= config.max_strikes {
                    unresolved.remove(&i);
                    eprintln!(
                        "warning: quarantined scenario {i} after {s} worker deaths (last: {fate})"
                    );
                    on_result(
                        i,
                        TrialOutcome::Failed(TrialFailure {
                            index: i,
                            error: format!(
                                "quarantined: worker {fate}, {s} strikes — scenario poisons its worker process"
                            ),
                            context: scenario_context(&scenarios[i]),
                        }),
                        None,
                    );
                } else {
                    let delay = config.backoff_base * 2u32.saturating_pow(*s - 1);
                    queue.push((Instant::now() + delay, i));
                }
            }
            for &i in w.assigned.difference(&w.claimed) {
                if unresolved.contains(&i) {
                    queue.push((Instant::now(), i));
                }
            }
        }

        // 4. Respawn replacements while unfinished work remains.
        let desired = config.workers.min(unresolved.len()).max(1);
        while workers.len() < desired && spawned < spawn_cap && !queue.is_empty() {
            match spawn_worker(config, &work_dir, next_id, &tx) {
                Ok(w) => {
                    workers.insert(w.id, w);
                    next_id += 1;
                    spawned += 1;
                }
                Err(e) => {
                    eprintln!("warning: cannot respawn supervise worker: {e}");
                    break;
                }
            }
        }
        if workers.is_empty() {
            // No capacity and no way to get more: fail the remainder
            // soft so the sweep (and its journal) still completes.
            let mut rest: Vec<usize> = unresolved.iter().copied().collect();
            rest.sort_unstable();
            for i in rest {
                unresolved.remove(&i);
                on_result(
                    i,
                    TrialOutcome::Failed(TrialFailure {
                        index: i,
                        error: "supervisor: no workers available (spawn failed or retry cap hit)"
                            .to_string(),
                        context: scenario_context(&scenarios[i]),
                    }),
                    None,
                );
            }
            break;
        }

        // 5. Lease ready work to the least-loaded workers.
        let now = Instant::now();
        while let Some(w) = workers
            .values_mut()
            .filter(|w| w.stdin.is_some() && w.assigned.len() < window)
            .min_by_key(|w| (w.assigned.len(), w.id))
        {
            let mut best: Option<usize> = None;
            for (pos, &(ready, idx)) in queue.iter().enumerate() {
                if ready <= now && best.is_none_or(|b| queue[b].1 > idx) {
                    best = Some(pos);
                }
            }
            let Some(pos) = best else { break };
            let (_, idx) = queue.swap_remove(pos);
            let sent = w
                .stdin
                .as_mut()
                .is_some_and(|s| writeln!(s, "{idx}").and_then(|()| s.flush()).is_ok());
            if sent {
                w.assigned.insert(idx);
            } else {
                // Broken pipe: the worker is dying; requeue and let the
                // next reap pass handle the body.
                queue.push((now, idx));
                w.stdin = None;
                break;
            }
        }
    }

    // Batch done: close leases, give workers a moment to flush their
    // cache counters and exit, then force the stragglers.
    for w in workers.values_mut() {
        w.stdin = None;
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    while !workers.is_empty() && Instant::now() < deadline {
        while let Ok(ev) = rx.try_recv() {
            if let WorkerEvent::Line(_, line) = ev {
                if let Some(part) = parse_stats_line(&line) {
                    add_stats(&mut stats, &part);
                }
            }
        }
        let ids: Vec<u64> = workers.keys().copied().collect();
        for id in ids {
            if let Ok(Some(_)) = workers
                .get_mut(&id)
                .expect("worker id just listed")
                .child
                .try_wait()
            {
                workers.remove(&id);
                let _ = std::fs::remove_file(work_dir.join(format!("worker-{id}.pid")));
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    for (_, mut w) in workers {
        let _ = w.child.kill();
        let _ = w.child.wait();
    }
    while let Ok(ev) = rx.try_recv() {
        if let WorkerEvent::Line(_, line) = ev {
            if let Some(part) = parse_stats_line(&line) {
                add_stats(&mut stats, &part);
            }
        }
    }
    let _ = std::fs::remove_dir_all(&work_dir);
    Ok(stats)
}

enum PoisonMode {
    Abort,
    Stall,
}

/// The `BBRDOM_TEST_POISON_*` sabotage hooks (see the module docs).
fn poison_armed(key: &str) -> Option<PoisonMode> {
    let spec = std::env::var("BBRDOM_TEST_POISON_HASH").ok()?;
    if !spec.split(',').any(|k| k.trim().eq_ignore_ascii_case(key)) {
        return None;
    }
    if let Ok(once) = std::env::var("BBRDOM_TEST_POISON_ONCE") {
        let marker = Path::new(&once);
        if marker.exists() {
            return None;
        }
        let _ = std::fs::write(marker, key);
    }
    match std::env::var("BBRDOM_TEST_POISON_MODE").as_deref() {
        Ok("stall") => Some(PoisonMode::Stall),
        _ => Some(PoisonMode::Abort),
    }
}

/// Entry point of the hidden `repro worker --dir D --id K` subcommand:
/// load the batch manifest, lease scenario indices from stdin, emit
/// claim/result lines on stdout, and heartbeat until the parent closes
/// the lease pipe. Returns the process exit code.
pub fn worker_main(dir: &Path, id: &str) -> i32 {
    ignore_interrupts();
    let Some(manifest) = std::fs::read_to_string(dir.join("manifest.json"))
        .ok()
        .and_then(|t| json::parse(&t).ok())
    else {
        eprintln!("worker {id}: cannot read manifest in {}", dir.display());
        return 3;
    };
    let jobs = manifest
        .get("jobs")
        .and_then(Value::as_u64)
        .unwrap_or(1)
        .max(1) as usize;
    let hb_interval = Duration::from_millis(
        manifest
            .get("hb_interval_ms")
            .and_then(Value::as_u64)
            .unwrap_or(250),
    );
    let stall_limit = manifest
        .get("stall_limit_ms")
        .and_then(Value::as_u64)
        .map(Duration::from_millis);
    let event_budget = manifest.get("event_budget").and_then(Value::as_u64);
    let wall_budget_ns = manifest.get("wall_budget_ns").and_then(Value::as_u64);
    let wall_budget = wall_budget_ns.map(Duration::from_nanos);
    let cache_dir = manifest
        .get("cache_dir")
        .and_then(Value::as_str)
        .map(PathBuf::from);

    let mut table: HashMap<usize, (String, Result<Scenario, String>)> = HashMap::new();
    let Ok(file) = std::fs::File::open(dir.join("scenarios.jsonl")) else {
        eprintln!("worker {id}: cannot open batch file in {}", dir.display());
        return 3;
    };
    for line in BufReader::new(file).lines() {
        let Ok(line) = line else { break };
        let Ok(v) = json::parse(&line) else { continue };
        let (Some(i), Some(key)) = (
            v.get("index").and_then(Value::as_u64),
            v.get("key").and_then(Value::as_str),
        ) else {
            continue;
        };
        let parsed = match v.get("scenario") {
            Some(sv) => Scenario::from_json_value(sv),
            None => Err("record has no scenario".to_string()),
        };
        table.insert(i as usize, (key.to_string(), parsed));
    }

    let engine = Engine::new(EngineConfig {
        jobs,
        disk_cache: cache_dir,
        memory_cache: true,
        supervise: None,
        // Workers read the shared index but never append to it: only
        // the parent runs the batch executor, so the parent stays the
        // index's single writer (same discipline as the journal).
        result_store: true,
    });

    let inflight: Arc<Mutex<HashMap<usize, Instant>>> = Arc::new(Mutex::new(HashMap::new()));
    let stop = Arc::new(AtomicBool::new(false));
    let hb_path = dir.join(format!("hb-{id}"));
    let hb = {
        let inflight = Arc::clone(&inflight);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut n: u64 = 0;
            while !stop.load(Ordering::Relaxed) {
                let all_stuck = stall_limit.is_some_and(|lim| {
                    let inf = inflight.lock().expect("inflight lock");
                    !inf.is_empty() && inf.values().all(|t| t.elapsed() > lim)
                });
                if !all_stuck {
                    n += 1;
                    let _ = std::fs::write(&hb_path, n.to_string());
                }
                std::thread::sleep(hb_interval);
            }
        })
    };

    let (wtx, wrx) = mpsc::channel::<usize>();
    let wrx = Arc::new(Mutex::new(wrx));
    std::thread::scope(|scope| {
        // Lease feeder: one index per stdin line; the channel closes on
        // EOF, which is the parent's "no more work" signal.
        scope.spawn(move || {
            let stdin = std::io::stdin();
            for line in stdin.lock().lines() {
                let Ok(line) = line else { break };
                let Ok(i) = line.trim().parse::<usize>() else {
                    continue;
                };
                if wtx.send(i).is_err() {
                    break;
                }
            }
        });
        for _ in 0..jobs {
            let wrx = Arc::clone(&wrx);
            let table = &table;
            let engine = &engine;
            let inflight = &inflight;
            scope.spawn(move || loop {
                let msg = wrx.lock().expect("lease lock").recv();
                let Ok(i) = msg else { break };
                let Some((key, parsed)) = table.get(&i) else {
                    // The parent only leases indices it wrote into the
                    // batch file, so this is unrecoverable skew: die and
                    // let supervision retry elsewhere.
                    eprintln!("worker: leased unknown scenario index {i}");
                    std::process::exit(4);
                };
                emit(&format!("{{\"claim\":{i}}}"));
                inflight
                    .lock()
                    .expect("inflight lock")
                    .insert(i, Instant::now());
                match poison_armed(key) {
                    Some(PoisonMode::Abort) => {
                        eprintln!("worker: test poison abort on {key}");
                        std::process::abort();
                    }
                    Some(PoisonMode::Stall) => loop {
                        std::thread::sleep(Duration::from_secs(3600));
                    },
                    None => {}
                }
                let (outcome, events) = match parsed {
                    Ok(s) => engine.run_single_traced(s, i, event_budget, wall_budget),
                    Err(e) => (
                        TrialOutcome::Failed(TrialFailure {
                            index: i,
                            error: format!("worker: bad scenario record: {e}"),
                            context: String::new(),
                        }),
                        None,
                    ),
                };
                inflight.lock().expect("inflight lock").remove(&i);
                // The wire record is a journal record plus the event
                // count (for the parent's result store). The parent
                // re-serializes its own journal, so the extra field
                // never reaches journal files.
                let mut record =
                    crate::engine::journal_value(i, key, &outcome, event_budget, wall_budget_ns);
                if let Some(e) = events {
                    record.set("events", Value::U64(e));
                }
                emit(&record.to_json());
            });
        }
    });

    stop.store(true, Ordering::Relaxed);
    let _ = hb.join();
    let s = engine.stats();
    emit(&format!(
        "{{\"stats\":{{\"memory_hits\":{},\"store_hits\":{},\"disk_hits\":{},\"deduped\":{},\"simulated\":{},\"events_simulated\":{}}}}}",
        s.memory_hits, s.store_hits, s.disk_hits, s.deduped, s.simulated, s.events_simulated
    ));
    0
}

/// Line-atomic stdout write (claim/result/stats protocol lines).
fn emit(line: &str) {
    let mut out = std::io::stdout().lock();
    let _ = out.write_all(line.as_bytes());
    let _ = out.write_all(b"\n");
    let _ = out.flush();
}

static INTERRUPTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod sig {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    extern "C" fn note(_: i32) {
        super::INTERRUPTED.store(true, std::sync::atomic::Ordering::SeqCst);
    }
    extern "C" fn swallow(_: i32) {}
    pub(super) fn install() {
        unsafe {
            signal(SIGINT, note);
            signal(SIGTERM, note);
        }
    }
    pub(super) fn ignore() {
        unsafe {
            signal(SIGINT, swallow);
            signal(SIGTERM, swallow);
        }
    }
}

#[cfg(not(unix))]
mod sig {
    pub(super) fn install() {}
    pub(super) fn ignore() {}
}

/// Install SIGINT/SIGTERM handlers that request a graceful stop: the
/// engine finishes flushing the journal's contiguous prefix, prints a
/// resume hint, and exits with code 130. Only the `repro` binary calls
/// this; library users keep default signal behavior.
pub fn install_signal_handlers() {
    sig::install();
}

/// Workers swallow terminal-delivered SIGINT/SIGTERM: orderly shutdown
/// is the parent's job (lease-pipe EOF or SIGKILL).
fn ignore_interrupts() {
    sig::ignore();
}

/// Whether a graceful-stop signal has arrived.
pub fn interrupted() -> bool {
    INTERRUPTED.load(Ordering::SeqCst)
}

/// Terminate after a graceful-stop signal: the journal (if any) already
/// holds every finished trial in index order.
pub(crate) fn exit_interrupted(journal: Option<&Path>) -> ! {
    match journal {
        Some(p) => eprintln!(
            "\ninterrupted: journal {} holds every finished trial; rerun the same command to resume",
            p.display()
        ),
        None => eprintln!(
            "\ninterrupted: no sweep journal configured — a rerun restarts this batch (disk-cached trials are still skipped)"
        ),
    }
    std::process::exit(130);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heartbeat_interval_is_bounded() {
        assert_eq!(
            heartbeat_interval(Duration::from_millis(80)),
            Duration::from_millis(25)
        );
        assert_eq!(
            heartbeat_interval(Duration::from_secs(8)),
            Duration::from_secs(1)
        );
        assert_eq!(
            heartbeat_interval(Duration::from_secs(4)),
            Duration::from_millis(500)
        );
    }

    #[test]
    fn stats_lines_round_trip() {
        let s = CacheStats {
            memory_hits: 1,
            store_hits: 6,
            disk_hits: 2,
            deduped: 3,
            simulated: 4,
            events_simulated: 5,
        };
        let line = format!(
            "{{\"stats\":{{\"memory_hits\":{},\"store_hits\":{},\"disk_hits\":{},\"deduped\":{},\"simulated\":{},\"events_simulated\":{}}}}}",
            s.memory_hits, s.store_hits, s.disk_hits, s.deduped, s.simulated, s.events_simulated
        );
        assert_eq!(parse_stats_line(&line), Some(s));
        // A pre-store worker's stats line still parses (missing counters
        // read as zero).
        let legacy = parse_stats_line(
            "{\"stats\":{\"memory_hits\":1,\"disk_hits\":2,\"deduped\":3,\"simulated\":4,\"events_simulated\":5}}",
        )
        .expect("legacy line parses");
        assert_eq!(legacy.store_hits, 0);
        assert_eq!(legacy.disk_hits, 2);
        assert_eq!(parse_stats_line("{\"claim\":3}"), None);
        assert_eq!(parse_stats_line("not json"), None);
    }

    #[test]
    fn poison_hook_matches_keys_case_insensitively() {
        // The hook reads the environment; exercised end to end (with
        // worker_env isolation) in tests/supervisor.rs. Here: the
        // default, unarmed path.
        assert!(
            poison_armed("deadbeef").is_none() || std::env::var("BBRDOM_TEST_POISON_HASH").is_ok()
        );
    }

    #[test]
    fn config_defaults_are_sane() {
        let c = SupervisorConfig::new(0, "/tmp/x");
        assert_eq!(c.workers, 1, "worker count is clamped to >= 1");
        assert_eq!(c.max_strikes, 2);
        assert!(c.watchdog >= Duration::from_secs(1));
        assert!(c.backoff_base > Duration::ZERO);
    }
}
