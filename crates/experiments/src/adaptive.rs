//! Model-guided adaptive Nash-equilibrium search.
//!
//! The dense §4.4 search simulates every distribution `k = 0..=n` of a
//! payoff grid — `(n + 1) × trials` full simulations per network
//! setting — even though the analytical model (Eq. (25)) already
//! brackets where the equilibrium must lie. This module uses the
//! model's crossing as a *seed bracket* and simulates only the
//! distributions needed to certify equilibria inside it:
//!
//! 1. ask each *oracle* for an integer bracket: first the fluid/ODE
//!    fast backend (a single-trial payoff sweep over every
//!    distribution, milliseconds of work — see
//!    [`crate::fluid_backend`]), then the closed-form Eq. (25)
//!    crossing ([`NashPredictor::ne_band`]). Each band is widened by a
//!    guard of [`GUARD`] cells, and the search simulates the bracket
//!    plus one neighbour on each side (certifying state `k` needs
//!    payoffs at `k − 1`, `k`, and `k + 1`);
//! 2. certify each in-bracket state with exactly the dense search's NE
//!    test (no flow gains more than ε by switching) — certification
//!    always runs on the DES cells the dense grid would run; the fluid
//!    oracle only chooses *which* cells to pay for;
//! 3. if an equilibrium sits on the bracket edge, widen and re-check,
//!    so a contiguous equilibrium run is never truncated;
//! 4. if *no* equilibrium is certified inside one oracle's guarded
//!    bracket, log which oracle's band disagreed and retry with the
//!    next oracle's (distinct) band; only when every oracle's band has
//!    disagreed does the search pay for the dense grid — so the
//!    adaptive path can narrow the search but never change its answer
//!    class.
//!
//! Every simulated cell is built by
//! [`crate::payoff::distribution_scenario`] — the same scenario (same
//! seed, same content hash) the dense grid would run — so the engine's
//! cache makes widening rounds and adaptive-vs-dense comparisons
//! cheap, and the adaptive answer is drawn from the same sample space
//! as the dense one.

use crate::engine::Engine;
use crate::payoff::{default_epsilon_mbps, measure_payoffs_at_on, PayoffCurves};
use crate::profile::Profile;
use crate::scenario::{DisciplineSpec, FaultSpec};
use bbrdom_cca::CcaKind;
use bbrdom_core::model::nash::NashPredictor;

/// Extra cells simulated on each side of an oracle's integer bracket.
/// Within the guard band, oracle error is absorbed silently; beyond it,
/// the search retries the next oracle and finally the dense grid.
pub const GUARD: u32 = 1;

/// An oracle that proposes the bracket the DES then certifies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NeOracle {
    /// The fluid/ODE fast backend: a single-trial payoff sweep over all
    /// `n + 1` distributions (milliseconds), higher fidelity than the
    /// closed-form model but only defined inside its validity envelope.
    Fluid,
    /// The closed-form Eq. (25) crossing.
    Model,
}

impl NeOracle {
    /// Stable lowercase name, used in logs and JSON.
    pub fn name(self) -> &'static str {
        match self {
            NeOracle::Fluid => "fluid",
            NeOracle::Model => "model",
        }
    }
}

/// The result of one adaptive NE search.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveNe {
    /// Observed NE states as CUBIC-flow counts (union across trials,
    /// sorted, deduplicated) — the same quantity
    /// [`crate::payoff::PayoffMeasurement::observed_ne_cubic_counts`]
    /// reports for the dense grid.
    pub ne_cubic: Vec<u32>,
    /// Distinct distributions (BBR-flow counts `k`) that were simulated.
    pub evaluated: Vec<u32>,
    /// Eq. (25)'s seed bracket in BBR-flow counts, when it solved.
    pub model_band: Option<(u32, u32)>,
    /// The fluid backend's bracket in BBR-flow counts — `None` when the
    /// setting is outside the fluid validity envelope (AQM, faults,
    /// unmodelled CCAs) or the fluid sweep certified no equilibrium.
    pub fluid_band: Option<(u32, u32)>,
    /// The oracle whose band the answer was certified in; `None` when
    /// the search ran (or fell back to) the dense grid.
    pub oracle: Option<NeOracle>,
    /// Oracle bands tried and abandoned before the answer (0 = the
    /// first oracle's band certified).
    pub oracle_retries: u32,
    /// True when the search widened to the full grid — either no oracle
    /// could bracket the crossing, or nothing inside any oracle's
    /// guarded bracket certified as an equilibrium.
    pub dense_fallback: bool,
}

/// Is state `k` an NE of this trial's (possibly partial) curves?
/// Mirrors `SymmetricGame::is_nash`, reading only the cells the search
/// simulated; a `NaN` read means the caller's bracket bookkeeping is
/// wrong, and the `debug_assert` makes that loud.
fn is_nash_partial(t: &PayoffCurves, k: u32, n: u32, eps: f64) -> bool {
    if k < n {
        let stay = t.cubic_per_flow[k as usize];
        let switch = t.x_per_flow[(k + 1) as usize];
        debug_assert!(
            stay.is_finite() && switch.is_finite(),
            "certifying k={k} reads an unevaluated cell"
        );
        if switch > stay + eps {
            return false;
        }
    }
    if k > 0 {
        let stay = t.x_per_flow[k as usize];
        let switch = t.cubic_per_flow[(k - 1) as usize];
        debug_assert!(
            stay.is_finite() && switch.is_finite(),
            "certifying k={k} reads an unevaluated cell"
        );
        if switch > stay + eps {
            return false;
        }
    }
    true
}

/// [`find_ne_adaptive_on`] on the process-wide engine.
#[allow(clippy::too_many_arguments)]
pub fn find_ne_adaptive(
    mbps: f64,
    rtt_ms: f64,
    buffer_bdp: f64,
    n: u32,
    challenger: CcaKind,
    profile: &Profile,
    base_seed: u64,
    discipline: DisciplineSpec,
    faults: &FaultSpec,
) -> AdaptiveNe {
    find_ne_adaptive_on(
        Engine::global(),
        mbps,
        rtt_ms,
        buffer_bdp,
        n,
        challenger,
        profile,
        base_seed,
        discipline,
        faults,
    )
}

/// Model-guided adaptive NE search on an explicit engine (benches and
/// tests use private engines so their event counters are isolated).
#[allow(clippy::too_many_arguments)]
pub fn find_ne_adaptive_on(
    engine: &Engine,
    mbps: f64,
    rtt_ms: f64,
    buffer_bdp: f64,
    n: u32,
    challenger: CcaKind,
    profile: &Profile,
    base_seed: u64,
    discipline: DisciplineSpec,
    faults: &FaultSpec,
) -> AdaptiveNe {
    let model_band = NashPredictor::from_paper_units(mbps, rtt_ms, buffer_bdp, n)
        .ne_band()
        .ok();
    let fluid_band = fluid_ne_band(
        mbps, rtt_ms, buffer_bdp, n, challenger, profile, base_seed, discipline, faults,
    );
    // Oracle order is fidelity order: the fluid sweep sees the same
    // dynamics the DES does (it is a simulation, not a formula), so its
    // band goes first; Eq. (25) is the retry. Identical bands would
    // re-certify the same cells, so they are collapsed.
    let mut bands: Vec<(NeOracle, (u32, u32))> = Vec::new();
    if let Some(b) = fluid_band {
        bands.push((NeOracle::Fluid, b));
    }
    if let Some(b) = model_band {
        if bands.iter().all(|&(_, fb)| fb != b) {
            bands.push((NeOracle::Model, b));
        }
    }
    certify_with_bands(
        engine, &bands, model_band, fluid_band, mbps, rtt_ms, buffer_bdp, n, challenger, profile,
        base_seed, discipline, faults,
    )
}

/// What certifying one guarded bracket concluded.
enum BandOutcome {
    /// NE states (BBR-flow counts) certified strictly inside the band.
    Certified(Vec<u32>),
    /// The band grew to cover the whole grid and certified nothing —
    /// the dense search would report the same empty set, so this is a
    /// final answer, not a disagreement.
    EmptyFullGrid,
    /// Nothing certified inside the (partial) band: the oracle and the
    /// measurement disagree beyond the guard band.
    Disagreed,
}

/// Run the certify-and-widen loop over each oracle band in turn, then
/// the dense grid. Split from [`find_ne_adaptive_on`] so the retry
/// logic can be tested with hand-picked (including wrong) bands.
#[allow(clippy::too_many_arguments)]
fn certify_with_bands(
    engine: &Engine,
    bands: &[(NeOracle, (u32, u32))],
    model_band: Option<(u32, u32)>,
    fluid_band: Option<(u32, u32)>,
    mbps: f64,
    rtt_ms: f64,
    buffer_bdp: f64,
    n: u32,
    challenger: CcaKind,
    profile: &Profile,
    base_seed: u64,
    discipline: DisciplineSpec,
    faults: &FaultSpec,
) -> AdaptiveNe {
    let eps = default_epsilon_mbps(mbps, n);
    let mut evaluated: Vec<u32> = Vec::new();
    let certify = |lo0: u32, hi0: u32, evaluated: &mut Vec<u32>| -> BandOutcome {
        let (mut lo, mut hi) = (lo0, hi0.min(n));
        loop {
            // Certifying [lo, hi] needs payoffs on [lo − 1, hi + 1].
            // The engine memoizes by content hash, so widening rounds
            // and later bands only simulate newly uncovered cells.
            let ks: Vec<u32> = (lo.saturating_sub(1)..=(hi + 1).min(n)).collect();
            let m = measure_payoffs_at_on(
                engine, mbps, rtt_ms, buffer_bdp, n, &ks, challenger, profile, base_seed,
                discipline, faults,
            );
            for &k in &ks {
                if !evaluated.contains(&k) {
                    evaluated.push(k);
                }
            }

            let mut ne_k: Vec<u32> = m
                .trials
                .iter()
                .flat_map(|t| (lo..=hi).filter(|&k| is_nash_partial(t, k, n, eps)))
                .collect();
            ne_k.sort_unstable();
            ne_k.dedup();

            if !ne_k.is_empty() {
                // An equilibrium on the bracket edge may continue beyond
                // it; widen until the certified set is interior (or the
                // grid ends), so a contiguous NE run is reported whole.
                let grow_lo = ne_k.contains(&lo) && lo > 0;
                let grow_hi = ne_k.contains(&hi) && hi < n;
                if grow_lo || grow_hi {
                    lo = lo.saturating_sub(if grow_lo { 1 } else { 0 });
                    hi = (hi + if grow_hi { 1 } else { 0 }).min(n);
                    continue;
                }
                return BandOutcome::Certified(ne_k);
            }
            return if lo == 0 && hi == n {
                BandOutcome::EmptyFullGrid
            } else {
                BandOutcome::Disagreed
            };
        }
    };
    let finish = |ne_k: Vec<u32>,
                  mut evaluated: Vec<u32>,
                  oracle: Option<NeOracle>,
                  oracle_retries: u32,
                  dense_fallback: bool| {
        evaluated.sort_unstable();
        AdaptiveNe {
            ne_cubic: ne_k.iter().rev().map(|&k| n - k).collect(),
            evaluated,
            model_band,
            fluid_band,
            oracle,
            oracle_retries,
            dense_fallback,
        }
    };

    for (i, &(oracle, (l, h))) in bands.iter().enumerate() {
        let outcome = certify(l.saturating_sub(GUARD), h + GUARD, &mut evaluated);
        match outcome {
            BandOutcome::Certified(ne_k) => {
                return finish(ne_k, evaluated, Some(oracle), i as u32, false);
            }
            BandOutcome::EmptyFullGrid => {
                return finish(Vec::new(), evaluated, Some(oracle), i as u32, false);
            }
            BandOutcome::Disagreed => {
                let next = bands
                    .get(i + 1)
                    .map(|&(o, _)| format!("retrying with the {} oracle's band", o.name()))
                    .unwrap_or_else(|| "falling back to the dense grid".to_string());
                eprintln!(
                    "adaptive NE: {} band [{l}, {h}] certified nothing at \
                     (C={mbps} Mbps, RTT={rtt_ms} ms, {buffer_bdp} BDP, n={n}); {next}",
                    oracle.name()
                );
            }
        }
    }
    // Every oracle band disagreed (or none solved): pay for the grid.
    let retries = bands.len() as u32;
    match certify(0, n, &mut evaluated) {
        BandOutcome::Certified(ne_k) => finish(ne_k, evaluated, None, retries, true),
        _ => finish(Vec::new(), evaluated, None, retries, true),
    }
}

/// NE band proposed by a single-trial fluid sweep over every
/// distribution `k = 0..=n`, in BBR-flow counts.
///
/// The sweep builds the *same* cells as the dense grid
/// ([`crate::payoff::distribution_scenario`], trial 0) and re-targets
/// them at the fluid backend, stripping the early-stop policy (the
/// fluid integrator always runs the full horizon). It runs beside the
/// engine — never through it — so engine statistics and the cache keep
/// counting only certification (DES) work. Returns `None` when any
/// cell is outside the fluid validity envelope (AQM, faults,
/// unmodelled CCAs) or the fluid payoff game has no equilibrium.
#[allow(clippy::too_many_arguments)]
fn fluid_ne_band(
    mbps: f64,
    rtt_ms: f64,
    buffer_bdp: f64,
    n: u32,
    challenger: CcaKind,
    profile: &Profile,
    base_seed: u64,
    discipline: DisciplineSpec,
    faults: &FaultSpec,
) -> Option<(u32, u32)> {
    use crate::payoff::PayoffCurves;
    let name = challenger.name();
    let mut x = vec![0.0; n as usize + 1];
    let mut c = vec![0.0; n as usize + 1];
    for k in 0..=n {
        let mut s = crate::payoff::distribution_scenario(
            mbps, rtt_ms, buffer_bdp, n, k, 0, challenger, profile, base_seed, discipline, faults,
        );
        s.backend = crate::scenario::BackendSpec::Fluid;
        s.early_stop = None;
        let r = s.try_run_with(None, None).ok()?;
        x[k as usize] = r.mean_throughput_of(name).unwrap_or(0.0);
        c[k as usize] = r.mean_throughput_of("cubic").unwrap_or(0.0);
    }
    let curves = PayoffCurves {
        n,
        challenger: name.to_string(),
        x_per_flow: x,
        cubic_per_flow: c,
        queuing_delay_ms: vec![0.0; n as usize + 1],
    };
    let ne = curves.nash_equilibria(default_epsilon_mbps(mbps, n));
    let ks: Vec<u32> = ne.iter().map(|e| n - e.n_cubic).collect();
    Some((*ks.iter().min()?, *ks.iter().max()?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::payoff::{measure_payoffs, measure_payoffs_with};

    fn memo_engine() -> Engine {
        Engine::new(EngineConfig {
            jobs: 1,
            disk_cache: None,
            memory_cache: true,
            supervise: None,
            result_store: false,
        })
    }

    /// The satellite tolerance test: on a small pinned case the adaptive
    /// search must land within one grid step of the dense-grid NE.
    #[test]
    fn adaptive_ne_is_within_one_grid_step_of_dense() {
        let profile = Profile::smoke();
        let (mbps, rtt_ms, buffer_bdp, n, seed) = (20.0, 20.0, 2.0, 6u32, 0xada7);
        let dense = measure_payoffs(mbps, rtt_ms, buffer_bdp, n, CcaKind::Bbr, &profile, seed)
            .observed_ne_cubic_counts(default_epsilon_mbps(mbps, n));
        let adaptive = find_ne_adaptive_on(
            &memo_engine(),
            mbps,
            rtt_ms,
            buffer_bdp,
            n,
            CcaKind::Bbr,
            &profile,
            seed,
            DisciplineSpec::DropTail,
            &FaultSpec::default(),
        );
        assert!(
            !adaptive.ne_cubic.is_empty(),
            "adaptive search must certify an equilibrium (dense found {dense:?})"
        );
        for &a in &adaptive.ne_cubic {
            let nearest = dense
                .iter()
                .map(|&d| a.abs_diff(d))
                .min()
                .expect("dense search found no NE to compare against");
            assert!(
                nearest <= 1,
                "adaptive NE {a} is {nearest} steps from the dense set {dense:?}"
            );
        }
    }

    /// Interior equilibria (certified without touching a grid edge) are
    /// exactly the dense equilibria: both run the same per-cell
    /// scenarios and the same NE test.
    #[test]
    fn interior_adaptive_ne_matches_dense_exactly() {
        let profile = Profile::smoke();
        let (mbps, rtt_ms, buffer_bdp, n, seed) = (20.0, 20.0, 2.0, 6u32, 0xada7);
        let adaptive = find_ne_adaptive_on(
            &memo_engine(),
            mbps,
            rtt_ms,
            buffer_bdp,
            n,
            CcaKind::Bbr,
            &profile,
            seed,
            DisciplineSpec::DropTail,
            &FaultSpec::default(),
        );
        let dense = measure_payoffs(mbps, rtt_ms, buffer_bdp, n, CcaKind::Bbr, &profile, seed)
            .observed_ne_cubic_counts(default_epsilon_mbps(mbps, n));
        if !adaptive.dense_fallback {
            for &a in &adaptive.ne_cubic {
                assert!(
                    dense.contains(&a),
                    "adaptive certified n_cubic={a} but dense set is {dense:?}"
                );
            }
        }
    }

    /// The point of the exercise: the adaptive search simulates a strict
    /// subset of the dense grid when the model bracket holds.
    #[test]
    fn adaptive_search_simulates_fewer_cells_than_dense() {
        let profile = Profile::smoke();
        let (mbps, rtt_ms, buffer_bdp, n, seed) = (20.0, 20.0, 2.0, 8u32, 0xada8);
        let engine = memo_engine();
        let adaptive = find_ne_adaptive_on(
            &engine,
            mbps,
            rtt_ms,
            buffer_bdp,
            n,
            CcaKind::Bbr,
            &profile,
            seed,
            DisciplineSpec::DropTail,
            &FaultSpec::default(),
        );
        if !adaptive.dense_fallback {
            assert!(
                (adaptive.evaluated.len() as u32) < n + 1,
                "evaluated {:?} of a {}-cell grid",
                adaptive.evaluated,
                n + 1
            );
            assert_eq!(
                engine.stats().simulated,
                adaptive.evaluated.len() as u64 * profile.ne_trials.max(1) as u64,
                "each evaluated cell simulates once per trial"
            );
        }
    }

    /// Adaptive cells are the dense grid's cells: identical scenarios,
    /// identical content hashes, so the cache serves one to the other.
    #[test]
    fn adaptive_cells_share_the_dense_grid_cache() {
        let profile = Profile::smoke();
        let (mbps, rtt_ms, buffer_bdp, n, seed) = (20.0, 20.0, 2.0, 6u32, 0xada7);
        let engine = memo_engine();
        // Warm the engine with the full dense grid…
        let mut dense_cells = Vec::new();
        for k in 0..=n {
            dense_cells.push(crate::payoff::distribution_scenario(
                mbps,
                rtt_ms,
                buffer_bdp,
                n,
                k,
                0,
                CcaKind::Bbr,
                &profile,
                seed,
                DisciplineSpec::DropTail,
                &FaultSpec::default(),
            ));
        }
        engine.run_all(&dense_cells);
        let warm = engine.stats();
        // …then the adaptive search on the same engine must be all hits.
        let _ = find_ne_adaptive_on(
            &engine,
            mbps,
            rtt_ms,
            buffer_bdp,
            n,
            CcaKind::Bbr,
            &profile,
            seed,
            DisciplineSpec::DropTail,
            &FaultSpec::default(),
        );
        let after = engine.stats().since(&warm);
        assert_eq!(after.simulated, 0, "adaptive re-simulated a dense cell");
        assert_eq!(after.events_simulated, 0);
    }

    /// An early-stop profile changes the per-cell scenarios (and their
    /// hashes), so stopped and fixed-horizon grids can never alias.
    #[test]
    fn early_stop_profile_changes_the_cells() {
        let profile = Profile::smoke();
        let stopped = Profile {
            early_stop: Some((0.05, 3)),
            ..profile
        };
        let make = |p: &Profile| {
            crate::payoff::distribution_scenario(
                20.0,
                20.0,
                2.0,
                4,
                2,
                0,
                CcaKind::Bbr,
                p,
                7,
                DisciplineSpec::DropTail,
                &FaultSpec::default(),
            )
        };
        assert_ne!(
            crate::engine::scenario_hash(&make(&profile)),
            crate::engine::scenario_hash(&make(&stopped))
        );
    }

    /// Regression for the oracle-retry bugfix: a wrong first band no
    /// longer drops straight to the dense grid — the second oracle's
    /// band is tried, certifies, and is credited.
    #[test]
    fn wrong_first_band_retries_second_oracle_before_dense() {
        let profile = Profile::smoke();
        let (mbps, rtt_ms, buffer_bdp, n, seed) = (20.0, 20.0, 2.0, 6u32, 0xada7);
        let dense = measure_payoffs(mbps, rtt_ms, buffer_bdp, n, CcaKind::Bbr, &profile, seed)
            .observed_ne_cubic_counts(default_epsilon_mbps(mbps, n));
        let ne_bbr: Vec<u32> = dense.iter().map(|&c| n - c).collect();
        let good = (*ne_bbr.iter().min().unwrap(), *ne_bbr.iter().max().unwrap());
        // A band (plus guard and the widening neighbours) that misses
        // every dense equilibrium: the far end of the grid.
        let wrong_k = if good.0 > n / 2 { 0 } else { n };
        assert!(
            dense.iter().all(|&c| (n - c).abs_diff(wrong_k) > GUARD + 1),
            "need a band at least GUARD+1 cells from every NE to force a disagreement"
        );
        let result = certify_with_bands(
            &memo_engine(),
            &[
                (NeOracle::Fluid, (wrong_k, wrong_k)),
                (NeOracle::Model, good),
            ],
            Some(good),
            Some((wrong_k, wrong_k)),
            mbps,
            rtt_ms,
            buffer_bdp,
            n,
            CcaKind::Bbr,
            &profile,
            seed,
            DisciplineSpec::DropTail,
            &FaultSpec::default(),
        );
        assert!(!result.dense_fallback, "retry must spare the dense grid");
        assert_eq!(result.oracle, Some(NeOracle::Model));
        assert_eq!(result.oracle_retries, 1);
        for &a in &result.ne_cubic {
            assert!(dense.contains(&a), "certified {a} not in dense {dense:?}");
        }
    }

    /// When every oracle band is wrong the search still falls back to
    /// the dense grid and reports the dense answer class.
    #[test]
    fn all_wrong_bands_fall_back_to_dense() {
        let profile = Profile::smoke();
        let (mbps, rtt_ms, buffer_bdp, n, seed) = (20.0, 20.0, 2.0, 6u32, 0xada7);
        let dense = measure_payoffs(mbps, rtt_ms, buffer_bdp, n, CcaKind::Bbr, &profile, seed)
            .observed_ne_cubic_counts(default_epsilon_mbps(mbps, n));
        let wrong_k = if dense.iter().all(|&c| n - c > n / 2) {
            0
        } else {
            n
        };
        let result = certify_with_bands(
            &memo_engine(),
            &[(NeOracle::Fluid, (wrong_k, wrong_k))],
            None,
            Some((wrong_k, wrong_k)),
            mbps,
            rtt_ms,
            buffer_bdp,
            n,
            CcaKind::Bbr,
            &profile,
            seed,
            DisciplineSpec::DropTail,
            &FaultSpec::default(),
        );
        assert!(result.dense_fallback);
        assert_eq!(result.oracle, None);
        assert_eq!(result.oracle_retries, 1);
        assert_eq!(
            result.ne_cubic, dense,
            "dense fallback must equal the dense answer"
        );
    }

    /// The fluid oracle proposes a band on an ordinary drop-tail cell
    /// and abstains (rather than erroring) outside its envelope.
    #[test]
    fn fluid_oracle_bands_and_abstains_by_envelope() {
        let profile = Profile::smoke();
        let band = fluid_ne_band(
            20.0,
            20.0,
            2.0,
            6,
            CcaKind::Bbr,
            &profile,
            7,
            DisciplineSpec::DropTail,
            &FaultSpec::default(),
        );
        let (l, h) = band.expect("drop-tail CUBIC-vs-BBR is inside the fluid envelope");
        assert!(l <= h && h <= 6);
        let aqm = fluid_ne_band(
            20.0,
            20.0,
            2.0,
            6,
            CcaKind::Bbr,
            &profile,
            7,
            DisciplineSpec::Codel,
            &FaultSpec::default(),
        );
        assert_eq!(aqm, None, "AQM cells are outside the fluid envelope");
    }

    /// `measure_payoffs_with` (the dense path) and the shared cell
    /// builder agree — the refactor kept the seed formula.
    #[test]
    fn dense_grid_uses_the_shared_cell_builder() {
        let profile = Profile::smoke();
        let dense = measure_payoffs_with(
            20.0,
            20.0,
            2.0,
            4,
            CcaKind::Bbr,
            &profile,
            7,
            DisciplineSpec::DropTail,
            &FaultSpec::default(),
        );
        let engine = memo_engine();
        let subset = measure_payoffs_at_on(
            &engine,
            20.0,
            20.0,
            2.0,
            4,
            &[1, 2, 3],
            CcaKind::Bbr,
            &profile,
            7,
            DisciplineSpec::DropTail,
            &FaultSpec::default(),
        );
        for k in 1..=3usize {
            assert_eq!(
                dense.trials[0].x_per_flow[k], subset.trials[0].x_per_flow[k],
                "cell k={k} differs between dense and subset measurement"
            );
            assert_eq!(
                dense.trials[0].cubic_per_flow[k],
                subset.trials[0].cubic_per_flow[k]
            );
        }
        assert!(subset.trials[0].x_per_flow[0].is_nan());
        assert!(subset.trials[0].x_per_flow[4].is_nan());
    }
}
