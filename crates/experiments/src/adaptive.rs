//! Model-guided adaptive Nash-equilibrium search.
//!
//! The dense §4.4 search simulates every distribution `k = 0..=n` of a
//! payoff grid — `(n + 1) × trials` full simulations per network
//! setting — even though the analytical model (Eq. (25)) already
//! brackets where the equilibrium must lie. This module uses the
//! model's crossing as a *seed bracket* and simulates only the
//! distributions needed to certify equilibria inside it:
//!
//! 1. query [`NashPredictor::ne_band`] for the integer bracket covering
//!    both synchronization bounds, widen it by a guard band of
//!    [`GUARD`] cells, and simulate the bracket plus one neighbour on
//!    each side (certifying state `k` needs payoffs at `k − 1`, `k`,
//!    and `k + 1`);
//! 2. certify each in-bracket state with exactly the dense search's NE
//!    test (no flow gains more than ε by switching);
//! 3. if an equilibrium sits on the bracket edge, widen and re-check,
//!    so a contiguous equilibrium run is never truncated;
//! 4. if *no* equilibrium is certified inside the guarded bracket — the
//!    model and the simulation disagree beyond the guard band — fall
//!    back to the dense grid, so the adaptive path can narrow the
//!    search but never change its answer class.
//!
//! Every simulated cell is built by
//! [`crate::payoff::distribution_scenario`] — the same scenario (same
//! seed, same content hash) the dense grid would run — so the engine's
//! cache makes widening rounds and adaptive-vs-dense comparisons
//! cheap, and the adaptive answer is drawn from the same sample space
//! as the dense one.

use crate::engine::Engine;
use crate::payoff::{default_epsilon_mbps, measure_payoffs_at_on, PayoffCurves};
use crate::profile::Profile;
use crate::scenario::{DisciplineSpec, FaultSpec};
use bbrdom_cca::CcaKind;
use bbrdom_core::model::nash::NashPredictor;

/// Extra cells simulated on each side of the model's integer bracket.
/// Within the guard band, model error is absorbed silently; beyond it,
/// the search falls back to the dense grid.
pub const GUARD: u32 = 1;

/// The result of one adaptive NE search.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveNe {
    /// Observed NE states as CUBIC-flow counts (union across trials,
    /// sorted, deduplicated) — the same quantity
    /// [`crate::payoff::PayoffMeasurement::observed_ne_cubic_counts`]
    /// reports for the dense grid.
    pub ne_cubic: Vec<u32>,
    /// Distinct distributions (BBR-flow counts `k`) that were simulated.
    pub evaluated: Vec<u32>,
    /// The model's seed bracket in BBR-flow counts, when it solved.
    pub model_band: Option<(u32, u32)>,
    /// True when the search widened to the full grid — either the model
    /// could not bracket the crossing, or nothing inside the guarded
    /// bracket certified as an equilibrium.
    pub dense_fallback: bool,
}

/// Is state `k` an NE of this trial's (possibly partial) curves?
/// Mirrors `SymmetricGame::is_nash`, reading only the cells the search
/// simulated; a `NaN` read means the caller's bracket bookkeeping is
/// wrong, and the `debug_assert` makes that loud.
fn is_nash_partial(t: &PayoffCurves, k: u32, n: u32, eps: f64) -> bool {
    if k < n {
        let stay = t.cubic_per_flow[k as usize];
        let switch = t.x_per_flow[(k + 1) as usize];
        debug_assert!(
            stay.is_finite() && switch.is_finite(),
            "certifying k={k} reads an unevaluated cell"
        );
        if switch > stay + eps {
            return false;
        }
    }
    if k > 0 {
        let stay = t.x_per_flow[k as usize];
        let switch = t.cubic_per_flow[(k - 1) as usize];
        debug_assert!(
            stay.is_finite() && switch.is_finite(),
            "certifying k={k} reads an unevaluated cell"
        );
        if switch > stay + eps {
            return false;
        }
    }
    true
}

/// [`find_ne_adaptive_on`] on the process-wide engine.
#[allow(clippy::too_many_arguments)]
pub fn find_ne_adaptive(
    mbps: f64,
    rtt_ms: f64,
    buffer_bdp: f64,
    n: u32,
    challenger: CcaKind,
    profile: &Profile,
    base_seed: u64,
    discipline: DisciplineSpec,
    faults: &FaultSpec,
) -> AdaptiveNe {
    find_ne_adaptive_on(
        Engine::global(),
        mbps,
        rtt_ms,
        buffer_bdp,
        n,
        challenger,
        profile,
        base_seed,
        discipline,
        faults,
    )
}

/// Model-guided adaptive NE search on an explicit engine (benches and
/// tests use private engines so their event counters are isolated).
#[allow(clippy::too_many_arguments)]
pub fn find_ne_adaptive_on(
    engine: &Engine,
    mbps: f64,
    rtt_ms: f64,
    buffer_bdp: f64,
    n: u32,
    challenger: CcaKind,
    profile: &Profile,
    base_seed: u64,
    discipline: DisciplineSpec,
    faults: &FaultSpec,
) -> AdaptiveNe {
    let eps = default_epsilon_mbps(mbps, n);
    let model_band = NashPredictor::from_paper_units(mbps, rtt_ms, buffer_bdp, n)
        .ne_band()
        .ok();
    let (mut lo, mut hi, mut dense_fallback) = match model_band {
        Some((l, h)) => (l.saturating_sub(GUARD), (h + GUARD).min(n), false),
        // The model can't bracket this setting: dense from the start.
        None => (0, n, true),
    };
    let mut evaluated: Vec<u32> = Vec::new();
    loop {
        // Certifying [lo, hi] needs payoffs on [lo − 1, hi + 1]. The
        // engine memoizes by content hash, so widening rounds only
        // simulate the newly uncovered cells.
        let ks: Vec<u32> = (lo.saturating_sub(1)..=(hi + 1).min(n)).collect();
        let m = measure_payoffs_at_on(
            engine, mbps, rtt_ms, buffer_bdp, n, &ks, challenger, profile, base_seed, discipline,
            faults,
        );
        for &k in &ks {
            if !evaluated.contains(&k) {
                evaluated.push(k);
            }
        }

        let mut ne_k: Vec<u32> = m
            .trials
            .iter()
            .flat_map(|t| (lo..=hi).filter(|&k| is_nash_partial(t, k, n, eps)))
            .collect();
        ne_k.sort_unstable();
        ne_k.dedup();

        if !ne_k.is_empty() {
            // An equilibrium on the bracket edge may continue beyond it;
            // widen until the certified set is interior (or the grid
            // ends), so a contiguous NE run is reported whole.
            let grow_lo = ne_k.contains(&lo) && lo > 0;
            let grow_hi = ne_k.contains(&hi) && hi < n;
            if grow_lo || grow_hi {
                lo = lo.saturating_sub(if grow_lo { 1 } else { 0 });
                hi = (hi + if grow_hi { 1 } else { 0 }).min(n);
                continue;
            }
            evaluated.sort_unstable();
            return AdaptiveNe {
                ne_cubic: ne_k.iter().rev().map(|&k| n - k).collect(),
                evaluated,
                model_band,
                dense_fallback,
            };
        }
        if lo == 0 && hi == n {
            // The full grid certified nothing — the dense search would
            // report the same empty set.
            evaluated.sort_unstable();
            return AdaptiveNe {
                ne_cubic: Vec::new(),
                evaluated,
                model_band,
                dense_fallback,
            };
        }
        // Nothing certified inside the guarded bracket: model and
        // simulation disagree beyond the guard band. Dense fallback.
        (lo, hi, dense_fallback) = (0, n, true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::payoff::{measure_payoffs, measure_payoffs_with};

    fn memo_engine() -> Engine {
        Engine::new(EngineConfig {
            jobs: 1,
            disk_cache: None,
            memory_cache: true,
        })
    }

    /// The satellite tolerance test: on a small pinned case the adaptive
    /// search must land within one grid step of the dense-grid NE.
    #[test]
    fn adaptive_ne_is_within_one_grid_step_of_dense() {
        let profile = Profile::smoke();
        let (mbps, rtt_ms, buffer_bdp, n, seed) = (20.0, 20.0, 2.0, 6u32, 0xada7);
        let dense = measure_payoffs(mbps, rtt_ms, buffer_bdp, n, CcaKind::Bbr, &profile, seed)
            .observed_ne_cubic_counts(default_epsilon_mbps(mbps, n));
        let adaptive = find_ne_adaptive_on(
            &memo_engine(),
            mbps,
            rtt_ms,
            buffer_bdp,
            n,
            CcaKind::Bbr,
            &profile,
            seed,
            DisciplineSpec::DropTail,
            &FaultSpec::default(),
        );
        assert!(
            !adaptive.ne_cubic.is_empty(),
            "adaptive search must certify an equilibrium (dense found {dense:?})"
        );
        for &a in &adaptive.ne_cubic {
            let nearest = dense
                .iter()
                .map(|&d| a.abs_diff(d))
                .min()
                .expect("dense search found no NE to compare against");
            assert!(
                nearest <= 1,
                "adaptive NE {a} is {nearest} steps from the dense set {dense:?}"
            );
        }
    }

    /// Interior equilibria (certified without touching a grid edge) are
    /// exactly the dense equilibria: both run the same per-cell
    /// scenarios and the same NE test.
    #[test]
    fn interior_adaptive_ne_matches_dense_exactly() {
        let profile = Profile::smoke();
        let (mbps, rtt_ms, buffer_bdp, n, seed) = (20.0, 20.0, 2.0, 6u32, 0xada7);
        let adaptive = find_ne_adaptive_on(
            &memo_engine(),
            mbps,
            rtt_ms,
            buffer_bdp,
            n,
            CcaKind::Bbr,
            &profile,
            seed,
            DisciplineSpec::DropTail,
            &FaultSpec::default(),
        );
        let dense = measure_payoffs(mbps, rtt_ms, buffer_bdp, n, CcaKind::Bbr, &profile, seed)
            .observed_ne_cubic_counts(default_epsilon_mbps(mbps, n));
        if !adaptive.dense_fallback {
            for &a in &adaptive.ne_cubic {
                assert!(
                    dense.contains(&a),
                    "adaptive certified n_cubic={a} but dense set is {dense:?}"
                );
            }
        }
    }

    /// The point of the exercise: the adaptive search simulates a strict
    /// subset of the dense grid when the model bracket holds.
    #[test]
    fn adaptive_search_simulates_fewer_cells_than_dense() {
        let profile = Profile::smoke();
        let (mbps, rtt_ms, buffer_bdp, n, seed) = (20.0, 20.0, 2.0, 8u32, 0xada8);
        let engine = memo_engine();
        let adaptive = find_ne_adaptive_on(
            &engine,
            mbps,
            rtt_ms,
            buffer_bdp,
            n,
            CcaKind::Bbr,
            &profile,
            seed,
            DisciplineSpec::DropTail,
            &FaultSpec::default(),
        );
        if !adaptive.dense_fallback {
            assert!(
                (adaptive.evaluated.len() as u32) < n + 1,
                "evaluated {:?} of a {}-cell grid",
                adaptive.evaluated,
                n + 1
            );
            assert_eq!(
                engine.stats().simulated,
                adaptive.evaluated.len() as u64 * profile.ne_trials.max(1) as u64,
                "each evaluated cell simulates once per trial"
            );
        }
    }

    /// Adaptive cells are the dense grid's cells: identical scenarios,
    /// identical content hashes, so the cache serves one to the other.
    #[test]
    fn adaptive_cells_share_the_dense_grid_cache() {
        let profile = Profile::smoke();
        let (mbps, rtt_ms, buffer_bdp, n, seed) = (20.0, 20.0, 2.0, 6u32, 0xada7);
        let engine = memo_engine();
        // Warm the engine with the full dense grid…
        let mut dense_cells = Vec::new();
        for k in 0..=n {
            dense_cells.push(crate::payoff::distribution_scenario(
                mbps,
                rtt_ms,
                buffer_bdp,
                n,
                k,
                0,
                CcaKind::Bbr,
                &profile,
                seed,
                DisciplineSpec::DropTail,
                &FaultSpec::default(),
            ));
        }
        engine.run_all(&dense_cells);
        let warm = engine.stats();
        // …then the adaptive search on the same engine must be all hits.
        let _ = find_ne_adaptive_on(
            &engine,
            mbps,
            rtt_ms,
            buffer_bdp,
            n,
            CcaKind::Bbr,
            &profile,
            seed,
            DisciplineSpec::DropTail,
            &FaultSpec::default(),
        );
        let after = engine.stats().since(&warm);
        assert_eq!(after.simulated, 0, "adaptive re-simulated a dense cell");
        assert_eq!(after.events_simulated, 0);
    }

    /// An early-stop profile changes the per-cell scenarios (and their
    /// hashes), so stopped and fixed-horizon grids can never alias.
    #[test]
    fn early_stop_profile_changes_the_cells() {
        let profile = Profile::smoke();
        let stopped = Profile {
            early_stop: Some((0.05, 3)),
            ..profile
        };
        let make = |p: &Profile| {
            crate::payoff::distribution_scenario(
                20.0,
                20.0,
                2.0,
                4,
                2,
                0,
                CcaKind::Bbr,
                p,
                7,
                DisciplineSpec::DropTail,
                &FaultSpec::default(),
            )
        };
        assert_ne!(
            crate::engine::scenario_hash(&make(&profile)),
            crate::engine::scenario_hash(&make(&stopped))
        );
    }

    /// `measure_payoffs_with` (the dense path) and the shared cell
    /// builder agree — the refactor kept the seed formula.
    #[test]
    fn dense_grid_uses_the_shared_cell_builder() {
        let profile = Profile::smoke();
        let dense = measure_payoffs_with(
            20.0,
            20.0,
            2.0,
            4,
            CcaKind::Bbr,
            &profile,
            7,
            DisciplineSpec::DropTail,
            &FaultSpec::default(),
        );
        let engine = memo_engine();
        let subset = measure_payoffs_at_on(
            &engine,
            20.0,
            20.0,
            2.0,
            4,
            &[1, 2, 3],
            CcaKind::Bbr,
            &profile,
            7,
            DisciplineSpec::DropTail,
            &FaultSpec::default(),
        );
        for k in 1..=3usize {
            assert_eq!(
                dense.trials[0].x_per_flow[k], subset.trials[0].x_per_flow[k],
                "cell k={k} differs between dense and subset measurement"
            );
            assert_eq!(
                dense.trials[0].cubic_per_flow[k],
                subset.trials[0].cubic_per_flow[k]
            );
        }
        assert!(subset.trials[0].x_per_flow[0].is_nan());
        assert!(subset.trials[0].x_per_flow[4].is_nan());
    }
}
