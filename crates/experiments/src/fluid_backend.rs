//! Lowering from [`Scenario`] to the `bbrdom-fluid` ODE backend.
//!
//! This module is the *validity-envelope gate*: it translates the
//! paper-unit scenario (Mbps, ms, BDP multiples) into the fluid model's
//! byte/second units — reusing the exact same
//! [`bbrdom_netsim::units::buffer_bytes`] lowering the DES uses, so both
//! backends see bit-identical buffer sizes — and rejects, with a typed
//! [`ConfigError::Unsupported`], every scenario feature the fluid
//! aggregate model cannot represent:
//!
//! * AQM disciplines (RED/CoDel) — the fluid queue is drop-tail only;
//! * fault injection (wire loss, outages, rate steps, delay spikes);
//! * finite (`byte_limit`) flows — fluid models backlogged aggregates;
//! * early-stop policies — the ODE horizon is already cheap;
//! * explicit multi-hop topologies — the fluid queue models exactly one
//!   bottleneck;
//! * CCAs outside {CUBIC, NewReno, BBR, BBRv2}.
//!
//! Anything rejected here must run on the DES backend; see DESIGN.md
//! ("Fluid backend — validity envelope") for the rationale.

use crate::scenario::{CcaKindSpec, Scenario};
use bbrdom_fluid::{FluidCca, FluidConfig, FluidError, FluidFlowSpec};
use bbrdom_netsim::{ConfigError, Rate, SimDuration, SimError, SimReport, SimTime};

/// Map a scenario CCA to its fluid counterpart, or name the unsupported
/// algorithm for the error message.
fn fluid_cca(spec: CcaKindSpec) -> Result<FluidCca, ConfigError> {
    FluidCca::from_name(spec.name()).ok_or(ConfigError::Unsupported {
        backend: "fluid",
        feature: match spec {
            CcaKindSpec::Copa => "the 'copa' algorithm",
            CcaKindSpec::Vivace => "the 'vivace' algorithm",
            CcaKindSpec::Vegas => "the 'vegas' algorithm",
            // Unreachable today (the four others all lower), but keeps
            // the message honest if the registry grows.
            _ => "this congestion-control algorithm",
        },
    })
}

/// Check the envelope and lower to a [`FluidConfig`] without running.
pub fn lower(scenario: &Scenario) -> Result<FluidConfig, SimError> {
    scenario.validate()?;
    let unsupported = |feature: &'static str| {
        SimError::Config(ConfigError::Unsupported {
            backend: "fluid",
            feature,
        })
    };
    if scenario.discipline != crate::scenario::DisciplineSpec::DropTail {
        return Err(unsupported("AQM queue disciplines (RED/CoDel)"));
    }
    if !scenario.faults.is_noop() {
        return Err(unsupported("fault injection"));
    }
    if scenario.early_stop.is_some() {
        return Err(unsupported("early-stop policies"));
    }
    if scenario.flows.iter().any(|f| f.byte_limit.is_some()) {
        return Err(unsupported("finite (byte-limited) flows"));
    }
    if scenario.workload.is_some() {
        return Err(unsupported("open-loop workloads"));
    }
    if scenario.topology.is_some() {
        return Err(unsupported("multi-hop topologies"));
    }
    let rate = Rate::from_mbps(scenario.mbps);
    let ref_rtt = SimDuration::from_secs_f64(scenario.reference_rtt_ms / 1e3);
    let buffer = bbrdom_netsim::units::buffer_bytes(rate, ref_rtt, scenario.buffer_bdp);
    let flows = scenario
        .flows
        .iter()
        .map(|f| {
            Ok(FluidFlowSpec {
                cca: fluid_cca(f.cca).map_err(SimError::Config)?,
                rtt_secs: f.rtt_ms / 1e3,
                start_secs: f.start_s,
            })
        })
        .collect::<Result<Vec<_>, SimError>>()?;
    Ok(FluidConfig {
        capacity_bytes_per_sec: rate.bytes_per_sec(),
        buffer_bytes: buffer as f64,
        duration_secs: scenario.duration_secs,
        seed: scenario.seed,
        flows,
    })
}

/// Run `scenario` on the fluid backend. `event_budget` bounds the
/// integration step count, mirroring the DES's livelock guard (the same
/// budget the engine uses for cache admission).
pub fn run_fluid(scenario: &Scenario, event_budget: Option<u64>) -> Result<SimReport, SimError> {
    let cfg = lower(scenario)?;
    let report = bbrdom_fluid::simulate(&cfg).map_err(|e| match e {
        FluidError::NoFlows => SimError::Config(ConfigError::NoFlows),
        // Scenario::validate has already screened numeric fields, so this
        // arm only fires on internal lowering bugs; surface it as the
        // nearest config error rather than panicking mid-sweep.
        FluidError::Invalid { field } => SimError::Config(ConfigError::NonFinite { field }),
        FluidError::Unsupported { feature } => SimError::Config(ConfigError::Unsupported {
            backend: "fluid",
            feature,
        }),
    })?;
    if let Some(budget) = event_budget {
        if report.events_processed > budget {
            return Err(SimError::EventBudgetExceeded {
                events: report.events_processed,
                sim_time: SimTime::from_secs_f64(scenario.duration_secs),
            });
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::BackendSpec;
    use bbrdom_cca::CcaKind;

    fn fluid_scenario() -> Scenario {
        Scenario::versus(50.0, 20.0, 2.0, 2, CcaKind::Bbr, 2, 10.0, 7)
            .with_backend(BackendSpec::Fluid)
    }

    #[test]
    fn lowering_matches_des_buffer_bytes() {
        let s = fluid_scenario();
        let cfg = lower(&s).unwrap();
        let rate = Rate::from_mbps(s.mbps);
        let ref_rtt = SimDuration::from_secs_f64(s.reference_rtt_ms / 1e3);
        let expect = bbrdom_netsim::units::buffer_bytes(rate, ref_rtt, s.buffer_bdp);
        assert_eq!(cfg.buffer_bytes, expect as f64);
        assert_eq!(cfg.capacity_bytes_per_sec, 50e6 / 8.0);
        assert_eq!(cfg.flows.len(), 4);
        assert_eq!(cfg.seed, 7);
    }

    #[test]
    fn event_budget_guards_the_step_count() {
        let s = fluid_scenario();
        let full = run_fluid(&s, None).unwrap();
        assert!(run_fluid(&s, Some(full.events_processed)).is_ok());
        let err = run_fluid(&s, Some(full.events_processed - 1)).unwrap_err();
        assert!(err.to_string().contains("event budget"), "{err}");
    }

    #[test]
    fn report_carries_flow_order_and_names() {
        let s = fluid_scenario();
        let report = run_fluid(&s, None).unwrap();
        let names: Vec<&str> = report.flows.iter().map(|f| f.cc_name.as_str()).collect();
        assert_eq!(names, ["cubic", "cubic", "bbr", "bbr"]);
        assert!(report
            .flows
            .iter()
            .all(|f| f.throughput_bytes_per_sec > 0.0));
    }
}
