//! Declarative experiment scenarios.
//!
//! A [`Scenario`] captures everything one simulator run needs — link,
//! buffer, flow list, duration, and a seed — and produces a
//! [`TrialResult`] with the measurements the figures consume. Seeds make
//! trials reproducible: the same scenario + seed is bit-identical.

use bbrdom_cca::CcaKind;
use bbrdom_netsim::json::{self, Value};
use bbrdom_netsim::{FlowConfig, Rate, SimConfig, SimDuration, SimTime, Simulator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One flow in a scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowSpec {
    /// Which congestion-control algorithm the flow runs.
    pub cca: CcaKindSpec,
    /// Base RTT in milliseconds.
    pub rtt_ms: f64,
    /// Application start time, seconds (on top of the seed jitter).
    pub start_s: f64,
    /// Finite transfer size in bytes (`None` = backlogged long flow).
    pub byte_limit: Option<u64>,
}

impl FlowSpec {
    /// A backlogged long flow starting at t≈0.
    pub fn long(cca: CcaKind, rtt_ms: f64) -> Self {
        FlowSpec {
            cca: cca.into(),
            rtt_ms,
            start_s: 0.0,
            byte_limit: None,
        }
    }

    /// A finite transfer of `bytes`, starting at `start_s`.
    pub fn short(cca: CcaKind, rtt_ms: f64, start_s: f64, bytes: u64) -> Self {
        FlowSpec {
            cca: cca.into(),
            rtt_ms,
            start_s,
            byte_limit: Some(bytes),
        }
    }
}

/// Serializable bottleneck queue discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DisciplineSpec {
    #[default]
    DropTail,
    /// RED with the classic parameterization for the buffer capacity.
    Red,
    /// CoDel with RFC 8289 defaults (5 ms / 100 ms).
    Codel,
}

impl DisciplineSpec {
    pub fn name(self) -> &'static str {
        match self {
            DisciplineSpec::DropTail => "droptail",
            DisciplineSpec::Red => "red",
            DisciplineSpec::Codel => "codel",
        }
    }

    /// Inverse of [`DisciplineSpec::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "droptail" => Some(DisciplineSpec::DropTail),
            "red" => Some(DisciplineSpec::Red),
            "codel" => Some(DisciplineSpec::Codel),
            _ => None,
        }
    }

    fn to_discipline(self, buffer_bytes: u64) -> bbrdom_netsim::QueueDiscipline {
        use bbrdom_netsim::{CodelConfig, QueueDiscipline, RedConfig};
        match self {
            DisciplineSpec::DropTail => QueueDiscipline::DropTail,
            DisciplineSpec::Red => QueueDiscipline::Red(RedConfig::for_capacity(buffer_bytes)),
            DisciplineSpec::Codel => QueueDiscipline::Codel(CodelConfig::default()),
        }
    }
}

/// Serializable mirror of [`CcaKind`] (keeps JSON naming out of the cca
/// crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CcaKindSpec {
    Cubic,
    NewReno,
    Bbr,
    BbrV2,
    Copa,
    Vivace,
    Vegas,
}

impl From<CcaKind> for CcaKindSpec {
    fn from(k: CcaKind) -> Self {
        match k {
            CcaKind::Cubic => CcaKindSpec::Cubic,
            CcaKind::NewReno => CcaKindSpec::NewReno,
            CcaKind::Bbr => CcaKindSpec::Bbr,
            CcaKind::BbrV2 => CcaKindSpec::BbrV2,
            CcaKind::Copa => CcaKindSpec::Copa,
            CcaKind::Vivace => CcaKindSpec::Vivace,
            CcaKind::Vegas => CcaKindSpec::Vegas,
        }
    }
}

impl From<CcaKindSpec> for CcaKind {
    fn from(k: CcaKindSpec) -> Self {
        match k {
            CcaKindSpec::Cubic => CcaKind::Cubic,
            CcaKindSpec::NewReno => CcaKind::NewReno,
            CcaKindSpec::Bbr => CcaKind::Bbr,
            CcaKindSpec::BbrV2 => CcaKind::BbrV2,
            CcaKindSpec::Copa => CcaKind::Copa,
            CcaKindSpec::Vivace => CcaKind::Vivace,
            CcaKindSpec::Vegas => CcaKind::Vegas,
        }
    }
}

impl CcaKindSpec {
    /// Lowercase wire name (matches `CcaKind::name`).
    pub fn name(self) -> &'static str {
        CcaKind::from(self).name()
    }

    /// Inverse of [`CcaKindSpec::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "cubic" => CcaKindSpec::Cubic,
            "newreno" => CcaKindSpec::NewReno,
            "bbr" => CcaKindSpec::Bbr,
            "bbrv2" => CcaKindSpec::BbrV2,
            "copa" => CcaKindSpec::Copa,
            "vivace" => CcaKindSpec::Vivace,
            "vegas" => CcaKindSpec::Vegas,
            _ => return None,
        })
    }
}

/// A complete, runnable experiment description.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Bottleneck rate, Mbps.
    pub mbps: f64,
    /// Buffer size in BDP multiples of the *reference RTT*.
    pub buffer_bdp: f64,
    /// Reference RTT (ms) used for the BDP normalization. For same-RTT
    /// scenarios this equals every flow's RTT; for multi-RTT scenarios
    /// the paper normalizes by the shortest RTT.
    pub reference_rtt_ms: f64,
    /// The flows.
    pub flows: Vec<FlowSpec>,
    /// Simulated seconds.
    pub duration_secs: f64,
    /// Trial seed: start-time jitter and per-flow CCA phase seeds.
    pub seed: u64,
    /// Bottleneck queue discipline (default drop-tail, as in the paper).
    pub discipline: DisciplineSpec,
}

/// Measurements from one run.
#[derive(Debug, Clone)]
pub struct TrialResult {
    /// Per-flow throughput, Mbps (same order as `Scenario::flows`).
    pub throughput_mbps: Vec<f64>,
    /// Per-flow CC names.
    pub cc_names: Vec<String>,
    /// Per-flow average bottleneck-buffer occupancy, bytes.
    pub avg_queue_occupancy_bytes: Vec<f64>,
    /// Per-flow congestion-event (back-off) timestamps, seconds.
    pub backoff_times_secs: Vec<Vec<f64>>,
    /// Average queuing delay, milliseconds.
    pub avg_queuing_delay_ms: f64,
    /// Link utilization over the measurement window.
    pub utilization: f64,
    /// Total drops at the bottleneck.
    pub dropped_packets: u64,
    /// Drops made by the AQM (RED/CoDel), if any.
    pub aqm_drops: u64,
    /// Per-flow completion time, seconds from flow start (finite flows
    /// that completed only).
    pub completion_times_secs: Vec<Option<f64>>,
}

impl Scenario {
    /// A same-RTT scenario with `n_cubic` CUBIC flows and `n_x` flows of
    /// algorithm `x` — the shape of most of the paper's experiments.
    #[allow(clippy::too_many_arguments)] // mirrors the paper's parameter list
    pub fn versus(
        mbps: f64,
        rtt_ms: f64,
        buffer_bdp: f64,
        n_cubic: u32,
        x: CcaKind,
        n_x: u32,
        duration_secs: f64,
        seed: u64,
    ) -> Self {
        let mut flows = Vec::with_capacity((n_cubic + n_x) as usize);
        for _ in 0..n_cubic {
            flows.push(FlowSpec::long(CcaKind::Cubic, rtt_ms));
        }
        for _ in 0..n_x {
            flows.push(FlowSpec::long(x, rtt_ms));
        }
        Scenario {
            mbps,
            buffer_bdp,
            reference_rtt_ms: rtt_ms,
            flows,
            duration_secs,
            seed,
            discipline: DisciplineSpec::DropTail,
        }
    }

    /// Replace the bottleneck discipline.
    pub fn with_discipline(mut self, d: DisciplineSpec) -> Self {
        self.discipline = d;
        self
    }

    /// Number of flows running `cca`.
    pub fn count_of(&self, cca: CcaKind) -> usize {
        let spec: CcaKindSpec = cca.into();
        self.flows.iter().filter(|f| f.cca == spec).count()
    }

    /// Build the configured simulator without running it. Exposed so the
    /// golden-seed regression harness (and any tool that wants the raw
    /// [`bbrdom_netsim::SimReport`]) shares the exact flow/jitter/seed
    /// wiring that [`Scenario::run`] uses.
    pub fn build_simulator(&self) -> Simulator {
        assert!(!self.flows.is_empty(), "scenario needs flows");
        let rate = Rate::from_mbps(self.mbps);
        let ref_rtt = SimDuration::from_secs_f64(self.reference_rtt_ms / 1e3);
        let buffer = bbrdom_netsim::units::buffer_bytes(rate, ref_rtt, self.buffer_bdp);
        let cfg = SimConfig::new(rate, buffer, SimDuration::from_secs_f64(self.duration_secs))
            .with_discipline(self.discipline.to_discipline(buffer))
            // 100 µs of ACK-path timing noise: real hosts are never
            // phase-locked; without this a deterministic simulator drops only
            // the growing flow's marginal packets and inverts TCP's RTT bias
            // (see `SimConfig::ack_jitter`).
            .with_ack_jitter(SimDuration::from_micros(100), self.seed);
        let mut sim = Simulator::new(cfg);
        let mut rng = StdRng::seed_from_u64(self.seed);
        for (i, f) in self.flows.iter().enumerate() {
            let kind: CcaKind = f.cca.into();
            // Per-flow phase seed: decorrelates BBR gain-cycle phases and
            // BBRv2 probe spacing across flows and across trials.
            let cca_seed = self.seed.wrapping_mul(1000).wrapping_add(i as u64);
            let cc = kind.build(cca_seed);
            let rtt = SimDuration::from_secs_f64(f.rtt_ms / 1e3);
            // The paper starts all flows simultaneously; we jitter within
            // one reference RTT so "simultaneous" trials still differ by
            // seed (the testbed's natural noise).
            let jitter = rng.gen_range(0.0..ref_rtt.as_secs_f64().max(1e-6));
            let mut fc =
                FlowConfig::new(cc, rtt).starting_at(SimTime::from_secs_f64(f.start_s + jitter));
            if let Some(limit) = f.byte_limit {
                fc = fc.with_byte_limit(limit);
            }
            sim.add_flow(fc);
        }
        sim
    }

    /// Run the scenario through the simulator.
    pub fn run(&self) -> TrialResult {
        let report = self.build_simulator().run();
        TrialResult {
            throughput_mbps: report.flows.iter().map(|f| f.throughput_mbps()).collect(),
            cc_names: report.flows.iter().map(|f| f.cc_name.clone()).collect(),
            avg_queue_occupancy_bytes: report
                .flows
                .iter()
                .map(|f| f.avg_queue_occupancy_bytes)
                .collect(),
            backoff_times_secs: report
                .flows
                .iter()
                .map(|f| f.backoff_times_secs.clone())
                .collect(),
            avg_queuing_delay_ms: report.queue.avg_queuing_delay_secs * 1e3,
            utilization: report.queue.utilization,
            dropped_packets: report.queue.dropped_packets,
            aqm_drops: report.queue.aqm_drops,
            completion_times_secs: report
                .flows
                .iter()
                .map(|f| f.completion_time_secs)
                .collect(),
        }
    }
}

impl FlowSpec {
    fn to_json_value(self) -> Value {
        let mut v = Value::object();
        v.set("cca", self.cca.name().into())
            .set("rtt_ms", self.rtt_ms.into())
            .set("start_s", self.start_s.into());
        v.set(
            "byte_limit",
            match self.byte_limit {
                Some(b) => Value::U64(b),
                None => Value::Null,
            },
        );
        v
    }

    fn from_json_value(v: &Value) -> Result<Self, String> {
        let cca_name = v
            .get("cca")
            .and_then(Value::as_str)
            .ok_or("flow missing 'cca'")?;
        Ok(FlowSpec {
            cca: CcaKindSpec::from_name(cca_name)
                .ok_or_else(|| format!("unknown cca '{cca_name}'"))?,
            rtt_ms: v
                .get("rtt_ms")
                .and_then(Value::as_f64)
                .ok_or("flow missing 'rtt_ms'")?,
            start_s: v.get("start_s").and_then(Value::as_f64).unwrap_or(0.0),
            byte_limit: v.get("byte_limit").and_then(Value::as_u64),
        })
    }
}

impl Scenario {
    /// Serialize to a compact JSON string (inverse of
    /// [`Scenario::from_json`]). Floats round-trip bit-exactly, so a
    /// stored scenario reproduces its trial bit-for-bit.
    pub fn to_json(&self) -> String {
        let mut v = Value::object();
        v.set("mbps", self.mbps.into())
            .set("buffer_bdp", self.buffer_bdp.into())
            .set("reference_rtt_ms", self.reference_rtt_ms.into())
            .set(
                "flows",
                Value::Array(self.flows.iter().map(|f| f.to_json_value()).collect()),
            )
            .set("duration_secs", self.duration_secs.into())
            .set("seed", self.seed.into())
            .set("discipline", self.discipline.name().into());
        v.to_json()
    }

    /// Parse a scenario serialized with [`Scenario::to_json`].
    /// `start_s`, `byte_limit`, and `discipline` may be omitted.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = json::parse(text).map_err(|e| e.to_string())?;
        let flows = v
            .get("flows")
            .and_then(Value::as_array)
            .ok_or("scenario missing 'flows'")?
            .iter()
            .map(FlowSpec::from_json_value)
            .collect::<Result<Vec<_>, _>>()?;
        let field = |name: &str| {
            v.get(name)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("scenario missing '{name}'"))
        };
        let discipline = match v.get("discipline").and_then(Value::as_str) {
            None => DisciplineSpec::DropTail,
            Some(name) => DisciplineSpec::from_name(name)
                .ok_or_else(|| format!("unknown discipline '{name}'"))?,
        };
        Ok(Scenario {
            mbps: field("mbps")?,
            buffer_bdp: field("buffer_bdp")?,
            reference_rtt_ms: field("reference_rtt_ms")?,
            flows,
            duration_secs: field("duration_secs")?,
            seed: v
                .get("seed")
                .and_then(Value::as_u64)
                .ok_or("scenario missing 'seed'")?,
            discipline,
        })
    }
}

impl TrialResult {
    /// Mean throughput (Mbps) over flows whose CC name matches.
    pub fn mean_throughput_of(&self, cc_name: &str) -> Option<f64> {
        let v: Vec<f64> = self
            .cc_names
            .iter()
            .zip(&self.throughput_mbps)
            .filter(|(n, _)| n.as_str() == cc_name)
            .map(|(_, t)| *t)
            .collect();
        if v.is_empty() {
            None
        } else {
            Some(v.iter().sum::<f64>() / v.len() as f64)
        }
    }

    /// Aggregate throughput (Mbps) over flows whose CC name matches.
    pub fn total_throughput_of(&self, cc_name: &str) -> f64 {
        self.cc_names
            .iter()
            .zip(&self.throughput_mbps)
            .filter(|(n, _)| n.as_str() == cc_name)
            .map(|(_, t)| *t)
            .sum()
    }

    /// Total throughput of all flows, Mbps.
    pub fn total_throughput(&self) -> f64 {
        self.throughput_mbps.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versus_builds_expected_flow_list() {
        let s = Scenario::versus(100.0, 40.0, 3.0, 5, CcaKind::Bbr, 5, 10.0, 1);
        assert_eq!(s.flows.len(), 10);
        assert_eq!(s.count_of(CcaKind::Cubic), 5);
        assert_eq!(s.count_of(CcaKind::Bbr), 5);
    }

    #[test]
    fn same_seed_same_result() {
        let s = Scenario::versus(10.0, 20.0, 2.0, 1, CcaKind::Bbr, 1, 5.0, 42);
        let a = s.run();
        let b = s.run();
        assert_eq!(a.throughput_mbps, b.throughput_mbps);
        assert_eq!(a.dropped_packets, b.dropped_packets);
    }

    #[test]
    fn different_seed_different_result() {
        let a = Scenario::versus(10.0, 20.0, 1.0, 1, CcaKind::Bbr, 1, 5.0, 1).run();
        let b = Scenario::versus(10.0, 20.0, 1.0, 1, CcaKind::Bbr, 1, 5.0, 2).run();
        // Throughputs are extremely unlikely to match bit-for-bit.
        assert_ne!(a.throughput_mbps, b.throughput_mbps);
    }

    #[test]
    fn result_accessors_aggregate_by_cc() {
        let s = Scenario::versus(10.0, 20.0, 2.0, 1, CcaKind::Bbr, 1, 5.0, 7);
        let r = s.run();
        let cubic = r.mean_throughput_of("cubic").unwrap();
        let bbr = r.mean_throughput_of("bbr").unwrap();
        assert!(cubic > 0.0 && bbr > 0.0);
        assert!(r.mean_throughput_of("copa").is_none());
        assert!((r.total_throughput() - cubic - bbr).abs() < 1e-9);
    }

    #[test]
    fn scenario_roundtrips_through_json() {
        let mut s = Scenario::versus(100.0, 40.0, 3.0, 2, CcaKind::Vivace, 3, 10.0, u64::MAX - 17)
            .with_discipline(DisciplineSpec::Codel);
        s.flows[0].byte_limit = Some(50_000);
        s.flows[1].start_s = 2.5;
        let back = Scenario::from_json(&s.to_json()).unwrap();
        assert_eq!(back.flows.len(), 5);
        assert_eq!(back.count_of(CcaKind::Vivace), 3);
        assert_eq!(back.seed, u64::MAX - 17);
        assert_eq!(back.discipline, DisciplineSpec::Codel);
        assert_eq!(back.flows[0].byte_limit, Some(50_000));
        assert_eq!(back.flows[1].start_s, 2.5);
        assert_eq!(back.mbps.to_bits(), s.mbps.to_bits());
    }

    #[test]
    fn scenario_from_json_defaults_and_errors() {
        let minimal = r#"{"mbps":10.0,"buffer_bdp":2.0,"reference_rtt_ms":20.0,
            "flows":[{"cca":"bbr","rtt_ms":20.0}],"duration_secs":3.0,"seed":1}"#;
        let s = Scenario::from_json(minimal).unwrap();
        assert_eq!(s.discipline, DisciplineSpec::DropTail);
        assert_eq!(s.flows[0].start_s, 0.0);
        assert_eq!(s.flows[0].byte_limit, None);

        assert!(Scenario::from_json("{}").is_err());
        assert!(Scenario::from_json("not json").is_err());
        let bad_cca = minimal.replace("\"bbr\"", "\"quic\"");
        assert!(Scenario::from_json(&bad_cca).unwrap_err().contains("quic"));
    }
}
