//! Declarative experiment scenarios.
//!
//! A [`Scenario`] captures everything one simulator run needs — link,
//! buffer, flow list, duration, and a seed — and produces a
//! [`TrialResult`] with the measurements the figures consume. Seeds make
//! trials reproducible: the same scenario + seed is bit-identical.

use bbrdom_cca::CcaKind;
use bbrdom_netsim::hash::{StableHash, StableHasher};
use bbrdom_netsim::json::{self, Value};
use bbrdom_netsim::{
    ConfigError, FaultSchedule, FlowConfig, Rate, SimConfig, SimDuration, SimError, SimTime,
    Simulator,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One flow in a scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowSpec {
    /// Which congestion-control algorithm the flow runs.
    pub cca: CcaKindSpec,
    /// Base RTT in milliseconds.
    pub rtt_ms: f64,
    /// Application start time, seconds (on top of the seed jitter).
    pub start_s: f64,
    /// Finite transfer size in bytes (`None` = backlogged long flow).
    pub byte_limit: Option<u64>,
}

impl FlowSpec {
    /// A backlogged long flow starting at t≈0.
    pub fn long(cca: CcaKind, rtt_ms: f64) -> Self {
        FlowSpec {
            cca: cca.into(),
            rtt_ms,
            start_s: 0.0,
            byte_limit: None,
        }
    }

    /// A finite transfer of `bytes`, starting at `start_s`.
    pub fn short(cca: CcaKind, rtt_ms: f64, start_s: f64, bytes: u64) -> Self {
        FlowSpec {
            cca: cca.into(),
            rtt_ms,
            start_s,
            byte_limit: Some(bytes),
        }
    }
}

/// Serializable bottleneck queue discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DisciplineSpec {
    #[default]
    DropTail,
    /// RED with the classic parameterization for the buffer capacity.
    Red,
    /// CoDel with RFC 8289 defaults (5 ms / 100 ms).
    Codel,
}

impl DisciplineSpec {
    pub fn name(self) -> &'static str {
        match self {
            DisciplineSpec::DropTail => "droptail",
            DisciplineSpec::Red => "red",
            DisciplineSpec::Codel => "codel",
        }
    }

    /// Inverse of [`DisciplineSpec::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "droptail" => Some(DisciplineSpec::DropTail),
            "red" => Some(DisciplineSpec::Red),
            "codel" => Some(DisciplineSpec::Codel),
            _ => None,
        }
    }

    fn to_discipline(self, buffer_bytes: u64) -> bbrdom_netsim::QueueDiscipline {
        use bbrdom_netsim::{CodelConfig, QueueDiscipline, RedConfig};
        match self {
            DisciplineSpec::DropTail => QueueDiscipline::DropTail,
            DisciplineSpec::Red => QueueDiscipline::Red(RedConfig::for_capacity(buffer_bytes)),
            DisciplineSpec::Codel => QueueDiscipline::Codel(CodelConfig::default()),
        }
    }
}

/// Serializable mirror of [`CcaKind`] (keeps JSON naming out of the cca
/// crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CcaKindSpec {
    Cubic,
    NewReno,
    Bbr,
    BbrV2,
    Copa,
    Vivace,
    Vegas,
}

impl From<CcaKind> for CcaKindSpec {
    fn from(k: CcaKind) -> Self {
        match k {
            CcaKind::Cubic => CcaKindSpec::Cubic,
            CcaKind::NewReno => CcaKindSpec::NewReno,
            CcaKind::Bbr => CcaKindSpec::Bbr,
            CcaKind::BbrV2 => CcaKindSpec::BbrV2,
            CcaKind::Copa => CcaKindSpec::Copa,
            CcaKind::Vivace => CcaKindSpec::Vivace,
            CcaKind::Vegas => CcaKindSpec::Vegas,
        }
    }
}

impl From<CcaKindSpec> for CcaKind {
    fn from(k: CcaKindSpec) -> Self {
        match k {
            CcaKindSpec::Cubic => CcaKind::Cubic,
            CcaKindSpec::NewReno => CcaKind::NewReno,
            CcaKindSpec::Bbr => CcaKind::Bbr,
            CcaKindSpec::BbrV2 => CcaKind::BbrV2,
            CcaKindSpec::Copa => CcaKind::Copa,
            CcaKindSpec::Vivace => CcaKind::Vivace,
            CcaKindSpec::Vegas => CcaKind::Vegas,
        }
    }
}

impl CcaKindSpec {
    /// Lowercase wire name (matches `CcaKind::name`).
    pub fn name(self) -> &'static str {
        CcaKind::from(self).name()
    }

    /// Inverse of [`CcaKindSpec::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "cubic" => CcaKindSpec::Cubic,
            "newreno" => CcaKindSpec::NewReno,
            "bbr" => CcaKindSpec::Bbr,
            "bbrv2" => CcaKindSpec::BbrV2,
            "copa" => CcaKindSpec::Copa,
            "vivace" => CcaKindSpec::Vivace,
            "vegas" => CcaKindSpec::Vegas,
            _ => return None,
        })
    }
}

/// Serializable path impairments for a scenario: seconds/Mbps-denominated
/// mirror of [`FaultSchedule`] (which uses integer-nanosecond sim types).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultSpec {
    /// Forward-path (data) random wire-loss probability, `[0, 1]`.
    pub loss_fwd: f64,
    /// Reverse-path (ACK) random wire-loss probability, `[0, 1]`.
    pub loss_ack: f64,
    /// Link outages: `(start_s, down_for_s)`.
    pub outages: Vec<(f64, f64)>,
    /// Capacity steps: `(start_s, new_mbps)`.
    pub rate_steps: Vec<(f64, f64)>,
    /// Delay spikes: `(start_s, length_s, extra_ms)` added to the
    /// forward path.
    pub delay_spikes: Vec<(f64, f64, f64)>,
}

impl FaultSpec {
    /// True when the spec injects nothing (a clean path).
    pub fn is_noop(&self) -> bool {
        self.loss_fwd == 0.0
            && self.loss_ack == 0.0
            && self.outages.is_empty()
            && self.rate_steps.is_empty()
            && self.delay_spikes.is_empty()
    }

    /// Lower to the simulator's [`FaultSchedule`]. The loss RNG is seeded
    /// from the trial seed so trials stay reproducible yet decorrelated.
    pub fn to_schedule(&self, seed: u64) -> FaultSchedule {
        let mut faults = FaultSchedule::none()
            .with_loss(self.loss_fwd)
            .with_ack_loss(self.loss_ack)
            .with_seed(seed.wrapping_mul(0x9E37_79B9).wrapping_add(1));
        for &(at, down) in &self.outages {
            faults =
                faults.with_outage(SimTime::from_secs_f64(at), SimDuration::from_secs_f64(down));
        }
        for &(at, mbps) in &self.rate_steps {
            faults = faults.with_rate_step(SimTime::from_secs_f64(at), Rate::from_mbps(mbps));
        }
        for &(at, len, extra_ms) in &self.delay_spikes {
            faults = faults.with_delay_spike(
                SimTime::from_secs_f64(at),
                SimDuration::from_secs_f64(len),
                SimDuration::from_secs_f64(extra_ms / 1e3),
            );
        }
        faults
    }

    fn to_json_value(&self) -> Value {
        let pair = |&(a, b): &(f64, f64)| Value::Array(vec![a.into(), b.into()]);
        let triple =
            |&(a, b, c): &(f64, f64, f64)| Value::Array(vec![a.into(), b.into(), c.into()]);
        let mut v = Value::object();
        v.set("loss_fwd", self.loss_fwd.into())
            .set("loss_ack", self.loss_ack.into())
            .set(
                "outages",
                Value::Array(self.outages.iter().map(pair).collect()),
            )
            .set(
                "rate_steps",
                Value::Array(self.rate_steps.iter().map(pair).collect()),
            )
            .set(
                "delay_spikes",
                Value::Array(self.delay_spikes.iter().map(triple).collect()),
            );
        v
    }

    fn from_json_value(v: &Value) -> Result<Self, String> {
        fn nums(v: &Value, want: usize, what: &str) -> Result<Vec<f64>, String> {
            let arr = v
                .as_array()
                .filter(|a| a.len() == want)
                .ok_or_else(|| format!("fault {what} must be a {want}-element array"))?;
            arr.iter()
                .map(|x| x.as_f64().ok_or_else(|| format!("non-numeric {what}")))
                .collect()
        }
        fn list<T>(
            v: &Value,
            key: &str,
            f: impl Fn(&Value) -> Result<T, String>,
        ) -> Result<Vec<T>, String> {
            match v.get(key) {
                None => Ok(Vec::new()),
                Some(x) => x
                    .as_array()
                    .ok_or_else(|| format!("fault '{key}' must be an array"))?
                    .iter()
                    .map(f)
                    .collect(),
            }
        }
        Ok(FaultSpec {
            loss_fwd: v.get("loss_fwd").and_then(Value::as_f64).unwrap_or(0.0),
            loss_ack: v.get("loss_ack").and_then(Value::as_f64).unwrap_or(0.0),
            outages: list(v, "outages", |x| nums(x, 2, "outage").map(|n| (n[0], n[1])))?,
            rate_steps: list(v, "rate_steps", |x| {
                nums(x, 2, "rate step").map(|n| (n[0], n[1]))
            })?,
            delay_spikes: list(v, "delay_spikes", |x| {
                nums(x, 3, "delay spike").map(|n| (n[0], n[1], n[2]))
            })?,
        })
    }
}

/// Serializable early-stop policy: a seconds-denominated mirror of the
/// simulator's [`bbrdom_netsim::EarlyStop`] (which uses integer-nanosecond
/// sim types). Attached per scenario so the stop policy travels with the
/// run's identity — it feeds the engine's content hash, keeping
/// early-stopped and fixed-horizon results apart in the cache.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EarlyStopSpec {
    /// Maximum relative window-to-window per-flow goodput delta that
    /// still counts as steady.
    pub epsilon: f64,
    /// Consecutive steady windows required before stopping.
    pub dwell: u32,
    /// Width of each goodput window, seconds.
    pub window_secs: f64,
    /// Never stop before this much simulated time, seconds.
    pub min_secs: f64,
}

impl EarlyStopSpec {
    /// Policy with the given threshold and dwell and the simulator's
    /// default 1-second window / 3-second floor.
    pub fn new(epsilon: f64, dwell: u32) -> Self {
        EarlyStopSpec {
            epsilon,
            dwell,
            window_secs: 1.0,
            min_secs: 3.0,
        }
    }

    /// Lower to the simulator's policy type.
    pub fn to_policy(self) -> bbrdom_netsim::EarlyStop {
        bbrdom_netsim::EarlyStop {
            window: SimDuration::from_secs_f64(self.window_secs),
            epsilon: self.epsilon,
            dwell: self.dwell,
            min_time: SimDuration::from_secs_f64(self.min_secs),
        }
    }

    fn to_json_value(self) -> Value {
        let mut v = Value::object();
        v.set("epsilon", self.epsilon.into())
            .set("dwell", Value::U64(self.dwell as u64))
            .set("window_secs", self.window_secs.into())
            .set("min_secs", self.min_secs.into());
        v
    }

    fn from_json_value(v: &Value) -> Result<Self, String> {
        let field = |name: &str| {
            v.get(name)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("early_stop missing '{name}'"))
        };
        Ok(EarlyStopSpec {
            epsilon: field("epsilon")?,
            dwell: v
                .get("dwell")
                .and_then(Value::as_u64)
                .ok_or("early_stop missing 'dwell'")? as u32,
            window_secs: field("window_secs")?,
            min_secs: field("min_secs")?,
        })
    }
}

/// Arrival process of an open-loop workload, in paper units (seconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalSpec {
    /// Memoryless arrivals at `rate_per_sec` flows per second.
    Poisson { rate_per_sec: f64 },
    /// One arrival every `interval_s` seconds, exactly.
    Deterministic { interval_s: f64 },
}

/// Flow-size model of an open-loop workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SizeSpec {
    /// Every flow transfers exactly `bytes`.
    Fixed { bytes: u64 },
    /// Bounded Pareto on `[min_bytes, max_bytes]` with tail index
    /// `alpha` (heavy-tailed web-transfer sizes).
    Pareto {
        alpha: f64,
        min_bytes: u64,
        max_bytes: u64,
    },
}

/// An open-loop background workload attached to a scenario
/// (`repro --workload`): finite flows of one CCA arriving during the
/// run, torn down on completion, reported in aggregate as per-CCA FCT
/// percentiles. Serializable mirror of
/// [`bbrdom_netsim::WorkloadConfig`], in the paper's units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// CCA run by every workload flow.
    pub cca: CcaKindSpec,
    /// When new flows arrive.
    pub arrival: ArrivalSpec,
    /// How large each flow is.
    pub size: SizeSpec,
    /// Base RTT (ms) of the workload flows' path.
    pub rtt_ms: f64,
}

impl WorkloadSpec {
    /// Poisson arrivals of fixed-size transfers.
    pub fn poisson_fixed(cca: CcaKind, rate_per_sec: f64, bytes: u64, rtt_ms: f64) -> Self {
        WorkloadSpec {
            cca: cca.into(),
            arrival: ArrivalSpec::Poisson { rate_per_sec },
            size: SizeSpec::Fixed { bytes },
            rtt_ms,
        }
    }

    /// Poisson arrivals of web-like transfers: bounded Pareto with the
    /// classic heavy-tail index α = 1.2 on 10 kB–1 MB.
    pub fn web(cca: CcaKind, rate_per_sec: f64, rtt_ms: f64) -> Self {
        WorkloadSpec {
            cca: cca.into(),
            arrival: ArrivalSpec::Poisson { rate_per_sec },
            size: SizeSpec::Pareto {
                alpha: 1.2,
                min_bytes: 10_000,
                max_bytes: 1_000_000,
            },
            rtt_ms,
        }
    }

    /// Lower to the simulator's workload config. The workload RNG-stream
    /// seed is derived from the trial seed through the stable hash, so it
    /// can never collide with the ACK-jitter, fault-loss, or CCA-phase
    /// seed formulas (which are all small affine maps of the same seed).
    pub fn to_config(&self, trial_seed: u64) -> bbrdom_netsim::WorkloadConfig {
        let arrivals = match self.arrival {
            ArrivalSpec::Poisson { rate_per_sec } => {
                bbrdom_netsim::ArrivalProcess::Poisson { rate_per_sec }
            }
            ArrivalSpec::Deterministic { interval_s } => {
                bbrdom_netsim::ArrivalProcess::Deterministic {
                    interval: SimDuration::from_secs_f64(interval_s),
                }
            }
        };
        let sizes = match self.size {
            SizeSpec::Fixed { bytes } => bbrdom_netsim::SizeDist::Fixed { bytes },
            SizeSpec::Pareto {
                alpha,
                min_bytes,
                max_bytes,
            } => bbrdom_netsim::SizeDist::BoundedPareto {
                alpha,
                min_bytes,
                max_bytes,
            },
        };
        let mut h = StableHasher::new();
        h.write_bytes(b"workload-stream");
        trial_seed.stable_hash(&mut h);
        bbrdom_netsim::WorkloadConfig::new(
            arrivals,
            sizes,
            SimDuration::from_secs_f64(self.rtt_ms / 1e3),
            h.finish() as u64,
        )
    }

    fn validate(&self, trial_seed: u64) -> Result<(), ConfigError> {
        if !self.rtt_ms.is_finite() || self.rtt_ms <= 0.0 {
            return Err(ConfigError::NonPositive {
                field: "workload rtt_ms",
            });
        }
        if let ArrivalSpec::Deterministic { interval_s } = self.arrival {
            if !interval_s.is_finite() || interval_s <= 0.0 {
                return Err(ConfigError::NonPositive {
                    field: "workload arrival interval",
                });
            }
        }
        if let ArrivalSpec::Poisson { rate_per_sec } = self.arrival {
            if !rate_per_sec.is_finite() || rate_per_sec <= 0.0 {
                return Err(ConfigError::NonPositive {
                    field: "workload arrival rate",
                });
            }
        }
        self.to_config(trial_seed).validate()
    }

    fn to_json_value(self) -> Value {
        let mut v = Value::object();
        v.set("cca", self.cca.name().into());
        match self.arrival {
            ArrivalSpec::Poisson { rate_per_sec } => {
                v.set("poisson_per_sec", rate_per_sec.into());
            }
            ArrivalSpec::Deterministic { interval_s } => {
                v.set("interval_s", interval_s.into());
            }
        }
        match self.size {
            SizeSpec::Fixed { bytes } => {
                v.set("fixed_bytes", Value::U64(bytes));
            }
            SizeSpec::Pareto {
                alpha,
                min_bytes,
                max_bytes,
            } => {
                v.set("pareto_alpha", alpha.into())
                    .set("min_bytes", Value::U64(min_bytes))
                    .set("max_bytes", Value::U64(max_bytes));
            }
        }
        v.set("rtt_ms", self.rtt_ms.into());
        v
    }

    fn from_json_value(v: &Value) -> Result<Self, String> {
        let cca_name = v
            .get("cca")
            .and_then(Value::as_str)
            .ok_or("workload missing 'cca'")?;
        let cca = CcaKindSpec::from_name(cca_name)
            .ok_or_else(|| format!("unknown workload cca '{cca_name}'"))?;
        let arrival = if let Some(rate) = v.get("poisson_per_sec").and_then(Value::as_f64) {
            ArrivalSpec::Poisson { rate_per_sec: rate }
        } else if let Some(gap) = v.get("interval_s").and_then(Value::as_f64) {
            ArrivalSpec::Deterministic { interval_s: gap }
        } else {
            return Err("workload missing arrival process".to_string());
        };
        let size = if let Some(bytes) = v.get("fixed_bytes").and_then(Value::as_u64) {
            SizeSpec::Fixed { bytes }
        } else if let Some(alpha) = v.get("pareto_alpha").and_then(Value::as_f64) {
            SizeSpec::Pareto {
                alpha,
                min_bytes: v
                    .get("min_bytes")
                    .and_then(Value::as_u64)
                    .ok_or("workload pareto missing 'min_bytes'")?,
                max_bytes: v
                    .get("max_bytes")
                    .and_then(Value::as_u64)
                    .ok_or("workload pareto missing 'max_bytes'")?,
            }
        } else {
            return Err("workload missing size model".to_string());
        };
        Ok(WorkloadSpec {
            cca,
            arrival,
            size,
            rtt_ms: v
                .get("rtt_ms")
                .and_then(Value::as_f64)
                .ok_or("workload missing 'rtt_ms'")?,
        })
    }
}

/// One directed link of a scenario-level topology, in paper units
/// (Mbps / ms / BDP multiples). Endpoints are node *names*, resolved to
/// indices when the spec is lowered to the simulator's
/// [`bbrdom_netsim::Topology`].
#[derive(Debug, Clone, PartialEq)]
pub struct TopoLinkSpec {
    /// Source node name (must appear in [`TopologySpec::nodes`]).
    pub from: String,
    /// Destination node name.
    pub to: String,
    /// `Some(mbps)` makes this a rated link (it owns a queue and
    /// serializes packets); `None` makes it a delay-only wire.
    pub mbps: Option<f64>,
    /// One-way propagation delay, milliseconds.
    pub delay_ms: f64,
    /// Queue capacity in BDP multiples of (own rate × the scenario's
    /// reference RTT); ignored for delay-only wires.
    pub buffer_bdp: f64,
}

impl TopoLinkSpec {
    /// A rated (serializing) link.
    pub fn rated(from: &str, to: &str, mbps: f64, delay_ms: f64, buffer_bdp: f64) -> Self {
        TopoLinkSpec {
            from: from.to_string(),
            to: to.to_string(),
            mbps: Some(mbps),
            delay_ms,
            buffer_bdp,
        }
    }

    /// A delay-only wire.
    pub fn wire(from: &str, to: &str, delay_ms: f64) -> Self {
        TopoLinkSpec {
            from: from.to_string(),
            to: to.to_string(),
            mbps: None,
            delay_ms,
            buffer_bdp: 0.0,
        }
    }
}

/// An explicit multi-bottleneck topology attached to a scenario: named
/// nodes, directed links, and static routes (ordered link-index lists).
/// Serializable mirror of [`bbrdom_netsim::Topology`] in the paper's
/// units; [`TopologySpec::lower`] validates everything up front and
/// returns typed [`ConfigError::InvalidTopology`] errors instead of
/// panicking.
///
/// A scenario without a topology (the default) runs the legacy implicit
/// dumbbell; [`Scenario::with_equivalent_topology`] re-expresses that
/// dumbbell explicitly, which is proven bit-identical by the
/// `topology_equivalence` suite.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologySpec {
    /// Node names; link endpoints refer to these.
    pub nodes: Vec<String>,
    /// The directed links.
    pub links: Vec<TopoLinkSpec>,
    /// Routes, each an ordered list of link indices forming a connected
    /// forward path.
    pub routes: Vec<Vec<usize>>,
    /// Route of configured flow `i`. Empty means every flow follows
    /// route `0`; when non-empty its length must equal the flow count.
    pub flow_routes: Vec<usize>,
    /// Route taken by open-loop workload flows (`None` rejects workload
    /// configs with a typed error).
    pub workload_route: Option<usize>,
    /// Rated link targeted by link-level faults (`None` targets the
    /// first rated link of route `0`).
    pub fault_link: Option<usize>,
}

impl TopologySpec {
    /// The legacy dumbbell as an explicit 4-node / 3-link topology:
    /// zero-delay access wire, the rated bottleneck, zero-delay egress
    /// wire. Lowers to exactly what the implicit dumbbell builds, so
    /// runs are bit-identical to the legacy single-queue path.
    pub fn dumbbell(mbps: f64, buffer_bdp: f64) -> Self {
        TopologySpec {
            nodes: vec![
                "src".to_string(),
                "in".to_string(),
                "out".to_string(),
                "dst".to_string(),
            ],
            links: vec![
                TopoLinkSpec::wire("src", "in", 0.0),
                TopoLinkSpec::rated("in", "out", mbps, 0.0, buffer_bdp),
                TopoLinkSpec::wire("out", "dst", 0.0),
            ],
            routes: vec![vec![0, 1, 2]],
            flow_routes: Vec::new(),
            workload_route: Some(0),
            fault_link: None,
        }
    }

    /// A parking-lot chain of `hops` equal bottlenecks in series. Route
    /// `0` traverses the whole chain; route `1 + h` covers only hop `h`,
    /// for cross-traffic that shares just that bottleneck with the long
    /// flows.
    pub fn parking_lot(hops: u32, mbps: f64, per_hop_delay_ms: f64, buffer_bdp: f64) -> Self {
        let nodes: Vec<String> = (0..=hops).map(|i| format!("n{i}")).collect();
        let links = (0..hops as usize)
            .map(|h| {
                TopoLinkSpec::rated(&nodes[h], &nodes[h + 1], mbps, per_hop_delay_ms, buffer_bdp)
            })
            .collect();
        let mut routes = vec![(0..hops as usize).collect::<Vec<usize>>()];
        routes.extend((0..hops as usize).map(|h| vec![h]));
        TopologySpec {
            nodes,
            links,
            routes,
            flow_routes: Vec::new(),
            workload_route: Some(0),
            fault_link: None,
        }
    }

    /// Validate and lower to the simulator's [`bbrdom_netsim::Topology`].
    /// `ref_rtt` is the scenario's reference RTT, used for the same
    /// BDP-to-bytes buffer lowering the implicit dumbbell applies
    /// ([`bbrdom_netsim::units::buffer_bytes`]), so an explicit dumbbell
    /// gets a bit-identical buffer.
    pub fn lower(&self, ref_rtt: SimDuration) -> Result<bbrdom_netsim::Topology, ConfigError> {
        let bad = |reason: String| ConfigError::InvalidTopology { reason };
        let mut index = std::collections::HashMap::new();
        for (i, name) in self.nodes.iter().enumerate() {
            if index.insert(name.as_str(), i as u32).is_some() {
                return Err(bad(format!("duplicate node name '{name}'")));
            }
        }
        let mut links = Vec::with_capacity(self.links.len());
        for (i, l) in self.links.iter().enumerate() {
            let node = |name: &str| {
                index
                    .get(name)
                    .copied()
                    .ok_or_else(|| bad(format!("link {i} references unknown node '{name}'")))
            };
            let from = node(&l.from)?;
            let to = node(&l.to)?;
            if !l.delay_ms.is_finite() || l.delay_ms < 0.0 {
                return Err(bad(format!("link {i} delay_ms must be finite and >= 0")));
            }
            let delay = SimDuration::from_secs_f64(l.delay_ms / 1e3);
            links.push(match l.mbps {
                None => bbrdom_netsim::LinkSpec::wire(from, to, delay),
                Some(mbps) => {
                    // Screen before Rate::from_mbps, which asserts > 0.
                    if !mbps.is_finite() || mbps <= 0.0 {
                        return Err(bad(format!("link {i} mbps must be positive and finite")));
                    }
                    if !l.buffer_bdp.is_finite() || l.buffer_bdp <= 0.0 {
                        return Err(bad(format!(
                            "link {i} buffer_bdp must be positive and finite"
                        )));
                    }
                    let rate = Rate::from_mbps(mbps);
                    let buffer = bbrdom_netsim::units::buffer_bytes(rate, ref_rtt, l.buffer_bdp);
                    bbrdom_netsim::LinkSpec::rated(from, to, rate, delay, buffer)
                }
            });
        }
        let topo = bbrdom_netsim::Topology {
            n_nodes: self.nodes.len() as u32,
            links,
            routes: self
                .routes
                .iter()
                .map(|r| r.iter().map(|&l| l as u32).collect())
                .collect(),
            flow_routes: self.flow_routes.iter().map(|&r| r as u32).collect(),
            workload_route: self.workload_route.map(|r| r as u32),
            fault_link: self.fault_link.map(|l| l as u32),
        };
        topo.validate()?;
        Ok(topo)
    }

    fn to_json_value(&self) -> Value {
        let mut v = Value::object();
        v.set(
            "nodes",
            Value::Array(self.nodes.iter().map(|n| Value::Str(n.clone())).collect()),
        )
        .set(
            "links",
            Value::Array(
                self.links
                    .iter()
                    .map(|l| {
                        let mut lv = Value::object();
                        lv.set("from", l.from.as_str().into())
                            .set("to", l.to.as_str().into());
                        if let Some(mbps) = l.mbps {
                            lv.set("mbps", mbps.into());
                        }
                        lv.set("delay_ms", l.delay_ms.into())
                            .set("buffer_bdp", l.buffer_bdp.into());
                        lv
                    })
                    .collect(),
            ),
        )
        .set(
            "routes",
            Value::Array(
                self.routes
                    .iter()
                    .map(|r| Value::Array(r.iter().map(|&l| Value::U64(l as u64)).collect()))
                    .collect(),
            ),
        );
        if !self.flow_routes.is_empty() {
            v.set(
                "flow_routes",
                Value::Array(
                    self.flow_routes
                        .iter()
                        .map(|&r| Value::U64(r as u64))
                        .collect(),
                ),
            );
        }
        if let Some(wr) = self.workload_route {
            v.set("workload_route", Value::U64(wr as u64));
        }
        if let Some(fl) = self.fault_link {
            v.set("fault_link", Value::U64(fl as u64));
        }
        v
    }

    fn from_json_value(v: &Value) -> Result<Self, String> {
        fn indices(v: &Value, what: &str) -> Result<Vec<usize>, String> {
            v.as_array()
                .ok_or_else(|| format!("{what} must be an array"))?
                .iter()
                .map(|x| {
                    x.as_u64()
                        .map(|n| n as usize)
                        .ok_or_else(|| format!("non-integer entry in {what}"))
                })
                .collect()
        }
        let nodes = v
            .get("nodes")
            .and_then(Value::as_array)
            .ok_or("topology missing 'nodes'")?
            .iter()
            .map(|n| {
                n.as_str()
                    .map(String::from)
                    .ok_or_else(|| "non-string node name".to_string())
            })
            .collect::<Result<Vec<_>, _>>()?;
        let links = v
            .get("links")
            .and_then(Value::as_array)
            .ok_or("topology missing 'links'")?
            .iter()
            .map(|l| {
                let name = |key: &str| {
                    l.get(key)
                        .and_then(Value::as_str)
                        .map(String::from)
                        .ok_or_else(|| format!("topology link missing '{key}'"))
                };
                Ok(TopoLinkSpec {
                    from: name("from")?,
                    to: name("to")?,
                    mbps: l.get("mbps").and_then(Value::as_f64),
                    delay_ms: l
                        .get("delay_ms")
                        .and_then(Value::as_f64)
                        .ok_or_else(|| "topology link missing 'delay_ms'".to_string())?,
                    buffer_bdp: l.get("buffer_bdp").and_then(Value::as_f64).unwrap_or(0.0),
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let routes = v
            .get("routes")
            .and_then(Value::as_array)
            .ok_or("topology missing 'routes'")?
            .iter()
            .map(|r| indices(r, "topology route"))
            .collect::<Result<Vec<_>, _>>()?;
        let flow_routes = match v.get("flow_routes") {
            None => Vec::new(),
            Some(fr) => indices(fr, "topology flow_routes")?,
        };
        Ok(TopologySpec {
            nodes,
            links,
            routes,
            flow_routes,
            workload_route: v
                .get("workload_route")
                .and_then(Value::as_u64)
                .map(|r| r as usize),
            fault_link: v
                .get("fault_link")
                .and_then(Value::as_u64)
                .map(|l| l as usize),
        })
    }
}

/// Which simulation backend executes a scenario.
///
/// * [`BackendSpec::Des`] — the packet-level discrete-event simulator
///   (`bbrdom-netsim`): the ground truth, faithful to per-packet loss,
///   retransmission, and queue microstructure. Seconds per run.
/// * [`BackendSpec::Fluid`] — the `bbrdom-fluid` ODE aggregate model:
///   steady-state throughput shares only, microseconds per run, valid
///   for drop-tail + clean-path + backlogged CUBIC/NewReno/BBR/BBRv2
///   scenarios (anything else is rejected with
///   [`ConfigError::Unsupported`]).
///
/// The backend is part of a scenario's *identity*: it feeds the JSON
/// serialization and the engine's content hash, so a fluid result can
/// never alias a DES result in the cache.
///
/// ```
/// use bbrdom_experiments::scenario::BackendSpec;
/// assert_eq!(BackendSpec::from_name("fluid"), Some(BackendSpec::Fluid));
/// assert_eq!(BackendSpec::Fluid.name(), "fluid");
/// assert_eq!(BackendSpec::default(), BackendSpec::Des);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BackendSpec {
    /// Packet-level discrete-event simulation (the default).
    #[default]
    Des,
    /// Fluid/ODE aggregate model (fast, envelope-restricted).
    Fluid,
}

impl BackendSpec {
    /// Wire name used by `--backend` and the JSON serialization.
    pub fn name(self) -> &'static str {
        match self {
            BackendSpec::Des => "des",
            BackendSpec::Fluid => "fluid",
        }
    }

    /// Inverse of [`BackendSpec::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "des" => Some(BackendSpec::Des),
            "fluid" => Some(BackendSpec::Fluid),
            _ => None,
        }
    }
}

/// A complete, runnable experiment description.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Bottleneck rate, Mbps.
    pub mbps: f64,
    /// Buffer size in BDP multiples of the *reference RTT*.
    pub buffer_bdp: f64,
    /// Reference RTT (ms) used for the BDP normalization. For same-RTT
    /// scenarios this equals every flow's RTT; for multi-RTT scenarios
    /// the paper normalizes by the shortest RTT.
    pub reference_rtt_ms: f64,
    /// The flows.
    pub flows: Vec<FlowSpec>,
    /// Simulated seconds.
    pub duration_secs: f64,
    /// Trial seed: start-time jitter and per-flow CCA phase seeds.
    pub seed: u64,
    /// Bottleneck queue discipline (default drop-tail, as in the paper).
    pub discipline: DisciplineSpec,
    /// Path impairments (default: none — the paper's clean testbed).
    pub faults: FaultSpec,
    /// Opt-in convergence-aware early termination (default: none — run
    /// the full fixed horizon, bit-identical to historical behavior).
    pub early_stop: Option<EarlyStopSpec>,
    /// Which simulator executes the scenario (default: the packet DES).
    pub backend: BackendSpec,
    /// Opt-in open-loop background workload (default: none — only the
    /// declared flows run, bit-identical to historical behavior).
    pub workload: Option<WorkloadSpec>,
    /// Opt-in explicit multi-bottleneck topology (default: none — the
    /// legacy implicit dumbbell, bit-identical to historical behavior).
    pub topology: Option<TopologySpec>,
}

/// Measurements from one run.
#[derive(Debug, Clone)]
pub struct TrialResult {
    /// Per-flow throughput, Mbps (same order as `Scenario::flows`).
    pub throughput_mbps: Vec<f64>,
    /// Per-flow CC names.
    pub cc_names: Vec<String>,
    /// Per-flow average bottleneck-buffer occupancy, bytes.
    pub avg_queue_occupancy_bytes: Vec<f64>,
    /// Per-flow congestion-event (back-off) timestamps, seconds.
    pub backoff_times_secs: Vec<Vec<f64>>,
    /// Average queuing delay, milliseconds.
    pub avg_queuing_delay_ms: f64,
    /// Link utilization over the measurement window.
    pub utilization: f64,
    /// Total drops at the bottleneck.
    pub dropped_packets: u64,
    /// Drops made by the AQM (RED/CoDel), if any.
    pub aqm_drops: u64,
    /// Per-flow completion time, seconds from flow start (finite flows
    /// that completed only).
    pub completion_times_secs: Vec<Option<f64>>,
    /// Open-loop workload flows spawned (0 when no workload is attached).
    pub workload_spawned: u64,
    /// Workload flows that delivered their full size in time.
    pub workload_completed: u64,
    /// Per-CCA FCT percentiles of the completed workload flows.
    pub workload_fct: Vec<bbrdom_netsim::FctPercentiles>,
}

impl Scenario {
    /// A same-RTT scenario with `n_cubic` CUBIC flows and `n_x` flows of
    /// algorithm `x` — the shape of most of the paper's experiments.
    #[allow(clippy::too_many_arguments)] // mirrors the paper's parameter list
    pub fn versus(
        mbps: f64,
        rtt_ms: f64,
        buffer_bdp: f64,
        n_cubic: u32,
        x: CcaKind,
        n_x: u32,
        duration_secs: f64,
        seed: u64,
    ) -> Self {
        let mut flows = Vec::with_capacity((n_cubic + n_x) as usize);
        for _ in 0..n_cubic {
            flows.push(FlowSpec::long(CcaKind::Cubic, rtt_ms));
        }
        for _ in 0..n_x {
            flows.push(FlowSpec::long(x, rtt_ms));
        }
        Scenario {
            mbps,
            buffer_bdp,
            reference_rtt_ms: rtt_ms,
            flows,
            duration_secs,
            seed,
            discipline: DisciplineSpec::DropTail,
            faults: FaultSpec::default(),
            early_stop: None,
            backend: BackendSpec::Des,
            workload: None,
            topology: None,
        }
    }

    /// Replace the bottleneck discipline.
    pub fn with_discipline(mut self, d: DisciplineSpec) -> Self {
        self.discipline = d;
        self
    }

    /// Attach path impairments.
    pub fn with_faults(mut self, faults: FaultSpec) -> Self {
        self.faults = faults;
        self
    }

    /// Attach a convergence-aware early-stop policy.
    pub fn with_early_stop(mut self, spec: Option<EarlyStopSpec>) -> Self {
        self.early_stop = spec;
        self
    }

    /// Select the simulation backend.
    ///
    /// ```
    /// use bbrdom_cca::CcaKind;
    /// use bbrdom_experiments::scenario::{BackendSpec, Scenario};
    ///
    /// let fluid = Scenario::versus(50.0, 20.0, 2.0, 1, CcaKind::Bbr, 1, 10.0, 1)
    ///     .with_backend(BackendSpec::Fluid);
    /// let r = fluid.run(); // microseconds, not seconds
    /// assert_eq!(r.throughput_mbps.len(), 2);
    /// assert!(r.total_throughput() > 0.5 * 50.0);
    /// ```
    pub fn with_backend(mut self, backend: BackendSpec) -> Self {
        self.backend = backend;
        self
    }

    /// Attach (or detach) an open-loop background workload.
    pub fn with_workload(mut self, workload: Option<WorkloadSpec>) -> Self {
        self.workload = workload;
        self
    }

    /// Attach (or detach) an explicit multi-bottleneck topology.
    pub fn with_topology(mut self, topology: Option<TopologySpec>) -> Self {
        self.topology = topology;
        self
    }

    /// Re-express the scenario's implicit dumbbell as an explicit
    /// 4-node / 3-link topology. The run is bit-identical to the legacy
    /// single-queue path (the `topology_equivalence` suite proves it);
    /// only the content hash moves, so a topology-bearing scenario is a
    /// distinct cache key.
    pub fn with_equivalent_topology(self) -> Self {
        let topo = TopologySpec::dumbbell(self.mbps, self.buffer_bdp);
        self.with_topology(Some(topo))
    }

    /// Validate the scenario without running it.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.flows.is_empty() && self.workload.is_none() {
            return Err(ConfigError::NoFlows);
        }
        for (name, v) in [
            ("mbps", self.mbps),
            ("buffer_bdp", self.buffer_bdp),
            ("reference_rtt_ms", self.reference_rtt_ms),
            ("duration_secs", self.duration_secs),
        ] {
            if !v.is_finite() {
                return Err(ConfigError::NonFinite { field: name });
            }
            if v <= 0.0 {
                return Err(ConfigError::NonPositive { field: name });
            }
        }
        for f in &self.flows {
            if !f.rtt_ms.is_finite() || f.rtt_ms <= 0.0 {
                return Err(ConfigError::NonPositive {
                    field: "flow rtt_ms",
                });
            }
            if !f.start_s.is_finite() || f.start_s < 0.0 {
                return Err(ConfigError::NonFinite {
                    field: "flow start_s",
                });
            }
            if f.byte_limit == Some(0) {
                return Err(ConfigError::NonPositive {
                    field: "flow byte_limit",
                });
            }
        }
        if let Some(wl) = &self.workload {
            wl.validate(self.seed)?;
        }
        if let Some(t) = &self.topology {
            t.lower(SimDuration::from_secs_f64(self.reference_rtt_ms / 1e3))?;
            if !t.flow_routes.is_empty() && t.flow_routes.len() != self.flows.len() {
                return Err(ConfigError::InvalidTopology {
                    reason: format!(
                        "flow_routes has {} entries for {} flows",
                        t.flow_routes.len(),
                        self.flows.len()
                    ),
                });
            }
            if self.early_stop.is_some() {
                return Err(ConfigError::Unsupported {
                    backend: "multi-hop topology",
                    feature: "convergence early-stop",
                });
            }
            if self.workload.is_some() && t.workload_route.is_none() {
                return Err(ConfigError::InvalidTopology {
                    reason: "an open-loop workload needs workload_route".into(),
                });
            }
        }
        self.faults.to_schedule(self.seed).validate()
    }

    /// Number of flows running `cca`.
    pub fn count_of(&self, cca: CcaKind) -> usize {
        let spec: CcaKindSpec = cca.into();
        self.flows.iter().filter(|f| f.cca == spec).count()
    }

    /// Build the configured simulator without running it. Exposed so the
    /// golden-seed regression harness (and any tool that wants the raw
    /// [`bbrdom_netsim::SimReport`]) shares the exact flow/jitter/seed
    /// wiring that [`Scenario::run`] uses.
    pub fn build_simulator(&self) -> Simulator {
        assert!(
            !self.flows.is_empty() || self.workload.is_some(),
            "scenario needs flows"
        );
        self.try_build_simulator(None, None)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Scenario::build_simulator`] with optional event and
    /// wall-clock budgets (livelock guards for fail-soft sweeps).
    pub fn try_build_simulator(
        &self,
        event_budget: Option<u64>,
        wall_budget: Option<std::time::Duration>,
    ) -> Result<Simulator, ConfigError> {
        self.validate()?;
        let rate = Rate::from_mbps(self.mbps);
        let ref_rtt = SimDuration::from_secs_f64(self.reference_rtt_ms / 1e3);
        let buffer = bbrdom_netsim::units::buffer_bytes(rate, ref_rtt, self.buffer_bdp);
        let mut cfg = SimConfig::new(rate, buffer, SimDuration::from_secs_f64(self.duration_secs))
            .with_discipline(self.discipline.to_discipline(buffer))
            // 100 µs of ACK-path timing noise: real hosts are never
            // phase-locked; without this a deterministic simulator drops only
            // the growing flow's marginal packets and inverts TCP's RTT bias
            // (see `SimConfig::ack_jitter`).
            .with_ack_jitter(SimDuration::from_micros(100), self.seed)
            .with_faults(self.faults.to_schedule(self.seed));
        if let Some(stop) = self.early_stop {
            cfg = cfg.with_early_stop(stop.to_policy());
        }
        if let Some(wl) = self.workload {
            cfg = cfg.with_workload(wl.to_config(self.seed));
        }
        if let Some(t) = &self.topology {
            cfg = cfg.with_topology(t.lower(ref_rtt)?);
        }
        if let Some(budget) = event_budget {
            cfg = cfg.with_event_budget(budget);
        }
        if let Some(budget) = wall_budget {
            cfg = cfg.with_wall_clock_budget(budget);
        }
        let mut sim = Simulator::try_new(cfg)?;
        if let Some(wl) = self.workload {
            let kind: CcaKind = wl.cca.into();
            let seed = self.seed;
            // Per-spawn CCA phase seeds, derived through the stable hash
            // (the static flows below use `seed*1000 + i`; the hash keeps
            // the two families disjoint for every spawn index).
            sim.set_workload_cc(Box::new(move |spawn| {
                let mut h = StableHasher::new();
                h.write_bytes(b"workload-cca");
                seed.stable_hash(&mut h);
                spawn.stable_hash(&mut h);
                kind.build(h.finish() as u64)
            }));
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        for (i, f) in self.flows.iter().enumerate() {
            let kind: CcaKind = f.cca.into();
            // Per-flow phase seed: decorrelates BBR gain-cycle phases and
            // BBRv2 probe spacing across flows and across trials.
            let cca_seed = self.seed.wrapping_mul(1000).wrapping_add(i as u64);
            let cc = kind.build(cca_seed);
            let rtt = SimDuration::from_secs_f64(f.rtt_ms / 1e3);
            // The paper starts all flows simultaneously; we jitter within
            // one reference RTT so "simultaneous" trials still differ by
            // seed (the testbed's natural noise).
            let jitter = rng.gen_range(0.0..ref_rtt.as_secs_f64().max(1e-6));
            let mut fc =
                FlowConfig::new(cc, rtt).starting_at(SimTime::from_secs_f64(f.start_s + jitter));
            if let Some(limit) = f.byte_limit {
                fc = fc.with_byte_limit(limit);
            }
            sim.add_flow(fc);
        }
        Ok(sim)
    }

    /// Run the scenario through the simulator, panicking on error (the
    /// legacy interface; see [`Scenario::try_run_with`]).
    pub fn run(&self) -> TrialResult {
        assert!(
            !self.flows.is_empty() || self.workload.is_some(),
            "scenario needs flows"
        );
        self.try_run_with(None, None)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Run the scenario with optional event and wall-clock budgets,
    /// returning a structured error instead of panicking when the
    /// configuration is invalid, a budget trips, or (with auditing on) a
    /// simulator invariant is violated.
    pub fn try_run_with(
        &self,
        event_budget: Option<u64>,
        wall_budget: Option<std::time::Duration>,
    ) -> Result<TrialResult, SimError> {
        Ok(TrialResult::from_report(
            &self.try_report_with(event_budget, wall_budget)?,
        ))
    }

    /// Like [`Scenario::try_run_with`], but returns the raw simulator
    /// report — the form the scenario result cache persists
    /// ([`crate::engine`]), from which [`TrialResult`]s are derived.
    pub fn try_report_with(
        &self,
        event_budget: Option<u64>,
        wall_budget: Option<std::time::Duration>,
    ) -> Result<bbrdom_netsim::SimReport, SimError> {
        match self.backend {
            BackendSpec::Des => self
                .try_build_simulator(event_budget, wall_budget)?
                .try_run(),
            BackendSpec::Fluid => crate::fluid_backend::run_fluid(self, event_budget),
        }
    }
}

impl FlowSpec {
    fn to_json_value(self) -> Value {
        let mut v = Value::object();
        v.set("cca", self.cca.name().into())
            .set("rtt_ms", self.rtt_ms.into())
            .set("start_s", self.start_s.into());
        v.set(
            "byte_limit",
            match self.byte_limit {
                Some(b) => Value::U64(b),
                None => Value::Null,
            },
        );
        v
    }

    fn from_json_value(v: &Value) -> Result<Self, String> {
        let cca_name = v
            .get("cca")
            .and_then(Value::as_str)
            .ok_or("flow missing 'cca'")?;
        Ok(FlowSpec {
            cca: CcaKindSpec::from_name(cca_name)
                .ok_or_else(|| format!("unknown cca '{cca_name}'"))?,
            rtt_ms: v
                .get("rtt_ms")
                .and_then(Value::as_f64)
                .ok_or("flow missing 'rtt_ms'")?,
            start_s: v.get("start_s").and_then(Value::as_f64).unwrap_or(0.0),
            byte_limit: v.get("byte_limit").and_then(Value::as_u64),
        })
    }
}

impl Scenario {
    /// Serialize to a compact JSON string (inverse of
    /// [`Scenario::from_json`]). Floats round-trip bit-exactly, so a
    /// stored scenario reproduces its trial bit-for-bit.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_json()
    }

    /// Serialize as a JSON [`Value`], for embedding inside a larger
    /// document (the supervisor's worker manifest stores one scenario
    /// per batch index this way). Inverse of
    /// [`Scenario::from_json_value`].
    pub fn to_json_value(&self) -> Value {
        let mut v = Value::object();
        v.set("mbps", self.mbps.into())
            .set("buffer_bdp", self.buffer_bdp.into())
            .set("reference_rtt_ms", self.reference_rtt_ms.into())
            .set(
                "flows",
                Value::Array(self.flows.iter().map(|f| f.to_json_value()).collect()),
            )
            .set("duration_secs", self.duration_secs.into())
            .set("seed", self.seed.into())
            .set("discipline", self.discipline.name().into());
        if !self.faults.is_noop() {
            v.set("faults", self.faults.to_json_value());
        }
        if let Some(stop) = self.early_stop {
            v.set("early_stop", stop.to_json_value());
        }
        if self.backend != BackendSpec::Des {
            v.set("backend", self.backend.name().into());
        }
        if let Some(wl) = self.workload {
            v.set("workload", wl.to_json_value());
        }
        if let Some(t) = &self.topology {
            v.set("topology", t.to_json_value());
        }
        v
    }

    /// Parse a scenario serialized with [`Scenario::to_json`].
    /// `start_s`, `byte_limit`, and `discipline` may be omitted.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = json::parse(text).map_err(|e| e.to_string())?;
        Scenario::from_json_value(&v)
    }

    /// Parse a scenario from a JSON [`Value`] (inverse of
    /// [`Scenario::to_json_value`]).
    pub fn from_json_value(v: &Value) -> Result<Self, String> {
        let flows = v
            .get("flows")
            .and_then(Value::as_array)
            .ok_or("scenario missing 'flows'")?
            .iter()
            .map(FlowSpec::from_json_value)
            .collect::<Result<Vec<_>, _>>()?;
        let field = |name: &str| {
            v.get(name)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("scenario missing '{name}'"))
        };
        let discipline = match v.get("discipline").and_then(Value::as_str) {
            None => DisciplineSpec::DropTail,
            Some(name) => DisciplineSpec::from_name(name)
                .ok_or_else(|| format!("unknown discipline '{name}'"))?,
        };
        let faults = match v.get("faults") {
            None => FaultSpec::default(),
            Some(f) => FaultSpec::from_json_value(f)?,
        };
        let early_stop = match v.get("early_stop") {
            None => None,
            Some(s) => Some(EarlyStopSpec::from_json_value(s)?),
        };
        let backend = match v.get("backend").and_then(Value::as_str) {
            None => BackendSpec::Des,
            Some(name) => {
                BackendSpec::from_name(name).ok_or_else(|| format!("unknown backend '{name}'"))?
            }
        };
        let workload = match v.get("workload") {
            None => None,
            Some(w) => Some(WorkloadSpec::from_json_value(w)?),
        };
        let topology = match v.get("topology") {
            None => None,
            Some(t) => Some(TopologySpec::from_json_value(t)?),
        };
        Ok(Scenario {
            mbps: field("mbps")?,
            buffer_bdp: field("buffer_bdp")?,
            reference_rtt_ms: field("reference_rtt_ms")?,
            flows,
            duration_secs: field("duration_secs")?,
            seed: v
                .get("seed")
                .and_then(Value::as_u64)
                .ok_or("scenario missing 'seed'")?,
            discipline,
            faults,
            early_stop,
            backend,
            workload,
            topology,
        })
    }
}

impl TrialResult {
    /// The measurements a figure consumes, extracted from a raw
    /// simulator report (live or cached).
    pub fn from_report(report: &bbrdom_netsim::SimReport) -> Self {
        TrialResult {
            throughput_mbps: report.flows.iter().map(|f| f.throughput_mbps()).collect(),
            cc_names: report.flows.iter().map(|f| f.cc_name.clone()).collect(),
            avg_queue_occupancy_bytes: report
                .flows
                .iter()
                .map(|f| f.avg_queue_occupancy_bytes)
                .collect(),
            backoff_times_secs: report
                .flows
                .iter()
                .map(|f| f.backoff_times_secs.clone())
                .collect(),
            avg_queuing_delay_ms: report.queue.avg_queuing_delay_secs * 1e3,
            utilization: report.queue.utilization,
            dropped_packets: report.queue.dropped_packets,
            aqm_drops: report.queue.aqm_drops,
            completion_times_secs: report
                .flows
                .iter()
                .map(|f| f.completion_time_secs)
                .collect(),
            workload_spawned: report.workload_spawned,
            workload_completed: report.workload_completed,
            workload_fct: report.workload_fct.clone(),
        }
    }

    /// Mean throughput (Mbps) over flows whose CC name matches.
    pub fn mean_throughput_of(&self, cc_name: &str) -> Option<f64> {
        let v: Vec<f64> = self
            .cc_names
            .iter()
            .zip(&self.throughput_mbps)
            .filter(|(n, _)| n.as_str() == cc_name)
            .map(|(_, t)| *t)
            .collect();
        if v.is_empty() {
            None
        } else {
            Some(v.iter().sum::<f64>() / v.len() as f64)
        }
    }

    /// Mean throughput (Mbps) over the *first* `n` flows whose CC name
    /// matches. The multi-bottleneck experiments append cross-traffic
    /// flows after the game's own `n` long flows; the cross traffic runs
    /// CUBIC too, so [`TrialResult::mean_throughput_of`] would fold it
    /// into the payoffs. This restriction keeps the game's payoffs to
    /// the game's players.
    pub fn mean_throughput_of_first(&self, n: usize, cc_name: &str) -> Option<f64> {
        let v: Vec<f64> = self
            .cc_names
            .iter()
            .zip(&self.throughput_mbps)
            .take(n)
            .filter(|(name, _)| name.as_str() == cc_name)
            .map(|(_, t)| *t)
            .collect();
        if v.is_empty() {
            None
        } else {
            Some(v.iter().sum::<f64>() / v.len() as f64)
        }
    }

    /// Aggregate throughput (Mbps) over flows whose CC name matches.
    pub fn total_throughput_of(&self, cc_name: &str) -> f64 {
        self.cc_names
            .iter()
            .zip(&self.throughput_mbps)
            .filter(|(n, _)| n.as_str() == cc_name)
            .map(|(_, t)| *t)
            .sum()
    }

    /// Total throughput of all flows, Mbps.
    pub fn total_throughput(&self) -> f64 {
        self.throughput_mbps.iter().sum()
    }

    /// Serialize for the sweep journal (inverse of
    /// [`TrialResult::from_json_value`]). Floats round-trip bit-exactly,
    /// so resumed sweeps reproduce the original numbers.
    pub fn to_json_value(&self) -> Value {
        let f64s = |xs: &[f64]| Value::Array(xs.iter().map(|&x| x.into()).collect());
        let mut v = Value::object();
        v.set("throughput_mbps", f64s(&self.throughput_mbps))
            .set(
                "cc_names",
                Value::Array(
                    self.cc_names
                        .iter()
                        .map(|n| Value::Str(n.clone()))
                        .collect(),
                ),
            )
            .set(
                "avg_queue_occupancy_bytes",
                f64s(&self.avg_queue_occupancy_bytes),
            )
            .set(
                "backoff_times_secs",
                Value::Array(self.backoff_times_secs.iter().map(|xs| f64s(xs)).collect()),
            )
            .set("avg_queuing_delay_ms", self.avg_queuing_delay_ms.into())
            .set("utilization", self.utilization.into())
            .set("dropped_packets", Value::U64(self.dropped_packets))
            .set("aqm_drops", Value::U64(self.aqm_drops))
            .set(
                "completion_times_secs",
                Value::Array(
                    self.completion_times_secs
                        .iter()
                        .map(|c| match c {
                            Some(t) => Value::F64(*t),
                            None => Value::Null,
                        })
                        .collect(),
                ),
            );
        // Workload aggregates only appear when a workload ran, keeping
        // every pre-existing journal line byte-identical.
        if self.workload_spawned > 0 {
            v.set("workload_spawned", Value::U64(self.workload_spawned))
                .set("workload_completed", Value::U64(self.workload_completed))
                .set(
                    "workload_fct",
                    Value::Array(
                        self.workload_fct
                            .iter()
                            .map(|p| p.to_json_value())
                            .collect(),
                    ),
                );
        }
        v
    }

    /// Parse a result serialized with [`TrialResult::to_json_value`].
    pub fn from_json_value(v: &Value) -> Result<Self, String> {
        fn f64s(v: &Value, key: &str) -> Result<Vec<f64>, String> {
            v.get(key)
                .and_then(Value::as_array)
                .ok_or_else(|| format!("result missing '{key}'"))?
                .iter()
                .map(|x| x.as_f64().ok_or_else(|| format!("non-numeric '{key}'")))
                .collect()
        }
        let field = |key: &str| {
            v.get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("result missing '{key}'"))
        };
        Ok(TrialResult {
            throughput_mbps: f64s(v, "throughput_mbps")?,
            cc_names: v
                .get("cc_names")
                .and_then(Value::as_array)
                .ok_or("result missing 'cc_names'")?
                .iter()
                .map(|x| {
                    x.as_str()
                        .map(String::from)
                        .ok_or_else(|| "non-string cc name".to_string())
                })
                .collect::<Result<_, _>>()?,
            avg_queue_occupancy_bytes: f64s(v, "avg_queue_occupancy_bytes")?,
            backoff_times_secs: v
                .get("backoff_times_secs")
                .and_then(Value::as_array)
                .ok_or("result missing 'backoff_times_secs'")?
                .iter()
                .map(|xs| {
                    xs.as_array()
                        .ok_or_else(|| "non-array backoff list".to_string())?
                        .iter()
                        .map(|x| {
                            x.as_f64()
                                .ok_or_else(|| "non-numeric backoff time".to_string())
                        })
                        .collect()
                })
                .collect::<Result<_, _>>()?,
            avg_queuing_delay_ms: field("avg_queuing_delay_ms")?,
            utilization: field("utilization")?,
            dropped_packets: v
                .get("dropped_packets")
                .and_then(Value::as_u64)
                .ok_or("result missing 'dropped_packets'")?,
            aqm_drops: v.get("aqm_drops").and_then(Value::as_u64).unwrap_or(0),
            completion_times_secs: v
                .get("completion_times_secs")
                .and_then(Value::as_array)
                .ok_or("result missing 'completion_times_secs'")?
                .iter()
                .map(|x| {
                    if x.is_null() {
                        Ok(None)
                    } else {
                        x.as_f64()
                            .map(Some)
                            .ok_or_else(|| "non-numeric completion time".to_string())
                    }
                })
                .collect::<Result<_, _>>()?,
            workload_spawned: v
                .get("workload_spawned")
                .and_then(Value::as_u64)
                .unwrap_or(0),
            workload_completed: v
                .get("workload_completed")
                .and_then(Value::as_u64)
                .unwrap_or(0),
            workload_fct: match v.get("workload_fct") {
                None => Vec::new(),
                Some(arr) => arr
                    .as_array()
                    .ok_or("'workload_fct' must be an array")?
                    .iter()
                    .map(bbrdom_netsim::FctPercentiles::from_json_value)
                    .collect::<Result<_, _>>()?,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versus_builds_expected_flow_list() {
        let s = Scenario::versus(100.0, 40.0, 3.0, 5, CcaKind::Bbr, 5, 10.0, 1);
        assert_eq!(s.flows.len(), 10);
        assert_eq!(s.count_of(CcaKind::Cubic), 5);
        assert_eq!(s.count_of(CcaKind::Bbr), 5);
    }

    #[test]
    fn same_seed_same_result() {
        let s = Scenario::versus(10.0, 20.0, 2.0, 1, CcaKind::Bbr, 1, 5.0, 42);
        let a = s.run();
        let b = s.run();
        assert_eq!(a.throughput_mbps, b.throughput_mbps);
        assert_eq!(a.dropped_packets, b.dropped_packets);
    }

    #[test]
    fn different_seed_different_result() {
        let a = Scenario::versus(10.0, 20.0, 1.0, 1, CcaKind::Bbr, 1, 5.0, 1).run();
        let b = Scenario::versus(10.0, 20.0, 1.0, 1, CcaKind::Bbr, 1, 5.0, 2).run();
        // Throughputs are extremely unlikely to match bit-for-bit.
        assert_ne!(a.throughput_mbps, b.throughput_mbps);
    }

    #[test]
    fn result_accessors_aggregate_by_cc() {
        let s = Scenario::versus(10.0, 20.0, 2.0, 1, CcaKind::Bbr, 1, 5.0, 7);
        let r = s.run();
        let cubic = r.mean_throughput_of("cubic").unwrap();
        let bbr = r.mean_throughput_of("bbr").unwrap();
        assert!(cubic > 0.0 && bbr > 0.0);
        assert!(r.mean_throughput_of("copa").is_none());
        assert!((r.total_throughput() - cubic - bbr).abs() < 1e-9);
    }

    #[test]
    fn scenario_roundtrips_through_json() {
        let mut s = Scenario::versus(100.0, 40.0, 3.0, 2, CcaKind::Vivace, 3, 10.0, u64::MAX - 17)
            .with_discipline(DisciplineSpec::Codel);
        s.flows[0].byte_limit = Some(50_000);
        s.flows[1].start_s = 2.5;
        let back = Scenario::from_json(&s.to_json()).unwrap();
        assert_eq!(back.flows.len(), 5);
        assert_eq!(back.count_of(CcaKind::Vivace), 3);
        assert_eq!(back.seed, u64::MAX - 17);
        assert_eq!(back.discipline, DisciplineSpec::Codel);
        assert_eq!(back.flows[0].byte_limit, Some(50_000));
        assert_eq!(back.flows[1].start_s, 2.5);
        assert_eq!(back.mbps.to_bits(), s.mbps.to_bits());
    }

    #[test]
    fn faults_roundtrip_through_json() {
        let mut s = Scenario::versus(10.0, 20.0, 2.0, 1, CcaKind::Bbr, 1, 5.0, 3);
        s.faults = FaultSpec {
            loss_fwd: 0.01,
            loss_ack: 0.002,
            outages: vec![(2.0, 0.5)],
            rate_steps: vec![(1.0, 5.0), (3.0, 10.0)],
            delay_spikes: vec![(4.0, 0.25, 40.0)],
        };
        let back = Scenario::from_json(&s.to_json()).unwrap();
        assert_eq!(back.faults, s.faults);

        // A clean scenario omits the key and parses back to no-op faults.
        let clean = Scenario::versus(10.0, 20.0, 2.0, 1, CcaKind::Bbr, 1, 5.0, 3);
        assert!(!clean.to_json().contains("faults"));
        assert!(Scenario::from_json(&clean.to_json())
            .unwrap()
            .faults
            .is_noop());
    }

    #[test]
    fn early_stop_spec_roundtrips_through_json() {
        let mut spec = EarlyStopSpec::new(0.05, 3);
        spec.window_secs = 0.5;
        spec.min_secs = 2.0;
        let s = Scenario::versus(10.0, 20.0, 2.0, 1, CcaKind::Bbr, 1, 5.0, 3)
            .with_early_stop(Some(spec));
        let back = Scenario::from_json(&s.to_json()).unwrap();
        assert_eq!(back.early_stop, Some(spec));

        // A fixed-horizon scenario omits the key entirely (byte-stable
        // serialization for all existing scenarios).
        let plain = Scenario::versus(10.0, 20.0, 2.0, 1, CcaKind::Bbr, 1, 5.0, 3);
        assert!(!plain.to_json().contains("early_stop"));
        assert_eq!(
            Scenario::from_json(&plain.to_json()).unwrap().early_stop,
            None
        );
    }

    #[test]
    fn backend_spec_roundtrips_through_json() {
        let fluid = Scenario::versus(10.0, 20.0, 2.0, 1, CcaKind::Bbr, 1, 5.0, 3)
            .with_backend(BackendSpec::Fluid);
        let back = Scenario::from_json(&fluid.to_json()).unwrap();
        assert_eq!(back.backend, BackendSpec::Fluid);

        // DES scenarios omit the key entirely: every pre-backend JSON
        // string stays byte-identical and parses to the DES default.
        let des = Scenario::versus(10.0, 20.0, 2.0, 1, CcaKind::Bbr, 1, 5.0, 3);
        assert!(!des.to_json().contains("backend"));
        assert_eq!(
            Scenario::from_json(&des.to_json()).unwrap().backend,
            BackendSpec::Des
        );

        let bad = des
            .to_json()
            .replace("\"seed\"", "\"backend\":\"ns3\",\"seed\"");
        assert!(Scenario::from_json(&bad).unwrap_err().contains("ns3"));
    }

    #[test]
    fn fluid_backend_runs_and_matches_report_shape() {
        let s = Scenario::versus(50.0, 20.0, 2.0, 1, CcaKind::Bbr, 1, 10.0, 3)
            .with_backend(BackendSpec::Fluid);
        let a = s.run();
        let b = s.run();
        assert_eq!(
            a.throughput_mbps, b.throughput_mbps,
            "fluid is deterministic"
        );
        assert_eq!(a.cc_names, vec!["cubic".to_string(), "bbr".to_string()]);
        assert!(a.total_throughput() > 0.5 * 50.0);
        assert!(a.utilization > 0.5 && a.utilization <= 1.001);
    }

    #[test]
    fn fluid_backend_rejects_out_of_envelope_scenarios() {
        let base = || {
            Scenario::versus(10.0, 20.0, 2.0, 1, CcaKind::Bbr, 1, 5.0, 1)
                .with_backend(BackendSpec::Fluid)
        };
        let unsupported = |s: &Scenario| {
            let err = s.try_report_with(None, None).unwrap_err();
            assert!(
                err.to_string().contains("fluid backend does not support"),
                "{err}"
            );
        };

        unsupported(&base().with_discipline(DisciplineSpec::Codel));
        unsupported(&base().with_early_stop(Some(EarlyStopSpec::new(0.05, 3))));
        unsupported(&base().with_equivalent_topology());

        let mut s = base();
        s.faults.loss_fwd = 0.01;
        unsupported(&s);

        let mut s = base();
        s.flows[0].byte_limit = Some(50_000);
        unsupported(&s);

        let s = Scenario::versus(10.0, 20.0, 2.0, 1, CcaKind::Copa, 1, 5.0, 1)
            .with_backend(BackendSpec::Fluid);
        unsupported(&s);
    }

    #[test]
    fn early_stopped_scenario_reports_shorter_effective_horizon() {
        let spec = EarlyStopSpec::new(0.2, 3);
        let s = Scenario::versus(10.0, 20.0, 2.0, 1, CcaKind::Cubic, 1, 60.0, 3)
            .with_early_stop(Some(spec));
        let report = s.try_report_with(None, None).unwrap();
        assert!(report.early_stopped);
        assert!(report.effective_duration_secs < 60.0);
        let full = Scenario::versus(10.0, 20.0, 2.0, 1, CcaKind::Cubic, 1, 60.0, 3)
            .try_report_with(None, None)
            .unwrap();
        assert!(report.events_processed < full.events_processed);
    }

    #[test]
    fn faulted_scenario_runs_and_counts_wire_loss() {
        let mut s = Scenario::versus(10.0, 20.0, 2.0, 1, CcaKind::Cubic, 1, 10.0, 5);
        s.faults.loss_fwd = 0.02;
        let clean = Scenario::versus(10.0, 20.0, 2.0, 1, CcaKind::Cubic, 1, 10.0, 5).run();
        let lossy = s.run();
        // 2% loss must hurt CUBIC's aggregate throughput.
        assert!(lossy.total_throughput() < clean.total_throughput());
    }

    #[test]
    fn validate_rejects_degenerate_scenarios() {
        let ok = Scenario::versus(10.0, 20.0, 2.0, 1, CcaKind::Bbr, 1, 5.0, 1);
        assert!(ok.validate().is_ok());

        let mut s = ok.clone();
        s.flows.clear();
        assert!(s.validate().is_err());

        let mut s = ok.clone();
        s.mbps = f64::NAN;
        assert!(s.validate().is_err());

        let mut s = ok.clone();
        s.duration_secs = 0.0;
        assert!(s.validate().is_err());

        let mut s = ok.clone();
        s.flows[0].byte_limit = Some(0);
        assert!(s.validate().is_err());

        let mut s = ok.clone();
        s.faults.loss_fwd = 1.5;
        assert!(s.validate().is_err());
    }

    #[test]
    fn try_run_with_reports_event_budget() {
        let s = Scenario::versus(10.0, 20.0, 2.0, 1, CcaKind::Bbr, 1, 5.0, 1);
        let err = s.try_run_with(Some(100), None).unwrap_err();
        assert!(err.to_string().contains("event budget"), "{err}");
    }

    #[test]
    fn trial_result_roundtrips_through_json() {
        let r = Scenario::versus(10.0, 20.0, 2.0, 1, CcaKind::Bbr, 1, 5.0, 9).run();
        let back = TrialResult::from_json_value(&r.to_json_value()).unwrap();
        assert_eq!(back.throughput_mbps, r.throughput_mbps);
        assert_eq!(back.cc_names, r.cc_names);
        assert_eq!(back.backoff_times_secs, r.backoff_times_secs);
        assert_eq!(back.completion_times_secs, r.completion_times_secs);
        assert_eq!(back.dropped_packets, r.dropped_packets);
        assert_eq!(back.utilization.to_bits(), r.utilization.to_bits());
    }

    #[test]
    fn workload_spec_roundtrips_through_json() {
        let wl = WorkloadSpec::web(CcaKind::Cubic, 80.0, 30.0);
        let s =
            Scenario::versus(50.0, 20.0, 2.0, 1, CcaKind::Bbr, 1, 5.0, 3).with_workload(Some(wl));
        let back = Scenario::from_json(&s.to_json()).unwrap();
        assert_eq!(back.workload, Some(wl));

        let fixed = WorkloadSpec::poisson_fixed(CcaKind::Bbr, 10.0, 30_000, 20.0);
        let s2 = s.clone().with_workload(Some(fixed));
        assert_eq!(
            Scenario::from_json(&s2.to_json()).unwrap().workload,
            Some(fixed)
        );

        // No workload: the key is omitted entirely (byte-stable
        // serialization for all existing scenarios).
        let plain = Scenario::versus(50.0, 20.0, 2.0, 1, CcaKind::Bbr, 1, 5.0, 3);
        assert!(!plain.to_json().contains("workload"));
        assert_eq!(
            Scenario::from_json(&plain.to_json()).unwrap().workload,
            None
        );
    }

    #[test]
    fn topology_spec_roundtrips_through_json() {
        let mut topo = TopologySpec::parking_lot(3, 40.0, 2.0, 2.0);
        topo.flow_routes = vec![0, 0, 1];
        topo.fault_link = Some(1);
        let s = Scenario::versus(40.0, 40.0, 2.0, 2, CcaKind::Bbr, 1, 5.0, 3)
            .with_topology(Some(topo.clone()));
        let back = Scenario::from_json(&s.to_json()).unwrap();
        assert_eq!(back.topology, Some(topo));

        // The dumbbell builder round-trips too (wire links omit "mbps").
        let s = Scenario::versus(10.0, 20.0, 2.0, 1, CcaKind::Bbr, 1, 5.0, 3)
            .with_equivalent_topology();
        let back = Scenario::from_json(&s.to_json()).unwrap();
        assert_eq!(back.topology, s.topology);

        // No topology: the key is omitted entirely (byte-stable
        // serialization for all existing scenarios).
        let plain = Scenario::versus(10.0, 20.0, 2.0, 1, CcaKind::Bbr, 1, 5.0, 3);
        assert!(!plain.to_json().contains("topology"));
        assert_eq!(
            Scenario::from_json(&plain.to_json()).unwrap().topology,
            None
        );
    }

    #[test]
    fn equivalent_topology_reproduces_the_legacy_run() {
        let legacy = Scenario::versus(10.0, 20.0, 2.0, 1, CcaKind::Bbr, 1, 5.0, 7);
        let a = legacy.try_report_with(None, None).unwrap();
        let b = legacy
            .clone()
            .with_equivalent_topology()
            .try_report_with(None, None)
            .unwrap();
        assert_eq!(a.to_json_value().to_json(), b.to_json_value().to_json());
    }

    #[test]
    fn degenerate_topologies_are_rejected_with_typed_errors() {
        let base = Scenario::versus(10.0, 20.0, 2.0, 2, CcaKind::Bbr, 1, 5.0, 1);
        let reject = |s: &Scenario, needle: &str| {
            let err = s.validate().unwrap_err();
            assert!(err.to_string().contains(needle), "{err}");
        };

        // A zero-rate link is screened *before* Rate::from_mbps (which
        // would panic on it).
        let mut t = TopologySpec::dumbbell(10.0, 2.0);
        t.links[1].mbps = Some(0.0);
        reject(
            &base.clone().with_topology(Some(t)),
            "mbps must be positive",
        );

        let mut t = TopologySpec::dumbbell(10.0, 2.0);
        t.links[0].to = "nowhere".to_string();
        reject(&base.clone().with_topology(Some(t)), "unknown node");

        let mut t = TopologySpec::dumbbell(10.0, 2.0);
        t.routes[0] = vec![0, 9, 2];
        reject(&base.clone().with_topology(Some(t)), "missing link 9");

        let mut t = TopologySpec::dumbbell(10.0, 2.0);
        t.flow_routes = vec![0];
        reject(
            &base.clone().with_topology(Some(t)),
            "flow_routes has 1 entries for 3 flows",
        );

        reject(
            &base
                .clone()
                .with_equivalent_topology()
                .with_early_stop(Some(EarlyStopSpec::new(0.05, 3))),
            "does not support convergence early-stop",
        );
    }

    #[test]
    fn parking_lot_scenario_runs_with_cross_traffic() {
        let mut topo = TopologySpec::parking_lot(2, 20.0, 2.0, 2.0);
        // 2 long flows over the chain + 1 CUBIC cross flow per hop.
        topo.flow_routes = vec![0, 0, 1, 2];
        let mut s = Scenario::versus(20.0, 40.0, 2.0, 1, CcaKind::Bbr, 1, 5.0, 9);
        s.flows.push(FlowSpec::long(CcaKind::Cubic, 20.0));
        s.flows.push(FlowSpec::long(CcaKind::Cubic, 20.0));
        let s = s.with_topology(Some(topo));
        let r = s.run();
        assert_eq!(r.throughput_mbps.len(), 4);
        // The first-n restriction keeps cross traffic out of the game's
        // payoffs: the full CUBIC mean folds in both cross flows.
        let long_cubic = r.mean_throughput_of_first(2, "cubic").unwrap();
        assert!((long_cubic - r.throughput_mbps[0]).abs() < 1e-12);
        assert_ne!(
            r.mean_throughput_of("cubic").unwrap().to_bits(),
            long_cubic.to_bits()
        );
        // Everyone gets a share of a 20 Mbps chain.
        assert!(r.throughput_mbps.iter().all(|&t| t > 0.0 && t < 21.0));
    }

    #[test]
    fn workload_scenario_runs_and_reports_fct_percentiles() {
        let wl = WorkloadSpec::poisson_fixed(CcaKind::Cubic, 60.0, 20_000, 20.0);
        let s =
            Scenario::versus(50.0, 20.0, 2.0, 1, CcaKind::Bbr, 0, 8.0, 5).with_workload(Some(wl));
        let r = s.run();
        assert!(r.workload_spawned > 200, "spawned={}", r.workload_spawned);
        assert!(r.workload_completed > 0);
        assert_eq!(r.workload_fct.len(), 1);
        assert_eq!(r.workload_fct[0].cc_name, "cubic");
        assert!(r.workload_fct[0].p50_secs > 0.0);
        // The single static flow still gets its individual report.
        assert_eq!(r.throughput_mbps.len(), 1);

        // Workload results ride through the journal serialization.
        let back = TrialResult::from_json_value(&r.to_json_value()).unwrap();
        assert_eq!(back.workload_spawned, r.workload_spawned);
        assert_eq!(back.workload_fct, r.workload_fct);

        // Same scenario, same bits.
        let again = s.run();
        assert_eq!(again.workload_spawned, r.workload_spawned);
        assert_eq!(
            again.workload_fct[0].p99_secs.to_bits(),
            r.workload_fct[0].p99_secs.to_bits()
        );
    }

    #[test]
    fn workload_only_scenario_is_valid() {
        let wl = WorkloadSpec::poisson_fixed(CcaKind::Cubic, 40.0, 20_000, 20.0);
        let s = Scenario {
            flows: Vec::new(),
            ..Scenario::versus(50.0, 20.0, 2.0, 1, CcaKind::Bbr, 1, 5.0, 5)
        };
        assert!(s.validate().is_err(), "no flows and no workload");
        let s = s.with_workload(Some(wl));
        assert!(s.validate().is_ok());
        let r = s.run();
        assert!(r.throughput_mbps.is_empty());
        assert!(r.workload_completed > 0);
    }

    #[test]
    fn degenerate_workload_specs_are_rejected() {
        let base = Scenario::versus(50.0, 20.0, 2.0, 1, CcaKind::Bbr, 1, 5.0, 5);
        let mut wl = WorkloadSpec::poisson_fixed(CcaKind::Cubic, 40.0, 20_000, 20.0);
        wl.rtt_ms = 0.0;
        assert!(base.clone().with_workload(Some(wl)).validate().is_err());
        let mut wl = WorkloadSpec::poisson_fixed(CcaKind::Cubic, 0.0, 20_000, 20.0);
        assert!(base.clone().with_workload(Some(wl)).validate().is_err());
        wl = WorkloadSpec::poisson_fixed(CcaKind::Cubic, 40.0, 0, 20.0);
        assert!(base.clone().with_workload(Some(wl)).validate().is_err());
        let mut wl = WorkloadSpec::web(CcaKind::Cubic, 40.0, 20.0);
        wl.arrival = ArrivalSpec::Deterministic { interval_s: 0.0 };
        assert!(base.with_workload(Some(wl)).validate().is_err());
    }

    #[test]
    fn scenario_from_json_defaults_and_errors() {
        let minimal = r#"{"mbps":10.0,"buffer_bdp":2.0,"reference_rtt_ms":20.0,
            "flows":[{"cca":"bbr","rtt_ms":20.0}],"duration_secs":3.0,"seed":1}"#;
        let s = Scenario::from_json(minimal).unwrap();
        assert_eq!(s.discipline, DisciplineSpec::DropTail);
        assert_eq!(s.flows[0].start_s, 0.0);
        assert_eq!(s.flows[0].byte_limit, None);

        assert!(Scenario::from_json("{}").is_err());
        assert!(Scenario::from_json("not json").is_err());
        let bad_cca = minimal.replace("\"bbr\"", "\"quic\"");
        assert!(Scenario::from_json(&bad_cca).unwrap_err().contains("quic"));
    }
}
