//! The indexed result store over the content-addressed SimReport cache.
//!
//! The disk cache (`<cache>/<hash>.json`, see [`crate::engine`]) already
//! makes warm sweeps skip 100% of *simulation* — but answering a figure
//! from it still opens and parses one full `SimReport` JSON per cell.
//! At sweep-service scale (millions of accumulated runs) that parse tax
//! dominates: a fig 9/11 grid re-assembled from cache spends its time
//! deserializing queue telemetry and trace fields no figure reads.
//!
//! This module adds the metric layer: an append-only **index**
//! (`<cache>/index.jsonl` plus an in-memory map) mapping a scenario's
//! content hash to exactly what the read side consumes — the scenario
//! parameters (for `repro query`) and the extracted [`TrialResult`]
//! (per-CCA goodput, queuing delay, FCT percentiles, backoff times),
//! plus the recorded event count so budget admission works without
//! touching the report. A store hit therefore short-circuits both
//! simulation *and* full-report deserialization, and `TrialResult`'s
//! bit-exact JSON round-trip guarantees store-served figures are
//! byte-identical to freshly simulated ones.
//!
//! Disciplines, mirrored from the sweep journal:
//!
//! * **single writer** — only the batch executor's single-writer thread
//!   appends (`Store::record`), in strict scenario-index order;
//!   supervised workers open the store read-only by construction (they
//!   never run the batch executor), so a supervised sweep produces a
//!   byte-identical index to a serial run;
//! * **torn-tail tolerance** — a crash mid-append leaves a partial last
//!   line; loading skips it (and any malformed line) as a miss, and the
//!   next append-mode open truncates the tail to the last complete line
//!   exactly like the journal repair;
//! * **tmp+rename compaction** — [`Store::rebuild`] re-derives the index
//!   from the cache entries themselves (corrupt or scenario-less entries
//!   are skipped as misses) and publishes it atomically;
//! * **orphan-tmp sweep** — opening the store removes stale `*.tmp.*`
//!   files left behind by SIGKILLed writers (the supervisor kills
//!   workers mid-write by design), identified by a dead writer pid.

use crate::engine::{open_journal_append, scenario_hash, CACHE_FORMAT_VERSION};
use crate::runner::TrialOutcome;
use crate::scenario::{Scenario, TrialResult};
use bbrdom_netsim::json::{self, Value};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Bumped whenever the index line layout changes; lines with another
/// version are skipped on load (and swept away by the next rebuild).
pub const INDEX_FORMAT_VERSION: u32 = 1;

/// Index file name inside the cache directory.
pub const INDEX_FILE: &str = "index.jsonl";

/// Orphaned tmp files whose writer pid cannot be checked (non-Linux, or
/// an unparsable name) are removed only past this age.
const ORPHAN_TMP_MAX_AGE: std::time::Duration = std::time::Duration::from_secs(3600);

/// How one indexed trial ended.
#[derive(Debug, Clone)]
pub enum StoreOutcome {
    /// The trial succeeded: the extracted metrics, plus the simulator
    /// event count when known (budget admission needs it; entries
    /// backfilled from journals may lack it).
    Ok {
        events: Option<u64>,
        result: TrialResult,
    },
    /// The trial failed (budget trip, invalid config, quarantine). Kept
    /// for `repro query --failed` sweep planning; never served as a
    /// result — failures are always re-run, exactly like the engine's
    /// cache policy.
    Failed {
        error: String,
        context: String,
        event_budget: Option<u64>,
        wall_budget_ns: Option<u64>,
    },
}

/// One indexed trial: content hash, full scenario (the queryable
/// parameters), and outcome.
#[derive(Debug, Clone)]
pub struct StoreEntry {
    /// The scenario content hash, as the 32-hex-digit cache key.
    pub key: String,
    /// The scenario that produced the result.
    pub scenario: Scenario,
    /// The extracted metrics (or the structured failure).
    pub outcome: StoreOutcome,
}

impl StoreEntry {
    /// The result, if the trial succeeded.
    pub fn ok(&self) -> Option<&TrialResult> {
        match &self.outcome {
            StoreOutcome::Ok { result, .. } => Some(result),
            StoreOutcome::Failed { .. } => None,
        }
    }

    /// Canonical CCA mix of the scenario's flows, e.g. `cubic:4+bbr:2`
    /// (names in first-appearance order, which matches the paper's
    /// CUBIC-first scenario builders).
    pub fn mix(&self) -> String {
        let mut counts: Vec<(&str, u32)> = Vec::new();
        for f in &self.scenario.flows {
            let name = f.cca.name();
            match counts.iter_mut().find(|(n, _)| *n == name) {
                Some((_, c)) => *c += 1,
                None => counts.push((name, 1)),
            }
        }
        counts
            .iter()
            .map(|(n, c)| format!("{n}:{c}"))
            .collect::<Vec<_>>()
            .join("+")
    }

    /// Whether the scenario's flow mix matches a user spec like
    /// `cubic:4+bbr:2` (order-insensitive, exact counts) or `bbr`
    /// (presence of the CCA, any count). Components may be separated by
    /// `+` or `,`.
    pub fn mix_matches(&self, spec: &str) -> bool {
        let mut counts: HashMap<&str, u32> = HashMap::new();
        for f in &self.scenario.flows {
            *counts.entry(f.cca.name()).or_insert(0) += 1;
        }
        let mut exact = false;
        let mut want: HashMap<String, u32> = HashMap::new();
        for part in spec.split(['+', ',']).filter(|p| !p.trim().is_empty()) {
            match part.trim().split_once(':') {
                Some((name, count)) => {
                    exact = true;
                    let Ok(c) = count.trim().parse::<u32>() else {
                        return false;
                    };
                    want.insert(name.trim().to_ascii_lowercase(), c);
                }
                None => {
                    // Bare CCA name: presence test only.
                    if counts
                        .get(part.trim().to_ascii_lowercase().as_str())
                        .copied()
                        .unwrap_or(0)
                        == 0
                    {
                        return false;
                    }
                }
            }
        }
        if exact {
            if want.len() != counts.len() {
                return false;
            }
            for (name, c) in &want {
                if counts.get(name.as_str()).copied().unwrap_or(0) != *c {
                    return false;
                }
            }
        }
        true
    }

    /// Mean goodput per CCA (first-appearance order), from the stored
    /// metrics. Empty for failed entries.
    pub fn goodput_by_cca(&self) -> Vec<(String, f64)> {
        let Some(result) = self.ok() else {
            return Vec::new();
        };
        let mut order: Vec<String> = Vec::new();
        let mut sums: HashMap<&str, (f64, u32)> = HashMap::new();
        for (name, tput) in result.cc_names.iter().zip(&result.throughput_mbps) {
            if !sums.contains_key(name.as_str()) {
                order.push(name.clone());
            }
            let slot = sums.entry(name.as_str()).or_insert((0.0, 0));
            slot.0 += tput;
            slot.1 += 1;
        }
        order
            .into_iter()
            .map(|name| {
                let (sum, n) = sums[name.as_str()];
                (name, sum / n as f64)
            })
            .collect()
    }

    /// Serialize as one index line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut v = Value::object();
        v.set("v", Value::U64(INDEX_FORMAT_VERSION as u64))
            .set("key", self.key.as_str().into())
            .set("scenario", self.scenario.to_json_value());
        match &self.outcome {
            StoreOutcome::Ok { events, result } => {
                v.set("ok", true.into());
                if let Some(e) = events {
                    v.set("events", Value::U64(*e));
                }
                v.set("result", result.to_json_value());
            }
            StoreOutcome::Failed {
                error,
                context,
                event_budget,
                wall_budget_ns,
            } => {
                v.set("ok", false.into())
                    .set("error", Value::Str(error.clone()))
                    .set("context", Value::Str(context.clone()));
                if let Some(b) = event_budget {
                    v.set("event_budget", Value::U64(*b));
                }
                if let Some(b) = wall_budget_ns {
                    v.set("wall_budget_ns", Value::U64(*b));
                }
            }
        }
        v.to_json()
    }

    /// Parse one index line; `None` for anything torn, malformed, or of
    /// another format version — the caller treats it as a miss.
    pub fn from_json_line(line: &str) -> Option<StoreEntry> {
        let v = json::parse(line).ok()?;
        if v.get("v").and_then(Value::as_u64) != Some(INDEX_FORMAT_VERSION as u64) {
            return None;
        }
        let key = v.get("key")?.as_str()?.to_string();
        key_hash(&key)?;
        let scenario = Scenario::from_json_value(v.get("scenario")?).ok()?;
        let outcome = match v.get("ok")? {
            Value::Bool(true) => StoreOutcome::Ok {
                events: v.get("events").and_then(Value::as_u64),
                result: TrialResult::from_json_value(v.get("result")?).ok()?,
            },
            Value::Bool(false) => StoreOutcome::Failed {
                error: v.get("error")?.as_str()?.to_string(),
                context: v
                    .get("context")
                    .and_then(Value::as_str)
                    .unwrap_or("")
                    .to_string(),
                event_budget: v.get("event_budget").and_then(Value::as_u64),
                wall_budget_ns: v.get("wall_budget_ns").and_then(Value::as_u64),
            },
            _ => return None,
        };
        Some(StoreEntry {
            key,
            scenario,
            outcome,
        })
    }
}

/// Parse a 32-hex cache key back to the u128 content hash.
fn key_hash(key: &str) -> Option<u128> {
    if key.len() != 32 {
        return None;
    }
    u128::from_str_radix(key, 16).ok()
}

/// What [`Store::rebuild`] found while scanning the cache directory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RebuildStats {
    /// Cache entry files scanned.
    pub scanned: usize,
    /// Entries successfully indexed.
    pub indexed: usize,
    /// Unreadable, truncated, version- or key-mismatched entries
    /// (skipped as misses — same policy as the engine's cache loads).
    pub corrupt: usize,
    /// Valid entries predating the scenario-embedding format: their
    /// metrics are recoverable but their parameters are not, so they
    /// cannot be indexed (a fresh run of the scenario re-indexes them).
    pub no_scenario: usize,
}

/// Aggregate cache-directory statistics for `repro cache stats`.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheDirStats {
    /// Cache entry files (`<hash>.json`) on disk.
    pub disk_entries: usize,
    /// Total bytes of those entry files.
    pub disk_bytes: u64,
    /// Index entries with a successful result.
    pub index_ok: usize,
    /// Index entries recording a structured failure.
    pub index_failed: usize,
    /// Bytes of the index file.
    pub index_bytes: u64,
    /// Disk entries whose key is covered by the index.
    pub covered: usize,
    /// Stale tmp files swept while opening.
    pub orphans_swept: usize,
}

/// The indexed result store for one cache directory. See the module
/// docs for the write/repair disciplines.
pub struct Store {
    dir: PathBuf,
    index_path: PathBuf,
    map: Mutex<HashMap<u128, Arc<StoreEntry>>>,
    writer: Mutex<Option<std::fs::File>>,
    orphans_swept: usize,
}

impl Store {
    /// Open (or lazily create) the store for a cache directory: sweep
    /// orphaned tmp files, then load every well-formed index line —
    /// torn tails and malformed lines are skipped, and for a duplicated
    /// key the last line wins (appends supersede).
    pub fn open(dir: &Path) -> Store {
        let orphans_swept = clean_orphan_tmps(dir);
        let index_path = dir.join(INDEX_FILE);
        let mut map = HashMap::new();
        if let Ok(text) = std::fs::read_to_string(&index_path) {
            for line in text.lines() {
                if let Some(entry) = StoreEntry::from_json_line(line) {
                    if let Some(hash) = key_hash(&entry.key) {
                        map.insert(hash, Arc::new(entry));
                    }
                }
            }
        }
        Store {
            dir: dir.to_path_buf(),
            index_path,
            map: Mutex::new(map),
            writer: Mutex::new(None),
            orphans_swept,
        }
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.map.lock().expect("store map poisoned").len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Stale tmp files swept when this store was opened.
    pub fn orphans_swept(&self) -> usize {
        self.orphans_swept
    }

    /// The full entry for a content hash, if indexed.
    pub fn get(&self, hash: u128) -> Option<Arc<StoreEntry>> {
        self.map
            .lock()
            .expect("store map poisoned")
            .get(&hash)
            .cloned()
    }

    /// Serve a successful result for a content hash, if the index holds
    /// one that an event budget admits (mirroring the engine's cache
    /// admission: a result whose recorded event count is unknown is
    /// never served under a budget). Returns the result and the
    /// recorded event count.
    pub fn lookup(
        &self,
        hash: u128,
        event_budget: Option<u64>,
    ) -> Option<(TrialResult, Option<u64>)> {
        let map = self.map.lock().expect("store map poisoned");
        let entry = map.get(&hash)?;
        let StoreOutcome::Ok { events, result } = &entry.outcome else {
            return None;
        };
        match (event_budget, events) {
            (None, ev) => Some((result.clone(), *ev)),
            (Some(budget), Some(ev)) if *ev <= budget => Some((result.clone(), Some(*ev))),
            (Some(_), _) => None,
        }
    }

    /// All entries, sorted by key — the deterministic order `repro
    /// query` renders.
    pub fn entries(&self) -> Vec<Arc<StoreEntry>> {
        let mut all: Vec<Arc<StoreEntry>> = self
            .map
            .lock()
            .expect("store map poisoned")
            .values()
            .cloned()
            .collect();
        all.sort_by(|a, b| a.key.cmp(&b.key));
        all
    }

    /// Append one finished trial (the batch executor's single-writer
    /// thread calls this in strict scenario-index order). Append policy:
    /// a key already indexed with a success is immutable (content
    /// addressing — the result can never change); a failure may be
    /// superseded by a later success (e.g. a raised budget); repeated
    /// failures are not re-appended. I/O errors are swallowed — the
    /// index, like the cache, is an accelerator, not a store of record.
    pub(crate) fn record(
        &self,
        key: &str,
        scenario: &Scenario,
        outcome: &TrialOutcome,
        events: Option<u64>,
        event_budget: Option<u64>,
        wall_budget_ns: Option<u64>,
    ) {
        let Some(hash) = key_hash(key) else { return };
        let mut map = self.map.lock().expect("store map poisoned");
        match (map.get(&hash).map(|e| &e.outcome), outcome) {
            (Some(StoreOutcome::Ok { .. }), _) => return,
            (Some(StoreOutcome::Failed { .. }), TrialOutcome::Failed(_)) => return,
            _ => {}
        }
        let entry = StoreEntry {
            key: key.to_string(),
            scenario: scenario.clone(),
            outcome: match outcome {
                TrialOutcome::Ok(r) => StoreOutcome::Ok {
                    events,
                    result: r.clone(),
                },
                TrialOutcome::Failed(f) => StoreOutcome::Failed {
                    error: f.error.clone(),
                    context: f.context.clone(),
                    event_budget,
                    wall_budget_ns,
                },
            },
        };
        let line = entry.to_json_line();
        let mut writer = self.writer.lock().expect("store writer poisoned");
        if writer.is_none() {
            if std::fs::create_dir_all(&self.dir).is_err() {
                return;
            }
            // Append-mode open repairs a torn tail first, exactly like
            // the sweep journal.
            *writer = open_journal_append(&self.index_path).ok();
        }
        if let Some(file) = writer.as_mut() {
            use std::io::Write as _;
            let ok = writeln!(file, "{line}").and_then(|()| file.flush()).is_ok();
            if ok {
                map.insert(hash, Arc::new(entry));
            }
        }
    }

    /// Rewrite the index from the in-memory map, sorted by key, via
    /// tmp+rename — compaction for an index that accumulated superseded
    /// lines. Concurrent readers never observe a torn file.
    pub fn compact(&self) -> std::io::Result<()> {
        let entries = self.entries();
        let mut text = String::new();
        for e in &entries {
            text.push_str(&e.to_json_line());
            text.push('\n');
        }
        std::fs::create_dir_all(&self.dir)?;
        let tmp = self.dir.join(format!(
            ".{INDEX_FILE}.tmp.{}.{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&tmp, text)?;
        std::fs::rename(&tmp, &self.index_path)?;
        // Drop the append handle: it points at the replaced inode.
        *self.writer.lock().expect("store writer poisoned") = None;
        Ok(())
    }

    /// Rebuild the index by scanning every cache entry in `dir` —
    /// the `repro index rebuild` backfill for caches that predate the
    /// store (or whose index was lost). Corrupt entries are skipped as
    /// misses, mirroring the engine's load policy; the fresh index is
    /// published atomically (tmp+rename, sorted by key). Failure
    /// records (which live only in the index — failures are never
    /// cached on disk) are dropped: the rebuilt index reflects exactly
    /// the reusable on-disk results.
    pub fn rebuild(dir: &Path) -> std::io::Result<(Store, RebuildStats)> {
        let mut stats = RebuildStats::default();
        let mut entries: Vec<StoreEntry> = Vec::new();
        for name in cache_entry_names(dir)? {
            stats.scanned += 1;
            let key = name.trim_end_matches(".json");
            match read_cache_entry(&dir.join(&name), key) {
                CacheEntryScan::Indexed(entry) => {
                    stats.indexed += 1;
                    entries.push(*entry);
                }
                CacheEntryScan::NoScenario => stats.no_scenario += 1,
                CacheEntryScan::Corrupt => stats.corrupt += 1,
            }
        }
        entries.sort_by(|a, b| a.key.cmp(&b.key));
        let mut text = String::new();
        for e in &entries {
            text.push_str(&e.to_json_line());
            text.push('\n');
        }
        std::fs::create_dir_all(dir)?;
        let tmp = dir.join(format!(
            ".{INDEX_FILE}.tmp.{}.{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&tmp, text)?;
        std::fs::rename(&tmp, dir.join(INDEX_FILE))?;
        Ok((Store::open(dir), stats))
    }

    /// Cache-directory statistics for `repro cache stats`.
    pub fn cache_stats(dir: &Path) -> std::io::Result<(Store, CacheDirStats)> {
        let store = Store::open(dir);
        let mut stats = CacheDirStats {
            orphans_swept: store.orphans_swept,
            ..CacheDirStats::default()
        };
        for name in cache_entry_names(dir)? {
            let path = dir.join(&name);
            stats.disk_entries += 1;
            stats.disk_bytes += std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
            let key = name.trim_end_matches(".json");
            if key_hash(key).is_some_and(|h| store.get(h).is_some()) {
                stats.covered += 1;
            }
        }
        stats.index_bytes = std::fs::metadata(dir.join(INDEX_FILE))
            .map(|m| m.len())
            .unwrap_or(0);
        for e in store.map.lock().expect("store map poisoned").values() {
            match e.outcome {
                StoreOutcome::Ok { .. } => stats.index_ok += 1,
                StoreOutcome::Failed { .. } => stats.index_failed += 1,
            }
        }
        Ok((store, stats))
    }
}

static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

fn cache_entry_names(dir: &Path) -> std::io::Result<Vec<String>> {
    let mut names: Vec<String> = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let Ok(entry) = entry else { continue };
        let name = entry.file_name().to_string_lossy().into_owned();
        let Some(stem) = name.strip_suffix(".json") else {
            continue;
        };
        if key_hash(stem).is_some() {
            names.push(name);
        }
    }
    names.sort();
    Ok(names)
}

enum CacheEntryScan {
    Indexed(Box<StoreEntry>),
    NoScenario,
    Corrupt,
}

/// Parse one on-disk cache entry for the rebuild scan. The layout is
/// the engine's (`{version, key, scenario?, report}`); anything that
/// would be a miss for the engine is `Corrupt` here.
fn read_cache_entry(path: &Path, key: &str) -> CacheEntryScan {
    let Ok(text) = std::fs::read_to_string(path) else {
        return CacheEntryScan::Corrupt;
    };
    let Ok(v) = json::parse(&text) else {
        return CacheEntryScan::Corrupt;
    };
    if v.get("version").and_then(Value::as_u64) != Some(CACHE_FORMAT_VERSION as u64) {
        return CacheEntryScan::Corrupt;
    }
    if v.get("key").and_then(Value::as_str) != Some(key) {
        return CacheEntryScan::Corrupt;
    }
    let Some(report) = v
        .get("report")
        .and_then(|r| bbrdom_netsim::SimReport::from_json_value(r).ok())
    else {
        return CacheEntryScan::Corrupt;
    };
    let Some(scenario) = v
        .get("scenario")
        .and_then(|s| Scenario::from_json_value(s).ok())
    else {
        return CacheEntryScan::NoScenario;
    };
    // Self-check: an entry whose embedded scenario does not hash to its
    // key would poison every query that trusts the parameters.
    if format!("{:032x}", scenario_hash(&scenario)) != key {
        return CacheEntryScan::Corrupt;
    }
    CacheEntryScan::Indexed(Box::new(StoreEntry {
        key: key.to_string(),
        scenario,
        outcome: StoreOutcome::Ok {
            events: Some(report.events_processed),
            result: TrialResult::from_report(&report),
        },
    }))
}

/// Remove stale tmp files (`<stem>.tmp.<pid>.<seq>`) left by writers
/// that died mid-write — SIGKILLed supervised workers never reach their
/// rename. A tmp file is an orphan when its embedded writer pid is
/// provably dead; when the pid cannot be checked the file must instead
/// outlive `ORPHAN_TMP_MAX_AGE` (one hour). Live writers (including this
/// process) are never touched, and neither are published entries.
/// Returns the number of files removed.
pub fn clean_orphan_tmps(dir: &Path) -> usize {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    let mut removed = 0;
    for entry in entries.filter_map(Result::ok) {
        let name = entry.file_name().to_string_lossy().into_owned();
        let Some(pos) = name.find(".tmp.") else {
            continue;
        };
        let mut parts = name[pos + ".tmp.".len()..].split('.');
        let pid = parts.next().and_then(|p| p.parse::<u32>().ok());
        let orphaned = match pid {
            Some(pid) if pid == std::process::id() => false,
            Some(pid) => match pid_alive(pid) {
                Some(alive) => !alive,
                None => aged_out(&entry.path()),
            },
            None => aged_out(&entry.path()),
        };
        if orphaned && std::fs::remove_file(entry.path()).is_ok() {
            removed += 1;
        }
    }
    removed
}

/// Whether a pid is alive — `Some(alive)` where checkable, `None` where
/// the platform offers no cheap answer (callers fall back to file age).
#[cfg(target_os = "linux")]
fn pid_alive(pid: u32) -> Option<bool> {
    Some(Path::new("/proc").join(pid.to_string()).exists())
}

#[cfg(not(target_os = "linux"))]
fn pid_alive(_pid: u32) -> Option<bool> {
    None
}

fn aged_out(path: &Path) -> bool {
    std::fs::metadata(path)
        .and_then(|m| m.modified())
        .ok()
        .and_then(|t| t.elapsed().ok())
        .is_some_and(|age| age > ORPHAN_TMP_MAX_AGE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::TrialFailure;
    use bbrdom_cca::CcaKind;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bbrdom-store-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn tiny(seed: u64) -> Scenario {
        Scenario::versus(10.0, 20.0, 2.0, 1, CcaKind::Bbr, 1, 1.0, seed)
    }

    fn entry_for(seed: u64) -> (String, Scenario, TrialOutcome) {
        let s = tiny(seed);
        let r = s.run();
        let key = crate::engine::scenario_hash_hex(&s);
        (key, s, TrialOutcome::Ok(r))
    }

    #[test]
    fn entry_lines_round_trip_bit_exactly() {
        let (key, s, outcome) = entry_for(1);
        let entry = StoreEntry {
            key: key.clone(),
            scenario: s,
            outcome: StoreOutcome::Ok {
                events: Some(12345),
                result: outcome.ok().unwrap().clone(),
            },
        };
        let line = entry.to_json_line();
        let back = StoreEntry::from_json_line(&line).expect("line parses");
        assert_eq!(back.key, key);
        assert_eq!(back.to_json_line(), line, "round trip is bit-exact");
        let StoreOutcome::Ok { events, result } = &back.outcome else {
            panic!("ok entry");
        };
        assert_eq!(*events, Some(12345));
        assert_eq!(
            result.to_json_value().to_json(),
            outcome.ok().unwrap().to_json_value().to_json()
        );
    }

    #[test]
    fn failed_entry_lines_round_trip() {
        let entry = StoreEntry {
            key: format!("{:032x}", 7u128),
            scenario: tiny(7),
            outcome: StoreOutcome::Failed {
                error: "event budget exceeded".into(),
                context: "2 flows".into(),
                event_budget: Some(1000),
                wall_budget_ns: None,
            },
        };
        let line = entry.to_json_line();
        let back = StoreEntry::from_json_line(&line).expect("line parses");
        assert_eq!(back.to_json_line(), line);
        assert!(back.ok().is_none());
    }

    #[test]
    fn malformed_and_wrong_version_lines_are_misses() {
        assert!(StoreEntry::from_json_line("{torn").is_none());
        assert!(StoreEntry::from_json_line("not json").is_none());
        let (key, s, outcome) = entry_for(2);
        let entry = StoreEntry {
            key,
            scenario: s,
            outcome: StoreOutcome::Ok {
                events: None,
                result: outcome.ok().unwrap().clone(),
            },
        };
        let line = entry.to_json_line().replace("\"v\":1", "\"v\":999");
        assert!(StoreEntry::from_json_line(&line).is_none());
    }

    #[test]
    fn record_supersedes_failure_with_success_but_never_the_reverse() {
        let dir = temp_dir("supersede");
        let store = Store::open(&dir);
        let (key, s, ok) = entry_for(3);
        let failed = TrialOutcome::Failed(TrialFailure {
            index: 0,
            error: "event budget exceeded".into(),
            context: "ctx".into(),
        });
        store.record(&key, &s, &failed, None, Some(10), None);
        assert!(store.lookup(key_hash(&key).unwrap(), None).is_none());
        // Failure -> success upgrades.
        store.record(&key, &s, &ok, Some(42), None, None);
        let (_, events) = store
            .lookup(key_hash(&key).unwrap(), None)
            .expect("success served");
        assert_eq!(events, Some(42));
        // Success is immutable: a later failure cannot clobber it.
        store.record(&key, &s, &failed, None, Some(10), None);
        assert!(store.lookup(key_hash(&key).unwrap(), None).is_some());
        // Reopen sees the same state (last line wins).
        let reopened = Store::open(&dir);
        assert!(reopened.lookup(key_hash(&key).unwrap(), None).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn budget_admission_mirrors_the_engine() {
        let dir = temp_dir("budget");
        let store = Store::open(&dir);
        let (key, s, ok) = entry_for(4);
        let hash = key_hash(&key).unwrap();
        store.record(&key, &s, &ok, Some(500), None, None);
        assert!(store.lookup(hash, None).is_some());
        assert!(store.lookup(hash, Some(500)).is_some());
        assert!(store.lookup(hash, Some(499)).is_none(), "over budget");
        // An entry with an unknown event count is never served under a
        // budget.
        let (key2, s2, ok2) = entry_for(5);
        store.record(&key2, &s2, &ok2, None, None, None);
        let hash2 = key_hash(&key2).unwrap();
        assert!(store.lookup(hash2, None).is_some());
        assert!(store.lookup(hash2, Some(u64::MAX)).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mix_and_goodput_helpers() {
        let s = Scenario::versus(50.0, 20.0, 2.0, 4, CcaKind::Bbr, 2, 1.0, 1);
        let entry = StoreEntry {
            key: format!("{:032x}", 1u128),
            scenario: s,
            outcome: StoreOutcome::Ok {
                events: None,
                result: TrialResult {
                    throughput_mbps: vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0],
                    cc_names: vec![
                        "cubic".into(),
                        "cubic".into(),
                        "cubic".into(),
                        "cubic".into(),
                        "bbr".into(),
                        "bbr".into(),
                    ],
                    avg_queue_occupancy_bytes: vec![0.0; 6],
                    backoff_times_secs: vec![Vec::new(); 6],
                    avg_queuing_delay_ms: 0.0,
                    utilization: 1.0,
                    dropped_packets: 0,
                    aqm_drops: 0,
                    completion_times_secs: vec![None; 6],
                    workload_spawned: 0,
                    workload_completed: 0,
                    workload_fct: Vec::new(),
                },
            },
        };
        assert_eq!(entry.mix(), "cubic:4+bbr:2");
        assert!(entry.mix_matches("cubic:4+bbr:2"));
        assert!(entry.mix_matches("bbr:2,cubic:4"), "order-insensitive");
        assert!(entry.mix_matches("bbr"), "bare name is a presence test");
        assert!(!entry.mix_matches("bbr:3+cubic:4"));
        assert!(!entry.mix_matches("cubic:4"), "exact specs match exactly");
        assert!(!entry.mix_matches("bbrv2"));
        let goodput = entry.goodput_by_cca();
        assert_eq!(goodput[0], ("cubic".to_string(), 2.5));
        assert_eq!(goodput[1], ("bbr".to_string(), 15.0));
    }

    #[test]
    fn orphan_sweep_spares_live_writers_and_entries() {
        let dir = temp_dir("orphans");
        // A published entry and the index itself are never candidates.
        std::fs::write(dir.join(format!("{:032x}.json", 9u128)), "{}").unwrap();
        std::fs::write(dir.join(INDEX_FILE), "").unwrap();
        // This process's own tmp (a writer mid-flight).
        let mine = dir.join(format!(".{:032x}.tmp.{}.0", 1u128, std::process::id()));
        std::fs::write(&mine, "x").unwrap();
        // A provably dead writer: spawn-and-reap a child for a pid that
        // is gone by the time we sweep.
        let dead_pid = {
            let mut child = std::process::Command::new("true")
                .spawn()
                .expect("spawn true");
            let pid = child.id();
            child.wait().expect("reap");
            pid
        };
        let dead = dir.join(format!(".{:032x}.tmp.{dead_pid}.3", 2u128));
        std::fs::write(&dead, "y").unwrap();
        // A fresh tmp with an unparsable pid: too young to age out.
        let young = dir.join(".cafe.tmp.notapid");
        std::fs::write(&young, "z").unwrap();

        let removed = clean_orphan_tmps(&dir);
        if cfg!(target_os = "linux") {
            assert_eq!(removed, 1);
            assert!(!dead.exists(), "dead writer's tmp is swept");
        }
        assert!(mine.exists(), "own tmp is never swept");
        assert!(young.exists(), "age fallback keeps fresh files");
        assert!(dir.join(format!("{:032x}.json", 9u128)).exists());
        assert!(dir.join(INDEX_FILE).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
