//! Fig. 12 — where the model breaks: ultra-deep buffers.
//!
//! Paper setup: one CUBIC vs. one BBR flow at 50 Mbps / 40 ms, buffer
//! swept 1–250 BDP. In buffers beyond ~60 BDP BBR's actual throughput
//! decays (it stops being cwnd-limited: after ProbeRTT it restarts from
//! ~1 BDP in flight and the 8-RTT gain cycles are too slow, at bloated
//! RTTs, to climb back to the 2×BDP cap before the next ProbeRTT), so
//! the model — which assumes a permanent 2×BDP in-flight — increasingly
//! over-estimates BBR. The paper annotates three regimes: cwnd-limited,
//! partially limited, and not limited.

use super::FigResult;
use crate::output::{mean, Table};
use crate::profile::Profile;
use crate::runner;
use crate::scenario::Scenario;
use bbrdom_cca::CcaKind;
use bbrdom_core::model::two_flow::TwoFlowModel;
use bbrdom_core::model::ware::WareModel;
use bbrdom_core::model::LinkParams;

pub const MBPS: f64 = 50.0;
pub const RTT_MS: f64 = 40.0;

pub fn buffer_sweep(profile: &Profile) -> Vec<f64> {
    let full: Vec<f64> = vec![
        1.0, 2.0, 5.0, 10.0, 20.0, 40.0, 60.0, 80.0, 100.0, 125.0, 150.0, 200.0, 250.0,
    ];
    profile.thin(full)
}

pub fn run(profile: &Profile) -> FigResult {
    let buffers = buffer_sweep(profile);
    let mut table = Table::new(
        format!("Fig 12: ultra-deep buffers, 1v1, {MBPS} Mbps, {RTT_MS} ms"),
        &[
            "buffer_bdp",
            "ware_mbps",
            "our_model_mbps",
            "actual_bbr_mbps",
        ],
    );
    let mut scenarios = Vec::new();
    for &b in &buffers {
        for t in 0..profile.trials {
            scenarios.push(Scenario::versus(
                MBPS,
                RTT_MS,
                b,
                1,
                CcaKind::Bbr,
                1,
                profile.duration_secs,
                0x1212_0000 + t as u64 * 131 + (b * 10.0) as u64,
            ));
        }
    }
    profile.apply_workload(&mut scenarios);
    let results = runner::run_all(&scenarios);
    let mut overestimates_deep = 0usize;
    let mut deep_points = 0usize;
    for (bi, &b) in buffers.iter().enumerate() {
        let trials: Vec<f64> = (0..profile.trials as usize)
            .map(|t| {
                results[bi * profile.trials as usize + t]
                    .mean_throughput_of("bbr")
                    .unwrap_or(0.0)
            })
            .collect();
        let actual = mean(&trials);
        let ours = TwoFlowModel::from_paper_units(MBPS, RTT_MS, b)
            .solve()
            .map(|p| p.bbr_mbps())
            .unwrap_or(f64::NAN);
        let ware = WareModel::new(
            LinkParams::from_paper_units(MBPS, RTT_MS, b),
            1,
            profile.duration_secs,
        )
        .predict()
        .map(|p| p.bbr_mbps())
        .unwrap_or(f64::NAN);
        if b >= 100.0 && ours.is_finite() {
            deep_points += 1;
            if ours > actual {
                overestimates_deep += 1;
            }
        }
        table.push_floats(&[b, ware, ours, actual]);
    }
    FigResult {
        id: "fig12",
        tables: vec![table],
        notes: vec![format!(
            "model over-estimates BBR at {overestimates_deep}/{deep_points} points ≥100 BDP \
             (expected: all — BBR stops being cwnd-limited there)"
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_reaches_ultra_deep() {
        let s = buffer_sweep(&Profile::full());
        assert_eq!(*s.last().unwrap(), 250.0);
    }
}
