//! One module per figure of the paper's evaluation.
//!
//! | Module | Paper figure | What it shows |
//! |--------|--------------|----------------|
//! | [`fig01`] | Fig. 1  | Ware et al. model vs. actual BBR share (1v1) |
//! | [`fig03`] | Fig. 3a–d | Our model vs. Ware vs. actual, 4 settings |
//! | [`fig04`] | Fig. 4a–b | Multi-flow predicted region vs. actual |
//! | [`fig05`] | Fig. 5a–d | Diminishing returns as BBR share grows |
//! | [`fig06`] | Fig. 6  | The NE crossing construction (model + sim) |
//! | [`fig07`] | Fig. 7  | BBR/BBRv2/Copa/Vivace vs. CUBIC splits |
//! | [`fig08`] | Fig. 8a–b | Throughput vs. queuing delay across splits |
//! | [`fig09`] | Fig. 9a–f | Predicted Nash region vs. empirical NE, 6 settings |
//! | [`fig10`] | Fig. 10 | Multi-RTT Nash equilibria |
//! | [`fig11`] | Fig. 11a–b | BBRv2 Nash equilibria vs. BBR-predicted region |
//! | [`fig12`] | Fig. 12 | Model failure in ultra-deep buffers |
//!
//! Each module exposes `run(profile, out_dir) -> FigResult`; the tables
//! are printed by the `repro` binary and written as CSV.

pub mod fig01;
pub mod fig03;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;

use crate::output::Table;
use crate::profile::Profile;
use std::path::Path;

/// The output of one figure reproduction.
#[derive(Debug, Clone)]
pub struct FigResult {
    /// Figure id, e.g. `"fig03"`.
    pub id: &'static str,
    /// Data tables (one per panel), also written as CSV.
    pub tables: Vec<Table>,
    /// Headline observations (printed after the tables, recorded in
    /// EXPERIMENTS.md).
    pub notes: Vec<String>,
}

impl FigResult {
    /// Write every table as `out_dir/<id>_<n>.csv`.
    pub fn write_csvs(&self, out_dir: &Path) -> std::io::Result<Vec<std::path::PathBuf>> {
        let mut paths = Vec::new();
        for (i, t) in self.tables.iter().enumerate() {
            paths.push(t.write_csv(out_dir, &format!("{}_{}", self.id, i))?);
        }
        Ok(paths)
    }

    /// Render everything as text.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for t in &self.tables {
            s.push_str(&t.render());
            s.push('\n');
        }
        for n in &self.notes {
            s.push_str(&format!("note: {n}\n"));
        }
        s
    }
}

/// All figure ids in paper order.
pub const ALL_FIGURES: [&str; 11] = [
    "fig01", "fig03", "fig04", "fig05", "fig06", "fig07", "fig08", "fig09", "fig10", "fig11",
    "fig12",
];

/// Run a figure by id.
pub fn run_figure(id: &str, profile: &Profile) -> Option<FigResult> {
    match id {
        "fig01" | "1" => Some(fig01::run(profile)),
        "fig03" | "3" => Some(fig03::run(profile)),
        "fig04" | "4" => Some(fig04::run(profile)),
        "fig05" | "5" => Some(fig05::run(profile)),
        "fig06" | "6" => Some(fig06::run(profile)),
        "fig07" | "7" => Some(fig07::run(profile)),
        "fig08" | "8" => Some(fig08::run(profile)),
        "fig09" | "9" => Some(fig09::run(profile)),
        "fig10" | "10" => Some(fig10::run(profile)),
        "fig11" | "11" => Some(fig11::run(profile)),
        "fig12" | "12" => Some(fig12::run(profile)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_figure_is_none() {
        assert!(run_figure("fig99", &Profile::smoke()).is_none());
    }

    #[test]
    fn all_ids_resolve() {
        // Don't run them (expensive); just check the id table matches the
        // dispatcher by probing a cheap one.
        assert_eq!(ALL_FIGURES.len(), 11);
    }
}
