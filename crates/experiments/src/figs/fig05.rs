//! Fig. 5a–d — diminishing returns for BBR as its share of flows grows.
//!
//! Paper setup: 10 or 20 flows through a 100 Mbps / 40 ms bottleneck at
//! buffer sizes of 3 and 10 BDP. The x-axis is the number of BBR flows;
//! the measured BBR per-flow average falls inside the model's predicted
//! region and *decreases* as BBR flows multiply — the observation that
//! drives the whole Nash-equilibrium argument.

use super::FigResult;
use crate::output::{mean, Table};
use crate::payoff::measure_payoffs;
use crate::profile::Profile;
use bbrdom_cca::CcaKind;
use bbrdom_core::model::multi_flow::{MultiFlowModel, SyncMode};

pub const MBPS: f64 = 100.0;
pub const RTT_MS: f64 = 40.0;
/// The four panels: (total flows, buffer in BDP).
pub const PANELS: [(u32, f64); 4] = [(10, 3.0), (20, 3.0), (10, 10.0), (20, 10.0)];

pub fn run_panel(n: u32, buffer_bdp: f64, profile: &Profile) -> (Table, bool) {
    let mut table = Table::new(
        format!("Fig 5: {n} flows, {buffer_bdp} BDP buffer, {MBPS} Mbps, {RTT_MS} ms"),
        &[
            "n_bbr",
            "sync_bound_mbps",
            "desync_bound_mbps",
            "actual_bbr_mbps",
            "fair_share_mbps",
        ],
    );
    // Use the payoff machinery but with `profile.trials` trials.
    let mut p = *profile;
    p.ne_trials = profile.trials;
    let measured = measure_payoffs(MBPS, RTT_MS, buffer_bdp, n, CcaKind::Bbr, &p, 0x0505);
    let curves = measured.mean_curves();
    let fair = MBPS / n as f64;
    let mut per_flow: Vec<f64> = Vec::new();
    for k in 1..=n {
        let m = MultiFlowModel::from_paper_units(MBPS, RTT_MS, buffer_bdp, n - k, k);
        let sync = m
            .solve(SyncMode::Synchronized)
            .map(|x| x.bbr_per_flow_mbps())
            .unwrap_or(f64::NAN);
        let desync = m
            .solve(SyncMode::DeSynchronized)
            .map(|x| x.bbr_per_flow_mbps())
            .unwrap_or(f64::NAN);
        let actual = curves.x_per_flow[k as usize];
        per_flow.push(actual);
        table.push_floats(&[k as f64, sync, desync, actual, fair]);
    }
    // Diminishing returns: the measured curve trends downward. Compare
    // first-third vs last-third means to be robust to noise.
    let third = (per_flow.len() / 3).max(1);
    let head = mean(&per_flow[..third]);
    let tail = mean(&per_flow[per_flow.len() - third..]);
    (table, head > tail)
}

pub fn run(profile: &Profile) -> FigResult {
    let mut tables = Vec::new();
    let mut notes = Vec::new();
    for (n, b) in PANELS {
        // Scale panel size down with cheap profiles (smoke runs 4+ flows;
        // quick/full keep the paper's 10/20).
        let n = n.min(profile.ne_flows.max(4));
        let (t, diminishing) = run_panel(n, b, profile);
        notes.push(format!(
            "{n} flows @ {b} BDP: diminishing returns {}",
            if diminishing { "CONFIRMED" } else { "NOT seen" }
        ));
        tables.push(t);
    }
    FigResult {
        id: "fig05",
        tables,
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_panel_rows_cover_all_counts() {
        let (table, _) = run_panel(4, 3.0, &Profile::smoke());
        assert_eq!(table.rows.len(), 4);
    }
}
