//! Fig. 3a–d — our 2-flow model vs. Ware et al. vs. actual throughput.
//!
//! Paper setup: one CUBIC vs. one BBR flow; panels (a)–(d) are the four
//! combinations of {50, 100} Mbps × {40, 80} ms; buffer swept 1–30 BDP
//! in 0.5-BDP steps. Headline claim: the new model is within ~5% of the
//! measured BBR throughput over this range, while Ware et al. err ≥30%
//! in shallow buffers.

use super::FigResult;
use crate::output::{mean, Table};
use crate::profile::Profile;
use crate::runner;
use crate::scenario::Scenario;
use bbrdom_cca::CcaKind;
use bbrdom_core::model::two_flow::TwoFlowModel;
use bbrdom_core::model::ware::WareModel;
use bbrdom_core::model::LinkParams;

/// The four panels: (mbps, rtt_ms).
pub const PANELS: [(f64, f64); 4] = [(50.0, 40.0), (50.0, 80.0), (100.0, 40.0), (100.0, 80.0)];

pub fn buffer_sweep(profile: &Profile) -> Vec<f64> {
    let full: Vec<f64> = (2..=60).map(|i| i as f64 * 0.5).collect();
    profile.thin(full)
}

/// Data for one panel; exposed so benches/tests can run a single panel.
pub fn run_panel(mbps: f64, rtt_ms: f64, profile: &Profile) -> (Table, f64) {
    let buffers = buffer_sweep(profile);
    let mut table = Table::new(
        format!("Fig 3: model vs actual, {mbps} Mbps, {rtt_ms} ms"),
        &[
            "buffer_bdp",
            "ware_mbps",
            "our_model_mbps",
            "actual_bbr_mbps",
            "model_rel_err",
        ],
    );
    let mut scenarios = Vec::new();
    for &b in &buffers {
        for t in 0..profile.trials {
            scenarios.push(Scenario::versus(
                mbps,
                rtt_ms,
                b,
                1,
                CcaKind::Bbr,
                1,
                profile.duration_secs,
                0x0303_0000
                    + (mbps as u64) * 17
                    + (rtt_ms as u64) * 29
                    + t as u64 * 131
                    + (b * 10.0) as u64,
            ));
        }
    }
    profile.apply_workload(&mut scenarios);
    let results = runner::run_all(&scenarios);
    let mut errs = Vec::new();
    for (bi, &b) in buffers.iter().enumerate() {
        let trials: Vec<f64> = (0..profile.trials as usize)
            .map(|t| {
                results[bi * profile.trials as usize + t]
                    .mean_throughput_of("bbr")
                    .unwrap_or(0.0)
            })
            .collect();
        let actual = mean(&trials);
        let ours = TwoFlowModel::from_paper_units(mbps, rtt_ms, b)
            .solve()
            .map(|p| p.bbr_mbps())
            .unwrap_or(f64::NAN);
        let ware = WareModel::new(
            LinkParams::from_paper_units(mbps, rtt_ms, b),
            1,
            profile.duration_secs,
        )
        .predict()
        .map(|p| p.bbr_mbps())
        .unwrap_or(f64::NAN);
        let rel = if actual > 0.5 {
            (ours - actual).abs() / actual
        } else {
            f64::NAN
        };
        if rel.is_finite() {
            errs.push(rel);
        }
        table.push_floats(&[b, ware, ours, actual, rel]);
    }
    (table, mean(&errs))
}

pub fn run(profile: &Profile) -> FigResult {
    let mut tables = Vec::new();
    let mut notes = Vec::new();
    for (mbps, rtt_ms) in PANELS {
        let (table, mean_err) = run_panel(mbps, rtt_ms, profile);
        // Deep buffers need runs much longer than one CUBIC epoch
        // (K ≈ 25 s at 30 BDP/80 ms) to reach steady state; short-profile
        // errors there measure the transient, not the model. Report the
        // shallow range separately.
        let shallow: Vec<f64> = table
            .rows
            .iter()
            .filter(|r| r[0].parse::<f64>().unwrap_or(99.0) <= 8.0)
            .filter_map(|r| r[4].parse::<f64>().ok())
            .filter(|e| e.is_finite())
            .collect();
        let shallow_err = crate::output::mean(&shallow);
        notes.push(format!(
            "{mbps} Mbps/{rtt_ms} ms: mean |model error| = {:.1}% overall, {:.1}% for ≤8 BDP              (deep-buffer error at short durations is CUBIC's convergence transient)",
            mean_err * 100.0,
            shallow_err * 100.0
        ));
        tables.push(table);
    }
    FigResult {
        id: "fig03",
        tables,
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_panel_smoke() {
        let (table, err) = run_panel(50.0, 40.0, &Profile::smoke());
        assert!(!table.rows.is_empty());
        // Even the smoke profile should land in the right ballpark.
        assert!(err.is_finite());
    }
}
