//! Fig. 1 — Ware et al.'s model vs. BBR's actual bandwidth share.
//!
//! Paper setup: one CUBIC vs. one BBR flow, 50 Mbps bottleneck, 40 ms
//! RTT, 2-minute flows, buffer swept 0.5–50 BDP. The figure motivates
//! the paper: the Ware model (which ignores buffer emptiness) diverges
//! ≥30% from reality in shallow/moderate buffers.

use super::FigResult;
use crate::output::{mean, Table};
use crate::profile::Profile;
use crate::runner;
use crate::scenario::Scenario;
use bbrdom_cca::CcaKind;
use bbrdom_core::model::ware::WareModel;
use bbrdom_core::model::LinkParams;

pub const MBPS: f64 = 50.0;
pub const RTT_MS: f64 = 40.0;

/// Buffer sweep in BDP (paper: 0.5–50).
pub fn buffer_sweep(profile: &Profile) -> Vec<f64> {
    let full: Vec<f64> = (1..=100).map(|i| i as f64 * 0.5).collect();
    profile.thin(full)
}

pub fn run(profile: &Profile) -> FigResult {
    let buffers = buffer_sweep(profile);
    let mut table = Table::new(
        format!("Fig 1: BBR share, 1 CUBIC vs 1 BBR, {MBPS} Mbps, {RTT_MS} ms"),
        &["buffer_bdp", "ware_mbps", "actual_bbr_mbps"],
    );

    // All (buffer × trial) scenarios at once for parallel fan-out.
    let mut scenarios = Vec::new();
    for &b in &buffers {
        for t in 0..profile.trials {
            scenarios.push(Scenario::versus(
                MBPS,
                RTT_MS,
                b,
                1,
                CcaKind::Bbr,
                1,
                profile.duration_secs,
                0x0101_0000 + t as u64 * 131 + (b * 10.0) as u64,
            ));
        }
    }
    profile.apply_workload(&mut scenarios);
    let results = runner::run_all(&scenarios);

    let mut max_ware_err: f64 = 0.0;
    for (bi, &b) in buffers.iter().enumerate() {
        let trials: Vec<f64> = (0..profile.trials as usize)
            .map(|t| {
                results[bi * profile.trials as usize + t]
                    .mean_throughput_of("bbr")
                    .unwrap_or(0.0)
            })
            .collect();
        let actual = mean(&trials);
        let ware = WareModel::new(
            LinkParams::from_paper_units(MBPS, RTT_MS, b),
            1,
            profile.duration_secs,
        )
        .predict()
        .map(|p| p.bbr_mbps())
        .unwrap_or(f64::NAN);
        if actual > 1.0 {
            max_ware_err = max_ware_err.max((ware - actual).abs() / actual);
        }
        table.push_floats(&[b, ware, actual]);
    }

    FigResult {
        id: "fig01",
        tables: vec![table],
        notes: vec![format!(
            "max relative error of the Ware model vs simulation: {:.0}%",
            max_ware_err * 100.0
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_table() {
        let r = run(&Profile::smoke());
        assert_eq!(r.tables.len(), 1);
        assert_eq!(
            r.tables[0].rows.len(),
            buffer_sweep(&Profile::smoke()).len()
        );
        assert!(!r.notes.is_empty());
    }
}
