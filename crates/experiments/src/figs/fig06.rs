//! Fig. 6 — the Nash-equilibrium crossing construction.
//!
//! The paper's Fig. 6 is a schematic: BBR's per-flow bandwidth declines
//! from point A (few BBR flows, above fair share) to point B (all BBR,
//! exactly fair share); where the line crosses the fair-share line is
//! the stable equilibrium C. We regenerate it with real numbers: the
//! model's per-distribution curve, the fair-share line, and the measured
//! curve from the simulator, plus the switch-incentive at each state
//! (positive left of the crossing, negative right of it).

use super::FigResult;
use crate::output::Table;
use crate::payoff::{default_epsilon_mbps, measure_payoffs};
use crate::profile::Profile;
use bbrdom_cca::CcaKind;
use bbrdom_core::model::multi_flow::SyncMode;
use bbrdom_core::model::nash::NashPredictor;

pub const MBPS: f64 = 100.0;
pub const RTT_MS: f64 = 40.0;
pub const BUFFER_BDP: f64 = 3.0;
pub const N: u32 = 10;

pub fn run(profile: &Profile) -> FigResult {
    let n = N.min(profile.ne_flows);
    let predictor = NashPredictor::from_paper_units(MBPS, RTT_MS, BUFFER_BDP, n);
    let fair = predictor.fair_share() * 8.0 / 1e6;

    let mut table = Table::new(
        format!("Fig 6: NE construction, {n} flows, {MBPS} Mbps, {BUFFER_BDP} BDP"),
        &[
            "n_bbr",
            "model_bbr_per_flow_mbps",
            "measured_bbr_per_flow_mbps",
            "fair_share_mbps",
            "switch_incentive_mbps",
        ],
    );

    let mut p = *profile;
    p.ne_trials = profile.trials;
    let measured = measure_payoffs(MBPS, RTT_MS, BUFFER_BDP, n, CcaKind::Bbr, &p, 0x0606);
    let curves = measured.mean_curves();

    let model_curve = predictor
        .distribution_curve(SyncMode::Synchronized)
        .unwrap_or_default();

    for k in 1..=n {
        let model = model_curve
            .iter()
            .find(|(nb, _)| *nb == k)
            .map(|(_, bw)| bw * 8.0 / 1e6)
            .unwrap_or(f64::NAN);
        let meas = curves.x_per_flow[k as usize];
        // Incentive for a CUBIC flow at state k−1 to become the k-th BBR
        // flow: bbr(k) − cubic(k−1).
        let incentive = meas - curves.cubic_per_flow[(k - 1) as usize];
        table.push_floats(&[k as f64, model, meas, fair, incentive]);
    }

    let ne_pred = predictor
        .predict(SyncMode::Synchronized)
        .map(|ne| ne.n_bbr)
        .unwrap_or(f64::NAN);
    let eps = default_epsilon_mbps(MBPS, n);
    let observed = measured.observed_ne_cubic_counts(eps);

    FigResult {
        id: "fig06",
        tables: vec![table],
        notes: vec![
            format!("model NE crossing at n_bbr ≈ {ne_pred:.2} (point C)"),
            format!(
                "empirical NE states (as #CUBIC): {:?} out of {n} flows",
                observed
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_has_rows_for_every_bbr_count() {
        let r = run(&Profile::smoke());
        // n is clamped to the profile's ne_flows.
        let n = N.min(Profile::smoke().ne_flows);
        assert_eq!(r.tables[0].rows.len(), n as usize);
    }
}
