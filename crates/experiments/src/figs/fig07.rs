//! Fig. 7 — do other post-BBR algorithms also start above fair share?
//!
//! Paper setup: 10 flows, 100 Mbps, 2 BDP buffer; for each challenger
//! X ∈ {PCC-Vivace, BBR, BBRv2, Copa}, measure the per-flow average
//! throughput of the X flows across all 11 CUBIC/X splits. BBR, BBRv2
//! and Vivace obtain a disproportionately large share with few flows
//! (so a mixed NE must exist); Copa stays below fair share everywhere.

use super::FigResult;
use crate::output::Table;
use crate::payoff::measure_payoffs;
use crate::profile::Profile;
use bbrdom_cca::CcaKind;

pub const MBPS: f64 = 100.0;
pub const RTT_MS: f64 = 40.0;
pub const BUFFER_BDP: f64 = 2.0;
pub const N: u32 = 10;

pub fn run(profile: &Profile) -> FigResult {
    let n = N.min(profile.ne_flows);
    let fair = MBPS / n as f64;
    let mut table = Table::new(
        format!("Fig 7: per-flow throughput of X vs #X flows ({n} flows, {BUFFER_BDP} BDP)"),
        &["n_x", "fair_share", "pcc_vivace", "bbr", "bbrv2", "copa"],
    );
    let mut p = *profile;
    p.ne_trials = profile.trials;
    let challengers = [CcaKind::Vivace, CcaKind::Bbr, CcaKind::BbrV2, CcaKind::Copa];
    let curves: Vec<Vec<f64>> = challengers
        .iter()
        .map(|&x| {
            measure_payoffs(MBPS, RTT_MS, BUFFER_BDP, n, x, &p, 0x0707)
                .mean_curves()
                .x_per_flow
        })
        .collect();
    #[allow(clippy::needless_range_loop)] // k is data (col 1), not just an index
    for k in 1..=n as usize {
        table.push_floats(&[
            k as f64,
            fair,
            curves[0][k],
            curves[1][k],
            curves[2][k],
            curves[3][k],
        ]);
    }

    // Property (i) of §4.2: disproportionate share at small k.
    let mut notes = Vec::new();
    for (i, x) in challengers.iter().enumerate() {
        let above = curves[i][1] > fair;
        notes.push(format!(
            "{}: starts {} fair share at n_x=1 ({:.1} vs {:.1} Mbps) → NE with CUBIC {}",
            x.name(),
            if above { "ABOVE" } else { "BELOW" },
            curves[i][1],
            fair,
            if above { "expected" } else { "not implied" },
        ));
    }
    FigResult {
        id: "fig07",
        tables: vec![table],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_table_has_all_challengers() {
        let r = run(&Profile::smoke());
        assert_eq!(r.tables[0].columns.len(), 6);
        assert_eq!(r.notes.len(), 4);
    }
}
