//! Fig. 10 — Nash equilibria with heterogeneous RTTs (§4.5).
//!
//! Paper setup: 30 flows in three groups of 10 with RTTs 10/30/50 ms,
//! 100 Mbps bottleneck, buffer in multiples of the *shortest* RTT's BDP.
//! The paper ran all 2³⁰ CUBIC/BBR assignments; we exploit within-group
//! symmetry — payoffs depend only on `(k₁, k₂, k₃)` — to enumerate
//! `(n+1)³` states exactly (the paper's own methodology implies this
//! reduction; flows within a group are interchangeable).
//!
//! Verified observations:
//! * at least one NE exists at every buffer size;
//! * at the NE, CUBIC concentrates in the short-RTT groups (loss-based
//!   CCAs favour short RTTs; BBR favours long RTTs).

use super::FigResult;
use crate::output::Table;
use crate::profile::Profile;
use crate::runner;
use crate::scenario::{BackendSpec, FlowSpec, Scenario};
use bbrdom_cca::CcaKind;
use bbrdom_core::game::multigroup::{GroupPayoffs, MultiGroupGame};
use std::collections::HashMap;

pub const MBPS: f64 = 100.0;
pub const GROUP_RTTS_MS: [f64; 3] = [10.0, 30.0, 50.0];

/// Buffer sizes (in BDP of the shortest RTT) to test.
pub fn buffer_sweep(profile: &Profile) -> Vec<f64> {
    profile.thin(vec![2.0, 5.0, 10.0, 20.0, 35.0, 50.0])
}

/// Per-group size: the paper uses 10; quick profiles shrink it.
pub fn group_size(profile: &Profile) -> u32 {
    (profile.ne_flows / 6).clamp(2, 10)
}

fn scenario_for_state(
    state: &[u32],
    g: u32,
    buffer_bdp: f64,
    duration: f64,
    seed: u64,
) -> Scenario {
    let mut flows = Vec::new();
    for (gi, &k) in state.iter().enumerate() {
        let rtt = GROUP_RTTS_MS[gi];
        for _ in 0..(g - k) {
            flows.push(FlowSpec::long(CcaKind::Cubic, rtt));
        }
        for _ in 0..k {
            flows.push(FlowSpec::long(CcaKind::Bbr, rtt));
        }
    }
    Scenario {
        mbps: MBPS,
        buffer_bdp,
        reference_rtt_ms: GROUP_RTTS_MS[0], // normalize by shortest RTT
        flows,
        duration_secs: duration,
        seed,
        discipline: Default::default(),
        faults: Default::default(),
        early_stop: None,
        backend: BackendSpec::Des,
        workload: None,
        topology: None,
    }
}

/// Measure per-group payoffs for every state at one buffer size, then
/// enumerate the equilibria.
pub fn find_equilibria(buffer_bdp: f64, profile: &Profile) -> (Vec<Vec<u32>>, u32) {
    let g = group_size(profile);
    let n_states = ((g + 1) as usize).pow(3);
    // Enumerate states and build scenarios.
    let mut states = Vec::with_capacity(n_states);
    for k1 in 0..=g {
        for k2 in 0..=g {
            for k3 in 0..=g {
                states.push(vec![k1, k2, k3]);
            }
        }
    }
    let mut scenarios: Vec<Scenario> = states
        .iter()
        .enumerate()
        .map(|(i, s)| {
            scenario_for_state(
                s,
                g,
                buffer_bdp,
                profile.duration_secs,
                0x1010 + i as u64 * 97 + (buffer_bdp * 100.0) as u64,
            )
        })
        .collect();
    profile.apply_workload(&mut scenarios);
    let results = runner::run_all(&scenarios);

    // Per-state, per-group mean throughput of each algorithm. Flows are
    // laid out group-major: group gi occupies [gi*g, (gi+1)*g), CUBIC
    // flows first.
    let mut payoffs: HashMap<Vec<u32>, GroupPayoffs> = HashMap::new();
    for (state, result) in states.iter().zip(&results) {
        let mut bbr = vec![0.0; 3];
        let mut cubic = vec![0.0; 3];
        for gi in 0..3usize {
            let k = state[gi] as usize;
            let base = gi * g as usize;
            let cubic_slice = &result.throughput_mbps[base..base + (g as usize - k)];
            let bbr_slice = &result.throughput_mbps[base + (g as usize - k)..base + g as usize];
            cubic[gi] = if cubic_slice.is_empty() {
                0.0
            } else {
                cubic_slice.iter().sum::<f64>() / cubic_slice.len() as f64
            };
            bbr[gi] = if bbr_slice.is_empty() {
                0.0
            } else {
                bbr_slice.iter().sum::<f64>() / bbr_slice.len() as f64
            };
        }
        payoffs.insert(state.clone(), GroupPayoffs { bbr, cubic });
    }

    // The paper notes throughput gains are marginal near the NE and that
    // noise shifts equilibria between neighbouring states; a 5%-of-fair-
    // share tolerance absorbs single-trial noise at quick scale.
    let eps = 0.05 * MBPS / (3.0 * g as f64);
    let game = MultiGroupGame::new(vec![g; 3], move |state: &[u32]| {
        payoffs.get(state).cloned().expect("state measured")
    })
    .with_epsilon(eps);
    (game.nash_equilibria(), g)
}

pub fn run(profile: &Profile) -> FigResult {
    let buffers = buffer_sweep(profile);
    let mut table = Table::new(
        format!(
            "Fig 10: multi-RTT NE (groups of {} flows at {:?} ms, {MBPS} Mbps)",
            group_size(profile),
            GROUP_RTTS_MS
        ),
        &[
            "buffer_bdp",
            "ne_count",
            "ne_states_bbr(k10,k30,k50)",
            "total_cubic_at_ne",
            "cubic_in_shortest_rtt",
        ],
    );
    let mut all_have_ne = true;
    let mut ordering_holds = true;
    for &b in &buffers {
        let (nes, g) = find_equilibria(b, profile);
        all_have_ne &= !nes.is_empty();
        for ne in &nes {
            // Paper's ordering: CUBIC concentrates at short RTTs, i.e.
            // BBR count is non-decreasing with group RTT.
            if !(ne[0] <= ne[1] && ne[1] <= ne[2]) {
                ordering_holds = false;
            }
        }
        let states_str = nes
            .iter()
            .map(|s| format!("({},{},{})", s[0], s[1], s[2]))
            .collect::<Vec<_>>()
            .join(" ");
        let total_cubic: Vec<String> = nes
            .iter()
            .map(|s| (3 * g - s.iter().sum::<u32>()).to_string())
            .collect();
        let short_cubic: Vec<String> = nes.iter().map(|s| (g - s[0]).to_string()).collect();
        table.push_row(vec![
            format!("{b:.1}"),
            nes.len().to_string(),
            states_str,
            total_cubic.join(";"),
            short_cubic.join(";"),
        ]);
    }
    FigResult {
        id: "fig10",
        tables: vec![table],
        notes: vec![
            format!(
                "NE exists at every buffer size: {}",
                if all_have_ne { "YES" } else { "NO" }
            ),
            format!(
                "CUBIC concentrates in short-RTT groups at every NE: {}",
                if ordering_holds {
                    "YES"
                } else {
                    "NO (see table)"
                }
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_size_scales_with_profile() {
        assert!(group_size(&Profile::smoke()) >= 2);
        assert_eq!(group_size(&Profile::full()), 8);
    }

    #[test]
    fn scenario_layout_is_group_major_cubic_first() {
        let s = scenario_for_state(&[1, 0, 2], 2, 5.0, 1.0, 0);
        assert_eq!(s.flows.len(), 6);
        // Group 0: 1 cubic then 1 bbr at 10ms.
        assert_eq!(s.flows[0].rtt_ms, 10.0);
        assert_eq!(s.flows[1].rtt_ms, 10.0);
        // Group 2: two bbr at 50ms.
        assert_eq!(s.flows[4].rtt_ms, 50.0);
        assert_eq!(s.flows[5].rtt_ms, 50.0);
    }
}
