//! Fig. 8a–b — throughput is the asymmetric metric; queuing delay is
//! shared.
//!
//! Paper setup: the 10-flow CUBIC/BBR evolution at 100 Mbps, 2 BDP,
//! 40 ms. Panel (a): per-algorithm average throughput across the splits
//! (the curves cross). Panel (b): the average queuing delay — a metric
//! *shared* by all flows at the bottleneck — barely moves until the
//! all-BBR point, so throughput, not delay, is what drives switching
//! (§4.3's argument for simple utility functions).

use super::FigResult;
use crate::output::Table;
use crate::payoff::measure_payoffs;
use crate::profile::Profile;
use bbrdom_cca::CcaKind;

pub const MBPS: f64 = 100.0;
pub const RTT_MS: f64 = 40.0;
pub const BUFFER_BDP: f64 = 2.0;
pub const N: u32 = 10;

pub fn run(profile: &Profile) -> FigResult {
    let n = N.min(profile.ne_flows);
    let mut p = *profile;
    p.ne_trials = profile.trials;
    let measured = measure_payoffs(MBPS, RTT_MS, BUFFER_BDP, n, CcaKind::Bbr, &p, 0x0808);
    let curves = measured.mean_curves();

    let mut tp = Table::new(
        format!("Fig 8a: average per-flow throughput ({n} flows, {BUFFER_BDP} BDP)"),
        &["n_bbr", "cubic_mbps", "bbr_mbps"],
    );
    let mut qd = Table::new(
        "Fig 8b: average queuing delay (shared by all flows)",
        &["n_bbr", "queuing_delay_ms"],
    );
    for k in 0..=n as usize {
        let cubic = if k < n as usize {
            curves.cubic_per_flow[k]
        } else {
            f64::NAN
        };
        let bbr = if k > 0 {
            curves.x_per_flow[k]
        } else {
            f64::NAN
        };
        tp.push_floats(&[k as f64, cubic, bbr]);
        qd.push_floats(&[k as f64, curves.queuing_delay_ms[k]]);
    }

    // §4.3's claim: delay varies far less (relatively) across mixed
    // states than the throughput asymmetry does.
    let mixed: Vec<f64> = (1..n as usize)
        .map(|k| curves.queuing_delay_ms[k])
        .collect();
    let d_min = mixed.iter().cloned().fold(f64::INFINITY, f64::min);
    let d_max = mixed.iter().cloned().fold(0.0, f64::max);
    FigResult {
        id: "fig08",
        tables: vec![tp, qd],
        notes: vec![format!(
            "queuing delay across mixed states spans {d_min:.1}–{d_max:.1} ms; \
             only the all-BBR state departs (BBR drains the standing queue)"
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_produces_two_panels() {
        let r = run(&Profile::smoke());
        assert_eq!(r.tables.len(), 2);
        let n = N.min(Profile::smoke().ne_flows) as usize;
        assert_eq!(r.tables[0].rows.len(), n + 1);
    }
}
