//! Fig. 9a–f — predicted Nash region vs. empirically-found equilibria.
//!
//! Paper setup: 50 flows, {50, 100} Mbps × {20, 40, 80} ms, buffer
//! 0.5–50 BDP; for each buffer, run all 51 CUBIC/BBR splits, find every
//! distribution where no flow gains by switching, and plot the number of
//! CUBIC flows at those equilibria against the model's predicted band
//! (Eq. (25) under the two synchronization bounds).
//!
//! Two paper observations this module verifies:
//! * more CUBIC at the NE in deeper buffers;
//! * the predicted region is identical across panels once the buffer is
//!   normalized by BDP (it depends on neither C nor RTT individually).

use super::FigResult;
use crate::output::Table;
use crate::payoff::{default_epsilon_mbps, measure_payoffs};
use crate::profile::Profile;
use bbrdom_cca::CcaKind;
use bbrdom_core::model::multi_flow::SyncMode;
use bbrdom_core::model::nash::NashPredictor;

/// The six panels: (mbps, rtt_ms).
pub const PANELS: [(f64, f64); 6] = [
    (50.0, 20.0),
    (50.0, 40.0),
    (50.0, 80.0),
    (100.0, 20.0),
    (100.0, 40.0),
    (100.0, 80.0),
];

pub fn buffer_sweep(profile: &Profile) -> Vec<f64> {
    let full: Vec<f64> = (1..=100).map(|i| i as f64 * 0.5).collect();
    profile.thin(full)
}

/// One panel: per buffer size, the model band and the observed NE set.
pub fn run_panel(mbps: f64, rtt_ms: f64, profile: &Profile, challenger: CcaKind) -> Table {
    let n = profile.ne_flows;
    let buffers = buffer_sweep(profile);
    let mut table = Table::new(
        format!(
            "Fig 9: #CUBIC at NE, {n} flows ({} challenger), {mbps} Mbps, {rtt_ms} ms",
            challenger.name()
        ),
        &[
            "buffer_bdp",
            "pred_cubic_sync",
            "pred_cubic_desync",
            "observed_ne_cubic",
        ],
    );
    let eps = default_epsilon_mbps(mbps, n);
    for &b in &buffers {
        let predictor = NashPredictor::from_paper_units(mbps, rtt_ms, b, n);
        let sync = predictor
            .predict(SyncMode::Synchronized)
            .map(|p| p.n_cubic)
            .unwrap_or(f64::NAN);
        let desync = predictor
            .predict(SyncMode::DeSynchronized)
            .map(|p| p.n_cubic)
            .unwrap_or(f64::NAN);
        let seed = 0x0909 + (mbps as u64) * 31 + (rtt_ms as u64) * 7 + (b * 100.0) as u64;
        let observed = if profile.adaptive {
            // Model-guided search: simulate only the cells needed to
            // certify equilibria near the Eq. (25) crossing (dense
            // fallback inside when model and measurement disagree).
            crate::adaptive::find_ne_adaptive(
                mbps,
                rtt_ms,
                b,
                n,
                challenger,
                profile,
                seed,
                crate::scenario::DisciplineSpec::DropTail,
                &crate::scenario::FaultSpec::default(),
            )
            .ne_cubic
        } else {
            measure_payoffs(mbps, rtt_ms, b, n, challenger, profile, seed)
                .observed_ne_cubic_counts(eps)
        };
        let observed_str = observed
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(";");
        table.push_row(vec![
            format!("{b:.1}"),
            format!("{sync:.2}"),
            format!("{desync:.2}"),
            observed_str,
        ]);
    }
    table
}

pub fn run(profile: &Profile) -> FigResult {
    let mut tables = Vec::new();
    for (mbps, rtt_ms) in PANELS {
        tables.push(run_panel(mbps, rtt_ms, profile, CcaKind::Bbr));
    }
    // BDP-invariance note: the model columns must agree across panels.
    let invariant = {
        let reference: Vec<(String, String)> = tables[0]
            .rows
            .iter()
            .map(|r| (r[1].clone(), r[2].clone()))
            .collect();
        tables.iter().all(|t| {
            t.rows
                .iter()
                .map(|r| (r[1].clone(), r[2].clone()))
                .collect::<Vec<_>>()
                == reference
        })
    };
    FigResult {
        id: "fig09",
        tables,
        notes: vec![format!(
            "predicted region identical across all 6 panels (BDP invariance): {}",
            if invariant { "YES" } else { "NO" }
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_panel_runs() {
        let t = run_panel(50.0, 20.0, &Profile::smoke(), CcaKind::Bbr);
        assert!(!t.rows.is_empty());
        // Observed NE column is a ;-separated list, possibly empty.
        for row in &t.rows {
            assert_eq!(row.len(), 4);
        }
    }

    #[test]
    fn adaptive_smoke_panel_matches_dense_shape() {
        let dense = run_panel(50.0, 20.0, &Profile::smoke(), CcaKind::Bbr);
        let adaptive_profile = Profile {
            adaptive: true,
            ..Profile::smoke()
        };
        let adaptive = run_panel(50.0, 20.0, &adaptive_profile, CcaKind::Bbr);
        assert_eq!(adaptive.rows.len(), dense.rows.len());
        // Model columns are identical; only the observed column may
        // differ (and then only within the certification tolerance).
        for (a, d) in adaptive.rows.iter().zip(&dense.rows) {
            assert_eq!(a[..3], d[..3]);
        }
    }
}
