//! Fig. 4a–b — multi-flow predicted region vs. actual per-flow BBR
//! throughput.
//!
//! Paper setup: (a) 5 CUBIC vs. 5 BBR and (b) 10 CUBIC vs. 10 BBR at a
//! 100 Mbps / 40 ms bottleneck, buffer 1–30 BDP. The measured BBR
//! per-flow average must fall inside the band between the
//! CUBIC-synchronized and de-synchronized bounds; the paper found the
//! empirical points near the *de-synchronized* bound and verified from
//! traces that CUBIC was indeed not synchronized in these runs.

use super::FigResult;
use crate::output::{mean, Table};
use crate::profile::Profile;
use crate::runner;
use crate::scenario::Scenario;
use crate::sync::synchronization_index;
use bbrdom_cca::CcaKind;
use bbrdom_core::model::multi_flow::{MultiFlowModel, SyncMode};
use bbrdom_core::model::ware::WareModel;
use bbrdom_core::model::LinkParams;

pub const MBPS: f64 = 100.0;
pub const RTT_MS: f64 = 40.0;
/// The two panels: (n_cubic, n_bbr).
pub const PANELS: [(u32, u32); 2] = [(5, 5), (10, 10)];

pub fn buffer_sweep(profile: &Profile) -> Vec<f64> {
    let full: Vec<f64> = (1..=30).map(|i| i as f64).collect();
    profile.thin(full)
}

pub fn run_panel(n_cubic: u32, n_bbr: u32, profile: &Profile) -> (Table, f64) {
    let buffers = buffer_sweep(profile);
    let mut table = Table::new(
        format!("Fig 4: {n_cubic} CUBIC vs {n_bbr} BBR, {MBPS} Mbps, {RTT_MS} ms"),
        &[
            "buffer_bdp",
            "ware_mbps",
            "sync_bound_mbps",
            "desync_bound_mbps",
            "actual_bbr_mbps",
            "sync_index",
        ],
    );
    let mut scenarios = Vec::new();
    for &b in &buffers {
        for t in 0..profile.trials {
            scenarios.push(Scenario::versus(
                MBPS,
                RTT_MS,
                b,
                n_cubic,
                CcaKind::Bbr,
                n_bbr,
                profile.duration_secs,
                0x0404_0000 + n_cubic as u64 * 53 + t as u64 * 131 + (b * 10.0) as u64,
            ));
        }
    }
    profile.apply_workload(&mut scenarios);
    let results = runner::run_all(&scenarios);
    let mut inside = 0usize;
    let mut total = 0usize;
    for (bi, &b) in buffers.iter().enumerate() {
        let mut actuals = Vec::new();
        let mut sync_idx = Vec::new();
        for t in 0..profile.trials as usize {
            let r = &results[bi * profile.trials as usize + t];
            actuals.push(r.mean_throughput_of("bbr").unwrap_or(0.0));
            // Synchronization of the CUBIC flows only (first n_cubic).
            let cubic_backoffs: Vec<Vec<f64>> = r
                .backoff_times_secs
                .iter()
                .zip(&r.cc_names)
                .filter(|(_, n)| n.as_str() == "cubic")
                .map(|(b, _)| b.clone())
                .collect();
            if let Some(ix) = synchronization_index(&cubic_backoffs, RTT_MS / 1e3) {
                sync_idx.push(ix);
            }
        }
        let actual = mean(&actuals);
        let m = MultiFlowModel::from_paper_units(MBPS, RTT_MS, b, n_cubic, n_bbr);
        let sync = m
            .solve(SyncMode::Synchronized)
            .map(|p| p.bbr_per_flow_mbps())
            .unwrap_or(f64::NAN);
        let desync = m
            .solve(SyncMode::DeSynchronized)
            .map(|p| p.bbr_per_flow_mbps())
            .unwrap_or(f64::NAN);
        let ware = WareModel::new(
            LinkParams::from_paper_units(MBPS, RTT_MS, b),
            n_bbr,
            profile.duration_secs,
        )
        .predict()
        .map(|p| p.bbr_mbps() / n_bbr as f64)
        .unwrap_or(f64::NAN);
        if sync.is_finite() && desync.is_finite() {
            total += 1;
            // The region spans [desync, sync] with ~10% slack for noise.
            let lo = desync.min(sync) * 0.85;
            let hi = desync.max(sync) * 1.15;
            if actual >= lo && actual <= hi {
                inside += 1;
            }
        }
        table.push_floats(&[b, ware, sync, desync, actual, mean(&sync_idx)]);
    }
    let frac = if total > 0 {
        inside as f64 / total as f64
    } else {
        f64::NAN
    };
    (table, frac)
}

pub fn run(profile: &Profile) -> FigResult {
    let mut tables = Vec::new();
    let mut notes = Vec::new();
    for (nc, nb) in PANELS {
        let (t, frac) = run_panel(nc, nb, profile);
        notes.push(format!(
            "{nc}v{nb}: {:.0}% of measured points inside the predicted region (±15% slack)",
            frac * 100.0
        ));
        tables.push(t);
    }
    FigResult {
        id: "fig04",
        tables,
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_panel_has_band_ordering() {
        let (table, _) = run_panel(2, 2, &Profile::smoke());
        for row in &table.rows {
            let sync: f64 = row[2].parse().unwrap();
            let desync: f64 = row[3].parse().unwrap();
            if sync.is_finite() && desync.is_finite() {
                // De-synchronized CUBIC is BBR's upper edge (§2.4).
                assert!(desync >= sync - 1e-6, "desync bound must be ≥ sync bound");
            }
        }
    }
}
