//! Fig. 11a–b — BBRv2 Nash equilibria vs. the region predicted for BBR.
//!
//! Paper setup: repeat the Fig. 9 NE search with BBRv2 as the
//! challenger, at 50 and 100 Mbps (RTT ∈ {20, 40, 80} ms overlaid per
//! panel). Expectations: equilibria still exist (BBRv2 also starts above
//! fair share, Fig. 7), but because BBRv2 is gentler, the equilibria
//! hold *more CUBIC flows* than BBR's for the same buffer; the BBR
//! model fits best at small RTTs.

use super::fig09;
use super::FigResult;
use crate::profile::Profile;
use bbrdom_cca::CcaKind;

/// Panels: link speeds; each panel overlays the three RTTs.
pub const SPEEDS: [f64; 2] = [50.0, 100.0];
pub const RTTS_MS: [f64; 3] = [20.0, 40.0, 80.0];

pub fn run(profile: &Profile) -> FigResult {
    let mut tables = Vec::new();
    for mbps in SPEEDS {
        for rtt in RTTS_MS {
            let mut t = fig09::run_panel(mbps, rtt, profile, CcaKind::BbrV2);
            t.title = format!(
                "Fig 11: #CUBIC at NE with BBRv2, {} flows, {mbps} Mbps, {rtt} ms",
                profile.ne_flows
            );
            tables.push(t);
        }
    }
    // Comparison note: average observed CUBIC share at NE, BBRv2 vs the
    // model's (BBR) sync bound.
    let mut more_cubic_points = 0usize;
    let mut total_points = 0usize;
    for t in &tables {
        for row in &t.rows {
            let sync: f64 = row[1].parse().unwrap_or(f64::NAN);
            if let Some(first) = row[3].split(';').next() {
                if let Ok(obs) = first.parse::<f64>() {
                    if sync.is_finite() {
                        total_points += 1;
                        if obs >= sync {
                            more_cubic_points += 1;
                        }
                    }
                }
            }
        }
    }
    FigResult {
        id: "fig11",
        tables,
        notes: vec![format!(
            "BBRv2 equilibria retain ≥ the BBR-predicted (sync-bound) CUBIC count at \
             {more_cubic_points}/{total_points} measured points — BBRv2 is the gentler algorithm"
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panel_count_matches_grid() {
        // Don't run the full fig (expensive even in smoke for 6 panels);
        // check the constants line up with the paper's grid.
        assert_eq!(SPEEDS.len() * RTTS_MS.len(), 6);
    }
}
