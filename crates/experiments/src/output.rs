//! Result emission: aligned text tables (what `repro` prints) and CSV
//! files (one per figure, gnuplot-ready — the paper's figures are
//! line/point plots over these exact columns).

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// A rectangular table with a header row.
#[derive(Debug, Clone)]
pub struct Table {
    pub title: String,
    pub columns: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must match the column count.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.columns.len(), "row width must match header");
        self.rows.push(row);
    }

    /// Append a row of floats, formatted to 3 decimals.
    pub fn push_floats(&mut self, row: &[f64]) {
        self.push_row(row.iter().map(|v| format!("{v:.3}")).collect());
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("# {}\n", self.title));
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect();
        out.push_str(&header.join("  "));
        out.push('\n');
        out.push_str(&"-".repeat(header.join("  ").len()));
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        out
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.columns.join(","));
        out.push('\n');
        for row in &self.rows {
            let escaped: Vec<String> = row
                .iter()
                .map(|c| {
                    if c.contains(',') || c.contains('"') {
                        format!("\"{}\"", c.replace('"', "\"\""))
                    } else {
                        c.clone()
                    }
                })
                .collect();
            out.push_str(&escaped.join(","));
            out.push('\n');
        }
        out
    }

    /// Write the CSV form to `dir/name.csv`, creating `dir` if needed.
    pub fn write_csv(&self, dir: &Path, name: &str) -> std::io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut f = fs::File::create(&path)?;
        f.write_all(self.to_csv().as_bytes())?;
        Ok(path)
    }
}

/// Mean of a slice (0.0 for empty — callers guard).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["a", "long_column"]);
        t.push_row(vec!["1".into(), "2".into()]);
        let r = t.render();
        assert!(r.contains("# demo"));
        assert!(r.contains("long_column"));
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("demo", &["x"]);
        t.push_row(vec!["a,b".into()]);
        assert!(t.to_csv().contains("\"a,b\""));
    }

    #[test]
    #[should_panic]
    fn row_width_mismatch_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn csv_writes_to_disk() {
        let dir = std::env::temp_dir().join("bbrdom_output_test");
        let mut t = Table::new("demo", &["x", "y"]);
        t.push_floats(&[1.0, 2.0]);
        let path = t.write_csv(&dir, "t").unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("x,y\n"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!((stddev(&[1.0, 2.0, 3.0]) - 1.0).abs() < 1e-12);
        assert_eq!(stddev(&[5.0]), 0.0);
        assert_eq!(mean(&[]), 0.0);
    }
}
