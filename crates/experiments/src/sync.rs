//! CUBIC loss-synchronization measurement.
//!
//! The multi-flow model brackets reality between a *synchronized* and a
//! *de-synchronized* CUBIC bound (§2.4); the paper verifies from traces
//! which regime each experiment was in (§3.2, §3.3) and conjectures that
//! BBR's coordinated ProbeRTT exits force CUBIC synchronization (§5).
//!
//! We quantify synchronization directly from back-off timestamps: two
//! back-offs are *coincident* if they fall within one RTT of each other.
//! The synchronization index of a trial is the mean, over back-off
//! events, of the fraction of CUBIC flows that backed off coincidentally
//! — 1.0 when all flows always back off together, → 1/N_c when they
//! never do.

/// Synchronization index over per-flow back-off time series.
///
/// `backoffs[i]` is flow `i`'s back-off timestamps (seconds, sorted or
/// not); `window_secs` is the coincidence window (use the base RTT).
/// Returns `None` if no flow ever backed off.
pub fn synchronization_index(backoffs: &[Vec<f64>], window_secs: f64) -> Option<f64> {
    let n = backoffs.len();
    if n == 0 {
        return None;
    }
    let mut sorted: Vec<Vec<f64>> = backoffs.to_vec();
    for s in &mut sorted {
        s.sort_by(|a, b| a.partial_cmp(b).expect("NaN backoff time"));
    }
    let mut total_events = 0usize;
    let mut coincident_fraction_sum = 0.0;
    for (i, times) in sorted.iter().enumerate() {
        for &t in times {
            let mut coincident = 0usize;
            for (j, other) in sorted.iter().enumerate() {
                if j == i {
                    continue;
                }
                // Binary search for any event within the window.
                let lo = other.partition_point(|&x| x < t - window_secs);
                if lo < other.len() && other[lo] <= t + window_secs {
                    coincident += 1;
                }
            }
            total_events += 1;
            coincident_fraction_sum += (coincident + 1) as f64 / n as f64;
        }
    }
    if total_events == 0 {
        None
    } else {
        Some(coincident_fraction_sum / total_events as f64)
    }
}

/// Classify a trial against the model's two bounds: `true` means the
/// measured index is nearer full synchronization than de-synchronization.
pub fn looks_synchronized(index: f64, n_cubic: usize) -> bool {
    if n_cubic <= 1 {
        return true;
    }
    let desync_level = 1.0 / n_cubic as f64;
    let midpoint = 0.5 * (1.0 + desync_level);
    index >= midpoint
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_synchronized_flows_score_one() {
        let backoffs = vec![
            vec![1.0, 5.0, 9.0],
            vec![1.01, 5.01, 9.01],
            vec![0.99, 4.99, 8.99],
        ];
        let idx = synchronization_index(&backoffs, 0.05).unwrap();
        assert!((idx - 1.0).abs() < 1e-9, "idx={idx}");
    }

    #[test]
    fn fully_desynchronized_flows_score_one_over_n() {
        let backoffs = vec![vec![1.0, 10.0], vec![4.0, 13.0], vec![7.0, 16.0]];
        let idx = synchronization_index(&backoffs, 0.05).unwrap();
        assert!((idx - 1.0 / 3.0).abs() < 1e-9, "idx={idx}");
    }

    #[test]
    fn empty_input_gives_none() {
        assert!(synchronization_index(&[], 0.05).is_none());
        assert!(synchronization_index(&[vec![], vec![]], 0.05).is_none());
    }

    #[test]
    fn partial_synchronization_in_between() {
        // Flows 0 and 1 synchronized; flow 2 off on its own.
        let backoffs = vec![vec![1.0, 5.0], vec![1.0, 5.0], vec![3.0, 7.0]];
        let idx = synchronization_index(&backoffs, 0.05).unwrap();
        assert!(idx > 1.0 / 3.0 && idx < 1.0, "idx={idx}");
    }

    #[test]
    fn classification_thresholds() {
        assert!(looks_synchronized(0.95, 5));
        assert!(!looks_synchronized(0.3, 5));
        // Single CUBIC flow is trivially "synchronized with itself".
        assert!(looks_synchronized(0.0, 1));
    }

    #[test]
    fn unsorted_input_is_handled() {
        let backoffs = vec![vec![9.0, 1.0, 5.0], vec![5.01, 0.99, 9.01]];
        let idx = synchronization_index(&backoffs, 0.05).unwrap();
        assert!((idx - 1.0).abs() < 1e-9);
    }
}
