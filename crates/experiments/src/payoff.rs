//! Empirical payoff curves and the §4.4 Nash-equilibrium search.
//!
//! For a fixed network `(C, RTT, B)` and `n` flows, the paper measures
//! the per-flow throughput of every distribution (`k` challenger flows vs
//! `n − k` CUBIC, for `k = 0..=n`), then checks each distribution for the
//! equilibrium property: no single flow can raise its throughput by
//! switching algorithm. Multiple trials give multiple (possibly
//! different) equilibria — exactly what Fig. 9 plots.

use crate::engine::Engine;
use crate::profile::Profile;
use crate::runner;
use crate::scenario::{DisciplineSpec, EarlyStopSpec, FaultSpec, Scenario, TrialResult};
use bbrdom_cca::CcaKind;
use bbrdom_core::game::symmetric::{SymmetricGame, SymmetricNe};

/// Per-distribution payoff measurements for one trial (or averaged).
#[derive(Debug, Clone)]
pub struct PayoffCurves {
    pub n: u32,
    /// Challenger algorithm name (e.g. "bbr").
    pub challenger: String,
    /// `x_per_flow[k]`: challenger per-flow Mbps with `k` challengers
    /// (`k = 0` entry is 0.0 and unused).
    pub x_per_flow: Vec<f64>,
    /// `cubic_per_flow[k]`: CUBIC per-flow Mbps with `k` challengers
    /// (`k = n` entry is 0.0 and unused).
    pub cubic_per_flow: Vec<f64>,
    /// Shared average queuing delay per distribution, ms (Fig. 8b).
    pub queuing_delay_ms: Vec<f64>,
}

impl PayoffCurves {
    /// Fair share of the link per flow, given its capacity in Mbps.
    pub fn fair_share_mbps(mbps: f64, n: u32) -> f64 {
        mbps / n as f64
    }

    /// Convert to the game-theory form (payoffs = Mbps).
    pub fn to_game(&self, epsilon_mbps: f64) -> SymmetricGame {
        SymmetricGame::new(self.n, self.x_per_flow.clone(), self.cubic_per_flow.clone())
            .with_epsilon(epsilon_mbps)
    }

    /// Nash equilibria of this trial's measured game.
    pub fn nash_equilibria(&self, epsilon_mbps: f64) -> Vec<SymmetricNe> {
        self.to_game(epsilon_mbps).nash_equilibria()
    }
}

/// All per-trial curves for one network setting.
#[derive(Debug, Clone)]
pub struct PayoffMeasurement {
    pub mbps: f64,
    pub rtt_ms: f64,
    pub buffer_bdp: f64,
    pub trials: Vec<PayoffCurves>,
}

impl PayoffMeasurement {
    /// Mean curves across trials.
    pub fn mean_curves(&self) -> PayoffCurves {
        let n = self.trials[0].n;
        let t = self.trials.len() as f64;
        let mut x = vec![0.0; n as usize + 1];
        let mut c = vec![0.0; n as usize + 1];
        let mut q = vec![0.0; n as usize + 1];
        for trial in &self.trials {
            for k in 0..=n as usize {
                x[k] += trial.x_per_flow[k] / t;
                c[k] += trial.cubic_per_flow[k] / t;
                q[k] += trial.queuing_delay_ms[k] / t;
            }
        }
        PayoffCurves {
            n,
            challenger: self.trials[0].challenger.clone(),
            x_per_flow: x,
            cubic_per_flow: c,
            queuing_delay_ms: q,
        }
    }

    /// The union of per-trial NE states (number of CUBIC flows), sorted —
    /// the paper's "empirically observed NE" points.
    pub fn observed_ne_cubic_counts(&self, epsilon_mbps: f64) -> Vec<u32> {
        let mut out: Vec<u32> = self
            .trials
            .iter()
            .flat_map(|t| t.nash_equilibria(epsilon_mbps))
            .map(|ne| ne.n_cubic)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Measure payoff curves for every distribution of `n` flows between
/// CUBIC and `challenger` (Fig. 5/7/8/9 workhorse).
///
/// Runs `profile.ne_trials` trials × `n + 1` distributions, fanned out in
/// parallel, and reduces to per-trial curves.
pub fn measure_payoffs(
    mbps: f64,
    rtt_ms: f64,
    buffer_bdp: f64,
    n: u32,
    challenger: CcaKind,
    profile: &Profile,
    base_seed: u64,
) -> PayoffMeasurement {
    measure_payoffs_with_discipline(
        mbps,
        rtt_ms,
        buffer_bdp,
        n,
        challenger,
        profile,
        base_seed,
        DisciplineSpec::DropTail,
    )
}

/// [`measure_payoffs`] under an arbitrary bottleneck discipline (used by
/// the `ext-aqm` experiment).
#[allow(clippy::too_many_arguments)]
pub fn measure_payoffs_with_discipline(
    mbps: f64,
    rtt_ms: f64,
    buffer_bdp: f64,
    n: u32,
    challenger: CcaKind,
    profile: &Profile,
    base_seed: u64,
    discipline: DisciplineSpec,
) -> PayoffMeasurement {
    measure_payoffs_with(
        mbps,
        rtt_ms,
        buffer_bdp,
        n,
        challenger,
        profile,
        base_seed,
        discipline,
        &FaultSpec::default(),
    )
}

/// [`measure_payoffs`] under an arbitrary discipline *and* path
/// impairments (used by the `ext-faults` experiment).
#[allow(clippy::too_many_arguments)]
pub fn measure_payoffs_with(
    mbps: f64,
    rtt_ms: f64,
    buffer_bdp: f64,
    n: u32,
    challenger: CcaKind,
    profile: &Profile,
    base_seed: u64,
    discipline: DisciplineSpec,
    faults: &FaultSpec,
) -> PayoffMeasurement {
    let trials = profile.ne_trials.max(1);
    let mut scenarios = Vec::with_capacity(((n + 1) * trials) as usize);
    for trial in 0..trials {
        for k in 0..=n {
            scenarios.push(distribution_scenario(
                mbps, rtt_ms, buffer_bdp, n, k, trial, challenger, profile, base_seed, discipline,
                faults,
            ));
        }
    }
    let results = runner::run_all(&scenarios);
    let challenger_name = challenger.name().to_string();
    let mut out = PayoffMeasurement {
        mbps,
        rtt_ms,
        buffer_bdp,
        trials: Vec::with_capacity(trials as usize),
    };
    for trial in 0..trials {
        let mut x = vec![0.0; n as usize + 1];
        let mut c = vec![0.0; n as usize + 1];
        let mut q = vec![0.0; n as usize + 1];
        for k in 0..=n {
            let idx = (trial * (n + 1) + k) as usize;
            let r: &TrialResult = &results[idx];
            x[k as usize] = r.mean_throughput_of(&challenger_name).unwrap_or(0.0);
            c[k as usize] = r.mean_throughput_of("cubic").unwrap_or(0.0);
            q[k as usize] = r.avg_queuing_delay_ms;
        }
        out.trials.push(PayoffCurves {
            n,
            challenger: challenger_name.clone(),
            x_per_flow: x,
            cubic_per_flow: c,
            queuing_delay_ms: q,
        });
    }
    out
}

/// The scenario for one distribution cell `(trial, k)` of an NE grid.
///
/// This is the single place the per-cell seed formula lives: the dense
/// grid and the adaptive search both build their scenarios here, so a
/// cell evaluated by either path is *the same scenario* — same seed,
/// same content hash — and the engine's cache can serve one to the
/// other. The profile's opt-in early-stop policy is attached here too,
/// which (deliberately) changes the cell's content hash: an
/// early-stopped measurement is a different result.
#[allow(clippy::too_many_arguments)]
pub fn distribution_scenario(
    mbps: f64,
    rtt_ms: f64,
    buffer_bdp: f64,
    n: u32,
    k: u32,
    trial: u32,
    challenger: CcaKind,
    profile: &Profile,
    base_seed: u64,
    discipline: DisciplineSpec,
    faults: &FaultSpec,
) -> Scenario {
    let s = Scenario::versus(
        mbps,
        rtt_ms,
        buffer_bdp,
        n - k,
        challenger,
        k,
        profile.duration_secs,
        base_seed
            .wrapping_add(trial as u64 * 7919)
            .wrapping_add(k as u64 * 104729),
    )
    .with_discipline(discipline)
    .with_faults(faults.clone())
    .with_early_stop(
        profile
            .early_stop
            .map(|(epsilon, dwell)| EarlyStopSpec::new(epsilon, dwell)),
    )
    .with_backend(profile.backend)
    .with_workload(profile.workload);
    // `--dumbbell-as-topology`: same physics expressed as an explicit
    // topology — bit-identical results under a distinct cache key.
    if profile.dumbbell_topology {
        s.with_equivalent_topology()
    } else {
        s
    }
}

/// Measure payoff curves from arbitrary per-cell scenarios — the
/// multi-bottleneck workhorse (`ext-parkinglot`). `build(k, trial)`
/// returns the cell's scenario; its first `n` flows must be the game's
/// own long flows (`n − k` CUBIC then `k` challengers, the
/// [`Scenario::versus`] order). Any flows after the first `n` are cross
/// traffic: they shape the network but are excluded from the payoffs
/// (the per-flow means use [`TrialResult::mean_throughput_of_first`]).
pub fn measure_payoffs_from(
    n: u32,
    challenger: CcaKind,
    trials: u32,
    build: impl Fn(u32, u32) -> Scenario,
) -> PayoffMeasurement {
    let trials = trials.max(1);
    let mut scenarios = Vec::with_capacity(((n + 1) * trials) as usize);
    for trial in 0..trials {
        for k in 0..=n {
            scenarios.push(build(k, trial));
        }
    }
    let results = runner::run_all(&scenarios);
    let challenger_name = challenger.name().to_string();
    let mut out = PayoffMeasurement {
        mbps: scenarios[0].mbps,
        rtt_ms: scenarios[0].reference_rtt_ms,
        buffer_bdp: scenarios[0].buffer_bdp,
        trials: Vec::with_capacity(trials as usize),
    };
    for trial in 0..trials {
        let mut x = vec![0.0; n as usize + 1];
        let mut c = vec![0.0; n as usize + 1];
        let mut q = vec![0.0; n as usize + 1];
        for k in 0..=n {
            let idx = (trial * (n + 1) + k) as usize;
            let r: &TrialResult = &results[idx];
            x[k as usize] = r
                .mean_throughput_of_first(n as usize, &challenger_name)
                .unwrap_or(0.0);
            c[k as usize] = r
                .mean_throughput_of_first(n as usize, "cubic")
                .unwrap_or(0.0);
            q[k as usize] = r.avg_queuing_delay_ms;
        }
        out.trials.push(PayoffCurves {
            n,
            challenger: challenger_name.clone(),
            x_per_flow: x,
            cubic_per_flow: c,
            queuing_delay_ms: q,
        });
    }
    out
}

/// Measure payoffs at a *subset* `ks` of the distributions, on an
/// explicit engine — the adaptive NE search's workhorse. Unevaluated
/// entries of the returned curves are `NaN`, so any consumer that reads
/// a cell the search never simulated fails loudly instead of treating
/// it as a measured zero.
#[allow(clippy::too_many_arguments)]
pub fn measure_payoffs_at_on(
    engine: &Engine,
    mbps: f64,
    rtt_ms: f64,
    buffer_bdp: f64,
    n: u32,
    ks: &[u32],
    challenger: CcaKind,
    profile: &Profile,
    base_seed: u64,
    discipline: DisciplineSpec,
    faults: &FaultSpec,
) -> PayoffMeasurement {
    let trials = profile.ne_trials.max(1);
    let mut scenarios = Vec::with_capacity(ks.len() * trials as usize);
    for trial in 0..trials {
        for &k in ks {
            debug_assert!(k <= n);
            scenarios.push(distribution_scenario(
                mbps, rtt_ms, buffer_bdp, n, k, trial, challenger, profile, base_seed, discipline,
                faults,
            ));
        }
    }
    let results = engine.run_all(&scenarios);
    let challenger_name = challenger.name().to_string();
    let mut out = PayoffMeasurement {
        mbps,
        rtt_ms,
        buffer_bdp,
        trials: Vec::with_capacity(trials as usize),
    };
    for trial in 0..trials {
        let mut x = vec![f64::NAN; n as usize + 1];
        let mut c = vec![f64::NAN; n as usize + 1];
        let mut q = vec![f64::NAN; n as usize + 1];
        for (pos, &k) in ks.iter().enumerate() {
            let idx = trial as usize * ks.len() + pos;
            let r: &TrialResult = &results[idx];
            x[k as usize] = r.mean_throughput_of(&challenger_name).unwrap_or(0.0);
            c[k as usize] = r.mean_throughput_of("cubic").unwrap_or(0.0);
            q[k as usize] = r.avg_queuing_delay_ms;
        }
        out.trials.push(PayoffCurves {
            n,
            challenger: challenger_name.clone(),
            x_per_flow: x,
            cubic_per_flow: c,
            queuing_delay_ms: q,
        });
    }
    out
}

/// Default NE tolerance: switches must gain more than 2% of fair share
/// to count (absorbs simulation noise, as the paper's multiple-NE
/// observation implies).
pub fn default_epsilon_mbps(mbps: f64, n: u32) -> f64 {
    0.02 * mbps / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_measurement() -> PayoffMeasurement {
        // 4 flows, smoke profile: fast but end-to-end real.
        let profile = Profile::smoke();
        measure_payoffs(20.0, 20.0, 2.0, 4, CcaKind::Bbr, &profile, 99)
    }

    #[test]
    fn curves_have_expected_shape_and_bounds() {
        let m = tiny_measurement();
        assert_eq!(m.trials.len(), 1);
        let c = &m.trials[0];
        assert_eq!(c.x_per_flow.len(), 5);
        // All-BBR state: per-flow ≈ fair share (20/4 = 5 Mbps).
        let all_bbr = c.x_per_flow[4];
        assert!((all_bbr - 5.0).abs() < 2.0, "all-BBR per-flow={all_bbr}");
        // Physicality: nothing exceeds the link.
        for k in 1..=4usize {
            assert!(c.x_per_flow[k] > 0.0 && c.x_per_flow[k] < 21.0);
        }
        for k in 0..4usize {
            assert!(c.cubic_per_flow[k] > 0.0 && c.cubic_per_flow[k] < 21.0);
        }
    }

    #[test]
    fn mean_curves_average_trials() {
        let mut m = tiny_measurement();
        // Duplicate the trial with doubled values; mean must be 1.5×.
        let mut t2 = m.trials[0].clone();
        for v in &mut t2.x_per_flow {
            *v *= 2.0;
        }
        for v in &mut t2.cubic_per_flow {
            *v *= 2.0;
        }
        for v in &mut t2.queuing_delay_ms {
            *v *= 2.0;
        }
        m.trials.push(t2);
        let mean = m.mean_curves();
        let orig = &m.trials[0];
        for k in 0..=4usize {
            assert!((mean.x_per_flow[k] - 1.5 * orig.x_per_flow[k]).abs() < 1e-9);
        }
    }

    #[test]
    fn ne_search_returns_some_distribution() {
        let m = tiny_measurement();
        let eps = default_epsilon_mbps(20.0, 4);
        let ne = m.observed_ne_cubic_counts(eps);
        assert!(
            !ne.is_empty(),
            "at least one NE must exist (finite game with symmetric states along a line)"
        );
        for &c in &ne {
            assert!(c <= 4);
        }
    }
}
