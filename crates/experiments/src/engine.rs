//! The parallel payoff/sweep engine with a content-addressed scenario
//! result cache.
//!
//! Every payoff matrix, NE search, and figure sweep in this crate is a
//! batch of independent `Scenario → SimReport` runs. The engine executes
//! such batches on a fixed-size pool of OS worker threads (std threads +
//! channels; simulations are CPU-bound, so an async runtime buys
//! nothing), sized by `--jobs N` / `BBRDOM_JOBS` / the machine's
//! parallelism — while keeping the repo's central guarantee intact:
//! **output is bit-identical to a serial run.** Three mechanisms deliver
//! that:
//!
//! 1. results are gathered by *scenario index*, never by completion
//!    order;
//! 2. the JSONL sweep journal is written by a single writer (the thread
//!    that owns the receive side of the results channel), strictly in
//!    index order, so `--jobs 1` and `--jobs 8` produce byte-identical
//!    journals and a crash can only truncate the journal at a line
//!    boundary;
//! 3. each simulation is a pure function of its [`Scenario`], so the
//!    engine may memoize: a **content-addressed cache** keyed by a
//!    stable 128-bit hash of the *full* scenario (link, buffer, flows,
//!    CCAs, RTTs, seeds, discipline, fault schedule — see
//!    [`scenario_hash`]) returns previous `SimReport`s instead of
//!    re-simulating, in-process always and on disk (`results/cache/`)
//!    when enabled. NE searches re-evaluate neighboring strategy
//!    profiles constantly; warm reruns skip the work entirely.
//!
//! Fail-soft sweep semantics ([`crate::runner::run_sweep`]) ride on the
//! same machinery: per-trial [`TrialOutcome`]s, event/wall-clock
//! budgets, and journal resume. A cached success is only reused under an
//! event budget when the recorded run fit that budget
//! (`events_processed <= budget`), so caching never flips a
//! budget-failure into a success or vice versa.

use crate::runner::{payload_message, SweepConfig, TrialFailure, TrialOutcome};
use crate::scenario::{Scenario, TrialResult};
use bbrdom_netsim::hash::{StableHash, StableHasher};
use bbrdom_netsim::json::{self, Value};
use bbrdom_netsim::SimReport;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, OnceLock};

/// Bumped whenever [`scenario_hash`] coverage or the on-disk entry
/// layout changes, so stale cache files can never alias a new format.
pub const CACHE_FORMAT_VERSION: u32 = 1;

/// Stable content hash of everything that determines a scenario's
/// simulation output. Two scenarios hash alike iff a run of one is
/// bit-identical to a run of the other; see the completeness test,
/// which mutates every public field and asserts the hash moves.
///
/// The simulation *backend* is part of the identity: the same scenario
/// run on the fluid model hashes to a different key than the DES run,
/// so the two can never alias in the result cache.
///
/// ```
/// use bbrdom_cca::CcaKind;
/// use bbrdom_experiments::{scenario_hash, BackendSpec, Scenario};
///
/// let des = Scenario::versus(50.0, 20.0, 2.0, 1, CcaKind::Bbr, 1, 10.0, 1);
/// let fluid = des.clone().with_backend(BackendSpec::Fluid);
/// assert_ne!(scenario_hash(&des), scenario_hash(&fluid));
/// ```
pub fn scenario_hash(s: &Scenario) -> u128 {
    let mut h = StableHasher::new();
    CACHE_FORMAT_VERSION.stable_hash(&mut h);
    s.mbps.stable_hash(&mut h);
    s.buffer_bdp.stable_hash(&mut h);
    s.reference_rtt_ms.stable_hash(&mut h);
    s.duration_secs.stable_hash(&mut h);
    s.seed.stable_hash(&mut h);
    s.discipline.name().stable_hash(&mut h);
    (s.flows.len() as u64).stable_hash(&mut h);
    for f in &s.flows {
        f.cca.name().stable_hash(&mut h);
        f.rtt_ms.stable_hash(&mut h);
        f.start_s.stable_hash(&mut h);
        f.byte_limit.stable_hash(&mut h);
    }
    // Hash the *compiled* netsim fault schedule: it already folds in the
    // derived per-trial RNG stream seed, and reuses the same stable-hash
    // implementation the simulator's own config hashing pins.
    s.faults.to_schedule(s.seed).stable_hash(&mut h);
    // Opt-in stop policy extends the byte stream only when engaged: every
    // pre-existing scenario keeps its hash, and an early-stopped run can
    // never alias the fixed-horizon run of the same scenario (the marker
    // bytes make the extension unambiguous).
    if let Some(stop) = &s.early_stop {
        h.write_bytes(b"early_stop");
        stop.epsilon.stable_hash(&mut h);
        stop.dwell.stable_hash(&mut h);
        stop.window_secs.stable_hash(&mut h);
        stop.min_secs.stable_hash(&mut h);
    }
    // Backend domain separation, by the same opt-in marker scheme: DES
    // scenarios (the default) keep their historical hashes, while a fluid
    // run of the same scenario lives under a distinct key.
    if s.backend != crate::scenario::BackendSpec::Des {
        h.write_bytes(b"backend");
        s.backend.name().stable_hash(&mut h);
    }
    // Open-loop workload, same opt-in marker scheme: workload-free
    // scenarios keep their historical hashes; every workload field feeds
    // the key (the simulator output depends on all of them).
    if let Some(wl) = &s.workload {
        h.write_bytes(b"workload");
        wl.cca.name().stable_hash(&mut h);
        match wl.arrival {
            crate::scenario::ArrivalSpec::Poisson { rate_per_sec } => {
                h.write_bytes(&[0]);
                rate_per_sec.stable_hash(&mut h);
            }
            crate::scenario::ArrivalSpec::Deterministic { interval_s } => {
                h.write_bytes(&[1]);
                interval_s.stable_hash(&mut h);
            }
        }
        match wl.size {
            crate::scenario::SizeSpec::Fixed { bytes } => {
                h.write_bytes(&[0]);
                bytes.stable_hash(&mut h);
            }
            crate::scenario::SizeSpec::Pareto {
                alpha,
                min_bytes,
                max_bytes,
            } => {
                h.write_bytes(&[1]);
                alpha.stable_hash(&mut h);
                min_bytes.stable_hash(&mut h);
                max_bytes.stable_hash(&mut h);
            }
        }
        wl.rtt_ms.stable_hash(&mut h);
    }
    // Explicit topology, same opt-in marker scheme: implicit-dumbbell
    // scenarios keep their historical hashes, and every topology field
    // feeds the key — including the fields that only *select* behavior
    // (routes, flow_routes, fault_link), since the simulator output
    // depends on all of them.
    if let Some(t) = &s.topology {
        h.write_bytes(b"topology");
        (t.nodes.len() as u64).stable_hash(&mut h);
        for name in &t.nodes {
            name.as_str().stable_hash(&mut h);
        }
        (t.links.len() as u64).stable_hash(&mut h);
        for l in &t.links {
            l.from.as_str().stable_hash(&mut h);
            l.to.as_str().stable_hash(&mut h);
            match l.mbps {
                None => h.write_bytes(&[0]),
                Some(mbps) => {
                    h.write_bytes(&[1]);
                    mbps.stable_hash(&mut h);
                }
            }
            l.delay_ms.stable_hash(&mut h);
            l.buffer_bdp.stable_hash(&mut h);
        }
        (t.routes.len() as u64).stable_hash(&mut h);
        for route in &t.routes {
            (route.len() as u64).stable_hash(&mut h);
            for &link in route {
                (link as u64).stable_hash(&mut h);
            }
        }
        (t.flow_routes.len() as u64).stable_hash(&mut h);
        for &r in &t.flow_routes {
            (r as u64).stable_hash(&mut h);
        }
        match t.workload_route {
            None => h.write_bytes(&[0]),
            Some(r) => {
                h.write_bytes(&[1]);
                (r as u64).stable_hash(&mut h);
            }
        }
        match t.fault_link {
            None => h.write_bytes(&[0]),
            Some(l) => {
                h.write_bytes(&[1]);
                (l as u64).stable_hash(&mut h);
            }
        }
    }
    h.finish()
}

/// [`scenario_hash`] as the fixed-width hex string used for cache file
/// names and journal keys.
pub fn scenario_hash_hex(s: &Scenario) -> String {
    format!("{:032x}", scenario_hash(s))
}

/// How many worker threads `BBRDOM_JOBS` requests, if set and valid.
pub fn jobs_from_env() -> Option<usize> {
    std::env::var("BBRDOM_JOBS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// Engine configuration: pool size and cache policy.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads for scenario batches. Under supervision this is
    /// the thread count *per worker subprocess*.
    pub jobs: usize,
    /// Directory for the persistent result cache (`None` = memory only).
    pub disk_cache: Option<PathBuf>,
    /// Keep an in-process memo of completed reports (cheap; only worth
    /// disabling for determinism tests that must re-simulate).
    pub memory_cache: bool,
    /// Shard batches across crash-isolated worker subprocesses
    /// (`repro --supervise N`; see [`crate::supervisor`]). `None` (the
    /// default) executes in-process.
    pub supervise: Option<crate::supervisor::SupervisorConfig>,
    /// Maintain (and serve from) the indexed result store over the disk
    /// cache ([`crate::store`]): a store hit skips full-report parsing,
    /// not just simulation. No effect without `disk_cache`.
    pub result_store: bool,
}

impl EngineConfig {
    /// Environment defaults: `BBRDOM_JOBS` (else the machine's
    /// parallelism), `BBRDOM_CACHE_DIR` (else no disk cache), memory
    /// memo on.
    pub fn from_env() -> Self {
        EngineConfig {
            jobs: jobs_from_env().unwrap_or_else(crate::runner::default_workers),
            disk_cache: std::env::var("BBRDOM_CACHE_DIR")
                .ok()
                .filter(|v| !v.is_empty())
                .map(PathBuf::from),
            memory_cache: true,
            supervise: None,
            result_store: true,
        }
    }

    /// A hermetic single-threaded engine with caching off — every run
    /// re-simulates. The baseline for determinism and perf comparisons.
    pub fn serial_uncached() -> Self {
        EngineConfig {
            jobs: 1,
            disk_cache: None,
            memory_cache: false,
            supervise: None,
            result_store: false,
        }
    }
}

/// Cache/dedup counters for one engine, cumulative across batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Results served from the in-process memo.
    pub memory_hits: u64,
    /// Results served from the indexed result store (metric lookup — no
    /// full-report parse).
    pub store_hits: u64,
    /// Results served by parsing a full on-disk cache entry.
    pub disk_hits: u64,
    /// Results copied from an identical scenario in the same batch.
    pub deduped: u64,
    /// Scenarios actually simulated.
    pub simulated: u64,
    /// Total simulator events processed by fresh simulations (cache hits
    /// contribute nothing — the work was never redone).
    pub events_simulated: u64,
}

impl CacheStats {
    /// Counter movement since an earlier snapshot (per-target deltas).
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            memory_hits: self.memory_hits - earlier.memory_hits,
            store_hits: self.store_hits - earlier.store_hits,
            disk_hits: self.disk_hits - earlier.disk_hits,
            deduped: self.deduped - earlier.deduped,
            simulated: self.simulated - earlier.simulated,
            events_simulated: self.events_simulated - earlier.events_simulated,
        }
    }

    /// Simulations skipped thanks to the cache (all sources).
    pub fn skipped(&self) -> u64 {
        self.memory_hits + self.store_hits + self.disk_hits + self.deduped
    }

    /// Total scenario slots served.
    pub fn total(&self) -> u64 {
        self.skipped() + self.simulated
    }

    /// One-line human summary (the sweep-summary cache counter).
    pub fn summary(&self) -> String {
        let total = self.total();
        let pct = if total == 0 {
            0.0
        } else {
            100.0 * self.skipped() as f64 / total as f64
        };
        format!(
            "{} simulated ({} events), {} cache hits ({} memory, {} store, {} disk-parse, {} deduped) — {:.0}% skipped",
            self.simulated,
            self.events_simulated,
            self.skipped(),
            self.memory_hits,
            self.store_hits,
            self.disk_hits,
            self.deduped,
            pct
        )
    }
}

/// One parsed sweep-journal record (see [`journal_line`]).
pub(crate) struct JournalEntry {
    pub index: usize,
    pub key: String,
    pub outcome: TrialOutcome,
    pub event_budget: Option<u64>,
    pub wall_budget_ns: Option<u64>,
    /// Recorded event count — present only on the supervisor's wire
    /// protocol (workers report it so the parent's result store stays
    /// budget-admissible), never written to journal files.
    pub events: Option<u64>,
}

/// The journal record as a JSON value (see [`journal_line`]). Split out
/// so the supervisor's wire protocol can extend a record with fields
/// that journal *files* must not carry (the parent re-serializes its
/// own journal, keeping the on-disk byte format frozen).
pub(crate) fn journal_value(
    index: usize,
    key: &str,
    outcome: &TrialOutcome,
    event_budget: Option<u64>,
    wall_budget_ns: Option<u64>,
) -> Value {
    let mut v = Value::object();
    v.set("index", Value::U64(index as u64))
        .set("key", key.into());
    match outcome {
        TrialOutcome::Ok(r) => {
            v.set("ok", true.into()).set("result", r.to_json_value());
        }
        TrialOutcome::Failed(f) => {
            v.set("ok", false.into())
                .set("error", Value::Str(f.error.clone()))
                .set("context", Value::Str(f.context.clone()));
            if let Some(b) = event_budget {
                v.set("event_budget", Value::U64(b));
            }
            if let Some(b) = wall_budget_ns {
                v.set("wall_budget_ns", Value::U64(b));
            }
        }
    }
    v
}

/// Serialize one finished trial as a journal line. Every record carries
/// the scenario's content hash (`key`), so resume can never reuse a
/// trial whose scenario was edited between runs; failed records also
/// carry the budgets they failed under, so raising a budget re-runs
/// them instead of resuming a stale failure.
pub(crate) fn journal_line(
    index: usize,
    key: &str,
    outcome: &TrialOutcome,
    event_budget: Option<u64>,
    wall_budget_ns: Option<u64>,
) -> String {
    journal_value(index, key, outcome, event_budget, wall_budget_ns).to_json()
}

/// Parse one journal line; `None` for malformed or truncated lines
/// (e.g. a crash mid-write), which are simply re-run.
pub(crate) fn parse_journal_line(line: &str) -> Option<JournalEntry> {
    let v = json::parse(line).ok()?;
    let index = v.get("index")?.as_u64()? as usize;
    let key = v.get("key")?.as_str()?.to_string();
    let ok = match v.get("ok")? {
        Value::Bool(b) => *b,
        _ => return None,
    };
    let outcome = if ok {
        TrialOutcome::Ok(TrialResult::from_json_value(v.get("result")?).ok()?)
    } else {
        TrialOutcome::Failed(TrialFailure {
            index,
            error: v.get("error")?.as_str()?.to_string(),
            context: v
                .get("context")
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_string(),
        })
    };
    Some(JournalEntry {
        index,
        key,
        outcome,
        event_budget: v.get("event_budget").and_then(Value::as_u64),
        wall_budget_ns: v.get("wall_budget_ns").and_then(Value::as_u64),
        events: v.get("events").and_then(Value::as_u64),
    })
}

/// One-line scenario summary used as failure context.
pub(crate) fn scenario_context(s: &Scenario) -> String {
    format!(
        "{} flows, {} Mbps, buffer {} BDP, {} s, seed {}",
        s.flows.len(),
        s.mbps,
        s.buffer_bdp,
        s.duration_secs,
        s.seed
    )
}

/// The parallel scenario engine. One lives for the process
/// ([`Engine::global`]); tests and benches build private ones.
pub struct Engine {
    config: EngineConfig,
    memo: Mutex<HashMap<u128, Arc<SimReport>>>,
    /// The indexed result store over `disk_cache`, opened lazily on
    /// first use (so engines that never touch a cache never scan one).
    store: OnceLock<crate::store::Store>,
    memory_hits: AtomicU64,
    store_hits: AtomicU64,
    disk_hits: AtomicU64,
    deduped: AtomicU64,
    simulated: AtomicU64,
    events_simulated: AtomicU64,
}

static GLOBAL: OnceLock<Engine> = OnceLock::new();

impl Engine {
    pub fn new(config: EngineConfig) -> Self {
        Engine {
            config,
            memo: Mutex::new(HashMap::new()),
            store: OnceLock::new(),
            memory_hits: AtomicU64::new(0),
            store_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            deduped: AtomicU64::new(0),
            simulated: AtomicU64::new(0),
            events_simulated: AtomicU64::new(0),
        }
    }

    /// Install `config` as the process-wide engine. Returns `false` if
    /// the global engine was already built (first use wins) — callers
    /// that care (the `repro` binary) should configure before running
    /// anything.
    pub fn configure(config: EngineConfig) -> bool {
        GLOBAL.set(Engine::new(config)).is_ok()
    }

    /// The process-wide engine, built from [`EngineConfig::from_env`] on
    /// first use unless [`Engine::configure`] ran earlier.
    pub fn global() -> &'static Engine {
        GLOBAL.get_or_init(|| Engine::new(EngineConfig::from_env()))
    }

    /// The configured worker-pool size.
    pub fn jobs(&self) -> usize {
        self.config.jobs
    }

    /// Cumulative cache counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            memory_hits: self.memory_hits.load(Ordering::Relaxed),
            store_hits: self.store_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            deduped: self.deduped.load(Ordering::Relaxed),
            simulated: self.simulated.load(Ordering::Relaxed),
            events_simulated: self.events_simulated.load(Ordering::Relaxed),
        }
    }

    /// The indexed result store, if this engine maintains one
    /// (`result_store` on and a disk cache configured). Opened lazily:
    /// the first call sweeps orphan tmps and loads `index.jsonl`.
    pub fn store(&self) -> Option<&crate::store::Store> {
        if !self.config.result_store {
            return None;
        }
        let dir = self.config.disk_cache.as_deref()?;
        Some(self.store.get_or_init(|| crate::store::Store::open(dir)))
    }

    /// Run all scenarios with the engine's pool, panicking on the first
    /// (lowest-index) failure — the strict interface figure sweeps use.
    /// Results come back in input order.
    ///
    /// ```
    /// use bbrdom_cca::CcaKind;
    /// use bbrdom_experiments::{BackendSpec, Engine, EngineConfig, Scenario};
    ///
    /// let engine = Engine::new(EngineConfig {
    ///     jobs: 1,
    ///     disk_cache: None,
    ///     memory_cache: true,
    ///     supervise: None,
    ///     result_store: false,
    /// });
    /// // Two cells of a payoff sweep on the fluid fast backend.
    /// let cells: Vec<Scenario> = [1u32, 2]
    ///     .iter()
    ///     .map(|&k| {
    ///         Scenario::versus(20.0, 20.0, 2.0, 2 - k, CcaKind::Bbr, k, 5.0, 7)
    ///             .with_backend(BackendSpec::Fluid)
    ///     })
    ///     .collect();
    /// let results = engine.run_all(&cells);
    /// assert_eq!(results.len(), 2);
    /// assert!(results.iter().all(|r| r.utilization > 0.5));
    /// // Re-running the same cells is served from the cache.
    /// engine.run_all(&cells);
    /// assert_eq!(engine.stats().memory_hits, 2);
    /// ```
    pub fn run_all(&self, scenarios: &[Scenario]) -> Vec<TrialResult> {
        self.run_all_jobs(scenarios, self.config.jobs)
    }

    /// [`Engine::run_all`] with an explicit pool size.
    pub fn run_all_jobs(&self, scenarios: &[Scenario], jobs: usize) -> Vec<TrialResult> {
        let outcomes = self
            .execute(scenarios, jobs, None, None, None)
            .unwrap_or_else(|e| panic!("sweep failed: {e}"));
        let mut results = Vec::with_capacity(outcomes.len());
        for outcome in outcomes {
            match outcome {
                TrialOutcome::Ok(r) => results.push(r),
                TrialOutcome::Failed(f) => {
                    panic!("scenario {} failed: {}", f.index, f.error)
                }
            }
        }
        results
    }

    /// Run all scenarios fail-soft: one panicking, livelocked, or
    /// invalid scenario becomes a structured [`TrialOutcome::Failed`]
    /// while the rest of the sweep completes. Outcomes come back in
    /// input order. See [`crate::runner::run_sweep`] for the journal
    /// resume contract and the error cases (an unopenable journal is
    /// the only one on the in-process path).
    pub fn run_sweep(
        &self,
        scenarios: &[Scenario],
        config: &SweepConfig,
    ) -> Result<Vec<TrialOutcome>, bbrdom_netsim::ConfigError> {
        self.execute(
            scenarios,
            config.jobs.unwrap_or(self.config.jobs),
            config.event_budget,
            config.wall_budget,
            config.journal.as_deref(),
        )
    }

    /// The shared batch executor. Deterministic contract: the returned
    /// vector is indexed by scenario, and any journal is appended in
    /// strict index order by the single thread that owns the channel's
    /// receive side.
    fn execute(
        &self,
        scenarios: &[Scenario],
        jobs: usize,
        event_budget: Option<u64>,
        wall_budget: Option<std::time::Duration>,
        journal: Option<&Path>,
    ) -> Result<Vec<TrialOutcome>, bbrdom_netsim::ConfigError> {
        let n = scenarios.len();
        let hashes: Vec<u128> = scenarios.iter().map(scenario_hash).collect();
        let keys: Vec<String> = hashes.iter().map(|h| format!("{h:032x}")).collect();
        let wall_budget_ns = wall_budget.map(|d| d.as_nanos() as u64);
        let mut done: Vec<Option<TrialOutcome>> = (0..n).map(|_| None).collect();
        // Recorded event counts, alongside `done`: fed to the result
        // store so its entries stay budget-admissible. Unknown (`None`)
        // for failures and journal-resumed slots.
        let mut done_events: Vec<Option<u64>> = vec![None; n];

        // Supervised batches without an explicit journal get one derived
        // from the batch's content hash, so a parent crash mid-batch
        // resumes instead of restarting (workers never write it — the
        // parent stays the single writer).
        let auto_journal: Option<PathBuf> = match (&journal, &self.config.supervise) {
            (None, Some(sup)) if n > 0 => Some(
                sup.state_dir
                    .join(format!("batch-{}.jsonl", batch_tag(&keys))),
            ),
            _ => None,
        };
        let journal: Option<&Path> = journal.or(auto_journal.as_deref());

        // Resume: pre-fill slots from the journal when the record's
        // scenario hash (and, for failures, its budgets) still match.
        if let Some(path) = journal {
            if let Ok(file) = std::fs::File::open(path) {
                for line in std::io::BufReader::new(file).lines() {
                    let Ok(line) = line else { break };
                    let Some(entry) = parse_journal_line(&line) else {
                        continue;
                    };
                    if entry.index >= n || entry.key != keys[entry.index] {
                        continue;
                    }
                    if entry.outcome.failure().is_some()
                        && (entry.event_budget != event_budget
                            || entry.wall_budget_ns != wall_budget_ns)
                    {
                        continue;
                    }
                    done[entry.index] = Some(entry.outcome);
                }
            }
        }

        // Intra-batch dedup: identical scenarios (payoff matrices share
        // cells) are simulated once; duplicates copy the representative.
        let mut rep_of_hash: HashMap<u128, usize> = HashMap::new();
        let mut aliases: HashMap<usize, Vec<usize>> = HashMap::new();
        let mut pending: Vec<usize> = Vec::new();
        for i in 0..n {
            if done[i].is_some() {
                continue;
            }
            match rep_of_hash.entry(hashes[i]) {
                Entry::Vacant(slot) => {
                    slot.insert(i);
                    pending.push(i);
                }
                Entry::Occupied(slot) => {
                    aliases.entry(*slot.get()).or_default().push(i);
                    self.deduped.fetch_add(1, Ordering::Relaxed);
                }
            }
        }

        // All indices that will gain a journal line this run, ascending
        // — the writer flushes them in exactly this order.
        let to_journal: Vec<usize> = (0..n).filter(|&i| done[i].is_none()).collect();

        let mut journal_file = match journal {
            None => None,
            Some(path) => match open_journal_append(path) {
                Ok(file) => Some(file),
                // The auto-journal is an accelerator, not part of the
                // caller's contract: degrade to a non-resumable batch.
                Err(e) if auto_journal.is_some() => {
                    eprintln!(
                        "warning: cannot open supervise journal {}: {e}; batch will not resume",
                        path.display()
                    );
                    None
                }
                Err(e) => {
                    return Err(bbrdom_netsim::ConfigError::Io {
                        what: "sweep journal",
                        path: path.display().to_string(),
                        reason: e.to_string(),
                    })
                }
            },
        };

        // Flush the contiguous prefix of finished indices to the journal
        // and the result store, in strict index order — one cursor, one
        // writer, so serial, pooled, and supervised runs produce
        // byte-identical journal *and* index files. A failed write is
        // not fatal: the sweep still completes, the trial just won't
        // resume (or index) for free.
        let store = self.store();
        let flush_finished =
            |done: &Vec<Option<TrialOutcome>>,
             done_events: &Vec<Option<u64>>,
             cursor: &mut usize,
             journal_file: &mut Option<std::fs::File>| {
                while *cursor < to_journal.len() {
                    let idx = to_journal[*cursor];
                    let Some(outcome) = &done[idx] else { break };
                    if let Some(file) = journal_file.as_mut() {
                        let line =
                            journal_line(idx, &keys[idx], outcome, event_budget, wall_budget_ns);
                        let _ = writeln!(file, "{line}");
                        let _ = file.flush();
                    }
                    if let Some(store) = store {
                        store.record(
                            &keys[idx],
                            &scenarios[idx],
                            outcome,
                            done_events[idx],
                            event_budget,
                            wall_budget_ns,
                        );
                    }
                    *cursor += 1;
                }
            };

        let mut cursor = 0usize;

        // Supervised execution: pending work is sharded across worker
        // subprocesses; this process slots results by index and remains
        // the journal's single writer, so the output is bit-identical
        // to the in-process paths below.
        if let Some(sup) = self.config.supervise.clone() {
            if !pending.is_empty() {
                let mut on_result = |i: usize, outcome: TrialOutcome, events: Option<u64>| {
                    for &alias in aliases.get(&i).map(Vec::as_slice).unwrap_or(&[]) {
                        done[alias] = Some(retarget(&outcome, alias));
                        done_events[alias] = events;
                    }
                    done[i] = Some(outcome);
                    done_events[i] = events;
                    flush_finished(&done, &done_events, &mut cursor, &mut journal_file);
                };
                let stats = crate::supervisor::run_supervised(
                    &sup,
                    scenarios,
                    &keys,
                    &pending,
                    event_budget,
                    wall_budget_ns,
                    jobs.max(1),
                    self.config.disk_cache.as_deref(),
                    journal,
                    &mut on_result,
                )?;
                self.absorb(&stats);
            }
            return Ok(done
                .into_iter()
                .map(|slot| slot.expect("scenario not executed"))
                .collect());
        }

        let jobs = jobs.max(1).min(pending.len().max(1));
        if jobs == 1 {
            // Serial path: a one-worker pool still pays for thread spawn,
            // channel traffic, and cross-core cache misses with nothing
            // to show for it (measured ~6% slower than inline on a
            // single-core box). Run the batch inline instead; the
            // ordering contract holds trivially.
            for &i in &pending {
                if crate::supervisor::interrupted() {
                    crate::supervisor::exit_interrupted(journal);
                }
                let (outcome, events) =
                    self.run_one(&scenarios[i], hashes[i], i, event_budget, wall_budget);
                for &alias in aliases.get(&i).map(Vec::as_slice).unwrap_or(&[]) {
                    done[alias] = Some(retarget(&outcome, alias));
                    done_events[alias] = events;
                }
                done[i] = Some(outcome);
                done_events[i] = events;
                flush_finished(&done, &done_events, &mut cursor, &mut journal_file);
            }
        } else {
            let next = AtomicUsize::new(0);
            let (tx, rx) = mpsc::channel::<(usize, TrialOutcome, Option<u64>)>();
            std::thread::scope(|scope| {
                for _ in 0..jobs {
                    let tx = tx.clone();
                    let pending = &pending;
                    let next = &next;
                    let hashes = &hashes;
                    scope.spawn(move || loop {
                        let slot = next.fetch_add(1, Ordering::Relaxed);
                        if slot >= pending.len() {
                            break;
                        }
                        let i = pending[slot];
                        let (outcome, events) =
                            self.run_one(&scenarios[i], hashes[i], i, event_budget, wall_budget);
                        if tx.send((i, outcome, events)).is_err() {
                            break;
                        }
                    });
                }
                drop(tx);

                // Single writer: results arrive in completion order, are
                // slotted by index, and the journal advances only over the
                // contiguous prefix of finished indices.
                for (i, outcome, events) in rx {
                    for &alias in aliases.get(&i).map(Vec::as_slice).unwrap_or(&[]) {
                        done[alias] = Some(retarget(&outcome, alias));
                        done_events[alias] = events;
                    }
                    done[i] = Some(outcome);
                    done_events[i] = events;
                    flush_finished(&done, &done_events, &mut cursor, &mut journal_file);
                    // The flush above already wrote the contiguous
                    // prefix, so a graceful stop loses nothing resumable.
                    if crate::supervisor::interrupted() {
                        crate::supervisor::exit_interrupted(journal);
                    }
                }
            });
        }

        Ok(done
            .into_iter()
            .map(|slot| slot.expect("scenario not executed"))
            .collect())
    }

    /// Run (or fetch) a single scenario outside a batch — the
    /// supervised-worker entry point ([`crate::supervisor::worker_main`]).
    /// Cache, budget, and failure semantics are identical to batch
    /// execution, so a supervised sweep stays bit-identical to a serial
    /// one.
    pub fn run_single(
        &self,
        scenario: &Scenario,
        index: usize,
        event_budget: Option<u64>,
        wall_budget: Option<std::time::Duration>,
    ) -> TrialOutcome {
        self.run_single_traced(scenario, index, event_budget, wall_budget)
            .0
    }

    /// [`Engine::run_single`] plus the recorded event count (when
    /// known), which supervised workers report back to the parent so
    /// *its* result store stays budget-admissible.
    pub(crate) fn run_single_traced(
        &self,
        scenario: &Scenario,
        index: usize,
        event_budget: Option<u64>,
        wall_budget: Option<std::time::Duration>,
    ) -> (TrialOutcome, Option<u64>) {
        self.run_one(
            scenario,
            scenario_hash(scenario),
            index,
            event_budget,
            wall_budget,
        )
    }

    /// Fold worker-subprocess cache counters into this engine's, so the
    /// sweep summary reflects work done across process boundaries.
    pub(crate) fn absorb(&self, s: &CacheStats) {
        self.memory_hits.fetch_add(s.memory_hits, Ordering::Relaxed);
        self.store_hits.fetch_add(s.store_hits, Ordering::Relaxed);
        self.disk_hits.fetch_add(s.disk_hits, Ordering::Relaxed);
        self.deduped.fetch_add(s.deduped, Ordering::Relaxed);
        self.simulated.fetch_add(s.simulated, Ordering::Relaxed);
        self.events_simulated
            .fetch_add(s.events_simulated, Ordering::Relaxed);
    }

    /// Run (or fetch) one scenario, also returning the recorded event
    /// count when known. Cache policy: only successful reports are
    /// cached; under an event budget a cached result is reused only if
    /// its recorded event count fits the budget, which keeps cached and
    /// fresh outcomes identical. Lookup order is cheapest-first: memory
    /// memo, then the indexed result store (metric lookup, no parse),
    /// then the full on-disk report, then simulation.
    fn run_one(
        &self,
        scenario: &Scenario,
        hash: u128,
        index: usize,
        event_budget: Option<u64>,
        wall_budget: Option<std::time::Duration>,
    ) -> (TrialOutcome, Option<u64>) {
        let admits = |report: &SimReport| {
            event_budget.is_none_or(|budget| report.events_processed <= budget)
        };

        if self.config.memory_cache {
            let memo = self.memo.lock().expect("engine memo poisoned");
            if let Some(report) = memo.get(&hash) {
                if admits(report) {
                    self.memory_hits.fetch_add(1, Ordering::Relaxed);
                    let events = report.events_processed;
                    return (
                        TrialOutcome::Ok(TrialResult::from_report(report)),
                        Some(events),
                    );
                }
            }
        }

        // Store hit: the extracted metrics are the entire answer — no
        // SimReport is materialized (so the memo is not populated; the
        // store lookup itself is as cheap as the memo's).
        if let Some(store) = self.store() {
            if let Some((result, events)) = store.lookup(hash, event_budget) {
                self.store_hits.fetch_add(1, Ordering::Relaxed);
                return (TrialOutcome::Ok(result), events);
            }
        }

        if let Some(dir) = &self.config.disk_cache {
            if let Some(report) = load_cache_entry(dir, hash) {
                if admits(&report) {
                    self.disk_hits.fetch_add(1, Ordering::Relaxed);
                    let events = report.events_processed;
                    let result = TrialResult::from_report(&report);
                    if self.config.memory_cache {
                        self.memo
                            .lock()
                            .expect("engine memo poisoned")
                            .insert(hash, Arc::new(report));
                    }
                    return (TrialOutcome::Ok(result), Some(events));
                }
            }
        }

        self.simulated.fetch_add(1, Ordering::Relaxed);
        match catch_unwind(AssertUnwindSafe(|| {
            scenario.try_report_with(event_budget, wall_budget)
        })) {
            Ok(Ok(report)) => {
                self.events_simulated
                    .fetch_add(report.events_processed, Ordering::Relaxed);
                let events = report.events_processed;
                let result = TrialResult::from_report(&report);
                if let Some(dir) = &self.config.disk_cache {
                    store_cache_entry(dir, hash, scenario, &report);
                }
                if self.config.memory_cache {
                    self.memo
                        .lock()
                        .expect("engine memo poisoned")
                        .insert(hash, Arc::new(report));
                }
                (TrialOutcome::Ok(result), Some(events))
            }
            Ok(Err(err)) => (
                TrialOutcome::Failed(TrialFailure {
                    index,
                    error: err.to_string(),
                    context: scenario_context(scenario),
                }),
                None,
            ),
            Err(payload) => (
                TrialOutcome::Failed(TrialFailure {
                    index,
                    error: format!("panic: {}", payload_message(&*payload)),
                    context: scenario_context(scenario),
                }),
                None,
            ),
        }
    }
}

/// Copy a representative's outcome onto a duplicate scenario's slot.
fn retarget(outcome: &TrialOutcome, index: usize) -> TrialOutcome {
    match outcome {
        TrialOutcome::Ok(r) => TrialOutcome::Ok(r.clone()),
        TrialOutcome::Failed(f) => TrialOutcome::Failed(TrialFailure {
            index,
            error: f.error.clone(),
            context: f.context.clone(),
        }),
    }
}

/// Stable 64-bit tag of a batch's scenario-key list, used to name
/// supervised work dirs and auto-journals so the same logical batch
/// resumes across process restarts.
pub(crate) fn batch_tag(keys: &[String]) -> String {
    let mut h = StableHasher::new();
    h.write_bytes(b"sweep-batch");
    (keys.len() as u64).stable_hash(&mut h);
    for k in keys {
        k.stable_hash(&mut h);
    }
    format!("{:016x}", h.finish() as u64)
}

/// Truncate a journal to its last complete line. A crash (or SIGKILL)
/// mid-write can leave a partial record with no trailing newline;
/// appending to it would glue the next record onto the fragment and
/// corrupt *both*. Run before every append-mode open.
fn repair_journal_tail(path: &Path) -> std::io::Result<()> {
    let data = match std::fs::read(path) {
        Ok(d) => d,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(e),
    };
    if data.last().is_some_and(|&b| b != b'\n') {
        let keep = data.iter().rposition(|&b| b == b'\n').map_or(0, |p| p + 1);
        let file = std::fs::OpenOptions::new().write(true).open(path)?;
        file.set_len(keep as u64)?;
    }
    Ok(())
}

/// Open a journal for appending: create parent directories, drop any
/// torn final line, then open in append mode. Shared with the result
/// store's index, which follows the same append/repair discipline.
pub(crate) fn open_journal_append(path: &Path) -> std::io::Result<std::fs::File> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    repair_journal_tail(path)?;
    std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
}

fn cache_entry_path(dir: &Path, hash: u128) -> PathBuf {
    dir.join(format!("{hash:032x}.json"))
}

/// Load a disk cache entry. Any failure — missing file, truncation,
/// garbled JSON, version or key mismatch — is a miss, never a panic:
/// the scenario is simply re-simulated (and the entry rewritten).
fn load_cache_entry(dir: &Path, hash: u128) -> Option<SimReport> {
    let text = std::fs::read_to_string(cache_entry_path(dir, hash)).ok()?;
    let v = json::parse(&text).ok()?;
    if v.get("version").and_then(Value::as_u64) != Some(CACHE_FORMAT_VERSION as u64) {
        return None;
    }
    if v.get("key").and_then(Value::as_str) != Some(format!("{hash:032x}").as_str()) {
        return None;
    }
    SimReport::from_json_value(v.get("report")?).ok()
}

/// Persist a report. Written to a temp file then renamed, so concurrent
/// readers never observe a torn entry; I/O errors are ignored (the
/// cache is an accelerator, not a store of record). The temp name
/// carries the pid *and* a process-global sequence number: two threads
/// of one process racing the same key must not share a temp file, or
/// the interleaved writes could be published by the rename.
///
/// The entry embeds the scenario (reports don't echo their parameters),
/// so `repro index rebuild` can recover a queryable index from the
/// cache alone. Same format version: readers ignore unknown fields, and
/// pre-existing entries simply rebuild as unindexable.
fn store_cache_entry(dir: &Path, hash: u128, scenario: &Scenario, report: &SimReport) {
    static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let mut v = Value::object();
    v.set("version", Value::U64(CACHE_FORMAT_VERSION as u64))
        .set("key", format!("{hash:032x}").as_str().into())
        .set("scenario", scenario.to_json_value())
        .set("report", report.to_json_value());
    let tmp = dir.join(format!(
        ".{hash:032x}.tmp.{}.{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    if std::fs::write(&tmp, v.to_json()).is_ok() {
        let _ = std::fs::rename(&tmp, cache_entry_path(dir, hash));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbrdom_cca::CcaKind;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bbrdom-engine-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// The satellite race test: threads hammering the same cache key
    /// with tmp+rename writes while readers poll must never produce a
    /// torn read — every load is either a miss or the exact report.
    #[test]
    fn concurrent_cache_writers_never_tear() {
        let dir = temp_dir("race");
        let scenario = Scenario::versus(10.0, 20.0, 2.0, 1, CcaKind::Bbr, 1, 2.0, 7);
        let report = scenario
            .try_report_with(None, None)
            .expect("tiny scenario runs");
        let hash = scenario_hash(&scenario);
        let expected = report.to_json_value().to_json();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..50 {
                        store_cache_entry(&dir, hash, &scenario, &report);
                    }
                });
            }
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..200 {
                        if let Some(r) = load_cache_entry(&dir, hash) {
                            assert_eq!(r.to_json_value().to_json(), expected, "torn cache read");
                        }
                    }
                });
            }
        });
        assert!(load_cache_entry(&dir, hash).is_some());
        let leaked = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .count();
        assert_eq!(leaked, 0, "temp files must not leak");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_tail_repair_truncates_partial_final_line() {
        let dir = temp_dir("tail");
        let path = dir.join("sweep.jsonl");

        std::fs::write(&path, "{\"a\":1}\n{\"b\":2}\n{\"partia").unwrap();
        drop(open_journal_append(&path).unwrap());
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            "{\"a\":1}\n{\"b\":2}\n",
            "torn tail must be dropped, complete lines kept"
        );

        std::fs::write(&path, "{\"no-newline-at-al").unwrap();
        drop(open_journal_append(&path).unwrap());
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "");

        // A missing journal (and missing parent dir) is created.
        let fresh = dir.join("sub/dir/new.jsonl");
        drop(open_journal_append(&fresh).unwrap());
        assert!(fresh.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_tag_depends_on_keys_and_order() {
        let a = vec!["k1".to_string(), "k2".to_string()];
        let b = vec!["k2".to_string(), "k1".to_string()];
        let c = vec!["k1".to_string(), "k2".to_string()];
        assert_eq!(batch_tag(&a), batch_tag(&c));
        assert_ne!(batch_tag(&a), batch_tag(&b));
        assert_eq!(batch_tag(&a).len(), 16);
    }
}
